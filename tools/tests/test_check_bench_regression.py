"""Unit tests for the check_bench_regression.py metric validation.

The gate's failure mode before validation existed: ``json.load`` happily
parses ``NaN``/``Infinity`` literals, and every ``<`` comparison against a
NaN is False — so a bench emitting NaN metrics would PASS the regression
gate while measuring nothing. These tests pin the fixed behavior: malformed
metric values (NaN, Inf, bools, strings) fail loudly with a per-metric
message naming the offending file, for the current run AND the baseline.

Run from the repo root (CI does both):
    python3 -m unittest discover -s tools/tests
    python3 tools/tests/test_check_bench_regression.py
"""

import json
import math
import os
import subprocess
import sys
import tempfile
import unittest

TOOLS_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCRIPT = os.path.join(TOOLS_DIR, "check_bench_regression.py")
FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")

sys.path.insert(0, TOOLS_DIR)
from check_bench_regression import load_metrics  # noqa: E402


def fixture(name):
    return os.path.join(FIXTURES, name)


def run_gate(*argv):
    """Run the script as CI does; returns (exit_code, combined_output)."""
    proc = subprocess.run(
        [sys.executable, SCRIPT, *argv],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    return proc.returncode, proc.stdout


class LoadMetricsValidation(unittest.TestCase):
    def test_accepts_finite_numbers(self):
        metrics, errors = load_metrics(fixture("metrics_ok.json"))
        self.assertEqual(errors, [])
        self.assertEqual(metrics["throughput_ratio"], 1.25)
        self.assertEqual(metrics["allocs_per_request"], 0.0)

    def test_rejects_nan_and_inf_per_metric(self):
        metrics, errors = load_metrics(fixture("metrics_nan.json"))
        self.assertEqual(len(errors), 2)
        self.assertTrue(any("throughput_ratio" in e and "non-finite" in e
                            for e in errors))
        self.assertTrue(any("latency_ratio" in e for e in errors))
        # The healthy metric in the same file still loads.
        self.assertEqual(metrics, {"allocs_per_request": 0.0})

    def test_rejects_bools_and_strings(self):
        metrics, errors = load_metrics(fixture("metrics_non_numeric.json"))
        self.assertEqual(len(errors), 2)
        self.assertTrue(any("bit_identical" in e and "bool" in e
                            for e in errors))
        self.assertTrue(any("throughput_ratio" in e and "str" in e
                            for e in errors))
        self.assertEqual(metrics, {"speedup_vs_serial": 3.5})

    def test_masked_metrics_are_exempt_from_validation(self):
        metrics, errors = load_metrics(fixture("metrics_nan.json"),
                                       masks=("throughput_ratio",
                                              "latency_ratio"))
        self.assertEqual(errors, [])
        self.assertEqual(metrics, {"allocs_per_request": 0.0})


class GateExitStatus(unittest.TestCase):
    def test_clean_metrics_pass(self):
        code, out = run_gate(fixture("metrics_ok.json"),
                             "--baseline", fixture("metrics_baseline.json"))
        self.assertEqual(code, 0, out)
        self.assertIn("PASS", out)

    def test_nan_current_fails_naming_the_metric(self):
        code, out = run_gate(fixture("metrics_nan.json"))
        self.assertEqual(code, 1, out)
        self.assertIn("throughput_ratio", out)
        self.assertIn("non-finite", out)
        self.assertIn("FAIL", out)

    def test_non_numeric_current_fails_naming_the_metric(self):
        code, out = run_gate(fixture("metrics_non_numeric.json"))
        self.assertEqual(code, 1, out)
        self.assertIn("bit_identical", out)
        self.assertIn("non-numeric", out)

    def test_malformed_baseline_fails_naming_the_file(self):
        code, out = run_gate(fixture("metrics_ok.json"),
                             "--baseline", fixture("metrics_nan.json"))
        self.assertEqual(code, 1, out)
        self.assertIn("metrics_nan.json", out)
        self.assertIn("non-finite", out)

    def test_regression_still_detected(self):
        with tempfile.TemporaryDirectory() as tmp:
            regressed = os.path.join(tmp, "regressed.json")
            with open(regressed, "w", encoding="utf-8") as fh:
                json.dump({"metrics": {"throughput_ratio": 0.5,
                                       "allocs_per_request": 0,
                                       "speedup_vs_serial": 3.5}}, fh)
            code, out = run_gate(regressed,
                                 "--baseline", fixture("metrics_baseline.json"))
            self.assertEqual(code, 1, out)
            self.assertIn("REGRESSED", out)

    def test_nonzero_alloc_hard_gate_survives(self):
        with tempfile.TemporaryDirectory() as tmp:
            leaky = os.path.join(tmp, "leaky.json")
            with open(leaky, "w", encoding="utf-8") as fh:
                json.dump({"metrics": {"allocs_per_request": 2}}, fh)
            code, out = run_gate(leaky)
            self.assertEqual(code, 1, out)
            self.assertIn("NONZERO", out)

    def test_fixture_nan_actually_contains_nan(self):
        # Guard the fixture itself: json.load must yield a real NaN, proving
        # the parse-accepts-NaN failure mode the gate defends against.
        with open(fixture("metrics_nan.json"), "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        self.assertTrue(math.isnan(doc["metrics"]["throughput_ratio"]))
        self.assertTrue(math.isinf(doc["metrics"]["latency_ratio"]))


if __name__ == "__main__":
    unittest.main()
