#!/usr/bin/env python3
"""Speedup / metric regression gate for the committed bench JSONs.

Two input shapes are recognized automatically:

* **Kernel mode** — a google-benchmark JSON (BENCH_micro_kernels.json).
  Pairs every ``BM_Kernel<Name>_Scalar`` row with its
  ``BM_Kernel<Name>_Dispatch`` twin run on identical inputs and prints a
  speedup table plus the geometric mean.

* **Metrics mode** — a bench JSON carrying a top-level ``"metrics"`` object
  of machine-portable numbers (BENCH_hotpath.json, BENCH_serving.json).
  Each metric is compared against the committed baseline's value with a
  per-metric delta column. Metrics whose name contains ``alloc`` are
  **hard-gated to zero** regardless of baseline — one steady-state heap
  allocation per request is a correctness failure, not a slowdown.

Gating always compares *ratios or counts from one machine's run* against the
baseline's, never absolute times: CI runners and dev machines differ wildly
in clocks, but the rows of one run share the machine, so their ratio is the
portable signal. A value fails the gate when it drops more than
``--threshold`` (default 10%) below the baseline's.

Usage:
  check_bench_regression.py CURRENT.json [--baseline BASELINE.json]
                            [--threshold 0.10] [--mask PATH ...]

``--mask`` names dotted key paths (see :func:`flatten_json`) whose values are
non-deterministic — wall-clock metrics, host info — and must be excluded from
comparison. The same flatten/mask/diff helpers back
``check_scenario_golden.py`` so there is exactly one JSON-walking
implementation in the tree.

A missing baseline file reports without gating (exit 0) so a new bench can
land before its first committed baseline — except the hard-zero alloc gate,
which always bites.

Exit status: 0 on pass, 1 on any gated regression or malformed input.
"""

import argparse
import json
import math
import os
import sys

SCALAR_SUFFIX = "_Scalar"
DISPATCH_SUFFIX = "_Dispatch"


# --- Shared JSON walking (also imported by check_scenario_golden.py) -------

def flatten_json(node, prefix=""):
    """Flatten a JSON document into {dotted.path: scalar}.

    Objects nest with ``.`` (``serving.workers``), arrays index with
    ``[i]`` (``results[0].model``). Scalars (str/num/bool/null) are the
    leaves; an empty object or array flattens to nothing.
    """
    out = {}
    if isinstance(node, dict):
        for key, value in node.items():
            out.update(flatten_json(value, f"{prefix}.{key}" if prefix else key))
    elif isinstance(node, list):
        for i, value in enumerate(node):
            out.update(flatten_json(value, f"{prefix}[{i}]"))
    else:
        out[prefix] = node
    return out


def is_masked(path, masks):
    """True when `path` equals a mask entry or lives under one."""
    return any(path == mask or path.startswith(mask + ".")
               or path.startswith(mask + "[") for mask in masks)


def diff_flat(current, golden, masks=()):
    """Compare two flattened documents, ignoring masked paths.

    Returns ``[(path, kind, current_value, golden_value)]`` where kind is
    ``mismatch`` / ``missing`` (golden-only) / ``unexpected`` (current-only).
    Values compare exactly — deterministic fields must be bit-identical.
    """
    rows = []
    for path in sorted(set(current) | set(golden)):
        if is_masked(path, masks):
            continue
        if path not in golden:
            rows.append((path, "unexpected", current[path], None))
        elif path not in current:
            rows.append((path, "missing", None, golden[path]))
        elif current[path] != golden[path]:
            rows.append((path, "mismatch", current[path], golden[path]))
    return rows


def load_runs(path):
    """Map benchmark name -> cpu_time (ns) for kernel-pair rows."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    runs = {}
    for row in doc.get("benchmarks", []):
        if row.get("run_type") == "aggregate":
            continue
        name = row.get("name", "")
        if not name.startswith("BM_Kernel"):
            continue
        unit_scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(
            row.get("time_unit", "ns"), 1.0)
        runs[name] = float(row["cpu_time"]) * unit_scale
    return runs


def pair_speedups(runs):
    """kernel label -> (scalar_ns, dispatch_ns, speedup)."""
    speedups = {}
    for name, scalar_ns in runs.items():
        base, sep, args = name.partition("/")
        if not base.endswith(SCALAR_SUFFIX):
            continue
        twin = base[: -len(SCALAR_SUFFIX)] + DISPATCH_SUFFIX + sep + args
        if twin not in runs:
            continue
        label = base[len("BM_Kernel"): -len(SCALAR_SUFFIX)] + sep + args
        dispatch_ns = runs[twin]
        speedups[label] = (scalar_ns, dispatch_ns, scalar_ns / dispatch_ns)
    return speedups


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def load_metrics(path, masks=()):
    """Validated top-level "metrics" object of a bench JSON.

    Returns ``(metrics, errors)``: name -> float for every usable metric,
    plus a list of per-metric complaints for everything that is not a real
    finite number. A bool is not a metric (``True`` satisfies
    ``isinstance(v, int)`` but carries no magnitude), and ``NaN``/``Inf``
    survive ``json.load`` yet make every ``<`` comparison silently false —
    a NaN metric would sail through the regression gate looking healthy.
    Both must fail loudly, naming the metric, instead of being dropped.
    Masked names are exempt: they are excluded from comparison anyway and
    are allowed to hold junk (wall-clock, host info).
    """
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    metrics_obj = doc.get("metrics", {})
    if not isinstance(metrics_obj, dict):
        return {}, [f"'metrics' is {type(metrics_obj).__name__}, "
                    "not an object"]
    metrics, errors = {}, []
    for name, value in metrics_obj.items():
        if is_masked(name, masks):
            continue
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            errors.append(f"metric '{name}': non-numeric value {value!r} "
                          f"({type(value).__name__})")
        elif not math.isfinite(value):
            errors.append(f"metric '{name}': non-finite value {value!r}")
        else:
            metrics[name] = float(value)
    return metrics, errors


def check_metrics(args):
    """Gate a "metrics"-style bench JSON; returns the process exit status."""
    current, errors = load_metrics(args.current, args.mask)
    for err in errors:
        print(f"error: {args.current}: {err}")
    if not current and not errors:
        print("error: no usable 'metrics' object in", args.current)
        return 1

    baseline = {}
    if args.baseline:
        if os.path.exists(args.baseline):
            baseline, base_errors = load_metrics(args.baseline, args.mask)
            for err in base_errors:
                print(f"error: {args.baseline}: {err}")
            errors += base_errors
        else:
            print(f"skip: baseline '{args.baseline}' not found; "
                  "reporting metrics without a regression gate "
                  "(commit the baseline to enable gating)")
    if errors:
        print(f"FAIL: {len(errors)} malformed metric value(s); every gated "
              "metric must be a finite number")
        return 1

    print(f"{'metric':<40} {'current':>10} {'baseline':>10} "
          f"{'delta':>8} {'status':>10}")
    failures = 0
    for name in sorted(current):
        value = current[name]
        base = baseline.get(name)
        status = "ok"
        delta_txt = "-"
        if base is not None and base != 0.0:
            delta = (value - base) / abs(base)
            delta_txt = f"{delta:+.1%}"
            # Higher is better for every ratio metric; allocs are handled by
            # the hard-zero gate below, not by the relative threshold.
            if "alloc" not in name and value < base * (1.0 - args.threshold):
                status = "REGRESSED"
                failures += 1
        if "alloc" in name and value != 0.0:
            status = "NONZERO"
            failures += 1
        base_txt = f"{base:.3f}" if base is not None else "-"
        print(f"{name:<40} {value:>10.3f} {base_txt:>10} "
              f"{delta_txt:>8} {status:>10}")

    if baseline:
        for name in sorted(set(baseline) - set(current)):
            print(f"warning: baseline metric '{name}' missing from current run")
    if failures:
        print(f"FAIL: {failures} metric(s) regressed (threshold "
              f"{args.threshold:.0%}; alloc metrics hard-gated to zero)")
        return 1
    print("PASS: no metric regression"
          + (f" (threshold {args.threshold:.0%})" if baseline else
             " (no baseline provided; alloc hard-zero gate only)"))
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current",
                    help="bench JSON from this run (google-benchmark kernel "
                         "pairs, or a 'metrics'-carrying bench JSON)")
    ap.add_argument("--baseline", default=None,
                    help="committed baseline JSON to gate against")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="allowed fractional speedup drop vs baseline")
    ap.add_argument("--mask", action="append", default=[],
                    help="metric name / kernel label (or prefix) that is "
                         "non-deterministic and excluded from comparison; "
                         "repeatable")
    args = ap.parse_args()

    with open(args.current, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if "metrics" in doc and "benchmarks" not in doc:
        return check_metrics(args)

    current = pair_speedups(load_runs(args.current))
    current = {label: row for label, row in current.items()
               if not is_masked(label, args.mask)}
    if not current:
        print("error: no BM_Kernel*_Scalar/_Dispatch pairs in", args.current)
        return 1

    # A missing baseline is a skip, not a failure: new benches land before
    # their first committed baseline, and the gate must not block that PR.
    baseline = {}
    if args.baseline:
        if os.path.exists(args.baseline):
            baseline = pair_speedups(load_runs(args.baseline))
        else:
            print(f"skip: baseline '{args.baseline}' not found; "
                  "reporting speedups without a regression gate "
                  "(commit the baseline to enable gating)")

    print(f"{'kernel':<28} {'scalar ns':>12} {'dispatch ns':>12} "
          f"{'speedup':>8} {'baseline':>9} {'status':>8}")
    failures = 0
    for label in sorted(current):
        scalar_ns, dispatch_ns, speedup = current[label]
        base_speedup = baseline.get(label, (0, 0, None))[2]
        status = "ok"
        if base_speedup is not None:
            floor = base_speedup * (1.0 - args.threshold)
            if speedup < floor:
                status = "REGRESSED"
                failures += 1
        base_txt = f"{base_speedup:.2f}x" if base_speedup is not None else "-"
        print(f"{label:<28} {scalar_ns:>12.1f} {dispatch_ns:>12.1f} "
              f"{speedup:>7.2f}x {base_txt:>9} {status:>8}")

    gm = geomean([v[2] for v in current.values()])
    print(f"{'geomean':<28} {'':>12} {'':>12} {gm:>7.2f}x")

    if baseline:
        missing = sorted(set(baseline) - set(current))
        for label in missing:
            print(f"warning: baseline kernel '{label}' missing from current run")
    if failures:
        print(f"FAIL: {failures} kernel(s) regressed more than "
              f"{args.threshold:.0%} vs baseline")
        return 1
    print("PASS: no dispatch speedup regression"
          + (f" (threshold {args.threshold:.0%})" if baseline else
             " (no baseline provided; report only)"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
