#!/usr/bin/env python3
"""Diff a ScenarioRunner JSON report against its committed golden.

Every scenario in ``scenarios/*.ini`` has a golden report under
``scenarios/golden/<name>.json``. The runner's determinism contract says the
*numerics* of a run — evaluated metrics, DSE rankings, served accuracy and
the logits FNV-1a checksum — are bit-identical across machines, worker
counts, and batch groupings; only wall-clock-derived values move, and the
runner groups all of those under the top-level ``"timing"`` object. This
checker flattens both documents into dotted key paths (one shared
implementation in ``check_bench_regression.py`` — no duplicated JSON
walking), masks ``timing`` (plus any extra ``--mask`` paths), and fails on
any other difference, naming the scenario and the exact key path that
drifted.

Usage:
  check_scenario_golden.py CURRENT.json GOLDEN.json [--mask PATH ...]
                           [--update]

``--update`` rewrites GOLDEN.json from CURRENT.json (normalized, sorted
keys) instead of diffing — the one sanctioned way to refresh a golden after
an intentional behavior change.

Exit status: 0 on match, 1 on drift or malformed input.
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from check_bench_regression import diff_flat, flatten_json  # noqa: E402

DEFAULT_MASKS = ("timing",)


def load(path):
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", help="ScenarioRunner JSON report from this run")
    ap.add_argument("golden", help="committed golden JSON to diff against")
    ap.add_argument("--mask", action="append", default=[],
                    help="additional non-deterministic key path to exclude "
                         "(the top-level 'timing' object is always masked); "
                         "repeatable")
    ap.add_argument("--update", action="store_true",
                    help="rewrite GOLDEN from CURRENT instead of diffing")
    args = ap.parse_args()

    current_doc = load(args.current)
    scenario = current_doc.get("scenario", os.path.basename(args.current))

    if args.update:
        with open(args.golden, "w", encoding="utf-8") as fh:
            json.dump(current_doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"updated: {scenario}: wrote {args.golden}")
        return 0

    if not os.path.exists(args.golden):
        print(f"FAIL: {scenario}: golden '{args.golden}' does not exist "
              "(generate it with --update)")
        return 1

    masks = list(DEFAULT_MASKS) + args.mask
    drift = diff_flat(flatten_json(current_doc), flatten_json(load(args.golden)),
                      masks)
    if drift:
        for path, kind, cur, gold in drift:
            print(f"drift: {scenario}: {path}: {kind} "
                  f"(current={cur!r}, golden={gold!r})")
        print(f"FAIL: {scenario}: {len(drift)} deterministic field(s) drifted "
              f"(masked: {', '.join(masks)})")
        return 1
    print(f"PASS: {scenario}: matches golden on all deterministic fields "
          f"(masked: {', '.join(masks)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
