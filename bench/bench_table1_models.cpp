// Table I reproduction: the four DNN models and their parameter counts.
//
// Prints our reconstructed architecture next to the paper's reported counts.
// Model 4 matches exactly (it is the Koch et al. Siamese one-shot network);
// models 1-3 are custom CNNs reconstructed to < 0.2% of the reported counts.
#include <cstdio>

#include "dnn/models.hpp"
#include "scenario/scenario.hpp"

int main() {
  std::printf("=== Table I: Models and datasets considered for evaluation ===\n\n");
  std::printf("%-5s %-14s %-11s %-10s %-15s %-15s %-9s %-12s\n", "Model", "Name",
              "CONV layers", "FC layers", "Params (ours)", "Params (paper)", "Delta",
              "Dataset");

  // The zoo selection comes from the paper-repro scenario (models = table1).
  const auto models =
      xl::scenario::ScenarioSpec::load(xl::scenario::scenario_path("paper-repro"))
          .model_zoo();
  for (int i = 0; i < 4; ++i) {
    const auto& m = models[static_cast<std::size_t>(i)];
    const auto ours = m.total_parameters();
    const auto paper = xl::dnn::paper_parameter_count(i + 1);
    const double delta =
        100.0 * (static_cast<double>(ours) - static_cast<double>(paper)) /
        static_cast<double>(paper);
    std::printf("%-5d %-14s %-11zu %-10zu %-15zu %-15zu %+8.3f%% %-12s\n", i + 1,
                m.name.c_str(), m.conv_layer_count(), m.dense_layer_count(), ours, paper,
                delta, m.dataset.c_str());
  }

  std::printf("\nPer-model workload summary (MACs per inference, full scale):\n");
  for (const auto& m : models) {
    std::printf("  %-14s input %zux%zux%zu  branches %zu  MACs %zu\n", m.name.c_str(),
                m.input_height, m.input_width, m.input_channels, m.branches,
                m.total_macs());
  }
  std::printf("\nNote: model 4's 38,951,745 parameters identify the Koch et al.\n"
              "one-shot Siamese network exactly; models 1-3 are reconstructed\n"
              "custom CNNs matching Table I's layer counts within 0.2%%.\n");
  return 0;
}
