// Fig. 5 reproduction: inference accuracy across weight/activation
// resolutions from 1 to 16 bits — migrated off hand-wired QAT sweeps onto
// the functional datapath through xl::api: each model is trained once in
// float, then executed photonically at every resolution with the effect
// pipeline off (ideal datapath) and fully on (thermal + FPV + noise), so the
// bench measures what the *analog hardware* resolves rather than what QAT
// can absorb.
//
// Substitution note: models are the Table I topologies at reduced geometry
// on synthetic statistically matched datasets (no offline access to
// Sign-MNIST / CIFAR-10 / STL-10 / Omniglot); the Omniglot siamese pair task
// is stood in for by an MLP probe on the same image statistics. The
// reproduced *shape*: accuracy is stable at high resolution, collapses below
// ~4 bits, and non-idealities cost additional effective bits.
//
// The workload definition — resolution axis, sample budget, per-model
// training recipes — lives in scenarios/bench-fig5.ini ([x-fig5] extension
// section); this binary is a thin sweep driver over it.
//
// Emits BENCH_fig5_resolution_accuracy.json (like bench_backend_matrix).
//
// Runtime note: trains 4 reduced models and runs 4 x 8 x 2 photonic
// accuracy evaluations — a couple of minutes, the slowest binary in bench/.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "dnn/activations.hpp"
#include "dnn/datasets.hpp"
#include "dnn/dense.hpp"
#include "dnn/models.hpp"
#include "dnn/network.hpp"
#include "dnn/reshape.hpp"
#include "dnn/trainer.hpp"
#include "numerics/rng.hpp"
#include "scenario/scenario.hpp"

namespace {

using namespace xl;

// Resolution axis, set from [x-fig5] in main before any sweep runs.
std::vector<int> kBits{1, 2, 3, 4, 6, 8, 12, 16};

struct SweepResult {
  std::string name;
  double float_accuracy = 0.0;
  std::vector<double> ideal;      // Accuracy per bit setting, effects off.
  std::vector<double> perturbed;  // Same, thermal + fpv + noise on.
};

/// Photonic accuracy of `net` on `test` at each resolution, for one effect
/// configuration, all through the api::Session facade.
std::vector<double> sweep_resolutions(dnn::Network& net, const dnn::Dataset& test,
                                      std::size_t samples,
                                      const core::EffectConfig& effects) {
  std::vector<double> out;
  out.reserve(kBits.size());
  for (int bits : kBits) {
    api::SimConfig cfg;
    cfg.vdp.resolution_bits = bits;
    cfg.vdp.effects = effects;
    cfg.functional_samples = samples;
    api::Session session(cfg);
    out.push_back(
        session.evaluate_functional("functional", {}, net, test).functional.accuracy);
  }
  return out;
}

SweepResult sweep_model(const std::string& name, dnn::Network& net,
                        const dnn::Dataset& train, const dnn::Dataset& test,
                        std::size_t epochs, std::size_t samples,
                        double learning_rate = 3e-3) {
  dnn::TrainConfig cfg;
  cfg.epochs = epochs;
  cfg.batch_size = 32;
  cfg.learning_rate = learning_rate;
  SweepResult r;
  r.name = name;
  r.float_accuracy = dnn::train_classifier(net, train, test, cfg).test_accuracy;
  r.ideal = sweep_resolutions(net, test, samples, core::EffectConfig::parse("none"));
  r.perturbed = sweep_resolutions(net, test, samples, core::EffectConfig::parse("all"));
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_fig5_resolution_accuracy.json";

  // Workload definition: scenarios/bench-fig5.ini. The scenario proper is
  // the corpus golden's cheap functional run (validated here); the [x-fig5]
  // extension section carries the resolution axis and per-model recipes
  // (zoo order: lenet5, cnn_cifar10, cnn_stl10, siamese probe).
  const scenario::ScenarioDocument doc = scenario::ScenarioDocument::parse_file(
      scenario::scenario_path("bench-fig5"));
  (void)scenario::ScenarioSpec::parse(doc);
  scenario::SectionReader sweep(doc, "x-fig5");
  kBits = sweep.get_int_list("bits", kBits);
  const std::size_t samples = sweep.get_size("samples", 24);
  const std::vector<std::size_t> epochs =
      sweep.get_size_list("epochs", {4, 5, 4, 16});
  const std::vector<double> rates =
      sweep.get_double_list("learning_rates", {3e-3, 3e-3, 3e-3, 5e-3});
  sweep.finish();
  if (epochs.size() != 4 || rates.size() != 4) {
    std::fprintf(stderr, "error: [x-fig5] epochs / learning_rates need one "
                         "entry per Table I model (4)\n");
    return 1;
  }

  std::printf("=== Fig. 5: accuracy vs datapath resolution (functional, xl::api) ===\n");
  std::printf("(reduced Table I models; ideal vs thermal+fpv+noise pipeline)\n\n");

  std::vector<SweepResult> results;

  {  // Model 1: LeNet5 on a SignMNIST-like task.
    const dnn::SyntheticSpec spec = dnn::signmnist_like();
    const dnn::Dataset train = dnn::generate_classification(spec, 320, 0);
    const dnn::Dataset test = dnn::generate_classification(spec, 96, 1);
    numerics::Rng rng(1234 + 1);
    dnn::Network net = dnn::build_lenet5(rng);
    results.push_back(
        sweep_model("SignMNIST-like", net, train, test, epochs[0], samples, rates[0]));
  }
  {  // Model 2: reduced CIFAR CNN on a 16x16 CIFAR10-like task.
    dnn::SyntheticSpec spec = dnn::cifar10_like();
    spec.height = 16;
    spec.width = 16;
    const dnn::Dataset train = dnn::generate_classification(spec, 320, 0);
    const dnn::Dataset test = dnn::generate_classification(spec, 96, 1);
    numerics::Rng rng(1234 + 2);
    dnn::Network net = dnn::build_reduced_cifar_cnn(rng);
    results.push_back(
        sweep_model("CIFAR10-like", net, train, test, epochs[1], samples, rates[1]));
  }
  {  // Model 3: reduced STL CNN on a 24x24 STL10-like task.
    const dnn::SyntheticSpec spec = dnn::stl10_like(24);
    const dnn::Dataset train = dnn::generate_classification(spec, 256, 0);
    const dnn::Dataset test = dnn::generate_classification(spec, 96, 1);
    numerics::Rng rng(1234 + 3);
    dnn::Network net = dnn::build_reduced_stl_cnn(rng);
    results.push_back(
        sweep_model("STL10-like", net, train, test, epochs[2], samples, rates[2]));
  }
  {  // Model 4 probe: MLP on Omniglot-like statistics (the siamese pair task
     // has no classifier-accuracy analogue on the functional backend).
    dnn::SyntheticSpec spec = dnn::omniglot_like();
    spec.height = 16;
    spec.width = 16;
    const dnn::Dataset train = dnn::generate_classification(spec, 640, 0);
    const dnn::Dataset test = dnn::generate_classification(spec, 96, 1);
    numerics::Rng rng(4321);
    dnn::Network net;
    net.emplace<dnn::Flatten>();
    net.emplace<dnn::Dense>(256, 48, rng);
    net.emplace<dnn::ReLU>();
    net.emplace<dnn::Dense>(48, spec.classes, rng);
    results.push_back(
        sweep_model("Omniglot-like", net, train, test, epochs[3], samples, rates[3]));
  }

  api::JsonWriter writer;
  writer.field("bench", "fig5_resolution_accuracy");

  std::printf("%-6s", "bits");
  for (const auto& r : results) std::printf(" %-14s %-14s", r.name.c_str(), "(+effects)");
  std::printf("\n");
  for (std::size_t i = 0; i < kBits.size(); ++i) {
    std::printf("%-6d", kBits[i]);
    for (const auto& r : results) {
      std::printf(" %-14.3f %-14.3f", r.ideal[i], r.perturbed[i]);
    }
    std::printf("\n");
  }

  writer.begin_array("models");
  for (const auto& r : results) {
    writer.begin_object();
    writer.field("model", r.name);
    writer.field("float_accuracy", r.float_accuracy);
    writer.begin_array("rows");
    for (std::size_t i = 0; i < kBits.size(); ++i) {
      writer.begin_object();
      writer.field("bits", kBits[i]);
      writer.field("accuracy_ideal", r.ideal[i]);
      writer.field("accuracy_effects", r.perturbed[i]);
      writer.end_object();
    }
    writer.end_array();
    writer.end_object();
  }
  writer.end_array();

  const auto drop = [](const std::vector<double>& acc) {
    return acc.back() - acc.front();
  };
  std::printf("\nAccuracy drop from 16-bit to 1-bit (ideal):");
  for (const auto& r : results) std::printf(" %.3f", drop(r.ideal));
  std::printf("\nNon-ideality cost at 16 bit (ideal - effects):");
  for (const auto& r : results) {
    std::printf(" %.3f", r.ideal.back() - r.perturbed.back());
  }
  std::printf("\nPaper's observation reproduced when low-bit accuracy collapses and\n"
              "the effect pipeline costs additional effective resolution.\n");

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << writer.finish();
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
