// Fig. 5 reproduction: inference accuracy of the four DNN models across
// weight/activation resolutions from 1 to 16 bits, with quantization-aware
// training (QKeras substitute: our straight-through fake-quant QAT).
//
// Substitution note: models are the Table I topologies at reduced geometry,
// trained on synthetic statistically matched datasets (no offline access to
// Sign-MNIST / CIFAR-10 / STL-10 / Omniglot). The reproduced *shape*:
// accuracy is stable at high resolution, collapses below ~4 bits, and the
// hardest task (STL10-like) is the most resolution-sensitive.
//
// Runtime note: this bench trains 32 networks (4 models x 8 bit widths) and
// takes a few minutes single-threaded — by far the slowest binary in bench/.
#include <cstdio>
#include <vector>

#include "dnn/activations.hpp"
#include "dnn/datasets.hpp"
#include "dnn/dense.hpp"
#include "dnn/reshape.hpp"
#include "dnn/models.hpp"
#include "dnn/trainer.hpp"
#include "numerics/rng.hpp"

namespace {

using namespace xl;

struct SweepResult {
  std::vector<double> accuracy;  // One per bit setting.
};

const std::vector<int> kBits{1, 2, 3, 4, 6, 8, 12, 16};

SweepResult sweep_classifier(int model_no, const dnn::SyntheticSpec& spec,
                             std::size_t train_n, std::size_t test_n,
                             std::size_t epochs) {
  const dnn::Dataset train = dnn::generate_classification(spec, train_n, 0);
  const dnn::Dataset test = dnn::generate_classification(spec, test_n, 1);
  SweepResult out;
  for (int bits : kBits) {
    numerics::Rng rng(1234 + model_no);
    dnn::Network net = model_no == 1   ? dnn::build_lenet5(rng)
                       : model_no == 2 ? dnn::build_reduced_cifar_cnn(rng)
                                       : dnn::build_reduced_stl_cnn(rng);
    net.set_quantization(dnn::QuantizationSpec{bits, bits});
    dnn::TrainConfig cfg;
    cfg.epochs = epochs;
    cfg.batch_size = 32;
    cfg.learning_rate = 2e-3;
    out.accuracy.push_back(dnn::train_classifier(net, train, test, cfg).test_accuracy);
  }
  return out;
}

SweepResult sweep_siamese(std::size_t train_pairs, std::size_t test_pairs,
                          std::size_t epochs) {
  dnn::SyntheticSpec spec = dnn::omniglot_like();
  spec.height = 16;
  spec.width = 16;
  const dnn::PairDataset train = dnn::generate_pairs(spec, train_pairs, 0);
  const dnn::PairDataset test = dnn::generate_pairs(spec, test_pairs, 1);
  SweepResult out;
  for (int bits : kBits) {
    numerics::Rng rng(4321);
    dnn::Network branch;
    branch.emplace<dnn::Flatten>();
    branch.emplace<dnn::Dense>(256, 48, rng);
    branch.emplace<dnn::ReLU>();
    branch.emplace<dnn::Dense>(48, 16, rng);
    branch.set_quantization(dnn::QuantizationSpec{bits, bits});
    dnn::TrainConfig cfg;
    cfg.epochs = epochs;
    cfg.batch_size = 32;
    cfg.learning_rate = 2e-3;
    out.accuracy.push_back(dnn::train_siamese(branch, train, test, cfg).test_accuracy);
  }
  return out;
}

}  // namespace

int main() {
  std::printf("=== Fig. 5: accuracy vs weight/activation resolution (QAT) ===\n");
  std::printf("(reduced-geometry Table I models on synthetic matched datasets)\n\n");

  dnn::SyntheticSpec m2 = dnn::cifar10_like();
  m2.height = 16;
  m2.width = 16;
  dnn::SyntheticSpec m3 = dnn::stl10_like(24);

  const SweepResult r1 = sweep_classifier(1, dnn::signmnist_like(), 320, 160, 3);
  const SweepResult r2 = sweep_classifier(2, m2, 320, 160, 5);
  const SweepResult r3 = sweep_classifier(3, m3, 256, 128, 4);
  const SweepResult r4 = sweep_siamese(224, 96, 5);

  std::printf("%-6s %-14s %-14s %-14s %-14s\n", "bits", "SignMNIST-like",
              "CIFAR10-like", "STL10-like", "Omniglot-like");
  for (std::size_t i = 0; i < kBits.size(); ++i) {
    std::printf("%-6d %-14.3f %-14.3f %-14.3f %-14.3f\n", kBits[i], r1.accuracy[i],
                r2.accuracy[i], r3.accuracy[i], r4.accuracy[i]);
  }

  const auto drop = [](const SweepResult& r) {
    return r.accuracy.back() - r.accuracy.front();
  };
  std::printf("\nAccuracy drop from 16-bit to 1-bit: m1 %.3f, m2 %.3f, m3 %.3f, m4 %.3f\n",
              drop(r1), drop(r2), drop(r3), drop(r4));
  std::printf("Paper's observation reproduced when the STL10-like model shows the\n"
              "largest sensitivity among the classifiers and low-bit accuracy collapses.\n");
  return 0;
}
