// bench_serving — offered-load sweep of the xl::serve runtime, tracking the
// serving-throughput trajectory per PR as BENCH_serving.json.
//
// Two sweeps over worker counts {1, 2, 4}, all against the SAME fixed trace
// of mixed-size requests (sizes cycle 1..4) with hardware-time pacing on,
// so each micro-batch occupies its shard for the simulated EventScheduler
// makespan and "achieved FPS" measures the simulated accelerator pool, not
// the host CPU:
//   * burst — the whole trace is offered at t = 0 (saturating load). The
//     acceptance signal: achieved FPS must increase monotonically from
//     1 -> 4 workers at this fixed offered load.
//   * paced — requests arrive at ~2x one shard's capacity, showing p50/p99
//     relief as shards are added while the offered load stays fixed.
//
// Logits are bit-identical across every run (the serving determinism
// contract); a trace checksum is emitted so regressions surface in the
// JSON diff.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "core/mapper.hpp"
#include "core/scheduler.hpp"
#include "dnn/datasets.hpp"
#include "dnn/models.hpp"
#include "numerics/rng.hpp"
#include "serve/serving_runtime.hpp"

namespace {

constexpr std::size_t kRequests = 96;
constexpr std::size_t kMaxBatch = 8;
constexpr double kDeadlineUs = 500.0;
constexpr double kPaceScale = 500000.0;  // Simulated us -> wall us multiplier.

struct RunResult {
  double wall_us = 0.0;
  double achieved_fps = 0.0;
  double checksum = 0.0;  ///< Sum over every logit of the trace.
  xl::serve::ServingStats stats;
};

RunResult run_trace(xl::dnn::Table1ProxyMlp& proxy, std::size_t workers,
                    double inter_arrival_us) {
  using namespace xl;
  serve::ServingOptions options;
  options.workers = workers;
  options.max_batch = kMaxBatch;
  options.deadline_us = kDeadlineUs;
  options.pace_hardware_time = true;
  options.pace_scale = kPaceScale;
  options.architecture = core::best_config();

  serve::ServingRuntime runtime(core::VdpSimOptions{}, options);
  runtime.register_model(serve::table1_proxy_served_model(proxy.net));
  runtime.start();

  // The canonical fixed trace — identical for every worker count and mode.
  const std::vector<dnn::Tensor> trace =
      serve::make_mixed_size_trace(proxy.test, kRequests, kMaxBatch);
  const auto t0 = serve::Clock::now();
  std::vector<std::future<serve::InferResult>> futures;
  futures.reserve(kRequests);
  for (const dnn::Tensor& input : trace) {
    const double rows = static_cast<double>(input.dim(0));
    futures.push_back(runtime.submit("table1-proxy-mlp", input));
    if (inter_arrival_us > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::micro>(inter_arrival_us * rows));
    }
  }

  RunResult result;
  std::size_t samples = 0;
  for (auto& future : futures) {
    const serve::InferResult r = future.get();
    samples += r.logits.dim(0);
    for (std::size_t j = 0; j < r.logits.numel(); ++j) {
      result.checksum += static_cast<double>(r.logits[j]);
    }
  }
  result.wall_us =
      std::chrono::duration<double, std::micro>(serve::Clock::now() - t0).count();
  runtime.stop();
  result.stats = runtime.stats();
  result.achieved_fps = static_cast<double>(samples) * 1e6 / result.wall_us;
  return result;
}

void write_run(xl::api::JsonWriter& writer, const char* mode, std::size_t workers,
               double offered_fps, const RunResult& r) {
  writer.begin_object();
  writer.field("mode", mode);
  writer.field("workers", workers);
  if (offered_fps > 0.0) writer.field("offered_fps", offered_fps);
  writer.field("achieved_fps", r.achieved_fps);
  writer.field("wall_us", r.wall_us);
  writer.field("logits_checksum", r.checksum);
  xl::api::write_serving_stats(writer, "serving", r.stats);
  writer.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xl;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_serving.json";
  dnn::Table1ProxyMlp proxy = dnn::train_table1_proxy_mlp(6);

  // One shard's paced capacity: a full micro-batch occupies a shard for
  // makespan(kMaxBatch) * kPaceScale wall-us.
  const core::ArchitectureConfig arch = core::best_config();
  dnn::ModelSpec spec;
  spec.name = "table1-proxy-mlp";
  spec.layers = proxy.net.export_specs({1, 1, 12, 12});
  core::ScheduleOptions schedule;
  schedule.batch = kMaxBatch;
  const double batch_makespan_us =
      core::EventScheduler(arch, schedule).run(core::map_model(spec, arch)).makespan_us();
  const double shard_capacity_fps =
      static_cast<double>(kMaxBatch) * 1e6 / (batch_makespan_us * kPaceScale);

  api::JsonWriter writer;
  writer.field("bench", "serving");
  writer.field("model", "table1-proxy-mlp");
  writer.field("requests", kRequests);
  writer.field("max_batch", kMaxBatch);
  writer.field("deadline_us", kDeadlineUs);
  writer.field("pace_scale", kPaceScale);
  writer.field("batch_makespan_us_simulated", batch_makespan_us);
  writer.field("shard_capacity_fps", shard_capacity_fps);

  std::printf("one paced shard: %.3f us simulated batch makespan -> %.0f samples/s\n\n",
              batch_makespan_us, shard_capacity_fps);

  const std::vector<std::size_t> worker_counts = {1, 2, 4};
  std::vector<double> burst_fps;
  std::vector<double> checksums;
  writer.begin_array("runs");

  // Burst: the fixed trace offered at t = 0. FPS must scale with shards.
  for (const std::size_t workers : worker_counts) {
    const RunResult r = run_trace(proxy, workers, 0.0);
    burst_fps.push_back(r.achieved_fps);
    checksums.push_back(r.checksum);
    write_run(writer, "burst", workers, 0.0, r);
    const auto [p50, p99] = serve::latency_p50_p99_us(r.stats.latency_us);
    std::printf("burst  %zu worker(s): %7.0f samples/s | p50 %8.0f us | p99 %8.0f us "
                "| %zu batches (mean %.2f rows)\n",
                workers, r.achieved_fps, p50, p99, r.stats.batches,
                r.stats.mean_batch_rows());
  }

  // Paced: fixed offered load at ~2x one shard's capacity — the single
  // shard saturates, added shards relieve the queue.
  const double offered_fps = 2.0 * shard_capacity_fps;
  const double inter_arrival_us = 1e6 / offered_fps;  // Per sample.
  std::printf("\n");
  for (const std::size_t workers : worker_counts) {
    const RunResult r = run_trace(proxy, workers, inter_arrival_us);
    checksums.push_back(r.checksum);
    write_run(writer, "paced", workers, offered_fps, r);
    const auto [p50, p99] = serve::latency_p50_p99_us(r.stats.latency_us);
    std::printf("paced  %zu worker(s): %7.0f samples/s offered %.0f | p50 %8.0f us | "
                "p99 %8.0f us\n",
                workers, r.achieved_fps, offered_fps, p50, p99);
  }
  writer.end_array();

  bool monotonic = true;
  for (std::size_t i = 1; i < burst_fps.size(); ++i) {
    monotonic = monotonic && burst_fps[i] > burst_fps[i - 1];
  }
  bool deterministic = true;
  for (const double checksum : checksums) {
    deterministic = deterministic && checksum == checksums.front();
  }
  writer.field("fps_monotonic_1_to_4_workers", monotonic);
  writer.field("logits_deterministic_across_runs", deterministic);
  // Machine-portable gated metrics (tools/check_bench_regression.py): burst
  // runs pace on *simulated* hardware time, so their FPS measures the
  // accelerator pool, not the host clock, and the 1 -> 4 worker scaling is a
  // same-run ratio either way.
  writer.begin_object("metrics");
  writer.field("burst_fps_1_worker", burst_fps.front());
  writer.field("burst_fps_4_workers", burst_fps.back());
  writer.field("burst_fps_scaling_1_to_4", burst_fps.back() / burst_fps.front());
  writer.end_object();
  std::printf("\nachieved FPS monotonic 1 -> 4 workers: %s\n",
              monotonic ? "yes" : "NO");
  std::printf("logits deterministic across all runs : %s\n",
              deterministic ? "yes" : "NO");

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << writer.finish();
  std::printf("wrote %s\n", out_path.c_str());
  return (monotonic && deterministic) ? 0 : 1;
}
