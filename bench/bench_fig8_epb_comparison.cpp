// Fig. 8 reproduction: per-model energy-per-bit of the photonic DNN
// accelerators (DEAP-CNN, Holylight, four CrossLight variants).
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/deap_cnn.hpp"
#include "baselines/holylight.hpp"
#include "core/accelerator.hpp"
#include "dnn/models.hpp"

int main() {
  using namespace xl;
  const auto models = dnn::table1_models();

  struct Row {
    std::string name;
    std::vector<double> epb;  // Per model.
    double avg = 0.0;
  };
  std::vector<Row> rows;

  for (const auto& params :
       {baselines::deap_cnn_params(), baselines::holylight_params()}) {
    Row row;
    row.name = params.name;
    for (const auto& m : models) {
      row.epb.push_back(baselines::evaluate_baseline(params, m).epb_pj());
    }
    rows.push_back(row);
  }
  for (auto v : {core::Variant::kBase, core::Variant::kBaseTed, core::Variant::kOpt,
                 core::Variant::kOptTed}) {
    const core::CrossLightAccelerator accel(core::variant_config(v));
    Row row;
    row.name = core::variant_name(v);
    for (const auto& m : models) row.epb.push_back(accel.evaluate(m).epb_pj());
    rows.push_back(row);
  }
  for (Row& row : rows) {
    for (double e : row.epb) row.avg += e;
    row.avg /= static_cast<double>(row.epb.size());
  }

  std::printf("=== Fig. 8: energy-per-bit of photonic DNN accelerators [pJ/bit] ===\n\n");
  std::printf("%-16s %-12s %-13s %-12s %-13s %-10s\n", "Accelerator", "LeNet5",
              "CNN-CIFAR10", "CNN-STL10", "Siamese-CNN", "Average");
  for (const Row& row : rows) {
    std::printf("%-16s %-12.4f %-13.4f %-12.4f %-13.4f %-10.4f\n", row.name.c_str(),
                row.epb[0], row.epb[1], row.epb[2], row.epb[3], row.avg);
  }

  const double deap = rows[0].avg;
  const double holy = rows[1].avg;
  const double best = rows.back().avg;
  std::printf("\nHeadline ratios (paper -> ours):\n");
  std::printf("  Cross_opt_TED vs DEAP-CNN : 1544x -> %.0fx lower EPB\n", deap / best);
  std::printf("  Cross_opt_TED vs Holylight:  9.5x -> %.1fx lower EPB\n", holy / best);
  std::printf("\nNote: absolute EPB differs from the paper (our EPB definition uses\n"
              "bits = 2 * MACs * resolution; see EXPERIMENTS.md). The comparative\n"
              "shape — who wins and by what factor — is the reproduction target.\n");
  return 0;
}
