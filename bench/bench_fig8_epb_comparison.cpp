// Fig. 8 reproduction: per-model energy-per-bit of the photonic DNN
// accelerators (DEAP-CNN, Holylight, four CrossLight variants). The
// workload — model zoo, architecture, and backend row order — is the
// paper-repro scenario instead of hand-wiring each engine.
#include <cstdio>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "scenario/scenario.hpp"

int main() {
  using namespace xl;
  const scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::load(scenario::scenario_path("paper-repro"));
  const auto models = spec.model_zoo();
  api::Session session(spec.config);

  struct Row {
    std::string name;
    std::vector<double> epb;  // Per model.
    double avg = 0.0;
  };
  std::vector<Row> rows;

  // Baselines first, then CrossLight variants — the scenario's backend
  // order already matches the paper's row order.
  for (const std::string& name : spec.backends) {
    Row row;
    for (const auto& result : session.evaluate_all(name, models)) {
      row.name = result.report.accelerator;
      row.epb.push_back(result.epb_pj());
      row.avg += result.epb_pj();
    }
    row.avg /= static_cast<double>(row.epb.size());
    rows.push_back(row);
  }

  std::printf("=== Fig. 8: energy-per-bit of photonic DNN accelerators [pJ/bit] ===\n\n");
  std::printf("%-16s %-12s %-13s %-12s %-13s %-10s\n", "Accelerator", "LeNet5",
              "CNN-CIFAR10", "CNN-STL10", "Siamese-CNN", "Average");
  for (const Row& row : rows) {
    std::printf("%-16s %-12.4f %-13.4f %-12.4f %-13.4f %-10.4f\n", row.name.c_str(),
                row.epb[0], row.epb[1], row.epb[2], row.epb[3], row.avg);
  }

  const double deap = rows[0].avg;
  const double holy = rows[1].avg;
  const double best = rows.back().avg;
  std::printf("\nHeadline ratios (paper -> ours):\n");
  std::printf("  Cross_opt_TED vs DEAP-CNN : 1544x -> %.0fx lower EPB\n", deap / best);
  std::printf("  Cross_opt_TED vs Holylight:  9.5x -> %.1fx lower EPB\n", holy / best);
  std::printf("\nNote: absolute EPB differs from the paper (our EPB definition uses\n"
              "bits = 2 * MACs * resolution; see EXPERIMENTS.md). The comparative\n"
              "shape — who wins and by what factor — is the reproduction target.\n");
  return 0;
}
