// Section I anchor reproduction: BER of a photonic link vs MR resonance
// drift — "even a 0.25 nm drift can cause the BER to degrade from 1e-12 to
// 1e-6" — using the receiver noise model (shot + thermal + RIN).
#include <cstdio>

#include "photonics/microring.hpp"
#include "photonics/noise.hpp"

int main() {
  using namespace xl::photonics;

  // Interconnect-grade demux ring dropping one WDM channel to a receiver.
  MicroringDesign design;
  design.resonance_nm = 1550.0;
  design.q_factor = 2000.0;
  design.fsr_nm = 18.0;
  const Microring ring(design);

  // Calibrate launch power for BER ~ 1e-12 at zero drift (link margin the
  // designer would provision).
  double launch_mw = 1e-4;
  while (link_ber_with_drift(ring, 1550.0, 0.0, launch_mw) > 1e-12) launch_mw *= 1.05;

  std::printf("=== BER vs MR resonance drift (Section I motivation) ===\n");
  std::printf("(drop-port receiver, Q = %.0f, launch power %.3f mW "
              "calibrated to BER 1e-12)\n\n",
              design.q_factor, launch_mw);
  std::printf("%-12s %-14s %-12s\n", "drift [nm]", "dropped power", "BER");
  for (double drift : {0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.40, 0.50}) {
    Microring drifted = ring;
    drifted.set_fpv_drift_nm(drift);
    const double dropped = launch_mw * drifted.drop_fraction(1550.0);
    const double ber = link_ber_with_drift(ring, 1550.0, drift, launch_mw);
    std::printf("%-12.2f %-14.4f %-12.3e%s\n", drift, dropped, ber,
                drift == 0.25 ? "   <- paper anchor: ~1e-6" : "");
  }

  std::printf("\nWith CrossLight's optimized MRs the residual drift after the\n"
              "one-time TED trim is << 0.1 nm, keeping links at design BER;\n"
              "conventional devices without compensation (up to 7.1 nm drift)\n"
              "lose the channel entirely.\n");
  return 0;
}
