// Section V-B reproduction: achievable resolution from inter-channel
// crosstalk (Eqs. 8-10) — CrossLight's 16-bit claim at 15 MRs/bank with
// wavelength reuse, vs the dense combs prior accelerators need.
#include <cstdio>

#include "photonics/crosstalk.hpp"

int main() {
  using namespace xl::photonics;

  std::printf("=== Section V-B: crosstalk-limited resolution analysis ===\n");
  std::printf("(Q = 8000, FSR = 18 nm, lambda0 = 1550 nm; Eqs. 8-10)\n\n");

  std::printf("%-20s %-14s %-16s %-12s\n", "channels per comb", "spacing nm",
              "max noise power", "resolution bits");
  for (std::size_t channels : {5ul, 10ul, 15ul, 20ul, 30ul, 45ul, 60ul, 90ul, 120ul}) {
    const WavelengthGrid grid(channels, 18.0, 1550.0);
    const CrosstalkAnalysis a = analyze_crosstalk(grid);
    std::printf("%-20zu %-14.3f %-16.5f %-12d%s\n", channels, grid.spacing_nm(),
                a.max_noise_power, a.resolution_bits,
                channels == 15 ? "   <- CrossLight bank (paper: 16 bits)" : "");
  }

  std::printf("\nInterpretation anchors (Section V-B):\n");
  std::printf("  CrossLight: wavelength reuse caps combs at 15 channels (1.2 nm\n"
              "  spacing > 1 nm) -> 16-bit datapath.\n");
  std::printf("  DEAP-CNN-style dense combs (no reuse, ~60+ channels) -> ~4 bits.\n");
  std::printf("  Holylight-style per-device combs (~90+ channels) -> ~2 bits/device.\n");

  // Sensitivity to Q factor at the CrossLight operating point.
  std::printf("\nQ-factor sensitivity at 15 channels:\n");
  for (double q : {2000.0, 4000.0, 8000.0, 12000.0}) {
    ResolutionOptions opts;
    opts.q_factor = q;
    std::printf("  Q = %6.0f -> %2d bits\n", q, bank_resolution_bits(15, 18.0, opts));
  }
  return 0;
}
