// Fig. 7 reproduction: power consumption of the four CrossLight variants vs
// the photonic baselines (DEAP-CNN, Holylight) and electronic platforms.
// The workload — model zoo, architecture, and photonic backend order — is
// the paper-repro scenario; electronic reference rows still come from
// iterating the api backend registry.
#include <cstdio>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "scenario/scenario.hpp"

int main() {
  using namespace xl;
  const scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::load(scenario::scenario_path("paper-repro"));
  const auto models = spec.model_zoo();
  api::Session session(spec.config);

  std::printf("=== Fig. 7: power consumption comparison (4-model average) ===\n\n");
  std::printf("%-16s %-12s %s\n", "Platform", "Power [W]", "Breakdown / source");

  // Simulated photonic rows: baselines first, then the CrossLight variants
  // (the scenario's backend order matches the paper's Fig. 7 grouping).
  std::vector<std::string> baselines_first;
  std::vector<std::string> crosslight;
  for (const std::string& name : spec.backends) {
    if (name.rfind("crosslight:", 0) == 0) {
      crosslight.push_back(name);
    } else {
      baselines_first.push_back(name);
    }
  }

  for (const std::string& name : baselines_first) {
    const auto s = session.summarize(name, models);
    std::printf("%-16s %-12.1f simulated photonic baseline\n", s.accelerator.c_str(),
                s.avg_power_w);
  }
  for (const std::string& name : crosslight) {
    const auto s = session.summarize(name, models);
    const auto& p = session.evaluate(name, models.front()).report.power;
    std::printf("%-16s %-12.1f laser %.1f | TO %.1f | ADC/DAC %.1f | PD+TIA %.1f "
                "| other %.1f (W)\n",
                s.accelerator.c_str(), s.avg_power_w, p.laser_mw * 1e-3,
                p.to_tuning_mw * 1e-3, p.adc_dac_mw * 1e-3,
                (p.pd_mw + p.tia_mw) * 1e-3,
                (p.eo_tuning_mw + p.vcsel_mw + p.control_mw) * 1e-3);
  }

  // Electronic platforms (literature constants, [36]).
  for (const std::string& name : session.backends()) {
    if (!session.backend(name).capabilities().reference_only) continue;
    const auto s = session.summarize(name, models);
    std::printf("%-16s %-12.1f literature constant [36]\n", s.accelerator.c_str(),
                s.avg_power_w);
  }

  // Shape checks mirroring the paper's narrative.
  const auto power_of = [&](const std::string& name) {
    return session.summarize(name, models).avg_power_w;
  };
  const double base = power_of("crosslight:base");
  const double opt_ted = power_of("crosslight:opt_ted");
  std::printf("\nVariant ordering: Cross_base %.0f W > Cross_base_TED %.0f W > "
              "Cross_opt %.0f W > Cross_opt_TED %.0f W "
              "(paper ratio base/opt_TED ~4.9x; ours %.1fx)\n",
              base, power_of("crosslight:base_ted"), power_of("crosslight:opt"),
              opt_ted, base / opt_ted);
  std::printf("Cross_opt_TED sits below CPU/GPU power but above edge accelerators,\n"
              "as in the paper's Fig. 7.\n");
  return 0;
}
