// Fig. 7 reproduction: power consumption of the four CrossLight variants vs
// the photonic baselines (DEAP-CNN, Holylight) and electronic platforms.
#include <cstdio>
#include <vector>

#include "baselines/deap_cnn.hpp"
#include "baselines/electronic.hpp"
#include "baselines/holylight.hpp"
#include "core/accelerator.hpp"
#include "dnn/models.hpp"

int main() {
  using namespace xl;
  const auto models = dnn::table1_models();

  std::printf("=== Fig. 7: power consumption comparison (4-model average) ===\n\n");
  std::printf("%-16s %-12s %s\n", "Platform", "Power [W]", "Breakdown / source");

  // Photonic baselines (simulated).
  for (const auto& params :
       {baselines::deap_cnn_params(), baselines::holylight_params()}) {
    std::vector<core::AcceleratorReport> reports;
    for (const auto& m : models) {
      reports.push_back(baselines::evaluate_baseline(params, m));
    }
    const auto s = core::summarize(reports);
    std::printf("%-16s %-12.1f simulated photonic baseline\n", s.accelerator.c_str(),
                s.avg_power_w);
  }

  // CrossLight variants (simulated).
  for (auto v : {core::Variant::kBase, core::Variant::kBaseTed, core::Variant::kOpt,
                 core::Variant::kOptTed}) {
    const core::CrossLightAccelerator accel(core::variant_config(v));
    const auto reports = accel.evaluate_all(models);
    const auto s = core::summarize(reports);
    const auto& p = reports.front().power;
    std::printf("%-16s %-12.1f laser %.1f | TO %.1f | ADC/DAC %.1f | PD+TIA %.1f "
                "| other %.1f (W)\n",
                s.accelerator.c_str(), s.avg_power_w, p.laser_mw * 1e-3,
                p.to_tuning_mw * 1e-3, p.adc_dac_mw * 1e-3,
                (p.pd_mw + p.tia_mw) * 1e-3,
                (p.eo_tuning_mw + p.vcsel_mw + p.control_mw) * 1e-3);
  }

  // Electronic platforms (literature constants, [36]).
  for (const auto& e : baselines::electronic_platforms()) {
    std::printf("%-16s %-12.1f literature constant [36]\n", e.name.c_str(), e.power_w);
  }

  // Shape checks mirroring the paper's narrative.
  const auto power_of = [&](core::Variant v) {
    const core::CrossLightAccelerator accel(core::variant_config(v));
    return core::summarize(accel.evaluate_all(models)).avg_power_w;
  };
  const double base = power_of(core::Variant::kBase);
  const double opt_ted = power_of(core::Variant::kOptTed);
  std::printf("\nVariant ordering: Cross_base %.0f W > Cross_base_TED %.0f W > "
              "Cross_opt %.0f W > Cross_opt_TED %.0f W "
              "(paper ratio base/opt_TED ~4.9x; ours %.1fx)\n",
              base, power_of(core::Variant::kBaseTed), power_of(core::Variant::kOpt),
              opt_ted, base / opt_ted);
  std::printf("Cross_opt_TED sits below CPU/GPU power but above edge accelerators,\n"
              "as in the paper's Fig. 7.\n");
  return 0;
}
