// google-benchmark microbenchmarks of the simulator's hot kernels: VDP
// functional simulation (scalar and batched), TED eigen-solve, conv forward,
// and the full architecture evaluation pipeline.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/accelerator.hpp"
#include "core/batched_vdp_engine.hpp"
#include "core/vdp_simulator.hpp"
#include "dnn/conv2d.hpp"
#include "dnn/im2col.hpp"
#include "dnn/models.hpp"
#include "numerics/eigen.hpp"
#include "numerics/gemm.hpp"
#include "numerics/kernels.hpp"
#include "numerics/rng.hpp"
#include "thermal/crosstalk_matrix.hpp"
#include "thermal/ted.hpp"

namespace {

using namespace xl;

numerics::Matrix random_matrix(std::size_t rows, std::size_t cols, numerics::Rng& rng,
                               double lo, double hi) {
  numerics::Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.uniform(lo, hi);
  }
  return m;
}

void BM_VdpSimulatorDot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  numerics::Rng rng(1);
  std::vector<double> x(n);
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform(0.0, 1.0);
    w[i] = rng.uniform(-1.0, 1.0);
  }
  const core::VdpSimulator sim;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.dot(x, w));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_VdpSimulatorDot)->Arg(15)->Arg(60)->Arg(150);

// --- batched photonic kernels ------------------------------------------------
// The acceptance shape for the batched engine: a dense layer (batch 16,
// 64 -> 10, K = 64) and a conv layer lowered through im2col (batch 16,
// 8 -> 16 channels, 3x3 on 8x8, K = 72). Three implementations:
//   * "Legacy": the seed's per-dot datapath — Microring objects built and
//     imprinted per chunk, transmissions (and the dB extinction floor)
//     re-derived per element. Kept here as the speedup reference.
//   * "Scalar": today's VdpSimulator::dot, one call per output element
//     (LUT-accelerated but unamortized across the GEMM).
//   * "Batched": the whole GEMM on BatchedVdpEngine.

/// Seed-faithful scalar dot (pre-LUT): see git history of vdp_simulator.cpp.
double legacy_vdp_dot(std::span<const double> x, std::span<const double> w,
                      const photonics::WavelengthGrid& grid,
                      const core::VdpSimOptions& opts) {
  double sx = 0.0;
  double sw = 0.0;
  for (double v : x) sx = std::max(sx, std::abs(v));
  for (double v : w) sw = std::max(sw, std::abs(v));
  if (sx == 0.0 || sw == 0.0) return 0.0;
  const photonics::UniformQuantizer quant(opts.resolution_bits);
  const std::size_t bank = opts.mrs_per_bank;

  const auto arm_dot = [&](std::span<const double> a, std::span<const double> wn) {
    const std::size_t n = a.size();
    std::vector<photonics::Microring> ring_bank;
    ring_bank.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      photonics::MicroringDesign design;
      design.resonance_nm = grid.wavelength_nm(i);
      design.q_factor = opts.q_factor;
      design.fsr_nm = opts.fsr_nm;
      photonics::Microring mr(design);
      mr.imprint_weight(wn[i], grid.wavelength_nm(i));
      ring_bank.push_back(mr);
    }
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double power = a[i];
      for (const auto& mr : ring_bank) power *= mr.transmission(grid.wavelength_nm(i));
      sum += power;
    }
    return sum;
  };

  double acc = 0.0;
  for (std::size_t start = 0; start < x.size(); start += bank) {
    const std::size_t len = std::min(bank, x.size() - start);
    std::vector<double> a(len);
    std::vector<double> w_pos(len, 0.0);
    std::vector<double> w_neg(len, 0.0);
    for (std::size_t i = 0; i < len; ++i) {
      const double xv = x[start + i];
      const double wv = w[start + i] * (xv < 0.0 ? -1.0 : 1.0);
      a[i] = quant.quantize(std::abs(xv) / sx);
      const double w_mag = quant.quantize(std::abs(wv) / sw);
      (wv >= 0.0 ? w_pos : w_neg)[i] = w_mag;
    }
    const double partial = arm_dot(a, w_pos) - arm_dot(a, w_neg);
    const double norm = static_cast<double>(len);
    acc += (quant.quantize(std::abs(partial) / norm) * norm) *
           (partial < 0.0 ? -1.0 : 1.0);
  }
  return acc * sx * sw;
}

void BM_PhotonicDenseLegacy(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  numerics::Rng rng(4);
  const auto x = random_matrix(batch, 64, rng, -1.0, 1.0);
  const auto w = random_matrix(10, 64, rng, -1.0, 1.0);
  const core::VdpSimOptions opts;
  const photonics::WavelengthGrid grid(opts.mrs_per_bank, opts.fsr_nm,
                                       opts.center_wavelength_nm);
  std::vector<double> xr(64);
  std::vector<double> wr(64);
  for (auto _ : state) {
    double sink = 0.0;
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t i = 0; i < 64; ++i) xr[i] = x(b, i);
      for (std::size_t o = 0; o < 10; ++o) {
        for (std::size_t i = 0; i < 64; ++i) wr[i] = w(o, i);
        sink += legacy_vdp_dot(xr, wr, grid, opts);
      }
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch * 10 * 64));
}
BENCHMARK(BM_PhotonicDenseLegacy)->Arg(16);

void BM_PhotonicDenseScalar(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  numerics::Rng rng(4);
  const auto x = random_matrix(batch, 64, rng, -1.0, 1.0);
  const auto w = random_matrix(10, 64, rng, -1.0, 1.0);
  const core::VdpSimulator sim;
  std::vector<double> xr(64);
  std::vector<double> wr(64);
  for (auto _ : state) {
    double sink = 0.0;
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t i = 0; i < 64; ++i) xr[i] = x(b, i);
      for (std::size_t o = 0; o < 10; ++o) {
        for (std::size_t i = 0; i < 64; ++i) wr[i] = w(o, i);
        sink += sim.dot(xr, wr);
      }
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch * 10 * 64));
}
BENCHMARK(BM_PhotonicDenseScalar)->Arg(1)->Arg(16);

void BM_PhotonicDenseBatched(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  numerics::Rng rng(4);
  const auto x = random_matrix(batch, 64, rng, -1.0, 1.0);
  const auto w = random_matrix(10, 64, rng, -1.0, 1.0);
  core::BatchedVdpEngine engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.photonic_matmul(x, w));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch * 10 * 64));
}
BENCHMARK(BM_PhotonicDenseBatched)->Arg(1)->Arg(16);

void BM_PhotonicConvScalar(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  numerics::Rng rng(5);
  dnn::Conv2dConfig cfg{8, 16, 3, 1, 1};
  dnn::Tensor input({batch, 8, 8, 8});
  for (std::size_t i = 0; i < input.numel(); ++i) {
    input[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  const auto w = random_matrix(16, 72, rng, -1.0, 1.0);
  const core::VdpSimulator sim;
  const dnn::Tensor patches = dnn::im2col(input, cfg);
  const std::size_t rows = patches.dim(0);
  std::vector<double> xr(72);
  std::vector<double> wr(72);
  for (auto _ : state) {
    double sink = 0.0;
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t i = 0; i < 72; ++i) xr[i] = patches.at2(r, i);
      for (std::size_t o = 0; o < 16; ++o) {
        for (std::size_t i = 0; i < 72; ++i) wr[i] = w(o, i);
        sink += sim.dot(xr, wr);
      }
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rows * 16 * 72));
}
BENCHMARK(BM_PhotonicConvScalar)->Arg(1)->Arg(16);

void BM_PhotonicConvBatched(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  numerics::Rng rng(5);
  dnn::Conv2dConfig cfg{8, 16, 3, 1, 1};
  dnn::Tensor input({batch, 8, 8, 8});
  for (std::size_t i = 0; i < input.numel(); ++i) {
    input[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  const auto w = random_matrix(16, 72, rng, -1.0, 1.0);
  core::BatchedVdpEngine engine;
  const dnn::Tensor patches = dnn::im2col(input, cfg);
  const std::size_t rows = patches.dim(0);
  numerics::Matrix x(rows, 72);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t i = 0; i < 72; ++i) x(r, i) = patches.at2(r, i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.photonic_matmul(x, w));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rows * 16 * 72));
}
BENCHMARK(BM_PhotonicConvBatched)->Arg(1)->Arg(16);

// --- ISA-dispatched kernel pairs ---------------------------------------------
// Each hot-loop kernel is benchmarked twice on identical inputs: once pinned
// to the scalar reference table and once through the runtime-dispatched
// table. tools/check_bench_regression.py pairs *_Scalar with *_Dispatch to
// compute per-kernel speedups (and their geomean) and gates CI on them. On
// non-AVX2 hardware the two rows coincide (speedup ~1x).

std::vector<double> random_vector(std::size_t n, numerics::Rng& rng, double lo,
                                  double hi) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(lo, hi);
  return v;
}

void bench_kernel_gemm(benchmark::State& state,
                       const numerics::kernels::KernelTable& kt) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto panels = static_cast<std::size_t>(state.range(1));
  numerics::Rng rng(11);
  const auto a = random_vector(k, rng, -1.0, 1.0);
  const auto pack = random_vector(panels * 4 * k, rng, -1.0, 1.0);
  std::vector<double> out(panels * 4);
  for (auto _ : state) {
    kt.gemm_row_panels(a.data(), pack.data(), k, panels, out.data());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(k * panels * 4));
}
void BM_KernelGemm_Scalar(benchmark::State& state) {
  bench_kernel_gemm(state, numerics::kernels::scalar_table());
}
void BM_KernelGemm_Dispatch(benchmark::State& state) {
  bench_kernel_gemm(state, numerics::kernels::active_table());
}
BENCHMARK(BM_KernelGemm_Scalar)->Args({256, 16});
BENCHMARK(BM_KernelGemm_Dispatch)->Args({256, 16});

void bench_kernel_abs_max(benchmark::State& state,
                          const numerics::kernels::KernelTable& kt) {
  const auto n = static_cast<std::size_t>(state.range(0));
  numerics::Rng rng(12);
  const auto v = random_vector(n, rng, -4.0, 4.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kt.abs_max(v.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
void BM_KernelAbsMax_Scalar(benchmark::State& state) {
  bench_kernel_abs_max(state, numerics::kernels::scalar_table());
}
void BM_KernelAbsMax_Dispatch(benchmark::State& state) {
  bench_kernel_abs_max(state, numerics::kernels::active_table());
}
BENCHMARK(BM_KernelAbsMax_Scalar)->Arg(4096);
BENCHMARK(BM_KernelAbsMax_Dispatch)->Arg(4096);

void bench_kernel_arm_diag(benchmark::State& state,
                           const numerics::kernels::KernelTable& kt) {
  const auto len = static_cast<std::size_t>(state.range(0));
  numerics::Rng rng(13);
  const auto a = random_vector(len, rng, 0.0, 1.0);
  const auto detune = random_vector(len, rng, 0.0, 0.2);
  const auto dsq = random_vector(len, rng, 1e-4, 2e-2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kt.arm_sum_diag(a.data(), detune.data(), dsq.data(), 0.968, len));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(len));
}
void BM_KernelArmSumDiag_Scalar(benchmark::State& state) {
  bench_kernel_arm_diag(state, numerics::kernels::scalar_table());
}
void BM_KernelArmSumDiag_Dispatch(benchmark::State& state) {
  bench_kernel_arm_diag(state, numerics::kernels::active_table());
}
BENCHMARK(BM_KernelArmSumDiag_Scalar)->Arg(1024);
BENCHMARK(BM_KernelArmSumDiag_Dispatch)->Arg(1024);

void bench_kernel_arm_xtalk(benchmark::State& state,
                            const numerics::kernels::KernelTable& kt) {
  const auto len = static_cast<std::size_t>(state.range(0));
  numerics::Rng rng(14);
  const auto a = random_vector(len, rng, 0.1, 1.0);  // dense: no zero skips
  const auto detune = random_vector(len, rng, 0.0, 0.2);
  const auto dsq = random_vector(len, rng, 1e-4, 2e-2);
  const auto sep = random_vector(len * len, rng, -3.0, 3.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kt.arm_sum_xtalk(a.data(), detune.data(),
                                              sep.data(), len, dsq.data(),
                                              0.968, len));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(len * len));
}
void BM_KernelArmSumXtalk_Scalar(benchmark::State& state) {
  bench_kernel_arm_xtalk(state, numerics::kernels::scalar_table());
}
void BM_KernelArmSumXtalk_Dispatch(benchmark::State& state) {
  bench_kernel_arm_xtalk(state, numerics::kernels::active_table());
}
BENCHMARK(BM_KernelArmSumXtalk_Scalar)->Arg(64);
BENCHMARK(BM_KernelArmSumXtalk_Dispatch)->Arg(64);

void bench_kernel_hash_gaussian_n(benchmark::State& state,
                                  const numerics::kernels::KernelTable& kt) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> out(n);
  std::uint64_t base = 0;
  for (auto _ : state) {
    kt.hash_gaussian_n(0xFEEDFACE, base, n, out.data());
    base += n;
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
void BM_KernelHashGaussianN_Scalar(benchmark::State& state) {
  bench_kernel_hash_gaussian_n(state, numerics::kernels::scalar_table());
}
void BM_KernelHashGaussianN_Dispatch(benchmark::State& state) {
  bench_kernel_hash_gaussian_n(state, numerics::kernels::active_table());
}
BENCHMARK(BM_KernelHashGaussianN_Scalar)->Arg(4096);
BENCHMARK(BM_KernelHashGaussianN_Dispatch)->Arg(4096);

void BM_TiledGemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  numerics::Rng rng(6);
  const auto a = random_matrix(n, n, rng, -1.0, 1.0);
  const auto b = random_matrix(n, n, rng, -1.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(numerics::matmul_transposed(a, b));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_TiledGemm)->Arg(64)->Arg(128);

void BM_TedSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto coupling = thermal::coupling_matrix_exponential(n, 5.0);
  const thermal::TedTuner tuner(coupling);
  numerics::Rng rng(2);
  numerics::Vector targets(n);
  for (std::size_t i = 0; i < n; ++i) targets[i] = rng.uniform(0.1, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tuner.solve(targets).total_power_mw);
  }
}
BENCHMARK(BM_TedSolve)->Arg(10)->Arg(15)->Arg(30);

void BM_EigenSymmetric(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = thermal::coupling_matrix_exponential(n, 5.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(numerics::eigen_symmetric(m).eigenvalues.sum());
  }
}
BENCHMARK(BM_EigenSymmetric)->Arg(10)->Arg(20)->Arg(40);

void BM_Conv2dForward(benchmark::State& state) {
  numerics::Rng rng(3);
  dnn::Conv2d conv(dnn::Conv2dConfig{8, 16, 3, 1, 1}, rng);
  dnn::Tensor x({1, 8, 16, 16});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.uniform(0.0, 1.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x, false).sum());
  }
}
BENCHMARK(BM_Conv2dForward);

void BM_EvaluateModelOnAccelerator(benchmark::State& state) {
  const core::CrossLightAccelerator accel(core::best_config());
  const auto model = dnn::cnn_cifar10_spec();
  for (auto _ : state) {
    benchmark::DoNotOptimize(accel.evaluate(model).epb_pj());
  }
}
BENCHMARK(BM_EvaluateModelOnAccelerator);

void BM_MapModel(benchmark::State& state) {
  const auto cfg = core::best_config();
  const auto model = dnn::siamese_omniglot_spec();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::map_model(model, cfg).total_passes);
  }
}
BENCHMARK(BM_MapModel);

}  // namespace

// Custom main: default to machine-readable JSON alongside the console
// reporter (BENCH_micro_kernels.json) so the perf trajectory is tracked
// across PRs. Any explicit --benchmark_out= flag overrides the default.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string default_out = "--benchmark_out=BENCH_micro_kernels.json";
  std::string default_fmt = "--benchmark_out_format=json";
  bool has_out = false;
  bool has_fmt = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true;
    if (std::string(argv[i]).rfind("--benchmark_out_format", 0) == 0) has_fmt = true;
  }
  // Only default when the user manages neither flag: pairing the default
  // .json file with an explicit non-json format would corrupt it.
  if (!has_out && !has_fmt) {
    args.push_back(default_out.data());
    args.push_back(default_fmt.data());
  }
  int patched_argc = static_cast<int>(args.size());
  benchmark::Initialize(&patched_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(patched_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
