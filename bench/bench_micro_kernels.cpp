// google-benchmark microbenchmarks of the simulator's hot kernels: VDP
// functional simulation, TED eigen-solve, conv forward, and the full
// architecture evaluation pipeline.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/accelerator.hpp"
#include "core/vdp_simulator.hpp"
#include "dnn/conv2d.hpp"
#include "dnn/models.hpp"
#include "numerics/eigen.hpp"
#include "numerics/rng.hpp"
#include "thermal/crosstalk_matrix.hpp"
#include "thermal/ted.hpp"

namespace {

using namespace xl;

void BM_VdpSimulatorDot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  numerics::Rng rng(1);
  std::vector<double> x(n);
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform(0.0, 1.0);
    w[i] = rng.uniform(-1.0, 1.0);
  }
  const core::VdpSimulator sim;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.dot(x, w));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_VdpSimulatorDot)->Arg(15)->Arg(60)->Arg(150);

void BM_TedSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto coupling = thermal::coupling_matrix_exponential(n, 5.0);
  const thermal::TedTuner tuner(coupling);
  numerics::Rng rng(2);
  numerics::Vector targets(n);
  for (std::size_t i = 0; i < n; ++i) targets[i] = rng.uniform(0.1, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tuner.solve(targets).total_power_mw);
  }
}
BENCHMARK(BM_TedSolve)->Arg(10)->Arg(15)->Arg(30);

void BM_EigenSymmetric(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = thermal::coupling_matrix_exponential(n, 5.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(numerics::eigen_symmetric(m).eigenvalues.sum());
  }
}
BENCHMARK(BM_EigenSymmetric)->Arg(10)->Arg(20)->Arg(40);

void BM_Conv2dForward(benchmark::State& state) {
  numerics::Rng rng(3);
  dnn::Conv2d conv(dnn::Conv2dConfig{8, 16, 3, 1, 1}, rng);
  dnn::Tensor x({1, 8, 16, 16});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.uniform(0.0, 1.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x, false).sum());
  }
}
BENCHMARK(BM_Conv2dForward);

void BM_EvaluateModelOnAccelerator(benchmark::State& state) {
  const core::CrossLightAccelerator accel(core::best_config());
  const auto model = dnn::cnn_cifar10_spec();
  for (auto _ : state) {
    benchmark::DoNotOptimize(accel.evaluate(model).epb_pj());
  }
}
BENCHMARK(BM_EvaluateModelOnAccelerator);

void BM_MapModel(benchmark::State& state) {
  const auto cfg = core::best_config();
  const auto model = dnn::siamese_omniglot_spec();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::map_model(model, cfg).total_passes);
  }
}
BENCHMARK(BM_MapModel);

}  // namespace

BENCHMARK_MAIN();
