// Fig. 6 reproduction: FPS vs EPB vs area scatter over (N, K, n, m)
// configurations of the CONV/FC VDP unit pools; selection by max FPS/EPB.
#include <cstdio>

#include "core/dse.hpp"
#include "dnn/models.hpp"

int main() {
  using namespace xl::core;

  std::printf("=== Fig. 6: CrossLight sensitivity analysis (DSE over N, K, n, m) ===\n\n");
  const DseSweep sweep;  // Full default sweep.
  const auto points = run_dse(sweep, xl::dnn::table1_models());

  std::printf("%-4s %-4s %-4s %-4s %-12s %-12s %-10s %-10s %-12s\n", "N", "K", "n", "m",
              "avg FPS", "avg EPB pJ", "area mm2", "power W", "FPS/EPB");
  const std::size_t show = points.size() < 20 ? points.size() : 20;
  for (std::size_t i = 0; i < show; ++i) {
    const DsePoint& p = points[i];
    std::printf("%-4zu %-4zu %-4zu %-4zu %-12.0f %-12.4f %-10.1f %-10.1f %-12.3e\n",
                p.conv_unit_size, p.fc_unit_size, p.conv_units, p.fc_units, p.avg_fps,
                p.avg_epb_pj, p.area_mm2, p.avg_power_w, p.fps_per_epb());
  }
  std::printf("... (%zu configurations total, sorted by FPS/EPB)\n\n", points.size());

  const DsePoint& best = best_point(points);
  std::printf("Our sweep's best FPS/EPB: (N, K, n, m) = (%zu, %zu, %zu, %zu), "
              "area %.1f mm2\n",
              best.conv_unit_size, best.fc_unit_size, best.conv_units, best.fc_units,
              best.area_mm2);

  for (std::size_t i = 0; i < points.size(); ++i) {
    const DsePoint& p = points[i];
    if (p.conv_unit_size == 20 && p.fc_unit_size == 150 && p.conv_units == 100 &&
        p.fc_units == 60) {
      std::printf("Paper's selection  (20, 150, 100, 60): rank %zu of %zu, "
                  "FPS/EPB at %.0f%% of best, area %.1f mm2.\n"
                  "Documented deviation (EXPERIMENTS.md): our EPB is static-power\n"
                  "dominated, favouring smaller FC pools; the paper's pick remains\n"
                  "competitive and is used for all comparisons.\n",
                  i + 1, points.size(), 100.0 * p.fps_per_epb() / best.fps_per_epb(),
                  p.area_mm2);
    }
  }
  return 0;
}
