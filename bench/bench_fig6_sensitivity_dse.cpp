// Fig. 6 reproduction: FPS vs EPB vs area scatter over (N, K, n, m)
// configurations of the CONV/FC VDP unit pools; selection by max FPS/EPB.
//
// Doubles as the DseEngine performance harness: the same sweep runs through
// the serial path (the pre-engine behavior: no cache, one candidate at a
// time) and the OpenMP-parallel engine, asserts bit-identity between the
// two, re-runs the parallel engine warm to measure the memo cache, and
// emits BENCH_fig6_dse.json with the wall-clock trajectory.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>

#include "api/json_writer.hpp"
#include "core/dse_engine.hpp"
#include "dnn/models.hpp"

#include "exec/task_pool.hpp"

#if defined(XL_USE_OPENMP) && defined(_OPENMP)
#include <omp.h>
#endif

namespace {

double run_ms(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

bool points_identical(const std::vector<xl::core::DsePoint>& a,
                      const std::vector<xl::core::DsePoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& p = a[i];
    const auto& q = b[i];
    if (p.conv_unit_size != q.conv_unit_size || p.fc_unit_size != q.fc_unit_size ||
        p.conv_units != q.conv_units || p.fc_units != q.fc_units ||
        p.avg_fps != q.avg_fps || p.avg_epb_pj != q.avg_epb_pj ||
        p.area_mm2 != q.area_mm2 || p.avg_power_w != q.avg_power_w) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  using namespace xl::core;

  std::printf("=== Fig. 6: CrossLight sensitivity analysis (DSE over N, K, n, m) ===\n\n");
  const DseSweep sweep;  // Full default sweep.
  const auto models = xl::dnn::table1_models();

#if defined(XL_USE_OPENMP) && defined(_OPENMP)
  const int threads = omp_get_max_threads();
#else
  const int threads = static_cast<int>(xl::exec::width());
#endif

  // Serial reference: the pre-engine sweep shape (no memo, no parallelism).
  DseEngine::Options serial_opts;
  serial_opts.parallel = false;
  serial_opts.cache_enabled = false;
  DseEngine serial_engine(serial_opts);
  DseResult serial;
  const double serial_ms = run_ms([&] { serial = serial_engine.run(sweep, models); });

  // Parallel engine, cold cache, then warm (same engine, same sweep).
  DseEngine parallel_engine;
  DseResult parallel;
  const double parallel_ms =
      run_ms([&] { parallel = parallel_engine.run(sweep, models); });
  DseResult warm;
  const double warm_ms = run_ms([&] { warm = parallel_engine.run(sweep, models); });

  const bool identical = points_identical(serial.points, parallel.points) &&
                         points_identical(parallel.points, warm.points);
  if (!identical) {
    std::fprintf(stderr, "FAIL: serial and parallel DSE results differ\n");
    return 1;
  }
  const double speedup = parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;

  const auto& points = parallel.points;
  std::printf("%-4s %-4s %-4s %-4s %-12s %-12s %-10s %-10s %-12s\n", "N", "K", "n", "m",
              "avg FPS", "avg EPB pJ", "area mm2", "power W", "FPS/EPB");
  const std::size_t show = points.size() < 20 ? points.size() : 20;
  for (std::size_t i = 0; i < show; ++i) {
    const DsePoint& p = points[i];
    std::printf("%-4zu %-4zu %-4zu %-4zu %-12.0f %-12.4f %-10.1f %-10.1f %-12.3e\n",
                p.conv_unit_size, p.fc_unit_size, p.conv_units, p.fc_units, p.avg_fps,
                p.avg_epb_pj, p.area_mm2, p.avg_power_w, p.fps_per_epb());
  }
  std::printf("... (%zu configurations total, sorted by FPS/EPB; Pareto front: %zu)\n\n",
              points.size(), parallel.pareto.size());

  const DsePoint& best = parallel.best();
  std::printf("Our sweep's best FPS/EPB: (N, K, n, m) = (%zu, %zu, %zu, %zu), "
              "area %.1f mm2\n",
              best.conv_unit_size, best.fc_unit_size, best.conv_units, best.fc_units,
              best.area_mm2);

  std::size_t paper_rank = 0;  // 1-based; 0 = missing from the grid.
  const DsePoint* paper = nullptr;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const DsePoint& p = points[i];
    if (p.conv_unit_size == 20 && p.fc_unit_size == 150 && p.conv_units == 100 &&
        p.fc_units == 60) {
      paper_rank = i + 1;
      paper = &p;
      std::printf("Paper's selection  (20, 150, 100, 60): rank %zu of %zu, "
                  "FPS/EPB at %.0f%% of best, area %.1f mm2.\n"
                  "Documented deviation (EXPERIMENTS.md): our EPB is static-power\n"
                  "dominated, favouring smaller FC pools; the paper's pick remains\n"
                  "competitive and is used for all comparisons.\n",
                  paper_rank, points.size(), 100.0 * p.fps_per_epb() / best.fps_per_epb(),
                  p.area_mm2);
    }
  }
  if (paper == nullptr) {
    std::fprintf(stderr, "FAIL: paper selection (20, 150, 100, 60) missing from grid\n");
    return 1;
  }

  std::printf("\nDseEngine: %d threads | serial %.1f ms | parallel %.1f ms (%.2fx) | "
              "warm re-run %.1f ms (%zu evals, %zu cache hits, %.0f%% hit rate)\n",
              threads, serial_ms, parallel_ms, speedup, warm_ms, warm.stats.evaluations,
              warm.stats.cache_hits, 100.0 * warm.stats.cache_hit_rate());

  xl::api::JsonWriter writer;
  writer.field("bench", "fig6_sensitivity_dse");
  writer.field("threads", threads);
  writer.field("grid_candidates", parallel.stats.grid_candidates);
  writer.field("area_filtered", parallel.stats.area_filtered);
  writer.field("models", models.size());
  writer.field("serial_ms", serial_ms);
  writer.field("parallel_ms", parallel_ms);
  writer.field("speedup", speedup);
  writer.field("warm_ms", warm_ms);
  writer.field("warm_evaluations", warm.stats.evaluations);
  writer.field("warm_cache_hits", warm.stats.cache_hits);
  writer.field("warm_cache_hit_rate", warm.stats.cache_hit_rate());
  writer.field("bit_identical", identical);
  writer.begin_object("best");
  writer.field("N", best.conv_unit_size);
  writer.field("K", best.fc_unit_size);
  writer.field("n", best.conv_units);
  writer.field("m", best.fc_units);
  writer.field("fps_per_epb", best.fps_per_epb());
  writer.field("area_mm2", best.area_mm2);
  writer.end_object();
  writer.begin_object("paper_selection");
  writer.field("N", static_cast<std::size_t>(20));
  writer.field("K", static_cast<std::size_t>(150));
  writer.field("n", static_cast<std::size_t>(100));
  writer.field("m", static_cast<std::size_t>(60));
  writer.field("present_on_grid", true);
  writer.field("rank", paper_rank);
  writer.field("fps_per_epb_vs_best", paper->fps_per_epb() / best.fps_per_epb());
  writer.field("area_mm2", paper->area_mm2);
  writer.end_object();
  xl::api::write_dse_stats(writer, parallel.stats);
  xl::api::write_pareto_front(writer, parallel);
  std::ofstream("BENCH_fig6_dse.json") << writer.finish() << '\n';
  std::printf("Wrote BENCH_fig6_dse.json\n");
  return 0;
}
