// bench_fleet — node-scaling sweep of the xl::fleet layer, tracking the
// distributed serving + DSE trajectory per PR as BENCH_fleet.json.
//
// Serving: one fixed burst trace of mixed-size requests round-robins over
// four data-parallel registrations of the proxy MLP, replayed on fleets of
// {1, 2, 4} nodes (one paced shard per node, hardware-time pacing on, so
// "achieved FPS" measures the simulated accelerator pool, not the host
// CPU). The round-robin partition spreads the four models across the
// nodes, so the shard pool grows with the fleet. Acceptance: achieved FPS
// must increase monotonically from 1 -> 4 nodes at this fixed offered
// load, with bit-identical logits across every run (the fleet determinism
// contract).
//
// DSE: the same sweep runs distributed on the 4-node fleet — cold (the
// evaluation work striped across the nodes, memo deltas merged) and warm
// (the union cache covers the grid; acceptance: zero evaluator calls).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "core/mapper.hpp"
#include "core/scheduler.hpp"
#include "dnn/datasets.hpp"
#include "dnn/models.hpp"
#include "fleet/fleet.hpp"
#include "numerics/rng.hpp"

namespace {

constexpr std::size_t kRequests = 96;
constexpr std::size_t kMaxBatch = 8;
constexpr double kDeadlineUs = 500.0;
constexpr double kPaceScale = 500000.0;  // Simulated us -> wall us multiplier.
constexpr std::size_t kDpModels = 4;     // Data-parallel registrations.

struct RunResult {
  double wall_us = 0.0;
  double achieved_fps = 0.0;
  double checksum = 0.0;  ///< Sum over every logit of the trace.
  xl::fleet::FleetStats stats;
};

std::string model_name(std::size_t k) { return "proxy-" + std::to_string(k); }

xl::fleet::FleetOptions fleet_options(std::size_t nodes, bool paced) {
  using namespace xl;
  fleet::FleetOptions options;
  options.nodes = nodes;
  options.serving.workers = 1;  // One shard per node: nodes ARE the pool.
  options.serving.max_batch = kMaxBatch;
  options.serving.deadline_us = kDeadlineUs;
  options.serving.pace_hardware_time = paced;
  options.serving.pace_scale = kPaceScale;
  options.serving.architecture = core::best_config();
  return options;
}

void register_zoo(xl::fleet::FleetCoordinator& coordinator,
                  xl::dnn::Table1ProxyMlp& proxy) {
  for (std::size_t k = 0; k < kDpModels; ++k) {
    xl::serve::ServedModel model =
        xl::serve::table1_proxy_served_model(proxy.net);
    model.name = model_name(k);
    coordinator.register_model({std::move(model), /*model_parallel=*/false});
  }
}

RunResult run_trace(xl::dnn::Table1ProxyMlp& proxy, std::size_t nodes) {
  using namespace xl;
  fleet::FleetCoordinator coordinator(core::VdpSimOptions{},
                                      fleet_options(nodes, /*paced=*/true));
  register_zoo(coordinator, proxy);
  coordinator.start();

  // The canonical fixed trace — identical for every node count.
  const std::vector<dnn::Tensor> trace =
      serve::make_mixed_size_trace(proxy.test, kRequests, kMaxBatch);
  const auto t0 = serve::Clock::now();
  std::vector<std::future<serve::InferResult>> futures;
  futures.reserve(kRequests);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    futures.push_back(coordinator.submit(model_name(i % kDpModels), trace[i]));
  }

  RunResult result;
  std::size_t samples = 0;
  for (auto& future : futures) {
    const serve::InferResult r = future.get();
    samples += r.logits.dim(0);
    for (std::size_t j = 0; j < r.logits.numel(); ++j) {
      result.checksum += static_cast<double>(r.logits[j]);
    }
  }
  result.wall_us =
      std::chrono::duration<double, std::micro>(serve::Clock::now() - t0).count();
  coordinator.stop();
  result.stats = coordinator.stats();
  result.achieved_fps = static_cast<double>(samples) * 1e6 / result.wall_us;
  return result;
}

void write_run(xl::api::JsonWriter& writer, std::size_t nodes, const RunResult& r) {
  writer.begin_object();
  writer.field("nodes", nodes);
  writer.field("achieved_fps", r.achieved_fps);
  writer.field("wall_us", r.wall_us);
  writer.field("logits_checksum", r.checksum);
  xl::api::write_fleet_stats(writer, "fleet", r.stats);
  writer.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xl;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_fleet.json";
  dnn::Table1ProxyMlp proxy = dnn::train_table1_proxy_mlp(6);

  api::JsonWriter writer;
  writer.field("bench", "fleet");
  writer.field("model", "table1-proxy-mlp");
  writer.field("dp_registrations", kDpModels);
  writer.field("requests", kRequests);
  writer.field("max_batch", kMaxBatch);
  writer.field("deadline_us", kDeadlineUs);
  writer.field("pace_scale", kPaceScale);

  const std::vector<std::size_t> node_counts = {1, 2, 4};
  std::vector<double> burst_fps;
  std::vector<double> checksums;
  writer.begin_array("runs");
  for (const std::size_t nodes : node_counts) {
    const RunResult r = run_trace(proxy, nodes);
    burst_fps.push_back(r.achieved_fps);
    checksums.push_back(r.checksum);
    write_run(writer, nodes, r);
    std::printf("burst  %zu node(s): %7.0f samples/s | %6zu frames | "
                "%8zu payload bytes\n",
                nodes, r.achieved_fps,
                static_cast<std::size_t>(r.stats.transport.frames),
                static_cast<std::size_t>(r.stats.transport.payload_bytes));
  }
  writer.end_array();

  // Distributed DSE on a 4-node fleet (no pacing: DSE never touches the
  // serving shards). Cold stripes the admitted grid over the nodes; warm
  // must be answered entirely by the merged memo.
  fleet::FleetCoordinator dse_fleet(core::VdpSimOptions{},
                                    fleet_options(4, /*paced=*/false));
  register_zoo(dse_fleet, proxy);
  dse_fleet.start();
  core::DseSweep sweep;
  sweep.conv_unit_sizes = {10, 20, 30};
  sweep.fc_unit_sizes = {100, 150};
  sweep.conv_unit_counts = {50, 100};
  sweep.fc_unit_counts = {30, 60};
  const std::vector<dnn::ModelSpec> models = dnn::table1_models();
  const fleet::FleetDseResult cold = dse_fleet.run_dse(sweep, models);
  const fleet::FleetDseResult warm = dse_fleet.run_dse(sweep, models);
  dse_fleet.stop();

  writer.begin_object("dse");
  writer.field("grid_candidates", cold.result.stats.grid_candidates);
  writer.field("points", cold.result.points.size());
  writer.field("pareto", cold.result.pareto.size());
  writer.begin_array("cold_node_evaluations");
  for (const std::size_t n : cold.node_evaluations) {
    writer.element(static_cast<double>(n));
  }
  writer.end_array();
  writer.field("cold_total_evaluations", cold.total_evaluations());
  writer.field("warm_total_evaluations", warm.total_evaluations());
  writer.end_object();
  std::printf("\ndse    4 node(s): %zu cold evaluations striped [",
              cold.total_evaluations());
  for (std::size_t r = 0; r < cold.node_evaluations.size(); ++r) {
    std::printf("%s%zu", r ? ", " : "", cold.node_evaluations[r]);
  }
  std::printf("], warm re-run %zu\n", warm.total_evaluations());

  bool monotonic = true;
  for (std::size_t i = 1; i < burst_fps.size(); ++i) {
    monotonic = monotonic && burst_fps[i] > burst_fps[i - 1];
  }
  bool deterministic = true;
  for (const double checksum : checksums) {
    deterministic = deterministic && checksum == checksums.front();
  }
  const bool warm_free = warm.total_evaluations() == 0;
  writer.field("fps_monotonic_1_to_4_nodes", monotonic);
  writer.field("logits_deterministic_across_runs", deterministic);
  writer.field("warm_dse_is_free", warm_free);
  std::printf("\nachieved FPS monotonic 1 -> 4 nodes  : %s\n",
              monotonic ? "yes" : "NO");
  std::printf("logits deterministic across all runs : %s\n",
              deterministic ? "yes" : "NO");
  std::printf("warm distributed DSE re-run is free  : %s\n",
              warm_free ? "yes" : "NO");

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << writer.finish();
  std::printf("wrote %s\n", out_path.c_str());
  return (monotonic && deterministic && warm_free) ? 0 : 1;
}
