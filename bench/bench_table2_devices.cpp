// Table II reproduction: optoelectronic device parameters used by every
// photonic-accelerator analysis in this repository, plus the Section V-A
// loss factors, printed from the single source of truth (DeviceParams).
#include <cstdio>

#include "photonics/device_params.hpp"

int main() {
  const auto p = xl::photonics::default_device_params();

  std::printf("=== Table II: Parameters considered for analyses ===\n\n");
  std::printf("%-22s %-12s %s\n", "Device", "Latency", "Power");
  std::printf("%-22s %-12s %.1f uW/nm\n", "EO Tuning [20]",
              "20 ns", p.eo_tuning_power_uw_per_nm);
  std::printf("%-22s %-12s %.1f mW/FSR\n", "TO Tuning [17]",
              "4 us", p.to_tuning_power_mw_per_fsr);
  std::printf("%-22s %-12s %.2f mW\n", "VCSEL [32]", "10 ns", p.vcsel_power_mw);
  std::printf("%-22s %-12s %.1f mW\n", "TIA [33]", "0.15 ns", p.tia_power_mw);
  std::printf("%-22s %-12s %.1f mW\n", "Photodetector [34]", "5.8 ps", p.pd_power_mw);

  std::printf("\nSignal losses (Section V-A):\n");
  std::printf("  propagation      %.2f dB/cm\n", p.propagation_loss_db_per_cm);
  std::printf("  splitter         %.2f dB\n", p.splitter_loss_db);
  std::printf("  combiner         %.2f dB\n", p.combiner_loss_db);
  std::printf("  MR through       %.2f dB\n", p.mr_through_loss_db);
  std::printf("  MR modulation    %.2f dB\n", p.mr_modulation_loss_db);
  std::printf("  microdisk        %.2f dB\n", p.microdisk_loss_db);
  std::printf("  EO tuning        %.2f dB/cm\n", p.eo_tuning_loss_db_per_cm);
  std::printf("  TO tuning        %.2f dB/cm\n", p.to_tuning_loss_db_per_cm);

  std::printf("\nTransceiver [37]: up to %.0f Gb/s at %.0f mW (%.2f pJ/bit)\n",
              p.transceiver_max_rate_gbps, p.transceiver_max_power_mw,
              p.transceiver_energy_pj_per_bit());
  std::printf("Optimized MR: Q = %.0f, FSR = %.0f nm, lambda0 = %.0f nm\n",
              p.mr_q_factor, p.mr_fsr_nm, p.center_wavelength_nm);
  std::printf("FPV drift: conventional %.1f nm -> optimized %.1f nm (%.0f%% reduction)\n",
              p.fpv_drift_conventional_nm, p.fpv_drift_optimized_nm,
              100.0 * (1.0 - p.fpv_drift_optimized_nm / p.fpv_drift_conventional_nm));
  std::printf("Derived: TO tuning %.2f mW/nm, MR half-bandwidth %.4f nm\n",
              p.to_tuning_power_mw_per_nm(), p.mr_half_bandwidth_nm());
  return 0;
}
