// bench_hotpath — the zero-allocation steady-state contract plus the
// planned-vs-legacy hot-path speedup, tracked per PR as BENCH_hotpath.json.
//
// Three measurements over the Table I proxy MLP with the full effect stack:
//
//   * engine — the shard inner loop in isolation: {reset_effects;
//     infer} over a fixed max-batch of samples, legacy infer_batch vs the
//     cached ExecutionPlan's infer_views. The planned loop runs under the
//     operator-new interposer (numerics/alloc_counter.hpp) after one warm-up
//     iteration; the acceptance contract is EXACTLY zero heap allocations
//     per request in steady state, and bit-identical logits to legacy.
//
//   * serving — the full single-worker runtime (submit -> queue -> batcher ->
//     shard -> future) over the canonical mixed-size burst trace, with
//     use_execution_plan off vs on, plus a third arm with use_executor on
//     (drain tasks on the xl::exec pool instead of a dedicated worker
//     thread). Requests/s must improve; logits must be bit-identical across
//     all three arms.
//
//   * dispatch latency — sequential lone 1-sample requests with deadline 0:
//     p50/p99 of submit -> get in thread mode vs executor mode. Gated as
//     threads/executor ratios (higher = executor dispatches faster); the
//     executor's inline dispatch removes the cross-thread wakeup from the
//     lone-request tail.
//
// The JSON carries a top-level "metrics" object of machine-portable numbers
// (ratios and the alloc count — never absolute times), gated by
// tools/check_bench_regression.py against bench/baselines/BENCH_hotpath.json;
// "allocs_per_request" is hard-gated to zero regardless of baseline.
//
/// Exit status: non-zero when a steady-state allocation is observed, logits
// diverge between paths, or the serving speedup falls below kMinSpeedup.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "core/effects.hpp"
#include "core/execution_plan.hpp"
#include "core/photonic_inference.hpp"
#include "dnn/datasets.hpp"
#include "dnn/models.hpp"
#include "numerics/alloc_counter.hpp"
#include "numerics/rng.hpp"
#include "serve/serving_runtime.hpp"

namespace {

using xl::core::PhotonicInferenceEngine;
using xl::core::RowViewIn;
using xl::core::RowViewOut;
using xl::core::VdpSimOptions;
using xl::dnn::Tensor;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kMaxBatch = 8;
constexpr std::size_t kEngineIters = 60;
constexpr std::size_t kRequests = 96;
constexpr std::size_t kServingRepeats = 3;
constexpr std::size_t kLatencyRequests = 64;
constexpr std::size_t kLatencyRepeats = 3;
/// ISSUE acceptance floor: planned single-worker serving throughput must be
/// at least this multiple of the legacy path on the same machine and trace.
constexpr double kMinSpeedup = 1.3;

double elapsed_us(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

xl::dnn::Network make_proxy() {
  xl::numerics::Rng rng(21);
  return xl::dnn::build_table1_proxy_mlp(rng);
}

VdpSimOptions full_effects_vdp() {
  VdpSimOptions vdp;
  vdp.effects = xl::core::EffectConfig::parse("all");
  return vdp;
}

Tensor make_batch(std::size_t rows) {
  Tensor x({rows, 1, 12, 12});
  xl::numerics::Rng rng(5);
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return x;
}

struct EngineResult {
  double us_per_batch = 0.0;
  double allocs_per_request = 0.0;  ///< Planned loop only; legacy leaves -1.
  std::size_t arena_regrows = 0;
  Tensor last_logits;
};

EngineResult run_engine_legacy(const Tensor& batch) {
  xl::dnn::Network net = make_proxy();
  PhotonicInferenceEngine engine(net, full_effects_vdp());
  engine.engine().reset_effects();
  EngineResult r;
  r.allocs_per_request = -1.0;
  r.last_logits = engine.infer_batch(batch);  // Warm-up parity with planned.
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < kEngineIters; ++i) {
    engine.engine().reset_effects();
    r.last_logits = engine.infer_batch(batch);
  }
  r.us_per_batch = elapsed_us(t0, Clock::now()) / kEngineIters;
  return r;
}

EngineResult run_engine_planned(const Tensor& batch) {
  xl::dnn::Network net = make_proxy();
  PhotonicInferenceEngine engine(net, full_effects_vdp());
  engine.prepare_plan(batch.shape(), kMaxBatch);

  EngineResult r;
  r.last_logits = Tensor({batch.dim(0), engine.plan()->output_numel()});
  const RowViewIn in{batch.data(), batch.dim(0)};
  const RowViewOut out{r.last_logits.data(), batch.dim(0)};

  // Warm-up: the first execution may grow lazily initialized thread/OpenMP
  // scratch; everything after it must be allocation-free.
  engine.engine().reset_effects();
  engine.infer_views({&in, 1}, {&out, 1});

  xl::numerics::allocs::reset();
  xl::numerics::allocs::set_counting(true);
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < kEngineIters; ++i) {
    engine.engine().reset_effects();
    engine.infer_views({&in, 1}, {&out, 1});
  }
  r.us_per_batch = elapsed_us(t0, Clock::now()) / kEngineIters;
  xl::numerics::allocs::set_counting(false);
  r.allocs_per_request =
      static_cast<double>(xl::numerics::allocs::total()) /
      static_cast<double>(kEngineIters);
  r.arena_regrows = engine.plan()->arena_stats().regrows;
  return r;
}

struct ServingResult {
  double wall_us = 0.0;
  double requests_per_s = 0.0;
  double samples_per_s = 0.0;
  double checksum = 0.0;
  std::vector<Tensor> logits;
};

ServingResult run_serving(xl::dnn::Network& prototype,
                          const std::vector<Tensor>& trace, bool use_plan,
                          bool use_executor = false) {
  using namespace xl;
  serve::ServingOptions options;
  options.workers = 1;
  options.max_batch = kMaxBatch;
  options.deadline_us = 200.0;
  options.use_execution_plan = use_plan;
  options.use_executor = use_executor;

  serve::ServingRuntime runtime(full_effects_vdp(), options);
  runtime.register_model(serve::table1_proxy_served_model(prototype));
  runtime.start();

  ServingResult best;
  for (std::size_t repeat = 0; repeat < kServingRepeats; ++repeat) {
    const auto t0 = serve::Clock::now();
    std::vector<std::future<serve::InferResult>> futures;
    futures.reserve(trace.size());
    for (const Tensor& input : trace) {
      futures.push_back(runtime.submit("table1-proxy-mlp", input));
    }
    ServingResult r;
    std::size_t samples = 0;
    r.logits.reserve(trace.size());
    for (auto& future : futures) {
      serve::InferResult res = future.get();
      samples += res.logits.dim(0);
      for (std::size_t j = 0; j < res.logits.numel(); ++j) {
        r.checksum += static_cast<double>(res.logits[j]);
      }
      r.logits.push_back(std::move(res.logits));
    }
    r.wall_us = elapsed_us(t0, serve::Clock::now());
    r.requests_per_s = static_cast<double>(trace.size()) * 1e6 / r.wall_us;
    r.samples_per_s = static_cast<double>(samples) * 1e6 / r.wall_us;
    // Best of N: queue scheduling jitter only ever slows a run down.
    if (best.wall_us == 0.0 || r.wall_us < best.wall_us) best = std::move(r);
  }
  runtime.stop();
  return best;
}

struct LatencyResult {
  double p50_us = 0.0;
  double p99_us = 0.0;
};

/// Single-request dispatch latency: sequential submit -> get over lone
/// one-sample requests with deadline 0, so each measured interval is queue
/// wakeup + dispatch + one planned inference — the exact path the executor
/// rework targets (no batching, no pipelining to hide the wakeup).
LatencyResult run_dispatch_latency(xl::dnn::Network& prototype,
                                   bool use_executor) {
  using namespace xl;
  serve::ServingOptions options;
  options.workers = 1;
  options.max_batch = kMaxBatch;
  options.deadline_us = 0.0;
  options.use_execution_plan = true;
  options.use_executor = use_executor;

  serve::ServingRuntime runtime(full_effects_vdp(), options);
  runtime.register_model(serve::table1_proxy_served_model(prototype));
  runtime.start();

  const Tensor lone = make_batch(1);
  for (std::size_t i = 0; i < 4; ++i) {  // Warm plan + thread/lane caches.
    runtime.submit("table1-proxy-mlp", lone).get();
  }
  LatencyResult best;
  for (std::size_t repeat = 0; repeat < kLatencyRepeats; ++repeat) {
    std::vector<double> latencies;
    latencies.reserve(kLatencyRequests);
    for (std::size_t i = 0; i < kLatencyRequests; ++i) {
      const auto t0 = Clock::now();
      runtime.submit("table1-proxy-mlp", lone).get();
      latencies.push_back(elapsed_us(t0, Clock::now()));
    }
    const auto [p50, p99] = serve::latency_p50_p99_us(std::move(latencies));
    // Best of N by p50: scheduling jitter only ever slows a run down.
    if (best.p50_us == 0.0 || p50 < best.p50_us) best = {p50, p99};
  }
  runtime.stop();
  return best;
}

bool bit_identical(const Tensor& a, const Tensor& b) {
  return a.numel() == b.numel() &&
         std::memcmp(a.data(), b.data(), a.numel() * sizeof(float)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xl;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_hotpath.json";
  bool pass = true;

  // --- Engine-level steady state -----------------------------------------
  const Tensor batch = make_batch(kMaxBatch);
  const EngineResult legacy = run_engine_legacy(batch);
  const EngineResult planned = run_engine_planned(batch);
  const double engine_speedup = legacy.us_per_batch / planned.us_per_batch;
  const bool engine_identical = bit_identical(legacy.last_logits, planned.last_logits);
  const bool zero_alloc = planned.allocs_per_request == 0.0;

  std::printf("engine (batch %zu, full effects, %zu iters):\n", kMaxBatch,
              kEngineIters);
  std::printf("  legacy  : %8.1f us/batch\n", legacy.us_per_batch);
  std::printf("  planned : %8.1f us/batch (%.2fx) | %.0f allocs/request | "
              "%zu arena regrows\n",
              planned.us_per_batch, engine_speedup, planned.allocs_per_request,
              planned.arena_regrows);
  std::printf("  logits bit-identical: %s\n", engine_identical ? "yes" : "NO");
  pass = pass && engine_identical && zero_alloc;

  // --- Serving throughput (single worker) --------------------------------
  dnn::Network prototype = make_proxy();
  const dnn::Dataset data =
      dnn::generate_classification(dnn::table1_proxy_task(), 64, /*salt=*/3);
  const std::vector<Tensor> trace =
      serve::make_mixed_size_trace(data, kRequests, kMaxBatch);
  const ServingResult serve_legacy = run_serving(prototype, trace, false);
  const ServingResult serve_planned = run_serving(prototype, trace, true);
  const ServingResult serve_executor =
      run_serving(prototype, trace, true, /*use_executor=*/true);
  const double serving_speedup =
      serve_legacy.wall_us / serve_planned.wall_us;
  const double executor_speedup = serve_planned.wall_us / serve_executor.wall_us;
  bool serving_identical = serve_legacy.logits.size() == serve_planned.logits.size();
  for (std::size_t i = 0; serving_identical && i < serve_legacy.logits.size(); ++i) {
    serving_identical = bit_identical(serve_legacy.logits[i], serve_planned.logits[i]);
  }
  bool executor_identical =
      serve_planned.logits.size() == serve_executor.logits.size();
  for (std::size_t i = 0; executor_identical && i < serve_planned.logits.size();
       ++i) {
    executor_identical =
        bit_identical(serve_planned.logits[i], serve_executor.logits[i]);
  }

  std::printf("\nserving (1 worker, %zu mixed-size requests, best of %zu):\n",
              kRequests, kServingRepeats);
  std::printf("  legacy  : %8.0f samples/s (%.0f req/s)\n",
              serve_legacy.samples_per_s, serve_legacy.requests_per_s);
  std::printf("  planned : %8.0f samples/s (%.0f req/s) -> %.2fx\n",
              serve_planned.samples_per_s, serve_planned.requests_per_s,
              serving_speedup);
  std::printf("  executor: %8.0f samples/s (%.0f req/s) -> %.2fx vs threads\n",
              serve_executor.samples_per_s, serve_executor.requests_per_s,
              executor_speedup);
  std::printf("  logits bit-identical: %s (executor: %s)\n",
              serving_identical ? "yes" : "NO", executor_identical ? "yes" : "NO");
  std::printf("  speedup >= %.2fx: %s\n", kMinSpeedup,
              serving_speedup >= kMinSpeedup ? "yes" : "NO");
  pass = pass && serving_identical && executor_identical &&
         serving_speedup >= kMinSpeedup;

  // --- Single-request dispatch latency -----------------------------------
  const LatencyResult lat_threads = run_dispatch_latency(prototype, false);
  const LatencyResult lat_executor = run_dispatch_latency(prototype, true);
  // Gated as ratios (threads / executor; higher = executor dispatches
  // faster) — absolute microseconds are machine-bound and informational.
  const double lat_p50_ratio = lat_threads.p50_us / lat_executor.p50_us;
  const double lat_p99_ratio = lat_threads.p99_us / lat_executor.p99_us;
  std::printf("\ndispatch latency (1 worker, lone 1-sample requests, "
              "deadline 0, best of %zu x %zu):\n",
              kLatencyRepeats, kLatencyRequests);
  std::printf("  threads : p50 %8.1f us | p99 %8.1f us\n", lat_threads.p50_us,
              lat_threads.p99_us);
  std::printf("  executor: p50 %8.1f us | p99 %8.1f us -> %.2fx / %.2fx\n",
              lat_executor.p50_us, lat_executor.p99_us, lat_p50_ratio,
              lat_p99_ratio);

  // --- JSON ---------------------------------------------------------------
  api::JsonWriter writer;
  writer.field("bench", "hotpath");
  writer.field("model", "table1-proxy-mlp");
  writer.field("effects", "all");
  writer.field("max_batch", kMaxBatch);
  writer.field("engine_iters", kEngineIters);
  writer.field("requests", kRequests);
  writer.field("engine_us_per_batch_legacy", legacy.us_per_batch);
  writer.field("engine_us_per_batch_planned", planned.us_per_batch);
  writer.field("serving_samples_per_s_legacy", serve_legacy.samples_per_s);
  writer.field("serving_samples_per_s_planned", serve_planned.samples_per_s);
  writer.field("serving_samples_per_s_executor", serve_executor.samples_per_s);
  writer.field("engine_logits_bit_identical", engine_identical);
  writer.field("serving_logits_bit_identical", serving_identical);
  writer.field("executor_logits_bit_identical", executor_identical);
  writer.field("arena_regrows_steady_state", planned.arena_regrows);
  writer.field("dispatch_p50_us_threads", lat_threads.p50_us);
  writer.field("dispatch_p99_us_threads", lat_threads.p99_us);
  writer.field("dispatch_p50_us_executor", lat_executor.p50_us);
  writer.field("dispatch_p99_us_executor", lat_executor.p99_us);
  // Machine-portable gated metrics: ratios of same-machine runs plus the
  // hard-zero allocation count (see tools/check_bench_regression.py).
  writer.begin_object("metrics");
  writer.field("allocs_per_request", planned.allocs_per_request);
  writer.field("engine_speedup_planned_vs_legacy", engine_speedup);
  writer.field("serving_speedup_planned_vs_legacy", serving_speedup);
  writer.field("serving_speedup_executor_vs_threads", executor_speedup);
  writer.field("latency_p50_executor_vs_threads", lat_p50_ratio);
  writer.field("latency_p99_executor_vs_threads", lat_p99_ratio);
  writer.end_object();

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << writer.finish();
  std::printf("\nwrote %s\n", out_path.c_str());
  if (!pass) std::printf("FAIL: hot-path contract violated (see above)\n");
  return pass ? 0 : 1;
}
