// Fig. 4 reproduction: phase-crosstalk ratio and TO tuning power for a block
// of 10 MRs as a function of the distance between adjacent MRs — now driven
// end to end by the EffectPipeline's thermal stage instead of hand-wired
// model plumbing, with the cross-layer accuracy consequence evaluated
// through the xl::api facade.
//
// Series (matching the paper's panel):
//   * phase crosstalk ratio    — exponential decay with pitch (orange line);
//   * TED per-heater power     — U-shaped with a minimum near 5 um (solid
//                                blue line: "increasing or decreasing such a
//                                distance causes an increase in power");
//   * no-TED per-heater power  — notably higher, diverging at dense pitch
//                                (dotted blue line).
// Plus the cross-layer rows Fig. 4 motivates: functional accuracy of a
// trained MLP on the photonic datapath with the thermal stage at each pitch,
// with and without TED.
//
// The workload definition — pitch axis, MR bank size, proxy recipe and
// sample budget — lives in scenarios/bench-fig4.ini ([x-fig4] extension
// section); this binary is a thin sweep driver over it.
//
// Emits BENCH_fig4_thermal_crosstalk.json (like bench_backend_matrix) so the
// trajectory is tracked across PRs.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "core/effect_pipeline.hpp"
#include "dnn/models.hpp"
#include "dnn/network.hpp"
#include "scenario/scenario.hpp"
#include "thermal/crosstalk_matrix.hpp"
#include "thermal/heat_solver.hpp"

namespace {

using namespace xl;

core::VdpSimOptions thermal_options(std::size_t bank, double pitch_um,
                                    bool use_ted) {
  core::VdpSimOptions opts;
  opts.mrs_per_bank = bank;  // "a block of 10 fabricated MRs".
  opts.effects.thermal = true;
  opts.effects.thermal_stage.pitch_um = pitch_um;
  opts.effects.thermal_stage.use_ted = use_ted;
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_fig4_thermal_crosstalk.json";

  // Workload definition: scenarios/bench-fig4.ini. The scenario proper is
  // the corpus golden's cheap functional run (validated here); the [x-fig4]
  // extension section carries this bench's sweep axes.
  const scenario::ScenarioDocument doc = scenario::ScenarioDocument::parse_file(
      scenario::scenario_path("bench-fig4"));
  (void)scenario::ScenarioSpec::parse(doc);
  scenario::SectionReader sweep(doc, "x-fig4");
  const std::vector<double> pitches = sweep.get_double_list(
      "pitches", {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0, 16.0, 20.0});
  const std::size_t bank = sweep.get_size("bank", 10);
  const std::size_t samples = sweep.get_size("samples", 64);
  const std::size_t train_epochs = sweep.get_size("train_epochs", 20);
  sweep.finish();

  const thermal::CouplingModelConfig kernel;  // Calibrated decay 2.4 um.

  std::printf("=== Fig. 4: phase crosstalk & TO tuning power vs MR pitch ===\n");
  std::printf("(EffectPipeline thermal stage, bank of %zu MRs, FPV-drawn targets)\n\n",
              bank);

  // The cross-layer consequence: the shared Table I proxy MLP evaluated on
  // the functional datapath with the thermal stage at each pitch (through
  // the facade) — same model and training recipe as
  // crosslight_cli --backend functional.
  dnn::Table1ProxyMlp proxy = dnn::train_table1_proxy_mlp(train_epochs);
  const double float_acc = proxy.float_accuracy;

  api::JsonWriter writer;
  writer.field("bench", "fig4_thermal_crosstalk");
  writer.field("bank", bank);
  writer.field("float_test_accuracy", float_acc);

  std::printf("%-9s %-12s %-14s %-16s %-10s %-10s\n", "pitch_um", "xtalk_ratio",
              "TED mW/heater", "no-TED mW/heater", "acc(TED)", "acc(naive)");

  double best_pitch = 0.0;
  double best_power = 1e300;
  writer.begin_array("rows");
  for (double pitch : pitches) {
    // One thermal stage per pitch: the boot solve's telemetry carries the
    // Fig. 4 quantities for both drive modes.
    const core::EffectPipeline pipeline(thermal_options(bank, pitch, true));
    const core::ThermalTelemetry& t = *pipeline.thermal_telemetry();

    double acc[2] = {0.0, 0.0};
    for (int mode = 0; mode < 2; ++mode) {
      const bool use_ted = mode == 0;
      api::SimConfig cfg;
      cfg.vdp = thermal_options(bank, pitch, use_ted);
      cfg.functional_samples = samples;
      api::Session session(cfg);
      acc[mode] =
          session.evaluate_functional("functional", {}, proxy.net, proxy.test)
              .functional.accuracy;
    }

    if (t.ted_mean_power_mw < best_power) {
      best_power = t.ted_mean_power_mw;
      best_pitch = pitch;
    }
    const double ratio = thermal::exponential_crosstalk_ratio(pitch, kernel);
    std::printf("%-9.1f %-12.4f %-14.3f %-16.3f %-10.3f %-10.3f\n", pitch, ratio,
                t.ted_mean_power_mw, t.naive_mean_power_mw, acc[0], acc[1]);

    writer.begin_object();
    writer.field("pitch_um", pitch);
    writer.field("crosstalk_ratio", ratio);
    writer.field("ted_mean_power_mw", t.ted_mean_power_mw);
    writer.field("naive_mean_power_mw", t.naive_mean_power_mw);
    writer.field("naive_feasible", t.naive_feasible);
    writer.field("condition_number", t.condition_number);
    writer.field("ted_residual_rms_nm", t.ted_residual_rms_nm);
    writer.field("naive_residual_rms_nm", t.naive_residual_rms_nm);
    writer.field("accuracy_ted", acc[0]);
    writer.field("accuracy_naive", acc[1]);
    writer.end_object();
  }
  writer.end_array();

  std::printf("\nTED power minimum at pitch ~%.0f um (paper: 5 um optimal).\n",
              best_pitch);
  writer.field("ted_power_minimum_pitch_um", best_pitch);

  // Cross-check the analytic kernel against the FD heat solver.
  thermal::HeatGridConfig grid;
  grid.nx = 192;
  grid.ny = 64;
  const thermal::HeatSolver solver(grid);
  const auto fitted = thermal::calibrate_kernel(solver);
  writer.field("fd_fitted_decay_um", fitted.decay_length_um);
  writer.field("kernel_decay_um", kernel.decay_length_um);
  std::printf("\nFD heat-solver cross-check: monotone near-exponential decay "
              "(fitted decay %.1f um).\n"
              "The 2-D slab kernel decays slower than 3-D devices; the analytic\n"
              "kernel uses the device-calibrated %.1f um decay, which places the\n"
              "TED optimum at the paper's ~5 um (Fig. 4).\n",
              fitted.decay_length_um, kernel.decay_length_um);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << writer.finish();
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
