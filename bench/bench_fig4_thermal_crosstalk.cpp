// Fig. 4 reproduction: phase-crosstalk ratio and TO tuning power for a block
// of 10 MRs as a function of the distance between adjacent MRs.
//
// Series (matching the paper's panel):
//   * phase crosstalk ratio    — exponential decay with pitch (orange line);
//   * TED per-heater power     — U-shaped with a minimum near 5 um (solid
//                                blue line: "increasing or decreasing such a
//                                distance causes an increase in power");
//   * no-TED per-heater power  — notably higher, diverging at dense pitch
//                                (dotted blue line).
//
// The FD heat solver stands in for Lumerical HEAT; the analytic exponential
// kernel used below is calibrated against it (see thermal/crosstalk_matrix).
#include <cmath>
#include <cstdio>
#include <vector>

#include "photonics/fpv.hpp"
#include "thermal/crosstalk_matrix.hpp"
#include "thermal/heat_solver.hpp"
#include "thermal/ted.hpp"

int main() {
  using namespace xl;
  constexpr std::size_t kBank = 10;  // "a block of 10 fabricated MRs".
  constexpr int kSites = 16;
  const double phase_per_nm = 2.0 * M_PI / 18.0;

  const photonics::FpvModel fpv;
  const thermal::CouplingModelConfig kernel;  // Calibrated decay 2.4 um.

  std::printf("=== Fig. 4: phase crosstalk & TO tuning power vs MR pitch ===\n");
  std::printf("(bank of %zu MRs, FPV-drawn phase targets, %d chip sites)\n\n", kBank,
              kSites);
  std::printf("%-10s %-16s %-18s %-18s\n", "pitch_um", "xtalk_ratio",
              "TED mW/heater", "no-TED mW/heater");

  double best_pitch = 0.0;
  double best_power = 1e300;
  for (double pitch : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0, 16.0, 20.0}) {
    const auto coupling = thermal::coupling_matrix_exponential(kBank, pitch, kernel);
    const thermal::TedTuner tuner(coupling);
    double ted_mean = 0.0;
    double naive_mean = 0.0;
    for (int site = 0; site < kSites; ++site) {
      const auto drifts = fpv.row_drifts_nm(photonics::MrDesignKind::kOptimized, kBank,
                                            pitch, 500.0 * site, 37.0 * site);
      numerics::Vector targets(kBank);
      for (std::size_t i = 0; i < kBank; ++i) {
        targets[i] = std::abs(drifts[i]) * phase_per_nm;
      }
      ted_mean += tuner.solve(targets).mean_power_mw;
      naive_mean += thermal::naive_tuning_powers(coupling, targets).mean_power_mw;
    }
    ted_mean /= kSites;
    naive_mean /= kSites;
    if (ted_mean < best_power) {
      best_power = ted_mean;
      best_pitch = pitch;
    }
    std::printf("%-10.1f %-16.4f %-18.3f %-18.3f\n", pitch,
                thermal::exponential_crosstalk_ratio(pitch, kernel), ted_mean, naive_mean);
  }
  std::printf("\nTED power minimum at pitch ~%.0f um (paper: 5 um optimal).\n", best_pitch);

  // Cross-check the analytic kernel against the FD heat solver.
  thermal::HeatGridConfig grid;
  grid.nx = 192;
  grid.ny = 64;
  const thermal::HeatSolver solver(grid);
  const auto fitted = thermal::calibrate_kernel(solver);
  std::printf("\nFD heat-solver cross-check: monotone near-exponential decay "
              "(fitted decay %.1f um).\n"
              "The 2-D slab kernel decays slower than 3-D devices; the analytic\n"
              "kernel uses the device-calibrated %.1f um decay, which places the\n"
              "TED optimum at the paper's ~5 um (Fig. 4).\n",
              fitted.decay_length_um, kernel.decay_length_um);
  return 0;
}
