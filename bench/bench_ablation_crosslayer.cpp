// Ablation study: each cross-layer optimization in isolation.
//
// DESIGN.md calls out four design choices; this bench quantifies each one's
// contribution on the 4-model average, holding everything else fixed:
//   1. optimized MR devices      (FPV drift 7.1 -> 2.1 nm)      [device]
//   2. TED collective trimming   (vs worst-case TO provisioning) [circuit]
//   3. hybrid EO weight imprint  (vs thermo-optic imprinting)    [circuit]
//   4. wavelength reuse          (laser lines capped at 15/unit) [architecture]
#include <cstdio>

#include "core/accelerator.hpp"
#include "core/power.hpp"
#include "dnn/models.hpp"
#include "photonics/laser.hpp"
#include "photonics/losses.hpp"
#include "photonics/wdm.hpp"
#include "thermal/tuning.hpp"

int main() {
  using namespace xl;
  const auto models = dnn::table1_models();

  std::printf("=== Cross-layer ablation (4-model average) ===\n\n");

  auto avg_power = [&](core::Variant v) {
    const core::CrossLightAccelerator accel(core::variant_config(v));
    return core::summarize(accel.evaluate_all(models)).avg_power_w;
  };

  // 1 + 2 jointly span the four variants.
  const double base = avg_power(core::Variant::kBase);
  const double opt = avg_power(core::Variant::kOpt);
  const double base_ted = avg_power(core::Variant::kBaseTed);
  const double opt_ted = avg_power(core::Variant::kOptTed);
  std::printf("[device]  optimized MRs alone      : %.0f W -> %.0f W  (-%.0f%%)\n", base,
              opt, 100.0 * (1.0 - opt / base));
  std::printf("[circuit] TED tuning alone         : %.0f W -> %.0f W  (-%.0f%%)\n", base,
              base_ted, 100.0 * (1.0 - base_ted / base));
  std::printf("[both]    optimized MRs + TED      : %.0f W -> %.0f W  (-%.0f%%)\n", base,
              opt_ted, 100.0 * (1.0 - opt_ted / base));

  // 3. Hybrid EO imprint vs thermal-only imprint: per-bank runtime numbers.
  const auto params = photonics::default_device_params();
  thermal::TuningBankConfig hybrid;
  hybrid.mode = thermal::TuningMode::kHybridTed;
  thermal::TuningBankConfig thermal_only;
  thermal_only.mode = thermal::TuningMode::kThermalOnly;
  thermal_only.pitch_um = 120.0;
  const std::vector<double> drifts(15, 1.0);
  const auto h = thermal::HybridTuningController(hybrid, params).plan(drifts);
  const auto t = thermal::HybridTuningController(thermal_only, params).plan(drifts);
  std::printf("[circuit] hybrid EO weight imprint : %.0f ns / %.4f pJ vs "
              "%.0f ns / %.0f pJ per imprint (%.0fx faster, %.0fx less energy)\n",
              h.imprint_latency_ns, h.eo_energy_per_imprint_pj, t.imprint_latency_ns,
              t.eo_energy_per_imprint_pj, t.imprint_latency_ns / h.imprint_latency_ns,
              t.eo_energy_per_imprint_pj / h.eo_energy_per_imprint_pj);

  // 4. Wavelength reuse: laser power of an FC unit (K = 150) with the
  //    15-line reused comb vs one line per element (prior work).
  const core::ArchitectureConfig cfg = core::best_config();
  const double reuse_mw = core::unit_laser_power_mw(cfg, cfg.fc_unit_size);
  photonics::ArmPathSpec no_reuse_arm;
  no_reuse_arm.mrs_on_waveguide = cfg.fc_unit_size;  // All 150 on one bus.
  no_reuse_arm.banks_per_arm = 2;
  no_reuse_arm.waveguide_length_cm =
      static_cast<double>(2 * cfg.fc_unit_size) * (20.0 + cfg.mr_pitch_um()) * 1e-4;
  const auto no_reuse_budget = arm_loss_budget(no_reuse_arm, cfg.devices);
  const double no_reuse_mw =
      required_laser_power(no_reuse_budget, cfg.fc_unit_size, cfg.devices)
          .wall_plug_power_mw;
  std::printf("[arch]    wavelength reuse (K=150) : laser %.1f mW/unit vs %.1f mW/unit "
              "without reuse (%.1fx), and 15 vs 150 laser lines\n",
              reuse_mw, no_reuse_mw, no_reuse_mw / reuse_mw);

  // Resolution side-effect of reuse (Section V-B).
  std::printf("[arch]    reuse resolution effect  : 15-channel comb -> 16 bits; a "
              "150-channel comb would be crosstalk-limited to ~1 bit\n");
  return 0;
}
