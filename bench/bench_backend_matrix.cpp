// Cross-backend evaluation matrix: every registry backend x every Table I
// model through one api::Session, timed end to end. Emits the perf
// trajectory as machine-readable JSON (BENCH_backend_matrix.json) so
// numbers are tracked across PRs instead of stdout-only text.
//
// The functional backend is probed too (untrained tiny CNN on a synthetic
// task): its row reports datapath work counters and wall time, demonstrating
// that accuracy evaluation flows through the same facade.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "dnn/activations.hpp"
#include "dnn/conv2d.hpp"
#include "dnn/datasets.hpp"
#include "dnn/dense.hpp"
#include "dnn/models.hpp"
#include "dnn/network.hpp"
#include "dnn/pooling.hpp"
#include "dnn/reshape.hpp"
#include "numerics/rng.hpp"

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xl;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_backend_matrix.json";
  const auto models = dnn::table1_models();
  api::Session session;
  api::JsonWriter writer;

  writer.field("bench", "backend_matrix");
  writer.field("models", models.size());
  writer.field("backends", session.backends().size());

  std::printf("=== Cross-backend matrix: %zu backends x %zu models ===\n\n",
              session.backends().size(), models.size());
  std::printf("%-22s %-14s %-12s %-12s %s\n", "backend", "avg EPB pJ/b", "kFPS/W",
              "power W", "eval ms");

  writer.begin_array("rows");
  for (const std::string& name : session.backends()) {
    const auto caps = session.backend(name).capabilities();
    if (caps.needs_network) continue;  // Probed separately below.

    // One evaluation pass per backend: eval_ms times exactly the work whose
    // results are reported (summary derived from the same reports).
    const auto start = std::chrono::steady_clock::now();
    std::vector<api::EvalResult> results;
    core::AcceleratorSummary summary;
    if (caps.reference_only) {
      summary = session.summarize(name, models);
    } else {
      results = session.evaluate_all(name, models);
      std::vector<core::AcceleratorReport> reports;
      reports.reserve(results.size());
      for (const auto& r : results) reports.push_back(r.report);
      summary = core::summarize(reports);
    }
    const double elapsed_ms = ms_since(start);

    writer.begin_object();
    writer.field("backend", name);
    writer.field("accelerator", summary.accelerator);
    writer.field("reference_only", caps.reference_only);
    writer.field("avg_epb_pj", summary.avg_epb_pj);
    writer.field("avg_kfps_per_watt", summary.avg_kfps_per_watt);
    writer.field("avg_power_w", summary.avg_power_w);
    writer.field("eval_ms", elapsed_ms);
    if (!results.empty()) {
      writer.begin_array("per_model");
      for (const auto& result : results) {
        writer.begin_object();
        writer.field("model", result.report.model);
        writer.field("fps", result.report.perf.fps);
        writer.field("frame_latency_us", result.report.perf.frame_latency_us);
        writer.field("power_w", result.report.power.total_w());
        writer.field("epb_pj", result.epb_pj());
        writer.end_object();
      }
      writer.end_array();
    }
    writer.end_object();

    std::printf("%-22s %-14.3f %-12.3f %-12.2f %.2f\n", name.c_str(),
                summary.avg_epb_pj, summary.avg_kfps_per_watt, summary.avg_power_w,
                elapsed_ms);
  }
  writer.end_array();

  // Functional probe: a tiny untrained CNN on a synthetic task — measures the
  // batched photonic datapath throughput through the facade.
  {
    dnn::SyntheticSpec spec;
    spec.classes = 4;
    spec.height = 10;
    spec.width = 10;
    spec.channels = 1;
    spec.seed = 33;
    const dnn::Dataset data = dnn::generate_classification(spec, 32, 1);
    numerics::Rng rng(21);
    dnn::Network net;
    net.emplace<dnn::Conv2d>(dnn::Conv2dConfig{1, 4, 3, 1, 1}, rng);
    net.emplace<dnn::ReLU>();
    net.emplace<dnn::MaxPool2d>(2);
    net.emplace<dnn::Flatten>();
    net.emplace<dnn::Dense>(4 * 5 * 5, 4, rng);

    const auto start = std::chrono::steady_clock::now();
    const auto result = session.evaluate_functional("functional", {}, net, data);
    const double elapsed_ms = ms_since(start);
    const auto& st = result.functional.stats;

    writer.begin_object("functional_probe");
    writer.field("backend", "functional");
    writer.field("samples", result.functional.samples);
    writer.field("photonic_matmuls", st.photonic_matmuls);
    writer.field("photonic_dot_products", st.photonic_dot_products);
    writer.field("photonic_macs", st.photonic_macs);
    writer.field("eval_ms", elapsed_ms);
    writer.field("macs_per_second",
                 elapsed_ms > 0.0 ? static_cast<double>(st.photonic_macs) /
                                        (elapsed_ms * 1e-3)
                                  : 0.0);
    writer.end_object();

    std::printf("%-22s %zu samples, %zu GEMMs, %.2f MMACs in %.1f ms (%.2f MMAC/s)\n",
                "functional", result.functional.samples, st.photonic_matmuls,
                static_cast<double>(st.photonic_macs) * 1e-6, elapsed_ms,
                static_cast<double>(st.photonic_macs) / (elapsed_ms * 1e-3) * 1e-6);
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << writer.finish();
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
