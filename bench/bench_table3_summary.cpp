// Table III reproduction: average EPB (pJ/bit) and performance-per-watt
// (kFPS/W) across all platforms — every row produced by iterating the api
// backend registry (electronic constants and simulated photonic engines
// through the same Session::summarize call), with the paper's reported
// values printed side by side.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "api/api.hpp"
#include "baselines/electronic.hpp"
#include "scenario/scenario.hpp"

int main() {
  using namespace xl;
  // Workload (model zoo, architecture, photonic row order) from the
  // paper-repro scenario; electronic rows from the registry as before.
  const scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::load(scenario::scenario_path("paper-repro"));
  const auto models = spec.model_zoo();
  const auto paper_rows = baselines::paper_photonic_rows();
  api::Session session(spec.config);

  const auto paper_of = [&](const std::string& name) {
    for (const auto& r : paper_rows) {
      if (r.name == name) return r;
    }
    return baselines::PaperPhotonicRow{};
  };

  std::printf("=== Table III: average EPB and kFPS/W across accelerators ===\n\n");
  std::printf("%-16s %-14s %-14s %-16s %-16s\n", "Accelerator", "EPB ours",
              "EPB paper", "kFPS/W ours", "kFPS/W paper");

  for (const std::string& name : session.backends()) {
    if (!session.backend(name).capabilities().reference_only) continue;
    const auto s = session.summarize(name, models);
    std::printf("%-16s %-14s %-14.2f %-16s %-16.2f\n", s.accelerator.c_str(), "-",
                s.avg_epb_pj, "-", s.avg_kfps_per_watt);
  }

  // Simulated photonic rows in the paper's order: baselines, then variants
  // (the scenario's backend order).
  std::vector<std::pair<std::string, core::AcceleratorSummary>> photonic;
  for (const std::string& name : spec.backends) {
    photonic.emplace_back(name, session.summarize(name, models));
  }

  for (const auto& [name, s] : photonic) {
    const auto paper = paper_of(s.accelerator);
    std::printf("%-16s %-14.3f %-14.2f %-16.3f %-16.2f\n", s.accelerator.c_str(),
                s.avg_epb_pj, paper.avg_epb_pj, s.avg_kfps_per_watt,
                paper.avg_kfps_per_watt);
  }

  // Rows are looked up by accelerator name, not position: the registry is
  // open for extension and new baselines must not shift these claims.
  const auto row_of = [&](const std::string& accelerator) -> const core::AcceleratorSummary& {
    for (const auto& [name, s] : photonic) {
      if (s.accelerator == accelerator) return s;
    }
    std::fprintf(stderr, "missing registry row: %s\n", accelerator.c_str());
    std::exit(1);
  };
  const auto& holy = row_of("Holylight");
  const auto& flagship = row_of("Cross_opt_TED");
  std::printf("\nHeadline claims (paper -> ours):\n");
  std::printf("  EPB vs Holylight : 9.5x  -> %.1fx lower\n",
              holy.avg_epb_pj / flagship.avg_epb_pj);
  std::printf("  kFPS/W vs Holylight: 15.9x -> %.1fx higher\n",
              flagship.avg_kfps_per_watt / holy.avg_kfps_per_watt);
  std::printf("  Variant ordering (EPB): base > base_TED > opt > opt_TED : %s\n",
              (row_of("Cross_base").avg_epb_pj > row_of("Cross_base_TED").avg_epb_pj &&
               row_of("Cross_base_TED").avg_epb_pj > row_of("Cross_opt").avg_epb_pj &&
               row_of("Cross_opt").avg_epb_pj > flagship.avg_epb_pj)
                  ? "reproduced"
                  : "NOT reproduced");
  return 0;
}
