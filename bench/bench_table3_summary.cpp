// Table III reproduction: average EPB (pJ/bit) and performance-per-watt
// (kFPS/W) across all platforms — electronic constants from the paper,
// photonic rows simulated by this repository, with the paper's reported
// values printed side by side.
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/deap_cnn.hpp"
#include "baselines/electronic.hpp"
#include "baselines/holylight.hpp"
#include "core/accelerator.hpp"
#include "dnn/models.hpp"

int main() {
  using namespace xl;
  const auto models = dnn::table1_models();
  const auto paper_rows = baselines::paper_photonic_rows();

  const auto paper_of = [&](const std::string& name) {
    for (const auto& r : paper_rows) {
      if (r.name == name) return r;
    }
    return baselines::PaperPhotonicRow{};
  };

  std::printf("=== Table III: average EPB and kFPS/W across accelerators ===\n\n");
  std::printf("%-16s %-14s %-14s %-16s %-16s\n", "Accelerator", "EPB ours",
              "EPB paper", "kFPS/W ours", "kFPS/W paper");

  for (const auto& e : baselines::electronic_platforms()) {
    std::printf("%-16s %-14s %-14.2f %-16s %-16.2f\n", e.name.c_str(), "-", e.avg_epb_pj,
                "-", e.avg_kfps_per_watt);
  }

  std::vector<std::pair<std::string, core::AcceleratorSummary>> photonic;
  for (const auto& params :
       {baselines::deap_cnn_params(), baselines::holylight_params()}) {
    std::vector<core::AcceleratorReport> reports;
    for (const auto& m : models) {
      reports.push_back(baselines::evaluate_baseline(params, m));
    }
    photonic.emplace_back(params.name, core::summarize(reports));
  }
  for (auto v : {core::Variant::kBase, core::Variant::kBaseTed, core::Variant::kOpt,
                 core::Variant::kOptTed}) {
    const core::CrossLightAccelerator accel(core::variant_config(v));
    photonic.emplace_back(core::variant_name(v),
                          core::summarize(accel.evaluate_all(models)));
  }

  for (const auto& [name, s] : photonic) {
    const auto paper = paper_of(name);
    std::printf("%-16s %-14.3f %-14.2f %-16.3f %-16.2f\n", name.c_str(), s.avg_epb_pj,
                paper.avg_epb_pj, s.avg_kfps_per_watt, paper.avg_kfps_per_watt);
  }

  const auto& holy = photonic[1].second;
  const auto& flagship = photonic.back().second;
  std::printf("\nHeadline claims (paper -> ours):\n");
  std::printf("  EPB vs Holylight : 9.5x  -> %.1fx lower\n",
              holy.avg_epb_pj / flagship.avg_epb_pj);
  std::printf("  kFPS/W vs Holylight: 15.9x -> %.1fx higher\n",
              flagship.avg_kfps_per_watt / holy.avg_kfps_per_watt);
  std::printf("  Variant ordering (EPB): base > base_TED > opt > opt_TED : %s\n",
              (photonic[2].second.avg_epb_pj > photonic[3].second.avg_epb_pj &&
               photonic[3].second.avg_epb_pj > photonic[4].second.avg_epb_pj &&
               photonic[4].second.avg_epb_pj > photonic[5].second.avg_epb_pj)
                  ? "reproduced"
                  : "NOT reproduced");
  return 0;
}
