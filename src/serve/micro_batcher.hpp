// Deadline-aware dynamic micro-batching over the request queue.
//
// next_batch() assembles one micro-batch sized for the batched photonic
// engine: it claims the oldest pending request, then greedily coalesces
// further FIFO-consecutive requests for the *same model* until
//   * the batch holds max_batch sample rows, or
//   * the front of the queue is a different model (FIFO order is never
//     broken across models), or
//   * the oldest claimed request has waited deadline_us since admission
//     (tail-latency bound: a lone request is dispatched alone rather than
//     waiting indefinitely for company).
//
// Batch formation is serialized across workers (one formation at a time), so
// batches are exactly the FIFO grouping of the trace whenever the queue is
// pre-filled — the replay-determinism scenario. Under live traffic the
// grouping depends on arrival timing, but per-sample results do not (see the
// determinism contract in serving_runtime.hpp).
#pragma once

#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "serve/request_queue.hpp"

namespace xl::serve {

/// One coalesced unit of work for a shard.
struct MicroBatch {
  std::string model;
  std::vector<PendingRequest> requests;  ///< FIFO order, same model.
  std::size_t rows = 0;                  ///< Total sample rows.
};

class MicroBatcher {
 public:
  MicroBatcher(std::size_t max_batch, double deadline_us);

  /// Form the next micro-batch, blocking until at least one request is
  /// available. Returns nullopt when the queue is closed and drained (the
  /// worker-loop termination signal).
  [[nodiscard]] std::optional<MicroBatch> next_batch(RequestQueue& queue);

  /// Non-blocking variant for executor-mode drain tasks: nullopt when the
  /// queue is momentarily empty (the drain re-parks instead of blocking a
  /// pool thread in pop()). Once a first request is claimed, coalescing is
  /// identical to next_batch — including waiting out the deadline for
  /// company — so batch shapes match the blocking path under load.
  [[nodiscard]] std::optional<MicroBatch> try_next_batch(RequestQueue& queue);

  [[nodiscard]] std::size_t max_batch() const noexcept { return max_batch_; }
  [[nodiscard]] double deadline_us() const noexcept { return deadline_us_; }

 private:
  /// Shared coalescing tail of both entry points: greedily extend from the
  /// claimed first request until rows/deadline/model-boundary stops it.
  /// Caller must hold formation_mutex_.
  MicroBatch coalesce(RequestQueue& queue, PendingRequest first);

  const std::size_t max_batch_;
  const double deadline_us_;
  std::mutex formation_mutex_;  ///< One batch forms at a time.
};

}  // namespace xl::serve
