// Bounded thread-safe FIFO of pending inference requests.
//
// The queue is the admission edge of the serving runtime: submit() threads
// push (blocking while the queue is at capacity — backpressure instead of
// unbounded memory growth), the micro-batcher pops. Pops preserve global
// FIFO order: the batcher may only skip *ahead* within the same model via
// try_pop_same(), never reorder across models, so a replay trace drains in
// a deterministic request order.
//
// Condition-variable discipline (audited): every state transition that
// creates exactly one unit of progress — one enqueued request, one freed
// capacity slot — uses notify_one; a single woken waiter either consumes
// the unit or (a coalescing batcher hitting a model mismatch) dispatches
// and immediately re-polls, so no wakeup is ever absorbed without progress.
// Only close()/close_and_drain() use notify_all: closing changes the
// predicate of EVERY blocked producer and consumer at once, and all of them
// must wake to observe it (regression-tested in tests/test_serving.cpp,
// ShutdownWakesAllBlockedProducersAndConsumers).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "serve/serve_types.hpp"

namespace xl::serve {

/// A request queued with its promise and admission telemetry.
struct PendingRequest {
  InferRequest request;
  std::promise<InferResult> promise;
  /// Pre-built result: submit() allocates the (rows, classes) logits tensor
  /// on the caller's thread, so the worker hot path only writes into it
  /// (planned execution scatters logits straight here) and moves it out.
  InferResult result;
  Clock::time_point enqueued_at{};
  std::uint64_t sequence = 0;  ///< Admission order ticket.

  [[nodiscard]] std::size_t rows() const noexcept { return request.rows(); }
};

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity);

  /// Result of a model-filtered pop attempt.
  enum class PopSame : std::uint8_t {
    kPopped,    ///< Front matched; request returned.
    kMismatch,  ///< Front is a different model (FIFO forbids skipping it).
    kTooLarge,  ///< Front matches but exceeds the remaining row budget.
    kEmpty,     ///< Queue is empty.
    kClosed,    ///< Queue is closed and empty.
  };

  /// Blocking push; waits while the queue is at capacity. Returns false
  /// (without enqueueing) when the queue has been closed.
  bool push(PendingRequest&& pending);

  /// Pop the front request, blocking until one is available or the queue is
  /// closed and drained (then nullopt).
  [[nodiscard]] std::optional<PendingRequest> pop();

  /// Pop the front request if one is queued; never blocks. nullopt means
  /// empty (or closed and drained) — the executor-mode batcher's first-pop
  /// primitive, where drain tasks poll instead of parking in pop().
  [[nodiscard]] std::optional<PendingRequest> try_pop();

  /// Pop the front request only if it is for `model` and carries at most
  /// `max_rows` rows; never blocks.
  PopSame try_pop_same(const std::string& model, std::size_t max_rows,
                       std::optional<PendingRequest>& out);

  /// Block until the queue is non-empty, closed, or `deadline` passes.
  /// Returns true when a request may be available.
  bool wait_for_request(Clock::time_point deadline);

  /// Close the queue: push() starts failing, poppers drain the backlog and
  /// then observe kClosed / nullopt.
  void close();

  /// Atomically close the queue AND claim the entire undispatched backlog.
  /// After this returns, every request the queue ever accepted is either
  /// (a) already popped by a batcher (it will complete normally) or
  /// (b) in the returned vector (the runtime fails its promise with
  /// ShutdownError) — exactly one of the two, so no request is ever
  /// silently dropped or double-resolved at shutdown.
  [[nodiscard]] std::vector<PendingRequest> close_and_drain();

  [[nodiscard]] bool closed() const;
  [[nodiscard]] std::size_t size() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<PendingRequest> queue_;
  std::uint64_t next_sequence_ = 0;
  bool closed_ = false;
};

}  // namespace xl::serve
