// One accelerator shard: a private PhotonicInferenceEngine per served model.
//
// A shard is the unit of hardware parallelism the serving runtime scales
// over. Every shard owns, for each registered model, a replica network plus
// a PhotonicInferenceEngine constructed from the shared immutable
// VdpSimOptions — so each shard has its own thermal time state, its own
// LUTs, and no mutable state shared with any other shard. All replicas and
// engines are built eagerly at construction (before worker threads exist),
// keeping the hot path allocation- and lock-free except for the final stats
// merge.
//
// Determinism: execute() returns every shard engine to its boot (t = 0)
// effect state before running a micro-batch, so the batch sees the canonical
// effect timeline regardless of which shard runs it or what ran before.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/mapper.hpp"
#include "core/photonic_inference.hpp"
#include "core/vdp_simulator.hpp"
#include "serve/micro_batcher.hpp"
#include "serve/model_repository.hpp"

namespace xl::serve {

/// Telemetry of one shard; merged into ServingStats by the runtime.
struct ShardStats {
  std::size_t batches = 0;
  std::size_t samples = 0;
  std::size_t requests = 0;
  double busy_us = 0.0;  ///< Summed service time (compute + pacing).
  std::vector<std::size_t> batch_rows_histogram;  ///< [rows] -> batches.
  core::PhotonicInferenceStats inference;         ///< Summed over models.
  /// (admission sequence, admission -> completion latency in us).
  std::vector<std::pair<std::uint64_t, double>> latencies;
};

class AcceleratorShard {
 public:
  /// Builds one engine per registered model. `options` supplies max_batch
  /// (histogram sizing) and the optional hardware-time pacing knobs.
  AcceleratorShard(std::size_t id, const ModelRepository& models,
                   const core::VdpSimOptions& vdp, const ServingOptions& options);

  /// Execute one micro-batch end to end: reset the engine's effect pipeline
  /// to boot state, run the batched photonic forward pass, deliver the
  /// per-request logits, and fulfill every promise (values on success, the
  /// thrown exception otherwise). With use_execution_plan the batch runs
  /// through the engine's cached ExecutionPlan over row views — request
  /// inputs are gathered and logits scattered straight into each request's
  /// preallocated result tensor, with no coalesced copy and no per-request
  /// allocation; otherwise the legacy coalesce + infer_batch + split path
  /// runs. Both paths produce bit-identical logits.
  void execute(MicroBatch&& batch);

  /// Race-free copy of this shard's counters (callable while serving).
  [[nodiscard]] ShardStats snapshot() const;

  [[nodiscard]] std::size_t id() const noexcept { return id_; }

  /// Simulated service time for a micro-batch of `rows` samples of `model`:
  /// the EventScheduler batch makespan under the pacing architecture,
  /// scaled by pace_scale. 0 when pacing is off.
  [[nodiscard]] double paced_service_us(const std::string& model, std::size_t rows);

 private:
  struct ShardModel {
    dnn::Network network;  ///< Private replica; engine holds a reference.
    std::unique_ptr<core::PhotonicInferenceEngine> engine;
    core::ModelMapping mapping;  ///< Pacing workload (empty when pacing off).
    std::unordered_map<std::size_t, double> service_us_by_rows;  ///< Memo.
  };

  const std::size_t id_;
  const ServingOptions options_;
  /// Heap-pinned so the engine's Network& stays valid for the shard's life.
  std::map<std::string, std::unique_ptr<ShardModel>> models_;

  /// Persistent planned-execution scratch (worker-thread only; reserved to
  /// max_batch at construction so execute() never reallocates them): row
  /// views mapping request tensors straight into the plan, and the
  /// (sequence, latency) pairs staged before the stats lock.
  std::vector<core::RowViewIn> in_views_;
  std::vector<core::RowViewOut> out_views_;
  std::vector<std::pair<std::uint64_t, double>> latency_scratch_;

  mutable std::mutex stats_mutex_;
  ShardStats stats_;
};

}  // namespace xl::serve
