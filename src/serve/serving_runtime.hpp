// ServingRuntime — concurrent micro-batching inference over sharded
// photonic engines.
//
// Architecture (one PR 5 tentpole diagram):
//
//   submit() threads ──> RequestQueue (bounded FIFO, backpressure)
//                              │
//                        MicroBatcher (deadline-aware coalescing,
//                              │        FIFO across models)
//              ┌───────────────┼───────────────┐
//         worker 0        worker 1   ...   worker W-1
//              │               │               │
//       AcceleratorShard  AcceleratorShard  AcceleratorShard
//       (own replica networks + PhotonicInferenceEngines,
//        own thermal state, own stats; nothing shared)
//
// Two execution modes select who the "workers" are:
//   * thread mode (default): one dedicated std::thread per shard, parked in
//     the queue's blocking pop between batches.
//   * executor mode (ServingOptions::use_executor): shards sit in an idle
//     pool; submit() dispatches an idle shard as a drain task on the
//     xl::exec blocking lane, which pulls batches until the queue is empty
//     and re-parks. A lone request is handed to its shard on the dispatch
//     path with no queue-pop wakeup, cutting single-request latency.
// The mode changes scheduling only — per-sample logits are bit-identical
// (tests/test_serving.cpp pins executor vs thread mode).
//
// Determinism contract
// --------------------
// For a fixed request trace, per-sample logits are bit-identical under ANY
// worker count and ANY micro-batch grouping, and identical to running each
// request alone through PhotonicInferenceEngine::infer_batch with the
// effect pipeline reset to boot state. This holds because:
//   * every shard engine is constructed from the same immutable
//     VdpSimOptions (same LUTs, same keyed-noise seed discipline as PR 3);
//   * each micro-batch executes against the canonical boot-state effect
//     timeline (reset_effects before every batch; the thermal stage then
//     advances per *layer*, identically for every batch size);
//   * the batched GEMM normalizes and simulates each activation row
//     independently, and PD noise is keyed on the operands, not on any
//     cross-sample or cross-thread state.
// Batch grouping and shard assignment therefore only affect *latency*,
// never values — the replay test in tests/test_serving.cpp pins this.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/vdp_simulator.hpp"
#include "exec/task_pool.hpp"
#include "serve/micro_batcher.hpp"
#include "serve/model_repository.hpp"
#include "serve/request_queue.hpp"
#include "serve/serve_types.hpp"
#include "serve/shard.hpp"

namespace xl::serve {

class ServingRuntime {
 public:
  /// Validates both configs up front (throws std::invalid_argument). The
  /// vdp options are shared immutably by every shard engine.
  ServingRuntime(core::VdpSimOptions vdp, ServingOptions options = {});

  /// Not copyable/movable: worker threads capture `this`.
  ServingRuntime(const ServingRuntime&) = delete;
  ServingRuntime& operator=(const ServingRuntime&) = delete;

  /// Calls stop(): in-flight micro-batches complete, still-queued requests
  /// fail with ShutdownError.
  ~ServingRuntime();

  /// Register a model before start(). The prototype network must outlive
  /// the runtime and must not be mutated while serving.
  void register_model(ServedModel model);

  /// Convenience: register with a per-sample input shape, synthesizing the
  /// pacing ModelSpec from the prototype.
  void register_model(const std::string& name, dnn::Network& prototype,
                      std::function<dnn::Network()> factory, dnn::Shape input_shape);

  /// Instantiate every (shard, model) engine and launch the worker pool.
  /// Throws std::logic_error when already started or no model is registered.
  void start();

  /// Enqueue one request; blocks only when the queue is at capacity.
  /// Validates the model name and input shape (throws std::invalid_argument;
  /// rows must be in [1, max_batch]) and throws std::runtime_error when the
  /// runtime is not started or already stopping.
  [[nodiscard]] std::future<InferResult> submit(const std::string& model,
                                                dnn::Tensor input);

  /// Stop accepting requests and join the workers. Requests already claimed
  /// into a micro-batch complete normally; requests still queued (never
  /// dispatched) have their futures failed with ShutdownError — nothing is
  /// silently dropped. Idempotent; called by the destructor.
  void stop();

  [[nodiscard]] bool started() const noexcept { return started_; }
  [[nodiscard]] const ServingOptions& options() const noexcept { return options_; }
  [[nodiscard]] const core::VdpSimOptions& vdp_options() const noexcept { return vdp_; }
  [[nodiscard]] const ModelRepository& models() const noexcept { return models_; }

  /// Race-free aggregate of every shard's counters (callable while
  /// serving): batch histogram, merged PhotonicInferenceStats, and
  /// per-request latencies sorted by admission order.
  [[nodiscard]] ServingStats stats() const;

 private:
  void worker_loop(AcceleratorShard& shard);

  /// Executor mode: one shard's drain task — pull batches until the queue
  /// is momentarily empty, then re-park the shard in idle_shards_ (closing
  /// the submit-raced-with-park window by re-dispatching if the queue
  /// refilled meanwhile).
  void drain_loop(std::size_t shard_index);

  /// Executor mode: if a shard is idle, launch its drain task on the pool's
  /// blocking lane. Caller must hold dispatch_mutex_.
  void maybe_dispatch_locked();

  core::VdpSimOptions vdp_;
  ServingOptions options_;
  ModelRepository models_;
  RequestQueue queue_;
  MicroBatcher batcher_;
  std::vector<std::unique_ptr<AcceleratorShard>> shards_;
  std::vector<std::thread> workers_;
  /// Guards start/stop transitions and the shards_ vector shape (stats()
  /// takes it too, so a snapshot never races a concurrent start()).
  mutable std::mutex lifecycle_mutex_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};

  // Executor mode only. The pool is resolved once at start() so every drain
  // runs on the same executor regardless of which thread submits.
  exec::TaskPool* pool_ = nullptr;
  std::mutex dispatch_mutex_;
  std::condition_variable drains_cv_;    ///< Signaled when active_drains_ hits 0.
  std::vector<std::size_t> idle_shards_; ///< Shards awaiting work (LIFO).
  std::size_t active_drains_ = 0;        ///< Drain tasks in flight.
};

}  // namespace xl::serve
