// Shared types of the xl::serve runtime: requests, results, options, stats.
//
// An InferRequest names a registered model and carries a batch-of-k input
// tensor (k >= 1 samples along dim 0). The runtime answers with a future of
// InferResult: the per-request logits slice plus the queue/service telemetry
// of the micro-batch the request rode in.
//
// Determinism contract (see serving_runtime.hpp for the full statement):
// per-sample logits depend only on (model, sample, VdpSimOptions) — never on
// batch composition, shard assignment, or worker count.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "core/photonic_inference.hpp"
#include "dnn/tensor.hpp"

namespace xl::dnn {
class Network;
struct Dataset;
}  // namespace xl::dnn

namespace xl::serve {

using Clock = std::chrono::steady_clock;

/// One inference job: a registered model name plus a (k, ...) input batch.
struct InferRequest {
  std::string model;
  dnn::Tensor input;  ///< dim 0 = samples (1 <= k <= ServingOptions::max_batch).

  [[nodiscard]] std::size_t rows() const noexcept {
    return input.rank() >= 1 ? input.dim(0) : 0;
  }
};

/// The fulfilled side of a request's future.
struct InferResult {
  dnn::Tensor logits;                 ///< (k, classes) slice for this request.
  std::size_t shard_id = 0;           ///< Worker shard that executed the batch.
  std::size_t batch_rows = 0;         ///< Rows of the coalesced micro-batch.
  std::size_t coalesced_requests = 0; ///< Requests sharing that micro-batch.
  double queue_us = 0.0;              ///< Admission -> dispatch wall time.
  double service_us = 0.0;            ///< Dispatch -> completion wall time.
};

/// Thrown through the future of every request that was accepted by submit()
/// but still queued — never dispatched into a micro-batch — when
/// ServingRuntime::stop() runs. The shutdown contract: in-flight
/// micro-batches complete normally; undispatched requests fail fast with
/// this error instead of being silently dropped with the runtime. Callers
/// that stop() while holding unresolved futures must be prepared to catch
/// it (fleet nodes translate it into an error frame for the coordinator).
class ShutdownError : public std::runtime_error {
 public:
  explicit ShutdownError(const std::string& what) : std::runtime_error(what) {}
};

/// Upper bound on queue deadlines (1000 s): far beyond any sane batching
/// window, and small enough that the micro-batcher's wait arithmetic can
/// never overflow the steady_clock duration representation.
inline constexpr double kMaxDeadlineUs = 1e9;

/// Runtime configuration. `architecture` only matters when hardware-time
/// pacing is on: each micro-batch then occupies its shard for at least the
/// EventScheduler batch makespan scaled by pace_scale, so offered-load
/// sweeps measure the *simulated accelerator's* capacity, not the host CPU.
struct ServingOptions {
  std::size_t workers = 1;        ///< Accelerator shards (one thread each).
  std::size_t max_batch = 16;     ///< Max samples coalesced per micro-batch.
  double deadline_us = 2000.0;    ///< Max queue wait before forced dispatch.
  std::size_t queue_capacity = 4096;  ///< Admission backpressure bound.
  bool pace_hardware_time = false;    ///< Sleep to the simulated makespan.
  double pace_scale = 1.0;            ///< Wall-us slept per simulated us.
  /// Route shard inference through cached ExecutionPlans (compiled once per
  /// (shard, model) at start()): micro-batches gather/scatter straight
  /// between request tensors and arena-backed workspaces, with zero heap
  /// allocations per request in the engine's steady state. Logits are
  /// bit-identical to the legacy per-batch path (tests/test_hotpath.cpp);
  /// turning this off recovers the pre-plan execution for A/B comparison.
  bool use_execution_plan = true;
  /// Run shards as demand-dispatched drain tasks on the xl::exec blocking
  /// lane instead of `workers` dedicated threads parked in queue.pop().
  /// submit() hands an idle shard its own request directly — for a lone
  /// request there is no cross-thread queue wakeup on the dispatch path, so
  /// single-request latency drops. Logits are bit-identical either way (the
  /// mode changes who runs a batch, never what it computes); `workers` still
  /// bounds the number of concurrently draining shards.
  bool use_executor = false;
  core::ArchitectureConfig architecture{};  ///< Drives pacing makespans.

  /// Rejects zero workers/max_batch/queue capacity, negative deadline, and
  /// non-positive pace_scale. Throws std::invalid_argument.
  void validate() const;
};

/// Aggregated runtime telemetry. Per-shard counters are merged under the
/// runtime's stats mutex at batch completion, so a snapshot is always
/// race-free (the TSan CI job runs the serving tests).
struct ServingStats {
  std::size_t requests = 0;  ///< Requests completed.
  std::size_t samples = 0;   ///< Samples (tensor rows) completed.
  std::size_t batches = 0;   ///< Micro-batches executed.
  /// histogram[r] = micro-batches that carried exactly r rows (index 0 unused).
  std::vector<std::size_t> batch_rows_histogram;
  /// Work counters summed over every shard engine (all models).
  core::PhotonicInferenceStats inference;
  /// Per-request admission -> completion latency, in admission order.
  std::vector<double> latency_us;
  double busy_us = 0.0;  ///< Summed shard service time (all shards).

  [[nodiscard]] double mean_batch_rows() const noexcept {
    return batches > 0 ? static_cast<double>(samples) / static_cast<double>(batches)
                       : 0.0;
  }
};

/// p-th percentile (p in [0, 100]) by linear interpolation; 0 when empty.
[[nodiscard]] double latency_percentile_us(std::vector<double> latencies, double p);

/// The standard serving-report pair, computed from one sort of the history
/// (every stats consumer needs both; sorting twice per report would double
/// the cost on long-running latency histories).
[[nodiscard]] std::pair<double, double> latency_p50_p99_us(
    std::vector<double> latencies);

/// Copy every learnable parameter of `src` into the identically structured
/// `dst` (the shard-replication primitive: one immutable prototype network,
/// one private replica per shard). Throws std::invalid_argument on
/// parameter count or shape mismatch.
void copy_parameters(dnn::Network& src, dnn::Network& dst);

/// The canonical mixed-size replay trace used by the serving tests, bench,
/// example, and CLI: request i carries min(1 + i % 4, max_rows) samples,
/// cycled over `data` (the cursor wraps to 0 when a slice would run past
/// the end). One shared definition keeps every determinism/monotonicity
/// claim pinned to the same trace shape. When `slices` is non-null it
/// receives each request's (dataset start, rows) — e.g. for scoring served
/// logits against labels. Throws std::invalid_argument when the dataset is
/// empty or max_rows is 0.
[[nodiscard]] std::vector<dnn::Tensor> make_mixed_size_trace(
    const dnn::Dataset& data, std::size_t requests, std::size_t max_rows,
    std::vector<std::pair<std::size_t, std::size_t>>* slices = nullptr);

}  // namespace xl::serve
