#include "serve/shard.hpp"

#include <chrono>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <thread>

#include "core/execution_plan.hpp"
#include "core/scheduler.hpp"

namespace xl::serve {

namespace {

double elapsed_us(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

}  // namespace

AcceleratorShard::AcceleratorShard(std::size_t id, const ModelRepository& models,
                                   const core::VdpSimOptions& vdp,
                                   const ServingOptions& options)
    : id_(id), options_(options) {
  stats_.batch_rows_histogram.assign(options_.max_batch + 1, 0);
  for (const std::string& name : models.names()) {
    auto shard_model = std::make_unique<ShardModel>();
    shard_model->network = models.replicate(name);
    shard_model->engine = std::make_unique<core::PhotonicInferenceEngine>(
        shard_model->network, vdp);
    if (options_.use_execution_plan) {
      // Compile the plan eagerly (weight packing, im2col index maps, arena
      // sizing) so no worker thread ever pays the compilation cost.
      shard_model->engine->set_plan_enabled(true);
      shard_model->engine->prepare_plan(models.find(name).input_shape,
                                        options_.max_batch);
    }
    if (options_.pace_hardware_time) {
      shard_model->mapping =
          core::map_model(models.find(name).spec, options_.architecture);
    }
    models_.emplace(name, std::move(shard_model));
  }
  // A micro-batch holds at most max_batch requests (each carries >= 1 row).
  in_views_.reserve(options_.max_batch);
  out_views_.reserve(options_.max_batch);
  latency_scratch_.reserve(options_.max_batch);
}

double AcceleratorShard::paced_service_us(const std::string& model, std::size_t rows) {
  if (!options_.pace_hardware_time || rows == 0) return 0.0;
  ShardModel& entry = *models_.at(model);
  const auto memo = entry.service_us_by_rows.find(rows);
  if (memo != entry.service_us_by_rows.end()) return memo->second;
  core::ScheduleOptions schedule;
  schedule.batch = rows;
  const double makespan_us =
      core::EventScheduler(options_.architecture, schedule).run(entry.mapping).makespan_us();
  const double service = makespan_us * options_.pace_scale;
  entry.service_us_by_rows.emplace(rows, service);
  return service;
}

void AcceleratorShard::execute(MicroBatch&& batch) {
  const Clock::time_point dispatched_at = Clock::now();
  try {
    const auto it = models_.find(batch.model);
    if (it == models_.end()) {
      throw std::logic_error("AcceleratorShard: unregistered model: " + batch.model);
    }
    ShardModel& entry = *it->second;

    // Canonical effect timeline: every micro-batch starts from the boot
    // (t = 0) pipeline state. Combined with the engine's row-independent
    // GEMM and operand-keyed noise, per-sample logits are therefore
    // invariant to batch composition, shard assignment, and worker count.
    entry.engine->engine().reset_effects();

    if (options_.use_execution_plan) {
      // Planned path: the cached ExecutionPlan gathers request rows straight
      // from each request's input tensor and scatters logits straight into
      // its preallocated result tensor — no coalesced copy, no per-request
      // logits allocation, zero engine-side heap traffic after warm-up.
      const core::ExecutionPlan* plan = entry.engine->plan();
      in_views_.clear();
      out_views_.clear();
      for (PendingRequest& pending : batch.requests) {
        const std::size_t k = pending.rows();
        if (pending.result.logits.numel() != k * plan->output_numel()) {
          // submit() normally preallocates; cover direct-injected requests.
          dnn::Shape out_shape = plan->output_sample_shape();
          out_shape[0] = k;
          pending.result.logits = dnn::Tensor(out_shape);
        }
        in_views_.push_back({pending.request.input.data(), k});
        out_views_.push_back({pending.result.logits.data(), k});
      }
      entry.engine->infer_views(in_views_, out_views_);
    } else {
      // Legacy path: stack every request's rows into one (rows, ...) tensor,
      // run the batched forward pass, and split the logits back per request.
      // All requests were shape-checked against the model at submit().
      const dnn::Tensor& head = batch.requests.front().request.input;
      dnn::Shape shape = head.shape();
      shape[0] = batch.rows;
      dnn::Tensor coalesced(shape);
      const std::size_t row_numel = head.numel() / head.dim(0);
      std::size_t row = 0;
      for (const PendingRequest& pending : batch.requests) {
        const dnn::Tensor& input = pending.request.input;
        std::memcpy(coalesced.data() + row * row_numel, input.data(),
                    input.numel() * sizeof(float));
        row += pending.rows();
      }
      const dnn::Tensor logits = entry.engine->infer_batch(coalesced);
      const std::size_t classes = logits.dim(1);
      row = 0;
      for (PendingRequest& pending : batch.requests) {
        const std::size_t k = pending.rows();
        if (pending.result.logits.numel() != k * classes) {
          pending.result.logits = dnn::Tensor({k, classes});
        }
        std::memcpy(pending.result.logits.data(), logits.data() + row * classes,
                    k * classes * sizeof(float));
        row += k;
      }
    }

    // The shard is occupied for at least the simulated hardware makespan of
    // this batch (hardware-time pacing; no-op when disabled).
    const double target_us = paced_service_us(batch.model, batch.rows);
    const double compute_us = elapsed_us(dispatched_at, Clock::now());
    if (target_us > compute_us) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::micro>(target_us - compute_us));
    }

    const Clock::time_point completed_at = Clock::now();
    const double service_us = elapsed_us(dispatched_at, completed_at);

    latency_scratch_.clear();
    for (PendingRequest& pending : batch.requests) {
      pending.result.shard_id = id_;
      pending.result.batch_rows = batch.rows;
      pending.result.coalesced_requests = batch.requests.size();
      pending.result.queue_us = elapsed_us(pending.enqueued_at, dispatched_at);
      pending.result.service_us = service_us;
      latency_scratch_.emplace_back(pending.sequence,
                                    elapsed_us(pending.enqueued_at, completed_at));
      pending.promise.set_value(std::move(pending.result));
    }

    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.batches += 1;
    stats_.samples += batch.rows;
    stats_.requests += batch.requests.size();
    stats_.busy_us += service_us;
    if (batch.rows < stats_.batch_rows_histogram.size()) {
      stats_.batch_rows_histogram[batch.rows] += 1;
    }
    for (auto& latency : latency_scratch_) {
      stats_.latencies.push_back(latency);
    }
    // Re-sum the engine counters (written only by this worker thread) into
    // the lock-guarded snapshot source.
    stats_.inference = core::PhotonicInferenceStats{};
    for (const auto& [name, model] : models_) {
      (void)name;
      stats_.inference.merge(model->engine->stats());
    }
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    for (PendingRequest& pending : batch.requests) {
      try {
        pending.promise.set_exception(error);
      } catch (const std::future_error&) {
        // Promise already satisfied before the failure; nothing to do.
      }
    }
  }
}

ShardStats AcceleratorShard::snapshot() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace xl::serve
