#include "serve/request_queue.hpp"

#include <stdexcept>
#include <utility>

namespace xl::serve {

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("RequestQueue: capacity must be >= 1");
  }
}

bool RequestQueue::push(PendingRequest&& pending) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_full_.wait(lock, [&] { return queue_.size() < capacity_ || closed_; });
  if (closed_) return false;
  pending.sequence = next_sequence_++;
  pending.enqueued_at = Clock::now();
  queue_.push_back(std::move(pending));
  lock.unlock();
  // One enqueued request is one unit of consumer progress: notify_one. A
  // woken coalescing batcher that cannot take it (model mismatch) dispatches
  // its batch and re-polls the queue immediately, so the unit is never
  // stranded behind a swallowed wakeup.
  not_empty_.notify_one();
  return true;
}

std::optional<PendingRequest> RequestQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait(lock, [&] { return !queue_.empty() || closed_; });
  if (queue_.empty()) return std::nullopt;  // Closed and drained.
  PendingRequest out = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  // One freed slot admits exactly one blocked producer: notify_one. (Each
  // subsequent pop frees another slot and issues its own wake, so multiple
  // blocked producers drain one-for-one without a broadcast.)
  not_full_.notify_one();
  return out;
}

std::optional<PendingRequest> RequestQueue::try_pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (queue_.empty()) return std::nullopt;
  PendingRequest out = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return out;
}

RequestQueue::PopSame RequestQueue::try_pop_same(const std::string& model,
                                                std::size_t max_rows,
                                                std::optional<PendingRequest>& out) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (queue_.empty()) return closed_ ? PopSame::kClosed : PopSame::kEmpty;
  PendingRequest& front = queue_.front();
  if (front.request.model != model) return PopSame::kMismatch;
  if (front.rows() > max_rows) return PopSame::kTooLarge;
  out = std::move(front);
  queue_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return PopSame::kPopped;
}

bool RequestQueue::wait_for_request(Clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  return not_empty_.wait_until(lock, deadline,
                               [&] { return !queue_.empty() || closed_; });
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  // Closing flips the wait predicate of every blocked producer AND consumer
  // simultaneously — this is the one transition that must broadcast.
  not_empty_.notify_all();
  not_full_.notify_all();
}

std::vector<PendingRequest> RequestQueue::close_and_drain() {
  std::vector<PendingRequest> drained;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    drained.reserve(queue_.size());
    while (!queue_.empty()) {
      drained.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  return drained;
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace xl::serve
