#include "serve/serving_runtime.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace xl::serve {

ServingRuntime::ServingRuntime(core::VdpSimOptions vdp, ServingOptions options)
    // Validation must precede the queue/batcher member initializers, or
    // their internal checks would fire first with less precise messages.
    : vdp_(std::move(vdp)),
      options_((options.validate(), options)),
      queue_(options.queue_capacity),
      batcher_(options.max_batch, options.deadline_us) {
  vdp_.validate();
}

ServingRuntime::~ServingRuntime() { stop(); }

void ServingRuntime::register_model(ServedModel model) {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (started_) {
    throw std::logic_error("ServingRuntime: register_model must precede start()");
  }
  models_.add(std::move(model));
}

void ServingRuntime::register_model(const std::string& name, dnn::Network& prototype,
                                    std::function<dnn::Network()> factory,
                                    dnn::Shape input_shape) {
  ServedModel model;
  model.name = name;
  model.prototype = &prototype;
  model.factory = std::move(factory);
  model.input_shape = std::move(input_shape);
  register_model(std::move(model));
}

void ServingRuntime::start() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (started_) throw std::logic_error("ServingRuntime: already started");
  if (models_.size() == 0) {
    throw std::logic_error("ServingRuntime: no models registered");
  }
  // Shards are built serially before any worker exists: every replica is
  // copied from the (immutable) prototypes with no concurrent readers.
  shards_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    shards_.push_back(std::make_unique<AcceleratorShard>(i, models_, vdp_, options_));
  }
  if (options_.use_executor) {
    // No dedicated threads: shards park in the idle pool and submit()
    // dispatches them as drain tasks on this executor's blocking lane.
    pool_ = &exec::current();
    idle_shards_.clear();
    idle_shards_.reserve(options_.workers);
    for (std::size_t i = options_.workers; i > 0; --i) {
      idle_shards_.push_back(i - 1);  // LIFO pop yields shard 0 first.
    }
    started_ = true;
    return;
  }
  workers_.reserve(options_.workers);
  try {
    for (std::size_t i = 0; i < options_.workers; ++i) {
      workers_.emplace_back([this, i] { worker_loop(*shards_[i]); });
    }
  } catch (...) {
    // A thread failed to spawn (resource exhaustion): release the workers
    // that did start — destroying a joinable std::thread would terminate.
    queue_.close();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
    workers_.clear();
    shards_.clear();
    throw;
  }
  started_ = true;
}

std::future<InferResult> ServingRuntime::submit(const std::string& model,
                                                dnn::Tensor input) {
  if (!started_ || stopping_) {
    throw std::runtime_error("ServingRuntime: submit() outside start()..stop()");
  }
  const ServedModel& entry = models_.find(model);  // Throws on unknown model.
  if (input.rank() != entry.input_shape.size()) {
    throw std::invalid_argument("ServingRuntime: input rank mismatch for " + model);
  }
  for (std::size_t d = 1; d < entry.input_shape.size(); ++d) {
    if (input.dim(d) != entry.input_shape[d]) {
      throw std::invalid_argument("ServingRuntime: input shape mismatch for " + model);
    }
  }
  const std::size_t rows = input.dim(0);
  if (rows == 0 || rows > options_.max_batch) {
    throw std::invalid_argument(
        "ServingRuntime: request rows must be in [1, max_batch]");
  }

  PendingRequest pending;
  pending.request.model = model;
  pending.request.input = std::move(input);
  // Preallocate the result logits on the submitter's thread: the worker hot
  // path (planned execution) scatters straight into this tensor and moves
  // the result out, so steady-state workers never touch the heap for it.
  dnn::Shape out_shape = entry.output_shape;
  out_shape[0] = rows;
  pending.result.logits = dnn::Tensor(out_shape);
  std::future<InferResult> future = pending.promise.get_future();
  if (!queue_.push(std::move(pending))) {
    throw std::runtime_error("ServingRuntime: queue closed during submit()");
  }
  if (options_.use_executor) {
    // Hand the request to an idle shard right here on the dispatch path; if
    // every shard is draining, one of them picks it up before re-parking.
    std::lock_guard<std::mutex> lock(dispatch_mutex_);
    maybe_dispatch_locked();
  }
  return future;
}

void ServingRuntime::maybe_dispatch_locked() {
  if (idle_shards_.empty()) return;  // An active drain will claim the work.
  const std::size_t shard_index = idle_shards_.back();
  idle_shards_.pop_back();
  ++active_drains_;
  pool_->submit_blocking([this, shard_index] { drain_loop(shard_index); });
}

void ServingRuntime::drain_loop(std::size_t shard_index) {
  AcceleratorShard& shard = *shards_[shard_index];
  while (auto batch = batcher_.try_next_batch(queue_)) {
    shard.execute(std::move(*batch));
  }
  std::lock_guard<std::mutex> lock(dispatch_mutex_);
  idle_shards_.push_back(shard_index);
  --active_drains_;
  // A request admitted after our last (empty) poll but before we re-parked
  // found no idle shard — re-check under the lock so it cannot strand.
  if (queue_.size() > 0) maybe_dispatch_locked();
  if (active_drains_ == 0) drains_cv_.notify_all();
}

void ServingRuntime::stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (!started_ || stopping_) return;  // Never started, or already stopped.
  stopping_ = true;
  // Close admission and claim the undispatched backlog in one atomic step:
  // every accepted request is now either inside a micro-batch (a worker
  // finishes it normally below) or in `orphans` — exactly one of the two.
  std::vector<PendingRequest> orphans = queue_.close_and_drain();
  if (options_.use_executor) {
    // Drains observe the closed+drained queue on their next poll and park;
    // wait until the last in-flight batch has completed.
    std::unique_lock<std::mutex> drains(dispatch_mutex_);
    drains_cv_.wait(drains, [&] { return active_drains_ == 0; });
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // Fail the orphans only after the workers are gone, so a completed future
  // always means "executed" and a ShutdownError always means "never ran".
  for (PendingRequest& pending : orphans) {
    pending.promise.set_exception(std::make_exception_ptr(ShutdownError(
        "ServingRuntime: stop() before request for '" + pending.request.model +
        "' was dispatched")));
  }
}

void ServingRuntime::worker_loop(AcceleratorShard& shard) {
  while (auto batch = batcher_.next_batch(queue_)) {
    shard.execute(std::move(*batch));
  }
}

ServingStats ServingRuntime::stats() const {
  // shards_ changes shape only inside start(); the lock makes a snapshot
  // taken concurrently with start() well-defined.
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  ServingStats out;
  out.batch_rows_histogram.assign(options_.max_batch + 1, 0);
  std::vector<std::pair<std::uint64_t, double>> latencies;
  for (const auto& shard : shards_) {
    const ShardStats s = shard->snapshot();
    out.requests += s.requests;
    out.samples += s.samples;
    out.batches += s.batches;
    out.busy_us += s.busy_us;
    for (std::size_t r = 0;
         r < s.batch_rows_histogram.size() && r < out.batch_rows_histogram.size(); ++r) {
      out.batch_rows_histogram[r] += s.batch_rows_histogram[r];
    }
    out.inference.merge(s.inference);
    latencies.insert(latencies.end(), s.latencies.begin(), s.latencies.end());
  }
  std::sort(latencies.begin(), latencies.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out.latency_us.reserve(latencies.size());
  for (const auto& [sequence, latency] : latencies) {
    (void)sequence;
    out.latency_us.push_back(latency);
  }
  return out;
}

}  // namespace xl::serve
