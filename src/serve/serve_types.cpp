#include "serve/serve_types.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dnn/datasets.hpp"
#include "dnn/network.hpp"

namespace xl::serve {

void ServingOptions::validate() const {
  if (workers == 0) {
    throw std::invalid_argument("ServingOptions: workers must be >= 1");
  }
  if (max_batch == 0) {
    throw std::invalid_argument("ServingOptions: max_batch must be >= 1");
  }
  if (queue_capacity == 0) {
    throw std::invalid_argument("ServingOptions: queue_capacity must be >= 1");
  }
  if (deadline_us < 0.0 || !std::isfinite(deadline_us)) {
    throw std::invalid_argument("ServingOptions: deadline_us must be finite and >= 0");
  }
  if (deadline_us > kMaxDeadlineUs) {
    throw std::invalid_argument(
        "ServingOptions: deadline_us must be at most 1e9 (1000 s)");
  }
  if (pace_hardware_time) {
    if (pace_scale <= 0.0 || !std::isfinite(pace_scale)) {
      throw std::invalid_argument("ServingOptions: pace_scale must be finite and > 0");
    }
    architecture.validate();
  }
}

namespace {

double percentile_from_sorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

double latency_percentile_us(std::vector<double> latencies, double p) {
  std::sort(latencies.begin(), latencies.end());
  return percentile_from_sorted(latencies, p);
}

std::pair<double, double> latency_p50_p99_us(std::vector<double> latencies) {
  std::sort(latencies.begin(), latencies.end());
  return {percentile_from_sorted(latencies, 50.0),
          percentile_from_sorted(latencies, 99.0)};
}

void copy_parameters(dnn::Network& src, dnn::Network& dst) {
  const auto src_params = src.parameters();
  const auto dst_params = dst.parameters();
  if (src_params.size() != dst_params.size()) {
    throw std::invalid_argument(
        "copy_parameters: parameter count mismatch (factory network does not "
        "match the prototype architecture)");
  }
  for (std::size_t i = 0; i < src_params.size(); ++i) {
    const dnn::Tensor& from = *src_params[i].value;
    dnn::Tensor& to = *dst_params[i].value;
    if (from.shape() != to.shape()) {
      throw std::invalid_argument("copy_parameters: parameter shape mismatch");
    }
    to = from;
  }
}

std::vector<dnn::Tensor> make_mixed_size_trace(
    const dnn::Dataset& data, std::size_t requests, std::size_t max_rows,
    std::vector<std::pair<std::size_t, std::size_t>>* slices) {
  if (data.size() == 0) {
    throw std::invalid_argument("make_mixed_size_trace: empty dataset");
  }
  if (max_rows == 0) {
    throw std::invalid_argument("make_mixed_size_trace: max_rows must be >= 1");
  }
  std::vector<dnn::Tensor> trace;
  trace.reserve(requests);
  if (slices != nullptr) {
    slices->clear();
    slices->reserve(requests);
  }
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < requests; ++i) {
    const std::size_t rows = std::min<std::size_t>(1 + i % 4, max_rows);
    if (rows > data.size()) {
      throw std::invalid_argument("make_mixed_size_trace: dataset smaller than a slice");
    }
    if (cursor + rows > data.size()) cursor = 0;
    trace.push_back(dnn::batch_images(data, cursor, rows));
    if (slices != nullptr) slices->emplace_back(cursor, rows);
    cursor += rows;
  }
  return trace;
}

}  // namespace xl::serve
