#include "serve/model_repository.hpp"

#include <stdexcept>
#include <utility>

#include "dnn/models.hpp"
#include "numerics/rng.hpp"
#include "serve/serve_types.hpp"

namespace xl::serve {

ServedModel table1_proxy_served_model(dnn::Network& prototype) {
  ServedModel model;
  model.name = "table1-proxy-mlp";
  model.prototype = &prototype;
  model.factory = [] {
    numerics::Rng rng(21);
    return dnn::build_table1_proxy_mlp(rng);
  };
  model.input_shape = {1, 1, 12, 12};
  return model;
}

void ModelRepository::add(ServedModel model) {
  if (model.name.empty()) {
    throw std::invalid_argument("ModelRepository: model name must be non-empty");
  }
  if (contains(model.name)) {
    throw std::invalid_argument("ModelRepository: duplicate model: " + model.name);
  }
  if (model.prototype == nullptr) {
    throw std::invalid_argument("ModelRepository: model needs a prototype network");
  }
  if (!model.factory) {
    throw std::invalid_argument("ModelRepository: model needs a replica factory");
  }
  if (model.input_shape.size() < 2 || model.input_shape[0] != 1) {
    throw std::invalid_argument(
        "ModelRepository: input_shape must be a per-sample shape with dim 0 == 1");
  }
  if (model.output_shape.empty()) {
    model.output_shape = model.prototype->output_shape(model.input_shape);
  }
  if (model.spec.layers.empty()) {
    model.spec.layers = model.prototype->export_specs(model.input_shape);
  }
  if (model.spec.name.empty()) model.spec.name = model.name;
  models_.push_back(std::move(model));
}

const ServedModel& ModelRepository::find(const std::string& name) const {
  for (const ServedModel& m : models_) {
    if (m.name == name) return m;
  }
  throw std::invalid_argument("ModelRepository: unknown model: " + name);
}

bool ModelRepository::contains(const std::string& name) const {
  for (const ServedModel& m : models_) {
    if (m.name == name) return true;
  }
  return false;
}

std::vector<std::string> ModelRepository::names() const {
  std::vector<std::string> out;
  out.reserve(models_.size());
  for (const ServedModel& m : models_) out.push_back(m.name);
  return out;
}

dnn::Network ModelRepository::replicate(const std::string& name) const {
  const ServedModel& entry = find(name);
  dnn::Network replica = entry.factory();
  copy_parameters(*entry.prototype, replica);
  return replica;
}

}  // namespace xl::serve
