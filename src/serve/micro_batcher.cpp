#include "serve/micro_batcher.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

namespace xl::serve {

MicroBatcher::MicroBatcher(std::size_t max_batch, double deadline_us)
    // The clamp keeps the wait-cutoff duration_cast below the clock's
    // integer range (casting a double past it is undefined behavior).
    : max_batch_(max_batch), deadline_us_(std::min(deadline_us, kMaxDeadlineUs)) {
  if (max_batch == 0) {
    throw std::invalid_argument("MicroBatcher: max_batch must be >= 1");
  }
  if (deadline_us < 0.0) {
    throw std::invalid_argument("MicroBatcher: deadline_us must be >= 0");
  }
}

std::optional<MicroBatch> MicroBatcher::next_batch(RequestQueue& queue) {
  // Serialize formation: without this, two workers pulling concurrently
  // would interleave pops and split what FIFO order says is one batch.
  std::lock_guard<std::mutex> formation(formation_mutex_);
  std::optional<PendingRequest> first = queue.pop();
  if (!first) return std::nullopt;  // Closed and drained.
  return coalesce(queue, std::move(*first));
}

std::optional<MicroBatch> MicroBatcher::try_next_batch(RequestQueue& queue) {
  std::lock_guard<std::mutex> formation(formation_mutex_);
  std::optional<PendingRequest> first = queue.try_pop();
  if (!first) return std::nullopt;  // Empty right now (or closed+drained).
  return coalesce(queue, std::move(*first));
}

MicroBatch MicroBatcher::coalesce(RequestQueue& queue, PendingRequest first) {
  MicroBatch batch;
  batch.model = first.request.model;
  batch.rows = first.rows();
  const Clock::time_point cutoff =
      first.enqueued_at +
      std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double, std::micro>(deadline_us_));
  batch.requests.push_back(std::move(first));

  while (batch.rows < max_batch_) {
    std::optional<PendingRequest> next;
    const RequestQueue::PopSame status =
        queue.try_pop_same(batch.model, max_batch_ - batch.rows, next);
    if (status == RequestQueue::PopSame::kPopped) {
      batch.rows += next->rows();
      batch.requests.push_back(std::move(*next));
      continue;
    }
    // A different-model front (or one too large for the remaining budget)
    // must be served by the *next* batch — FIFO order is preserved.
    if (status == RequestQueue::PopSame::kMismatch ||
        status == RequestQueue::PopSame::kTooLarge ||
        status == RequestQueue::PopSame::kClosed) {
      break;
    }
    // Queue momentarily empty: wait for company until the oldest claimed
    // request's deadline, then dispatch what we have.
    if (Clock::now() >= cutoff) break;
    if (!queue.wait_for_request(cutoff)) break;  // Deadline expired.
  }
  return batch;
}

}  // namespace xl::serve
