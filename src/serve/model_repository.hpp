// Registered models of a serving runtime.
//
// A ServedModel pairs one immutable prototype network (the weight source,
// owned by the caller, must outlive the runtime and stay untouched while
// serving) with a factory that builds an identically structured replica.
// Each accelerator shard instantiates its own replica + engine from these
// at start(), so no network state is ever shared across worker threads
// (Layer::forward caches activations even in inference mode).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "dnn/layer_spec.hpp"
#include "dnn/network.hpp"
#include "dnn/tensor.hpp"

namespace xl::serve {

struct ServedModel {
  std::string name;
  dnn::Network* prototype = nullptr;        ///< Weight source; caller-owned.
  std::function<dnn::Network()> factory;    ///< Architecture replica builder.
  dnn::Shape input_shape;                   ///< Per-sample shape, dim 0 = 1.
  /// Per-sample output (logits) shape, dim 0 = 1; derived from the prototype
  /// via Network::output_shape when left empty. submit() uses it to
  /// preallocate each request's result tensor off the worker hot path.
  dnn::Shape output_shape;
  /// Analytical workload shape for hardware-time pacing; synthesized from
  /// the prototype's export_specs when left empty.
  dnn::ModelSpec spec;
};

/// ServedModel preset for the shared Table I proxy MLP (the model-zoo
/// build_table1_proxy_mlp recipe: seed-21 architecture, 12x12x1 input,
/// registry name "table1-proxy-mlp"). One definition for the CLI, bench,
/// and example, so their replica factories can never drift from the
/// prototype architecture.
[[nodiscard]] ServedModel table1_proxy_served_model(dnn::Network& prototype);

class ModelRepository {
 public:
  /// Validates and registers a model. Fills spec.layers from the prototype
  /// when empty. Throws std::invalid_argument on a duplicate name, missing
  /// prototype/factory, or an input shape whose dim 0 is not 1.
  void add(ServedModel model);

  [[nodiscard]] const ServedModel& find(const std::string& name) const;
  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t size() const noexcept { return models_.size(); }

  /// Build a weight-complete replica of the named model (factory +
  /// copy_parameters from the prototype).
  [[nodiscard]] dnn::Network replicate(const std::string& name) const;

 private:
  std::vector<ServedModel> models_;  ///< Registration order.
};

}  // namespace xl::serve
