#include "fleet/fleet_types.hpp"

#include <stdexcept>

namespace xl::fleet {
namespace {

std::uint64_t fnv1a(const std::string& s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

FleetPartition FleetPartition::parse(const std::string& text) {
  FleetPartition partition;
  if (text.empty() || text == "round_robin") return partition;
  if (text == "hash") {
    partition.strategy = Strategy::kHash;
    return partition;
  }
  // Pin list: "model=rank[,model=rank...]".
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string item =
        text.substr(start, comma == std::string::npos ? comma : comma - start);
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= item.size()) {
      throw std::invalid_argument(
          "FleetPartition: expected 'round_robin', 'hash', or "
          "'model=rank[,...]', got '" + text + "'");
    }
    const std::string name = item.substr(0, eq);
    const std::string rank_text = item.substr(eq + 1);
    std::size_t parsed = 0;
    unsigned long rank = 0;
    try {
      rank = std::stoul(rank_text, &parsed);
    } catch (const std::exception&) {
      parsed = 0;
    }
    if (parsed != rank_text.size()) {
      throw std::invalid_argument("FleetPartition: bad rank in '" + item + "'");
    }
    if (!partition.overrides.emplace(name, static_cast<std::uint32_t>(rank)).second) {
      throw std::invalid_argument("FleetPartition: duplicate pin for '" + name + "'");
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return partition;
}

std::uint32_t FleetPartition::owner_of(const std::string& name,
                                       std::size_t index,
                                       std::uint32_t nodes) const {
  if (nodes == 0) throw std::invalid_argument("FleetPartition: zero nodes");
  const auto it = overrides.find(name);
  if (it != overrides.end()) {
    if (it->second >= nodes) {
      throw std::invalid_argument("FleetPartition: pin for '" + name +
                                  "' names rank " + std::to_string(it->second) +
                                  " but the fleet has " + std::to_string(nodes) +
                                  " nodes");
    }
    return it->second;
  }
  if (strategy == Strategy::kHash) {
    return static_cast<std::uint32_t>(fnv1a(name) % nodes);
  }
  return static_cast<std::uint32_t>(index % nodes);
}

std::string FleetPartition::summary() const {
  std::string out =
      strategy == Strategy::kHash ? std::string("hash") : std::string("round_robin");
  for (const auto& [name, rank] : overrides) {
    out += "," + name + "=" + std::to_string(rank);
  }
  return out;
}

void FleetOptions::validate() const {
  if (nodes == 0) {
    throw std::invalid_argument("FleetOptions: nodes must be >= 1");
  }
  serving.validate();
  for (const auto& [name, rank] : partition.overrides) {
    if (rank >= nodes) {
      throw std::invalid_argument("FleetOptions: partition pin '" + name + "=" +
                                  std::to_string(rank) + "' is out of range for " +
                                  std::to_string(nodes) + " nodes");
    }
  }
}

}  // namespace xl::fleet
