#include "fleet/transport.hpp"

#include <stdexcept>
#include <utility>

namespace xl::fleet {

InProcFabric::InProcFabric(std::uint32_t world_size) : world_size_(world_size) {
  if (world_size == 0) {
    throw std::invalid_argument("InProcFabric: world_size must be >= 1");
  }
  boxes_.reserve(world_size);
  for (std::uint32_t i = 0; i < world_size; ++i) {
    boxes_.push_back(std::make_unique<Mailbox>());
  }
  gather_slots_.resize(world_size);
}

std::unique_ptr<Transport> InProcFabric::make_endpoint(std::uint32_t rank) {
  return std::make_unique<InProcTransport>(*this, rank);
}

TransportStats InProcFabric::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void InProcFabric::deliver(std::uint32_t source, Message message) {
  if (message.header.dest >= world_size_) {
    throw std::invalid_argument("InProcFabric: dest rank out of range");
  }
  message.header.source = source;
  message.header.magic = kMagic;
  message.header.version = kWireVersion;
  message.header.payload_bytes = message.payload.size();
  // Round-trip the header through the canonical byte layout on every send:
  // the in-proc fabric could hand the struct over directly, but pushing it
  // through encode/decode means each frame exercises exactly the bytes a
  // socket transport would emit — protocol drift fails immediately, not at
  // socket-transport time.
  message.header = decode_header(encode_header(message.header));
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.frames += 1;
    stats_.payload_bytes += message.payload.size();
    if (message.header.channel == Channel::kHaloRequest ||
        message.header.channel == Channel::kHaloReply) {
      stats_.halo_frames += 1;
      stats_.halo_bytes += message.payload.size();
    }
    if (message.header.type == FrameType::kDseMemoDelta ||
        message.header.type == FrameType::kDseMemoMerged) {
      stats_.dse_bytes += message.payload.size();
    }
  }
  Mailbox& box = *boxes_[message.header.dest];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.frames.push_back(std::move(message));
  }
  // notify_all, not _one: multiple threads of one rank wait on different
  // (source, channel) filters, and only the matching waiter may consume.
  box.arrived.notify_all();
}

Message InProcFabric::receive(std::uint32_t rank, std::uint32_t source,
                              Channel channel) {
  if (rank >= world_size_) {
    throw std::invalid_argument("InProcFabric: recv rank out of range");
  }
  Mailbox& box = *boxes_[rank];
  std::unique_lock<std::mutex> lock(box.mutex);
  for (;;) {
    for (auto it = box.frames.begin(); it != box.frames.end(); ++it) {
      if (it->header.channel != channel) continue;
      if (source != kAnySource && it->header.source != source) continue;
      Message out = std::move(*it);
      box.frames.erase(it);
      return out;
    }
    box.arrived.wait(lock);
  }
}

void InProcFabric::enter_barrier() {
  std::unique_lock<std::mutex> lock(collective_mutex_);
  const std::uint64_t generation = barrier_generation_;
  if (++barrier_waiting_ == world_size_) {
    barrier_waiting_ = 0;
    ++barrier_generation_;
    collective_cv_.notify_all();
    return;
  }
  collective_cv_.wait(lock, [&] { return barrier_generation_ != generation; });
}

std::vector<std::vector<std::uint8_t>> InProcFabric::gather(
    std::uint32_t rank, std::vector<std::uint8_t> payload) {
  std::unique_lock<std::mutex> lock(collective_mutex_);
  const std::uint64_t generation = gather_generation_;
  gather_slots_[rank] = std::move(payload);
  if (++gather_contributed_ == world_size_) {
    gather_ready_ = std::move(gather_slots_);
    gather_slots_.assign(world_size_, {});
    gather_contributed_ = 0;
    ++gather_generation_;
    collective_cv_.notify_all();
  } else {
    // The next round cannot complete (and overwrite gather_ready_) until
    // every rank has left this one — each must call gather() again — so
    // copying under the lock after the generation tick is race-free.
    collective_cv_.wait(lock, [&] { return gather_generation_ != generation; });
  }
  return gather_ready_;
}

InProcTransport::InProcTransport(InProcFabric& fabric, std::uint32_t rank)
    : fabric_(fabric), rank_(rank) {
  if (rank >= fabric.world_size()) {
    throw std::invalid_argument("InProcTransport: rank out of range");
  }
}

void InProcTransport::send(Message message) {
  fabric_.deliver(rank_, std::move(message));
}

Message InProcTransport::recv(std::uint32_t source, Channel channel) {
  return fabric_.receive(rank_, source, channel);
}

}  // namespace xl::fleet
