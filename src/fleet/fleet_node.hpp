// FleetNode — one rank of the fleet: a local ServingRuntime for the
// data-parallel models it owns, a ModelParallelWorker replica for every
// model-parallel model, and a DseEngine for its stripe of the candidate
// grid. All work arrives as typed frames from the coordinator (rank N).
//
// Task model (the deadlock-freedom argument). The three loops run as
// blocking-lane tasks on the shared xl::exec pool (cached service threads —
// reused across nodes and runtimes — rather than three dedicated
// std::threads per node):
//   * pump task      — blocks on Channel::kServe only. Executes control
//     frames, submits data-parallel requests to the runtime, and runs
//     model-parallel requests inline (trunk -> halo fan-out -> own tile ->
//     collect on Channel::kHaloReply -> tail).
//   * halo task      — blocks on Channel::kHaloRequest only. Serves
//     boundary tiles to *other* owners, so it is always available even
//     while this node's own pump is blocked waiting for halo replies.
//   * completer task — drains a local queue of (sequence, future) pairs
//     and ships each resolved future back to the coordinator, so the pump
//     never blocks on a micro-batch.
// Blocking-lane tasks each own a service thread for their whole lifetime
// (they never share a CPU lane), so the ownership argument is unchanged:
// each loop owns one receive channel, and any per-(node, model) engine is
// driven by exactly one loop (the pump when this node owns the model, the
// halo task when a peer does) — no engine locking needed.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/dse_engine.hpp"
#include "core/vdp_simulator.hpp"
#include "exec/task_pool.hpp"
#include "fleet/fleet_types.hpp"
#include "fleet/model_parallel.hpp"
#include "fleet/transport.hpp"
#include "serve/serving_runtime.hpp"

namespace xl::fleet {

/// In-process side table for distributed DSE: the coordinator publishes the
/// admitted candidate grid (and the evaluator) here before sending
/// kDseAssign, and nodes resolve their striped candidate ids against it.
/// Only compact ids, memo deltas, and the merged memo cross the transport;
/// the mailbox mutex of the assign frame provides the happens-before edge
/// that makes the published fields safely readable on the node side. A
/// socket transport would serialize the sweep itself instead — a payload
/// change confined to the kDseAssign codec.
struct DseSharedContext {
  const std::vector<core::DseCandidate>* admitted = nullptr;
  const std::vector<dnn::ModelSpec>* models = nullptr;
  /// Null selects the built-in CrossLightAccelerator evaluator.
  const core::DseCandidateEvaluator* evaluate = nullptr;
};

class FleetNode {
 public:
  /// Builds the node's slice of the zoo: data-parallel models whose
  /// partition owner is `rank` are registered into a private ServingRuntime
  /// (only constructed when at least one exists); every model-parallel
  /// model gets a local ModelParallelWorker replica. Does not start threads.
  FleetNode(std::uint32_t rank, std::unique_ptr<Transport> transport,
            const std::vector<FleetModel>& zoo, const core::VdpSimOptions& vdp,
            const FleetOptions& options, const DseSharedContext* dse_context);

  FleetNode(const FleetNode&) = delete;
  FleetNode& operator=(const FleetNode&) = delete;

  /// Start the local runtime (if any) and launch the pump/halo/completer
  /// loops on the executor's blocking lane.
  void start();

  /// Join the pump (and, transitively, the completer and local runtime).
  /// The pump exits after its kShutdown frame: it first drains every
  /// completer future, so all submitted requests resolve before the
  /// runtime stops. The coordinator calls this for every node BEFORE
  /// shutting down halo threads — in-flight model-parallel requests may
  /// still need peers' tiles.
  void join_pump();

  /// Join the halo thread (after its kShutdown on Channel::kHaloRequest).
  void join_halo();

  [[nodiscard]] FleetNodeStats stats() const;
  [[nodiscard]] std::uint32_t rank() const noexcept { return rank_; }

 private:
  struct PendingResult {
    std::uint64_t sequence = 0;
    std::future<serve::InferResult> future;
  };

  void pump_loop();
  void halo_loop();
  void completer_loop();

  void handle_infer(std::uint64_t sequence, Message message);
  void execute_model_parallel(std::uint64_t sequence, const std::string& name,
                              dnn::Tensor input);
  void handle_dse_assign(const Message& message);
  void send_result(std::uint64_t sequence, const serve::InferResult& result);
  void send_error(std::uint64_t sequence, const std::string& what);

  const std::uint32_t rank_;
  const std::uint32_t node_count_;        ///< Fleet nodes (coordinator excluded).
  const std::uint32_t coordinator_rank_;  ///< == node_count_.
  std::unique_ptr<Transport> transport_;
  const DseSharedContext* dse_context_;

  core::VdpSimOptions vdp_;
  std::unique_ptr<serve::ServingRuntime> runtime_;  ///< Null when no dp model owned.
  std::map<std::string, std::unique_ptr<ModelParallelWorker>> mp_workers_;
  std::set<std::string> owned_mp_;  ///< Model-parallel models this rank owns.
  core::DseEngine dse_engine_;

  exec::TaskHandle pump_task_;
  exec::TaskHandle halo_task_;
  exec::TaskHandle completer_task_;

  std::mutex completer_mutex_;
  std::condition_variable completer_cv_;
  std::deque<PendingResult> completer_queue_;
  bool completer_closed_ = false;

  std::atomic<std::size_t> mp_requests_{0};
  std::atomic<std::size_t> halo_tiles_served_{0};
  std::atomic<std::size_t> dse_evaluations_{0};
};

}  // namespace xl::fleet
