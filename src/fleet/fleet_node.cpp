#include "fleet/fleet_node.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

namespace xl::fleet {
namespace {

Message make_frame(FrameType type, Channel channel, std::uint32_t dest,
                   std::uint64_t sequence, std::vector<std::uint8_t> payload) {
  Message message;
  message.header.type = type;
  message.header.channel = channel;
  message.header.dest = dest;
  message.header.sequence = sequence;
  message.payload = std::move(payload);
  return message;
}

double elapsed_us(serve::Clock::time_point since) {
  return std::chrono::duration<double, std::micro>(serve::Clock::now() - since)
      .count();
}

}  // namespace

FleetNode::FleetNode(std::uint32_t rank, std::unique_ptr<Transport> transport,
                     const std::vector<FleetModel>& zoo,
                     const core::VdpSimOptions& vdp, const FleetOptions& options,
                     const DseSharedContext* dse_context)
    : rank_(rank),
      node_count_(static_cast<std::uint32_t>(options.nodes)),
      coordinator_rank_(static_cast<std::uint32_t>(options.nodes)),
      transport_(std::move(transport)),
      dse_context_(dse_context),
      vdp_(vdp),
      dse_engine_(options.dse) {
  if (rank_ >= node_count_) {
    throw std::invalid_argument("FleetNode: rank out of range");
  }
  std::vector<serve::ServedModel> owned_dp;
  for (std::size_t index = 0; index < zoo.size(); ++index) {
    const FleetModel& model = zoo[index];
    const std::uint32_t owner =
        options.partition.owner_of(model.served.name, index, node_count_);
    if (model.model_parallel) {
      // Replicated everywhere: any rank may be asked for a boundary tile.
      mp_workers_.emplace(model.served.name,
                          std::make_unique<ModelParallelWorker>(model.served, vdp_));
      if (owner == rank_) owned_mp_.insert(model.served.name);
    } else if (owner == rank_) {
      owned_dp.push_back(model.served);
    }
  }
  if (!owned_dp.empty()) {
    // Only ranks that own a data-parallel model run a ServingRuntime — an
    // empty runtime refuses to start, and a model-parallel-only rank has no
    // use for one (mp requests bypass micro-batching by design).
    runtime_ = std::make_unique<serve::ServingRuntime>(vdp_, options.serving);
    for (serve::ServedModel& model : owned_dp) {
      runtime_->register_model(std::move(model));
    }
  }
}

void FleetNode::start() {
  if (runtime_) runtime_->start();
  exec::TaskPool& pool = exec::current();
  completer_task_ = pool.submit_blocking([this] { completer_loop(); });
  halo_task_ = pool.submit_blocking([this] { halo_loop(); });
  pump_task_ = pool.submit_blocking([this] { pump_loop(); });
}

void FleetNode::join_pump() { pump_task_.wait(); }

void FleetNode::join_halo() { halo_task_.wait(); }

FleetNodeStats FleetNode::stats() const {
  FleetNodeStats stats;
  stats.rank = rank_;
  if (runtime_) stats.serving = runtime_->stats();
  stats.mp_requests = mp_requests_.load();
  stats.halo_tiles_served = halo_tiles_served_.load();
  stats.dse_evaluations = dse_evaluations_.load();
  return stats;
}

void FleetNode::pump_loop() {
  for (;;) {
    Message message = transport_->recv(kAnySource, Channel::kServe);
    switch (message.header.type) {
      case FrameType::kInferRequest:
        handle_infer(message.header.sequence, std::move(message));
        break;
      case FrameType::kDseAssign:
        handle_dse_assign(message);
        break;
      case FrameType::kDseMemoMerged: {
        const std::uint64_t generation = message.header.sequence;
        try {
          WireReader reader(message.payload);
          const core::DseMemo merged = read_memo(reader);
          reader.expect_done();
          dse_engine_.import_memo(merged);
          transport_->send(make_frame(FrameType::kDseAck, Channel::kDse,
                                      coordinator_rank_, generation, {}));
        } catch (const std::exception& error) {
          WireWriter writer;
          writer.str(error.what());
          transport_->send(make_frame(FrameType::kErrorReply, Channel::kDse,
                                      coordinator_rank_, generation,
                                      writer.take()));
        }
        break;
      }
      case FrameType::kShutdown: {
        // Drain every submitted request before stopping the runtime, so a
        // request accepted before shutdown always resolves normally; the
        // runtime's own stop() then has nothing queued to orphan.
        {
          std::lock_guard<std::mutex> lock(completer_mutex_);
          completer_closed_ = true;
        }
        // Single consumer (the completer loop): notify_one suffices.
        completer_cv_.notify_one();
        completer_task_.wait();
        if (runtime_) runtime_->stop();
        return;
      }
      default:
        send_error(message.header.sequence,
                   "fleet node: unexpected frame type on serve channel");
        break;
    }
  }
}

void FleetNode::handle_infer(std::uint64_t sequence, Message message) {
  std::string name;
  dnn::Tensor input;
  try {
    WireReader reader(message.payload);
    name = reader.str();
    input = read_tensor(reader);
    reader.expect_done();
  } catch (const std::exception& error) {
    send_error(sequence, error.what());
    return;
  }
  if (owned_mp_.count(name) != 0) {
    try {
      execute_model_parallel(sequence, name, std::move(input));
    } catch (const std::exception& error) {
      send_error(sequence, error.what());
    }
    return;
  }
  if (mp_workers_.count(name) != 0) {
    send_error(sequence, "fleet node " + std::to_string(rank_) +
                             ": not the owner of model-parallel model '" +
                             name + "'");
    return;
  }
  if (!runtime_) {
    send_error(sequence, "fleet node " + std::to_string(rank_) +
                             ": no serving runtime (owns no data-parallel "
                             "model) for '" + name + "'");
    return;
  }
  try {
    std::future<serve::InferResult> future =
        runtime_->submit(name, std::move(input));
    {
      std::lock_guard<std::mutex> lock(completer_mutex_);
      completer_queue_.push_back(PendingResult{sequence, std::move(future)});
    }
    // Single consumer (the completer loop): notify_one suffices.
    completer_cv_.notify_one();
  } catch (const std::exception& error) {
    send_error(sequence, error.what());
  }
}

void FleetNode::execute_model_parallel(std::uint64_t sequence,
                                       const std::string& name,
                                       dnn::Tensor input) {
  const auto started = serve::Clock::now();
  ModelParallelWorker& worker = *mp_workers_.at(name);
  const HaloPlan& plan = worker.plan();
  const std::size_t rows = input.rank() >= 1 ? input.dim(0) : 0;

  const dnn::Tensor boundary = worker.run_trunk(input);

  // Fan the halo out first so peers compute while we do our own tile.
  struct PeerTile {
    std::uint32_t rank = 0;
    std::pair<std::size_t, std::size_t> range;
  };
  std::vector<PeerTile> peers;
  for (std::uint32_t peer = 0; peer < node_count_; ++peer) {
    if (peer == rank_) continue;
    const auto range = plan.tile_range(peer, node_count_);
    if (range.first == range.second) continue;
    WireWriter writer;
    writer.str(name);
    writer.u64(range.first);
    writer.u64(range.second);
    write_tensor(writer, boundary);
    transport_->send(make_frame(FrameType::kHaloTile, Channel::kHaloRequest,
                                peer, sequence, writer.take()));
    peers.push_back(PeerTile{peer, range});
  }

  dnn::Tensor stitched({rows, plan.out_features});
  const auto own = plan.tile_range(rank_, node_count_);
  if (own.first != own.second) {
    // run_trunk left our engine at the boundary instant — no fast-forward.
    const dnn::Tensor tile =
        worker.run_tile(boundary, own.first, own.second, false);
    for (std::size_t b = 0; b < rows; ++b) {
      for (std::size_t c = own.first; c < own.second; ++c) {
        stitched.at2(b, c) = tile.at2(b, c - own.first);
      }
    }
  }
  for (const PeerTile& peer : peers) {
    Message reply = transport_->recv(peer.rank, Channel::kHaloReply);
    if (reply.header.type == FrameType::kErrorReply) {
      WireReader reader(reply.payload);
      throw std::runtime_error("fleet halo: peer " + std::to_string(peer.rank) +
                               " failed: " + reader.str());
    }
    if (reply.header.type != FrameType::kHaloTileReply ||
        reply.header.sequence != sequence) {
      throw std::runtime_error("fleet halo: unexpected reply frame");
    }
    WireReader reader(reply.payload);
    const dnn::Tensor tile = read_tensor(reader);
    reader.expect_done();
    const std::size_t width = peer.range.second - peer.range.first;
    if (tile.rank() != 2 || tile.dim(0) != rows || tile.dim(1) != width) {
      throw std::runtime_error("fleet halo: tile shape mismatch from peer " +
                               std::to_string(peer.rank));
    }
    for (std::size_t b = 0; b < rows; ++b) {
      for (std::size_t c = 0; c < width; ++c) {
        stitched.at2(b, peer.range.first + c) = tile.at2(b, c);
      }
    }
  }

  serve::InferResult result;
  result.logits = worker.run_tail(stitched);
  result.shard_id = rank_;
  result.batch_rows = rows;
  result.coalesced_requests = 1;
  result.queue_us = 0.0;
  result.service_us = elapsed_us(started);
  mp_requests_.fetch_add(1);
  send_result(sequence, result);
}

void FleetNode::handle_dse_assign(const Message& message) {
  const std::uint64_t generation = message.header.sequence;
  try {
    WireReader reader(message.payload);
    const std::uint64_t count = reader.u64();
    std::vector<std::uint64_t> ids(static_cast<std::size_t>(count));
    for (auto& id : ids) id = reader.u64();
    reader.expect_done();
    if (dse_context_ == nullptr || dse_context_->admitted == nullptr ||
        dse_context_->models == nullptr) {
      throw std::logic_error("fleet node: kDseAssign without a published "
                             "DSE context");
    }
    std::vector<core::DseCandidate> slice;
    slice.reserve(ids.size());
    for (const std::uint64_t id : ids) {
      slice.push_back(dse_context_->admitted->at(static_cast<std::size_t>(id)));
    }
    const core::DseMemo delta =
        dse_context_->evaluate != nullptr
            ? dse_engine_.populate(slice, *dse_context_->models,
                                   *dse_context_->evaluate)
            : dse_engine_.populate(slice, *dse_context_->models);
    dse_evaluations_.store(delta.size());
    WireWriter writer;
    write_memo(writer, delta);
    transport_->send(make_frame(FrameType::kDseMemoDelta, Channel::kDse,
                                coordinator_rank_, generation, writer.take()));
  } catch (const std::exception& error) {
    WireWriter writer;
    writer.str(error.what());
    transport_->send(make_frame(FrameType::kErrorReply, Channel::kDse,
                                coordinator_rank_, generation, writer.take()));
  }
}

void FleetNode::halo_loop() {
  for (;;) {
    Message message = transport_->recv(kAnySource, Channel::kHaloRequest);
    if (message.header.type == FrameType::kShutdown) return;
    const std::uint32_t owner = message.header.source;
    const std::uint64_t sequence = message.header.sequence;
    try {
      if (message.header.type != FrameType::kHaloTile) {
        throw std::runtime_error("fleet halo: unexpected request frame");
      }
      WireReader reader(message.payload);
      const std::string name = reader.str();
      const std::size_t col_begin = static_cast<std::size_t>(reader.u64());
      const std::size_t col_end = static_cast<std::size_t>(reader.u64());
      const dnn::Tensor boundary = read_tensor(reader);
      reader.expect_done();
      const auto it = mp_workers_.find(name);
      if (it == mp_workers_.end()) {
        throw std::runtime_error("fleet halo: unknown model '" + name + "'");
      }
      // Peer path: fast-forward our engine onto the owner's boundary instant.
      const dnn::Tensor tile =
          it->second->run_tile(boundary, col_begin, col_end, true);
      halo_tiles_served_.fetch_add(1);
      WireWriter writer;
      write_tensor(writer, tile);
      transport_->send(make_frame(FrameType::kHaloTileReply, Channel::kHaloReply,
                                  owner, sequence, writer.take()));
    } catch (const std::exception& error) {
      WireWriter writer;
      writer.str(error.what());
      transport_->send(make_frame(FrameType::kErrorReply, Channel::kHaloReply,
                                  owner, sequence, writer.take()));
    }
  }
}

void FleetNode::completer_loop() {
  for (;;) {
    PendingResult job;
    {
      std::unique_lock<std::mutex> lock(completer_mutex_);
      completer_cv_.wait(lock, [&] {
        return completer_closed_ || !completer_queue_.empty();
      });
      if (completer_queue_.empty()) return;  // Closed and drained.
      job = std::move(completer_queue_.front());
      completer_queue_.pop_front();
    }
    try {
      send_result(job.sequence, job.future.get());
    } catch (const std::exception& error) {
      send_error(job.sequence, error.what());
    }
  }
}

void FleetNode::send_result(std::uint64_t sequence,
                            const serve::InferResult& result) {
  WireWriter writer;
  write_tensor(writer, result.logits);
  writer.u64(result.shard_id);
  writer.u64(result.batch_rows);
  writer.u64(result.coalesced_requests);
  writer.f64(result.queue_us);
  writer.f64(result.service_us);
  transport_->send(make_frame(FrameType::kInferResult, Channel::kServe,
                              coordinator_rank_, sequence, writer.take()));
}

void FleetNode::send_error(std::uint64_t sequence, const std::string& what) {
  WireWriter writer;
  writer.str(what);
  transport_->send(make_frame(FrameType::kErrorReply, Channel::kServe,
                              coordinator_rank_, sequence, writer.take()));
}

}  // namespace xl::fleet
