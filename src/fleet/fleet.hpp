// Umbrella header for the xl::fleet layer: transport-abstracted multi-node
// serving and distributed DSE. Layering: fleet sits between xl::serve
// (which it composes per node) and xl::api (which exposes it as
// Session::fleet()).
#pragma once

#include "fleet/coordinator.hpp"    // IWYU pragma: export
#include "fleet/fleet_node.hpp"     // IWYU pragma: export
#include "fleet/fleet_types.hpp"    // IWYU pragma: export
#include "fleet/model_parallel.hpp" // IWYU pragma: export
#include "fleet/transport.hpp"      // IWYU pragma: export
#include "fleet/wire.hpp"           // IWYU pragma: export
