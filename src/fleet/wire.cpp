#include "fleet/wire.hpp"

#include <cstring>
#include <stdexcept>

namespace xl::fleet {
namespace {

void put_u32(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

void put_u64(std::uint8_t* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t get_u32(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

std::uint64_t get_u64(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  return v;
}

}  // namespace

std::array<std::uint8_t, kHeaderBytes> encode_header(const FrameHeader& header) {
  std::array<std::uint8_t, kHeaderBytes> out{};
  put_u32(out.data() + 0, header.magic);
  put_u32(out.data() + 4, header.version);
  put_u32(out.data() + 8, static_cast<std::uint32_t>(header.type));
  put_u32(out.data() + 12, static_cast<std::uint32_t>(header.channel));
  put_u32(out.data() + 16, header.source);
  put_u32(out.data() + 20, header.dest);
  put_u64(out.data() + 24, header.sequence);
  put_u64(out.data() + 32, header.payload_bytes);
  // Bytes 40..47 are reserved (zero): room for flags/checksums without a
  // version bump.
  return out;
}

FrameHeader decode_header(const std::array<std::uint8_t, kHeaderBytes>& bytes) {
  FrameHeader header;
  header.magic = get_u32(bytes.data() + 0);
  if (header.magic != kMagic) {
    throw std::runtime_error("fleet wire: bad frame magic");
  }
  header.version = get_u32(bytes.data() + 4);
  if (header.version != kWireVersion) {
    throw std::runtime_error("fleet wire: unsupported frame version " +
                             std::to_string(header.version));
  }
  header.type = static_cast<FrameType>(get_u32(bytes.data() + 8));
  header.channel = static_cast<Channel>(get_u32(bytes.data() + 12));
  header.source = get_u32(bytes.data() + 16);
  header.dest = get_u32(bytes.data() + 20);
  header.sequence = get_u64(bytes.data() + 24);
  header.payload_bytes = get_u64(bytes.data() + 32);
  return header;
}

void WireWriter::u32(std::uint32_t v) {
  const std::size_t at = buffer_.size();
  buffer_.resize(at + 4);
  put_u32(buffer_.data() + at, v);
}

void WireWriter::u64(std::uint64_t v) {
  const std::size_t at = buffer_.size();
  buffer_.resize(at + 8);
  put_u64(buffer_.data() + at, v);
}

void WireWriter::f32(float v) {
  static_assert(sizeof(float) == sizeof(std::uint32_t));
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  u32(bits);
}

void WireWriter::f64(double v) {
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void WireWriter::str(const std::string& s) {
  u64(s.size());
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

std::uint32_t WireReader::u32() {
  if (buffer_.size() - cursor_ < 4) {
    throw std::runtime_error("fleet wire: truncated frame (u32)");
  }
  const std::uint32_t v = get_u32(buffer_.data() + cursor_);
  cursor_ += 4;
  return v;
}

std::uint64_t WireReader::u64() {
  if (buffer_.size() - cursor_ < 8) {
    throw std::runtime_error("fleet wire: truncated frame (u64)");
  }
  const std::uint64_t v = get_u64(buffer_.data() + cursor_);
  cursor_ += 8;
  return v;
}

float WireReader::f32() {
  const std::uint32_t bits = u32();
  float v = 0.0F;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

double WireReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string WireReader::str() {
  const std::uint64_t length = u64();
  if (buffer_.size() - cursor_ < length) {
    throw std::runtime_error("fleet wire: truncated frame (string)");
  }
  std::string s(reinterpret_cast<const char*>(buffer_.data() + cursor_),
                static_cast<std::size_t>(length));
  cursor_ += static_cast<std::size_t>(length);
  return s;
}

void WireReader::expect_done() const {
  if (!done()) {
    throw std::runtime_error("fleet wire: trailing bytes after payload");
  }
}

void write_tensor(WireWriter& w, const dnn::Tensor& tensor) {
  w.u64(tensor.rank());
  for (std::size_t d = 0; d < tensor.rank(); ++d) w.u64(tensor.dim(d));
  const float* data = tensor.data();
  for (std::size_t i = 0; i < tensor.numel(); ++i) w.f32(data[i]);
}

dnn::Tensor read_tensor(WireReader& r) {
  const std::uint64_t rank = r.u64();
  if (rank == 0 || rank > 8) {
    throw std::runtime_error("fleet wire: tensor rank out of range");
  }
  dnn::Shape shape(static_cast<std::size_t>(rank));
  for (auto& dim : shape) dim = static_cast<std::size_t>(r.u64());
  dnn::Tensor tensor(shape);
  float* data = tensor.data();
  for (std::size_t i = 0; i < tensor.numel(); ++i) data[i] = r.f32();
  return tensor;
}

void write_report(WireWriter& w, const core::AcceleratorReport& report) {
  w.str(report.accelerator);
  w.str(report.model);
  w.f64(report.perf.cycle_ns);
  w.u64(report.perf.batch);
  w.f64(report.perf.frame_latency_us);
  w.f64(report.perf.fps);
  w.f64(report.power.laser_mw);
  w.f64(report.power.to_tuning_mw);
  w.f64(report.power.eo_tuning_mw);
  w.f64(report.power.pd_mw);
  w.f64(report.power.tia_mw);
  w.f64(report.power.vcsel_mw);
  w.f64(report.power.adc_dac_mw);
  w.f64(report.power.control_mw);
  w.f64(report.area_mm2);
  w.u32(static_cast<std::uint32_t>(report.resolution_bits));
  w.u64(report.macs_per_frame);
}

core::AcceleratorReport read_report(WireReader& r) {
  core::AcceleratorReport report;
  report.accelerator = r.str();
  report.model = r.str();
  report.perf.cycle_ns = r.f64();
  report.perf.batch = static_cast<std::size_t>(r.u64());
  report.perf.frame_latency_us = r.f64();
  report.perf.fps = r.f64();
  report.power.laser_mw = r.f64();
  report.power.to_tuning_mw = r.f64();
  report.power.eo_tuning_mw = r.f64();
  report.power.pd_mw = r.f64();
  report.power.tia_mw = r.f64();
  report.power.vcsel_mw = r.f64();
  report.power.adc_dac_mw = r.f64();
  report.power.control_mw = r.f64();
  report.area_mm2 = r.f64();
  report.resolution_bits = static_cast<int>(r.u32());
  report.macs_per_frame = static_cast<std::size_t>(r.u64());
  return report;
}

void write_memo(WireWriter& w, const core::DseMemo& memo) {
  w.u64(memo.entries.size());
  for (const core::DseMemoEntry& entry : memo.entries) {
    w.str(entry.key);
    write_report(w, entry.report);
  }
}

core::DseMemo read_memo(WireReader& r) {
  core::DseMemo memo;
  const std::uint64_t count = r.u64();
  memo.entries.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    core::DseMemoEntry entry;
    entry.key = r.str();
    entry.report = read_report(r);
    memo.entries.push_back(std::move(entry));
  }
  return memo;
}

}  // namespace xl::fleet
