// Shared types of the xl::fleet layer: partition maps, options, stats.
//
// The fleet partitions two grids across N FleetNodes: the model zoo (each
// data-parallel model is owned by exactly one node; model-parallel models
// are replicated everywhere and split column-wise at their boundary layer)
// and the DSE candidate grid (striped round-robin over the admitted list).
// A FleetPartition decides model ownership; it is pure metadata — the
// determinism contract guarantees per-sample logits are bit-identical under
// ANY partition map and node count, so partitioning is purely a
// load-balancing decision, never a numerics decision.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/dse_engine.hpp"
#include "fleet/transport.hpp"
#include "serve/model_repository.hpp"
#include "serve/serve_types.hpp"

namespace xl::fleet {

/// How the model zoo maps onto node ranks.
struct FleetPartition {
  enum class Strategy : std::uint8_t {
    kRoundRobin,  ///< Registration index modulo node count.
    kHash,        ///< FNV-1a of the model name modulo node count.
  };

  Strategy strategy = Strategy::kRoundRobin;
  /// Explicit pins: model name -> node rank. Wins over the strategy; a rank
  /// out of range is rejected at fleet start.
  std::map<std::string, std::uint32_t> overrides;

  /// Parse a --partition spec: "round_robin", "hash", or a comma-separated
  /// pin list "model=rank[,model=rank...]" (pins imply round_robin for
  /// unpinned models). Throws std::invalid_argument on malformed input.
  [[nodiscard]] static FleetPartition parse(const std::string& text);

  /// Owning node of the model registered at `index` under `nodes` ranks.
  [[nodiscard]] std::uint32_t owner_of(const std::string& name,
                                       std::size_t index,
                                       std::uint32_t nodes) const;

  [[nodiscard]] std::string summary() const;
};

/// Fleet configuration. `serving` configures every node's local
/// ServingRuntime identically (workers per node, batching, pacing);
/// `dse` configures every node's DseEngine (and the coordinator's
/// assembly engine, whose memo is always enabled — it is the union cache).
struct FleetOptions {
  std::size_t nodes = 1;  ///< FleetNode count (the transport adds one
                          ///< coordinator endpoint on rank `nodes`).
  FleetPartition partition;
  serve::ServingOptions serving;
  core::DseEngine::Options dse;

  /// Throws std::invalid_argument on zero nodes, an invalid serving
  /// config, or a partition pin whose rank is >= nodes.
  void validate() const;
};

/// A model in the fleet zoo: the serve-layer registration plus the fleet's
/// parallelism mode. A model-parallel model is replicated on every node and
/// its final Dense layer is split column-wise (halo exchange at the
/// boundary); it bypasses micro-batching and executes one request at a
/// time on its owner. See model_parallel.hpp for the layer constraints.
struct FleetModel {
  serve::ServedModel served;
  bool model_parallel = false;
};

/// Per-node telemetry snapshot.
struct FleetNodeStats {
  std::uint32_t rank = 0;
  serve::ServingStats serving;        ///< Local runtime counters (dp models).
  std::size_t mp_requests = 0;        ///< Model-parallel requests executed as owner.
  std::size_t halo_tiles_served = 0;  ///< Boundary tiles computed for peers.
  std::size_t dse_evaluations = 0;    ///< Evaluator calls paid in the last run_dse.
};

/// Fleet-wide telemetry snapshot.
struct FleetStats {
  std::size_t requests = 0;  ///< Requests routed by the coordinator.
  std::vector<FleetNodeStats> nodes;
  TransportStats transport;
};

/// A distributed DSE run: the assembled result (bit-identical to a
/// single-engine DseEngine::run over the same sweep) plus the per-node
/// split of the evaluation work.
struct FleetDseResult {
  core::DseResult result;
  std::vector<std::size_t> node_evaluations;  ///< Evaluator calls by rank.

  /// Total evaluator calls paid across the fleet for this run (0 on a warm
  /// re-run — the merged memo already covered the grid).
  [[nodiscard]] std::size_t total_evaluations() const noexcept {
    std::size_t total = 0;
    for (const std::size_t n : node_evaluations) total += n;
    return total;
  }
};

}  // namespace xl::fleet
