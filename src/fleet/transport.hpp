// Transport — the fleet's message fabric abstraction.
//
// A Transport is one endpoint of an N-endpoint fabric: it can send typed
// frames to any rank, selectively receive by (source, channel), and join
// fabric-wide collectives (barrier / allgather). The interface is shaped
// like an MPI communicator on purpose (rank / world_size / point-to-point /
// collectives, in the Qlattice GeometryNode / get_comm() layering spirit):
// the InProcTransport here routes frames through shared in-process
// mailboxes, and a socket or MPI transport can implement the same five
// virtuals against the identical wire format (wire.hpp pins the bytes)
// without touching any fleet code above it.
//
// Selective receive is the deadlock-safety primitive: each fleet thread
// blocks on exactly one channel, so frames for other threads of the same
// rank are never stolen and never block the channel they belong to.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "fleet/wire.hpp"

namespace xl::fleet {

/// One typed frame in flight: decoded header + raw payload bytes.
struct Message {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

/// Fabric-wide traffic counters (snapshot; see InProcFabric::stats).
struct TransportStats {
  std::uint64_t frames = 0;        ///< Frames delivered, all channels.
  std::uint64_t payload_bytes = 0; ///< Payload bytes delivered, all channels.
  std::uint64_t halo_frames = 0;   ///< kHaloRequest + kHaloReply frames.
  std::uint64_t halo_bytes = 0;    ///< Activation-tile payload bytes.
  std::uint64_t dse_bytes = 0;     ///< Memo delta/merge payload bytes.
};

class Transport {
 public:
  virtual ~Transport() = default;

  [[nodiscard]] virtual std::uint32_t rank() const = 0;
  [[nodiscard]] virtual std::uint32_t world_size() const = 0;

  /// Deliver `message` to `message.header.dest`. The transport stamps
  /// source, magic/version, and payload_bytes; the caller sets type,
  /// channel, dest, and sequence. Thread-safe.
  virtual void send(Message message) = 0;

  /// Block until a frame from `source` (kAnySource for any rank) on
  /// `channel` is available, and return it. Frames on other channels — or
  /// from other sources when a specific one is named — are left queued for
  /// their own receiver. Per-(source, channel) FIFO order is preserved.
  [[nodiscard]] virtual Message recv(std::uint32_t source, Channel channel) = 0;

  /// Block until every endpoint of the fabric has entered the barrier.
  virtual void barrier() = 0;

  /// Contribute `payload` and block until every endpoint contributed;
  /// returns all payloads indexed by rank (identical on every endpoint).
  [[nodiscard]] virtual std::vector<std::vector<std::uint8_t>> allgather(
      std::vector<std::uint8_t> payload) = 0;
};

/// Shared state of an N-endpoint in-process fabric: per-rank mailboxes and
/// the collective rendezvous. Create once, then make_endpoint(rank) for
/// each participant (coordinator + nodes). Thread-safe throughout.
class InProcFabric {
 public:
  explicit InProcFabric(std::uint32_t world_size);

  [[nodiscard]] std::uint32_t world_size() const noexcept { return world_size_; }

  /// Endpoint for `rank` (callable once per rank in a well-formed fleet;
  /// endpoints share the fabric and must not outlive it).
  [[nodiscard]] std::unique_ptr<Transport> make_endpoint(std::uint32_t rank);

  [[nodiscard]] TransportStats stats() const;

 private:
  friend class InProcTransport;

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable arrived;
    std::deque<Message> frames;
  };

  void deliver(std::uint32_t source, Message message);
  [[nodiscard]] Message receive(std::uint32_t rank, std::uint32_t source,
                                Channel channel);
  void enter_barrier();
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> gather(
      std::uint32_t rank, std::vector<std::uint8_t> payload);

  const std::uint32_t world_size_;
  std::vector<std::unique_ptr<Mailbox>> boxes_;

  std::mutex collective_mutex_;
  std::condition_variable collective_cv_;
  std::uint64_t barrier_generation_ = 0;
  std::uint32_t barrier_waiting_ = 0;
  std::uint64_t gather_generation_ = 0;
  std::uint32_t gather_contributed_ = 0;
  std::vector<std::vector<std::uint8_t>> gather_slots_;
  std::vector<std::vector<std::uint8_t>> gather_ready_;

  mutable std::mutex stats_mutex_;
  TransportStats stats_;
};

/// One endpoint of an InProcFabric.
class InProcTransport final : public Transport {
 public:
  InProcTransport(InProcFabric& fabric, std::uint32_t rank);

  [[nodiscard]] std::uint32_t rank() const override { return rank_; }
  [[nodiscard]] std::uint32_t world_size() const override {
    return fabric_.world_size();
  }
  void send(Message message) override;
  [[nodiscard]] Message recv(std::uint32_t source, Channel channel) override;
  void barrier() override { fabric_.enter_barrier(); }
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> allgather(
      std::vector<std::uint8_t> payload) override {
    return fabric_.gather(rank_, std::move(payload));
  }

 private:
  InProcFabric& fabric_;
  const std::uint32_t rank_;
};

}  // namespace xl::fleet
