#include "fleet/coordinator.hpp"

#include <stdexcept>
#include <utility>

namespace xl::fleet {
namespace {

Message make_frame(FrameType type, Channel channel, std::uint32_t dest,
                   std::uint64_t sequence, std::vector<std::uint8_t> payload) {
  Message message;
  message.header.type = type;
  message.header.channel = channel;
  message.header.dest = dest;
  message.header.sequence = sequence;
  message.payload = std::move(payload);
  return message;
}

}  // namespace

FleetCoordinator::FleetCoordinator(core::VdpSimOptions vdp, FleetOptions options)
    : vdp_(std::move(vdp)), options_(std::move(options)) {
  options_.validate();
  core::DseEngine::Options dse = options_.dse;
  // The union memo IS the distributed product — never run it cacheless.
  dse.cache_enabled = true;
  dse_engine_.set_options(std::move(dse));
}

FleetCoordinator::~FleetCoordinator() { stop(); }

void FleetCoordinator::register_model(FleetModel model) {
  if (started_) {
    throw std::logic_error("FleetCoordinator: register_model after start()");
  }
  if (model.served.name.empty()) {
    throw std::invalid_argument("FleetCoordinator: model name must be set");
  }
  if (model.served.prototype == nullptr || !model.served.factory) {
    throw std::invalid_argument("FleetCoordinator: model '" + model.served.name +
                                "' needs a prototype and a factory");
  }
  for (const FleetModel& existing : zoo_) {
    if (existing.served.name == model.served.name) {
      throw std::invalid_argument("FleetCoordinator: duplicate model '" +
                                  model.served.name + "'");
    }
  }
  zoo_.push_back(std::move(model));
}

void FleetCoordinator::start() {
  if (started_) throw std::logic_error("FleetCoordinator: already started");
  if (zoo_.empty()) {
    throw std::logic_error("FleetCoordinator: no models registered");
  }
  const std::uint32_t node_count = static_cast<std::uint32_t>(options_.nodes);
  routes_.clear();
  for (std::size_t index = 0; index < zoo_.size(); ++index) {
    const FleetModel& model = zoo_[index];
    routes_[model.served.name] =
        Route{options_.partition.owner_of(model.served.name, index, node_count),
              model.model_parallel};
  }
  fabric_ = std::make_unique<InProcFabric>(node_count + 1);
  transport_ = fabric_->make_endpoint(node_count);
  nodes_.clear();
  for (std::uint32_t rank = 0; rank < node_count; ++rank) {
    nodes_.push_back(std::make_unique<FleetNode>(rank,
                                                 fabric_->make_endpoint(rank),
                                                 zoo_, vdp_, options_,
                                                 &dse_context_));
  }
  for (const auto& node : nodes_) node->start();
  receiver_ = std::thread(&FleetCoordinator::receiver_loop, this);
  stopped_ = false;
  started_ = true;
}

std::future<serve::InferResult> FleetCoordinator::submit(
    const std::string& model, dnn::Tensor input) {
  if (!started_) {
    throw std::runtime_error("FleetCoordinator: submit before start()");
  }
  const auto route = routes_.find(model);
  if (route == routes_.end()) {
    throw std::invalid_argument("FleetCoordinator: unknown model '" + model +
                                "'");
  }
  const std::uint64_t sequence = next_sequence_.fetch_add(1);
  std::future<serve::InferResult> future;
  {
    // Register the promise BEFORE the frame is in flight — the receiver
    // must always find it, however fast the node answers.
    std::lock_guard<std::mutex> lock(pending_mutex_);
    future = pending_[sequence].get_future();
  }
  WireWriter writer;
  writer.str(model);
  write_tensor(writer, input);
  transport_->send(make_frame(FrameType::kInferRequest, Channel::kServe,
                              route->second.owner, sequence, writer.take()));
  requests_.fetch_add(1);
  return future;
}

void FleetCoordinator::receiver_loop() {
  for (;;) {
    Message message = transport_->recv(kAnySource, Channel::kServe);
    if (message.header.type == FrameType::kShutdown) return;
    std::promise<serve::InferResult> promise;
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      const auto it = pending_.find(message.header.sequence);
      if (it == pending_.end()) continue;  // Unknown correlation id.
      promise = std::move(it->second);
      pending_.erase(it);
    }
    try {
      if (message.header.type == FrameType::kInferResult) {
        WireReader reader(message.payload);
        serve::InferResult result;
        result.logits = read_tensor(reader);
        result.shard_id = static_cast<std::size_t>(reader.u64());
        result.batch_rows = static_cast<std::size_t>(reader.u64());
        result.coalesced_requests = static_cast<std::size_t>(reader.u64());
        result.queue_us = reader.f64();
        result.service_us = reader.f64();
        reader.expect_done();
        promise.set_value(std::move(result));
      } else if (message.header.type == FrameType::kErrorReply) {
        WireReader reader(message.payload);
        const std::string what = reader.str();
        promise.set_exception(
            std::make_exception_ptr(std::runtime_error(what)));
      } else {
        throw std::runtime_error(
            "FleetCoordinator: unexpected frame type on serve channel");
      }
    } catch (const std::exception&) {
      promise.set_exception(std::current_exception());
    }
  }
}

FleetDseResult FleetCoordinator::run_dse(
    const core::DseSweep& sweep, const std::vector<dnn::ModelSpec>& models) {
  return run_dse_impl(sweep, models, nullptr);
}

FleetDseResult FleetCoordinator::run_dse(
    const core::DseSweep& sweep, const std::vector<dnn::ModelSpec>& models,
    const core::DseCandidateEvaluator& evaluate) {
  return run_dse_impl(sweep, models, &evaluate);
}

FleetDseResult FleetCoordinator::run_dse_impl(
    const core::DseSweep& sweep, const std::vector<dnn::ModelSpec>& models,
    const core::DseCandidateEvaluator* evaluate) {
  if (!started_) {
    throw std::runtime_error("FleetCoordinator: run_dse before start()");
  }
  if (models.empty()) {
    throw std::invalid_argument("FleetCoordinator: run_dse needs models");
  }
  const std::uint32_t node_count = static_cast<std::uint32_t>(options_.nodes);

  // Publish the shared DSE context, then assign. The mailbox mutex of each
  // kDseAssign delivery sequences these writes before any node-side read.
  dse_admitted_ = core::DseEngine::admit(sweep);
  dse_models_ = models;
  if (evaluate != nullptr) {
    dse_evaluate_ = *evaluate;
    dse_context_.evaluate = &dse_evaluate_;
  } else {
    dse_evaluate_ = nullptr;
    dse_context_.evaluate = nullptr;
  }
  dse_context_.admitted = &dse_admitted_;
  dse_context_.models = &dse_models_;
  const std::uint64_t generation = ++dse_generation_;

  // Stripe the admitted grid round-robin over the ranks — every node agrees
  // on candidate identity via the admitted order, so a stripe is just a
  // list of indices. Candidates the union cache already fully covers are
  // not striped at all: a warm fleet re-run (or a coordinator pre-warmed
  // via import_memo) assigns zero work.
  std::vector<std::vector<std::uint64_t>> stripes(node_count);
  std::size_t striped = 0;
  for (std::size_t i = 0; i < dse_admitted_.size(); ++i) {
    bool covered = true;
    for (const dnn::ModelSpec& model : dse_models_) {
      if (!dse_engine_.memo_contains(
              core::DseEngine::memo_key(dse_admitted_[i], model))) {
        covered = false;
        break;
      }
    }
    if (covered) continue;
    stripes[striped++ % node_count].push_back(static_cast<std::uint64_t>(i));
  }
  for (std::uint32_t rank = 0; rank < node_count; ++rank) {
    WireWriter writer;
    writer.u64(stripes[rank].size());
    for (const std::uint64_t id : stripes[rank]) writer.u64(id);
    transport_->send(make_frame(FrameType::kDseAssign, Channel::kServe, rank,
                                generation, writer.take()));
  }

  // Collect every node's compact delta (rank order), then merge rank-by-rank
  // into the union memo — import_memo enforces bit-exact agreement on any
  // overlap, so a divergent evaluation fails loudly here, never silently.
  FleetDseResult fleet_result;
  fleet_result.node_evaluations.assign(node_count, 0);
  std::vector<core::DseMemo> deltas(node_count);
  std::string first_error;
  for (std::uint32_t rank = 0; rank < node_count; ++rank) {
    Message message = transport_->recv(rank, Channel::kDse);
    if (message.header.type == FrameType::kErrorReply) {
      WireReader reader(message.payload);
      if (first_error.empty()) {
        first_error = "fleet DSE: node " + std::to_string(rank) +
                      " failed: " + reader.str();
      }
      continue;
    }
    WireReader reader(message.payload);
    deltas[rank] = read_memo(reader);
    reader.expect_done();
    fleet_result.node_evaluations[rank] = deltas[rank].size();
  }
  if (!first_error.empty()) throw std::runtime_error(first_error);
  for (std::uint32_t rank = 0; rank < node_count; ++rank) {
    dse_engine_.import_memo(deltas[rank]);
  }

  // Broadcast the union memo so every node's warm cache covers every
  // stripe — the next run_dse pays zero evaluations under ANY partition.
  WireWriter merged_writer;
  write_memo(merged_writer, dse_engine_.export_memo());
  const std::vector<std::uint8_t> merged_payload = merged_writer.take();
  for (std::uint32_t rank = 0; rank < node_count; ++rank) {
    transport_->send(make_frame(FrameType::kDseMemoMerged, Channel::kServe,
                                rank, generation, merged_payload));
  }
  for (std::uint32_t rank = 0; rank < node_count; ++rank) {
    Message message = transport_->recv(rank, Channel::kDse);
    if (message.header.type != FrameType::kDseAck) {
      WireReader reader(message.payload);
      throw std::runtime_error("fleet DSE: node " + std::to_string(rank) +
                               " failed to import the merged memo: " +
                               reader.str());
    }
  }

  // Assemble on the coordinator's own engine: every (candidate, model) pair
  // is now cached, so this run ranks and Pareto-filters without paying a
  // single evaluator call — and is bit-identical to a single-engine run.
  fleet_result.result = evaluate != nullptr
                            ? dse_engine_.run(sweep, models, *evaluate)
                            : dse_engine_.run(sweep, models);
  return fleet_result;
}

void FleetCoordinator::stop() {
  if (!started_ || stopped_) return;
  const std::uint32_t node_count = static_cast<std::uint32_t>(options_.nodes);
  // Phase 1: stop the pumps. Each node drains its completer (every accepted
  // request resolves) and stops its runtime. Halo servers stay up — an
  // in-flight model-parallel request on another node may still need tiles.
  for (std::uint32_t rank = 0; rank < node_count; ++rank) {
    transport_->send(
        make_frame(FrameType::kShutdown, Channel::kServe, rank, 0, {}));
  }
  for (const auto& node : nodes_) node->join_pump();
  // Phase 2: no pump is alive, so no halo request can still be issued.
  for (std::uint32_t rank = 0; rank < node_count; ++rank) {
    transport_->send(
        make_frame(FrameType::kShutdown, Channel::kHaloRequest, rank, 0, {}));
  }
  for (const auto& node : nodes_) node->join_halo();
  // Phase 3: every node answered everything it will ever answer — stop the
  // receiver with a self-addressed shutdown frame (FIFO after all results).
  transport_->send(make_frame(FrameType::kShutdown, Channel::kServe,
                              node_count, 0, {}));
  if (receiver_.joinable()) receiver_.join();
  // Anything still pending can only be a request submitted after phase 1
  // reached its owner; fail it the way the runtime fails orphans.
  std::map<std::uint64_t, std::promise<serve::InferResult>> leftovers;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    leftovers.swap(pending_);
  }
  for (auto& [sequence, promise] : leftovers) {
    (void)sequence;
    promise.set_exception(std::make_exception_ptr(serve::ShutdownError(
        "FleetCoordinator: stop() before the request completed")));
  }
  stopped_ = true;
  started_ = false;
}

std::uint32_t FleetCoordinator::owner_of(const std::string& model) const {
  const auto it = routes_.find(model);
  if (it == routes_.end()) {
    throw std::invalid_argument("FleetCoordinator: unknown model '" + model +
                                "' (owner_of is valid after start())");
  }
  return it->second.owner;
}

std::vector<std::string> FleetCoordinator::model_names() const {
  std::vector<std::string> names;
  names.reserve(zoo_.size());
  for (const FleetModel& model : zoo_) names.push_back(model.served.name);
  return names;
}

FleetStats FleetCoordinator::stats() const {
  FleetStats stats;
  stats.requests = requests_.load();
  for (const auto& node : nodes_) stats.nodes.push_back(node->stats());
  if (fabric_) stats.transport = fabric_->stats();
  return stats;
}

}  // namespace xl::fleet
