// Model-parallel execution: column-split boundary layer + halo exchange.
//
// A model-parallel model is replicated on every fleet node, but its final
// Dense layer ("the boundary") is computed cooperatively: the owner runs the
// trunk (every layer before the boundary), broadcasts the boundary
// activations — the only tensor that ever crosses nodes — and each node
// computes a contiguous column tile of the boundary output on its own
// photonic engine. The owner stitches the tiles in rank order and runs the
// (electronic) tail.
//
// Why this is bit-identical to a single-engine forward pass:
//   * BatchedVdpEngine::photonic_matmul normalizes and simulates every
//     output row of W independently (per-row weight scale, per-sample
//     activation scale, operand-keyed PD noise, drift indexed by the ring's
//     K-dim bank position) — computing a row slice yields exactly the bits
//     the full GEMM would put in those rows;
//   * the effect timeline is position-in-network state, not
//     position-in-fleet state: a peer fast-forwards its (boot-reset) engine
//     by one thermal dt per accelerated trunk layer, landing on the same
//     simulated instant the owner's engine reached by running the trunk.
// So tile boundaries, node counts, and partition maps change only *where*
// columns are computed, never their values — the same invariant the serving
// layer pins for batch composition.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "core/photonic_inference.hpp"
#include "core/vdp_simulator.hpp"
#include "dnn/network.hpp"
#include "dnn/tensor.hpp"
#include "serve/model_repository.hpp"

namespace xl::fleet {

/// Where and how a model splits across nodes.
struct HaloPlan {
  std::size_t boundary_layer = 0;  ///< Index of the partitioned Dense layer.
  std::size_t in_features = 0;     ///< Boundary input width (the halo tensor).
  std::size_t out_features = 0;    ///< Boundary output width (split in tiles).
  /// Accelerated layers strictly before the boundary — the number of
  /// thermal dt steps a peer fast-forwards to reach the boundary instant.
  std::size_t accelerated_trunk_layers = 0;

  /// Column range [first, second) of tile `tile` out of `tiles` (contiguous
  /// blocks, remainder spread over the leading tiles; empty when
  /// out_features < tiles for trailing ranks).
  [[nodiscard]] std::pair<std::size_t, std::size_t> tile_range(
      std::uint32_t tile, std::uint32_t tiles) const;
};

/// Derive the halo plan of `network`: the boundary is the LAST accelerated
/// (kConv/kDense) layer and must be a Dense — everything after it runs
/// electronically on the owner. Throws std::invalid_argument when the
/// network has no accelerated layer or ends its accelerated chain in a
/// Conv (column-splitting a conv's channel dim is not supported).
[[nodiscard]] HaloPlan make_halo_plan(dnn::Network& network);

/// One node's replica of a model-parallel model: a private network copy and
/// photonic engine (same isolation discipline as AcceleratorShard), plus
/// the trunk/tile/tail segment runners. On any given node a worker is
/// driven by exactly one thread (the pump on the owner, the halo server on
/// peers), so it needs no locking.
class ModelParallelWorker {
 public:
  /// Replicates the model (factory + copy_parameters) and derives its plan.
  ModelParallelWorker(const serve::ServedModel& model,
                      const core::VdpSimOptions& vdp);

  [[nodiscard]] const HaloPlan& plan() const noexcept { return plan_; }

  /// Owner side: reset the engine to boot state and run layers
  /// [0, boundary). Returns the boundary activations (batch, in_features).
  [[nodiscard]] dnn::Tensor run_trunk(const dnn::Tensor& input);

  /// Compute boundary output columns [col_begin, col_end) for `boundary`
  /// activations. `fast_forward` selects the peer path: reset to boot state
  /// then advance one thermal dt per accelerated trunk layer, reproducing
  /// the owner's timeline. The owner passes false — run_trunk already left
  /// its engine at the boundary instant.
  [[nodiscard]] dnn::Tensor run_tile(const dnn::Tensor& boundary,
                                     std::size_t col_begin, std::size_t col_end,
                                     bool fast_forward);

  /// Owner side: run the electronic tail [boundary + 1, end) over the
  /// stitched full-width boundary output.
  [[nodiscard]] dnn::Tensor run_tail(const dnn::Tensor& stitched);

 private:
  dnn::Network network_;  ///< Private replica; the engine references it.
  std::unique_ptr<core::PhotonicInferenceEngine> engine_;
  HaloPlan plan_;
};

}  // namespace xl::fleet
