// xl::fleet wire format — typed message frames with an explicit, endian-
// pinned byte layout.
//
// Every frame is a fixed 48-byte little-endian header followed by a typed
// payload. The layout is defined byte-by-byte (no struct memcpy), so the
// in-process transport of this PR and a future socket/MPI transport speak
// the *same* bits: dropping in a socket transport is a transport change,
// never a protocol change. Floating-point values travel as their IEEE-754
// object representation (f32/f64 bit patterns), so a value that crosses the
// wire and comes back is bit-identical — the fleet's determinism contract
// (per-sample logits and DSE fronts invariant under node count) depends on
// serialization never rounding anything.
//
// Channels vs types: a Channel is a receive filter (each fleet thread owns
// one channel, which is what makes cross-node halo exchange deadlock-free);
// a FrameType says what the payload means within its channel.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/dse_engine.hpp"
#include "core/report.hpp"
#include "dnn/tensor.hpp"

namespace xl::fleet {

/// "XLFL" — rejects cross-protocol/garbage frames at decode time.
inline constexpr std::uint32_t kMagic = 0x584C464CU;
inline constexpr std::uint32_t kWireVersion = 1;
/// Wildcard source rank for Transport::recv.
inline constexpr std::uint32_t kAnySource = 0xFFFFFFFFU;

/// What a frame's payload means (within its channel).
enum class FrameType : std::uint32_t {
  kInferRequest = 1,   ///< serve: model name + input tensor.
  kInferResult = 2,    ///< serve: request id + logits tensor.
  kErrorReply = 3,     ///< serve: request id + error string.
  kDseAssign = 4,      ///< serve: DSE generation + candidate-id stripe.
  kDseMemoDelta = 5,   ///< dse: fresh memo entries a node evaluated.
  kDseMemoMerged = 6,  ///< serve: the coordinator's merged union memo.
  kDseAck = 7,         ///< dse: node finished importing the merged memo.
  kHaloTile = 8,       ///< halo request: boundary activations to tile.
  kHaloTileReply = 9,  ///< halo reply: the computed output-column tile.
  kShutdown = 10,      ///< any channel: the receiving thread exits.
};

/// Receive filter. Every fleet thread blocks on exactly one channel, so a
/// node can serve incoming halo-tile requests (kHaloRequest) while its pump
/// thread is itself blocked waiting for halo replies (kHaloReply) — the
/// two-owner model-parallel deadlock cannot form.
enum class Channel : std::uint32_t {
  kServe = 0,        ///< Coordinator -> node control + requests; node -> coordinator results.
  kHaloRequest = 1,  ///< Peer -> peer boundary-activation tiles.
  kHaloReply = 2,    ///< Peer -> owner computed output tiles.
  kDse = 3,          ///< Node -> coordinator memo deltas / acks.
};

/// Fixed-size frame prefix. `sequence` is the correlation id (request id for
/// serve frames, halo id for halo frames, DSE generation for DSE frames).
struct FrameHeader {
  std::uint32_t magic = kMagic;
  std::uint32_t version = kWireVersion;
  FrameType type = FrameType::kShutdown;
  Channel channel = Channel::kServe;
  std::uint32_t source = 0;
  std::uint32_t dest = 0;
  std::uint64_t sequence = 0;
  std::uint64_t payload_bytes = 0;
};

inline constexpr std::size_t kHeaderBytes = 48;

/// Serialize the header to its canonical little-endian 48-byte layout.
[[nodiscard]] std::array<std::uint8_t, kHeaderBytes> encode_header(
    const FrameHeader& header);

/// Parse and validate a header (magic, version). Throws std::runtime_error
/// on a foreign or corrupt prefix.
[[nodiscard]] FrameHeader decode_header(
    const std::array<std::uint8_t, kHeaderBytes>& bytes);

/// Append-only little-endian payload builder.
class WireWriter {
 public:
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f32(float v);   ///< IEEE-754 bit pattern, never a decimal roundtrip.
  void f64(double v);  ///< IEEE-754 bit pattern, never a decimal roundtrip.
  void str(const std::string& s);  ///< u64 length + raw bytes.

  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buffer_); }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Sequential payload parser; every accessor throws std::runtime_error on a
/// truncated buffer (a short frame must never read as valid data).
class WireReader {
 public:
  explicit WireReader(const std::vector<std::uint8_t>& buffer)
      : buffer_(buffer) {}

  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] float f32();
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();

  [[nodiscard]] bool done() const noexcept { return cursor_ == buffer_.size(); }
  /// Throws unless the payload was consumed exactly — catches both frame
  /// truncation and schema drift between sender and receiver.
  void expect_done() const;

 private:
  const std::vector<std::uint8_t>& buffer_;
  std::size_t cursor_ = 0;
};

// --- typed payload codecs ---------------------------------------------------

/// Tensor: u64 rank, u64 dims..., f32 payload (row-major, numel values).
void write_tensor(WireWriter& w, const dnn::Tensor& tensor);
[[nodiscard]] dnn::Tensor read_tensor(WireReader& r);

/// AcceleratorReport: every field, explicitly (no padding ever on the wire).
void write_report(WireWriter& w, const core::AcceleratorReport& report);
[[nodiscard]] core::AcceleratorReport read_report(WireReader& r);

/// DseMemo: u64 entry count, then (key, report) pairs in stored order.
void write_memo(WireWriter& w, const core::DseMemo& memo);
[[nodiscard]] core::DseMemo read_memo(WireReader& r);

}  // namespace xl::fleet
