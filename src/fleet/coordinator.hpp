// FleetCoordinator — the fleet's front door and control plane.
//
// The coordinator owns the fabric (world_size = nodes + 1; it occupies the
// last rank), partitions the registered model zoo across the FleetNodes,
// routes each InferRequest frame to the owning rank, and orchestrates
// distributed DSE: stripe the admitted candidate grid, collect each node's
// compact memo delta, merge them (rank order, bit-exact agreement enforced)
// into the union cache, broadcast the merged memo back, and assemble the
// final ranked result from its own — now fully warm — DseEngine.
//
// Determinism contract: for a fixed request trace and sweep, per-sample
// logits and the ranked DSE fronts are bit-identical for any node count and
// any partition map, and identical to a single-node run. Routing decides
// only *where* work executes; the serve/core layers guarantee the values
// (see serving_runtime.hpp and model_parallel.hpp for the mechanism).
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/dse.hpp"
#include "core/dse_engine.hpp"
#include "core/vdp_simulator.hpp"
#include "fleet/fleet_node.hpp"
#include "fleet/fleet_types.hpp"
#include "fleet/transport.hpp"
#include "serve/serve_types.hpp"

namespace xl::fleet {

class FleetCoordinator {
 public:
  /// Validates the options up front (throws std::invalid_argument). The vdp
  /// options configure every node's shard and model-parallel engines
  /// identically — they are the fleet-wide numerics contract.
  explicit FleetCoordinator(core::VdpSimOptions vdp, FleetOptions options = {});

  FleetCoordinator(const FleetCoordinator&) = delete;
  FleetCoordinator& operator=(const FleetCoordinator&) = delete;

  /// Calls stop().
  ~FleetCoordinator();

  /// Register a model before start(). Same prototype-lifetime rules as
  /// ServingRuntime::register_model; `model_parallel` additionally requires
  /// the network's last accelerated layer to be Dense (checked at start()).
  void register_model(FleetModel model);

  /// Build the fabric and the nodes, partition the zoo, start everything.
  /// Throws std::logic_error when already started or no model is registered.
  void start();

  /// Route one request to the owning node. The future resolves with the
  /// node's result, or throws std::runtime_error carrying the node-side
  /// error. Throws std::invalid_argument for an unregistered model and
  /// std::runtime_error when the fleet is not started.
  [[nodiscard]] std::future<serve::InferResult> submit(const std::string& model,
                                                       dnn::Tensor input);

  /// Distributed DSE over the fleet: bit-identical to DseEngine::run on a
  /// single engine with the same options, with the evaluation work striped
  /// across nodes. On a warm fleet (the union memo covers the grid) no node
  /// pays any evaluator call. Blocking; not thread-safe with itself.
  [[nodiscard]] FleetDseResult run_dse(
      const core::DseSweep& sweep, const std::vector<dnn::ModelSpec>& models);
  [[nodiscard]] FleetDseResult run_dse(
      const core::DseSweep& sweep, const std::vector<dnn::ModelSpec>& models,
      const core::DseCandidateEvaluator& evaluate);

  /// Snapshot of the coordinator's union memo (every delta ever merged).
  [[nodiscard]] core::DseMemo export_memo() const {
    return dse_engine_.export_memo();
  }

  /// Pre-warm the union cache (e.g. from a previous fleet's export). The
  /// merged memo reaches the nodes on the next run_dse broadcast. Returns
  /// the number of newly inserted entries.
  std::size_t import_memo(const core::DseMemo& memo) {
    return dse_engine_.import_memo(memo);
  }

  /// Orderly shutdown: stop node pumps (completing every accepted request),
  /// then halo servers, then the coordinator's receiver. Idempotent.
  void stop();

  [[nodiscard]] bool started() const noexcept { return started_; }
  [[nodiscard]] const FleetOptions& options() const noexcept { return options_; }
  /// Owning rank of a registered model (routing table lookup).
  [[nodiscard]] std::uint32_t owner_of(const std::string& model) const;
  [[nodiscard]] std::vector<std::string> model_names() const;

  /// Fleet-wide snapshot: per-node serving/halo/DSE counters plus fabric
  /// traffic totals. Callable while serving.
  [[nodiscard]] FleetStats stats() const;

 private:
  struct Route {
    std::uint32_t owner = 0;
    bool model_parallel = false;
  };

  void receiver_loop();
  [[nodiscard]] FleetDseResult run_dse_impl(
      const core::DseSweep& sweep, const std::vector<dnn::ModelSpec>& models,
      const core::DseCandidateEvaluator* evaluate);

  core::VdpSimOptions vdp_;
  FleetOptions options_;
  std::vector<FleetModel> zoo_;
  std::map<std::string, Route> routes_;

  std::unique_ptr<InProcFabric> fabric_;
  std::unique_ptr<Transport> transport_;  ///< Coordinator endpoint (rank N).
  std::vector<std::unique_ptr<FleetNode>> nodes_;

  /// The union memo + assembly engine (cache always enabled: the memo IS
  /// the distributed product). Mutated only by run_dse_impl/import_memo.
  core::DseEngine dse_engine_;
  DseSharedContext dse_context_;
  /// Backing storage the shared context points into during a run_dse.
  std::vector<core::DseCandidate> dse_admitted_;
  std::vector<dnn::ModelSpec> dse_models_;
  core::DseCandidateEvaluator dse_evaluate_;
  std::uint64_t dse_generation_ = 0;

  std::thread receiver_;
  std::mutex pending_mutex_;
  std::map<std::uint64_t, std::promise<serve::InferResult>> pending_;
  std::atomic<std::uint64_t> next_sequence_{1};
  std::atomic<std::size_t> requests_{0};

  std::atomic<bool> started_{false};
  bool stopped_ = false;
};

}  // namespace xl::fleet
