#include "fleet/model_parallel.hpp"

#include <stdexcept>

#include "dnn/dense.hpp"
#include "numerics/matrix.hpp"
#include "serve/serve_types.hpp"

namespace xl::fleet {

using dnn::LayerKind;
using dnn::Tensor;
using numerics::Matrix;

std::pair<std::size_t, std::size_t> HaloPlan::tile_range(
    std::uint32_t tile, std::uint32_t tiles) const {
  if (tiles == 0 || tile >= tiles) {
    throw std::invalid_argument("HaloPlan: tile index out of range");
  }
  const std::size_t base = out_features / tiles;
  const std::size_t remainder = out_features % tiles;
  const std::size_t begin =
      static_cast<std::size_t>(tile) * base +
      std::min<std::size_t>(tile, remainder);
  const std::size_t width = base + (tile < remainder ? 1 : 0);
  return {begin, begin + width};
}

HaloPlan make_halo_plan(dnn::Network& network) {
  std::size_t accelerated = 0;
  std::size_t last_accelerated = network.layer_count();
  for (std::size_t i = 0; i < network.layer_count(); ++i) {
    const LayerKind kind = network.layer(i).kind_id();
    if (kind == LayerKind::kDense || kind == LayerKind::kConv) {
      ++accelerated;
      last_accelerated = i;
    }
  }
  if (accelerated == 0) {
    throw std::invalid_argument(
        "model_parallel: network has no accelerated layer to split");
  }
  if (network.layer(last_accelerated).kind_id() != LayerKind::kDense) {
    throw std::invalid_argument(
        "model_parallel: the last accelerated layer must be Dense "
        "(column-splitting a Conv is not supported)");
  }
  auto& dense = static_cast<dnn::Dense&>(network.layer(last_accelerated));
  HaloPlan plan;
  plan.boundary_layer = last_accelerated;
  plan.in_features = dense.in_features();
  plan.out_features = dense.out_features();
  plan.accelerated_trunk_layers = accelerated - 1;
  return plan;
}

ModelParallelWorker::ModelParallelWorker(const serve::ServedModel& model,
                                         const core::VdpSimOptions& vdp)
    : network_(model.factory()) {
  serve::copy_parameters(*model.prototype, network_);
  engine_ = std::make_unique<core::PhotonicInferenceEngine>(network_, vdp);
  plan_ = make_halo_plan(network_);
}

Tensor ModelParallelWorker::run_trunk(const Tensor& input) {
  // Boot-state reset: every request sees the canonical effect timeline, the
  // same contract AcceleratorShard::execute applies per micro-batch.
  engine_->engine().reset_effects();
  return engine_->infer_range(input, 0, plan_.boundary_layer);
}

Tensor ModelParallelWorker::run_tile(const Tensor& boundary,
                                     std::size_t col_begin, std::size_t col_end,
                                     bool fast_forward) {
  if (boundary.rank() != 2 || boundary.dim(1) != plan_.in_features) {
    throw std::invalid_argument("model_parallel: boundary shape mismatch");
  }
  if (col_begin >= col_end || col_end > plan_.out_features) {
    throw std::invalid_argument("model_parallel: tile columns out of range");
  }
  if (fast_forward) {
    // Land on the owner's simulated instant: boot state plus one thermal dt
    // per accelerated trunk layer, stepped one layer at a time (the thermal
    // stage integrates per step, so n steps of dt != one step of n*dt).
    engine_->engine().reset_effects();
    const double dt = engine_->engine().options().effects.thermal_stage.dt_us;
    for (std::size_t i = 0; i < plan_.accelerated_trunk_layers; ++i) {
      engine_->engine().advance_effects(dt);
    }
  }
  auto& dense = static_cast<dnn::Dense&>(network_.layer(plan_.boundary_layer));
  const std::size_t batch = boundary.dim(0);
  const std::size_t in = plan_.in_features;
  const std::size_t width = col_end - col_begin;

  Matrix x(batch, in);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t i = 0; i < in; ++i) x(b, i) = boundary.at2(b, i);
  }
  // The weight-row slice: photonic_matmul treats every output row of W
  // independently (normalization, drift, keyed noise), so these rows get
  // exactly the bits the full boundary GEMM would compute for them.
  Matrix w(width, in);
  for (std::size_t r = 0; r < width; ++r) {
    for (std::size_t i = 0; i < in; ++i) {
      w(r, i) = dense.weights().at2(col_begin + r, i);
    }
  }
  const Matrix y = engine_->engine().photonic_matmul(x, w);
  Tensor out({batch, width});
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t r = 0; r < width; ++r) {
      out.at2(b, r) = static_cast<float>(y(b, r) + dense.bias()[col_begin + r]);
    }
  }
  return out;
}

Tensor ModelParallelWorker::run_tail(const Tensor& stitched) {
  return engine_->infer_range(stitched, plan_.boundary_layer + 1,
                              network_.layer_count());
}

}  // namespace xl::fleet
