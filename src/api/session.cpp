#include "api/session.hpp"

#include <utility>

#include "api/analytical_backend.hpp"

namespace xl::api {

Session::Session(SimConfig config, const BackendRegistry* registry)
    : config_(std::move(config)),
      registry_(registry != nullptr ? registry : &default_registry()) {
  config_.validate();
}

void Session::set_config(SimConfig config) {
  config.validate();
  config_ = std::move(config);
}

Backend& Session::backend(const std::string& name) {
  auto it = cache_.find(name);
  if (it == cache_.end()) {
    it = cache_.emplace(name, registry_->create(name)).first;
  }
  return *it->second;
}

EvalResult Session::evaluate(const std::string& backend_name,
                             const dnn::ModelSpec& model) {
  EvalRequest request;
  request.model = model;
  request.config = config_;
  return backend(backend_name).evaluate(request);
}

std::vector<EvalResult> Session::evaluate_all(
    const std::string& backend_name, const std::vector<dnn::ModelSpec>& models) {
  std::vector<EvalResult> results;
  results.reserve(models.size());
  for (const auto& model : models) results.push_back(evaluate(backend_name, model));
  return results;
}

core::AcceleratorSummary Session::summarize(const std::string& backend_name,
                                            const std::vector<dnn::ModelSpec>& models) {
  Backend& b = backend(backend_name);
  if (b.capabilities().reference_only) {
    // Literature constants are model-averaged already; one evaluation holds
    // the whole row.
    EvalRequest request;
    request.config = config_;
    return b.evaluate(request).summary;
  }
  std::vector<core::AcceleratorReport> reports;
  reports.reserve(models.size());
  for (const auto& model : models) {
    EvalRequest request;
    request.model = model;
    request.config = config_;
    reports.push_back(b.evaluate(request).report);
  }
  return core::summarize(reports);
}

EvalResult Session::evaluate_functional(const std::string& backend_name,
                                        const dnn::ModelSpec& model,
                                        dnn::Network& network,
                                        const dnn::Dataset& dataset) {
  EvalRequest request;
  request.model = model;
  request.config = config_;
  request.network = &network;
  request.dataset = &dataset;
  return backend(backend_name).evaluate(request);
}

std::vector<core::DsePoint> Session::run_dse(const core::DseSweep& sweep,
                                             const std::vector<dnn::ModelSpec>& models) {
  Backend& b = backend(AnalyticalBackend::registry_key(sweep.variant));
  return core::run_dse(sweep, models,
                       [this, &b](const core::ArchitectureConfig& cfg,
                                  const dnn::ModelSpec& model) {
                         EvalRequest request;
                         request.model = model;
                         request.config = config_;
                         request.config.architecture = cfg;
                         return b.evaluate(request).report;
                       });
}

}  // namespace xl::api
