#include "api/session.hpp"

#include <stdexcept>
#include <utility>

#include "api/analytical_backend.hpp"
#include "fleet/coordinator.hpp"
#include "serve/serving_runtime.hpp"

namespace xl::api {

Session::Session(SimConfig config, const BackendRegistry* registry)
    : config_(std::move(config)),
      registry_(registry != nullptr ? registry : &default_registry()) {
  config_.validate();
}

void Session::set_config(SimConfig config) {
  config.validate();
  config_ = std::move(config);
  // The DSE memo was built under the previous config's knobs.
  std::lock_guard<std::mutex> lock(dse_mutex_);
  dse_engine_.clear_cache();
}

Backend& Session::backend(const std::string& name) {
  // Instance creation is serialized; the returned reference stays valid for
  // the session's lifetime (node-stable map of unique_ptrs), so concurrent
  // evaluations may use it lock-free.
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = cache_.find(name);
  if (it == cache_.end()) {
    it = cache_.emplace(name, registry_->create(name)).first;
  }
  return *it->second;
}

EvalResult Session::evaluate(const std::string& backend_name,
                             const dnn::ModelSpec& model) {
  EvalRequest request;
  request.model = model;
  request.config = config_;
  return backend(backend_name).evaluate(request);
}

std::vector<EvalResult> Session::evaluate_all(
    const std::string& backend_name, const std::vector<dnn::ModelSpec>& models) {
  std::vector<EvalResult> results;
  results.reserve(models.size());
  for (const auto& model : models) results.push_back(evaluate(backend_name, model));
  return results;
}

core::AcceleratorSummary Session::summarize(const std::string& backend_name,
                                            const std::vector<dnn::ModelSpec>& models) {
  Backend& b = backend(backend_name);
  if (b.capabilities().reference_only) {
    // Literature constants are model-averaged already; one evaluation holds
    // the whole row.
    EvalRequest request;
    request.config = config_;
    return b.evaluate(request).summary;
  }
  std::vector<core::AcceleratorReport> reports;
  reports.reserve(models.size());
  for (const auto& model : models) {
    EvalRequest request;
    request.model = model;
    request.config = config_;
    reports.push_back(b.evaluate(request).report);
  }
  return core::summarize(reports);
}

EvalResult Session::evaluate_functional(const std::string& backend_name,
                                        const dnn::ModelSpec& model,
                                        dnn::Network& network,
                                        const dnn::Dataset& dataset) {
  EvalRequest request;
  request.model = model;
  request.config = config_;
  request.network = &network;
  request.dataset = &dataset;
  return backend(backend_name).evaluate(request);
}

core::DseResult Session::run_dse(const core::DseSweep& sweep,
                                 const std::vector<dnn::ModelSpec>& models,
                                 const core::DseEngine::Options& options) {
  // The engine's memo (and its OpenMP team) is one shared resource:
  // concurrent run_dse calls are serialized rather than interleaved.
  std::lock_guard<std::mutex> dse_lock(dse_mutex_);
  if (sweep.effects.size() > 1) {
    throw std::invalid_argument(
        "Session::run_dse: the analytical registry backends are "
        "effects-insensitive, so an effects axis would multiply evaluation "
        "cost without varying any result; run core::DseEngine with an "
        "effects-sensitive evaluator instead");
  }
  // Resolve the per-variant backends up front: Backend creation mutates the
  // session cache, while the evaluator below runs on OpenMP workers. The
  // analytical backends themselves are stateless and thread-safe.
  std::map<core::Variant, Backend*> backends;
  for (core::Variant v : sweep.variant_axis()) {
    backends.emplace(v, &backend(AnalyticalBackend::registry_key(v)));
  }
  const bool sweep_resolution = !sweep.resolution_bits.empty();
  // One template config for every job: the session knobs with the sweep
  // reset to its default, so each of the grid-size-many per-job copies and
  // backend-side validations doesn't drag the (arbitrarily large) sweep
  // axes along.
  SimConfig job_config = config_;
  job_config.dse = core::DseSweep{};
  dse_engine_.set_options(options);
  return dse_engine_.run(
      sweep, models,
      [&backends, &job_config, sweep_resolution](
          const core::DseCandidate& candidate, const dnn::ModelSpec& model) {
        EvalRequest request;
        request.model = model;
        request.config = job_config;
        request.config.architecture = candidate.config;
        // An explicit resolution axis drives the functional view too,
        // mirroring the CLI's --resolution semantics.
        if (sweep_resolution) {
          request.config.vdp.resolution_bits = candidate.config.resolution_bits;
        }
        return backends.at(candidate.config.variant)->evaluate(request).report;
      });
}

std::unique_ptr<serve::ServingRuntime> Session::serve(
    serve::ServingOptions options) const {
  // The session's architecture is the pacing reference; its vdp options are
  // the shared immutable engine configuration every shard clones from.
  options.architecture = config_.architecture;
  return std::make_unique<serve::ServingRuntime>(config_.vdp, options);
}

std::unique_ptr<fleet::FleetCoordinator> Session::fleet(
    fleet::FleetOptions options) const {
  // Same hand-off as serve(), fleet-wide: one immutable vdp configuration
  // for every node's shard and model-parallel engines, the session
  // architecture as the pacing reference on each node's runtime.
  options.serving.architecture = config_.architecture;
  return std::make_unique<fleet::FleetCoordinator>(config_.vdp, options);
}

}  // namespace xl::api
