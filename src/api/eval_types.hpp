// Unified request/result types of the xl::api evaluation facade.
//
// SimConfig is the superset configuration every backend draws from: the
// analytical ArchitectureConfig (mapper/performance/power/area models), the
// functional VdpSimOptions (signal-level datapath), and the batch/eval knobs
// of accuracy evaluation. EvalResult is the single report type merging
// core::AcceleratorReport (analytical metrics) with the functional engine's
// accuracy + PhotonicInferenceStats, so cross-backend sweeps (Figs. 7-8,
// Table III) iterate one structure regardless of which engine produced it.
#pragma once

#include <string>

#include "core/config.hpp"
#include "core/dse.hpp"
#include "core/photonic_inference.hpp"
#include "core/report.hpp"
#include "core/vdp_simulator.hpp"
#include "dnn/layer_spec.hpp"

namespace xl::dnn {
class Network;
struct Dataset;
}  // namespace xl::dnn

namespace xl::api {

/// One configuration for every engine. Analytical backends read
/// `architecture`, the functional backend reads `vdp` plus the eval knobs;
/// baseline backends carry their own BaselineParams and only consult the
/// shared config for validation.
struct SimConfig {
  core::ArchitectureConfig architecture;  ///< (N, K, n, m), variant, devices.
  core::VdpSimOptions vdp;                ///< Signal-level datapath options.
  core::DseSweep dse;                     ///< Sweep run by Session::run_dse / --dse.

  // Batch/eval knobs (functional backend).
  std::size_t eval_batch_size = 16;    ///< Samples per photonic GEMM batch.
  std::size_t functional_samples = 32; ///< Dataset samples for accuracy eval.
  bool track_layer_error = false;      ///< Opt-in exact reference pass.

  /// Throws std::invalid_argument on inconsistent settings.
  void validate() const;
};

/// One evaluation job. `model` drives the analytical models; `network` and
/// `dataset` are only required by backends whose capabilities() report
/// needs_network (the functional engine executes real tensors).
struct EvalRequest {
  dnn::ModelSpec model;
  SimConfig config;
  dnn::Network* network = nullptr;        ///< Must outlive the call.
  const dnn::Dataset* dataset = nullptr;  ///< Must outlive the call.
};

/// Accuracy + datapath work counters from the functional engine.
struct FunctionalMetrics {
  bool populated = false;
  double accuracy = 0.0;
  std::size_t samples = 0;
  std::string effects;  ///< Enabled non-ideality stages ("none" when ideal).
  core::PhotonicInferenceStats stats;
};

/// The unified report. Simulated backends fill `report` (and derived
/// metrics); literature-constant backends fill `summary` only; the
/// functional backend additionally fills `functional`.
struct EvalResult {
  std::string backend;  ///< Registry key of the producing backend.

  bool has_report = false;
  core::AcceleratorReport report;

  bool has_summary = false;          ///< Reference-only rows (Table III).
  core::AcceleratorSummary summary;

  FunctionalMetrics functional;

  [[nodiscard]] double epb_pj() const noexcept {
    return has_report ? report.epb_pj() : summary.avg_epb_pj;
  }
  [[nodiscard]] double kfps_per_watt() const noexcept {
    return has_report ? report.kfps_per_watt() : summary.avg_kfps_per_watt;
  }
  [[nodiscard]] double power_w() const noexcept {
    return has_report ? report.power.total_w() : summary.avg_power_w;
  }
};

}  // namespace xl::api
