// Session — the single entry point of the evaluation API.
//
// A Session owns one SimConfig and resolves backends by name from a
// BackendRegistry (the default registry unless one is injected). Backend
// instances are cached per session, so repeated evaluations of the same
// backend reuse its precomputed state.
//
//   api::Session session;
//   auto result = session.evaluate("crosslight:opt_ted", dnn::lenet5_spec());
//   auto table  = session.summarize("deap_cnn", dnn::table1_models());
//
// Thread-safety guarantee (serving worker pools): the backend-instance
// cache and the DSE memo are lock-protected, so one Session may be shared
// by concurrent callers of backend() / evaluate() / evaluate_all() /
// summarize() / evaluate_functional() / run_dse() — instances are created
// exactly once and run_dse calls are serialized on the shared memo. The
// registry backends themselves hold no per-call mutable state (the
// functional backend constructs a fresh engine per evaluation). Two
// caveats: the network/dataset arguments of evaluate_functional() must be
// thread-private (Layer::forward caches activations even in inference
// mode — the same hazard that makes serve shards replicate networks), and
// set_config() requires exclusive use: it swaps the config every in-flight
// evaluation snapshots, so callers must not race it against evaluations.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/backend.hpp"
#include "api/registry.hpp"
#include "core/dse_engine.hpp"
#include "core/report.hpp"
#include "dnn/layer_spec.hpp"
#include "fleet/fleet_types.hpp"
#include "serve/serve_types.hpp"

namespace xl::serve {
class ServingRuntime;
}  // namespace xl::serve

namespace xl::fleet {
class FleetCoordinator;
}  // namespace xl::fleet

namespace xl::dnn {
class Network;
struct Dataset;
}  // namespace xl::dnn

namespace xl::api {

class Session {
 public:
  /// Validates the config up front (throws std::invalid_argument). A null
  /// registry selects default_registry(); an injected registry must outlive
  /// the session.
  explicit Session(SimConfig config = {}, const BackendRegistry* registry = nullptr);

  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }
  /// Replace the session config (validated).
  void set_config(SimConfig config);

  [[nodiscard]] const BackendRegistry& registry() const noexcept { return *registry_; }
  /// Registered backend names, in registration order.
  [[nodiscard]] std::vector<std::string> backends() const { return registry_->names(); }

  /// The cached instance of a backend (created on first use).
  [[nodiscard]] Backend& backend(const std::string& name);

  /// Evaluate one model on one backend with the session config.
  [[nodiscard]] EvalResult evaluate(const std::string& backend_name,
                                    const dnn::ModelSpec& model);

  /// Evaluate a model zoo (e.g. the Table I models).
  [[nodiscard]] std::vector<EvalResult> evaluate_all(
      const std::string& backend_name, const std::vector<dnn::ModelSpec>& models);

  /// Model-averaged Table III row for one backend. Reference-only backends
  /// return their literature constants directly.
  [[nodiscard]] core::AcceleratorSummary summarize(
      const std::string& backend_name, const std::vector<dnn::ModelSpec>& models);

  /// Functional evaluation: run `network` on the named backend's datapath
  /// over `dataset`, with `model` providing the analytical workload shape
  /// (pass {} to skip the analytical metrics).
  [[nodiscard]] EvalResult evaluate_functional(const std::string& backend_name,
                                               const dnn::ModelSpec& model,
                                               dnn::Network& network,
                                               const dnn::Dataset& dataset);

  /// Fig. 6 design-space exploration routed through the registry: every
  /// candidate (N, K, n, m, variant, resolution, budget) is evaluated
  /// OpenMP-parallel by the analytical backend matching its variant, with
  /// the session config supplying the remaining knobs. The result carries
  /// the ranked points, the (fps, epb, area, power) Pareto front, flagged
  /// degenerate candidates, and cache statistics. The engine's memo
  /// persists across calls on one session (a repeated or overlapping sweep
  /// re-pays nothing; set_config clears it). The analytical backends are
  /// effects-insensitive, so a sweep with more than one EffectConfig is
  /// rejected here — drive effect axes through core::DseEngine with an
  /// effects-sensitive evaluator instead.
  [[nodiscard]] core::DseResult run_dse(const core::DseSweep& sweep,
                                        const std::vector<dnn::ModelSpec>& models,
                                        const core::DseEngine::Options& options = {});

  /// Serving facade: build a ServingRuntime whose shards each construct
  /// their own PhotonicInferenceEngine from this session's immutable vdp
  /// options, with the session's architecture driving optional
  /// hardware-time pacing. The session hands out engine configuration
  /// instead of being the sole evaluation caller — register models on the
  /// returned runtime, then start() it. The runtime is independent of the
  /// session afterwards (set_config does not affect running shards).
  [[nodiscard]] std::unique_ptr<serve::ServingRuntime> serve(
      serve::ServingOptions options = {}) const;

  /// Fleet facade: build a FleetCoordinator whose nodes each run a local
  /// ServingRuntime (and DseEngine) over this session's immutable vdp
  /// options — the same engine-configuration hand-off as serve(), scaled
  /// to `options.nodes` ranks over an in-process transport. Register
  /// models on the returned coordinator, then start() it; it is
  /// independent of the session afterwards.
  [[nodiscard]] std::unique_ptr<fleet::FleetCoordinator> fleet(
      fleet::FleetOptions options = {}) const;

 private:
  SimConfig config_;
  const BackendRegistry* registry_;
  std::map<std::string, std::unique_ptr<Backend>> cache_;
  core::DseEngine dse_engine_;  ///< Memo persists across run_dse calls.
  mutable std::mutex cache_mutex_;  ///< Guards cache_ (serving worker pools).
  std::mutex dse_mutex_;            ///< Serializes run_dse on the shared memo.
};

}  // namespace xl::api
