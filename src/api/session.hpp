// Session — the single entry point of the evaluation API.
//
// A Session owns one SimConfig and resolves backends by name from a
// BackendRegistry (the default registry unless one is injected). Backend
// instances are cached per session, so repeated evaluations of the same
// backend reuse its precomputed state.
//
//   api::Session session;
//   auto result = session.evaluate("crosslight:opt_ted", dnn::lenet5_spec());
//   auto table  = session.summarize("deap_cnn", dnn::table1_models());
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/backend.hpp"
#include "api/registry.hpp"
#include "core/dse.hpp"
#include "core/report.hpp"
#include "dnn/layer_spec.hpp"

namespace xl::dnn {
class Network;
struct Dataset;
}  // namespace xl::dnn

namespace xl::api {

class Session {
 public:
  /// Validates the config up front (throws std::invalid_argument). A null
  /// registry selects default_registry(); an injected registry must outlive
  /// the session.
  explicit Session(SimConfig config = {}, const BackendRegistry* registry = nullptr);

  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }
  /// Replace the session config (validated).
  void set_config(SimConfig config);

  [[nodiscard]] const BackendRegistry& registry() const noexcept { return *registry_; }
  /// Registered backend names, in registration order.
  [[nodiscard]] std::vector<std::string> backends() const { return registry_->names(); }

  /// The cached instance of a backend (created on first use).
  [[nodiscard]] Backend& backend(const std::string& name);

  /// Evaluate one model on one backend with the session config.
  [[nodiscard]] EvalResult evaluate(const std::string& backend_name,
                                    const dnn::ModelSpec& model);

  /// Evaluate a model zoo (e.g. the Table I models).
  [[nodiscard]] std::vector<EvalResult> evaluate_all(
      const std::string& backend_name, const std::vector<dnn::ModelSpec>& models);

  /// Model-averaged Table III row for one backend. Reference-only backends
  /// return their literature constants directly.
  [[nodiscard]] core::AcceleratorSummary summarize(
      const std::string& backend_name, const std::vector<dnn::ModelSpec>& models);

  /// Functional evaluation: run `network` on the named backend's datapath
  /// over `dataset`, with `model` providing the analytical workload shape
  /// (pass {} to skip the analytical metrics).
  [[nodiscard]] EvalResult evaluate_functional(const std::string& backend_name,
                                               const dnn::ModelSpec& model,
                                               dnn::Network& network,
                                               const dnn::Dataset& dataset);

  /// Fig. 6 design-space exploration routed through the registry: every
  /// candidate (N, K, n, m) is evaluated by the analytical backend matching
  /// sweep.variant, with the session config supplying the remaining knobs.
  [[nodiscard]] std::vector<core::DsePoint> run_dse(
      const core::DseSweep& sweep, const std::vector<dnn::ModelSpec>& models);

 private:
  SimConfig config_;
  const BackendRegistry* registry_;
  std::map<std::string, std::unique_ptr<Backend>> cache_;
};

}  // namespace xl::api
