#include "api/json_writer.hpp"

#include <cmath>
#include <cstdio>

#include "core/dse_engine.hpp"
#include "core/effects.hpp"
#include "fleet/fleet_types.hpp"
#include "serve/serve_types.hpp"

namespace xl::api {

JsonWriter::JsonWriter() {
  out_.push_back('{');
  first_in_scope_.push_back(true);
}

std::string JsonWriter::escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void JsonWriter::comma_and_indent() {
  if (!first_in_scope_.back()) out_ += ",";
  first_in_scope_.back() = false;
  out_ += "\n";
  out_.append(2 * first_in_scope_.size(), ' ');
}

namespace {
std::string number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}
}  // namespace

void JsonWriter::field(const std::string& key, const std::string& value) {
  comma_and_indent();
  out_ += '"';
  out_ += escape(key);
  out_ += "\": \"";
  out_ += escape(value);
  out_ += '"';
}

void JsonWriter::field(const std::string& key, const char* value) {
  field(key, std::string(value));
}

void JsonWriter::field(const std::string& key, double value) {
  comma_and_indent();
  out_ += '"';
  out_ += escape(key);
  out_ += "\": ";
  out_ += number(value);
}

void JsonWriter::field(const std::string& key, std::size_t value) {
  comma_and_indent();
  out_ += '"';
  out_ += escape(key);
  out_ += "\": ";
  out_ += std::to_string(value);
}

void JsonWriter::field(const std::string& key, int value) {
  comma_and_indent();
  out_ += '"';
  out_ += escape(key);
  out_ += "\": ";
  out_ += std::to_string(value);
}

void JsonWriter::field(const std::string& key, bool value) {
  comma_and_indent();
  out_ += '"';
  out_ += escape(key);
  out_ += value ? "\": true" : "\": false";
}

void JsonWriter::element(const std::string& value) {
  comma_and_indent();
  out_ += '"';
  out_ += escape(value);
  out_ += '"';
}

void JsonWriter::element(double value) {
  comma_and_indent();
  out_ += number(value);
}

void JsonWriter::begin_object(const std::string& key) {
  comma_and_indent();
  out_ += '"';
  out_ += escape(key);
  out_ += "\": {";
  first_in_scope_.push_back(true);
}

void JsonWriter::begin_object() {
  comma_and_indent();
  out_ += "{";
  first_in_scope_.push_back(true);
}

void JsonWriter::end_object() {
  const bool empty = first_in_scope_.back();
  first_in_scope_.pop_back();
  if (!empty) {
    out_ += "\n";
    out_.append(2 * first_in_scope_.size(), ' ');
  }
  out_ += "}";
}

void JsonWriter::begin_array(const std::string& key) {
  comma_and_indent();
  out_ += '"';
  out_ += escape(key);
  out_ += "\": [";
  first_in_scope_.push_back(true);
}

void JsonWriter::end_array() {
  const bool empty = first_in_scope_.back();
  first_in_scope_.pop_back();
  if (!empty) {
    out_ += "\n";
    out_.append(2 * first_in_scope_.size(), ' ');
  }
  out_ += "]";
}

std::string JsonWriter::finish() {
  end_object();
  out_ += "\n";
  return std::move(out_);
}

void write_effect_config(JsonWriter& writer, const core::EffectConfig& effects) {
  writer.begin_object("effects");
  writer.field("summary", effects.summary());
  writer.field("thermal", effects.thermal);
  writer.field("fpv", effects.fpv);
  writer.field("noise", effects.noise);
  writer.field("crosstalk", effects.crosstalk);
  writer.field("seed", static_cast<std::size_t>(effects.seed));
  if (effects.thermal) {
    writer.begin_object("thermal_stage");
    writer.field("pitch_um", effects.thermal_stage.pitch_um);
    writer.field("use_ted", effects.thermal_stage.use_ted);
    writer.field("ambient_drift_nm", effects.thermal_stage.ambient_drift_nm);
    writer.field("ambient_period_us", effects.thermal_stage.ambient_period_us);
    writer.field("dt_us", effects.thermal_stage.dt_us);
    writer.field("tau_us", effects.thermal_stage.rc.tau_us);
    writer.end_object();
  }
  if (effects.fpv) {
    writer.begin_object("fpv_stage");
    writer.field("design",
                 effects.fpv_stage.design == photonics::MrDesignKind::kOptimized
                     ? "optimized"
                     : "conventional");
    writer.field("pitch_um", effects.fpv_stage.pitch_um);
    writer.field("trim_residual_fraction", effects.fpv_stage.trim_residual_fraction);
    writer.end_object();
  }
  if (effects.noise) {
    writer.begin_object("noise_stage");
    writer.field("optical_power_mw", effects.noise_stage.optical_power_mw);
    writer.field("rin_db_per_hz", effects.noise_stage.receiver.rin_db_per_hz);
    writer.field("bandwidth_ghz", effects.noise_stage.receiver.bandwidth_ghz);
    writer.end_object();
  }
  writer.end_object();
}

namespace {

void write_dse_point(JsonWriter& writer, const core::DsePoint& p) {
  writer.begin_object();
  writer.field("N", p.conv_unit_size);
  writer.field("K", p.fc_unit_size);
  writer.field("n", p.conv_units);
  writer.field("m", p.fc_units);
  writer.field("variant", core::variant_name(p.variant));
  writer.field("resolution_bits", p.resolution_bits);
  writer.field("area_budget_mm2", p.area_budget_mm2);
  writer.field("avg_fps", p.avg_fps);
  writer.field("avg_epb_pj_per_bit", p.avg_epb_pj);
  writer.field("avg_power_w", p.avg_power_w);
  writer.field("area_mm2", p.area_mm2);
  writer.field("fps_per_epb", p.fps_per_epb());
  writer.field("on_pareto", p.on_pareto);
  writer.field("degenerate", p.degenerate);
  writer.end_object();
}

}  // namespace

void write_dse_points(JsonWriter& writer, const std::string& key,
                      const std::vector<core::DsePoint>& points) {
  writer.begin_array(key);
  for (const core::DsePoint& p : points) write_dse_point(writer, p);
  writer.end_array();
}

void write_pareto_front(JsonWriter& writer, const core::DseResult& result) {
  write_dse_points(writer, "pareto_front", result.pareto);
}

void write_dse_stats(JsonWriter& writer, const core::DseStats& stats) {
  writer.begin_object("stats");
  writer.field("grid_candidates", stats.grid_candidates);
  writer.field("area_filtered", stats.area_filtered);
  writer.field("evaluations", stats.evaluations);
  writer.field("cache_hits", stats.cache_hits);
  writer.field("cache_hit_rate", stats.cache_hit_rate());
  writer.field("degenerate", stats.degenerate);
  writer.end_object();
}

void write_serving_stats(JsonWriter& writer, const std::string& key,
                         const serve::ServingStats& stats) {
  writer.begin_object(key);
  writer.field("requests", stats.requests);
  writer.field("samples", stats.samples);
  writer.field("batches", stats.batches);
  writer.field("mean_batch_rows", stats.mean_batch_rows());
  writer.field("busy_us", stats.busy_us);
  const auto [p50, p99] = serve::latency_p50_p99_us(stats.latency_us);
  writer.field("latency_p50_us", p50);
  writer.field("latency_p99_us", p99);
  writer.begin_array("batch_rows_histogram");
  for (std::size_t rows = 0; rows < stats.batch_rows_histogram.size(); ++rows) {
    if (stats.batch_rows_histogram[rows] == 0) continue;
    writer.begin_object();
    writer.field("rows", rows);
    writer.field("batches", stats.batch_rows_histogram[rows]);
    writer.end_object();
  }
  writer.end_array();
  writer.begin_object("inference");
  writer.field("photonic_matmuls", stats.inference.photonic_matmuls);
  writer.field("photonic_dot_products", stats.inference.photonic_dot_products);
  writer.field("photonic_macs", stats.inference.photonic_macs);
  writer.field("samples_inferred", stats.inference.samples_inferred);
  writer.field("batches_inferred", stats.inference.batches_inferred);
  writer.end_object();
  writer.end_object();
}

void write_fleet_stats(JsonWriter& writer, const std::string& key,
                       const fleet::FleetStats& stats) {
  writer.begin_object(key);
  writer.field("requests", stats.requests);
  writer.begin_object("transport");
  writer.field("frames", static_cast<std::size_t>(stats.transport.frames));
  writer.field("payload_bytes",
               static_cast<std::size_t>(stats.transport.payload_bytes));
  writer.field("halo_frames",
               static_cast<std::size_t>(stats.transport.halo_frames));
  writer.field("halo_bytes",
               static_cast<std::size_t>(stats.transport.halo_bytes));
  writer.field("dse_bytes", static_cast<std::size_t>(stats.transport.dse_bytes));
  writer.end_object();
  writer.begin_array("nodes");
  for (const fleet::FleetNodeStats& node : stats.nodes) {
    writer.begin_object();
    writer.field("rank", static_cast<std::size_t>(node.rank));
    writer.field("mp_requests", node.mp_requests);
    writer.field("halo_tiles_served", node.halo_tiles_served);
    writer.field("dse_evaluations", node.dse_evaluations);
    write_serving_stats(writer, "serving", node.serving);
    writer.end_object();
  }
  writer.end_array();
  writer.end_object();
}

}  // namespace xl::api
