#include "api/registry.hpp"

#include <stdexcept>

#include "api/analytical_backend.hpp"
#include "api/baseline_backend.hpp"
#include "api/functional_backend.hpp"
#include "baselines/deap_cnn.hpp"
#include "baselines/holylight.hpp"

namespace xl::api {

void BackendRegistry::register_backend(std::string name, Factory factory) {
  if (name.empty()) {
    throw std::invalid_argument("BackendRegistry: empty backend name");
  }
  if (!factory) {
    throw std::invalid_argument("BackendRegistry: null factory for " + name);
  }
  if (contains(name)) {
    throw std::invalid_argument("BackendRegistry: duplicate backend " + name);
  }
  entries_.emplace_back(std::move(name), std::move(factory));
}

bool BackendRegistry::contains(const std::string& name) const noexcept {
  for (const auto& [key, factory] : entries_) {
    if (key == name) return true;
  }
  return false;
}

std::unique_ptr<Backend> BackendRegistry::create(const std::string& name) const {
  for (const auto& [key, factory] : entries_) {
    if (key == name) return factory();
  }
  std::string known;
  for (const auto& [key, factory] : entries_) {
    if (!known.empty()) known += ", ";
    known += key;
  }
  throw std::out_of_range("BackendRegistry: unknown backend '" + name +
                          "' (known: " + known + ")");
}

std::vector<std::string> BackendRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [key, factory] : entries_) out.push_back(key);
  return out;
}

BackendRegistry make_default_registry() {
  BackendRegistry registry;

  for (core::Variant v : {core::Variant::kBase, core::Variant::kBaseTed,
                          core::Variant::kOpt, core::Variant::kOptTed}) {
    registry.register_backend(AnalyticalBackend::registry_key(v), [v]() {
      return std::make_unique<AnalyticalBackend>(v);
    });
  }

  registry.register_backend("deap_cnn", []() {
    return std::make_unique<BaselineBackend>(baselines::deap_cnn_params(), "deap_cnn");
  });
  registry.register_backend("holylight", []() {
    return std::make_unique<BaselineBackend>(baselines::holylight_params(), "holylight");
  });

  registry.register_backend("functional",
                            []() { return std::make_unique<FunctionalBackend>(); });

  for (const auto& platform : baselines::electronic_platforms()) {
    registry.register_backend(
        ElectronicReferenceBackend::registry_key(platform.name), [platform]() {
          return std::make_unique<ElectronicReferenceBackend>(platform);
        });
  }
  return registry;
}

const BackendRegistry& default_registry() {
  static const BackendRegistry registry = make_default_registry();
  return registry;
}

}  // namespace xl::api
