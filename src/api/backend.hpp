// The backend-polymorphic evaluation interface.
//
// Every engine in the repository — the analytical CrossLight model, the
// DEAP-CNN/Holylight/electronic baselines, and the functional batched VDP
// datapath — is exposed as one Backend. Sweeps, benches, and the CLI iterate
// a BackendRegistry (api/registry.hpp) instead of hand-wiring each engine.
#pragma once

#include <string>

#include "api/eval_types.hpp"

namespace xl::api {

/// What a backend can produce; drives request construction and row filtering
/// in cross-backend tables.
struct BackendCapabilities {
  bool analytical = false;      ///< Latency/power/area from ModelSpec shapes.
  bool functional = false;      ///< Executes real tensors (accuracy, error).
  bool reference_only = false;  ///< Literature constants; fills summary only.
  bool needs_network = false;   ///< evaluate() requires network + dataset.
};

class Backend {
 public:
  virtual ~Backend() = default;

  /// The registry key ("crosslight:opt_ted", "deap_cnn", "functional", ...).
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual BackendCapabilities capabilities() const = 0;

  /// Evaluate one request. Throws std::invalid_argument on invalid configs
  /// or when a needs_network backend is called without network/dataset.
  [[nodiscard]] virtual EvalResult evaluate(const EvalRequest& request) = 0;
};

}  // namespace xl::api
