#include "api/eval_types.hpp"

#include <stdexcept>

namespace xl::api {

void SimConfig::validate() const {
  architecture.validate();

  // Datapath + effect-stage validation is shared with the engine
  // constructors (VdpSimOptions::validate, mirroring BaselineParams).
  vdp.validate();

  // The DSE sweep travels with the config so an invalid axis surfaces at
  // session construction, not as an empty sweep deep inside run_dse.
  dse.validate();

  auto check = [](bool ok, const char* what) {
    if (!ok) throw std::invalid_argument(what);
  };
  check(vdp.mrs_per_bank <= 15,
        "SimConfig: vdp.mrs_per_bank in [1, 15] (Section IV-C.2)");
  check(eval_batch_size > 0, "SimConfig: eval_batch_size must be > 0");
  check(functional_samples > 0, "SimConfig: functional_samples must be > 0");
}

}  // namespace xl::api
