#include "api/eval_types.hpp"

#include <stdexcept>

namespace xl::api {

void SimConfig::validate() const {
  architecture.validate();

  auto check = [](bool ok, const char* what) {
    if (!ok) throw std::invalid_argument(what);
  };
  check(vdp.mrs_per_bank >= 1 && vdp.mrs_per_bank <= 15,
        "SimConfig: vdp.mrs_per_bank in [1, 15] (Section IV-C.2)");
  check(vdp.resolution_bits >= 1 && vdp.resolution_bits <= 16,
        "SimConfig: vdp.resolution_bits in [1, 16]");
  check(vdp.q_factor > 0.0, "SimConfig: vdp.q_factor must be > 0");
  check(vdp.fsr_nm > 0.0, "SimConfig: vdp.fsr_nm must be > 0");
  check(vdp.center_wavelength_nm > 0.0,
        "SimConfig: vdp.center_wavelength_nm must be > 0");
  check(eval_batch_size > 0, "SimConfig: eval_batch_size must be > 0");
  check(functional_samples > 0, "SimConfig: functional_samples must be > 0");
}

}  // namespace xl::api
