// Backend adapters over the prior-work comparison models.
//
// BaselineBackend wraps one baselines::BaselineParams parameterization
// (DEAP-CNN, Holylight) and reproduces baselines::evaluate_baseline
// bit-for-bit. ElectronicReferenceBackend wraps one Table III electronic
// platform row — literature constants, not simulated — so cross-backend
// tables can still iterate them through the same interface.
#pragma once

#include <string>

#include "api/backend.hpp"
#include "baselines/electronic.hpp"
#include "baselines/photonic_baseline.hpp"

namespace xl::api {

class BaselineBackend final : public Backend {
 public:
  /// `key` is the registry name ("deap_cnn", "holylight"). Throws
  /// std::invalid_argument if `params` fails BaselineParams::validate().
  BaselineBackend(baselines::BaselineParams params, std::string key);

  [[nodiscard]] std::string name() const override { return key_; }
  [[nodiscard]] BackendCapabilities capabilities() const override;
  [[nodiscard]] EvalResult evaluate(const EvalRequest& request) override;

  [[nodiscard]] const baselines::BaselineParams& params() const noexcept {
    return params_;
  }

 private:
  baselines::BaselineParams params_;
  std::string key_;
};

class ElectronicReferenceBackend final : public Backend {
 public:
  explicit ElectronicReferenceBackend(baselines::ElectronicPlatform platform);

  [[nodiscard]] std::string name() const override { return key_; }
  [[nodiscard]] BackendCapabilities capabilities() const override;
  /// Fills EvalResult::summary from the platform constants; the request's
  /// model is ignored (the survey numbers are model-averaged already).
  [[nodiscard]] EvalResult evaluate(const EvalRequest& request) override;

  /// "electronic:p100" from "P100", "electronic:edge_tpu" from "Edge TPU".
  [[nodiscard]] static std::string registry_key(const std::string& platform_name);

 private:
  baselines::ElectronicPlatform platform_;
  std::string key_;
};

}  // namespace xl::api
