#include "api/baseline_backend.hpp"

#include <cctype>
#include <utility>

namespace xl::api {

BaselineBackend::BaselineBackend(baselines::BaselineParams params, std::string key)
    : params_(std::move(params)), key_(std::move(key)) {
  params_.validate();
}

BackendCapabilities BaselineBackend::capabilities() const {
  BackendCapabilities caps;
  caps.analytical = true;
  return caps;
}

EvalResult BaselineBackend::evaluate(const EvalRequest& request) {
  request.config.validate();
  EvalResult result;
  result.backend = name();
  result.report = baselines::evaluate_baseline(params_, request.model);
  result.has_report = true;
  return result;
}

ElectronicReferenceBackend::ElectronicReferenceBackend(
    baselines::ElectronicPlatform platform)
    : platform_(std::move(platform)), key_(registry_key(platform_.name)) {}

std::string ElectronicReferenceBackend::registry_key(const std::string& platform_name) {
  std::string key = "electronic:";
  bool last_sep = false;
  for (char c : platform_name) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      key.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
      last_sep = false;
    } else if (!last_sep) {
      key.push_back('_');
      last_sep = true;
    }
  }
  return key;
}

BackendCapabilities ElectronicReferenceBackend::capabilities() const {
  BackendCapabilities caps;
  caps.reference_only = true;
  return caps;
}

EvalResult ElectronicReferenceBackend::evaluate(const EvalRequest& request) {
  request.config.validate();
  EvalResult result;
  result.backend = name();
  result.summary.accelerator = platform_.name;
  result.summary.avg_epb_pj = platform_.avg_epb_pj;
  result.summary.avg_kfps_per_watt = platform_.avg_kfps_per_watt;
  result.summary.avg_power_w = platform_.power_w;
  result.has_summary = true;
  return result;
}

}  // namespace xl::api
