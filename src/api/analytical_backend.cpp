#include "api/analytical_backend.hpp"

#include <stdexcept>

#include "core/accelerator.hpp"

namespace xl::api {

std::string AnalyticalBackend::registry_key(core::Variant v) {
  switch (v) {
    case core::Variant::kBase: return "crosslight:base";
    case core::Variant::kBaseTed: return "crosslight:base_ted";
    case core::Variant::kOpt: return "crosslight:opt";
    case core::Variant::kOptTed: return "crosslight:opt_ted";
  }
  throw std::invalid_argument("AnalyticalBackend: unknown variant");
}

BackendCapabilities AnalyticalBackend::capabilities() const {
  BackendCapabilities caps;
  caps.analytical = true;
  return caps;
}

EvalResult AnalyticalBackend::evaluate(const EvalRequest& request) {
  request.config.validate();
  core::ArchitectureConfig cfg = request.config.architecture;
  cfg.variant = variant_;  // The backend identity wins over the shared config.
  const core::CrossLightAccelerator accelerator(cfg);

  EvalResult result;
  result.backend = name();
  result.report = accelerator.evaluate(request.model);
  result.has_report = true;
  return result;
}

}  // namespace xl::api
