// Backend adapter over the functional batched photonic datapath.
//
// Wraps core::PhotonicInferenceEngine (itself on BatchedVdpEngine): the
// request's network runs with every CONV/FC layer lowered to photonic GEMMs,
// producing accuracy + work counters + (opt-in) max layer error. When the
// request also carries a ModelSpec with layers, the analytical CrossLight
// metrics for that workload are reported alongside, so one EvalResult holds
// both the "how fast/how much energy" and the "what does the analog datapath
// actually compute" views.
#pragma once

#include <string>

#include "api/backend.hpp"

namespace xl::api {

class FunctionalBackend final : public Backend {
 public:
  FunctionalBackend() = default;

  [[nodiscard]] std::string name() const override { return "functional"; }
  [[nodiscard]] BackendCapabilities capabilities() const override;

  /// Requires request.network and request.dataset (throws
  /// std::invalid_argument otherwise). Evaluates classification accuracy on
  /// min(config.functional_samples, dataset size) samples in batches of
  /// config.eval_batch_size.
  [[nodiscard]] EvalResult evaluate(const EvalRequest& request) override;
};

}  // namespace xl::api
