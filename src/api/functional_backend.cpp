#include "api/functional_backend.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/accelerator.hpp"
#include "core/photonic_inference.hpp"
#include "dnn/datasets.hpp"
#include "dnn/network.hpp"

namespace xl::api {

BackendCapabilities FunctionalBackend::capabilities() const {
  BackendCapabilities caps;
  caps.analytical = true;  // Analytical metrics ride along when a model is given.
  caps.functional = true;
  caps.needs_network = true;
  return caps;
}

EvalResult FunctionalBackend::evaluate(const EvalRequest& request) {
  request.config.validate();
  if (request.network == nullptr || request.dataset == nullptr) {
    throw std::invalid_argument(
        "FunctionalBackend: request needs a network and a dataset");
  }
  if (request.dataset->size() == 0) {
    throw std::invalid_argument("FunctionalBackend: empty dataset");
  }

  EvalResult result;
  result.backend = name();

  // Analytical metrics for the declared workload shape, if one was given.
  if (!request.model.layers.empty()) {
    const core::CrossLightAccelerator accelerator(request.config.architecture);
    result.report = accelerator.evaluate(request.model);
    result.has_report = true;
  }

  core::PhotonicInferenceEngine engine(*request.network, request.config.vdp);
  engine.set_eval_batch_size(request.config.eval_batch_size);
  engine.set_track_layer_error(request.config.track_layer_error);
  const std::size_t samples =
      std::min(request.config.functional_samples, request.dataset->size());
  result.functional.accuracy = engine.evaluate_accuracy(*request.dataset, samples);
  result.functional.samples = samples;
  result.functional.effects = request.config.vdp.effective_effects().summary();
  result.functional.stats = engine.stats();
  result.functional.populated = true;
  return result;
}

}  // namespace xl::api
