// Umbrella header of the xl::api evaluation facade.
//
//   Session    — owns a SimConfig, resolves backends by name, caches them.
//   Registry   — string-keyed factories ("crosslight:opt_ted", "deap_cnn",
//                "functional", "electronic:p100", ...).
//   Backend    — one interface over the analytical CrossLight model, the
//                prior-work baselines, and the functional batched datapath.
//   EvalResult — AcceleratorReport + AcceleratorSummary + functional
//                accuracy/stats merged into one report type.
#pragma once

#include "api/analytical_backend.hpp"
#include "api/backend.hpp"
#include "api/baseline_backend.hpp"
#include "api/eval_types.hpp"
#include "api/functional_backend.hpp"
#include "api/json_writer.hpp"
#include "api/registry.hpp"
#include "api/session.hpp"
