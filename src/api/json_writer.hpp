// Minimal ordered JSON emitter for machine-readable tool output
// (crosslight_cli --json, the BENCH_*.json perf-trajectory files).
//
// Supports exactly what those producers need: nested objects/arrays with
// insertion-ordered keys, correctly escaped strings, and non-finite doubles
// serialized as null. Two-space indented for human diffing.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace xl::core {
struct DsePoint;
struct DseResult;
struct DseStats;
struct EffectConfig;
}  // namespace xl::core

namespace xl::serve {
struct ServingStats;
}  // namespace xl::serve

namespace xl::fleet {
struct FleetStats;
}  // namespace xl::fleet

namespace xl::api {

class JsonWriter {
 public:
  /// Root object is opened on construction.
  JsonWriter();

  // Values inside an object.
  void field(const std::string& key, const std::string& value);
  void field(const std::string& key, const char* value);
  void field(const std::string& key, double value);
  void field(const std::string& key, std::size_t value);
  void field(const std::string& key, int value);
  void field(const std::string& key, bool value);

  // Values inside an array.
  void element(const std::string& value);
  void element(double value);

  void begin_object(const std::string& key);  ///< Named, inside an object.
  void begin_object();                        ///< Anonymous, inside an array.
  void end_object();
  void begin_array(const std::string& key);
  void end_array();

  /// Close the root object and return the document. The writer is spent
  /// afterwards.
  [[nodiscard]] std::string finish();

  [[nodiscard]] static std::string escape(const std::string& raw);

 private:
  void comma_and_indent();

  std::string out_;
  std::vector<bool> first_in_scope_;  ///< One flag per open scope.
};

/// Emit the non-ideality pipeline configuration as a named "effects" object
/// (stage switches, seed, and the physically meaningful stage knobs), so
/// every --json/BENCH_*.json consumer records which datapath it measured.
void write_effect_config(JsonWriter& writer, const core::EffectConfig& effects);

/// Emit DSE points as a named array of objects, streaming one object per
/// point: the (N, K, n, m) tuple, scenario axes (variant, resolution,
/// budget), the averaged metrics, the selection criterion, and the
/// on_pareto / degenerate flags.
void write_dse_points(JsonWriter& writer, const std::string& key,
                      const std::vector<core::DsePoint>& points);

/// Emit a DseResult's Pareto front as the "pareto_front" array.
void write_pareto_front(JsonWriter& writer, const core::DseResult& result);

/// Emit engine statistics as the "stats" object (grid size, area-filtered
/// and degenerate counts, evaluator calls, cache hits and hit rate).
void write_dse_stats(JsonWriter& writer, const core::DseStats& stats);

/// Emit a serving-runtime snapshot as a named object: request/sample/batch
/// counters, mean batch rows, p50/p99 latency, the batch-size histogram
/// (only non-empty bins), and the merged photonic work counters.
void write_serving_stats(JsonWriter& writer, const std::string& key,
                         const serve::ServingStats& stats);

/// Emit a fleet snapshot as a named object: routed-request count, fabric
/// traffic totals (frames, payload/halo/DSE bytes), and one object per node
/// (rank, model-parallel and halo counters, DSE evaluations, and the node's
/// full serving snapshot).
void write_fleet_stats(JsonWriter& writer, const std::string& key,
                       const fleet::FleetStats& stats);

}  // namespace xl::api
