// Backend adapter over the analytical CrossLightAccelerator, one instance
// per architecture Variant. Results are bit-identical to calling
// core::CrossLightAccelerator::evaluate directly with the same
// ArchitectureConfig (verified by tests/test_api_parity.cpp).
#pragma once

#include <string>

#include "api/backend.hpp"
#include "core/config.hpp"

namespace xl::api {

class AnalyticalBackend final : public Backend {
 public:
  explicit AnalyticalBackend(core::Variant variant) : variant_(variant) {}

  [[nodiscard]] std::string name() const override { return registry_key(variant_); }
  [[nodiscard]] BackendCapabilities capabilities() const override;
  [[nodiscard]] EvalResult evaluate(const EvalRequest& request) override;

  [[nodiscard]] core::Variant variant() const noexcept { return variant_; }

  /// "crosslight:base", "crosslight:base_ted", "crosslight:opt",
  /// "crosslight:opt_ted".
  [[nodiscard]] static std::string registry_key(core::Variant v);

 private:
  core::Variant variant_;
};

}  // namespace xl::api
