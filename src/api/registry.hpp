// String-keyed backend factory registry.
//
// Backends are selectable by name ("crosslight:opt_ted", "deap_cnn",
// "functional", ...) so sweeps, benches, and the CLI enumerate engines
// instead of hand-wiring them. Registration order is preserved: names()
// lists the default backends in the paper's comparison order (the four
// CrossLight variants, then the photonic baselines, then the functional
// engine, then the Table III electronic reference rows).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/backend.hpp"

namespace xl::api {

class BackendRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Backend>()>;

  /// Throws std::invalid_argument on empty names, null factories, or
  /// duplicate registration.
  void register_backend(std::string name, Factory factory);

  [[nodiscard]] bool contains(const std::string& name) const noexcept;

  /// Instantiate the named backend. Throws std::out_of_range (message lists
  /// the known names) when the name is not registered.
  [[nodiscard]] std::unique_ptr<Backend> create(const std::string& name) const;

  /// All registered names, in registration order.
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  std::vector<std::pair<std::string, Factory>> entries_;
};

/// A fresh registry holding every built-in backend: the four CrossLight
/// variants, DEAP-CNN, Holylight, the functional engine, and the six
/// electronic reference platforms.
[[nodiscard]] BackendRegistry make_default_registry();

/// Shared immutable instance of make_default_registry().
[[nodiscard]] const BackendRegistry& default_registry();

}  // namespace xl::api
