#include "baselines/holylight.hpp"

#include <cmath>

#include "photonics/laser.hpp"
#include "photonics/losses.hpp"

namespace xl::baselines {

using xl::photonics::ArmPathSpec;
using xl::photonics::DeviceParams;

BaselineParams holylight_params(const DeviceParams& devices) {
  BaselineParams p;
  p.name = "Holylight";

  // Microdisk compute slices; FC layers share the CONV-scale fabric.
  p.unit_size = 16;
  p.units = 160;
  p.area_mm2 = 18.0;  // Microdisks are small; density comparable to CrossLight.

  // Effective 16-bit datapath from 8 ganged 2-bit disks; modulation is fast
  // (PIN-driven), paced by Holylight's 1.2 GHz photonic core clock.
  p.resolution_bits = 16;
  p.cycle_ns = 1.0 / 1.2;
  p.pipeline_fill_ns = 30.0;
  p.fc_weight_reload_ns = 0.0;
  p.conv_weight_reload_ns = 0.0;

  // 8 disks per weight element + 8 per activation element.
  p.devices_per_element = 16.0;

  // Static tuning: microdisks still need conventional FPV trim (half the
  // 7.1 nm worst case on average) with plain TO heaters; the per-disk hold
  // excursion is small (2-bit levels).
  const double mw_per_nm = devices.to_tuning_power_mw_per_nm();
  p.static_tuning_mw_per_device =
      (0.15 + 0.5 * devices.fpv_drift_conventional_nm) * mw_per_nm;

  // Laser: lossy microdisk path, one wavelength per element, no reuse. Each
  // wavelength physically traverses only its own 8-disk significance gang in
  // the weight plane plus the matching activation gang (2 x 8 disks), not
  // every disk of the unit.
  ArmPathSpec arm;
  arm.mrs_on_waveguide = 8;
  arm.banks_per_arm = 2;
  arm.splitter_stages = 0;
  arm.uses_microdisks = true;
  arm.waveguide_length_cm = static_cast<double>(2 * p.unit_size) * (10.0 + 60.0) * 1e-4;
  arm.combiner_stages = 1;
  const auto budget = arm_loss_budget(arm, devices);
  p.laser_mw_per_unit =
      required_laser_power(budget, p.unit_size, devices).wall_plug_power_mw;

  p.pd_tia_vcsel_mw_per_unit = devices.pd_power_mw + devices.tia_power_mw;
  p.adc_dac_mw_per_unit = devices.transceiver_max_power_mw;

  return p;
}

}  // namespace xl::baselines
