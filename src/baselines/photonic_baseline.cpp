#include "baselines/photonic_baseline.hpp"

#include <stdexcept>

namespace xl::baselines {

using xl::core::AcceleratorReport;
using xl::core::PowerBreakdown;
using xl::dnn::LayerKind;
using xl::dnn::LayerSpec;
using xl::dnn::ModelSpec;

void BaselineParams::validate() const {
  auto check = [](bool ok, const char* what) {
    if (!ok) throw std::invalid_argument(what);
  };
  check(!name.empty(), "BaselineParams: name must be set");
  check(unit_size > 0, "BaselineParams: unit_size must be > 0");
  check(units > 0, "BaselineParams: units must be > 0");
  check(cycle_ns > 0.0, "BaselineParams: cycle_ns must be > 0");
  check(pipeline_fill_ns >= 0.0, "BaselineParams: pipeline_fill_ns must be >= 0");
  check(fc_weight_reload_ns >= 0.0, "BaselineParams: fc_weight_reload_ns must be >= 0");
  check(conv_weight_reload_ns >= 0.0,
        "BaselineParams: conv_weight_reload_ns must be >= 0");
  check(resolution_bits >= 1, "BaselineParams: resolution_bits must be >= 1");
  check(devices_per_element > 0.0, "BaselineParams: devices_per_element must be > 0");
  check(static_tuning_mw_per_device >= 0.0 && laser_mw_per_unit >= 0.0 &&
            pd_tia_vcsel_mw_per_unit >= 0.0 && adc_dac_mw_per_unit >= 0.0 &&
            control_mw_per_unit >= 0.0,
        "BaselineParams: power terms must be >= 0");
  check(area_mm2 > 0.0, "BaselineParams: area_mm2 must be > 0");
}

AcceleratorReport evaluate_baseline(const BaselineParams& params, const ModelSpec& model) {
  params.validate();

  double latency_ns = 0.0;
  std::size_t total_macs = 0;
  for (const LayerSpec& layer : model.layers) {
    if (!layer.is_accelerated()) continue;
    const std::size_t dps = layer.dot_product_count() * model.branches;
    const std::size_t len = layer.dot_product_length();
    const std::size_t passes_per_dot = (len + params.unit_size - 1) / params.unit_size;
    const std::size_t passes = dps * passes_per_dot;
    const std::size_t rounds = (passes + params.units - 1) / params.units;
    total_macs += layer.mac_count() * model.branches;

    latency_ns += static_cast<double>(rounds) * params.cycle_ns + params.pipeline_fill_ns;

    if (layer.kind == LayerKind::kDense && params.fc_weight_reload_ns > 0.0) {
      // FC weights differ for every pass: the reload serializes per round.
      latency_ns += static_cast<double>(rounds) * params.fc_weight_reload_ns;
    }
    if (layer.kind == LayerKind::kConv && params.conv_weight_reload_ns > 0.0) {
      // CONV weights are filter-stationary: reload once per (filter x chunk),
      // amortized over all output pixels of that filter.
      const std::size_t reloads = layer.out_channels * passes_per_dot * model.branches;
      const std::size_t reload_rounds = (reloads + params.units - 1) / params.units;
      latency_ns += static_cast<double>(reload_rounds) * params.conv_weight_reload_ns;
    }
  }
  if (total_macs == 0) {
    throw std::invalid_argument("evaluate_baseline: model has no accelerated layers");
  }

  PowerBreakdown power;
  const double devices =
      static_cast<double>(params.units) * static_cast<double>(params.unit_size) *
      params.devices_per_element;
  power.to_tuning_mw = devices * params.static_tuning_mw_per_device;
  power.laser_mw = static_cast<double>(params.units) * params.laser_mw_per_unit;
  power.pd_mw = static_cast<double>(params.units) * params.pd_tia_vcsel_mw_per_unit;
  power.adc_dac_mw = static_cast<double>(params.units) * params.adc_dac_mw_per_unit;
  power.control_mw = static_cast<double>(params.units) * params.control_mw_per_unit;

  AcceleratorReport report;
  report.accelerator = params.name;
  report.model = model.name;
  report.perf.cycle_ns = params.cycle_ns;
  report.perf.frame_latency_us = latency_ns * 1e-3;
  report.perf.fps = 1e9 / latency_ns;
  report.power = power;
  report.area_mm2 = params.area_mm2;
  report.resolution_bits = params.resolution_bits;
  report.macs_per_frame = total_macs;
  return report;
}

}  // namespace xl::baselines
