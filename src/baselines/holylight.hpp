// Holylight (Liu et al., DATE 2019 — paper ref [12]) analytical model.
//
// Key properties as characterized by the CrossLight paper:
//   * microdisk devices — smaller but inherently lossy (1.22 dB, tunneling
//     ray attenuation) and limited to 2-bit resolution per disk;
//   * 16-bit weights realized by ganging 8 microdisks (8x device count);
//   * fast (ns) disk modulation — no thermo-optic reload penalty;
//   * no FPV-optimized devices, no TED, no wavelength reuse.
#pragma once

#include "baselines/photonic_baseline.hpp"

namespace xl::baselines {

/// Build the Holylight parameterization from shared device parameters.
[[nodiscard]] BaselineParams holylight_params(
    const xl::photonics::DeviceParams& devices = xl::photonics::default_device_params());

}  // namespace xl::baselines
