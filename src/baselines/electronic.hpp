// Electronic platform reference points (Fig. 7 / Table III).
//
// The paper takes these numbers from the Capra et al. survey [36]; they are
// literature constants, not simulated. Power values are the platforms'
// rated/measured inference power draws used for the Fig. 7 comparison.
#pragma once

#include <string>
#include <vector>

namespace xl::baselines {

struct ElectronicPlatform {
  std::string name;
  double avg_epb_pj = 0.0;        ///< Table III column 2.
  double avg_kfps_per_watt = 0.0; ///< Table III column 3.
  double power_w = 0.0;           ///< Typical inference power (Fig. 7).
};

/// All six electronic platforms of Table III, in the paper's order.
[[nodiscard]] std::vector<ElectronicPlatform> electronic_platforms();

/// Paper-reported Table III values for the photonic accelerators, used by
/// benches to print "paper vs measured" columns.
struct PaperPhotonicRow {
  std::string name;
  double avg_epb_pj = 0.0;
  double avg_kfps_per_watt = 0.0;
};
[[nodiscard]] std::vector<PaperPhotonicRow> paper_photonic_rows();

}  // namespace xl::baselines
