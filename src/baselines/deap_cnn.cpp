#include "baselines/deap_cnn.hpp"

#include <cmath>

#include "photonics/laser.hpp"
#include "photonics/losses.hpp"

namespace xl::baselines {

using xl::photonics::ArmPathSpec;
using xl::photonics::DeviceParams;

BaselineParams deap_cnn_params(const DeviceParams& devices) {
  BaselineParams p;
  p.name = "DEAP_CNN";

  // 5x5-kernel convolution units; unit count chosen to fill the same
  // ~16-25 mm^2 budget at crosstalk guard spacing.
  p.unit_size = 25;
  p.units = 64;
  p.area_mm2 = 21.0;

  // Activations stream through MZMs at the transceiver symbol rate, as in
  // CrossLight; resolution-limited symbols are narrower (4 bits).
  p.resolution_bits = 4;
  p.cycle_ns = p.resolution_bits / devices.transceiver_max_rate_gbps;
  p.pipeline_fill_ns = devices.to_tuning_latency_us * 1e3;  // TO settling.

  // Weight imprint is thermo-optic: microsecond reload, serialized.
  p.fc_weight_reload_ns = devices.to_tuning_latency_us * 1e3;
  p.conv_weight_reload_ns = devices.to_tuning_latency_us * 1e3;

  // Weight + activation MR per element.
  p.devices_per_element = 2.0;

  // Static tuning: TO weight hold (~0.5 nm mean excursion) plus conventional
  // FPV compensation (mean |drift| = half the 7.1 nm worst case) — DEAP has
  // neither optimized devices nor TED.
  const double mw_per_nm = devices.to_tuning_power_mw_per_nm();
  const double weight_hold = 0.5 * mw_per_nm;
  const double fpv_trim = 0.5 * devices.fpv_drift_conventional_nm * mw_per_nm;
  p.static_tuning_mw_per_device = weight_hold + fpv_trim;

  // Laser: one wavelength per element (no reuse), guard-spaced bank.
  ArmPathSpec arm;
  arm.mrs_on_waveguide = p.unit_size;
  arm.banks_per_arm = 2;
  arm.splitter_stages = 0;
  arm.waveguide_length_cm =
      static_cast<double>(2 * p.unit_size) * (20.0 + 120.0) * 1e-4;
  arm.combiner_stages = 1;
  const auto budget = arm_loss_budget(arm, devices);
  p.laser_mw_per_unit =
      required_laser_power(budget, p.unit_size, devices).wall_plug_power_mw;

  // One balanced PD + TIA per unit; no VCSEL partial-sum stage.
  p.pd_tia_vcsel_mw_per_unit = devices.pd_power_mw + devices.tia_power_mw;

  // Transceiver array per unit (as for CrossLight).
  p.adc_dac_mw_per_unit = devices.transceiver_max_power_mw;

  return p;
}

}  // namespace xl::baselines
