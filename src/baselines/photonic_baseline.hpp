// Generic analytical model for prior photonic DNN accelerators.
//
// DEAP-CNN [11] and Holylight [12] are expressed as parameterizations of one
// shared machinery (the paper's own comparison is likewise analytical). The
// knobs capture exactly the shortcomings CrossLight's cross-layer design
// addresses (Sections II/III): thermo-optic weight imprint latency, absent
// wavelength reuse, lossier devices, no FPV-optimized MRs, no TED.
#pragma once

#include <string>

#include "core/report.hpp"
#include "dnn/layer_spec.hpp"
#include "photonics/device_params.hpp"

namespace xl::baselines {

struct BaselineParams {
  std::string name;

  // Organization.
  std::size_t unit_size = 25;  ///< Dot-product length per unit pass.
  std::size_t units = 100;     ///< Parallel units within the area budget.

  // Timing.
  double cycle_ns = 0.3;              ///< Pipelined pass-issue interval.
  double pipeline_fill_ns = 30.0;     ///< Per-layer fill.
  double fc_weight_reload_ns = 0.0;   ///< Serial weight-reload cost per FC pass.
  double conv_weight_reload_ns = 0.0; ///< Serial reload per distinct CONV filter pass-chunk.

  // Datapath.
  int resolution_bits = 16;        ///< Native precision (crosstalk-limited).
  double devices_per_element = 2.0;///< Weighting devices per vector element.

  // Power (computed by the builders from DeviceParams, see deap_cnn.cpp /
  // holylight.cpp).
  double static_tuning_mw_per_device = 0.0;  ///< Weight-hold + FPV trim.
  double laser_mw_per_unit = 0.0;
  double pd_tia_vcsel_mw_per_unit = 0.0;
  double adc_dac_mw_per_unit = 0.0;
  double control_mw_per_unit = 5.0;

  double area_mm2 = 20.0;

  /// Throws std::invalid_argument on degenerate parameters (zero unit
  /// size/count, non-positive cycle time, ...) — the same constructor
  /// contract CrossLightAccelerator enforces for its ArchitectureConfig.
  void validate() const;
};

/// Evaluate one model on a baseline accelerator.
[[nodiscard]] xl::core::AcceleratorReport evaluate_baseline(
    const BaselineParams& params, const xl::dnn::ModelSpec& model);

}  // namespace xl::baselines
