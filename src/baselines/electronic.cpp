#include "baselines/electronic.hpp"

namespace xl::baselines {

std::vector<ElectronicPlatform> electronic_platforms() {
  // EPB / kFPS/W straight from Table III; power draws from the platforms'
  // public ratings as used in the survey [36]: P100 250 W TDP, Xeon Platinum
  // 9282 400 W, Threadripper 3970x 280 W, DaDianNao 15.97 W, Edge TPU 2 W,
  // NullHop (Zynq-7100 implementation) ~2.3 W.
  return {
      {"P100", 971.31, 24.9, 250.0},
      {"IXP 9282", 5099.68, 2.39, 400.0},
      {"AMD-TR", 5831.18, 2.09, 280.0},
      {"DaDianNao", 58.33, 0.65, 15.97},
      {"Edge TPU", 697.37, 17.53, 2.0},
      {"Null Hop", 2727.43, 4.48, 2.3},
  };
}

std::vector<PaperPhotonicRow> paper_photonic_rows() {
  return {
      {"DEAP_CNN", 44453.88, 0.07},
      {"Holylight", 274.13, 3.3},
      {"Cross_base", 142.35, 10.78},
      {"Cross_base_TED", 92.64, 16.54},
      {"Cross_opt", 75.58, 20.25},
      {"Cross_opt_TED", 28.78, 52.59},
  };
}

}  // namespace xl::baselines
