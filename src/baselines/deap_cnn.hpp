// DEAP-CNN (Bangari et al., IEEE JQE 2020 — paper ref [11]) analytical model.
//
// Key properties as characterized by the CrossLight paper:
//   * convolution-scale units only — 5x5-kernel dot products; FC layers are
//     forced through the same small units in kernel-size chunks;
//   * thermo-optic weight imprinting (microsecond latency, mW-scale hold
//     power) with no hybrid EO path;
//   * one wavelength per vector element (no reuse);
//   * 4-bit achievable resolution (Section V-B).
#pragma once

#include "baselines/photonic_baseline.hpp"

namespace xl::baselines {

/// Build the DEAP-CNN parameterization from shared device parameters.
[[nodiscard]] BaselineParams deap_cnn_params(
    const xl::photonics::DeviceParams& devices = xl::photonics::default_device_params());

}  // namespace xl::baselines
