#include "photonics/fpv.hpp"

#include <cmath>
#include <stdexcept>

namespace xl::photonics {

namespace {

/// Deterministic pseudo-random value in [-1, 1] from integer lattice hashing.
/// Gives every chip coordinate an independent but reproducible noise draw.
double hash_noise(std::uint64_t seed, std::int64_t xi, std::int64_t yi) {
  std::uint64_t h = seed;
  h ^= static_cast<std::uint64_t>(xi) * 0x9E3779B97F4A7C15ULL;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ULL;
  h ^= static_cast<std::uint64_t>(yi) * 0xC2B2AE3D27D4EB4FULL;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBULL;
  h ^= h >> 31;
  // Map to [-1, 1].
  return (static_cast<double>(h >> 11) / 9007199254740992.0) * 2.0 - 1.0;
}

}  // namespace

FpvModel::FpvModel(const FpvModelConfig& config) : config_(config) {
  if (config.max_drift_conventional_nm < config.max_drift_optimized_nm) {
    throw std::invalid_argument("FpvModel: conventional drift must dominate optimized");
  }
  if (config.correlation_length_um <= 0.0) {
    throw std::invalid_argument("FpvModel: correlation length must be positive");
  }
  if (config.systematic_fraction < 0.0 || config.systematic_fraction > 1.0) {
    throw std::invalid_argument("FpvModel: systematic fraction in [0, 1]");
  }
  xl::numerics::Rng rng(config.seed);
  phase_x_ = rng.uniform(0.0, 2.0 * M_PI);
  phase_y_ = rng.uniform(0.0, 2.0 * M_PI);
  phase_xy_ = rng.uniform(0.0, 2.0 * M_PI);
}

double FpvModel::systematic_component(double x_um, double y_um) const {
  // Smooth pseudo-random surface built from three incommensurate harmonics;
  // bounded in [-1, 1] and slowly varying over the correlation length.
  const double kx = 2.0 * M_PI / config_.correlation_length_um;
  const double ky = 2.0 * M_PI / (1.37 * config_.correlation_length_um);
  const double kxy = 2.0 * M_PI / (2.11 * config_.correlation_length_um);
  const double s = std::sin(kx * x_um + phase_x_) + std::sin(ky * y_um + phase_y_) +
                   std::sin(kxy * (x_um + y_um) + phase_xy_);
  return s / 3.0;
}

double FpvModel::random_component(double x_um, double y_um) const {
  // Quantize position to a 1 um lattice so nearby queries of the same device
  // site return identical noise.
  const auto xi = static_cast<std::int64_t>(std::llround(x_um));
  const auto yi = static_cast<std::int64_t>(std::llround(y_um));
  return hash_noise(config_.seed, xi, yi);
}

double FpvModel::max_drift_nm(MrDesignKind kind) const noexcept {
  return kind == MrDesignKind::kConventional ? config_.max_drift_conventional_nm
                                             : config_.max_drift_optimized_nm;
}

double FpvModel::drift_nm(MrDesignKind kind, double x_um, double y_um) const {
  const double budget = max_drift_nm(kind);
  const double sys = config_.systematic_fraction * systematic_component(x_um, y_um);
  const double rnd = (1.0 - config_.systematic_fraction) * random_component(x_um, y_um);
  return budget * (sys + rnd);
}

std::vector<double> FpvModel::row_drifts_nm(MrDesignKind kind, std::size_t count,
                                            double pitch_um, double x0_um,
                                            double y0_um) const {
  if (pitch_um <= 0.0) throw std::invalid_argument("FpvModel: pitch must be positive");
  std::vector<double> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(drift_nm(kind, x0_um + static_cast<double>(i) * pitch_um, y0_um));
  }
  return out;
}

}  // namespace xl::photonics
