#include "photonics/bank_lut.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "numerics/kernels.hpp"
#include "numerics/rng.hpp"
#include "photonics/crosstalk.hpp"
#include "photonics/units.hpp"

namespace xl::photonics {

MrBankTransferLut::MrBankTransferLut(const WavelengthGrid& grid, double q_factor,
                                     double extinction_ratio_db, int resolution_bits)
    : n_(grid.channels()), quant_(resolution_bits) {
  if (n_ == 0) {
    throw std::invalid_argument("MrBankTransferLut: empty bank");
  }
  if (q_factor <= 1.0) {
    throw std::invalid_argument("MrBankTransferLut: Q factor must exceed 1");
  }
  if (extinction_ratio_db <= 0.0) {
    throw std::invalid_argument("MrBankTransferLut: extinction ratio must be positive");
  }

  t_min_ = db_to_ratio(-extinction_ratio_db);
  full_ = 1.0 - t_min_;

  lambda_ = grid.wavelengths();
  delta_.resize(n_);
  delta_sq_.resize(n_);
  for (std::size_t j = 0; j < n_; ++j) {
    delta_[j] = lambda_[j] / (2.0 * q_factor);
    delta_sq_[j] = delta_[j] * delta_[j];
  }

  sep_.resize(n_ * n_);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      sep_[i * n_ + j] = lambda_[i] - lambda_[j];
    }
  }

  // Weight-imprint inversion per representable DAC code. A quantized weight
  // magnitude w is realized as a through-port transmission of w, clamped to
  // the achievable range [t_min, 1): drop = 1 - w and the Lorentzian inverse
  // gives detuning^2 = delta^2 * (full/drop - 1). The ring-independent ratio
  // is tabulated; detune_for_code applies the per-ring delta.
  const std::size_t levels = quant_.levels();
  ratio_lut_.resize(levels);
  for (std::size_t code = 0; code < levels; ++code) {
    const double w = quant_.decode(static_cast<std::uint32_t>(code));
    const double target = std::clamp(w, t_min_, 1.0 - 1e-9);
    const double drop = 1.0 - target;
    ratio_lut_[code] = std::max(0.0, full_ / drop - 1.0);
  }

  // Eq. (8) row sums: parasitic coupling into channel i from all other rings
  // sitting on their own resonances, under unit input power.
  phi_row_sum_.assign(n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      if (i == j) continue;
      phi_row_sum_[i] += crosstalk_coupling(sep_[i * n_ + j], delta_[j]);
    }
    max_phi_row_sum_ = std::max(max_phi_row_sum_, phi_row_sum_[i]);
  }
}

double MrBankTransferLut::detune_for_code(std::size_t ring, std::uint32_t code) const {
  return std::sqrt(delta_sq_.at(ring) * ratio_lut_.at(code));
}

double MrBankTransferLut::arm_sum(std::span<const double> a,
                                  std::span<const double> detune,
                                  bool crosstalk) const noexcept {
  const auto& kt = numerics::kernels::active_table();
  if (crosstalk) {
    return kt.arm_sum_xtalk(a.data(), detune.data(), sep_.data(), n_,
                            delta_sq_.data(), full_, a.size());
  }
  return kt.arm_sum_diag(a.data(), detune.data(), delta_sq_.data(), full_,
                         a.size());
}

double MrBankTransferLut::vdp_dot(std::span<const double> a_mag,
                                  std::span<const double> detune,
                                  std::span<const unsigned char> neg,
                                  bool crosstalk, VdpScratch& scratch) const {
  return vdp_dot(a_mag, detune, neg, crosstalk, scratch, nullptr);
}

const double* MrBankTransferLut::drift_ptr(const VdpEffects* effects) const {
  if (effects == nullptr || effects->ring_drift_nm.empty()) return nullptr;
  if (effects->ring_drift_nm.size() < n_) {
    throw std::invalid_argument(
        "MrBankTransferLut: ring drift shorter than bank");
  }
  return effects->ring_drift_nm.data();
}

std::size_t MrBankTransferLut::arm_table_elems(std::size_t total,
                                               bool crosstalk) const noexcept {
  if (!crosstalk) return total;
  std::size_t elems = 0;
  for (std::size_t start = 0; start < total; start += n_) {
    const std::size_t len = std::min(n_, total - start);
    elems += len * len;
  }
  return elems;
}

// The two builders tabulate the exact per-(channel, ring) factors the
// arm-sum kernels evaluate inline — same subexpressions, same rounding —
// so arm sums over the tables reproduce the direct sums bit for bit. A
// ring's operating point takes one of two values per arm: the imprint
// detuning when it carries the weight ("carry") or resonance when the
// weight went to the other arm ("idle"); drift shifts both.
void MrBankTransferLut::build_idle_table(std::size_t total, bool crosstalk,
                                         const VdpEffects* effects,
                                         double* out) const {
  const double* drift = drift_ptr(effects);
  std::size_t off = 0;
  for (std::size_t start = 0; start < total; start += n_) {
    const std::size_t len = std::min(n_, total - start);
    if (crosstalk) {
      for (std::size_t j = 0; j < len; ++j) {
        const double dj = drift != nullptr ? -drift[j] : 0.0;
        for (std::size_t i = 0; i < len; ++i) {
          const double d = sep_[i * n_ + j] + dj;
          out[off + j * len + i] =
              1.0 - full_ * delta_sq_[j] / (d * d + delta_sq_[j]);
        }
      }
      off += len * len;
    } else {
      for (std::size_t i = 0; i < len; ++i) {
        const double d = drift != nullptr ? -drift[i] : 0.0;
        out[off + i] = 1.0 - full_ * delta_sq_[i] / (d * d + delta_sq_[i]);
      }
      off += len;
    }
  }
}

void MrBankTransferLut::build_carry_table(std::span<const double> detune,
                                          bool crosstalk,
                                          const VdpEffects* effects,
                                          double* out) const {
  const std::size_t total = detune.size();
  const double* drift = drift_ptr(effects);
  std::size_t off = 0;
  for (std::size_t start = 0; start < total; start += n_) {
    const std::size_t len = std::min(n_, total - start);
    if (crosstalk) {
      for (std::size_t j = 0; j < len; ++j) {
        const double dj = drift != nullptr ? detune[start + j] - drift[j]
                                           : detune[start + j];
        for (std::size_t i = 0; i < len; ++i) {
          const double d = sep_[i * n_ + j] + dj;
          out[off + j * len + i] =
              1.0 - full_ * delta_sq_[j] / (d * d + delta_sq_[j]);
        }
      }
      off += len * len;
    } else {
      for (std::size_t i = 0; i < len; ++i) {
        const double d = drift != nullptr ? detune[start + i] - drift[i]
                                          : detune[start + i];
        out[off + i] = 1.0 - full_ * delta_sq_[i] / (d * d + delta_sq_[i]);
      }
      off += len;
    }
  }
}

double MrBankTransferLut::vdp_dot(std::span<const double> a_mag,
                                  std::span<const double> detune,
                                  std::span<const unsigned char> neg,
                                  bool crosstalk, VdpScratch& scratch,
                                  const VdpEffects* effects) const {
  const std::size_t total = a_mag.size();
  if (detune.size() != total || neg.size() != total) {
    throw std::invalid_argument("MrBankTransferLut::vdp_dot: size mismatch");
  }
  const double* drift = drift_ptr(effects);
  const double noise_std =
      effects != nullptr && effects->active() ? effects->noise_std : 0.0;
  if (scratch.detune_pos.size() < n_) {
    scratch.detune_pos.resize(n_);
    scratch.detune_neg.resize(n_);
  }
  double* dp = scratch.detune_pos.data();
  double* dn = scratch.detune_neg.data();

  // Split the signed weight across the balanced-PD arms: the arm not
  // carrying the weight holds a zero-weight (on-resonance) ring. A drifted
  // ring j resonates at lambda_j - detune_j + drift_j, so the drift enters
  // as a negative detuning contribution on both arms.
  const auto chunk_partial = [&](std::size_t start, std::size_t len) {
    if (drift == nullptr) {
      for (std::size_t j = 0; j < len; ++j) {
        const double d = detune[start + j];
        if (neg[start + j]) {
          dp[j] = 0.0;
          dn[j] = d;
        } else {
          dp[j] = d;
          dn[j] = 0.0;
        }
      }
    } else {
      for (std::size_t j = 0; j < len; ++j) {
        const double d = detune[start + j];
        if (neg[start + j]) {
          dp[j] = -drift[j];
          dn[j] = d - drift[j];
        } else {
          dp[j] = d - drift[j];
          dn[j] = -drift[j];
        }
      }
    }
    const double pos = arm_sum(a_mag.subspan(start, len), {dp, len}, crosstalk);
    const double negative =
        arm_sum(a_mag.subspan(start, len), {dn, len}, crosstalk);
    return pos - negative;
  };
  // Partial-sum ADC: the balanced-PD output re-enters the digital domain
  // (via the VCSEL accumulation path) at the datapath resolution.
  const auto requantized = [this](double partial, std::size_t len) {
    const double norm = static_cast<double>(len);
    return (quant_.quantize(std::abs(partial) / norm) * norm) *
           (partial < 0.0 ? -1.0 : 1.0);
  };

  double acc = 0.0;
  if (noise_std > 0.0) {
    // Balanced detection sums 2 * len independent per-channel noise currents
    // in quadrature. Each draw is keyed on the chunk's operands (activation
    // magnitudes, imprint detunings, arm signs, chunk position), never on
    // evaluation order, so scalar, batched, and any OpenMP schedule sample
    // the same perturbation; only genuinely identical operand chunks share a
    // draw. The keys for every chunk are collected first so the draws go
    // through one bulk hash_gaussian_keys kernel call — bit-identical to the
    // historical per-chunk hash_gaussian calls.
    const auto bits_of = [](double v) {
      std::uint64_t b;
      static_assert(sizeof(b) == sizeof(v));
      std::memcpy(&b, &v, sizeof(b));
      return b;
    };
    const std::size_t nchunks = (total + n_ - 1) / n_;
    if (scratch.partial.size() < nchunks) {
      scratch.partial.resize(nchunks);
      scratch.noise_key.resize(nchunks);
      scratch.noise_draw.resize(nchunks);
    }
    std::size_t ci = 0;
    for (std::size_t start = 0; start < total; start += n_, ++ci) {
      const std::size_t len = std::min(n_, total - start);
      scratch.partial[ci] = chunk_partial(start, len);
      std::uint64_t key = xl::numerics::hash_combine(
          effects->noise_seed, static_cast<std::uint64_t>(start));
      for (std::size_t j = 0; j < len; ++j) {
        key = xl::numerics::hash_combine(key, bits_of(a_mag[start + j]));
        key = xl::numerics::hash_combine(
            key, bits_of(detune[start + j]) ^ (neg[start + j] ? ~0ULL : 0ULL));
      }
      scratch.noise_key[ci] = key;
    }
    numerics::kernels::active_table().hash_gaussian_keys(
        scratch.noise_key.data(), nchunks, scratch.noise_draw.data());
    ci = 0;
    for (std::size_t start = 0; start < total; start += n_, ++ci) {
      const std::size_t len = std::min(n_, total - start);
      const double partial =
          scratch.partial[ci] + noise_std *
                                    std::sqrt(2.0 * static_cast<double>(len)) *
                                    scratch.noise_draw[ci];
      acc += requantized(partial, len);
    }
  } else {
    for (std::size_t start = 0; start < total; start += n_) {
      const std::size_t len = std::min(n_, total - start);
      acc += requantized(chunk_partial(start, len), len);
    }
  }
  return acc;
}

double MrBankTransferLut::vdp_dot_tbl(std::span<const double> a_mag,
                                      std::span<const double> detune,
                                      std::span<const unsigned char> neg,
                                      bool crosstalk, VdpScratch& scratch,
                                      const VdpEffects* effects,
                                      const double* carry,
                                      const double* idle) const {
  const std::size_t total = a_mag.size();
  if (detune.size() != total || neg.size() != total) {
    throw std::invalid_argument("MrBankTransferLut::vdp_dot_tbl: size mismatch");
  }
  const double noise_std =
      effects != nullptr && effects->active() ? effects->noise_std : 0.0;

  // Balanced-PD partial over the prebuilt tables: ring j's factor is carry
  // on the arm holding the weight and idle on the other. The fused pair
  // kernels form both arms in one table pass, multiplying the identical
  // factor values in the identical order as vdp_dot's arm_sum calls and
  // subtracting identically — bit-identical, divisions hoisted.
  const auto& kt = numerics::kernels::active_table();
  const auto chunk_partial = [&](std::size_t start, std::size_t toff,
                                 std::size_t len) {
    const double* a = a_mag.data() + start;
    const unsigned char* sel = neg.data() + start;
    if (crosstalk) {
      return kt.arm_pair_xtalk_tbl(a, sel, carry + toff, idle + toff, len);
    }
    return kt.arm_pair_diag_tbl(a, sel, carry + toff, idle + toff, len);
  };
  // Keep in sync with vdp_dot: the requantization and the operand-keyed
  // noise accumulation below are the same code over the same partials.
  const auto requantized = [this](double partial, std::size_t len) {
    const double norm = static_cast<double>(len);
    return (quant_.quantize(std::abs(partial) / norm) * norm) *
           (partial < 0.0 ? -1.0 : 1.0);
  };

  double acc = 0.0;
  std::size_t toff = 0;
  if (noise_std > 0.0) {
    const auto bits_of = [](double v) {
      std::uint64_t b;
      static_assert(sizeof(b) == sizeof(v));
      std::memcpy(&b, &v, sizeof(b));
      return b;
    };
    const std::size_t nchunks = (total + n_ - 1) / n_;
    if (scratch.partial.size() < nchunks) {
      scratch.partial.resize(nchunks);
      scratch.noise_key.resize(nchunks);
      scratch.noise_draw.resize(nchunks);
    }
    std::size_t ci = 0;
    for (std::size_t start = 0; start < total; start += n_, ++ci) {
      const std::size_t len = std::min(n_, total - start);
      scratch.partial[ci] = chunk_partial(start, toff, len);
      toff += crosstalk ? len * len : len;
      std::uint64_t key = xl::numerics::hash_combine(
          effects->noise_seed, static_cast<std::uint64_t>(start));
      for (std::size_t j = 0; j < len; ++j) {
        key = xl::numerics::hash_combine(key, bits_of(a_mag[start + j]));
        key = xl::numerics::hash_combine(
            key, bits_of(detune[start + j]) ^ (neg[start + j] ? ~0ULL : 0ULL));
      }
      scratch.noise_key[ci] = key;
    }
    numerics::kernels::active_table().hash_gaussian_keys(
        scratch.noise_key.data(), nchunks, scratch.noise_draw.data());
    ci = 0;
    for (std::size_t start = 0; start < total; start += n_, ++ci) {
      const std::size_t len = std::min(n_, total - start);
      const double partial =
          scratch.partial[ci] + noise_std *
                                    std::sqrt(2.0 * static_cast<double>(len)) *
                                    scratch.noise_draw[ci];
      acc += requantized(partial, len);
    }
  } else {
    for (std::size_t start = 0; start < total; start += n_) {
      const std::size_t len = std::min(n_, total - start);
      acc += requantized(chunk_partial(start, toff, len), len);
      toff += crosstalk ? len * len : len;
    }
  }
  return acc;
}

}  // namespace xl::photonics
