#include "photonics/units.hpp"

#include <cmath>
#include <stdexcept>

namespace xl::photonics {

double mw_to_dbm(double mw) {
  if (mw <= 0.0) throw std::domain_error("mw_to_dbm: power must be positive");
  return 10.0 * std::log10(mw);
}

double dbm_to_mw(double dbm) noexcept { return std::pow(10.0, dbm / 10.0); }

double ratio_to_db(double ratio) {
  if (ratio <= 0.0) throw std::domain_error("ratio_to_db: ratio must be positive");
  return 10.0 * std::log10(ratio);
}

double db_to_ratio(double db) noexcept { return std::pow(10.0, db / 10.0); }

double attenuate_mw(double power_mw, double loss_db) noexcept {
  return power_mw * db_to_ratio(-loss_db);
}

double wavelength_nm_to_freq_ghz(double wavelength_nm) {
  if (wavelength_nm <= 0.0) {
    throw std::domain_error("wavelength_nm_to_freq_ghz: wavelength must be positive");
  }
  // c / lambda ; 1 nm = 1e-9 m ; result scaled to GHz.
  return kSpeedOfLightMps / (wavelength_nm * 1e-9) / 1e9;
}

}  // namespace xl::photonics
