#include "photonics/losses.hpp"

#include <sstream>
#include <stdexcept>

namespace xl::photonics {

void LossBudget::add(std::string label, double loss_db) {
  if (loss_db < 0.0) {
    throw std::invalid_argument("LossBudget: negative loss (gain) not allowed");
  }
  items_.push_back(LossItem{std::move(label), loss_db});
}

double LossBudget::total_db() const noexcept {
  double acc = 0.0;
  for (const LossItem& item : items_) acc += item.loss_db;
  return acc;
}

std::string LossBudget::to_string() const {
  std::ostringstream os;
  for (const LossItem& item : items_) {
    os << "  " << item.label << ": " << item.loss_db << " dB\n";
  }
  os << "  total: " << total_db() << " dB";
  return os.str();
}

LossBudget arm_loss_budget(const ArmPathSpec& spec, const DeviceParams& params) {
  LossBudget budget;
  if (spec.waveguide_length_cm > 0.0) {
    budget.add("propagation",
               spec.waveguide_length_cm * params.propagation_loss_db_per_cm);
  }
  if (spec.splitter_stages > 0) {
    budget.add("splitters",
               static_cast<double>(spec.splitter_stages) * params.splitter_loss_db);
  }
  const std::size_t devices_per_bank = spec.mrs_on_waveguide;
  const std::size_t total_devices = devices_per_bank * spec.banks_per_arm;
  if (total_devices > 0) {
    if (spec.uses_microdisks) {
      budget.add("microdisks",
                 static_cast<double>(total_devices) * params.microdisk_loss_db);
    } else {
      // The signal passes every MR in each bank; one MR per bank is in
      // resonance and modulating, the rest contribute through-loss only.
      const auto modulating = static_cast<double>(spec.banks_per_arm);
      const auto passive = static_cast<double>(total_devices) - modulating;
      budget.add("mr_through", passive * params.mr_through_loss_db);
      budget.add("mr_modulation", modulating * params.mr_modulation_loss_db);
    }
  }
  if (spec.tuned_segment_cm > 0.0) {
    budget.add("eo_tuning", spec.tuned_segment_cm * params.eo_tuning_loss_db_per_cm);
  }
  if (spec.combiner_stages > 0) {
    budget.add("combiners",
               static_cast<double>(spec.combiner_stages) * params.combiner_loss_db);
  }
  return budget;
}

}  // namespace xl::photonics
