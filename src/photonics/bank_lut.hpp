// Precomputed Lorentzian transfer tables for one MR weight bank.
//
// The functional VDP datapath evaluates the same ring transfer function for
// every dot product: ring j (designed at grid wavelength lambda_j, loaded Q,
// fixed extinction ratio) imprints a quantized weight magnitude and every
// channel i sees the product of all ring transmissions. Re-deriving the
// Lorentzian constants per call (half bandwidths, pairwise channel
// separations, the dB->ratio floor, the weight->detuning inversion) dominated
// the scalar simulator's runtime. This class hoists all of it to
// construction time:
//   * per-ring half bandwidths delta_j and delta_j^2,
//   * the pairwise separation table lambda_i - lambda_j,
//   * a per-DAC-code weight->detuning-ratio LUT (the imprint inverse problem
//     solved once per representable weight instead of once per element), and
//   * Eq. (8) crosstalk row sums phi_i = sum_{j != i} phi(i, j).
// Both the legacy scalar VdpSimulator and the BatchedVdpEngine run their
// inner loops through vdp_dot()/arm_sum() here, so the two paths are
// bit-identical by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "numerics/aligned.hpp"
#include "photonics/devices.hpp"
#include "photonics/wdm.hpp"

namespace xl::photonics {

/// Reusable buffers for vdp_dot (keep one per thread; avoids per-call
/// allocation in the batched engine's hot loop). The noise buffers hold one
/// entry per chunk of the running dot product, so the PD-noise draws for the
/// whole operand can go through one bulk hash_gaussian_keys kernel call.
struct VdpScratch {
  std::vector<double> detune_pos;
  std::vector<double> detune_neg;
  std::vector<double> partial;            ///< Per-chunk balanced-PD partials.
  std::vector<std::uint64_t> noise_key;   ///< Per-chunk operand-hash keys.
  std::vector<double> noise_draw;         ///< Bulk gaussian draws.
};

/// Non-ideality view consumed by vdp_dot — filled by the core effect pipeline
/// (core/effect_pipeline.hpp), owned outside this class so the LUT stays a
/// pure precomputed table.
///   * ring_drift_nm: per-ring resonance drift (thermal + FPV), size >=
///     bank_size() or empty for none. A drifted ring sits at
///     lambda_j - detune_j + drift_j, so the drift is subtracted from the
///     imprint detuning on *both* balanced-PD arms.
///   * noise_std: relative per-channel photodetector noise (1/sqrt(SNR));
///     0 disables. The draw is keyed on (noise_seed, chunk position, the
///     chunk's operand bit patterns), a pure function of the operands —
///     scalar, batched, and any OpenMP thread count sample identical noise,
///     and distinct operand chunks get independent draws.
struct VdpEffects {
  std::span<const double> ring_drift_nm;
  double noise_std = 0.0;
  std::uint64_t noise_seed = 0;

  [[nodiscard]] bool active() const noexcept {
    return !ring_drift_nm.empty() || noise_std > 0.0;
  }
};

class MrBankTransferLut {
 public:
  /// Tables for a bank whose ring i is designed at `grid.wavelength_nm(i)`.
  /// `resolution_bits` fixes the DAC code space of the weight LUT.
  /// Throws std::invalid_argument on non-physical parameters.
  MrBankTransferLut(const WavelengthGrid& grid, double q_factor,
                    double extinction_ratio_db, int resolution_bits);

  [[nodiscard]] std::size_t bank_size() const noexcept { return n_; }
  [[nodiscard]] const UniformQuantizer& quantizer() const noexcept { return quant_; }
  /// Through-port transmission floor at exact resonance (from the ER).
  [[nodiscard]] double min_transmission() const noexcept { return t_min_; }
  [[nodiscard]] double half_bandwidth_nm(std::size_t ring) const {
    return delta_.at(ring);
  }

  /// DAC model: quantized magnitude in [0, 1].
  [[nodiscard]] double quantize_magnitude(double value) const noexcept {
    return quant_.quantize(value);
  }

  /// Detuning (nm, >= 0) that imprints the weight magnitude encoded by DAC
  /// `code` on `ring`: the Microring::imprint_weight inverse problem, served
  /// from the per-code LUT. Ring indices are positions within one chunk.
  [[nodiscard]] double detune_for_code(std::size_t ring, std::uint32_t code) const;

  /// Transmission-weighted channel sum of one arm:
  ///   sum_i a[i] * prod_j T_j(lambda_i),
  /// where ring j sits at lambda_j - detune[j]. When `crosstalk` is false
  /// only the on-channel ring attenuates (no parasitic neighbours).
  /// a and detune must have equal length <= bank_size().
  [[nodiscard]] double arm_sum(std::span<const double> a,
                               std::span<const double> detune,
                               bool crosstalk) const noexcept;

  /// Full signed dot product of pre-normalized operands. `a_mag` holds the
  /// quantized activation magnitudes, `detune` the per-element imprint
  /// detunings, and `neg[k]` selects the negative arm of the balanced PD
  /// (sign of activation folded into the weight). Inputs are processed in
  /// bank_size() chunks with per-chunk partial-sum requantization, exactly
  /// mirroring the hardware's VCSEL accumulation path.
  [[nodiscard]] double vdp_dot(std::span<const double> a_mag,
                               std::span<const double> detune,
                               std::span<const unsigned char> neg,
                               bool crosstalk, VdpScratch& scratch) const;

  /// vdp_dot under non-idealities: per-ring resonance drifts shift the
  /// operating point of every chunk and photodetector noise perturbs each
  /// balanced-PD partial sum before requantization. `effects == nullptr` or
  /// an inactive view is bit-identical to the plain overload.
  [[nodiscard]] double vdp_dot(std::span<const double> a_mag,
                               std::span<const double> detune,
                               std::span<const unsigned char> neg,
                               bool crosstalk, VdpScratch& scratch,
                               const VdpEffects* effects) const;

  /// Doubles one arm-transmission table occupies for a `total`-element
  /// operand: per bank_size() chunk, len^2 with crosstalk (every ring j
  /// attenuates every channel i) or len without (on-channel ring only).
  [[nodiscard]] std::size_t arm_table_elems(std::size_t total,
                                            bool crosstalk) const noexcept;

  /// Fill the transmission table of an all-idle arm (every ring parked on
  /// resonance, shifted only by drift) for a `total`-element operand:
  /// `out` holds arm_table_elems(total, crosstalk) doubles, column-major per
  /// chunk (out[j*len + i] = ring j's transmission at channel i) with
  /// crosstalk, per-ring otherwise. Weight-independent: one idle table
  /// serves every output row of a GEMM under the same frozen effects.
  void build_idle_table(std::size_t total, bool crosstalk,
                        const VdpEffects* effects, double* out) const;

  /// Same layout, for the arm carrying the imprint detunings `detune` (the
  /// dp/dn value a ring takes when it holds the weight). Every factor is
  /// computed with the arm-sum kernels' exact expression, so table-driven
  /// sums are bit-identical to the direct ones.
  void build_carry_table(std::span<const double> detune, bool crosstalk,
                         const VdpEffects* effects, double* out) const;

  /// vdp_dot over prebuilt transmission tables: `carry`/`idle` were filled
  /// by build_carry_table(detune, ...)/build_idle_table under the same
  /// frozen effects, and `neg[k]` selects per ring which arm carries the
  /// weight — the positive arm reads carry where neg is 0 and idle where it
  /// is 1, the negative arm the opposite. Drift is already baked into the
  /// tables; `effects` supplies only the PD-noise model (keyed on the same
  /// operand spans). Bit-identical to the effects overload of vdp_dot.
  [[nodiscard]] double vdp_dot_tbl(std::span<const double> a_mag,
                                   std::span<const double> detune,
                                   std::span<const unsigned char> neg,
                                   bool crosstalk, VdpScratch& scratch,
                                   const VdpEffects* effects,
                                   const double* carry,
                                   const double* idle) const;

  /// Eq. (8) row sums phi_i = sum_{j != i} phi(i, j) under unit input power,
  /// precomputed once per bank (the Section V-B noise floor).
  [[nodiscard]] const std::vector<double>& crosstalk_row_sums() const noexcept {
    return phi_row_sum_;
  }
  [[nodiscard]] double max_crosstalk_row_sum() const noexcept {
    return max_phi_row_sum_;
  }

 private:
  /// Drift pointer from an effects view, validated against the bank size
  /// (nullptr when absent); shared by vdp_dot and the table builders.
  [[nodiscard]] const double* drift_ptr(const VdpEffects* effects) const;

  std::size_t n_ = 0;
  UniformQuantizer quant_;
  double t_min_ = 0.0;   ///< Transmission at exact resonance.
  double full_ = 0.0;    ///< 1 - t_min: drop at exact resonance.
  std::vector<double> lambda_;    ///< Grid wavelengths (nm).
  std::vector<double> delta_;     ///< Per-ring half bandwidth (nm).
  // 64-byte aligned: the dispatched arm-sum kernels stream these every call.
  numerics::AlignedVector delta_sq_;
  numerics::AlignedVector sep_;   ///< lambda_i - lambda_j, n x n row-major.
  std::vector<double> ratio_lut_; ///< Per weight code: max(0, full/drop - 1).
  std::vector<double> phi_row_sum_;
  double max_phi_row_sum_ = 0.0;
};

}  // namespace xl::photonics
