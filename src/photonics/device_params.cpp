#include "photonics/device_params.hpp"

#include <stdexcept>

namespace xl::photonics {

void DeviceParams::validate() const {
  auto check = [](bool ok, const char* what) {
    if (!ok) throw std::invalid_argument(what);
  };
  check(eo_tuning_latency_ns > 0.0, "DeviceParams: eo_tuning_latency_ns must be > 0");
  check(eo_tuning_power_uw_per_nm >= 0.0, "DeviceParams: eo power must be >= 0");
  check(to_tuning_latency_us > 0.0, "DeviceParams: to_tuning_latency_us must be > 0");
  check(to_tuning_power_mw_per_fsr >= 0.0, "DeviceParams: to power must be >= 0");
  check(vcsel_latency_ns > 0.0, "DeviceParams: vcsel_latency_ns must be > 0");
  check(vcsel_power_mw >= 0.0, "DeviceParams: vcsel_power_mw must be >= 0");
  check(tia_latency_ns > 0.0, "DeviceParams: tia_latency_ns must be > 0");
  check(pd_latency_ns > 0.0, "DeviceParams: pd_latency_ns must be > 0");
  check(propagation_loss_db_per_cm >= 0.0, "DeviceParams: propagation loss >= 0");
  check(splitter_loss_db >= 0.0, "DeviceParams: splitter loss >= 0");
  check(combiner_loss_db >= 0.0, "DeviceParams: combiner loss >= 0");
  check(mr_through_loss_db >= 0.0, "DeviceParams: MR through loss >= 0");
  check(mr_modulation_loss_db >= 0.0, "DeviceParams: MR modulation loss >= 0");
  check(transceiver_max_rate_gbps > 0.0, "DeviceParams: transceiver rate > 0");
  check(mr_q_factor > 0.0, "DeviceParams: Q factor must be > 0");
  check(mr_fsr_nm > 0.0, "DeviceParams: FSR must be > 0");
  check(center_wavelength_nm > 0.0, "DeviceParams: wavelength must be > 0");
  check(fpv_drift_conventional_nm >= fpv_drift_optimized_nm,
        "DeviceParams: conventional drift must be >= optimized drift");
  check(laser_efficiency > 0.0 && laser_efficiency <= 1.0,
        "DeviceParams: laser efficiency in (0, 1]");
}

DeviceParams default_device_params() {
  DeviceParams p;
  p.validate();
  return p;
}

}  // namespace xl::photonics
