#include "photonics/devices.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace xl::photonics {

double MachZehnderModulator::modulate(double input_power_mw, double value) noexcept {
  const double v = std::clamp(value, 0.0, 1.0);
  return std::max(0.0, input_power_mw) * v;
}

Photodetector::Photodetector(double responsivity_a_per_w) : responsivity_(responsivity_a_per_w) {
  if (responsivity_a_per_w <= 0.0) {
    throw std::invalid_argument("Photodetector: responsivity must be positive");
  }
}

double Photodetector::detect(std::span<const double> channel_powers_mw) const noexcept {
  double total_mw = 0.0;
  for (double p : channel_powers_mw) total_mw += std::max(0.0, p);
  // mW * A/W = mA.
  return responsivity_ * total_mw;
}

BalancedPhotodetector::BalancedPhotodetector(double responsivity_a_per_w)
    : pd_(responsivity_a_per_w) {}

double BalancedPhotodetector::detect(std::span<const double> positive_arm_mw,
                                     std::span<const double> negative_arm_mw) const noexcept {
  return pd_.detect(positive_arm_mw) - pd_.detect(negative_arm_mw);
}

Vcsel::Vcsel(double peak_power_mw) : peak_power_mw_(peak_power_mw) {
  if (peak_power_mw <= 0.0) {
    throw std::invalid_argument("Vcsel: peak power must be positive");
  }
}

double Vcsel::emit(double normalized_value) const noexcept {
  return peak_power_mw_ * std::clamp(normalized_value, 0.0, 1.0);
}

UniformQuantizer::UniformQuantizer(int bits) : bits_(bits) {
  if (bits < 1 || bits > 24) {
    throw std::invalid_argument("UniformQuantizer: bits must be in [1, 24]");
  }
  levels_ = 1u << bits;
}

std::uint32_t UniformQuantizer::encode(double value) const noexcept {
  const double v = std::clamp(value, 0.0, 1.0);
  const auto code = static_cast<std::uint32_t>(
      std::lround(v * static_cast<double>(levels_ - 1)));
  return std::min(code, levels_ - 1);
}

double UniformQuantizer::decode(std::uint32_t code) const noexcept {
  const std::uint32_t c = std::min(code, levels_ - 1);
  return static_cast<double>(c) / static_cast<double>(levels_ - 1);
}

double UniformQuantizer::quantize(double value) const noexcept {
  return decode(encode(value));
}

double UniformQuantizer::max_error() const noexcept {
  return 0.5 / static_cast<double>(levels_ - 1);
}

std::vector<double> UniformQuantizer::quantize(std::span<const double> values) const {
  std::vector<double> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) out[i] = quantize(values[i]);
  return out;
}

}  // namespace xl::photonics
