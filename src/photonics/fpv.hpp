// Fabrication-process-variation (FPV) model.
//
// Substitution note (see DESIGN.md): the paper characterizes FPV from a
// fabricated 1.5x0.6 mm^2 EBeam chip; here a spatially correlated wafer-map
// Monte-Carlo model reproduces the *statistics* the paper reports —
// conventional MR designs drift up to 7.1 nm, the optimized 400/800 nm
// waveguide design up to 2.1 nm (a 70% reduction, Section IV-A).
//
// The model follows the formal treatment of chip-scale non-uniformity in
// Nikdast et al., JLT 2016 (paper ref [19]): resonance drift decomposes into
// a smooth wafer-level (systematic) component plus die-level random noise.
#pragma once

#include <cstdint>
#include <vector>

#include "numerics/rng.hpp"

namespace xl::photonics {

/// Whether a device uses the conventional geometry or the fabricated
/// FPV-tolerant geometry of Section IV-A.
enum class MrDesignKind : std::uint8_t {
  kConventional,  ///< Max |drift| ~ 7.1 nm.
  kOptimized,     ///< 400 nm input / 800 nm ring waveguides; max ~ 2.1 nm.
};

struct FpvModelConfig {
  double max_drift_conventional_nm = 7.1;
  double max_drift_optimized_nm = 2.1;
  /// Correlation length of the systematic wafer-level component, in um.
  double correlation_length_um = 800.0;
  /// Fraction of the drift budget carried by the systematic component.
  double systematic_fraction = 0.7;
  std::uint64_t seed = 42;
};

/// Samples per-device resonance drifts over a chip layout.
class FpvModel {
 public:
  explicit FpvModel(const FpvModelConfig& config = {});

  /// Drift (nm, signed) for a device of `kind` at chip position (x_um, y_um).
  /// Deterministic in (seed, kind, position).
  [[nodiscard]] double drift_nm(MrDesignKind kind, double x_um, double y_um) const;

  /// Max |drift| bound for the given design kind.
  [[nodiscard]] double max_drift_nm(MrDesignKind kind) const noexcept;

  /// Sample drifts for `count` devices laid out on a row with `pitch_um`
  /// spacing starting at (x0_um, y0_um).
  [[nodiscard]] std::vector<double> row_drifts_nm(MrDesignKind kind, std::size_t count,
                                                  double pitch_um, double x0_um = 0.0,
                                                  double y0_um = 0.0) const;

  [[nodiscard]] const FpvModelConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] double systematic_component(double x_um, double y_um) const;
  [[nodiscard]] double random_component(double x_um, double y_um) const;

  FpvModelConfig config_;
  // Random phases for the low-frequency systematic surface.
  double phase_x_;
  double phase_y_;
  double phase_xy_;
};

}  // namespace xl::photonics
