// All-pass microring resonator (MR) device model.
//
// The MR is CrossLight's workhorse: weight banks tune MRs so the loss seen by
// each activation-carrying wavelength encodes a multiplicand (Section III).
// We model the through-port transmission with the standard all-pass ring
// equations (Bogaerts et al., L&P Reviews 2012 — paper ref [18]) and expose:
//   * spectral queries (transmission vs wavelength, ER, FSR, Q),
//   * thermo-optic and electro-optic resonance shifting,
//   * the weight-imprint inverse problem: which detuning realizes a desired
//     power drop (the "weight") at the carrier wavelength.
#pragma once

#include <optional>

namespace xl::photonics {

/// Physical design parameters of an all-pass MR.
struct MicroringDesign {
  double resonance_nm = 1550.0;     ///< Designed resonant wavelength.
  double q_factor = 8000.0;         ///< Loaded quality factor.
  double fsr_nm = 18.0;             ///< Free spectral range.
  double extinction_ratio_db = 25.0;///< Power ratio between max and min transmission.
  /// Input waveguide width; the fabricated FPV-tolerant design is 400 nm.
  double input_waveguide_width_nm = 400.0;
  /// Ring waveguide width; the fabricated FPV-tolerant design is 800 nm.
  double ring_waveguide_width_nm = 800.0;

  /// True for the Section IV-A optimized geometry (400 nm / 800 nm).
  [[nodiscard]] bool is_fpv_optimized() const noexcept {
    return input_waveguide_width_nm == 400.0 && ring_waveguide_width_nm == 800.0;
  }
};

/// Runtime model of one MR, holding its current (possibly drifted and tuned)
/// resonance. All spectral math uses the Lorentzian line-shape implied by the
/// loaded Q; this matches Eq. (8)'s crosstalk model with delta = lambda/2Q.
class Microring {
 public:
  /// Throws std::invalid_argument on non-physical designs.
  explicit Microring(const MicroringDesign& design);

  [[nodiscard]] const MicroringDesign& design() const noexcept { return design_; }

  /// Half of the 3-dB linewidth, delta = lambda / (2 Q), in nm.
  [[nodiscard]] double half_bandwidth_nm() const noexcept;

  /// Current effective resonance = design + FPV drift + thermal drift + tuning.
  [[nodiscard]] double effective_resonance_nm() const noexcept;

  /// Through-port power transmission in [T_min, 1] at `wavelength_nm`.
  /// T(lambda) = 1 - (1 - T_min) * delta^2 / ((lambda - lambda_r)^2 + delta^2).
  [[nodiscard]] double transmission(double wavelength_nm) const noexcept;

  /// Drop-port fraction (power removed from the bus) = 1 - transmission.
  [[nodiscard]] double drop_fraction(double wavelength_nm) const noexcept;

  /// Minimum through-port transmission at exact resonance, from the ER.
  [[nodiscard]] double min_transmission() const noexcept;

  // --- perturbations -------------------------------------------------------
  /// Apply a fabrication-process-variation drift (set once per device).
  void set_fpv_drift_nm(double drift_nm) noexcept { fpv_drift_nm_ = drift_nm; }
  [[nodiscard]] double fpv_drift_nm() const noexcept { return fpv_drift_nm_; }

  /// Apply an ambient-thermal drift (e.g. from neighbouring heaters).
  void set_thermal_drift_nm(double drift_nm) noexcept { thermal_drift_nm_ = drift_nm; }
  [[nodiscard]] double thermal_drift_nm() const noexcept { return thermal_drift_nm_; }

  /// Apply a deliberate tuning shift (TO or EO actuation).
  void set_tuning_shift_nm(double shift_nm) noexcept { tuning_shift_nm_ = shift_nm; }
  [[nodiscard]] double tuning_shift_nm() const noexcept { return tuning_shift_nm_; }

  /// Residual error between effective resonance and the design target, in nm.
  [[nodiscard]] double residual_detuning_nm() const noexcept;

  // --- weight imprinting ---------------------------------------------------
  /// Detuning (>= 0, in nm) from exact resonance that makes the through-port
  /// transmission equal `target`, or std::nullopt when `target` lies outside
  /// [min_transmission, 1). Used to imprint a weight in [0, 1] on a carrier.
  [[nodiscard]] std::optional<double> detuning_for_transmission(double target) const;

  /// Tune this MR (relative to its current drifts) so the through-port
  /// transmission at `carrier_nm` equals `weight` (clamped to the physically
  /// achievable range). Returns the applied tuning shift in nm.
  double imprint_weight(double weight, double carrier_nm);

 private:
  MicroringDesign design_;
  double fpv_drift_nm_ = 0.0;
  double thermal_drift_nm_ = 0.0;
  double tuning_shift_nm_ = 0.0;
};

}  // namespace xl::photonics
