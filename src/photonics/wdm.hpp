// Wavelength-division-multiplexing grid and the wavelength-reuse accounting
// of Section IV-C.3.
//
// CrossLight decomposes vectors into <= 15-element chunks per VDP-unit arm
// and reuses the *same* wavelength comb across arms, so the number of unique
// laser lines per unit is bounded by the chunk size instead of the vector
// dimension. This is the mechanism behind both the laser-power savings and
// the large channel spacing that enables 16-bit resolution (Section V-B).
#pragma once

#include <cstddef>
#include <vector>

namespace xl::photonics {

/// Evenly spaced WDM comb inside one FSR.
class WavelengthGrid {
 public:
  /// `channels` wavelengths spread over `fsr_nm` starting at `start_nm`.
  /// Spacing = fsr / channels so that the comb tiles the FSR periodically.
  /// Throws std::invalid_argument on zero channels or non-positive FSR.
  WavelengthGrid(std::size_t channels, double fsr_nm, double start_nm = 1550.0);

  [[nodiscard]] std::size_t channels() const noexcept { return wavelengths_.size(); }
  [[nodiscard]] double spacing_nm() const noexcept { return spacing_nm_; }
  [[nodiscard]] double fsr_nm() const noexcept { return fsr_nm_; }
  [[nodiscard]] double wavelength_nm(std::size_t i) const { return wavelengths_.at(i); }
  [[nodiscard]] const std::vector<double>& wavelengths() const noexcept {
    return wavelengths_;
  }

  /// Minimum spectral distance between two distinct channels, accounting for
  /// the periodic FSR wrap-around seen by ring resonators.
  [[nodiscard]] double min_separation_nm(std::size_t i, std::size_t j) const;

 private:
  std::vector<double> wavelengths_;
  double spacing_nm_ = 0.0;
  double fsr_nm_ = 0.0;
};

/// Wavelength accounting for a pool of VDP units (Section IV-C.3).
struct WavelengthReusePlan {
  std::size_t vector_length = 0;      ///< Original dot-product length.
  std::size_t chunk = 0;              ///< Elements per arm (<= MRs per bank).
  std::size_t arms = 0;               ///< ceil(vector_length / chunk).
  std::size_t unique_wavelengths = 0; ///< With reuse: min(vector_length, chunk).
  std::size_t wavelengths_without_reuse = 0;  ///< One per element (prior work).
};

/// Plan the decomposition of a `vector_length`-element dot product onto arms
/// of `chunk` parallel MR products with cross-arm wavelength reuse.
/// Throws std::invalid_argument when chunk == 0.
[[nodiscard]] WavelengthReusePlan plan_wavelength_reuse(std::size_t vector_length,
                                                        std::size_t chunk);

}  // namespace xl::photonics
