// Photodetector noise and bit-error-rate model.
//
// Section I of the paper motivates FPV resilience with a link-level fact:
// a 0.25 nm resonance drift degrades the BER of photonic data traversal
// from 1e-12 to 1e-6. This module provides the receiver-side machinery to
// reproduce that claim: shot noise, thermal (Johnson) noise and laser RIN
// at the photodetector, SNR -> Q-factor -> BER for OOK signalling, and the
// BER penalty of a drifted MR filter in the path.
#pragma once

#include "photonics/device_params.hpp"
#include "photonics/microring.hpp"

namespace xl::photonics {

/// Receiver noise parameters (typical silicon-photonic link values; the
/// defaults are calibrated so an undrifted link at the paper's operating
/// point runs at BER ~ 1e-12, matching the Section I anchor).
struct ReceiverParams {
  double responsivity_a_per_w = 1.0;     ///< PD responsivity.
  double temperature_k = 300.0;          ///< For Johnson noise.
  double load_resistance_ohm = 50.0;     ///< TIA input impedance.
  double bandwidth_ghz = 10.0;           ///< Receiver electrical bandwidth.
  double rin_db_per_hz = -140.0;         ///< Laser relative intensity noise.
  double dark_current_na = 10.0;         ///< PD dark current.
};

/// Noise current variances (A^2) at the receiver for a given received
/// optical power (mW).
struct NoiseBudget {
  double shot_a2 = 0.0;
  double thermal_a2 = 0.0;
  double rin_a2 = 0.0;

  [[nodiscard]] double total_a2() const noexcept { return shot_a2 + thermal_a2 + rin_a2; }
};

/// Compute the receiver noise budget for `received_power_mw` of optical
/// signal. Throws std::invalid_argument on negative power.
[[nodiscard]] NoiseBudget receiver_noise(double received_power_mw,
                                         const ReceiverParams& params = {});

/// Electrical SNR (linear) for OOK with the given "one"-level power.
[[nodiscard]] double receiver_snr(double received_power_mw,
                                  const ReceiverParams& params = {});

/// BER for OOK from the Gaussian Q-factor approximation:
/// BER = 0.5 * erfc(Q / sqrt(2)), Q = I_1 / (sigma_1 + sigma_0).
[[nodiscard]] double ook_ber(double received_power_mw, const ReceiverParams& params = {});

/// BER of a WDM link whose receiver sits behind an MR drop filter (the
/// chip-scale interconnect scenario of refs [9]/[19]): the filter is
/// nominally on the carrier; a resonance drift of `drift_nm` detunes it,
/// shrinking the dropped "one"-level power by the Lorentzian factor and
/// degrading BER. `launch_power_mw` is the channel power at the filter.
[[nodiscard]] double link_ber_with_drift(const Microring& ring, double carrier_nm,
                                         double drift_nm, double launch_power_mw,
                                         const ReceiverParams& params = {});

/// Effective number of distinguishable levels (analog resolution in bits)
/// the receiver supports at a given received power: floor(log2(1 + SNR)/2)
/// — the Shannon-style bound for amplitude-resolved detection.
[[nodiscard]] int receiver_resolution_bits(double received_power_mw,
                                           const ReceiverParams& params = {});

}  // namespace xl::photonics
