#include "photonics/noise.hpp"

#include <cmath>
#include <stdexcept>

namespace xl::photonics {

namespace {
constexpr double kElectronCharge = 1.602176634e-19;  // C
constexpr double kBoltzmann = 1.380649e-23;          // J/K
}  // namespace

NoiseBudget receiver_noise(double received_power_mw, const ReceiverParams& params) {
  if (received_power_mw < 0.0) {
    throw std::invalid_argument("receiver_noise: negative power");
  }
  const double power_w = received_power_mw * 1e-3;
  const double photocurrent = params.responsivity_a_per_w * power_w +
                              params.dark_current_na * 1e-9;
  const double bw_hz = params.bandwidth_ghz * 1e9;

  NoiseBudget n;
  // Shot noise: 2 q I B.
  n.shot_a2 = 2.0 * kElectronCharge * photocurrent * bw_hz;
  // Thermal noise: 4 k T B / R.
  n.thermal_a2 = 4.0 * kBoltzmann * params.temperature_k * bw_hz /
                 params.load_resistance_ohm;
  // RIN: rin * I^2 * B.
  const double rin_linear = std::pow(10.0, params.rin_db_per_hz / 10.0);
  n.rin_a2 = rin_linear * photocurrent * photocurrent * bw_hz;
  return n;
}

double receiver_snr(double received_power_mw, const ReceiverParams& params) {
  const double signal_current =
      params.responsivity_a_per_w * received_power_mw * 1e-3;
  const NoiseBudget n = receiver_noise(received_power_mw, params);
  if (n.total_a2() <= 0.0) return 0.0;
  return signal_current * signal_current / n.total_a2();
}

double ook_ber(double received_power_mw, const ReceiverParams& params) {
  // OOK: "one" at received power, "zero" at ~0 (thermal/dark noise only).
  const double i_one = params.responsivity_a_per_w * received_power_mw * 1e-3;
  const double sigma_one = std::sqrt(receiver_noise(received_power_mw, params).total_a2());
  const double sigma_zero = std::sqrt(receiver_noise(0.0, params).total_a2());
  if (sigma_one + sigma_zero <= 0.0) return 0.0;
  const double q = i_one / (sigma_one + sigma_zero);
  return 0.5 * std::erfc(q / std::sqrt(2.0));
}

double link_ber_with_drift(const Microring& ring, double carrier_nm, double drift_nm,
                           double launch_power_mw, const ReceiverParams& params) {
  if (launch_power_mw < 0.0) {
    throw std::invalid_argument("link_ber_with_drift: negative launch power");
  }
  // Drop-port detection: the receiver sees the power the ring removes from
  // the bus. Nominally the resonance sits on the carrier (full drop); a
  // drift detunes the notch and the dropped power falls off Lorentzian-fast.
  Microring drifted = ring;
  drifted.set_fpv_drift_nm(ring.fpv_drift_nm() + drift_nm);
  const double received = launch_power_mw * drifted.drop_fraction(carrier_nm);
  return ook_ber(received, params);
}

int receiver_resolution_bits(double received_power_mw, const ReceiverParams& params) {
  const double snr = receiver_snr(received_power_mw, params);
  if (snr <= 0.0) return 0;
  const double bits = 0.5 * std::log2(1.0 + snr);
  return static_cast<int>(std::floor(bits));
}

}  // namespace xl::photonics
