#include "photonics/crosstalk.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace xl::photonics {

double crosstalk_coupling(double separation_nm, double delta_nm) {
  if (delta_nm <= 0.0) {
    throw std::invalid_argument("crosstalk_coupling: delta must be positive");
  }
  const double d2 = delta_nm * delta_nm;
  return d2 / (separation_nm * separation_nm + d2);
}

CrosstalkAnalysis analyze_crosstalk(const WavelengthGrid& grid,
                                    const ResolutionOptions& opts) {
  if (opts.q_factor <= 0.0) {
    throw std::invalid_argument("analyze_crosstalk: Q must be positive");
  }
  const double delta = opts.center_wavelength_nm / (2.0 * opts.q_factor);
  const std::size_t n = grid.channels();

  CrosstalkAnalysis out;
  out.noise_power.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      acc += crosstalk_coupling(grid.min_separation_nm(i, j), delta);
    }
    out.noise_power[i] = acc;  // Unit input power on every channel.
  }
  out.max_noise_power =
      n == 0 ? 0.0 : *std::max_element(out.noise_power.begin(), out.noise_power.end());
  if (out.max_noise_power > 0.0) {
    out.resolution = 1.0 / out.max_noise_power;
    out.resolution_bits =
        std::min(static_cast<int>(std::floor(out.resolution)), opts.dac_bit_cap);
    out.resolution_bits = std::max(out.resolution_bits, 0);
  } else {
    // A single noiseless channel is limited only by the transceivers.
    out.resolution = std::numeric_limits<double>::infinity();
    out.resolution_bits = opts.dac_bit_cap;
  }
  return out;
}

int bank_resolution_bits(std::size_t mrs_per_bank, double fsr_nm,
                         const ResolutionOptions& opts) {
  if (mrs_per_bank == 0) {
    throw std::invalid_argument("bank_resolution_bits: empty bank");
  }
  const WavelengthGrid grid(mrs_per_bank, fsr_nm, opts.center_wavelength_nm);
  return analyze_crosstalk(grid, opts).resolution_bits;
}

}  // namespace xl::photonics
