#include "photonics/wdm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace xl::photonics {

WavelengthGrid::WavelengthGrid(std::size_t channels, double fsr_nm, double start_nm) {
  if (channels == 0) throw std::invalid_argument("WavelengthGrid: channels == 0");
  if (fsr_nm <= 0.0) throw std::invalid_argument("WavelengthGrid: FSR must be positive");
  fsr_nm_ = fsr_nm;
  spacing_nm_ = fsr_nm / static_cast<double>(channels);
  wavelengths_.reserve(channels);
  for (std::size_t i = 0; i < channels; ++i) {
    wavelengths_.push_back(start_nm + static_cast<double>(i) * spacing_nm_);
  }
}

double WavelengthGrid::min_separation_nm(std::size_t i, std::size_t j) const {
  const double a = wavelength_nm(i);
  const double b = wavelength_nm(j);
  const double direct = std::abs(a - b);
  // Rings respond periodically with the FSR: a channel one FSR away is
  // spectrally on top of the resonance again.
  const double wrapped = fsr_nm_ - std::fmod(direct, fsr_nm_);
  return std::min(std::fmod(direct, fsr_nm_), wrapped);
}

WavelengthReusePlan plan_wavelength_reuse(std::size_t vector_length, std::size_t chunk) {
  if (chunk == 0) throw std::invalid_argument("plan_wavelength_reuse: chunk == 0");
  WavelengthReusePlan plan;
  plan.vector_length = vector_length;
  plan.chunk = chunk;
  plan.arms = vector_length == 0 ? 0 : (vector_length + chunk - 1) / chunk;
  plan.unique_wavelengths = std::min(vector_length, chunk);
  plan.wavelengths_without_reuse = vector_length;
  return plan;
}

}  // namespace xl::photonics
