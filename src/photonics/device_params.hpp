// Optoelectronic device parameters (Table II of the paper) and photonic
// signal-loss constants (Section V-A), collected in one calibration struct so
// every model in the repository draws from a single source of truth.
#pragma once

namespace xl::photonics {

/// Latency/power parameters from Table II plus the loss factors listed in
/// Section V-A. Field comments give the paper's citation for each value.
struct DeviceParams {
  // --- Tuning (Table II) ---
  double eo_tuning_latency_ns = 20.0;    ///< EO tuning latency [20].
  double eo_tuning_power_uw_per_nm = 4.0;///< EO tuning power, uW per nm shift [20].
  double to_tuning_latency_us = 4.0;     ///< TO tuning latency [17].
  double to_tuning_power_mw_per_fsr = 27.5;  ///< TO power for one full FSR [17].

  // --- Optoelectronic devices (Table II) ---
  double vcsel_latency_ns = 10.0;        ///< VCSEL modulation latency [32].
  double vcsel_power_mw = 0.66;          ///< VCSEL drive power [32].
  double tia_latency_ns = 0.15;          ///< Transimpedance amplifier [33].
  double tia_power_mw = 7.2;             ///< TIA power [33].
  double pd_latency_ns = 0.0058;         ///< Photodetector, 5.8 ps [34].
  double pd_power_mw = 2.8;              ///< Photodetector power [34].

  // --- Signal losses (Section V-A) ---
  double propagation_loss_db_per_cm = 1.0;   ///< Waveguide propagation [6].
  double splitter_loss_db = 0.13;            ///< Per 1x2 split [27].
  double combiner_loss_db = 0.9;             ///< Per combine [28].
  double mr_through_loss_db = 0.02;          ///< Per MR passed off-resonance [29].
  double mr_modulation_loss_db = 0.72;       ///< Per modulating MR [30].
  double microdisk_loss_db = 1.22;           ///< Per microdisk (Holylight) [31].
  double eo_tuning_loss_db_per_cm = 6.0;     ///< EO-tuned segment loss [20].
  double to_tuning_loss_db_per_cm = 1.0;     ///< TO-tuned segment loss [17].

  // --- Transceiver (ADC/DAC) [37]: sub-250 mW at 1-to-56 Gb/s ---
  double transceiver_max_rate_gbps = 56.0;
  double transceiver_max_power_mw = 250.0;
  /// Energy per converted bit implied by [37] (250 mW / 56 Gb/s ~= 4.46 pJ/b).
  [[nodiscard]] double transceiver_energy_pj_per_bit() const {
    return transceiver_max_power_mw / transceiver_max_rate_gbps;
  }

  // --- MR device characteristics (Section IV-A / V-B, fabricated chip) ---
  double mr_q_factor = 8000.0;          ///< Optimized MR Q (~8000).
  double mr_fsr_nm = 18.0;              ///< Free spectral range of optimized MRs.
  double center_wavelength_nm = 1550.0; ///< C-band operating point.
  /// Max FPV-induced resonance drift of conventional MR designs (Sec. IV-A).
  double fpv_drift_conventional_nm = 7.1;
  /// Max FPV-induced drift of the optimized 400/800 nm waveguide design.
  double fpv_drift_optimized_nm = 2.1;

  // --- Laser / detector ---
  double pd_sensitivity_dbm = -26.0;    ///< PD sensitivity floor.
  double laser_efficiency = 0.2;        ///< Laser wall-plug efficiency.

  /// TO heater power per nm of resonance shift, derived from mW/FSR.
  [[nodiscard]] double to_tuning_power_mw_per_nm() const {
    return to_tuning_power_mw_per_fsr / mr_fsr_nm;
  }

  /// 3-dB half-bandwidth delta = lambda / (2 Q) used by Eq. (8).
  [[nodiscard]] double mr_half_bandwidth_nm() const {
    return center_wavelength_nm / (2.0 * mr_q_factor);
  }

  /// Validate physical plausibility; throws std::invalid_argument on
  /// nonsensical values (negative powers, zero Q, ...).
  void validate() const;
};

/// Parameters of the paper's default setup.
[[nodiscard]] DeviceParams default_device_params();

}  // namespace xl::photonics
