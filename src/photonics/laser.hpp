// Laser power model — Eq. (7) of the paper:
//
//   P_laser - S_detector >= P_photo_loss + 10 * log10(N_lambda)
//
// P_laser is the required laser output (dBm), S_detector the photodetector
// sensitivity (dBm), P_photo_loss the total optical loss (dB) on the worst
// path, and N_lambda the number of WDM wavelengths sharing the laser budget.
#pragma once

#include <cstddef>

#include "photonics/device_params.hpp"
#include "photonics/losses.hpp"

namespace xl::photonics {

struct LaserRequirement {
  double output_power_dbm = 0.0;  ///< Required optical output power.
  double output_power_mw = 0.0;   ///< Same, linear.
  double wall_plug_power_mw = 0.0;///< Electrical power after efficiency.
};

/// Solve Eq. (7) for the minimum laser output power. `margin_db` adds a
/// safety margin on top of the equality point. Throws on n_wavelengths == 0.
[[nodiscard]] LaserRequirement required_laser_power(double photo_loss_db,
                                                    std::size_t n_wavelengths,
                                                    const DeviceParams& params,
                                                    double margin_db = 0.0);

/// Convenience overload taking an itemized loss budget.
[[nodiscard]] LaserRequirement required_laser_power(const LossBudget& budget,
                                                    std::size_t n_wavelengths,
                                                    const DeviceParams& params,
                                                    double margin_db = 0.0);

}  // namespace xl::photonics
