#include "photonics/microring.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "photonics/units.hpp"

namespace xl::photonics {

Microring::Microring(const MicroringDesign& design) : design_(design) {
  if (design.resonance_nm <= 0.0) {
    throw std::invalid_argument("Microring: resonance must be positive");
  }
  if (design.q_factor <= 1.0) {
    throw std::invalid_argument("Microring: Q factor must exceed 1");
  }
  if (design.fsr_nm <= 0.0) {
    throw std::invalid_argument("Microring: FSR must be positive");
  }
  if (design.extinction_ratio_db <= 0.0) {
    throw std::invalid_argument("Microring: extinction ratio must be positive");
  }
}

double Microring::half_bandwidth_nm() const noexcept {
  return design_.resonance_nm / (2.0 * design_.q_factor);
}

double Microring::effective_resonance_nm() const noexcept {
  return design_.resonance_nm + fpv_drift_nm_ + thermal_drift_nm_ + tuning_shift_nm_;
}

double Microring::min_transmission() const noexcept {
  return db_to_ratio(-design_.extinction_ratio_db);
}

double Microring::transmission(double wavelength_nm) const noexcept {
  const double delta = half_bandwidth_nm();
  const double detune = wavelength_nm - effective_resonance_nm();
  const double lorentz = delta * delta / (detune * detune + delta * delta);
  const double t_min = min_transmission();
  return 1.0 - (1.0 - t_min) * lorentz;
}

double Microring::drop_fraction(double wavelength_nm) const noexcept {
  return 1.0 - transmission(wavelength_nm);
}

double Microring::residual_detuning_nm() const noexcept {
  return effective_resonance_nm() - design_.resonance_nm;
}

std::optional<double> Microring::detuning_for_transmission(double target) const {
  const double t_min = min_transmission();
  if (target < t_min || target >= 1.0) return std::nullopt;
  // Invert T = 1 - (1 - t_min) * d^2 / (x^2 + d^2) for x >= 0.
  const double delta = half_bandwidth_nm();
  const double drop = 1.0 - target;           // in (0, 1 - t_min]
  const double full = 1.0 - t_min;            // drop at exact resonance
  const double x2 = delta * delta * (full / drop - 1.0);
  return std::sqrt(std::max(0.0, x2));
}

double Microring::imprint_weight(double weight, double carrier_nm) {
  // A weight w in [0, 1] is realized as a through-port transmission of w:
  // the MR drains (1 - w) of the carrier's power (Section III example).
  const double t_min = min_transmission();
  const double target = std::clamp(weight, t_min, 1.0 - 1e-9);
  const double detuning = detuning_for_transmission(target).value();
  // Choose the red-shifted solution; heaters and carrier-injection EO tuning
  // both realize positive-index shifts, and either sign of detuning yields
  // the same Lorentzian transmission.
  const double desired_resonance = carrier_nm - detuning;
  tuning_shift_nm_ =
      desired_resonance - (design_.resonance_nm + fpv_drift_nm_ + thermal_drift_nm_);
  return tuning_shift_nm_;
}

}  // namespace xl::photonics
