// Inter-channel crosstalk and achievable-resolution analysis
// (Section V-B, Eqs. 8-10; crosstalk model from Duong et al. [35]).
//
//   phi(i,j)  = delta^2 / ((lambda_i - lambda_j)^2 + delta^2)        (8)
//   P_noise,i = sum_{j != i} phi(i,j) * P_in[j]                      (9)
//   Resolution = 1 / max_i |P_noise,i|   (unit input power)          (10)
//
// Interpretation note (documented in EXPERIMENTS.md): the paper reads Eq. 10
// directly as the achievable number of resolution *bits* — this is the only
// reading consistent with its reported numbers (CrossLight 16 bits with
// >1 nm spacing; DEAP-CNN 4 bits; Holylight 2 bits per microdisk). We
// therefore report `resolution_bits = min(floor(1 / max P_noise), dac_cap)`
// where the cap is the 16-bit limit of the ADC/DAC transceivers [37].
#pragma once

#include <cstddef>
#include <vector>

#include "photonics/wdm.hpp"

namespace xl::photonics {

/// Eq. (8): noise coupling from channel j into channel i for MRs with 3-dB
/// half-bandwidth `delta_nm` and channel separation `separation_nm`.
[[nodiscard]] double crosstalk_coupling(double separation_nm, double delta_nm);

struct CrosstalkAnalysis {
  std::vector<double> noise_power;  ///< Eq. (9) per channel, unit input power.
  double max_noise_power = 0.0;     ///< max_i |P_noise,i|.
  double resolution = 0.0;          ///< Eq. (10): 1 / max_noise_power.
  int resolution_bits = 0;          ///< Paper interpretation, capped at dac cap.
};

struct ResolutionOptions {
  double q_factor = 8000.0;
  double center_wavelength_nm = 1550.0;
  int dac_bit_cap = 16;  ///< Transceiver resolution cap [37].
};

/// Analyze a WDM comb of MR channels: per-channel noise power under unit
/// input power on every channel, and the resulting achievable resolution.
[[nodiscard]] CrosstalkAnalysis analyze_crosstalk(const WavelengthGrid& grid,
                                                  const ResolutionOptions& opts = {});

/// Convenience: resolution bits for `mrs_per_bank` MRs evenly spread over an
/// FSR (CrossLight's wavelength-reuse layout).
[[nodiscard]] int bank_resolution_bits(std::size_t mrs_per_bank, double fsr_nm,
                                       const ResolutionOptions& opts = {});

}  // namespace xl::photonics
