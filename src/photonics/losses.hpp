// Optical loss-budget bookkeeping.
//
// Laser power (Eq. 7) is driven by the worst-case photonic loss an optical
// signal accumulates between laser and photodetector. LossBudget is an
// itemized accumulator so benches can print a per-component breakdown and
// tests can check individual contributions.
#pragma once

#include <string>
#include <vector>

#include "photonics/device_params.hpp"

namespace xl::photonics {

/// One named loss contribution in dB.
struct LossItem {
  std::string label;
  double loss_db = 0.0;
};

/// Accumulates itemized optical losses along one laser->detector path.
class LossBudget {
 public:
  LossBudget() = default;

  /// Add a named contribution; negative losses (gain) are rejected.
  void add(std::string label, double loss_db);

  [[nodiscard]] double total_db() const noexcept;
  [[nodiscard]] const std::vector<LossItem>& items() const noexcept { return items_; }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }

  /// Multi-line "label: x dB" breakdown plus total.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<LossItem> items_;
};

/// Helper describing one VDP-unit arm's optical path, from which the loss
/// budget is assembled (Sections IV-C.2/C.3 describe the path composition).
struct ArmPathSpec {
  std::size_t mrs_on_waveguide = 15;  ///< MRs the signal passes in one bank.
  std::size_t banks_per_arm = 2;      ///< Activation bank + weight bank.
  std::size_t splitter_stages = 0;    ///< log2(#arms) 1x2 split stages to reach arm.
  double waveguide_length_cm = 0.0;   ///< Total propagation length.
  double tuned_segment_cm = 0.0;      ///< Segment under active EO tuning.
  bool uses_microdisks = false;       ///< Holylight-style microdisk devices.
  std::size_t combiner_stages = 1;    ///< Combines before the balanced PD.
};

/// Assemble the loss budget for an arm path under the given device params.
/// Every MR passed contributes through-loss, the modulating MR contributes
/// modulation loss, plus propagation / splitter / combiner / tuning losses.
[[nodiscard]] LossBudget arm_loss_budget(const ArmPathSpec& spec, const DeviceParams& params);

}  // namespace xl::photonics
