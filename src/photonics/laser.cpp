#include "photonics/laser.hpp"

#include <cmath>
#include <stdexcept>

#include "photonics/units.hpp"

namespace xl::photonics {

LaserRequirement required_laser_power(double photo_loss_db, std::size_t n_wavelengths,
                                      const DeviceParams& params, double margin_db) {
  if (n_wavelengths == 0) {
    throw std::invalid_argument("required_laser_power: need at least one wavelength");
  }
  if (photo_loss_db < 0.0) {
    throw std::invalid_argument("required_laser_power: loss must be non-negative");
  }
  LaserRequirement req;
  req.output_power_dbm = params.pd_sensitivity_dbm + photo_loss_db +
                         10.0 * std::log10(static_cast<double>(n_wavelengths)) +
                         margin_db;
  req.output_power_mw = dbm_to_mw(req.output_power_dbm);
  req.wall_plug_power_mw = req.output_power_mw / params.laser_efficiency;
  return req;
}

LaserRequirement required_laser_power(const LossBudget& budget, std::size_t n_wavelengths,
                                      const DeviceParams& params, double margin_db) {
  return required_laser_power(budget.total_db(), n_wavelengths, params, margin_db);
}

}  // namespace xl::photonics
