// Unit conversion helpers for optical power and loss bookkeeping.
//
// Conventions used across the code base (also documented in DESIGN.md):
//   wavelength  : nanometres (nm)
//   device pitch: micrometres (um)
//   waveguide   : centimetres (cm) for propagation-loss accounting
//   power       : milliwatts (mW) linear, dBm logarithmic
//   loss/gain   : decibels (dB)
//   time        : nanoseconds (ns)
//   energy      : picojoules (pJ)
#pragma once

namespace xl::photonics {

/// Convert linear milliwatts to dBm. Throws std::domain_error for mw <= 0.
[[nodiscard]] double mw_to_dbm(double mw);
/// Convert dBm to linear milliwatts.
[[nodiscard]] double dbm_to_mw(double dbm) noexcept;
/// Convert a linear power ratio (>0) to dB.
[[nodiscard]] double ratio_to_db(double ratio);
/// Convert dB to a linear power ratio.
[[nodiscard]] double db_to_ratio(double db) noexcept;

/// Apply `loss_db` of attenuation to a linear power in mW.
[[nodiscard]] double attenuate_mw(double power_mw, double loss_db) noexcept;

inline constexpr double kSpeedOfLightMps = 2.99792458e8;

/// Frequency (GHz) of a vacuum wavelength given in nm.
[[nodiscard]] double wavelength_nm_to_freq_ghz(double wavelength_nm);

}  // namespace xl::photonics
