// Functional models of the auxiliary optoelectronic devices in the
// Broadcast-and-Weight path (Fig. 1 / Fig. 3): Mach-Zehnder modulators,
// (balanced) photodetectors, VCSELs, and ADC/DAC converters.
//
// These provide the signal-level behaviour used by the functional VDP
// simulator (core/vdp_simulator); power/latency numbers live in DeviceParams.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace xl::photonics {

/// Mach-Zehnder modulator: imprints a normalized value in [0, 1] onto the
/// optical power of one wavelength (Section III, Fig. 1).
class MachZehnderModulator {
 public:
  /// Output power after imprinting `value` on an input of `input_power_mw`.
  /// Values outside [0, 1] are clamped (the drive DAC saturates).
  [[nodiscard]] static double modulate(double input_power_mw, double value) noexcept;
};

/// Ideal photodetector: accumulates the power over all wavelengths into one
/// photocurrent (summation step of the B&W protocol).
class Photodetector {
 public:
  explicit Photodetector(double responsivity_a_per_w = 1.0);

  /// Photocurrent (mA) for the given per-wavelength powers (mW).
  [[nodiscard]] double detect(std::span<const double> channel_powers_mw) const noexcept;

  [[nodiscard]] double responsivity() const noexcept { return responsivity_; }

 private:
  double responsivity_;
};

/// Balanced photodetector subtracting a "negative" arm from a "positive" arm,
/// the standard trick for signed weights in noncoherent accelerators.
class BalancedPhotodetector {
 public:
  explicit BalancedPhotodetector(double responsivity_a_per_w = 1.0);

  [[nodiscard]] double detect(std::span<const double> positive_arm_mw,
                              std::span<const double> negative_arm_mw) const noexcept;

 private:
  Photodetector pd_;
};

/// VCSEL used to re-emit electrical partial sums into the photonic domain for
/// the final accumulation stage (Section IV-C.3, bottom right of Fig. 3).
class Vcsel {
 public:
  /// Peak optical output power of the hybrid-integrated VCSEL [32].
  explicit Vcsel(double peak_power_mw = 0.66);

  /// Optical output encoding a normalized value in [0, 1] (clamped).
  [[nodiscard]] double emit(double normalized_value) const noexcept;

  [[nodiscard]] double peak_power_mw() const noexcept { return peak_power_mw_; }

 private:
  double peak_power_mw_;
};

/// Uniform mid-rise quantizer modelling the ADC/DAC transceivers [37].
/// Values are clipped to [0, 1] and quantized to 2^bits levels.
class UniformQuantizer {
 public:
  /// Throws std::invalid_argument unless 1 <= bits <= 24.
  explicit UniformQuantizer(int bits);

  [[nodiscard]] int bits() const noexcept { return bits_; }
  [[nodiscard]] std::uint32_t levels() const noexcept { return levels_; }

  /// Quantize a normalized value in [0, 1].
  [[nodiscard]] double quantize(double value) const noexcept;
  /// Integer code in [0, levels - 1] for a normalized value.
  [[nodiscard]] std::uint32_t encode(double value) const noexcept;
  /// Normalized value for an integer code.
  [[nodiscard]] double decode(std::uint32_t code) const noexcept;
  /// Largest representable quantization error.
  [[nodiscard]] double max_error() const noexcept;

  [[nodiscard]] std::vector<double> quantize(std::span<const double> values) const;

 private:
  int bits_;
  std::uint32_t levels_;
};

}  // namespace xl::photonics
