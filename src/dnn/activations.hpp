// Elementwise nonlinearities. On the accelerator these correspond to the
// electro-absorption-modulator nonlinear unit of the photonic neuron
// (Section III); in the DNN substrate they are ordinary layers.
#pragma once

#include "dnn/layer.hpp"
#include "numerics/rng.hpp"

namespace xl::dnn {

class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string kind() const override { return "relu"; }
  [[nodiscard]] LayerKind kind_id() const noexcept override { return LayerKind::kActivation; }
  [[nodiscard]] Shape output_shape(const Shape& input_shape) const override {
    return input_shape;
  }
  [[nodiscard]] bool is_activation() const override { return true; }
  [[nodiscard]] bool supports_eval_into() const noexcept override { return true; }
  void eval_into(const Shape& input_shape, std::span<const float> input,
                 std::span<float> output) override;

 private:
  Tensor cached_input_;
};

class Sigmoid : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string kind() const override { return "sigmoid"; }
  [[nodiscard]] LayerKind kind_id() const noexcept override { return LayerKind::kActivation; }
  [[nodiscard]] Shape output_shape(const Shape& input_shape) const override {
    return input_shape;
  }
  [[nodiscard]] bool is_activation() const override { return true; }
  [[nodiscard]] bool supports_eval_into() const noexcept override { return true; }
  void eval_into(const Shape& input_shape, std::span<const float> input,
                 std::span<float> output) override;

 private:
  Tensor cached_output_;
};

class Tanh : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string kind() const override { return "tanh"; }
  [[nodiscard]] LayerKind kind_id() const noexcept override { return LayerKind::kActivation; }
  [[nodiscard]] Shape output_shape(const Shape& input_shape) const override {
    return input_shape;
  }
  [[nodiscard]] bool is_activation() const override { return true; }
  [[nodiscard]] bool supports_eval_into() const noexcept override { return true; }
  void eval_into(const Shape& input_shape, std::span<const float> input,
                 std::span<float> output) override;

 private:
  Tensor cached_output_;
};

/// Inverted dropout; identity during inference.
class Dropout : public Layer {
 public:
  /// `rate` in [0, 1): fraction of units dropped during training.
  Dropout(double rate, std::uint64_t seed);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string kind() const override { return "dropout"; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] Shape output_shape(const Shape& input_shape) const override {
    return input_shape;
  }
  /// Identity at inference (inverted dropout scales at train time only).
  [[nodiscard]] bool inference_identity() const noexcept override { return true; }

 private:
  double rate_;
  xl::numerics::Rng rng_;
  std::vector<float> mask_;
};

}  // namespace xl::dnn
