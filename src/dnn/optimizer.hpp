// First-order optimizers operating on a network's ParamRef list.
#pragma once

#include <vector>

#include "dnn/layer.hpp"

namespace xl::dnn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Apply one update using the accumulated gradients, then zero them.
  virtual void step(const std::vector<ParamRef>& params) = 0;

  /// Zero all gradient accumulators without updating.
  static void zero_gradients(const std::vector<ParamRef>& params);
};

/// SGD with classical momentum and optional L2 weight decay.
class Sgd : public Optimizer {
 public:
  explicit Sgd(double learning_rate, double momentum = 0.9, double weight_decay = 0.0);
  void step(const std::vector<ParamRef>& params) override;

  void set_learning_rate(double lr) noexcept { lr_ = lr; }
  [[nodiscard]] double learning_rate() const noexcept { return lr_; }

 private:
  double lr_;
  double momentum_;
  double weight_decay_;
  std::vector<std::vector<float>> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
 public:
  explicit Adam(double learning_rate = 1e-3, double beta1 = 0.9, double beta2 = 0.999,
                double epsilon = 1e-8);
  void step(const std::vector<ParamRef>& params) override;

  void set_learning_rate(double lr) noexcept { lr_ = lr; }
  [[nodiscard]] double learning_rate() const noexcept { return lr_; }

 private:
  double lr_, beta1_, beta2_, epsilon_;
  long step_count_ = 0;
  std::vector<std::vector<float>> m_, v_;
};

}  // namespace xl::dnn
