#include "dnn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace xl::dnn {

void Optimizer::zero_gradients(const std::vector<ParamRef>& params) {
  for (const ParamRef& p : params) p.grad->fill(0.0F);
}

Sgd::Sgd(double learning_rate, double momentum, double weight_decay)
    : lr_(learning_rate), momentum_(momentum), weight_decay_(weight_decay) {
  if (learning_rate <= 0.0) throw std::invalid_argument("Sgd: lr must be positive");
  if (momentum < 0.0 || momentum >= 1.0) throw std::invalid_argument("Sgd: momentum in [0,1)");
  if (weight_decay < 0.0) throw std::invalid_argument("Sgd: weight decay must be >= 0");
}

void Sgd::step(const std::vector<ParamRef>& params) {
  if (velocity_.size() != params.size()) {
    velocity_.clear();
    velocity_.reserve(params.size());
    for (const ParamRef& p : params) velocity_.emplace_back(p.value->numel(), 0.0F);
  }
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Tensor& w = *params[pi].value;
    Tensor& g = *params[pi].grad;
    std::vector<float>& vel = velocity_[pi];
    if (vel.size() != w.numel()) throw std::logic_error("Sgd: parameter set changed");
    const auto lr = static_cast<float>(lr_);
    const auto mom = static_cast<float>(momentum_);
    const auto wd = static_cast<float>(weight_decay_);
    for (std::size_t i = 0; i < w.numel(); ++i) {
      const float grad = g[i] + wd * w[i];
      vel[i] = mom * vel[i] - lr * grad;
      w[i] += vel[i];
    }
    g.fill(0.0F);
  }
}

Adam::Adam(double learning_rate, double beta1, double beta2, double epsilon)
    : lr_(learning_rate), beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {
  if (learning_rate <= 0.0) throw std::invalid_argument("Adam: lr must be positive");
  if (beta1 < 0.0 || beta1 >= 1.0 || beta2 < 0.0 || beta2 >= 1.0) {
    throw std::invalid_argument("Adam: betas must be in [0, 1)");
  }
}

void Adam::step(const std::vector<ParamRef>& params) {
  if (m_.size() != params.size()) {
    m_.clear();
    v_.clear();
    for (const ParamRef& p : params) {
      m_.emplace_back(p.value->numel(), 0.0F);
      v_.emplace_back(p.value->numel(), 0.0F);
    }
    step_count_ = 0;
  }
  ++step_count_;
  const double bc1 = 1.0 - std::pow(beta1_, step_count_);
  const double bc2 = 1.0 - std::pow(beta2_, step_count_);
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Tensor& w = *params[pi].value;
    Tensor& g = *params[pi].grad;
    std::vector<float>& m = m_[pi];
    std::vector<float>& v = v_[pi];
    if (m.size() != w.numel()) throw std::logic_error("Adam: parameter set changed");
    for (std::size_t i = 0; i < w.numel(); ++i) {
      m[i] = static_cast<float>(beta1_ * m[i] + (1.0 - beta1_) * g[i]);
      v[i] = static_cast<float>(beta2_ * v[i] + (1.0 - beta2_) * g[i] * g[i]);
      const double mhat = m[i] / bc1;
      const double vhat = v[i] / bc2;
      w[i] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + epsilon_));
    }
    g.fill(0.0F);
  }
}

}  // namespace xl::dnn
