#include "dnn/reshape.hpp"

#include <stdexcept>

namespace xl::dnn {

Shape Flatten::output_shape(const Shape& input_shape) const {
  if (input_shape.size() < 2) {
    throw std::invalid_argument("Flatten: input must have a batch dimension");
  }
  std::size_t features = 1;
  for (std::size_t i = 1; i < input_shape.size(); ++i) features *= input_shape[i];
  return {input_shape[0], features};
}

Tensor Flatten::forward(const Tensor& input, bool /*training*/) {
  cached_input_shape_ = input.shape();
  Tensor out = input;
  out.reshape(output_shape(input.shape()));
  return out;
}

Tensor Flatten::backward(const Tensor& grad_output) {
  if (cached_input_shape_.empty()) throw std::logic_error("Flatten::backward before forward");
  Tensor grad = grad_output;
  grad.reshape(cached_input_shape_);
  return grad;
}

}  // namespace xl::dnn
