#include "dnn/datasets.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numerics/rng.hpp"

namespace xl::dnn {

namespace {

using xl::numerics::Rng;

/// Band-limited random field: sum of oriented sinusoids. Values roughly in
/// [-1, 1]; deterministic in the provided RNG state.
struct Prototype {
  std::vector<float> pixels;  ///< C * H * W
};

Prototype make_prototype(const SyntheticSpec& spec, Rng& rng) {
  constexpr int kComponents = 6;
  Prototype proto;
  proto.pixels.assign(spec.channels * spec.height * spec.width, 0.0F);
  for (std::size_t c = 0; c < spec.channels; ++c) {
    for (int k = 0; k < kComponents; ++k) {
      const double freq = rng.uniform(0.5, 3.0);
      const double theta = rng.uniform(0.0, M_PI);
      const double phase = rng.uniform(0.0, 2.0 * M_PI);
      const double amp = rng.uniform(0.4, 1.0) / kComponents;
      const double fx = freq * std::cos(theta) * 2.0 * M_PI / static_cast<double>(spec.width);
      const double fy = freq * std::sin(theta) * 2.0 * M_PI / static_cast<double>(spec.height);
      for (std::size_t y = 0; y < spec.height; ++y) {
        for (std::size_t x = 0; x < spec.width; ++x) {
          proto.pixels[(c * spec.height + y) * spec.width + x] += static_cast<float>(
              amp * std::sin(fx * static_cast<double>(x) + fy * static_cast<double>(y) +
                             phase));
        }
      }
    }
  }
  return proto;
}

/// Blend class prototypes with a shared prototype to control task difficulty.
std::vector<Prototype> make_class_prototypes(const SyntheticSpec& spec, Rng& rng) {
  const Prototype shared = make_prototype(spec, rng);
  std::vector<Prototype> protos;
  protos.reserve(spec.classes);
  const auto w_shared = static_cast<float>(std::sqrt(spec.prototype_overlap));
  const auto w_unique = static_cast<float>(std::sqrt(1.0 - spec.prototype_overlap));
  for (std::size_t c = 0; c < spec.classes; ++c) {
    Prototype p = make_prototype(spec, rng);
    for (std::size_t i = 0; i < p.pixels.size(); ++i) {
      p.pixels[i] = w_unique * p.pixels[i] + w_shared * shared.pixels[i];
    }
    protos.push_back(std::move(p));
  }
  return protos;
}

/// Render one sample: translate the prototype, add noise, map to [0, 1].
void render_sample(const SyntheticSpec& spec, const Prototype& proto, Rng& rng,
                   float* out /* C*H*W */) {
  const auto jitter = static_cast<std::int64_t>(spec.jitter_px);
  const std::int64_t dx = jitter == 0 ? 0 : rng.uniform_int(-jitter, jitter);
  const std::int64_t dy = jitter == 0 ? 0 : rng.uniform_int(-jitter, jitter);
  const auto h = static_cast<std::int64_t>(spec.height);
  const auto w = static_cast<std::int64_t>(spec.width);
  for (std::size_t c = 0; c < spec.channels; ++c) {
    for (std::int64_t y = 0; y < h; ++y) {
      for (std::int64_t x = 0; x < w; ++x) {
        const std::int64_t sy = std::clamp(y + dy, std::int64_t{0}, h - 1);
        const std::int64_t sx = std::clamp(x + dx, std::int64_t{0}, w - 1);
        const float base =
            proto.pixels[(c * spec.height + static_cast<std::size_t>(sy)) * spec.width +
                         static_cast<std::size_t>(sx)];
        const float noisy =
            base + static_cast<float>(rng.gaussian(0.0, spec.noise_std));
        // Prototype amplitude ~[-1, 1]; map affinely to [0, 1] and clamp.
        out[(c * spec.height + static_cast<std::size_t>(y)) * spec.width +
            static_cast<std::size_t>(x)] = std::clamp(0.5F + 0.5F * noisy, 0.0F, 1.0F);
      }
    }
  }
}

void validate(const SyntheticSpec& spec) {
  if (spec.classes < 2) throw std::invalid_argument("SyntheticSpec: need >= 2 classes");
  if (spec.height == 0 || spec.width == 0 || spec.channels == 0) {
    throw std::invalid_argument("SyntheticSpec: zero image dimension");
  }
  if (spec.noise_std < 0.0) throw std::invalid_argument("SyntheticSpec: negative noise");
  if (spec.prototype_overlap < 0.0 || spec.prototype_overlap >= 1.0) {
    throw std::invalid_argument("SyntheticSpec: overlap must be in [0, 1)");
  }
}

}  // namespace

Dataset generate_classification(const SyntheticSpec& spec, std::size_t count,
                                std::uint64_t salt) {
  validate(spec);
  Rng proto_rng(spec.seed);  // Prototypes depend only on the base seed so
                             // train/test splits share class identities.
  const std::vector<Prototype> protos = make_class_prototypes(spec, proto_rng);

  Rng sample_rng(spec.seed ^ (0x5A3713D5EEDULL + salt));
  Dataset data;
  data.classes = spec.classes;
  data.images = Tensor({count, spec.channels, spec.height, spec.width});
  data.labels.resize(count);
  const std::size_t stride = spec.channels * spec.height * spec.width;
  for (std::size_t i = 0; i < count; ++i) {
    const auto label =
        static_cast<std::size_t>(sample_rng.uniform_int(0, static_cast<std::int64_t>(spec.classes) - 1));
    data.labels[i] = label;
    render_sample(spec, protos[label], sample_rng, data.images.data() + i * stride);
  }
  return data;
}

PairDataset generate_pairs(const SyntheticSpec& spec, std::size_t pair_count,
                           std::uint64_t salt) {
  validate(spec);
  Rng proto_rng(spec.seed);
  const std::vector<Prototype> protos = make_class_prototypes(spec, proto_rng);

  Rng rng(spec.seed ^ (0xFA125EEDULL + salt));
  PairDataset data;
  data.images_a = Tensor({pair_count, spec.channels, spec.height, spec.width});
  data.images_b = Tensor({pair_count, spec.channels, spec.height, spec.width});
  data.same.resize(pair_count);
  const std::size_t stride = spec.channels * spec.height * spec.width;
  const auto n_classes = static_cast<std::int64_t>(spec.classes);
  for (std::size_t i = 0; i < pair_count; ++i) {
    const bool genuine = rng.bernoulli(0.5);
    const auto ca = static_cast<std::size_t>(rng.uniform_int(0, n_classes - 1));
    std::size_t cb = ca;
    if (!genuine) {
      while (cb == ca) {
        cb = static_cast<std::size_t>(rng.uniform_int(0, n_classes - 1));
      }
    }
    data.same[i] = genuine ? 1 : 0;
    render_sample(spec, protos[ca], rng, data.images_a.data() + i * stride);
    render_sample(spec, protos[cb], rng, data.images_b.data() + i * stride);
  }
  return data;
}

Tensor batch_images(const Dataset& data, std::size_t start, std::size_t size) {
  if (start + size > data.size()) throw std::out_of_range("batch_images: out of range");
  const Shape& s = data.images.shape();
  Tensor batch({size, s[1], s[2], s[3]});
  const std::size_t stride = s[1] * s[2] * s[3];
  std::copy_n(data.images.data() + start * stride, size * stride, batch.data());
  return batch;
}

std::vector<std::size_t> batch_labels(const Dataset& data, std::size_t start,
                                      std::size_t size) {
  if (start + size > data.size()) throw std::out_of_range("batch_labels: out of range");
  return {data.labels.begin() + static_cast<std::ptrdiff_t>(start),
          data.labels.begin() + static_cast<std::ptrdiff_t>(start + size)};
}

SyntheticSpec signmnist_like() {
  SyntheticSpec s;
  s.classes = 24;  // 26 letters minus the motion-dependent J and Z.
  s.height = 28;
  s.width = 28;
  s.channels = 1;
  s.noise_std = 0.10;
  s.prototype_overlap = 0.10;
  s.seed = 101;
  return s;
}

SyntheticSpec cifar10_like() {
  SyntheticSpec s;
  s.classes = 10;
  s.height = 32;
  s.width = 32;
  s.channels = 3;
  s.noise_std = 0.22;
  s.prototype_overlap = 0.35;
  s.seed = 202;
  return s;
}

SyntheticSpec stl10_like(std::size_t size) {
  SyntheticSpec s;
  s.classes = 10;
  s.height = size;
  s.width = size;
  s.channels = 3;
  s.noise_std = 0.30;
  s.prototype_overlap = 0.55;  // Hardest task: Fig. 5's most resolution-
                               // sensitive curve.
  s.seed = 303;
  return s;
}

SyntheticSpec omniglot_like(std::size_t size) {
  SyntheticSpec s;
  s.classes = 30;  // Many character classes, few samples each.
  s.height = size;
  s.width = size;
  s.channels = 1;
  s.noise_std = 0.15;
  s.prototype_overlap = 0.25;
  s.seed = 404;
  return s;
}

}  // namespace xl::dnn
