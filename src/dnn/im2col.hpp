// im2col lowering shared by Conv2d::forward and the batched photonic engine.
//
// A convolution over an NCHW input is a GEMM over patches: output pixel
// (n, oy, ox) is the dot product of patch row (n, oy, ox) with filter row
// co. Row order is (n, oy, ox) major-to-minor and column order (ci, ky, kx),
// matching the (C_out, C_in, k, k) weight layout — so conv forward becomes
// patches * W^T plus bias, and the photonic engine can hand whole batches to
// one photonic_matmul instead of issuing per-pixel scalar dot products
// (Section IV-C.1's lowering, batched).
#pragma once

#include "dnn/conv2d.hpp"

namespace xl::dnn {

/// Shape accounting for an im2col lowering.
struct Im2colShape {
  std::size_t batch = 0;
  std::size_t h_out = 0;
  std::size_t w_out = 0;
  std::size_t rows = 0;  ///< batch * h_out * w_out.
  std::size_t cols = 0;  ///< in_channels * kernel * kernel.
};

/// Shape of the patch matrix for `input_shape` under `cfg`.
/// Throws std::invalid_argument on rank/channel mismatch or an input
/// smaller than the kernel.
[[nodiscard]] Im2colShape im2col_shape(const Shape& input_shape,
                                       const Conv2dConfig& cfg);

/// Lower an NCHW input tensor to its (rows x cols) patch matrix (rank-2
/// Tensor). Out-of-bounds taps (zero padding) contribute exact zeros.
[[nodiscard]] Tensor im2col(const Tensor& input, const Conv2dConfig& cfg);

}  // namespace xl::dnn
