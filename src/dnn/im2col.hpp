// im2col lowering shared by Conv2d::forward and the batched photonic engine.
//
// A convolution over an NCHW input is a GEMM over patches: output pixel
// (n, oy, ox) is the dot product of patch row (n, oy, ox) with filter row
// co. Row order is (n, oy, ox) major-to-minor and column order (ci, ky, kx),
// matching the (C_out, C_in, k, k) weight layout — so conv forward becomes
// patches * W^T plus bias, and the photonic engine can hand whole batches to
// one photonic_matmul instead of issuing per-pixel scalar dot products
// (Section IV-C.1's lowering, batched).
#pragma once

#include <cstdint>
#include <vector>

#include "dnn/conv2d.hpp"

namespace xl::dnn {

/// Shape accounting for an im2col lowering.
struct Im2colShape {
  std::size_t batch = 0;
  std::size_t h_out = 0;
  std::size_t w_out = 0;
  std::size_t rows = 0;  ///< batch * h_out * w_out.
  std::size_t cols = 0;  ///< in_channels * kernel * kernel.
};

/// Shape of the patch matrix for `input_shape` under `cfg`.
/// Throws std::invalid_argument on rank/channel mismatch or an input
/// smaller than the kernel.
[[nodiscard]] Im2colShape im2col_shape(const Shape& input_shape,
                                       const Conv2dConfig& cfg);

/// Lower an NCHW input tensor to its (rows x cols) patch matrix (rank-2
/// Tensor). Out-of-bounds taps (zero padding) contribute exact zeros.
[[nodiscard]] Tensor im2col(const Tensor& input, const Conv2dConfig& cfg);

/// Precomputed gather map for im2col over a single sample (batch = 1 basis).
///
/// `src[i]` holds the flat (C, H, W) sample index feeding patch element `i`,
/// or -1 for a zero-padding tap. Because the row order is (n, oy, ox) with n
/// outermost and every sample is laid out identically, the one-sample map
/// covers any batch: sample n's patch block is the same gather applied to
/// `input + n * sample_numel`. Compiled once per (shape, config) by
/// core::ExecutionPlan so the serving hot path never re-derives tap indices.
struct Im2colPlan {
  Im2colShape shape;         ///< Basis shape with batch == 1.
  std::size_t sample_numel = 0;  ///< C * H * W of one input sample.
  std::vector<std::int32_t> src;  ///< rows * cols entries; -1 = padding tap.
};

/// Build the gather map for one sample of `sample_shape` (rank-4, batch dim
/// ignored / treated as 1) under `cfg`. Throws like im2col_shape, plus
/// std::invalid_argument when a sample exceeds int32 indexing.
[[nodiscard]] Im2colPlan plan_im2col(const Shape& sample_shape,
                                     const Conv2dConfig& cfg);

/// Apply the gather for ONE sample: fills `out` (rows * cols floats for the
/// batch-1 basis) from `sample` (sample_numel floats). Never allocates;
/// bit-identical to the corresponding block of im2col() because padding taps
/// write the same exact 0.0f and real taps copy the same float.
void im2col_gather(const Im2colPlan& plan, const float* sample,
                   float* out) noexcept;

}  // namespace xl::dnn
