// Minimal dense float tensor for the from-scratch DNN substrate.
//
// Substitution note (DESIGN.md): the paper trains its four models with
// TensorFlow 2.3 + QKeras; offline we hand-roll the training stack. Layout
// is NCHW for image tensors and (N, features) for dense tensors; data is
// contiguous row-major float32 (matching the precision the accelerator's
// 16-bit datapath is quantized from).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace xl::dnn {

/// Tensor shape; index 0 is always the batch dimension for activations.
using Shape = std::vector<std::size_t>;

[[nodiscard]] std::size_t shape_numel(const Shape& shape) noexcept;
[[nodiscard]] std::string shape_to_string(const Shape& shape);

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape);
  Tensor(Shape shape, float fill);

  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] std::size_t numel() const noexcept { return data_.size(); }
  [[nodiscard]] std::size_t dim(std::size_t i) const { return shape_.at(i); }
  [[nodiscard]] std::size_t rank() const noexcept { return shape_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  float* data() noexcept { return data_.data(); }
  [[nodiscard]] const float* data() const noexcept { return data_.data(); }
  [[nodiscard]] std::span<const float> span() const noexcept { return data_; }
  [[nodiscard]] std::span<float> span() noexcept { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// NCHW element accessors (rank-4 tensors).
  float& at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w);
  [[nodiscard]] float at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const;
  /// (N, F) element accessors (rank-2 tensors).
  float& at2(std::size_t n, std::size_t f);
  [[nodiscard]] float at2(std::size_t n, std::size_t f) const;

  void fill(float value) noexcept;
  /// Reshape in place; total element count must be preserved.
  void reshape(Shape new_shape);

  /// Elementwise helpers used by optimizers and losses.
  Tensor& operator+=(const Tensor& rhs);
  Tensor& operator-=(const Tensor& rhs);
  Tensor& operator*=(float s) noexcept;

  [[nodiscard]] float max_abs() const noexcept;
  [[nodiscard]] float sum() const noexcept;

  /// Extract batch row n of a rank-2 tensor as a vector copy.
  [[nodiscard]] std::vector<float> row(std::size_t n) const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace xl::dnn
