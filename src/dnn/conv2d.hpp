// 2-D convolution layer, NCHW layout, square kernels, configurable stride
// and symmetric zero padding. This is the layer the CrossLight CONV VDP
// units accelerate: each output pixel is a dot product of length k*k*C_in
// (Section IV-C.1, Eqs. 1-4).
#pragma once

#include "dnn/layer.hpp"
#include "numerics/rng.hpp"

namespace xl::dnn {

struct Conv2dConfig {
  std::size_t in_channels = 1;
  std::size_t out_channels = 1;
  std::size_t kernel = 3;
  std::size_t stride = 1;
  std::size_t padding = 0;
};

class Conv2d : public Layer {
 public:
  Conv2d(const Conv2dConfig& config, xl::numerics::Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> parameters() override;
  [[nodiscard]] std::string kind() const override { return "conv2d"; }
  [[nodiscard]] LayerKind kind_id() const noexcept override { return LayerKind::kConv; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] Shape output_shape(const Shape& input_shape) const override;

  [[nodiscard]] const Conv2dConfig& config() const noexcept { return config_; }
  Tensor& weights() noexcept { return w_; }
  Tensor& bias() noexcept { return b_; }

 private:
  [[nodiscard]] std::size_t out_extent(std::size_t in_extent) const;

  Conv2dConfig config_;
  Tensor w_;   ///< (C_out, C_in, k, k)
  Tensor b_;   ///< (C_out)
  Tensor dw_, db_;
  Tensor cached_input_;
  Tensor effective_w_;
};

}  // namespace xl::dnn
