#include "dnn/network.hpp"

#include <sstream>
#include <stdexcept>

#include "dnn/conv2d.hpp"
#include "dnn/dense.hpp"

namespace xl::dnn {

Network& Network::add(LayerPtr layer) {
  if (!layer) throw std::invalid_argument("Network::add: null layer");
  layer->set_quantization(&quant_);
  layers_.push_back(std::move(layer));
  ranges_.emplace_back();
  return *this;
}

Tensor Network::forward(const Tensor& input, bool training) {
  Tensor x = input;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    x = layers_[i]->forward(x, training);
    if (quant_.activations_enabled() && layers_[i]->is_activation()) {
      if (training) ranges_[i].observe(x.span());
      ranges_[i].quantize_inplace(x.span(), quant_.activation_bits);
    }
  }
  return x;
}

Tensor Network::backward(const Tensor& grad) {
  Tensor g = grad;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    g = layers_[i]->backward(g);
  }
  return g;
}

std::vector<ParamRef> Network::parameters() {
  std::vector<ParamRef> out;
  for (const LayerPtr& l : layers_) {
    for (const ParamRef& p : l->parameters()) out.push_back(p);
  }
  return out;
}

std::size_t Network::parameter_count() {
  std::size_t acc = 0;
  for (const LayerPtr& l : layers_) acc += l->parameter_count();
  return acc;
}

void Network::set_quantization(const QuantizationSpec& spec) {
  quant_ = spec;
  // Layers hold a pointer to quant_, so nothing else to propagate.
}

void Network::reset_activation_ranges() {
  for (ActivationRange& r : ranges_) r.reset();
}

Shape Network::output_shape(const Shape& input_shape) const {
  Shape s = input_shape;
  for (const LayerPtr& l : layers_) s = l->output_shape(s);
  return s;
}

std::vector<LayerSpec> Network::export_specs(const Shape& input_shape) const {
  std::vector<LayerSpec> specs;
  Shape s = input_shape;
  int conv_idx = 0;
  int dense_idx = 0;
  for (const LayerPtr& l : layers_) {
    const Shape out = l->output_shape(s);
    switch (l->kind_id()) {
      case LayerKind::kConv: {
        const auto& conv = static_cast<const Conv2d&>(*l);
        specs.push_back(conv_spec("conv" + std::to_string(++conv_idx),
                                  conv.config().in_channels, conv.config().out_channels,
                                  conv.config().kernel, out[2], out[3],
                                  conv.config().stride));
        break;
      }
      case LayerKind::kDense: {
        const auto& dense = static_cast<const Dense&>(*l);
        specs.push_back(dense_spec("fc" + std::to_string(++dense_idx),
                                   dense.in_features(), dense.out_features()));
        break;
      }
      case LayerKind::kPool: {
        LayerSpec p;
        p.kind = LayerKind::kPool;
        p.name = l->kind();
        specs.push_back(p);
        break;
      }
      case LayerKind::kActivation: {
        LayerSpec a;
        a.kind = LayerKind::kActivation;
        a.name = l->kind();
        specs.push_back(a);
        break;
      }
      case LayerKind::kOther:
        break;  // Flatten, dropout, batchnorm: no compute mapped.
    }
    s = out;
  }
  return specs;
}

std::string Network::summary(const Shape& input_shape) const {
  std::ostringstream os;
  Shape s = input_shape;
  for (const LayerPtr& l : layers_) {
    s = l->output_shape(s);
    os << "  " << l->describe() << " -> " << shape_to_string(s) << '\n';
  }
  return os.str();
}

}  // namespace xl::dnn
