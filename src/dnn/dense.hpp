// Fully connected (dense) layer: y = x W^T + b, x is (N, in), W is (out, in).
#pragma once

#include <cstdint>

#include "dnn/layer.hpp"
#include "numerics/rng.hpp"

namespace xl::dnn {

class Dense : public Layer {
 public:
  /// He-uniform initialization using `rng`.
  Dense(std::size_t in_features, std::size_t out_features, xl::numerics::Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> parameters() override;
  [[nodiscard]] std::string kind() const override { return "dense"; }
  [[nodiscard]] LayerKind kind_id() const noexcept override { return LayerKind::kDense; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] Shape output_shape(const Shape& input_shape) const override;

  [[nodiscard]] std::size_t in_features() const noexcept { return in_; }
  [[nodiscard]] std::size_t out_features() const noexcept { return out_; }

  Tensor& weights() noexcept { return w_; }
  Tensor& bias() noexcept { return b_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Tensor w_, b_;
  Tensor dw_, db_;
  Tensor cached_input_;
  Tensor effective_w_;  ///< Fake-quantized view used when QAT is active.
};

}  // namespace xl::dnn
