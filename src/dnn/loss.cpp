#include "dnn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace xl::dnn {

Tensor softmax(const Tensor& logits) {
  if (logits.rank() != 2) throw std::invalid_argument("softmax: rank-2 logits required");
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  Tensor probs = logits;
  for (std::size_t n = 0; n < batch; ++n) {
    float max_logit = -std::numeric_limits<float>::infinity();
    for (std::size_t c = 0; c < classes; ++c) max_logit = std::max(max_logit, logits.at2(n, c));
    float z = 0.0F;
    for (std::size_t c = 0; c < classes; ++c) {
      const float e = std::exp(logits.at2(n, c) - max_logit);
      probs.at2(n, c) = e;
      z += e;
    }
    for (std::size_t c = 0; c < classes; ++c) probs.at2(n, c) /= z;
  }
  return probs;
}

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::size_t>& labels) {
  if (logits.rank() != 2) {
    throw std::invalid_argument("softmax_cross_entropy: rank-2 logits required");
  }
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  if (labels.size() != batch) {
    throw std::invalid_argument("softmax_cross_entropy: label count mismatch");
  }
  LossResult res;
  res.gradient = softmax(logits);
  double loss = 0.0;
  const float inv_batch = 1.0F / static_cast<float>(batch);
  for (std::size_t n = 0; n < batch; ++n) {
    const std::size_t y = labels[n];
    if (y >= classes) throw std::out_of_range("softmax_cross_entropy: label out of range");
    const float p = std::max(res.gradient.at2(n, y), 1e-12F);
    loss -= std::log(p);
    res.gradient.at2(n, y) -= 1.0F;
  }
  res.gradient *= inv_batch;
  res.value = loss / static_cast<double>(batch);
  return res;
}

LossResult mse_loss(const Tensor& prediction, const Tensor& target) {
  if (prediction.numel() != target.numel()) {
    throw std::invalid_argument("mse_loss: size mismatch");
  }
  LossResult res;
  res.gradient = prediction;
  double loss = 0.0;
  const std::size_t n = prediction.numel();
  for (std::size_t i = 0; i < n; ++i) {
    const float d = prediction[i] - target[i];
    loss += static_cast<double>(d) * d;
    res.gradient[i] = 2.0F * d / static_cast<float>(n);
  }
  res.value = loss / static_cast<double>(n);
  return res;
}

LossResult contrastive_loss(const Tensor& stacked_embeddings, const std::vector<int>& same,
                            double margin) {
  if (stacked_embeddings.rank() != 2) {
    throw std::invalid_argument("contrastive_loss: rank-2 embeddings required");
  }
  const std::size_t rows = stacked_embeddings.dim(0);
  if (rows % 2 != 0) {
    throw std::invalid_argument("contrastive_loss: need an even number of rows");
  }
  const std::size_t pairs = rows / 2;
  if (same.size() != pairs) {
    throw std::invalid_argument("contrastive_loss: pair label count mismatch");
  }
  const std::size_t dim = stacked_embeddings.dim(1);

  LossResult res;
  res.gradient = Tensor(stacked_embeddings.shape());
  double loss = 0.0;
  const float inv_pairs = 1.0F / static_cast<float>(pairs);
  for (std::size_t p = 0; p < pairs; ++p) {
    double d2 = 0.0;
    for (std::size_t k = 0; k < dim; ++k) {
      const float diff = stacked_embeddings.at2(p, k) - stacked_embeddings.at2(pairs + p, k);
      d2 += static_cast<double>(diff) * diff;
    }
    const double d = std::sqrt(std::max(d2, 1e-12));
    if (same[p] != 0) {
      loss += d2;
      // dL/da = 2 (a - b), dL/db = -2 (a - b).
      for (std::size_t k = 0; k < dim; ++k) {
        const float diff =
            stacked_embeddings.at2(p, k) - stacked_embeddings.at2(pairs + p, k);
        res.gradient.at2(p, k) += 2.0F * diff * inv_pairs;
        res.gradient.at2(pairs + p, k) -= 2.0F * diff * inv_pairs;
      }
    } else if (d < margin) {
      const double hinge = margin - d;
      loss += hinge * hinge;
      // dL/da = -2 (m - d) / d * (a - b).
      const auto coeff = static_cast<float>(-2.0 * hinge / d);
      for (std::size_t k = 0; k < dim; ++k) {
        const float diff =
            stacked_embeddings.at2(p, k) - stacked_embeddings.at2(pairs + p, k);
        res.gradient.at2(p, k) += coeff * diff * inv_pairs;
        res.gradient.at2(pairs + p, k) -= coeff * diff * inv_pairs;
      }
    }
  }
  res.value = loss / static_cast<double>(pairs);
  return res;
}

double pair_accuracy(const Tensor& stacked_embeddings, const std::vector<int>& same,
                     double threshold) {
  const std::size_t pairs = stacked_embeddings.dim(0) / 2;
  if (same.size() != pairs || pairs == 0) {
    throw std::invalid_argument("pair_accuracy: pair label count mismatch");
  }
  const std::size_t dim = stacked_embeddings.dim(1);
  std::size_t correct = 0;
  for (std::size_t p = 0; p < pairs; ++p) {
    double d2 = 0.0;
    for (std::size_t k = 0; k < dim; ++k) {
      const float diff = stacked_embeddings.at2(p, k) - stacked_embeddings.at2(pairs + p, k);
      d2 += static_cast<double>(diff) * diff;
    }
    const bool predicted_same = std::sqrt(d2) < threshold;
    if (predicted_same == (same[p] != 0)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(pairs);
}

double accuracy(const Tensor& logits, const std::vector<std::size_t>& labels) {
  if (logits.rank() != 2 || logits.dim(0) != labels.size() || labels.empty()) {
    throw std::invalid_argument("accuracy: shape mismatch");
  }
  const std::size_t classes = logits.dim(1);
  std::size_t correct = 0;
  for (std::size_t n = 0; n < labels.size(); ++n) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < classes; ++c) {
      if (logits.at2(n, c) > logits.at2(n, best)) best = c;
    }
    if (best == labels[n]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

}  // namespace xl::dnn
