#include "dnn/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace xl::dnn {

namespace {

constexpr char kMagic[4] = {'X', 'L', 'W', '1'};

void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("load_weights: truncated stream");
  return v;
}

}  // namespace

void save_weights(Network& net, std::ostream& out) {
  const auto params = net.parameters();
  out.write(kMagic, sizeof(kMagic));
  write_u64(out, params.size());
  for (const ParamRef& p : params) {
    const Shape& shape = p.value->shape();
    write_u64(out, shape.size());
    for (std::size_t d : shape) write_u64(out, d);
    out.write(reinterpret_cast<const char*>(p.value->data()),
              static_cast<std::streamsize>(p.value->numel() * sizeof(float)));
  }
  if (!out) throw std::runtime_error("save_weights: write failed");
}

void save_weights(Network& net, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_weights: cannot open " + path);
  save_weights(net, out);
}

void load_weights(Network& net, std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("load_weights: bad magic");
  }
  const auto params = net.parameters();
  const std::uint64_t count = read_u64(in);
  if (count != params.size()) {
    throw std::runtime_error("load_weights: parameter count mismatch");
  }
  for (const ParamRef& p : params) {
    const std::uint64_t rank = read_u64(in);
    Shape shape(rank);
    for (std::uint64_t d = 0; d < rank; ++d) shape[d] = read_u64(in);
    if (shape != p.value->shape()) {
      throw std::runtime_error("load_weights: tensor shape mismatch");
    }
    in.read(reinterpret_cast<char*>(p.value->data()),
            static_cast<std::streamsize>(p.value->numel() * sizeof(float)));
    if (!in) throw std::runtime_error("load_weights: truncated tensor data");
  }
}

void load_weights(Network& net, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_weights: cannot open " + path);
  load_weights(net, in);
}

}  // namespace xl::dnn
