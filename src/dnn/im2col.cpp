#include "dnn/im2col.hpp"

#include <limits>
#include <stdexcept>

namespace xl::dnn {

Im2colShape im2col_shape(const Shape& input_shape, const Conv2dConfig& cfg) {
  if (input_shape.size() != 4 || input_shape[1] != cfg.in_channels) {
    throw std::invalid_argument("im2col: incompatible input shape");
  }
  const auto out_extent = [&](std::size_t in_extent) {
    const std::size_t padded = in_extent + 2 * cfg.padding;
    if (padded < cfg.kernel) {
      throw std::invalid_argument("im2col: input smaller than kernel");
    }
    return (padded - cfg.kernel) / cfg.stride + 1;
  };
  Im2colShape s;
  s.batch = input_shape[0];
  s.h_out = out_extent(input_shape[2]);
  s.w_out = out_extent(input_shape[3]);
  s.rows = s.batch * s.h_out * s.w_out;
  s.cols = cfg.in_channels * cfg.kernel * cfg.kernel;
  return s;
}

Tensor im2col(const Tensor& input, const Conv2dConfig& cfg) {
  const Im2colShape s = im2col_shape(input.shape(), cfg);
  const std::size_t h_in = input.dim(2);
  const std::size_t w_in = input.dim(3);
  const auto pad = static_cast<std::ptrdiff_t>(cfg.padding);

  Tensor patches({s.rows, s.cols});
  float* out = patches.data();
  for (std::size_t n = 0; n < s.batch; ++n) {
    for (std::size_t oy = 0; oy < s.h_out; ++oy) {
      const std::ptrdiff_t iy0 = static_cast<std::ptrdiff_t>(oy * cfg.stride) - pad;
      for (std::size_t ox = 0; ox < s.w_out; ++ox) {
        const std::ptrdiff_t ix0 = static_cast<std::ptrdiff_t>(ox * cfg.stride) - pad;
        for (std::size_t ci = 0; ci < cfg.in_channels; ++ci) {
          for (std::size_t ky = 0; ky < cfg.kernel; ++ky) {
            const std::ptrdiff_t iy = iy0 + static_cast<std::ptrdiff_t>(ky);
            const bool row_ok = iy >= 0 && iy < static_cast<std::ptrdiff_t>(h_in);
            for (std::size_t kx = 0; kx < cfg.kernel; ++kx, ++out) {
              const std::ptrdiff_t ix = ix0 + static_cast<std::ptrdiff_t>(kx);
              const bool ok = row_ok && ix >= 0 && ix < static_cast<std::ptrdiff_t>(w_in);
              *out = ok ? input.at4(n, ci, static_cast<std::size_t>(iy),
                                    static_cast<std::size_t>(ix))
                        : 0.0F;
            }
          }
        }
      }
    }
  }
  return patches;
}

Im2colPlan plan_im2col(const Shape& sample_shape, const Conv2dConfig& cfg) {
  if (sample_shape.size() != 4) {
    throw std::invalid_argument("plan_im2col: rank-4 sample shape required");
  }
  const Shape basis = {1, sample_shape[1], sample_shape[2], sample_shape[3]};
  Im2colPlan plan;
  plan.shape = im2col_shape(basis, cfg);
  plan.sample_numel = sample_shape[1] * sample_shape[2] * sample_shape[3];
  if (plan.sample_numel >
      static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max())) {
    throw std::invalid_argument("plan_im2col: sample exceeds int32 indexing");
  }
  const std::size_t h_in = sample_shape[2];
  const std::size_t w_in = sample_shape[3];
  const auto pad = static_cast<std::ptrdiff_t>(cfg.padding);

  // Mirrors im2col()'s loop order exactly (n fixed at 0): rows (oy, ox),
  // columns (ci, ky, kx).
  plan.src.resize(plan.shape.rows * plan.shape.cols);
  std::int32_t* out = plan.src.data();
  for (std::size_t oy = 0; oy < plan.shape.h_out; ++oy) {
    const std::ptrdiff_t iy0 = static_cast<std::ptrdiff_t>(oy * cfg.stride) - pad;
    for (std::size_t ox = 0; ox < plan.shape.w_out; ++ox) {
      const std::ptrdiff_t ix0 = static_cast<std::ptrdiff_t>(ox * cfg.stride) - pad;
      for (std::size_t ci = 0; ci < cfg.in_channels; ++ci) {
        for (std::size_t ky = 0; ky < cfg.kernel; ++ky) {
          const std::ptrdiff_t iy = iy0 + static_cast<std::ptrdiff_t>(ky);
          const bool row_ok = iy >= 0 && iy < static_cast<std::ptrdiff_t>(h_in);
          for (std::size_t kx = 0; kx < cfg.kernel; ++kx, ++out) {
            const std::ptrdiff_t ix = ix0 + static_cast<std::ptrdiff_t>(kx);
            const bool ok = row_ok && ix >= 0 && ix < static_cast<std::ptrdiff_t>(w_in);
            *out = ok ? static_cast<std::int32_t>(
                            (ci * h_in + static_cast<std::size_t>(iy)) * w_in +
                            static_cast<std::size_t>(ix))
                      : std::int32_t{-1};
          }
        }
      }
    }
  }
  return plan;
}

void im2col_gather(const Im2colPlan& plan, const float* sample,
                   float* out) noexcept {
  const std::size_t count = plan.src.size();
  const std::int32_t* src = plan.src.data();
  for (std::size_t i = 0; i < count; ++i) {
    const std::int32_t idx = src[i];
    out[i] = idx >= 0 ? sample[idx] : 0.0F;
  }
}

}  // namespace xl::dnn
