#include "dnn/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace xl::dnn {

void fake_quant_symmetric(std::span<const float> values, std::span<float> out, int bits) {
  if (values.size() != out.size()) {
    throw std::invalid_argument("fake_quant_symmetric: size mismatch");
  }
  if (bits < 1 || bits > 24) {
    throw std::invalid_argument("fake_quant_symmetric: bits must be in [1, 24]");
  }
  if (bits == 1) {
    // Binary weights: +-E[|w|] preserves the layer's expected magnitude.
    double mean_abs = 0.0;
    for (float v : values) mean_abs += std::abs(v);
    const float scale =
        values.empty() ? 0.0F : static_cast<float>(mean_abs / static_cast<double>(values.size()));
    for (std::size_t i = 0; i < values.size(); ++i) {
      out[i] = values[i] >= 0.0F ? scale : -scale;
    }
    return;
  }
  float max_abs = 0.0F;
  for (float v : values) max_abs = std::max(max_abs, std::abs(v));
  if (max_abs == 0.0F) {
    std::fill(out.begin(), out.end(), 0.0F);
    return;
  }
  const float qmax = static_cast<float>((1 << (bits - 1)) - 1);
  const float scale = max_abs / qmax;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const float q = std::round(values[i] / scale);
    out[i] = std::clamp(q, -qmax, qmax) * scale;
  }
}

void fake_quant_unsigned(std::span<const float> values, std::span<float> out, int bits,
                         float range) {
  if (values.size() != out.size()) {
    throw std::invalid_argument("fake_quant_unsigned: size mismatch");
  }
  if (bits < 1 || bits > 24) {
    throw std::invalid_argument("fake_quant_unsigned: bits must be in [1, 24]");
  }
  if (range <= 0.0F) {
    std::copy(values.begin(), values.end(), out.begin());
    return;
  }
  const float qmax = static_cast<float>((1u << bits) - 1u);
  const float scale = range / qmax;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const float clamped = std::clamp(values[i], 0.0F, range);
    out[i] = std::round(clamped / scale) * scale;
  }
}

void ActivationRange::observe(std::span<const float> values) noexcept {
  for (float v : values) range_ = std::max(range_, v);
}

void ActivationRange::quantize_inplace(std::span<float> values, int bits) const {
  fake_quant_unsigned(values, values, bits, range_);
}

}  // namespace xl::dnn
