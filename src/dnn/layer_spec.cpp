#include "dnn/layer_spec.hpp"

namespace xl::dnn {

std::size_t LayerSpec::dot_product_count() const noexcept {
  switch (kind) {
    case LayerKind::kConv:
      return out_height * out_width * out_channels;
    case LayerKind::kDense:
      return out_features;
    default:
      return 0;
  }
}

std::size_t LayerSpec::dot_product_length() const noexcept {
  switch (kind) {
    case LayerKind::kConv:
      return kernel * kernel * in_channels;
    case LayerKind::kDense:
      return in_features;
    default:
      return 0;
  }
}

std::size_t LayerSpec::mac_count() const noexcept {
  return dot_product_count() * dot_product_length();
}

std::size_t LayerSpec::parameter_count() const noexcept {
  switch (kind) {
    case LayerKind::kConv:
      return out_channels * (in_channels * kernel * kernel + 1);
    case LayerKind::kDense:
      return out_features * (in_features + 1);
    default:
      return 0;
  }
}

std::size_t ModelSpec::conv_layer_count() const noexcept {
  std::size_t acc = 0;
  for (const LayerSpec& l : layers) {
    if (l.kind == LayerKind::kConv) ++acc;
  }
  return acc * branches;
}

std::size_t ModelSpec::dense_layer_count() const noexcept {
  std::size_t acc = 0;
  for (const LayerSpec& l : layers) {
    if (l.kind == LayerKind::kDense) ++acc;
  }
  return acc * branches;
}

std::size_t ModelSpec::total_parameters() const noexcept {
  std::size_t acc = 0;
  for (const LayerSpec& l : layers) acc += l.parameter_count();
  // Parameters are shared across Siamese branches; count once.
  return acc;
}

std::size_t ModelSpec::total_macs() const noexcept {
  std::size_t acc = 0;
  for (const LayerSpec& l : layers) acc += l.mac_count();
  return acc * branches;
}

LayerSpec conv_spec(std::string name, std::size_t in_c, std::size_t out_c,
                    std::size_t kernel, std::size_t out_h, std::size_t out_w,
                    std::size_t stride) {
  LayerSpec s;
  s.kind = LayerKind::kConv;
  s.name = std::move(name);
  s.in_channels = in_c;
  s.out_channels = out_c;
  s.kernel = kernel;
  s.out_height = out_h;
  s.out_width = out_w;
  s.stride = stride;
  return s;
}

LayerSpec dense_spec(std::string name, std::size_t in_f, std::size_t out_f) {
  LayerSpec s;
  s.kind = LayerKind::kDense;
  s.name = std::move(name);
  s.in_features = in_f;
  s.out_features = out_f;
  return s;
}

}  // namespace xl::dnn
