// Shape adapters: Flatten (NCHW -> (N, C*H*W)).
#pragma once

#include "dnn/layer.hpp"

namespace xl::dnn {

class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string kind() const override { return "flatten"; }
  [[nodiscard]] LayerKind kind_id() const noexcept override { return LayerKind::kOther; }
  [[nodiscard]] Shape output_shape(const Shape& input_shape) const override;
  /// Row-major flatten does not move bytes: a plan treats it as a pure
  /// shape change (the cached shape stays backward-compatible because
  /// planned execution never calls forward()).
  [[nodiscard]] bool inference_identity() const noexcept override { return true; }

 private:
  Shape cached_input_shape_;
};

}  // namespace xl::dnn
