// Shape adapters: Flatten (NCHW -> (N, C*H*W)).
#pragma once

#include "dnn/layer.hpp"

namespace xl::dnn {

class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string kind() const override { return "flatten"; }
  [[nodiscard]] LayerKind kind_id() const noexcept override { return LayerKind::kOther; }
  [[nodiscard]] Shape output_shape(const Shape& input_shape) const override;

 private:
  Shape cached_input_shape_;
};

}  // namespace xl::dnn
