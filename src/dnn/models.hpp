// Model zoo: the four DNNs of Table I.
//
// Two views of each model are provided:
//   * full-scale ModelSpec — exact layer shapes at the paper's native input
//     resolution, used by the accelerator performance model (weights are
//     never needed there). Model 4's parameter count matches the paper's
//     38,951,745 exactly (it is the Koch et al. Siamese network); models 1-3
//     are custom CNNs reconstructed to within < 0.2% of the reported counts
//     (actual vs. paper counts printed by bench_table1_models).
//   * reduced trainable Network — same topology at reduced geometry/width so
//     the Fig. 5 QAT sweep trains in seconds on a CPU.
#pragma once

#include <vector>

#include "dnn/datasets.hpp"
#include "dnn/layer_spec.hpp"
#include "dnn/network.hpp"
#include "numerics/rng.hpp"

namespace xl::dnn {

/// Table I row 1: LeNet5-style, 2 CONV + 2 FC, Sign-MNIST (28x28x1, 24 cls).
[[nodiscard]] ModelSpec lenet5_spec();
/// Table I row 2: custom CNN, 4 CONV + 2 FC, CIFAR-10 (32x32x3, 10 cls).
[[nodiscard]] ModelSpec cnn_cifar10_spec();
/// Table I row 3: custom CNN, 7 CONV + 2 FC, STL-10 (96x96x3, 10 cls).
[[nodiscard]] ModelSpec cnn_stl10_spec();
/// Table I row 4: Siamese one-shot CNN (Koch et al.), Omniglot (105x105x1).
[[nodiscard]] ModelSpec siamese_omniglot_spec();

/// All four rows of Table I in order.
[[nodiscard]] std::vector<ModelSpec> table1_models();

/// Paper-reported parameter counts (Table I), indexable by model number 1-4.
[[nodiscard]] std::size_t paper_parameter_count(int model_no);

// --- trainable (reduced) networks for the Fig. 5 accuracy sweep -------------

/// Model 1 trainable at native scale (it is already small).
[[nodiscard]] Network build_lenet5(xl::numerics::Rng& rng, std::size_t classes = 24);
/// Model 2 reduced: 16x16x3 input, half width.
[[nodiscard]] Network build_reduced_cifar_cnn(xl::numerics::Rng& rng,
                                              std::size_t classes = 10);
/// Model 3 reduced: 24x24x3 input, 7 conv layers at reduced width.
[[nodiscard]] Network build_reduced_stl_cnn(xl::numerics::Rng& rng,
                                            std::size_t classes = 10);
/// Model 4 reduced Siamese embedding branch: 28x28x1 -> 64-d embedding.
[[nodiscard]] Network build_reduced_siamese_branch(xl::numerics::Rng& rng);

/// Input shape (without batch dim) of each reduced trainable model, 1-4.
[[nodiscard]] Shape reduced_input_shape(int model_no);

/// Table I proxy MLP for functional-datapath studies (the CLI's --effects
/// path and bench_fig4): Flatten -> Dense(144, 64) -> ReLU -> Dense(64, 24),
/// trained on the 12x12 SignMNIST-like task of table1_proxy_task(). One
/// shared definition so CLI and bench accuracies stay comparable.
[[nodiscard]] Network build_table1_proxy_mlp(xl::numerics::Rng& rng);

/// The reduced SignMNIST-like task the proxy MLP trains on (12x12x1).
[[nodiscard]] SyntheticSpec table1_proxy_task();

/// A trained proxy MLP with its held-out test set.
struct Table1ProxyMlp {
  Network net;
  Dataset test;
  double float_accuracy = 0.0;
};

/// Build and train the proxy MLP with the one shared recipe (768 train /
/// 128 test samples, seed 21, batch 32, lr 5e-3) so CLI and bench
/// accuracies stay comparable. Only the epoch count is a knob.
[[nodiscard]] Table1ProxyMlp train_table1_proxy_mlp(std::size_t epochs = 20);

}  // namespace xl::dnn
