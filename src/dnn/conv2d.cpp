#include "dnn/conv2d.hpp"

#include <cmath>

#include "dnn/im2col.hpp"
#include <sstream>
#include <stdexcept>

namespace xl::dnn {

Conv2d::Conv2d(const Conv2dConfig& config, xl::numerics::Rng& rng)
    : config_(config),
      w_({config.out_channels, config.in_channels, config.kernel, config.kernel}),
      b_({config.out_channels}),
      dw_({config.out_channels, config.in_channels, config.kernel, config.kernel}),
      db_({config.out_channels}) {
  if (config.in_channels == 0 || config.out_channels == 0 || config.kernel == 0 ||
      config.stride == 0) {
    throw std::invalid_argument("Conv2d: zero-sized configuration");
  }
  const double fan_in =
      static_cast<double>(config.in_channels * config.kernel * config.kernel);
  const double bound = std::sqrt(6.0 / fan_in);
  for (std::size_t i = 0; i < w_.numel(); ++i) {
    w_[i] = static_cast<float>(rng.uniform(-bound, bound));
  }
}

std::size_t Conv2d::out_extent(std::size_t in_extent) const {
  const std::size_t padded = in_extent + 2 * config_.padding;
  if (padded < config_.kernel) {
    throw std::invalid_argument("Conv2d: input smaller than kernel");
  }
  return (padded - config_.kernel) / config_.stride + 1;
}

Shape Conv2d::output_shape(const Shape& input_shape) const {
  if (input_shape.size() != 4 || input_shape[1] != config_.in_channels) {
    throw std::invalid_argument("Conv2d::output_shape: incompatible input shape");
  }
  return {input_shape[0], config_.out_channels, out_extent(input_shape[2]),
          out_extent(input_shape[3])};
}

Tensor Conv2d::forward(const Tensor& input, bool training) {
  const Shape out_shape = output_shape(input.shape());
  // The input copy exists only for backward(); inference skips it (and
  // clears any stale cache so a later backward() fails loudly).
  if (training) {
    cached_input_ = input;
  } else {
    cached_input_ = Tensor();
  }

  const bool qat = quant_ != nullptr && quant_->weights_enabled();
  const Tensor* w = &w_;
  if (qat) {
    effective_w_ = w_;
    fake_quant_symmetric(w_.span(), effective_w_.span(), quant_->weight_bits);
    w = &effective_w_;
  }

  // im2col lowering shared with the batched photonic engine: output pixel
  // (n, co, oy, ox) = patches(row(n, oy, ox)) . filter(co) + bias. Padding
  // taps contribute exact zeros, so this matches direct convolution
  // bit-for-bit.
  const Tensor patches = im2col(input, config_);
  const std::size_t rows = patches.dim(0);
  const std::size_t patch_len = patches.dim(1);
  const std::size_t c_out = config_.out_channels;
  const std::size_t pixels_per_sample = out_shape[2] * out_shape[3];

  Tensor out(out_shape);
  float* out_ptr = out.data();
  for (std::size_t r = 0; r < rows; ++r) {
    const float* patch = patches.data() + r * patch_len;
    const std::size_t n = r / pixels_per_sample;
    const std::size_t pixel = r % pixels_per_sample;
    for (std::size_t co = 0; co < c_out; ++co) {
      const float* filter = w->data() + co * patch_len;
      float acc = b_[co];
      for (std::size_t i = 0; i < patch_len; ++i) acc += filter[i] * patch[i];
      // NCHW: (n, co, oy, ox) with (oy, ox) linearized as `pixel`.
      out_ptr[(n * c_out + co) * pixels_per_sample + pixel] = acc;
    }
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) throw std::logic_error("Conv2d::backward before forward");
  const Shape out_shape = output_shape(cached_input_.shape());
  if (grad_output.shape() != out_shape) {
    throw std::invalid_argument("Conv2d::backward: gradient shape mismatch");
  }
  const bool qat = quant_ != nullptr && quant_->weights_enabled();
  const Tensor* w = qat ? &effective_w_ : &w_;

  const std::size_t batch = cached_input_.dim(0);
  const std::size_t c_in = config_.in_channels;
  const std::size_t c_out = config_.out_channels;
  const std::size_t h_in = cached_input_.dim(2);
  const std::size_t w_in = cached_input_.dim(3);
  const std::size_t h_out = out_shape[2];
  const std::size_t w_out = out_shape[3];
  const std::size_t k = config_.kernel;
  const std::size_t stride = config_.stride;
  const auto pad = static_cast<std::ptrdiff_t>(config_.padding);

  Tensor grad_input(cached_input_.shape());
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t co = 0; co < c_out; ++co) {
      for (std::size_t oy = 0; oy < h_out; ++oy) {
        for (std::size_t ox = 0; ox < w_out; ++ox) {
          const float g = grad_output.at4(n, co, oy, ox);
          if (g == 0.0F) continue;
          db_[co] += g;
          const std::ptrdiff_t iy0 =
              static_cast<std::ptrdiff_t>(oy * stride) - pad;
          const std::ptrdiff_t ix0 =
              static_cast<std::ptrdiff_t>(ox * stride) - pad;
          for (std::size_t ci = 0; ci < c_in; ++ci) {
            for (std::size_t ky = 0; ky < k; ++ky) {
              const std::ptrdiff_t iy = iy0 + static_cast<std::ptrdiff_t>(ky);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h_in)) continue;
              for (std::size_t kx = 0; kx < k; ++kx) {
                const std::ptrdiff_t ix = ix0 + static_cast<std::ptrdiff_t>(kx);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w_in)) continue;
                const auto uy = static_cast<std::size_t>(iy);
                const auto ux = static_cast<std::size_t>(ix);
                dw_.at4(co, ci, ky, kx) += g * cached_input_.at4(n, ci, uy, ux);
                grad_input.at4(n, ci, uy, ux) += g * w->at4(co, ci, ky, kx);
              }
            }
          }
        }
      }
    }
  }
  return grad_input;
}

std::vector<ParamRef> Conv2d::parameters() {
  return {ParamRef{&w_, &dw_}, ParamRef{&b_, &db_}};
}

std::string Conv2d::describe() const {
  std::ostringstream os;
  os << "conv2d(" << config_.in_channels << " -> " << config_.out_channels << ", k="
     << config_.kernel << ", s=" << config_.stride << ", p=" << config_.padding << ")";
  return os.str();
}

}  // namespace xl::dnn
