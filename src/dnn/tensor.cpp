#include "dnn/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace xl::dnn {

std::size_t shape_numel(const Shape& shape) noexcept {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ')';
  return os.str();
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0F) {
  for (std::size_t d : shape_) {
    if (d == 0) throw std::invalid_argument("Tensor: zero dimension");
  }
}

Tensor::Tensor(Shape shape, float fill) : Tensor(std::move(shape)) {
  std::fill(data_.begin(), data_.end(), fill);
}

float& Tensor::at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
  if (rank() != 4) throw std::logic_error("Tensor::at4 on non rank-4 tensor");
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

float Tensor::at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const {
  if (rank() != 4) throw std::logic_error("Tensor::at4 on non rank-4 tensor");
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

float& Tensor::at2(std::size_t n, std::size_t f) {
  if (rank() != 2) throw std::logic_error("Tensor::at2 on non rank-2 tensor");
  return data_[n * shape_[1] + f];
}

float Tensor::at2(std::size_t n, std::size_t f) const {
  if (rank() != 2) throw std::logic_error("Tensor::at2 on non rank-2 tensor");
  return data_[n * shape_[1] + f];
}

void Tensor::fill(float value) noexcept { std::fill(data_.begin(), data_.end(), value); }

void Tensor::reshape(Shape new_shape) {
  if (shape_numel(new_shape) != numel()) {
    throw std::invalid_argument("Tensor::reshape: element count mismatch");
  }
  shape_ = std::move(new_shape);
}

Tensor& Tensor::operator+=(const Tensor& rhs) {
  if (numel() != rhs.numel()) throw std::invalid_argument("Tensor+=: size mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& rhs) {
  if (numel() != rhs.numel()) throw std::invalid_argument("Tensor-=: size mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) noexcept {
  for (float& v : data_) v *= s;
  return *this;
}

float Tensor::max_abs() const noexcept {
  float acc = 0.0F;
  for (float v : data_) acc = std::max(acc, std::abs(v));
  return acc;
}

float Tensor::sum() const noexcept {
  return std::accumulate(data_.begin(), data_.end(), 0.0F);
}

std::vector<float> Tensor::row(std::size_t n) const {
  if (rank() != 2) throw std::logic_error("Tensor::row on non rank-2 tensor");
  const std::size_t f = shape_[1];
  return {data_.begin() + static_cast<std::ptrdiff_t>(n * f),
          data_.begin() + static_cast<std::ptrdiff_t>((n + 1) * f)};
}

}  // namespace xl::dnn
