// Batch normalization (per-channel for NCHW, per-feature for rank-2).
//
// The paper notes batch normalization executes "very efficiently in the
// electronic domain" — the layer exists so the model zoo can express
// BN-bearing CNNs; it carries no photonic mapping (LayerKind::kOther).
#pragma once

#include "dnn/layer.hpp"

namespace xl::dnn {

class BatchNorm : public Layer {
 public:
  /// `features` = channel count (rank-4 input) or feature count (rank-2).
  explicit BatchNorm(std::size_t features, double momentum = 0.9, double epsilon = 1e-5);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> parameters() override;
  [[nodiscard]] std::string kind() const override { return "batchnorm"; }
  [[nodiscard]] LayerKind kind_id() const noexcept override { return LayerKind::kOther; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] Shape output_shape(const Shape& input_shape) const override;
  [[nodiscard]] bool supports_eval_into() const noexcept override { return true; }
  void eval_into(const Shape& input_shape, std::span<const float> input,
                 std::span<float> output) override;

  [[nodiscard]] std::size_t features() const noexcept { return features_; }
  Tensor& gamma() noexcept { return gamma_; }
  Tensor& beta() noexcept { return beta_; }
  [[nodiscard]] const std::vector<double>& running_mean() const noexcept {
    return running_mean_;
  }
  [[nodiscard]] const std::vector<double>& running_var() const noexcept {
    return running_var_;
  }

 private:
  /// Iterate the input grouped by feature: calls fn(feature, flat_index).
  template <typename Fn>
  void for_each(const Shape& shape, Fn&& fn) const;

  std::size_t features_;
  double momentum_;
  double epsilon_;
  Tensor gamma_, beta_;
  Tensor dgamma_, dbeta_;

  std::vector<double> running_mean_;
  std::vector<double> running_var_;

  // Cached forward state for backward (written only when training).
  Tensor cached_input_;
  std::vector<double> batch_mean_;
  std::vector<double> batch_inv_std_;
  bool cached_training_ = false;

  // Preallocated 1/sqrt(running_var + eps) table so inference passes (and
  // eval_into) never allocate. Refreshed from the running stats on each use
  // because training updates them in place.
  std::vector<double> inference_inv_std_;
};

}  // namespace xl::dnn
