// Loss functions: softmax cross-entropy (classification models 1-3), MSE,
// and the contrastive loss used by the Siamese one-shot model (model 4).
#pragma once

#include <cstdint>
#include <vector>

#include "dnn/tensor.hpp"

namespace xl::dnn {

struct LossResult {
  double value = 0.0;   ///< Mean loss over the batch.
  Tensor gradient;      ///< dL/d(logits or embeddings), batch-mean scaled.
};

/// Softmax + cross-entropy on logits (N, classes) with integer labels.
[[nodiscard]] LossResult softmax_cross_entropy(const Tensor& logits,
                                               const std::vector<std::size_t>& labels);

/// Softmax probabilities (N, classes) — numerically stable.
[[nodiscard]] Tensor softmax(const Tensor& logits);

/// Mean squared error against a dense target tensor.
[[nodiscard]] LossResult mse_loss(const Tensor& prediction, const Tensor& target);

/// Contrastive loss over paired embeddings (Hadsell et al.). Embeddings are
/// stacked: rows [0, P) are branch A, rows [P, 2P) are branch B of P pairs.
/// same[i] == 1 for genuine pairs. L = same*d^2 + (1-same)*max(0, m-d)^2.
[[nodiscard]] LossResult contrastive_loss(const Tensor& stacked_embeddings,
                                          const std::vector<int>& same, double margin = 1.0);

/// Verification accuracy for paired embeddings: pair is declared "same" when
/// the embedding distance falls below `threshold`.
[[nodiscard]] double pair_accuracy(const Tensor& stacked_embeddings,
                                   const std::vector<int>& same, double threshold);

/// Classification accuracy of logits vs labels.
[[nodiscard]] double accuracy(const Tensor& logits, const std::vector<std::size_t>& labels);

}  // namespace xl::dnn
