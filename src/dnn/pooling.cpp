#include "dnn/pooling.hpp"

#include <limits>
#include <sstream>
#include <stdexcept>

namespace xl::dnn {

namespace {

Shape pooled_shape(const Shape& in, std::size_t window, std::size_t stride,
                   const char* who) {
  if (in.size() != 4) throw std::invalid_argument(std::string(who) + ": rank-4 input required");
  if (in[2] < window || in[3] < window) {
    throw std::invalid_argument(std::string(who) + ": input smaller than window");
  }
  return {in[0], in[1], (in[2] - window) / stride + 1, (in[3] - window) / stride + 1};
}

}  // namespace

MaxPool2d::MaxPool2d(std::size_t window, std::size_t stride)
    : window_(window), stride_(stride == 0 ? window : stride) {
  if (window_ == 0) throw std::invalid_argument("MaxPool2d: zero window");
}

Shape MaxPool2d::output_shape(const Shape& input_shape) const {
  return pooled_shape(input_shape, window_, stride_, "MaxPool2d");
}

Tensor MaxPool2d::forward(const Tensor& input, bool training) {
  const Shape out_shape = output_shape(input.shape());
  cached_input_shape_ = input.shape();
  Tensor out(out_shape);
  // The argmax map exists only for backward(); at inference it is cleared so
  // a stale map from an earlier training pass can never be routed through.
  if (training) {
    argmax_.assign(out.numel(), 0);
  } else {
    argmax_.clear();
  }

  const std::size_t batch = input.dim(0);
  const std::size_t channels = input.dim(1);
  const std::size_t h_in = input.dim(2);
  const std::size_t w_in = input.dim(3);
  std::size_t flat_out = 0;
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      for (std::size_t oy = 0; oy < out_shape[2]; ++oy) {
        for (std::size_t ox = 0; ox < out_shape[3]; ++ox, ++flat_out) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t ky = 0; ky < window_; ++ky) {
            for (std::size_t kx = 0; kx < window_; ++kx) {
              const std::size_t iy = oy * stride_ + ky;
              const std::size_t ix = ox * stride_ + kx;
              const std::size_t idx = ((n * channels + c) * h_in + iy) * w_in + ix;
              const float v = input[idx];
              if (v > best) {
                best = v;
                best_idx = idx;
              }
            }
          }
          out[flat_out] = best;
          if (training) argmax_[flat_out] = best_idx;
        }
      }
    }
  }
  return out;
}

void MaxPool2d::eval_into(const Shape& input_shape, std::span<const float> input,
                          std::span<float> output) {
  // Extents computed inline (no Shape construction): eval_into must not
  // allocate. The plan validated the shape at compile time.
  const std::size_t batch = input_shape[0];
  const std::size_t channels = input_shape[1];
  const std::size_t h_in = input_shape[2];
  const std::size_t w_in = input_shape[3];
  const std::size_t h_out = (h_in - window_) / stride_ + 1;
  const std::size_t w_out = (w_in - window_) / stride_ + 1;
  std::size_t flat_out = 0;
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      for (std::size_t oy = 0; oy < h_out; ++oy) {
        for (std::size_t ox = 0; ox < w_out; ++ox, ++flat_out) {
          float best = -std::numeric_limits<float>::infinity();
          for (std::size_t ky = 0; ky < window_; ++ky) {
            for (std::size_t kx = 0; kx < window_; ++kx) {
              const std::size_t iy = oy * stride_ + ky;
              const std::size_t ix = ox * stride_ + kx;
              const float v = input[((n * channels + c) * h_in + iy) * w_in + ix];
              if (v > best) best = v;
            }
          }
          output[flat_out] = best;
        }
      }
    }
  }
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  if (cached_input_shape_.empty()) throw std::logic_error("MaxPool2d::backward before forward");
  if (grad_output.numel() != argmax_.size()) {
    throw std::invalid_argument("MaxPool2d::backward: gradient size mismatch");
  }
  Tensor grad_input(cached_input_shape_);
  for (std::size_t i = 0; i < argmax_.size(); ++i) {
    grad_input[argmax_[i]] += grad_output[i];
  }
  return grad_input;
}

std::string MaxPool2d::describe() const {
  std::ostringstream os;
  os << "maxpool2d(" << window_ << "x" << window_ << ", s=" << stride_ << ")";
  return os.str();
}

AvgPool2d::AvgPool2d(std::size_t window, std::size_t stride)
    : window_(window), stride_(stride == 0 ? window : stride) {
  if (window_ == 0) throw std::invalid_argument("AvgPool2d: zero window");
}

Shape AvgPool2d::output_shape(const Shape& input_shape) const {
  return pooled_shape(input_shape, window_, stride_, "AvgPool2d");
}

Tensor AvgPool2d::forward(const Tensor& input, bool /*training*/) {
  const Shape out_shape = output_shape(input.shape());
  cached_input_shape_ = input.shape();
  Tensor out(out_shape);

  const std::size_t batch = input.dim(0);
  const std::size_t channels = input.dim(1);
  const std::size_t h_in = input.dim(2);
  const std::size_t w_in = input.dim(3);
  const float inv_area = 1.0F / static_cast<float>(window_ * window_);
  std::size_t flat_out = 0;
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      for (std::size_t oy = 0; oy < out_shape[2]; ++oy) {
        for (std::size_t ox = 0; ox < out_shape[3]; ++ox, ++flat_out) {
          float acc = 0.0F;
          for (std::size_t ky = 0; ky < window_; ++ky) {
            for (std::size_t kx = 0; kx < window_; ++kx) {
              const std::size_t iy = oy * stride_ + ky;
              const std::size_t ix = ox * stride_ + kx;
              acc += input[((n * channels + c) * h_in + iy) * w_in + ix];
            }
          }
          out[flat_out] = acc * inv_area;
        }
      }
    }
  }
  return out;
}

void AvgPool2d::eval_into(const Shape& input_shape, std::span<const float> input,
                          std::span<float> output) {
  // Extents computed inline (no Shape construction): eval_into must not
  // allocate. Accumulation order matches forward() exactly.
  const std::size_t batch = input_shape[0];
  const std::size_t channels = input_shape[1];
  const std::size_t h_in = input_shape[2];
  const std::size_t w_in = input_shape[3];
  const std::size_t h_out = (h_in - window_) / stride_ + 1;
  const std::size_t w_out = (w_in - window_) / stride_ + 1;
  const float inv_area = 1.0F / static_cast<float>(window_ * window_);
  std::size_t flat_out = 0;
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      for (std::size_t oy = 0; oy < h_out; ++oy) {
        for (std::size_t ox = 0; ox < w_out; ++ox, ++flat_out) {
          float acc = 0.0F;
          for (std::size_t ky = 0; ky < window_; ++ky) {
            for (std::size_t kx = 0; kx < window_; ++kx) {
              const std::size_t iy = oy * stride_ + ky;
              const std::size_t ix = ox * stride_ + kx;
              acc += input[((n * channels + c) * h_in + iy) * w_in + ix];
            }
          }
          output[flat_out] = acc * inv_area;
        }
      }
    }
  }
}

Tensor AvgPool2d::backward(const Tensor& grad_output) {
  if (cached_input_shape_.empty()) throw std::logic_error("AvgPool2d::backward before forward");
  Tensor grad_input(cached_input_shape_);
  const Shape out_shape = output_shape(cached_input_shape_);
  if (grad_output.shape() != out_shape) {
    throw std::invalid_argument("AvgPool2d::backward: gradient shape mismatch");
  }
  const std::size_t batch = cached_input_shape_[0];
  const std::size_t channels = cached_input_shape_[1];
  const std::size_t h_in = cached_input_shape_[2];
  const std::size_t w_in = cached_input_shape_[3];
  const float inv_area = 1.0F / static_cast<float>(window_ * window_);
  std::size_t flat_out = 0;
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      for (std::size_t oy = 0; oy < out_shape[2]; ++oy) {
        for (std::size_t ox = 0; ox < out_shape[3]; ++ox, ++flat_out) {
          const float g = grad_output[flat_out] * inv_area;
          for (std::size_t ky = 0; ky < window_; ++ky) {
            for (std::size_t kx = 0; kx < window_; ++kx) {
              const std::size_t iy = oy * stride_ + ky;
              const std::size_t ix = ox * stride_ + kx;
              grad_input[((n * channels + c) * h_in + iy) * w_in + ix] += g;
            }
          }
        }
      }
    }
  }
  return grad_input;
}

std::string AvgPool2d::describe() const {
  std::ostringstream os;
  os << "avgpool2d(" << window_ << "x" << window_ << ", s=" << stride_ << ")";
  return os.str();
}

}  // namespace xl::dnn
