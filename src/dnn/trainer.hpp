// Training loops: mini-batch classifier training (models 1-3) and paired
// contrastive training for the Siamese model (model 4). Used by the Fig. 5
// quantization-aware-training sweep and by examples/tests.
#pragma once

#include "dnn/datasets.hpp"
#include "dnn/network.hpp"

namespace xl::dnn {

struct TrainConfig {
  std::size_t epochs = 5;
  std::size_t batch_size = 32;
  double learning_rate = 1e-3;
  bool verbose = false;
  double contrastive_margin = 1.0;  ///< Siamese only.
};

struct TrainResult {
  double final_train_loss = 0.0;
  double test_accuracy = 0.0;
  std::vector<double> epoch_losses;
};

/// Train a classifier with Adam + softmax cross-entropy; returns the test
/// accuracy after the final epoch.
TrainResult train_classifier(Network& net, const Dataset& train, const Dataset& test,
                             const TrainConfig& config);

/// Evaluate classification accuracy without training.
[[nodiscard]] double evaluate_classifier(Network& net, const Dataset& test,
                                         std::size_t batch_size = 64);

/// Train a Siamese embedding branch with contrastive loss. Pairs are stacked
/// into one batch (branch A rows then branch B rows) so the twin shares
/// weights by construction. Returns pair-verification accuracy at threshold
/// margin/2.
TrainResult train_siamese(Network& branch, const PairDataset& train,
                          const PairDataset& test, const TrainConfig& config);

/// Evaluate Siamese verification accuracy without training.
[[nodiscard]] double evaluate_siamese(Network& branch, const PairDataset& test,
                                      double margin, std::size_t batch_pairs = 32);

}  // namespace xl::dnn
