// Sequential network container with QAT hooks and LayerSpec export.
#pragma once

#include <memory>
#include <vector>

#include "dnn/layer.hpp"
#include "dnn/layer_spec.hpp"
#include "dnn/optimizer.hpp"

namespace xl::dnn {

class Network {
 public:
  Network() = default;

  /// Append a layer; returns a reference to *this for chaining.
  Network& add(LayerPtr layer);

  template <typename L, typename... Args>
  Network& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  /// Forward through all layers. During QAT, activation-layer outputs are
  /// fake-quantized with per-layer tracked ranges.
  [[nodiscard]] Tensor forward(const Tensor& input, bool training = false);

  /// Backward through all layers; `grad` is dL/d(final output).
  Tensor backward(const Tensor& grad);

  /// All learnable parameters.
  [[nodiscard]] std::vector<ParamRef> parameters();

  [[nodiscard]] std::size_t parameter_count();
  [[nodiscard]] std::size_t layer_count() const noexcept { return layers_.size(); }
  [[nodiscard]] Layer& layer(std::size_t i) { return *layers_.at(i); }

  /// Enable / change quantization-aware execution. Pass {} to disable.
  void set_quantization(const QuantizationSpec& spec);
  [[nodiscard]] const QuantizationSpec& quantization() const noexcept { return quant_; }
  /// Reset tracked activation ranges (e.g. when changing bit width).
  void reset_activation_ranges();

  /// Shape inference through the whole stack.
  [[nodiscard]] Shape output_shape(const Shape& input_shape) const;

  /// Export hardware-facing layer specs for an input of the given shape
  /// (batch dimension ignored).
  [[nodiscard]] std::vector<LayerSpec> export_specs(const Shape& input_shape) const;

  /// Multi-line architecture summary.
  [[nodiscard]] std::string summary(const Shape& input_shape) const;

 private:
  std::vector<LayerPtr> layers_;
  std::vector<ActivationRange> ranges_;
  QuantizationSpec quant_;
};

}  // namespace xl::dnn
