#include "dnn/dense.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace xl::dnn {

Dense::Dense(std::size_t in_features, std::size_t out_features, xl::numerics::Rng& rng)
    : in_(in_features),
      out_(out_features),
      w_({out_features, in_features}),
      b_({out_features}),
      dw_({out_features, in_features}),
      db_({out_features}) {
  if (in_features == 0 || out_features == 0) {
    throw std::invalid_argument("Dense: zero-sized layer");
  }
  const double bound = std::sqrt(6.0 / static_cast<double>(in_features));
  for (std::size_t i = 0; i < w_.numel(); ++i) {
    w_[i] = static_cast<float>(rng.uniform(-bound, bound));
  }
}

Tensor Dense::forward(const Tensor& input, bool training) {
  if (input.rank() != 2 || input.dim(1) != in_) {
    throw std::invalid_argument("Dense::forward: expected (N, " + std::to_string(in_) +
                                "), got " + shape_to_string(input.shape()));
  }
  // The input copy exists only for backward(); inference skips it (and
  // clears any stale cache so a later backward() fails loudly).
  if (training) {
    cached_input_ = input;
  } else {
    cached_input_ = Tensor();
  }

  const bool qat = quant_ != nullptr && quant_->weights_enabled();
  const Tensor* w = &w_;
  if (qat) {
    effective_w_ = w_;
    fake_quant_symmetric(w_.span(), effective_w_.span(), quant_->weight_bits);
    w = &effective_w_;
  }

  const std::size_t batch = input.dim(0);
  Tensor out({batch, out_});
  for (std::size_t n = 0; n < batch; ++n) {
    const float* x = input.data() + n * in_;
    for (std::size_t o = 0; o < out_; ++o) {
      const float* wr = w->data() + o * in_;
      float acc = b_[o];
      for (std::size_t i = 0; i < in_; ++i) acc += wr[i] * x[i];
      out.at2(n, o) = acc;
    }
  }
  return out;
}

Tensor Dense::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) throw std::logic_error("Dense::backward before forward");
  const std::size_t batch = cached_input_.dim(0);
  if (grad_output.rank() != 2 || grad_output.dim(0) != batch || grad_output.dim(1) != out_) {
    throw std::invalid_argument("Dense::backward: gradient shape mismatch");
  }

  // Straight-through estimator: gradients flow as if the quantized weights
  // were the real ones, but are applied to the full-precision master w_.
  const bool qat = quant_ != nullptr && quant_->weights_enabled();
  const Tensor* w = qat ? &effective_w_ : &w_;

  Tensor grad_input({batch, in_});
  for (std::size_t n = 0; n < batch; ++n) {
    const float* x = cached_input_.data() + n * in_;
    const float* gy = grad_output.data() + n * out_;
    float* gx = grad_input.data() + n * in_;
    for (std::size_t o = 0; o < out_; ++o) {
      const float g = gy[o];
      if (g == 0.0F) continue;
      const float* wr = w->data() + o * in_;
      float* dwr = dw_.data() + o * in_;
      db_[o] += g;
      for (std::size_t i = 0; i < in_; ++i) {
        gx[i] += g * wr[i];
        dwr[i] += g * x[i];
      }
    }
  }
  return grad_input;
}

std::vector<ParamRef> Dense::parameters() {
  return {ParamRef{&w_, &dw_}, ParamRef{&b_, &db_}};
}

std::string Dense::describe() const {
  std::ostringstream os;
  os << "dense(" << in_ << " -> " << out_ << ")";
  return os.str();
}

Shape Dense::output_shape(const Shape& input_shape) const {
  if (input_shape.size() != 2 || input_shape[1] != in_) {
    throw std::invalid_argument("Dense::output_shape: incompatible input shape");
  }
  return {input_shape[0], out_};
}

}  // namespace xl::dnn
