#include "dnn/activations.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace xl::dnn {

Tensor ReLU::forward(const Tensor& input, bool training) {
  // The input copy exists only for backward(); inference skips it (and
  // clears any stale cache so a later backward() fails loudly).
  if (training) {
    cached_input_ = input;
  } else {
    cached_input_ = Tensor();
  }
  Tensor out = input;
  for (std::size_t i = 0; i < out.numel(); ++i) {
    if (out[i] < 0.0F) out[i] = 0.0F;
  }
  return out;
}

void ReLU::eval_into(const Shape& /*input_shape*/, std::span<const float> input,
                     std::span<float> output) {
  for (std::size_t i = 0; i < input.size(); ++i) {
    const float v = input[i];
    output[i] = v < 0.0F ? 0.0F : v;
  }
}

Tensor ReLU::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) throw std::logic_error("ReLU::backward before forward");
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.numel(); ++i) {
    if (cached_input_[i] <= 0.0F) grad[i] = 0.0F;
  }
  return grad;
}

Tensor Sigmoid::forward(const Tensor& input, bool training) {
  Tensor out = input;
  for (std::size_t i = 0; i < out.numel(); ++i) {
    out[i] = 1.0F / (1.0F + std::exp(-out[i]));
  }
  if (training) {
    cached_output_ = out;
  } else {
    cached_output_ = Tensor();
  }
  return out;
}

void Sigmoid::eval_into(const Shape& /*input_shape*/,
                        std::span<const float> input, std::span<float> output) {
  for (std::size_t i = 0; i < input.size(); ++i) {
    output[i] = 1.0F / (1.0F + std::exp(-input[i]));
  }
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
  if (cached_output_.empty()) throw std::logic_error("Sigmoid::backward before forward");
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.numel(); ++i) {
    const float y = cached_output_[i];
    grad[i] *= y * (1.0F - y);
  }
  return grad;
}

Tensor Tanh::forward(const Tensor& input, bool training) {
  Tensor out = input;
  for (std::size_t i = 0; i < out.numel(); ++i) out[i] = std::tanh(out[i]);
  if (training) {
    cached_output_ = out;
  } else {
    cached_output_ = Tensor();
  }
  return out;
}

void Tanh::eval_into(const Shape& /*input_shape*/, std::span<const float> input,
                     std::span<float> output) {
  for (std::size_t i = 0; i < input.size(); ++i) output[i] = std::tanh(input[i]);
}

Tensor Tanh::backward(const Tensor& grad_output) {
  if (cached_output_.empty()) throw std::logic_error("Tanh::backward before forward");
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.numel(); ++i) {
    const float y = cached_output_[i];
    grad[i] *= 1.0F - y * y;
  }
  return grad;
}

Dropout::Dropout(double rate, std::uint64_t seed) : rate_(rate), rng_(seed) {
  if (rate < 0.0 || rate >= 1.0) {
    throw std::invalid_argument("Dropout: rate must be in [0, 1)");
  }
}

Tensor Dropout::forward(const Tensor& input, bool training) {
  if (!training) {
    // Pure identity at inference: no mask allocation, no scaling. A stale
    // training mask is dropped so backward() after an inference pass throws.
    mask_.clear();
    return input;
  }
  if (rate_ == 0.0) {
    mask_.assign(input.numel(), 1.0F);
    return input;
  }
  const float keep = static_cast<float>(1.0 - rate_);
  mask_.resize(input.numel());
  Tensor out = input;
  for (std::size_t i = 0; i < out.numel(); ++i) {
    const bool kept = rng_.bernoulli(keep);
    mask_[i] = kept ? 1.0F / keep : 0.0F;
    out[i] *= mask_[i];
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (mask_.size() != grad_output.numel()) {
    throw std::logic_error("Dropout::backward before forward");
  }
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.numel(); ++i) grad[i] *= mask_[i];
  return grad;
}

std::string Dropout::describe() const {
  std::ostringstream os;
  os << "dropout(" << rate_ << ")";
  return os.str();
}

}  // namespace xl::dnn
