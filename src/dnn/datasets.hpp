// Synthetic, statistically controlled datasets.
//
// Substitution note (DESIGN.md): the paper trains on Sign-MNIST, CIFAR-10,
// STL-10 and Omniglot, none of which are available offline. These generators
// produce class-conditional image distributions with tunable difficulty
// (noise level and inter-class prototype overlap) and the same tensor shapes
// and class counts as the originals, so that:
//   * the model zoo trains/evaluates end-to-end on correctly shaped data, and
//   * the Fig. 5 accuracy-vs-resolution *trend* is reproducible, including
//     the paper's observation that the hardest task (STL10-like) is the most
//     sensitive to low resolution.
//
// Each class prototype is a band-limited random field (sum of oriented
// sinusoids); samples are prototypes plus translation jitter and Gaussian
// noise, normalized to [0, 1].
#pragma once

#include <cstdint>
#include <vector>

#include "dnn/tensor.hpp"

namespace xl::dnn {

struct Dataset {
  Tensor images;                    ///< (N, C, H, W) in [0, 1].
  std::vector<std::size_t> labels;  ///< N class indices.
  std::size_t classes = 0;

  [[nodiscard]] std::size_t size() const noexcept { return labels.size(); }
};

/// Paired dataset for Siamese verification (branch A/B images + same flag).
struct PairDataset {
  Tensor images_a;  ///< (P, C, H, W)
  Tensor images_b;  ///< (P, C, H, W)
  std::vector<int> same;  ///< 1 for genuine pairs.

  [[nodiscard]] std::size_t size() const noexcept { return same.size(); }
};

struct SyntheticSpec {
  std::size_t classes = 10;
  std::size_t height = 28;
  std::size_t width = 28;
  std::size_t channels = 1;
  double noise_std = 0.15;         ///< Additive Gaussian noise (difficulty).
  double prototype_overlap = 0.0;  ///< 0 = fully distinct classes, -> 1 = identical.
  std::size_t jitter_px = 2;       ///< Max |translation| augmentation.
  std::uint64_t seed = 7;
};

/// Generate `count` labelled samples.
[[nodiscard]] Dataset generate_classification(const SyntheticSpec& spec, std::size_t count,
                                              std::uint64_t salt = 0);

/// Generate `pair_count` verification pairs (50% genuine).
[[nodiscard]] PairDataset generate_pairs(const SyntheticSpec& spec, std::size_t pair_count,
                                         std::uint64_t salt = 0);

/// Extract a contiguous mini-batch [start, start+size) as a batched tensor.
[[nodiscard]] Tensor batch_images(const Dataset& data, std::size_t start, std::size_t size);
[[nodiscard]] std::vector<std::size_t> batch_labels(const Dataset& data, std::size_t start,
                                                    std::size_t size);

// --- presets matched to Table I (reduced geometry where noted) --------------

/// Sign-MNIST analogue: 24 classes, 28x28x1, easy.
[[nodiscard]] SyntheticSpec signmnist_like();
/// CIFAR-10 analogue: 10 classes, 32x32x3, moderate difficulty.
[[nodiscard]] SyntheticSpec cifar10_like();
/// STL-10 analogue: 10 classes, 3 channels, high difficulty (high overlap +
/// noise). `size` defaults to a reduced 32x32 geometry for tractable QAT
/// sweeps; pass 96 for the paper's native resolution.
[[nodiscard]] SyntheticSpec stl10_like(std::size_t size = 32);
/// Omniglot analogue for Siamese verification: many classes, 1 channel.
[[nodiscard]] SyntheticSpec omniglot_like(std::size_t size = 28);

}  // namespace xl::dnn
