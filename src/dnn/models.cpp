#include "dnn/models.hpp"

#include <stdexcept>

#include "dnn/activations.hpp"
#include "dnn/conv2d.hpp"
#include "dnn/dense.hpp"
#include "dnn/pooling.hpp"
#include "dnn/reshape.hpp"
#include "dnn/trainer.hpp"

namespace xl::dnn {

namespace {

LayerSpec pool_spec() {
  LayerSpec p;
  p.kind = LayerKind::kPool;
  p.name = "maxpool2d";
  return p;
}

LayerSpec act_spec() {
  LayerSpec a;
  a.kind = LayerKind::kActivation;
  a.name = "relu";
  return a;
}

}  // namespace

ModelSpec lenet5_spec() {
  ModelSpec m;
  m.name = "LeNet5";
  m.dataset = "Sign MNIST";
  m.input_height = 28;
  m.input_width = 28;
  m.input_channels = 1;
  m.classes = 24;
  // conv1 5x5 pad 2 keeps 28x28; pool -> 14; conv2 5x5 valid -> 10; pool -> 5.
  m.layers = {
      conv_spec("conv1", 1, 6, 5, 28, 28), act_spec(), pool_spec(),
      conv_spec("conv2", 6, 16, 5, 10, 10), act_spec(), pool_spec(),
      dense_spec("fc1", 400, 135), act_spec(),
      dense_spec("fc2", 135, 24),
  };
  return m;
}

ModelSpec cnn_cifar10_spec() {
  ModelSpec m;
  m.name = "CNN-CIFAR10";
  m.dataset = "CIFAR10";
  m.input_height = 32;
  m.input_width = 32;
  m.input_channels = 3;
  m.classes = 10;
  m.layers = {
      conv_spec("conv1", 3, 32, 3, 32, 32), act_spec(),
      conv_spec("conv2", 32, 32, 3, 32, 32), act_spec(), pool_spec(),
      conv_spec("conv3", 32, 64, 3, 16, 16), act_spec(),
      conv_spec("conv4", 64, 64, 3, 16, 16), act_spec(), pool_spec(),
      dense_spec("fc1", 4096, 201), act_spec(),
      dense_spec("fc2", 201, 10),
  };
  return m;
}

ModelSpec cnn_stl10_spec() {
  ModelSpec m;
  m.name = "CNN-STL10";
  m.dataset = "STL10";
  m.input_height = 96;
  m.input_width = 96;
  m.input_channels = 3;
  m.classes = 10;
  m.layers = {
      conv_spec("conv1", 3, 32, 3, 96, 96), act_spec(),
      conv_spec("conv2", 32, 32, 3, 96, 96), act_spec(), pool_spec(),
      conv_spec("conv3", 32, 64, 3, 48, 48), act_spec(),
      conv_spec("conv4", 64, 64, 3, 48, 48), act_spec(), pool_spec(),
      conv_spec("conv5", 64, 128, 3, 24, 24), act_spec(),
      conv_spec("conv6", 128, 128, 3, 24, 24), act_spec(), pool_spec(),
      conv_spec("conv7", 128, 256, 3, 12, 12), act_spec(), pool_spec(),
      dense_spec("fc1", 9216, 284), act_spec(),
      dense_spec("fc2", 284, 10),
  };
  return m;
}

ModelSpec siamese_omniglot_spec() {
  ModelSpec m;
  m.name = "Siamese-CNN";
  m.dataset = "Omniglot";
  m.input_height = 105;
  m.input_width = 105;
  m.input_channels = 1;
  m.classes = 1;  // Verification output.
  m.branches = 2; // Twin branches share weights.
  // Koch et al. one-shot network; parameter count = 38,951,745 exactly.
  m.layers = {
      conv_spec("conv1", 1, 64, 10, 96, 96), act_spec(), pool_spec(),
      conv_spec("conv2", 64, 128, 7, 42, 42), act_spec(), pool_spec(),
      conv_spec("conv3", 128, 128, 4, 18, 18), act_spec(), pool_spec(),
      conv_spec("conv4", 128, 256, 4, 6, 6), act_spec(),
      dense_spec("fc1", 9216, 4096), act_spec(),
      dense_spec("fc_out", 4096, 1),
  };
  return m;
}

std::vector<ModelSpec> table1_models() {
  return {lenet5_spec(), cnn_cifar10_spec(), cnn_stl10_spec(), siamese_omniglot_spec()};
}

std::size_t paper_parameter_count(int model_no) {
  switch (model_no) {
    case 1: return 60074;
    case 2: return 890410;
    case 3: return 3204080;
    case 4: return 38951745;
    default: throw std::invalid_argument("paper_parameter_count: model_no in [1, 4]");
  }
}

Network build_lenet5(xl::numerics::Rng& rng, std::size_t classes) {
  Network net;
  net.emplace<Conv2d>(Conv2dConfig{1, 6, 5, 1, 2}, rng);
  net.emplace<ReLU>();
  net.emplace<MaxPool2d>(2);
  net.emplace<Conv2d>(Conv2dConfig{6, 16, 5, 1, 0}, rng);
  net.emplace<ReLU>();
  net.emplace<MaxPool2d>(2);
  net.emplace<Flatten>();
  net.emplace<Dense>(400, 135, rng);
  net.emplace<ReLU>();
  net.emplace<Dense>(135, classes, rng);
  return net;
}

Network build_reduced_cifar_cnn(xl::numerics::Rng& rng, std::size_t classes) {
  Network net;  // Input 16x16x3.
  net.emplace<Conv2d>(Conv2dConfig{3, 16, 3, 1, 1}, rng);
  net.emplace<ReLU>();
  net.emplace<Conv2d>(Conv2dConfig{16, 16, 3, 1, 1}, rng);
  net.emplace<ReLU>();
  net.emplace<MaxPool2d>(2);
  net.emplace<Conv2d>(Conv2dConfig{16, 32, 3, 1, 1}, rng);
  net.emplace<ReLU>();
  net.emplace<Conv2d>(Conv2dConfig{32, 32, 3, 1, 1}, rng);
  net.emplace<ReLU>();
  net.emplace<MaxPool2d>(2);
  net.emplace<Flatten>();
  net.emplace<Dense>(32 * 4 * 4, 64, rng);
  net.emplace<ReLU>();
  net.emplace<Dense>(64, classes, rng);
  return net;
}

Network build_reduced_stl_cnn(xl::numerics::Rng& rng, std::size_t classes) {
  Network net;  // Input 24x24x3; 7 conv layers like the full model.
  net.emplace<Conv2d>(Conv2dConfig{3, 12, 3, 1, 1}, rng);
  net.emplace<ReLU>();
  net.emplace<Conv2d>(Conv2dConfig{12, 12, 3, 1, 1}, rng);
  net.emplace<ReLU>();
  net.emplace<MaxPool2d>(2);  // -> 12x12
  net.emplace<Conv2d>(Conv2dConfig{12, 24, 3, 1, 1}, rng);
  net.emplace<ReLU>();
  net.emplace<Conv2d>(Conv2dConfig{24, 24, 3, 1, 1}, rng);
  net.emplace<ReLU>();
  net.emplace<MaxPool2d>(2);  // -> 6x6
  net.emplace<Conv2d>(Conv2dConfig{24, 32, 3, 1, 1}, rng);
  net.emplace<ReLU>();
  net.emplace<Conv2d>(Conv2dConfig{32, 32, 3, 1, 1}, rng);
  net.emplace<ReLU>();
  net.emplace<Conv2d>(Conv2dConfig{32, 48, 3, 1, 1}, rng);
  net.emplace<ReLU>();
  net.emplace<MaxPool2d>(2);  // -> 3x3
  net.emplace<Flatten>();
  net.emplace<Dense>(48 * 3 * 3, 96, rng);
  net.emplace<ReLU>();
  net.emplace<Dense>(96, classes, rng);
  return net;
}

Network build_reduced_siamese_branch(xl::numerics::Rng& rng) {
  Network net;  // Input 28x28x1 -> 64-d embedding.
  net.emplace<Conv2d>(Conv2dConfig{1, 16, 5, 1, 2}, rng);
  net.emplace<ReLU>();
  net.emplace<MaxPool2d>(2);  // -> 14x14
  net.emplace<Conv2d>(Conv2dConfig{16, 32, 3, 1, 1}, rng);
  net.emplace<ReLU>();
  net.emplace<MaxPool2d>(2);  // -> 7x7
  net.emplace<Flatten>();
  net.emplace<Dense>(32 * 7 * 7, 64, rng);
  return net;
}

Network build_table1_proxy_mlp(xl::numerics::Rng& rng) {
  const SyntheticSpec spec = table1_proxy_task();
  Network net;
  net.emplace<Flatten>();
  net.emplace<Dense>(spec.height * spec.width, 64, rng);
  net.emplace<ReLU>();
  net.emplace<Dense>(64, spec.classes, rng);
  return net;
}

SyntheticSpec table1_proxy_task() {
  SyntheticSpec spec = signmnist_like();
  spec.height = 12;
  spec.width = 12;
  return spec;
}

Table1ProxyMlp train_table1_proxy_mlp(std::size_t epochs) {
  const SyntheticSpec spec = table1_proxy_task();
  const Dataset train = generate_classification(spec, 768, 0);
  Table1ProxyMlp proxy;
  proxy.test = generate_classification(spec, 128, 1);
  xl::numerics::Rng rng(21);
  proxy.net = build_table1_proxy_mlp(rng);
  TrainConfig cfg;
  cfg.epochs = epochs;
  cfg.batch_size = 32;
  cfg.learning_rate = 5e-3;
  proxy.float_accuracy =
      train_classifier(proxy.net, train, proxy.test, cfg).test_accuracy;
  return proxy;
}

Shape reduced_input_shape(int model_no) {
  switch (model_no) {
    case 1: return {1, 1, 28, 28};
    case 2: return {1, 3, 16, 16};
    case 3: return {1, 3, 24, 24};
    case 4: return {1, 1, 28, 28};
    default: throw std::invalid_argument("reduced_input_shape: model_no in [1, 4]");
  }
}

}  // namespace xl::dnn
