// Fake quantization and quantization-aware training (QAT) support.
//
// Mirrors the QKeras setup the paper uses for Fig. 5: weights and activations
// are quantized to b bits during the forward pass while training updates the
// full-precision master copies (straight-through estimator). Weights use a
// symmetric signed quantizer; activations (post-ReLU, non-negative) use an
// unsigned quantizer with a running-range estimate.
#pragma once

#include <span>

namespace xl::dnn {

/// Per-network quantization configuration; 0 bits means "disabled".
struct QuantizationSpec {
  int weight_bits = 0;
  int activation_bits = 0;

  [[nodiscard]] bool weights_enabled() const noexcept { return weight_bits > 0; }
  [[nodiscard]] bool activations_enabled() const noexcept { return activation_bits > 0; }
};

/// Symmetric signed fake quantization of `values` into `out` (may alias).
/// scale = max|x| / (2^(b-1) - 1); b == 1 degenerates to binary +-mean|x|.
void fake_quant_symmetric(std::span<const float> values, std::span<float> out, int bits);

/// Unsigned fake quantization to [0, range] with 2^b - 1 steps; b == 1 maps
/// to the two levels {0, range}. Negative inputs clamp to 0.
void fake_quant_unsigned(std::span<const float> values, std::span<float> out, int bits,
                         float range);

/// Tracks the observed dynamic range of one activation tensor across
/// training (simple max-tracking, matching QKeras' default po2-free mode).
class ActivationRange {
 public:
  void observe(std::span<const float> values) noexcept;
  [[nodiscard]] float range() const noexcept { return range_; }
  void reset() noexcept { range_ = 0.0F; }

  /// Quantize in place with the tracked range (no-op when range is 0).
  void quantize_inplace(std::span<float> values, int bits) const;

 private:
  float range_ = 0.0F;
};

}  // namespace xl::dnn
