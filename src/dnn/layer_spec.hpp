// Hardware-facing layer descriptions.
//
// The accelerator model (xl_core) maps DNN layers onto VDP units from their
// *shapes* alone — it never needs the weights. LayerSpec is the narrow
// interface between the DNN substrate and the architecture model: dimensions
// of every CONV and FC layer plus enough metadata to count MAC operations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace xl::dnn {

enum class LayerKind : std::uint8_t {
  kConv,     ///< Accelerated on CONV VDP units.
  kDense,    ///< Accelerated on FC VDP units.
  kPool,     ///< Electronic domain.
  kActivation,  ///< Electronic / EAM domain.
  kOther,    ///< Flatten, dropout, ... (no compute mapped).
};

/// Shape summary of one layer as mapped to hardware.
struct LayerSpec {
  LayerKind kind = LayerKind::kOther;
  std::string name;

  // CONV fields.
  std::size_t in_channels = 0;
  std::size_t out_channels = 0;
  std::size_t kernel = 0;
  std::size_t stride = 1;
  std::size_t out_height = 0;
  std::size_t out_width = 0;

  // DENSE fields.
  std::size_t in_features = 0;
  std::size_t out_features = 0;

  /// Dot products this layer performs per inference and their length.
  [[nodiscard]] std::size_t dot_product_count() const noexcept;
  [[nodiscard]] std::size_t dot_product_length() const noexcept;
  /// Multiply-accumulate operations per inference.
  [[nodiscard]] std::size_t mac_count() const noexcept;
  /// Learnable parameters (weights + biases) of the layer.
  [[nodiscard]] std::size_t parameter_count() const noexcept;

  [[nodiscard]] bool is_accelerated() const noexcept {
    return kind == LayerKind::kConv || kind == LayerKind::kDense;
  }
};

/// Whole-model shape description used by the performance model.
struct ModelSpec {
  std::string name;
  std::string dataset;
  std::size_t input_height = 0;
  std::size_t input_width = 0;
  std::size_t input_channels = 0;
  std::size_t classes = 0;
  std::vector<LayerSpec> layers;
  /// Number of parallel branches sharing the layer stack (2 for Siamese).
  std::size_t branches = 1;

  [[nodiscard]] std::size_t conv_layer_count() const noexcept;
  [[nodiscard]] std::size_t dense_layer_count() const noexcept;
  [[nodiscard]] std::size_t total_parameters() const noexcept;
  /// MACs per inference (all branches).
  [[nodiscard]] std::size_t total_macs() const noexcept;
};

/// Convenience builders used by the model zoo.
[[nodiscard]] LayerSpec conv_spec(std::string name, std::size_t in_c, std::size_t out_c,
                                  std::size_t kernel, std::size_t out_h, std::size_t out_w,
                                  std::size_t stride = 1);
[[nodiscard]] LayerSpec dense_spec(std::string name, std::size_t in_f, std::size_t out_f);

}  // namespace xl::dnn
