// Abstract layer interface for the sequential DNN container.
//
// Classic cached-input backprop: forward() stores whatever backward() needs;
// backward() receives dL/d(output), returns dL/d(input), and accumulates
// parameter gradients into the grad tensors exposed via parameters().
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "dnn/layer_spec.hpp"
#include "dnn/quantize.hpp"
#include "dnn/tensor.hpp"

namespace xl::dnn {

/// A learnable parameter and its gradient accumulator.
struct ParamRef {
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Compute the layer output; `training` enables dropout masks, range
  /// tracking, and other train-only behaviour.
  virtual Tensor forward(const Tensor& input, bool training) = 0;

  /// Backpropagate; must be called after forward() on the same input.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Learnable parameters (empty for stateless layers).
  virtual std::vector<ParamRef> parameters() { return {}; }

  /// Short kind tag, e.g. "conv2d", "dense", "relu".
  [[nodiscard]] virtual std::string kind() const = 0;

  /// Structural kind for switch-based dispatch, reusing the hardware-facing
  /// LayerSpec taxonomy: kConv/kDense layers are the ones the photonic
  /// engine accelerates (a kConv layer IS-A Conv2d, kDense IS-A Dense);
  /// everything else runs in the electronic domain. This replaces the
  /// dynamic_cast chains previously scattered across consumers.
  [[nodiscard]] virtual LayerKind kind_id() const noexcept { return LayerKind::kOther; }

  /// Human-readable one-line description.
  [[nodiscard]] virtual std::string describe() const { return kind(); }

  /// Output shape for a given input shape (shape inference, no compute).
  [[nodiscard]] virtual Shape output_shape(const Shape& input_shape) const = 0;

  /// Total learnable parameter element count.
  [[nodiscard]] std::size_t parameter_count() {
    std::size_t acc = 0;
    for (const ParamRef& p : parameters()) acc += p.value->numel();
    return acc;
  }

  /// Install the network-wide quantization spec (weight layers honour it).
  virtual void set_quantization(const QuantizationSpec* spec) { quant_ = spec; }

  /// True when the layer output is an activation the network should fake-
  /// quantize during QAT (nonlinearities and pooling outputs).
  [[nodiscard]] virtual bool is_activation() const { return false; }

  // --- zero-allocation inference protocol (core::ExecutionPlan) -------------
  //
  // A compiled execution plan classifies each layer once and then runs the
  // steady state without Tensor construction: identity layers become shape-
  // only views, eval_into layers compute straight into plan-owned arena
  // buffers, and everything else falls back to the allocating forward().

  /// True when forward(input, false) returns the input data unchanged (only
  /// the shape may differ, e.g. Flatten, inference-mode Dropout). A plan
  /// turns such layers into zero-copy views.
  [[nodiscard]] virtual bool inference_identity() const noexcept { return false; }

  /// True when eval_into() is implemented.
  [[nodiscard]] virtual bool supports_eval_into() const noexcept { return false; }

  /// Inference-mode forward into a caller-provided buffer. Contract:
  ///   * `output` receives exactly the data forward(input, false) would
  ///     return, bit for bit (output size = numel of output_shape(in_shape));
  ///   * no heap allocation and no training-state mutation (backward-facing
  ///     caches are untouched — backward() after eval_into() is invalid);
  ///   * `input`/`output` must not alias.
  /// Base implementation throws std::logic_error (check supports_eval_into).
  virtual void eval_into(const Shape& input_shape, std::span<const float> input,
                         std::span<float> output) {
    (void)input_shape;
    (void)input;
    (void)output;
    throw std::logic_error(kind() + ": eval_into not supported");
  }

 protected:
  const QuantizationSpec* quant_ = nullptr;  ///< Owned by the Network.
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace xl::dnn
