// Max and average 2-D pooling (NCHW). Pooling executes in the electronic
// domain on CrossLight (Section IV-C intro), so these layers carry no
// photonic mapping, but the DNN substrate still needs them for training.
#pragma once

#include <vector>

#include "dnn/layer.hpp"

namespace xl::dnn {

class MaxPool2d : public Layer {
 public:
  explicit MaxPool2d(std::size_t window = 2, std::size_t stride = 0 /* = window */);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string kind() const override { return "maxpool2d"; }
  [[nodiscard]] LayerKind kind_id() const noexcept override { return LayerKind::kPool; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] Shape output_shape(const Shape& input_shape) const override;
  [[nodiscard]] bool is_activation() const override { return true; }
  [[nodiscard]] bool supports_eval_into() const noexcept override { return true; }
  void eval_into(const Shape& input_shape, std::span<const float> input,
                 std::span<float> output) override;

  [[nodiscard]] std::size_t window() const noexcept { return window_; }
  [[nodiscard]] std::size_t stride() const noexcept { return stride_; }

 private:
  std::size_t window_;
  std::size_t stride_;
  Shape cached_input_shape_;
  std::vector<std::size_t> argmax_;  ///< Flat input index per output element.
};

class AvgPool2d : public Layer {
 public:
  explicit AvgPool2d(std::size_t window = 2, std::size_t stride = 0 /* = window */);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string kind() const override { return "avgpool2d"; }
  [[nodiscard]] LayerKind kind_id() const noexcept override { return LayerKind::kPool; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] Shape output_shape(const Shape& input_shape) const override;
  [[nodiscard]] bool is_activation() const override { return true; }
  [[nodiscard]] bool supports_eval_into() const noexcept override { return true; }
  void eval_into(const Shape& input_shape, std::span<const float> input,
                 std::span<float> output) override;

 private:
  std::size_t window_;
  std::size_t stride_;
  Shape cached_input_shape_;
};

}  // namespace xl::dnn
