#include "dnn/trainer.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "dnn/loss.hpp"

namespace xl::dnn {

namespace {

/// Stack pair images [A-batch | B-batch] into one (2P, C, H, W) tensor.
Tensor stack_pairs(const PairDataset& data, std::size_t start, std::size_t count) {
  const Shape& s = data.images_a.shape();
  Tensor out({2 * count, s[1], s[2], s[3]});
  const std::size_t stride = s[1] * s[2] * s[3];
  std::copy_n(data.images_a.data() + start * stride, count * stride, out.data());
  std::copy_n(data.images_b.data() + start * stride, count * stride,
              out.data() + count * stride);
  return out;
}

}  // namespace

TrainResult train_classifier(Network& net, const Dataset& train, const Dataset& test,
                             const TrainConfig& config) {
  if (train.size() == 0) throw std::invalid_argument("train_classifier: empty dataset");
  Adam opt(config.learning_rate);
  const std::vector<ParamRef> params = net.parameters();

  TrainResult result;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start + config.batch_size <= train.size();
         start += config.batch_size) {
      const Tensor x = batch_images(train, start, config.batch_size);
      const std::vector<std::size_t> y = batch_labels(train, start, config.batch_size);
      const Tensor logits = net.forward(x, /*training=*/true);
      const LossResult loss = softmax_cross_entropy(logits, y);
      net.backward(loss.gradient);
      opt.step(params);
      epoch_loss += loss.value;
      ++batches;
    }
    epoch_loss /= static_cast<double>(std::max<std::size_t>(batches, 1));
    result.epoch_losses.push_back(epoch_loss);
    if (config.verbose) {
      std::printf("  epoch %zu/%zu  loss %.4f\n", epoch + 1, config.epochs, epoch_loss);
    }
  }
  result.final_train_loss = result.epoch_losses.empty() ? 0.0 : result.epoch_losses.back();
  result.test_accuracy = evaluate_classifier(net, test);
  return result;
}

double evaluate_classifier(Network& net, const Dataset& test, std::size_t batch_size) {
  if (test.size() == 0) throw std::invalid_argument("evaluate_classifier: empty dataset");
  std::size_t correct = 0;
  std::size_t total = 0;
  for (std::size_t start = 0; start < test.size(); start += batch_size) {
    const std::size_t count = std::min(batch_size, test.size() - start);
    const Tensor x = batch_images(test, start, count);
    const std::vector<std::size_t> y = batch_labels(test, start, count);
    const Tensor logits = net.forward(x, /*training=*/false);
    const double acc = accuracy(logits, y);
    correct += static_cast<std::size_t>(acc * static_cast<double>(count) + 0.5);
    total += count;
  }
  return static_cast<double>(correct) / static_cast<double>(total);
}

TrainResult train_siamese(Network& branch, const PairDataset& train,
                          const PairDataset& test, const TrainConfig& config) {
  if (train.size() == 0) throw std::invalid_argument("train_siamese: empty dataset");
  Adam opt(config.learning_rate);
  const std::vector<ParamRef> params = branch.parameters();

  TrainResult result;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start + config.batch_size <= train.size();
         start += config.batch_size) {
      const Tensor stacked = stack_pairs(train, start, config.batch_size);
      std::vector<int> same(train.same.begin() + static_cast<std::ptrdiff_t>(start),
                            train.same.begin() +
                                static_cast<std::ptrdiff_t>(start + config.batch_size));
      const Tensor embeddings = branch.forward(stacked, /*training=*/true);
      const LossResult loss =
          contrastive_loss(embeddings, same, config.contrastive_margin);
      branch.backward(loss.gradient);
      opt.step(params);
      epoch_loss += loss.value;
      ++batches;
    }
    epoch_loss /= static_cast<double>(std::max<std::size_t>(batches, 1));
    result.epoch_losses.push_back(epoch_loss);
    if (config.verbose) {
      std::printf("  epoch %zu/%zu  loss %.4f\n", epoch + 1, config.epochs, epoch_loss);
    }
  }
  result.final_train_loss = result.epoch_losses.empty() ? 0.0 : result.epoch_losses.back();
  result.test_accuracy = evaluate_siamese(branch, test, config.contrastive_margin);
  return result;
}

double evaluate_siamese(Network& branch, const PairDataset& test, double margin,
                        std::size_t batch_pairs) {
  if (test.size() == 0) throw std::invalid_argument("evaluate_siamese: empty dataset");
  double weighted_acc = 0.0;
  std::size_t total = 0;
  for (std::size_t start = 0; start < test.size(); start += batch_pairs) {
    const std::size_t count = std::min(batch_pairs, test.size() - start);
    const Tensor stacked = stack_pairs(test, start, count);
    std::vector<int> same(test.same.begin() + static_cast<std::ptrdiff_t>(start),
                          test.same.begin() + static_cast<std::ptrdiff_t>(start + count));
    const Tensor embeddings = branch.forward(stacked, /*training=*/false);
    weighted_acc +=
        pair_accuracy(embeddings, same, margin / 2.0) * static_cast<double>(count);
    total += count;
  }
  return weighted_acc / static_cast<double>(total);
}

}  // namespace xl::dnn
