// Network weight serialization — save/load trained parameters so examples
// and downstream users can train once and reuse checkpoints.
//
// Format (binary, little-endian host order):
//   magic "XLW1" | u64 tensor_count | per tensor: u64 rank, u64 dims...,
//   f32 data...
// Only parameter *values* are stored; the architecture must be rebuilt by
// code (the usual small-framework contract).
#pragma once

#include <iosfwd>
#include <string>

#include "dnn/network.hpp"

namespace xl::dnn {

/// Serialize all parameters of `net` to a stream/file.
/// Throws std::runtime_error on I/O failure.
void save_weights(Network& net, std::ostream& out);
void save_weights(Network& net, const std::string& path);

/// Load parameters into an identically structured network.
/// Throws std::runtime_error on I/O failure or architecture mismatch
/// (tensor count / shape disagreement).
void load_weights(Network& net, std::istream& in);
void load_weights(Network& net, const std::string& path);

}  // namespace xl::dnn
