#include "dnn/batchnorm.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace xl::dnn {

BatchNorm::BatchNorm(std::size_t features, double momentum, double epsilon)
    : features_(features),
      momentum_(momentum),
      epsilon_(epsilon),
      gamma_({features}, 1.0F),
      beta_({features}),
      dgamma_({features}),
      dbeta_({features}),
      running_mean_(features, 0.0),
      running_var_(features, 1.0),
      inference_inv_std_(features, 0.0) {
  if (features == 0) throw std::invalid_argument("BatchNorm: zero features");
  if (momentum < 0.0 || momentum >= 1.0) {
    throw std::invalid_argument("BatchNorm: momentum in [0, 1)");
  }
  if (epsilon <= 0.0) throw std::invalid_argument("BatchNorm: epsilon must be > 0");
}

Shape BatchNorm::output_shape(const Shape& input_shape) const {
  const std::size_t feature_dim = input_shape.size() == 4 ? input_shape[1]
                                  : input_shape.size() == 2 ? input_shape[1]
                                                            : 0;
  if (feature_dim != features_) {
    throw std::invalid_argument("BatchNorm: feature dimension mismatch");
  }
  return input_shape;
}

template <typename Fn>
void BatchNorm::for_each(const Shape& shape, Fn&& fn) const {
  if (shape.size() == 2) {
    for (std::size_t n = 0; n < shape[0]; ++n) {
      for (std::size_t f = 0; f < shape[1]; ++f) fn(f, n * shape[1] + f);
    }
  } else {  // Rank-4 NCHW.
    const std::size_t hw = shape[2] * shape[3];
    for (std::size_t n = 0; n < shape[0]; ++n) {
      for (std::size_t c = 0; c < shape[1]; ++c) {
        const std::size_t base = (n * shape[1] + c) * hw;
        for (std::size_t i = 0; i < hw; ++i) fn(c, base + i);
      }
    }
  }
}

Tensor BatchNorm::forward(const Tensor& input, bool training) {
  (void)output_shape(input.shape());  // Validates.

  if (!training) {
    // Inference is a per-feature affine from the running statistics: no
    // batch-statistic vectors are built and no backward caches are written
    // (stale ones are dropped so a later backward() fails loudly).
    cached_input_ = Tensor();
    cached_training_ = false;
    for (std::size_t f = 0; f < features_; ++f) {
      inference_inv_std_[f] = 1.0 / std::sqrt(running_var_[f] + epsilon_);
    }
    Tensor out = input;
    for_each(input.shape(), [&](std::size_t f, std::size_t i) {
      const double norm = (input[i] - running_mean_[f]) * inference_inv_std_[f];
      out[i] = static_cast<float>(norm * gamma_[f] + beta_[f]);
    });
    return out;
  }

  cached_input_ = input;
  cached_training_ = true;

  const std::size_t per_feature = input.numel() / features_;
  batch_mean_.assign(features_, 0.0);
  batch_inv_std_.assign(features_, 0.0);

  std::vector<double> mean(features_, 0.0);
  std::vector<double> var(features_, 0.0);
  for_each(input.shape(), [&](std::size_t f, std::size_t i) { mean[f] += input[i]; });
  for (std::size_t f = 0; f < features_; ++f) mean[f] /= static_cast<double>(per_feature);
  for_each(input.shape(), [&](std::size_t f, std::size_t i) {
    const double d = input[i] - mean[f];
    var[f] += d * d;
  });
  for (std::size_t f = 0; f < features_; ++f) {
    var[f] /= static_cast<double>(per_feature);
    running_mean_[f] = momentum_ * running_mean_[f] + (1.0 - momentum_) * mean[f];
    running_var_[f] = momentum_ * running_var_[f] + (1.0 - momentum_) * var[f];
  }
  for (std::size_t f = 0; f < features_; ++f) {
    batch_mean_[f] = mean[f];
    batch_inv_std_[f] = 1.0 / std::sqrt(var[f] + epsilon_);
  }

  Tensor out = input;
  for_each(input.shape(), [&](std::size_t f, std::size_t i) {
    const double norm = (input[i] - batch_mean_[f]) * batch_inv_std_[f];
    out[i] = static_cast<float>(norm * gamma_[f] + beta_[f]);
  });
  return out;
}

void BatchNorm::eval_into(const Shape& input_shape, std::span<const float> input,
                          std::span<float> output) {
  for (std::size_t f = 0; f < features_; ++f) {
    inference_inv_std_[f] = 1.0 / std::sqrt(running_var_[f] + epsilon_);
  }
  for_each(input_shape, [&](std::size_t f, std::size_t i) {
    const double norm = (input[i] - running_mean_[f]) * inference_inv_std_[f];
    output[i] = static_cast<float>(norm * gamma_[f] + beta_[f]);
  });
}

Tensor BatchNorm::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) throw std::logic_error("BatchNorm::backward before forward");
  const Shape& shape = cached_input_.shape();
  const std::size_t per_feature = cached_input_.numel() / features_;

  // Accumulate per-feature sums needed by the BN backward formula.
  std::vector<double> sum_dy(features_, 0.0);
  std::vector<double> sum_dy_xhat(features_, 0.0);
  for_each(shape, [&](std::size_t f, std::size_t i) {
    const double xhat = (cached_input_[i] - batch_mean_[f]) * batch_inv_std_[f];
    sum_dy[f] += grad_output[i];
    sum_dy_xhat[f] += grad_output[i] * xhat;
  });
  for (std::size_t f = 0; f < features_; ++f) {
    dbeta_[f] += static_cast<float>(sum_dy[f]);
    dgamma_[f] += static_cast<float>(sum_dy_xhat[f]);
  }

  Tensor grad_input(shape);
  const auto m = static_cast<double>(per_feature);
  if (cached_training_) {
    for_each(shape, [&](std::size_t f, std::size_t i) {
      const double xhat = (cached_input_[i] - batch_mean_[f]) * batch_inv_std_[f];
      const double term = m * grad_output[i] - sum_dy[f] - xhat * sum_dy_xhat[f];
      grad_input[i] =
          static_cast<float>(gamma_[f] * batch_inv_std_[f] * term / m);
    });
  } else {
    // Inference-mode BN is a per-feature affine map.
    for_each(shape, [&](std::size_t f, std::size_t i) {
      grad_input[i] = static_cast<float>(grad_output[i] * gamma_[f] * batch_inv_std_[f]);
    });
  }
  return grad_input;
}

std::vector<ParamRef> BatchNorm::parameters() {
  return {ParamRef{&gamma_, &dgamma_}, ParamRef{&beta_, &dbeta_}};
}

std::string BatchNorm::describe() const {
  std::ostringstream os;
  os << "batchnorm(" << features_ << ")";
  return os.str();
}

}  // namespace xl::dnn
