// Chase-Lev work-stealing deque over 64-bit work refs.
//
// One deque per pool worker: the owning worker pushes and pops at the
// bottom (LIFO, cache-warm), thieves steal from the top (FIFO, oldest —
// which for lazily split tile ranges is the largest outstanding chunk).
// The implementation follows the weak-memory formulation of Le, Pop,
// Cohen & Zappa Nardelli (PPoPP'13), with two deliberate deviations:
//
//   * Every shared cell is a std::atomic and every cross-thread edge is a
//     seq_cst operation on `top_`/`bottom_` instead of standalone fences.
//     ThreadSanitizer does not model fences, so the fence-based original
//     reports false races; this formulation is TSan-clean by construction
//     and the extra cost is irrelevant next to a tile's work.
//   * The buffer is a fixed-capacity ring (no growth): push_bottom()
//     reports failure when full and the caller runs the ref inline. The
//     pool sizes the ring so that never happens in practice, and the
//     fallback keeps the hot path allocation-free either way.
//
// A steal may read a cell that a concurrent pop_bottom also claims; the
// CAS on `top_` arbitrates, and the loser discards its (possibly stale)
// read — stale values are never executed.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

namespace xl::exec {

class WorkDeque {
 public:
  /// `capacity` is rounded up to a power of two (>= 2).
  explicit WorkDeque(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    buffer_ = std::make_unique<std::atomic<std::uint64_t>[]>(cap);
  }

  WorkDeque(const WorkDeque&) = delete;
  WorkDeque& operator=(const WorkDeque&) = delete;

  /// Owner only. False when the ring is full (caller runs the ref inline).
  bool push_bottom(std::uint64_t value) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    if (b - t > static_cast<std::int64_t>(mask_)) return false;
    buffer_[static_cast<std::size_t>(b) & mask_].store(value,
                                                       std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_seq_cst);
    return true;
  }

  /// Owner only. False when empty (or the last element lost to a thief).
  bool pop_bottom(std::uint64_t* out) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t <= b) {
      const std::uint64_t value =
          buffer_[static_cast<std::size_t>(b) & mask_].load(
              std::memory_order_relaxed);
      if (t == b) {
        // Last element: race the thieves for it via the top CAS.
        const bool won = top_.compare_exchange_strong(
            t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
        bottom_.store(b + 1, std::memory_order_relaxed);
        if (!won) return false;
      }
      *out = value;
      return true;
    }
    bottom_.store(b + 1, std::memory_order_relaxed);
    return false;
  }

  /// Any thread. False when empty or the CAS lost a race (caller retries
  /// elsewhere); a lost CAS also discards the speculative cell read.
  bool steal_top(std::uint64_t* out) {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return false;
    const std::uint64_t value =
        buffer_[static_cast<std::size_t>(t) & mask_].load(
            std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return false;
    }
    *out = value;
    return true;
  }

  [[nodiscard]] bool empty() const {
    return top_.load(std::memory_order_acquire) >=
           bottom_.load(std::memory_order_acquire);
  }

 private:
  std::size_t mask_ = 1;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buffer_;
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
};

}  // namespace xl::exec
