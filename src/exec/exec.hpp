// Convenience front door of xl::exec — see task_pool.hpp for the full
// executor contract (deterministic tile decomposition, lanes, parking).
#pragma once

#include <cstddef>
#include <type_traits>

#include "exec/task_pool.hpp"

namespace xl::exec {

/// parallel_for over the current() pool with an ordinary callable.
///
/// `body(i0, i1, lane)` is invoked once per canonical tile of
/// [begin, end) — the tile set is a pure function of (range, grain, pool
/// width), so per-index values are bit-identical under any thread count
/// and steal order. `lane` < width() uniquely identifies the executing
/// hand within this call; index per-lane scratch with it. Blocks until
/// every tile ran (all tile writes happen-before the return).
///
/// The callable stays on the caller's stack and travels as a raw
/// function pointer + context — no heap allocation on any path. It MUST
/// NOT throw: capture failures into shared state inside the body and
/// rethrow after the call returns (DseEngine shows the pattern).
template <typename Body>
inline void parallel_for(std::size_t begin, std::size_t end,
                         std::size_t grain, Body&& body) {
  using Fn = std::remove_reference_t<Body>;
  Fn& ref = body;
  current().parallel_for(
      begin, end, grain,
      [](void* ctx, std::size_t i0, std::size_t i1, std::size_t lane) {
        (*static_cast<Fn*>(ctx))(i0, i1, lane);
      },
      &ref);
}

}  // namespace xl::exec
