// xl::exec — the persistent work-stealing executor under the whole
// parallel spine (numerics GEMM, core batched VDP + DSE, serve, fleet).
//
// Why it exists: PR 6/8 removed compute and allocator overhead from the
// hot path, but every inference still paid OpenMP fork-join setup and
// barrier cost per GEMM region, and serve/fleet parked one dedicated OS
// thread per component. This pool is created once per process (or per
// test scope), keeps its workers parked on a condvar parking lot between
// bursts, and exposes two primitives:
//
//   * parallel_for(begin, end, grain, fn) — CPU lanes. The range is cut
//     into canonical tiles [begin + t*grain, min(end, begin+(t+1)*grain));
//     the tile set is a PURE FUNCTION of (range, grain, pool width) and
//     never of runtime stealing order, so any value computed per index is
//     bit-identical for every thread count and every steal interleaving.
//     fn is invoked once per tile as fn(i0, i1, lane) where lane ∈
//     [0, lanes()) uniquely identifies the executing hand *within this
//     call* (lane 0 = the calling thread) — safe to index per-lane
//     scratch pools with. The call blocks until every tile ran, which is
//     also the memory barrier: all tile writes happen-before the return.
//   * submit_blocking(fn) — the blocking lane. Runs fn on a cached
//     service thread (grown on demand, parked when idle, reused across
//     runtimes/nodes) for loops that sleep or block on I/O, pacing, or
//     condition variables. Blocking tasks never occupy a CPU lane, so a
//     serve drain waiting out a batching deadline cannot starve a GEMM.
//
// Distribution (deterministic decomposition, dynamic placement): the
// caller keeps a leading share of tiles for itself and publishes the rest
// as per-worker chunks in a fixed job slot; the parking lot wakes exactly
// as many workers as there are chunks. A woken worker claims a chunk,
// owner-pushes it onto its Chase-Lev deque (work_deque.hpp) and splits it
// lazily from the bottom; idle workers steal halves from the top. Tiles
// are executed exactly once regardless of who runs them — placement
// affects wall-clock only, never values.
//
// Zero-allocation contract: parallel_for never touches the heap — jobs
// live in a fixed slot array, chunk descriptors are embedded, deque rings
// are preallocated, and fn travels as a raw function pointer + context
// (exec.hpp provides the lambda trampoline). When every slot is busy or
// the pool has one lane, the call degrades to inline serial execution of
// the same tile set. Nested parallel_for calls (from inside a tile) are
// serialized inline, matching OpenMP's nested-disabled default.
//
// Width resolution mirrors XL_DISABLE_SIMD: the XL_EXEC_THREADS
// environment variable overrides the default hardware_concurrency width
// (resolved once, at first use); tests pin widths in-process with
// ScopedPool. CMake's XL_USE_OPENMP=ON keeps the original OpenMP regions
// for A/B benching — this pool is the default.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/work_deque.hpp"

namespace xl::exec {

/// Hard lane cap: bounds the embedded per-job chunk array (and therefore
/// the zero-allocation guarantee). XL_EXEC_THREADS and TaskPool widths
/// clamp to it.
inline constexpr std::size_t kMaxLanes = 64;

/// Raw tile callback: fn(ctx, i0, i1, lane) runs indices [i0, i1).
using TileFn = void (*)(void* ctx, std::size_t i0, std::size_t i1,
                        std::size_t lane);

/// Completion handle of one blocking-lane task (see submit_blocking).
/// Copyable; wait() blocks until the task body returned. A
/// default-constructed handle is empty and wait() is a no-op.
class TaskHandle {
 public:
  TaskHandle() = default;
  void wait();
  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

 private:
  friend class TaskPool;
  struct State {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
  };
  std::shared_ptr<State> state_;
};

class TaskPool {
 public:
  /// A pool of `lanes` total hands: lanes-1 background CPU workers plus
  /// the participating caller of each parallel_for. Clamped to
  /// [1, kMaxLanes]. Width 1 spawns no threads at all — every
  /// parallel_for runs inline (the 1-core container's fast path).
  explicit TaskPool(std::size_t lanes);

  /// Joins CPU workers and blocking-lane threads. Every submit_blocking
  /// task must have completed (the serve/fleet stop paths wait on their
  /// handles before tearing the pool down) — a task still blocked inside
  /// its body would hang the join, by design: losing it silently would be
  /// worse.
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  [[nodiscard]] std::size_t lanes() const noexcept { return lanes_; }

  /// Run fn over [begin, end) in grain-sized tiles (grain 0 = auto, a
  /// pure function of range and width). Blocks until every tile ran.
  /// See the file header for the determinism and allocation contracts.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    TileFn fn, void* ctx);

  /// Run fn on a cached blocking-service thread. Returns immediately;
  /// the handle's wait() blocks until fn returned. Threads are grown on
  /// demand, parked when idle, and reused across submissions — replacing
  /// the one-std::thread-per-component pattern in serve and fleet.
  /// Throws std::runtime_error after shutdown began.
  TaskHandle submit_blocking(std::function<void()> fn);

 private:
  static constexpr std::size_t kJobSlots = 32;
  /// Tile index/count budget of one packed work ref (24 bits each).
  static constexpr std::size_t kMaxTiles = (1u << 24) - 1;
  static constexpr std::size_t kDequeCapacity = 8192;

  enum JobState : std::uint32_t { kFree = 0, kBuilding = 1, kActive = 2 };

  /// One in-flight parallel_for. Fields before `remaining` are written by
  /// the submitting thread during kBuilding and published by the release
  /// stores on the chunk claim flags / job state; they are immutable
  /// while kActive.
  struct alignas(64) ParallelJob {
    TileFn fn = nullptr;
    void* ctx = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t grain = 1;
    std::atomic<std::uint32_t> nchunks{0};
    /// Worker-share chunk descriptors. `claimed` rests at 1; the builder
    /// writes bounds then release-stores 0, and exactly one worker wins
    /// the 0->1 CAS (acquiring the bounds and the job fields).
    struct Chunk {
      std::uint32_t t0 = 0;
      std::uint32_t t1 = 0;
      std::atomic<std::uint32_t> claimed{1};
    };
    std::array<Chunk, kMaxLanes> chunks;
    /// Tiles not yet finished; the caller waits for 0. fetch_sub is
    /// acq_rel, so every tile's writes happen-before the caller's return.
    alignas(64) std::atomic<std::uint64_t> remaining{0};
    alignas(64) std::atomic<std::uint32_t> state{kFree};
  };

  /// One cached blocking-lane service thread.
  struct BlockingWorker {
    std::thread thread;
    std::mutex mutex;
    std::condition_variable cv;
    std::function<void()> fn;  ///< Non-empty = a task is pending.
    std::shared_ptr<TaskHandle::State> handle;
    std::size_t index = 0;
    bool quit = false;
  };

  static std::uint64_t pack_ref(std::size_t slot, std::size_t t0,
                                std::size_t count) {
    return (static_cast<std::uint64_t>(slot) << 48) |
           (static_cast<std::uint64_t>(t0) << 24) |
           static_cast<std::uint64_t>(count);
  }

  void run_inline(std::size_t begin, std::size_t end, std::size_t grain,
                  std::size_t tiles, TileFn fn, void* ctx);
  void run_tiles(ParallelJob& job, std::size_t t0, std::size_t t1,
                 std::size_t lane);
  void run_ref(std::uint64_t ref, std::size_t lane);
  void finish_tiles(ParallelJob& job, std::uint64_t count);
  ParallelJob* claim_slot();
  bool claim_chunk(std::size_t lane);
  bool steal(std::size_t lane, std::uint64_t* ref);
  void unpark(std::size_t count);
  void worker_main(std::size_t lane);
  void blocking_worker_main(BlockingWorker* worker);

  const std::size_t lanes_;
  std::array<ParallelJob, kJobSlots> jobs_;
  std::vector<std::unique_ptr<WorkDeque>> deques_;  ///< [lane - 1].
  std::vector<std::thread> workers_;                ///< Lanes 1..lanes_-1.

  // Parking lot: workers with no claimable work wait on the condvar; a
  // submitter bumps the epoch (under the mutex, so a worker between its
  // last work scan and the wait cannot miss it) and wakes exactly as many
  // workers as it published chunks.
  std::mutex park_mutex_;
  std::condition_variable park_cv_;
  std::atomic<std::uint64_t> park_epoch_{0};
  std::atomic<std::size_t> idle_{0};
  std::atomic<bool> quit_{false};

  // Blocking lane.
  std::mutex blocking_mutex_;
  std::vector<std::unique_ptr<BlockingWorker>> blocking_;
  std::vector<std::size_t> blocking_idle_;
  bool blocking_quit_ = false;
};

/// The process-wide pool. Width resolves once, at first use: the
/// XL_EXEC_THREADS environment variable (>= 1, clamped to kMaxLanes) when
/// set and valid, else std::thread::hardware_concurrency().
TaskPool& global_pool();

/// The pool parallel_for and submit_blocking route through on this
/// thread: the innermost live ScopedPool override, else the global pool.
TaskPool& current();

/// current().lanes() — the lane count per-lane scratch pools must cover.
std::size_t width();

/// RAII width override for the current thread (tests pin widths 1/2/8 in
/// one process, where the global pool's env-resolved width is fixed).
/// Owns a private TaskPool; restores the previous override on scope exit.
/// The override is thread-local: it governs calls made on this thread
/// (and the pool's own workers), not threads spawned by other components.
class ScopedPool {
 public:
  explicit ScopedPool(std::size_t lanes);
  ~ScopedPool();
  ScopedPool(const ScopedPool&) = delete;
  ScopedPool& operator=(const ScopedPool&) = delete;

  [[nodiscard]] TaskPool& pool() noexcept { return *pool_; }

 private:
  std::unique_ptr<TaskPool> pool_;
  TaskPool* previous_;
};

}  // namespace xl::exec
