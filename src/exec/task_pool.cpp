#include "exec/task_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace xl::exec {

namespace {

/// Innermost ScopedPool override for this thread; pool workers (CPU and
/// blocking lanes) also point this at their owning pool so code running
/// on them routes nested work back to the same pool.
thread_local TaskPool* tl_pool_override = nullptr;

/// Lane id the current thread executes tiles under. 0 outside any
/// parallel region (plain callers are lane 0 by definition).
thread_local std::size_t tl_lane = 0;

/// > 0 while executing inside a tile (or the caller's private share):
/// nested parallel_for calls run serial-inline under the enclosing lane.
thread_local int tl_depth = 0;

std::size_t resolve_global_width() {
  if (const char* env = std::getenv("XL_EXEC_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) {
      return std::min<std::size_t>(static_cast<std::size_t>(v), kMaxLanes);
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return std::min<std::size_t>(hw, kMaxLanes);
}

}  // namespace

void TaskHandle::wait() {
  if (!state_) return;
  std::unique_lock<std::mutex> lk(state_->mutex);
  state_->cv.wait(lk, [&] { return state_->done; });
}

TaskPool::TaskPool(std::size_t lanes)
    : lanes_(std::clamp<std::size_t>(lanes, 1, kMaxLanes)) {
  if (lanes_ > 1) {
    deques_.reserve(lanes_ - 1);
    for (std::size_t i = 0; i + 1 < lanes_; ++i) {
      deques_.push_back(std::make_unique<WorkDeque>(kDequeCapacity));
    }
    workers_.reserve(lanes_ - 1);
    for (std::size_t lane = 1; lane < lanes_; ++lane) {
      workers_.emplace_back(&TaskPool::worker_main, this, lane);
    }
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lk(park_mutex_);
    quit_.store(true, std::memory_order_release);
    park_epoch_.fetch_add(1, std::memory_order_relaxed);
  }
  park_cv_.notify_all();
  for (auto& worker : workers_) worker.join();

  {
    std::lock_guard<std::mutex> lk(blocking_mutex_);
    blocking_quit_ = true;
  }
  for (auto& worker : blocking_) {
    {
      std::lock_guard<std::mutex> lk(worker->mutex);
      worker->quit = true;
    }
    worker->cv.notify_all();
  }
  for (auto& worker : blocking_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

void TaskPool::parallel_for(std::size_t begin, std::size_t end,
                            std::size_t grain, TileFn fn, void* ctx) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  if (grain == 0) {
    // Auto grain targets ~4 tiles per lane — a pure function of the
    // range and the pool width, per the determinism contract.
    const std::size_t target = lanes_ * 4;
    grain = (n + target - 1) / target;
    if (grain == 0) grain = 1;
  }
  std::size_t tiles = (n + grain - 1) / grain;
  while (tiles > kMaxTiles) {
    // Packed-ref budget: bump the grain (still a pure function of the
    // requested range/grain/width — no runtime state involved).
    grain *= 2;
    tiles = (n + grain - 1) / grain;
  }

  if (lanes_ == 1 || tiles == 1 || tl_depth > 0) {
    run_inline(begin, end, grain, tiles, fn, ctx);
    return;
  }
  ParallelJob* job = claim_slot();
  if (job == nullptr) {
    // All slots busy (pathological fan-out): same tiles, serial, no heap.
    run_inline(begin, end, grain, tiles, fn, ctx);
    return;
  }

  job->fn = fn;
  job->ctx = ctx;
  job->begin = begin;
  job->end = end;
  job->grain = grain;
  // Caller keeps the leading ceil(tiles/lanes) share; the rest is
  // block-partitioned into one chunk per background worker.
  const std::size_t caller_share = (tiles + lanes_ - 1) / lanes_;
  const std::size_t worker_tiles = tiles - caller_share;
  const std::size_t nchunks = std::min(worker_tiles, lanes_ - 1);
  job->nchunks.store(static_cast<std::uint32_t>(nchunks),
                     std::memory_order_relaxed);
  job->remaining.store(tiles, std::memory_order_relaxed);
  std::size_t t = caller_share;
  for (std::size_t c = 0; c < nchunks; ++c) {
    const std::size_t count =
        worker_tiles / nchunks + (c < worker_tiles % nchunks ? 1 : 0);
    job->chunks[c].t0 = static_cast<std::uint32_t>(t);
    job->chunks[c].t1 = static_cast<std::uint32_t>(t + count);
    t += count;
  }
  // Publish: bounds and job fields are written above, so each chunk's
  // claimed release-store carries them to whichever worker wins the CAS.
  for (std::size_t c = 0; c < nchunks; ++c) {
    job->chunks[c].claimed.store(0, std::memory_order_release);
  }
  job->state.store(kActive, std::memory_order_release);
  if (nchunks > 0) unpark(nchunks);

  run_tiles(*job, 0, caller_share, /*lane=*/0);
  finish_tiles(*job, caller_share);

  for (;;) {
    const std::uint64_t r = job->remaining.load(std::memory_order_acquire);
    if (r == 0) break;
    job->remaining.wait(r, std::memory_order_acquire);
  }
  job->state.store(kFree, std::memory_order_release);
}

void TaskPool::run_inline(std::size_t begin, std::size_t end,
                          std::size_t grain, std::size_t tiles, TileFn fn,
                          void* ctx) {
  // Same canonical tile walk as the pool path, on the current thread
  // under its current lane (so nested calls index scratch race-free).
  const std::size_t lane = tl_lane;
  ++tl_depth;
  for (std::size_t tile = 0; tile < tiles; ++tile) {
    const std::size_t i0 = begin + tile * grain;
    const std::size_t i1 = std::min(end, i0 + grain);
    fn(ctx, i0, i1, lane);
  }
  --tl_depth;
}

void TaskPool::run_tiles(ParallelJob& job, std::size_t t0, std::size_t t1,
                         std::size_t lane) {
  const std::size_t saved_lane = tl_lane;
  tl_lane = lane;
  ++tl_depth;
  for (std::size_t tile = t0; tile < t1; ++tile) {
    const std::size_t i0 = job.begin + tile * job.grain;
    const std::size_t i1 = std::min(job.end, i0 + job.grain);
    job.fn(job.ctx, i0, i1, lane);
  }
  --tl_depth;
  tl_lane = saved_lane;
}

void TaskPool::run_ref(std::uint64_t ref, std::size_t lane) {
  const std::size_t slot = static_cast<std::size_t>(ref >> 48);
  std::size_t t0 = static_cast<std::size_t>((ref >> 24) & 0xFFFFFFu);
  std::size_t count = static_cast<std::size_t>(ref & 0xFFFFFFu);
  ParallelJob& job = jobs_[slot];
  // Lazy split: keep the front half hot, publish the back half on our
  // deque for thieves (or ourselves, LIFO, once the front is done).
  while (count > 1) {
    const std::size_t keep = (count + 1) / 2;
    if (!deques_[lane - 1]->push_bottom(
            pack_ref(slot, t0 + keep, count - keep))) {
      break;  // Ring full: run the whole range inline instead.
    }
    if (idle_.load(std::memory_order_relaxed) > 0) unpark(1);
    count = keep;
  }
  run_tiles(job, t0, t0 + count, lane);
  finish_tiles(job, count);
}

void TaskPool::finish_tiles(ParallelJob& job, std::uint64_t count) {
  if (count == 0) return;
  if (job.remaining.fetch_sub(count, std::memory_order_acq_rel) == count) {
    job.remaining.notify_all();
  }
}

TaskPool::ParallelJob* TaskPool::claim_slot() {
  for (auto& job : jobs_) {
    std::uint32_t expect = kFree;
    if (job.state.load(std::memory_order_relaxed) == kFree &&
        job.state.compare_exchange_strong(expect, kBuilding,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
      return &job;
    }
  }
  return nullptr;
}

bool TaskPool::claim_chunk(std::size_t lane) {
  for (std::size_t s = 0; s < kJobSlots; ++s) {
    ParallelJob& job = jobs_[s];
    if (job.state.load(std::memory_order_acquire) != kActive) continue;
    // A stale kActive read racing a slot rebuild is harmless: bounds are
    // only trusted after winning a claimed CAS, whose acquire pairs with
    // the builder's release publication — a claim won against the *new*
    // job is simply valid work for it.
    const std::uint32_t n = job.nchunks.load(std::memory_order_acquire);
    for (std::uint32_t c = 0; c < n && c < kMaxLanes; ++c) {
      auto& chunk = job.chunks[c];
      if (chunk.claimed.load(std::memory_order_relaxed) != 0) continue;
      std::uint32_t expect = 0;
      if (chunk.claimed.compare_exchange_strong(expect, 1,
                                                std::memory_order_acq_rel,
                                                std::memory_order_relaxed)) {
        run_ref(pack_ref(s, chunk.t0, chunk.t1 - chunk.t0), lane);
        return true;
      }
    }
  }
  return false;
}

bool TaskPool::steal(std::size_t lane, std::uint64_t* ref) {
  const std::size_t n = deques_.size();
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t victim = (lane - 1 + i) % n;
    if (deques_[victim]->steal_top(ref)) return true;
  }
  return false;
}

void TaskPool::unpark(std::size_t count) {
  {
    // The epoch bump must happen under the mutex so a worker between its
    // last failed work scan and its cv wait cannot miss the wakeup.
    std::lock_guard<std::mutex> lk(park_mutex_);
    park_epoch_.fetch_add(1, std::memory_order_relaxed);
  }
  if (count + 1 >= lanes_) {
    park_cv_.notify_all();
  } else {
    for (std::size_t i = 0; i < count; ++i) park_cv_.notify_one();
  }
}

void TaskPool::worker_main(std::size_t lane) {
  tl_pool_override = this;
  tl_lane = lane;
  WorkDeque& own = *deques_[lane - 1];
  std::uint64_t ref = 0;
  for (;;) {
    // Epoch is read BEFORE the work scan: any job published after the
    // scan misses bumps it, so the parked predicate stays true.
    const std::uint64_t epoch = park_epoch_.load(std::memory_order_acquire);
    bool worked = false;
    while (own.pop_bottom(&ref)) {
      run_ref(ref, lane);
      worked = true;
    }
    if (claim_chunk(lane)) continue;
    if (steal(lane, &ref)) {
      run_ref(ref, lane);
      continue;
    }
    if (worked) continue;  // One more full scan after real work.
    if (quit_.load(std::memory_order_acquire)) return;
    std::unique_lock<std::mutex> lk(park_mutex_);
    if (park_epoch_.load(std::memory_order_relaxed) != epoch ||
        quit_.load(std::memory_order_relaxed)) {
      continue;
    }
    idle_.fetch_add(1, std::memory_order_relaxed);
    park_cv_.wait(lk, [&] {
      return park_epoch_.load(std::memory_order_relaxed) != epoch ||
             quit_.load(std::memory_order_relaxed);
    });
    idle_.fetch_sub(1, std::memory_order_relaxed);
  }
}

TaskHandle TaskPool::submit_blocking(std::function<void()> fn) {
  auto state = std::make_shared<TaskHandle::State>();
  BlockingWorker* worker = nullptr;
  {
    std::lock_guard<std::mutex> lk(blocking_mutex_);
    if (blocking_quit_) {
      throw std::runtime_error(
          "xl::exec::TaskPool::submit_blocking: pool is shutting down");
    }
    if (!blocking_idle_.empty()) {
      worker = blocking_[blocking_idle_.back()].get();
      blocking_idle_.pop_back();
    } else {
      blocking_.push_back(std::make_unique<BlockingWorker>());
      worker = blocking_.back().get();
      worker->index = blocking_.size() - 1;
      worker->thread =
          std::thread(&TaskPool::blocking_worker_main, this, worker);
    }
  }
  {
    std::lock_guard<std::mutex> lk(worker->mutex);
    worker->fn = std::move(fn);
    worker->handle = state;
  }
  worker->cv.notify_one();
  TaskHandle handle;
  handle.state_ = std::move(state);
  return handle;
}

void TaskPool::blocking_worker_main(BlockingWorker* worker) {
  tl_pool_override = this;
  for (;;) {
    std::function<void()> fn;
    std::shared_ptr<TaskHandle::State> handle;
    {
      std::unique_lock<std::mutex> lk(worker->mutex);
      worker->cv.wait(lk, [&] { return worker->fn || worker->quit; });
      if (!worker->fn) return;  // quit with no pending task
      fn = std::move(worker->fn);
      worker->fn = nullptr;
      handle = std::move(worker->handle);
      worker->handle.reset();
    }
    fn();
    {
      std::lock_guard<std::mutex> lk(handle->mutex);
      handle->done = true;
    }
    handle->cv.notify_all();
    {
      std::lock_guard<std::mutex> lk(blocking_mutex_);
      if (blocking_quit_) return;
      blocking_idle_.push_back(worker->index);
    }
  }
}

TaskPool& global_pool() {
  static TaskPool pool(resolve_global_width());
  return pool;
}

TaskPool& current() {
  return tl_pool_override != nullptr ? *tl_pool_override : global_pool();
}

std::size_t width() { return current().lanes(); }

ScopedPool::ScopedPool(std::size_t lanes)
    : pool_(std::make_unique<TaskPool>(lanes)), previous_(tl_pool_override) {
  tl_pool_override = pool_.get();
}

ScopedPool::~ScopedPool() {
  tl_pool_override = previous_;
  pool_.reset();
}

}  // namespace xl::exec
