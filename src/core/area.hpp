// Chip-area model. Fig. 6's third axis and the Section V-D area constraint
// (~16-25 mm^2 for all compared accelerators) use this estimate.
#pragma once

#include "core/config.hpp"

namespace xl::core {

struct AreaBreakdown {
  double mr_arms_mm2 = 0.0;     ///< Waveguides + MR banks + heaters.
  double detectors_mm2 = 0.0;   ///< PDs, TIAs, VCSELs.
  double transceivers_mm2 = 0.0;///< ADC/DAC arrays.
  double laser_mm2 = 0.0;       ///< Laser bank + AWG mux.
  double control_mm2 = 0.0;     ///< Digital control and buffers.

  [[nodiscard]] double total_mm2() const noexcept {
    return mr_arms_mm2 + detectors_mm2 + transceivers_mm2 + laser_mm2 + control_mm2;
  }
};

/// Evaluate the silicon area of a configuration. Pitch-dependent: TED
/// variants pack MRs at 5 um and are several times denser than guard-spaced
/// (120 um) layouts.
[[nodiscard]] AreaBreakdown evaluate_area(const ArchitectureConfig& config);

}  // namespace xl::core
