// EffectPipeline — the composable non-ideality pipeline of the VDP datapath.
//
// An ordered set of EffectStage implementations transforms the precomputed
// photonics::MrBankTransferLut operating points before the tiled GEMM kernel
// runs:
//
//   thermal   TO-trim residual (TED collective solve or naive per-heater
//             overdrive) warming in with the heater RC constant, plus a slow
//             ambient wander — per-ring drift, time-stepped across layers;
//   fpv       post-calibration residual of the wafer-map resonance offsets —
//             per-ring drift, static;
//   noise     shot/Johnson/RIN at the balanced PD — relative partial-sum
//             perturbation, keyed on the operands (thread-count invariant);
//   crosstalk the pre-existing Eq. 8 inter-channel stage, now a pipeline
//             member instead of a hard-wired engine flag.
//
// The pipeline renders its stages into one photonics::VdpEffects view that
// both VdpSimulator::dot and BatchedVdpEngine::photonic_matmul pass to the
// shared chunk kernel, so scalar and batched execution remain bit-identical
// under any effect combination. With every stage off the view is null and
// the kernel takes its historical code path unchanged.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/vdp_simulator.hpp"
#include "photonics/bank_lut.hpp"

namespace xl::core {

/// Mutable state the stages render into on each rebuild.
struct EffectFrame {
  std::vector<double> ring_drift_nm;  ///< Accumulated per-ring drift.
  double noise_std = 0.0;             ///< Relative PD noise (1/sqrt(SNR)).
  bool crosstalk = true;              ///< Eq. 8 stage enabled.
};

/// One composable stage. apply() adds the stage's contribution to the frame;
/// advance() steps stage-internal time and reports whether the frame must be
/// re-rendered.
class EffectStage {
 public:
  virtual ~EffectStage() = default;
  [[nodiscard]] virtual const char* name() const noexcept = 0;
  virtual void apply(EffectFrame& frame) const = 0;
  /// Advance simulated time by dt_us; returns true when the stage's
  /// contribution changed (the pipeline then re-renders the frame).
  virtual bool advance(double dt_us) {
    (void)dt_us;
    return false;
  }
  /// Return to the t = 0 state.
  virtual void reset() {}
};

/// Telemetry of the thermal stage's boot-time tuning solve (the Fig. 4
/// cross-layer quantities), exposed for benches and reports.
struct ThermalTelemetry {
  double ted_mean_power_mw = 0.0;    ///< TED collective solve, per heater.
  double naive_mean_power_mw = 0.0;  ///< Naive per-heater drive, per heater.
  bool naive_feasible = true;        ///< False when overdrive clamped.
  double condition_number = 1.0;     ///< Coupling-matrix conditioning.
  double residual_rms_nm = 0.0;      ///< RMS trim residual of the active mode.
  double ted_residual_rms_nm = 0.0;    ///< Same, TED drive (both modes are
  double naive_residual_rms_nm = 0.0;  ///< solved at boot for reporting).
  double ambient_nm = 0.0;           ///< Current ambient excursion.
  double time_us = 0.0;              ///< Simulated time since boot.
};

class EffectPipeline {
 public:
  /// Builds the stage set selected by opts.effects for the bank described by
  /// opts (size, FSR, Q). Throws std::invalid_argument on invalid configs.
  explicit EffectPipeline(const VdpSimOptions& opts);
  ~EffectPipeline();
  EffectPipeline(EffectPipeline&&) noexcept;
  EffectPipeline& operator=(EffectPipeline&&) noexcept;

  /// Advance simulated time (thermal evolution). One accelerated layer
  /// advances by the configured thermal dt; no-op when nothing is
  /// time-dependent.
  void advance(double dt_us);

  /// Return every stage to its t = 0 state and re-render.
  void reset();

  /// The rendered operating-point perturbation for the shared chunk kernel;
  /// nullptr when no drift/noise stage is active (ideal fast path).
  [[nodiscard]] const photonics::VdpEffects* vdp_effects() const noexcept {
    return view_.active() ? &view_ : nullptr;
  }

  /// Effective Eq. 8 crosstalk flag (legacy knob AND crosstalk stage).
  [[nodiscard]] bool crosstalk() const noexcept { return frame_.crosstalk; }

  /// True when any drift/noise stage is enabled.
  [[nodiscard]] bool active() const noexcept { return !stages_.empty(); }

  /// Enabled stage names in pipeline order (includes "crosstalk" when on).
  [[nodiscard]] std::vector<std::string> stage_names() const;

  /// Thermal-stage telemetry; nullptr when the thermal stage is off.
  [[nodiscard]] const ThermalTelemetry* thermal_telemetry() const noexcept;

  [[nodiscard]] const EffectConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t bank_size() const noexcept {
    return frame_.ring_drift_nm.size();
  }
  [[nodiscard]] double time_us() const noexcept { return time_us_; }

  /// True when any stage evolves with simulated time (thermal wander); a
  /// static pipeline renders one frame at boot and never changes it, so its
  /// rendered frame is independent of time_us().
  [[nodiscard]] bool time_dependent() const noexcept { return time_dependent_; }

  /// Current per-ring drift (thermal + fpv), for tests and reports.
  [[nodiscard]] const std::vector<double>& ring_drift_nm() const noexcept {
    return frame_.ring_drift_nm;
  }
  [[nodiscard]] double noise_std() const noexcept { return frame_.noise_std; }

 private:
  /// Re-render every stage frame and combine (boot-time full render).
  void rebuild();
  /// Re-render one stage's cached frame from a zeroed state.
  void render_stage(std::size_t idx);
  /// Sum the cached stage frames into frame_ in stage order. Addition order
  /// matches the historical single-frame render exactly (each stage's apply()
  /// adds onto an exact-zero base either way), so the combined frame is
  /// bit-identical to a from-scratch rebuild.
  void combine();

  EffectConfig config_;
  EffectFrame frame_;
  photonics::VdpEffects view_;
  std::vector<std::unique_ptr<EffectStage>> stages_;
  // Incremental rendering: each stage renders into its own persistent frame;
  // advance() re-renders only the stages that reported change, and reset()
  // after an advance re-renders only the stages that changed since the last
  // reset (a reset with no intervening advance is a no-op). Static stages
  // (fpv, noise) are rendered exactly once, at construction.
  std::vector<EffectFrame> stage_frames_;
  std::vector<unsigned char> stage_dirty_since_reset_;
  bool advanced_since_reset_ = false;
  EffectStage* thermal_ = nullptr;  ///< Borrowed from stages_ (telemetry).
  bool crosstalk_base_ = true;      ///< model_crosstalk AND crosstalk stage.
  bool time_dependent_ = false;
  double time_us_ = 0.0;
};

}  // namespace xl::core
