#include "core/vdp_simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "photonics/devices.hpp"

namespace xl::core {

using xl::photonics::Microring;
using xl::photonics::MicroringDesign;
using xl::photonics::UniformQuantizer;

VdpSimulator::VdpSimulator(const VdpSimOptions& opts)
    : opts_(opts),
      grid_(opts.mrs_per_bank, opts.fsr_nm, opts.center_wavelength_nm) {
  if (opts.mrs_per_bank == 0) {
    throw std::invalid_argument("VdpSimulator: empty bank");
  }
  if (opts.resolution_bits < 1 || opts.resolution_bits > 16) {
    throw std::invalid_argument("VdpSimulator: resolution in [1, 16]");
  }
  if (opts.q_factor <= 0.0 || opts.fsr_nm <= 0.0) {
    throw std::invalid_argument("VdpSimulator: non-physical MR parameters");
  }
}

double VdpSimulator::exact_dot(std::span<const double> x, std::span<const double> w) {
  if (x.size() != w.size()) throw std::invalid_argument("exact_dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * w[i];
  return acc;
}

double VdpSimulator::arm_dot(std::span<const double> x_norm,
                             std::span<const double> w_norm) const {
  // Build one weight bank: ring i sits on channel i and imprints w_norm[i].
  const std::size_t n = x_norm.size();
  std::vector<Microring> bank;
  bank.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    MicroringDesign design;
    design.resonance_nm = grid_.wavelength_nm(i);
    design.q_factor = opts_.q_factor;
    design.fsr_nm = opts_.fsr_nm;
    Microring mr(design);
    mr.imprint_weight(w_norm[i], grid_.wavelength_nm(i));
    bank.push_back(mr);
  }

  // Channel i carries x_norm[i] of optical power; it passes *every* ring in
  // the bank, so off-channel rings contribute parasitic attenuation — the
  // physical origin of Eq. 8's inter-channel crosstalk.
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double power = x_norm[i];
    if (opts_.model_crosstalk) {
      for (const Microring& mr : bank) power *= mr.transmission(grid_.wavelength_nm(i));
    } else {
      power *= bank[i].transmission(grid_.wavelength_nm(i));
    }
    sum += power;
  }
  return sum;
}

double VdpSimulator::dot(std::span<const double> x, std::span<const double> w) const {
  if (x.size() != w.size()) throw std::invalid_argument("VdpSimulator::dot: size mismatch");
  if (x.empty()) return 0.0;

  // DAC pre-scaling: normalize both operands to [0, 1] magnitude.
  double sx = 0.0;
  double sw = 0.0;
  for (double v : x) sx = std::max(sx, std::abs(v));
  for (double v : w) sw = std::max(sw, std::abs(v));
  if (sx == 0.0 || sw == 0.0) return 0.0;

  const UniformQuantizer quant(opts_.resolution_bits);
  const std::size_t bank = opts_.mrs_per_bank;

  double acc = 0.0;
  for (std::size_t start = 0; start < x.size(); start += bank) {
    const std::size_t len = std::min(bank, x.size() - start);
    // Fold the activation sign into the weight, then split the signed weight
    // across the positive and negative arms of the balanced detector.
    std::vector<double> a(len);
    std::vector<double> w_pos(len, 0.0);
    std::vector<double> w_neg(len, 0.0);
    for (std::size_t i = 0; i < len; ++i) {
      const double xv = x[start + i];
      const double wv = w[start + i] * (xv < 0.0 ? -1.0 : 1.0);
      a[i] = quant.quantize(std::abs(xv) / sx);
      const double w_mag = quant.quantize(std::abs(wv) / sw);
      if (wv >= 0.0) {
        w_pos[i] = w_mag;
      } else {
        w_neg[i] = w_mag;
      }
    }
    const double pos = arm_dot(a, w_pos);
    const double neg = arm_dot(a, w_neg);
    // Partial-sum ADC: the balanced-PD output re-enters the digital domain
    // (via the VCSEL accumulation path) at the datapath resolution.
    const double partial = pos - neg;  // In units of sx*sw-normalized product.
    const double norm = static_cast<double>(len);
    const double quantized_partial =
        (quant.quantize(std::abs(partial) / norm) * norm) * (partial < 0.0 ? -1.0 : 1.0);
    acc += quantized_partial;
  }
  return acc * sx * sw;
}

double VdpSimulator::absolute_error(std::span<const double> x,
                                    std::span<const double> w) const {
  return std::abs(dot(x, w) - exact_dot(x, w));
}

}  // namespace xl::core
