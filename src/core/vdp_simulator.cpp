#include "core/vdp_simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/effect_pipeline.hpp"

namespace xl::core {

void VdpSimOptions::validate() const {
  auto check = [](bool ok, const char* what) {
    if (!ok) throw std::invalid_argument(what);
  };
  check(mrs_per_bank >= 1, "VdpSimOptions: mrs_per_bank must be >= 1");
  check(resolution_bits >= 1 && resolution_bits <= 16,
        "VdpSimOptions: resolution_bits in [1, 16]");
  check(q_factor > 1.0, "VdpSimOptions: q_factor must exceed 1");
  check(fsr_nm > 0.0, "VdpSimOptions: fsr_nm must be > 0");
  check(center_wavelength_nm > 0.0,
        "VdpSimOptions: center_wavelength_nm must be > 0");
  effects.validate();
}

namespace {

xl::photonics::MrBankTransferLut make_lut(const VdpSimOptions& opts,
                                          const xl::photonics::WavelengthGrid& grid) {
  xl::photonics::MicroringDesign defaults;  // For the default extinction ratio.
  return {grid, opts.q_factor, defaults.extinction_ratio_db, opts.resolution_bits};
}

const VdpSimOptions& validated(const VdpSimOptions& opts) {
  opts.validate();
  return opts;
}

}  // namespace

VdpSimulator::VdpSimulator(const VdpSimOptions& opts)
    : opts_(validated(opts)),
      grid_(opts.mrs_per_bank, opts.fsr_nm, opts.center_wavelength_nm),
      lut_(make_lut(opts, grid_)),
      effects_(std::make_unique<EffectPipeline>(opts)) {}

VdpSimulator::~VdpSimulator() = default;
VdpSimulator::VdpSimulator(VdpSimulator&&) noexcept = default;
VdpSimulator& VdpSimulator::operator=(VdpSimulator&&) noexcept = default;

double VdpSimulator::exact_dot(std::span<const double> x, std::span<const double> w) {
  if (x.size() != w.size()) throw std::invalid_argument("exact_dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * w[i];
  return acc;
}

double VdpSimulator::dot(std::span<const double> x, std::span<const double> w) const {
  if (x.size() != w.size()) throw std::invalid_argument("VdpSimulator::dot: size mismatch");
  if (x.empty()) return 0.0;

  // DAC pre-scaling: normalize both operands to [0, 1] magnitude. This is
  // the only per-call analog setup; everything else is served by the LUT.
  double sx = 0.0;
  double sw = 0.0;
  for (double v : x) sx = std::max(sx, std::abs(v));
  for (double v : w) sw = std::max(sw, std::abs(v));
  if (sx == 0.0 || sw == 0.0) return 0.0;

  const std::size_t len = x.size();
  const std::size_t bank = lut_.bank_size();
  const auto& quant = lut_.quantizer();

  std::vector<double> a(len);
  std::vector<double> detune(len);
  std::vector<unsigned char> neg(len);
  for (std::size_t i = 0; i < len; ++i) {
    const double xv = x[i];
    // Fold the activation sign into the weight, then split the signed weight
    // across the positive and negative arms of the balanced detector.
    const double wv = w[i] * (xv < 0.0 ? -1.0 : 1.0);
    a[i] = lut_.quantize_magnitude(std::abs(xv) / sx);
    detune[i] = lut_.detune_for_code(i % bank, quant.encode(std::abs(wv) / sw));
    neg[i] = wv < 0.0 ? 1 : 0;
  }

  xl::photonics::VdpScratch scratch;
  return lut_.vdp_dot(a, detune, neg, effects_->crosstalk(), scratch,
                      effects_->vdp_effects()) *
         sx * sw;
}

double VdpSimulator::absolute_error(std::span<const double> x,
                                    std::span<const double> w) const {
  return std::abs(dot(x, w) - exact_dot(x, w));
}

}  // namespace xl::core
