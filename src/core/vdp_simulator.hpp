// Functional (signal-level) simulation of one VDP arm — legacy scalar path.
//
// Where the performance/power models answer "how fast / how much energy",
// this simulator answers "what value does the analog datapath actually
// compute": activations and weights pass through quantizers, Lorentzian MR
// transmissions, inter-channel crosstalk, and balanced photodetection.
//
// Since the batched-engine refactor, all Lorentzian constants, the
// weight->detuning imprint inversion, and the Eq. 8 crosstalk row sums are
// precomputed once at construction in a shared photonics::MrBankTransferLut;
// dot() only normalizes its operands (a per-call property of the data, as in
// the DAC scaling hardware) and drives the shared chunk kernel. The batched
// GEMM path (core/batched_vdp_engine.hpp) runs the *same* kernel, so scalar
// and batched results are bit-identical. Prefer BatchedVdpEngine for whole
// layers; this class remains the per-dot-product reference.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/effects.hpp"
#include "photonics/bank_lut.hpp"
#include "photonics/crosstalk.hpp"
#include "photonics/microring.hpp"
#include "photonics/wdm.hpp"

namespace xl::core {

class EffectPipeline;

struct VdpSimOptions {
  std::size_t mrs_per_bank = 15;
  int resolution_bits = 16;
  double q_factor = 8000.0;
  double fsr_nm = 18.0;
  double center_wavelength_nm = 1550.0;
  bool model_crosstalk = true;  ///< Inject Eq. 8 inter-channel noise (legacy
                                ///< alias of effects.crosstalk; both must be
                                ///< on for the crosstalk stage to run).
  EffectConfig effects;         ///< Composable non-ideality stages.

  /// Rejects non-physical datapath parameters (empty bank, resolution
  /// outside [1, 16], q_factor <= 1, non-positive fsr/center wavelength) and
  /// invalid effect-stage settings. Called from every engine constructor,
  /// mirroring BaselineParams::validate(). Throws std::invalid_argument.
  void validate() const;

  /// The effect set as the pipeline actually runs it: the crosstalk stage is
  /// gated on BOTH the legacy model_crosstalk knob and effects.crosstalk.
  /// Use this (not `effects`) when reporting which datapath was measured.
  [[nodiscard]] EffectConfig effective_effects() const {
    EffectConfig out = effects;
    out.crosstalk = out.crosstalk && model_crosstalk;
    return out;
  }
};

/// Signal-level simulator for dot products on one VDP unit.
class VdpSimulator {
 public:
  explicit VdpSimulator(const VdpSimOptions& opts = {});
  ~VdpSimulator();
  VdpSimulator(VdpSimulator&&) noexcept;
  VdpSimulator& operator=(VdpSimulator&&) noexcept;

  /// Compute dot(x, w) photonically. Inputs may be any sign/magnitude; the
  /// simulator normalizes per-call (as the DAC scaling hardware does),
  /// splits signed weights across the positive/negative arms of the balanced
  /// PD, processes ceil(len/bank) chunks, and accumulates partial sums.
  [[nodiscard]] double dot(std::span<const double> x, std::span<const double> w) const;

  /// Exact reference for error measurement.
  [[nodiscard]] static double exact_dot(std::span<const double> x,
                                        std::span<const double> w);

  /// |photonic - exact| for one pair.
  [[nodiscard]] double absolute_error(std::span<const double> x,
                                      std::span<const double> w) const;

  [[nodiscard]] const VdpSimOptions& options() const noexcept { return opts_; }

  /// The precomputed bank transfer tables (shared kernel with the batched
  /// engine); exposes the Eq. 8 crosstalk row sums.
  [[nodiscard]] const xl::photonics::MrBankTransferLut& lut() const noexcept {
    return lut_;
  }

  /// The non-ideality pipeline built from opts.effects. dot() reads its
  /// current operating-point perturbation; callers advance simulated time
  /// (thermal evolution) through it.
  [[nodiscard]] EffectPipeline& effects() noexcept { return *effects_; }
  [[nodiscard]] const EffectPipeline& effects() const noexcept { return *effects_; }

 private:
  VdpSimOptions opts_;
  xl::photonics::WavelengthGrid grid_;
  xl::photonics::MrBankTransferLut lut_;
  std::unique_ptr<EffectPipeline> effects_;
};

}  // namespace xl::core
