// Configuration of the composable non-ideality pipeline.
//
// CrossLight's cross-layer claim is that device-level thermal drift,
// fabrication process variation (FPV), and receiver noise co-determine the
// achievable resolution and accuracy of the photonic datapath. EffectConfig
// selects which of those models run as stages of the shared VDP kernel
// (core/effect_pipeline.hpp): each stage is independently switchable, seeded
// deterministically, and applies to the scalar and batched engines alike.
//
// Stage order (fixed): thermal -> fpv -> noise -> crosstalk. Thermal and FPV
// accumulate per-ring resonance drifts on the precomputed
// photonics::MrBankTransferLut operating points; noise perturbs every
// balanced-PD partial sum; crosstalk is the (pre-existing) Eq. 8
// inter-channel stage, now routed through the same pipeline.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "photonics/fpv.hpp"
#include "photonics/noise.hpp"
#include "thermal/crosstalk_matrix.hpp"
#include "thermal/transient.hpp"

namespace xl::core {

/// Thermal detuning stage: the boot-time TO trim (TED collective solve, or
/// the naive per-heater drive of prior accelerators) leaves a per-ring phase
/// residual that warms in with the heater RC constant; on top, a slow ambient
/// excursion wanders the whole bank. Time advances once per accelerated layer
/// (PhotonicInferenceEngine) or explicitly via EffectPipeline::advance.
struct ThermalEffectConfig {
  double pitch_um = 5.0;        ///< Ring spacing (the Fig. 4 optimum).
  bool use_ted = true;          ///< TED collective trim vs. naive per-heater.
  double ambient_drift_nm = 0.05;   ///< Peak ambient resonance excursion.
  double ambient_period_us = 400.0; ///< Period of the ambient wander.
  double dt_us = 1.0;           ///< Time step per accelerated layer.
  bool coupling_from_solver = false;  ///< Probe the FD heat solver for K
                                      ///< (slow; default: calibrated kernel).
  thermal::ThermalRcParams rc;  ///< Heater warm-up transient.
  thermal::CouplingModelConfig coupling;  ///< Analytic crosstalk kernel.
};

/// FPV stage: per-ring resonance offsets from the spatially correlated wafer
/// map. The raw wafer drift (up to 7.1 / 2.1 nm, Section IV-A) is trimmed at
/// boot by the TO calibration; what the datapath sees at runtime is the
/// un-trimmed residual fraction (trim DAC quantization + sensor error).
struct FpvEffectConfig {
  photonics::MrDesignKind design = photonics::MrDesignKind::kOptimized;
  double pitch_um = 5.0;              ///< Device pitch on the wafer map.
  double trim_residual_fraction = 0.02;  ///< Post-calibration residual.
  double x0_um = 0.0;                 ///< Chip site of the bank.
  double y0_um = 0.0;
  photonics::FpvModelConfig model;    ///< Wafer-map statistics (seed is
                                      ///< overridden by EffectConfig::seed).
};

/// Receiver-noise stage: shot + Johnson + RIN noise at the balanced
/// photodetector, expressed as the relative per-channel noise 1/sqrt(SNR) at
/// the configured received optical power and injected into every partial sum.
struct NoiseEffectConfig {
  photonics::ReceiverParams receiver;  ///< PD/TIA noise parameters.
  double optical_power_mw = 0.1;       ///< Per-channel power at the PD.
};

/// Master switchboard. All stages off (the default) is bit-identical to the
/// pre-pipeline datapath; `crosstalk` mirrors the legacy
/// VdpSimOptions::model_crosstalk knob as a pipeline stage (both must be on
/// for Eq. 8 crosstalk to run).
struct EffectConfig {
  bool thermal = false;
  bool fpv = false;
  bool noise = false;
  bool crosstalk = true;
  std::uint64_t seed = 0xC705511D47ULL;  ///< Root seed for every stage.

  ThermalEffectConfig thermal_stage;
  FpvEffectConfig fpv_stage;
  NoiseEffectConfig noise_stage;

  /// True when any operating-point or noise stage is enabled (crosstalk
  /// alone is the legacy ideal-datapath configuration).
  [[nodiscard]] bool any_perturbation() const noexcept {
    return thermal || fpv || noise;
  }

  /// Enabled stages as "thermal,fpv,noise,crosstalk" (or "none").
  [[nodiscard]] std::string summary() const;

  /// Parse the CLI format: a comma-separated subset of
  /// {thermal, fpv, noise, crosstalk, nocrosstalk, all, none, ideal}.
  /// "none" keeps the default ideal datapath (crosstalk on, stages off);
  /// "ideal" additionally disables crosstalk. Throws std::invalid_argument
  /// on unknown tokens.
  [[nodiscard]] static EffectConfig parse(std::string_view csv);

  /// Throws std::invalid_argument on non-physical stage parameters.
  void validate() const;
};

}  // namespace xl::core
