#include "core/performance.hpp"

#include <algorithm>
#include <stdexcept>

namespace xl::core {

double vdp_cycle_ns(const ArchitectureConfig& config) {
  const auto& d = config.devices;
  // One result sample must cross the ADC per pass: resolution bits at the
  // transceiver line rate.
  const double symbol_ns =
      static_cast<double>(config.resolution_bits) / d.transceiver_max_rate_gbps;
  // The O/E conversion chain bounds the issue interval from below.
  const double oe_ns = d.pd_latency_ns + d.tia_latency_ns;
  return std::max(symbol_ns, oe_ns);
}

double pipeline_fill_ns(const ArchitectureConfig& config) {
  const auto& d = config.devices;
  // Imprint (EO) + partial-sum re-emission (VCSEL) + two detection stages.
  return d.eo_tuning_latency_ns + d.vcsel_latency_ns +
         2.0 * (d.pd_latency_ns + d.tia_latency_ns);
}

PerformanceReport evaluate_performance(const ModelMapping& mapping,
                                       const ArchitectureConfig& config) {
  config.validate();
  if (mapping.layers.empty()) {
    throw std::invalid_argument("evaluate_performance: empty mapping");
  }
  const double cycle = vdp_cycle_ns(config);
  const double fill = pipeline_fill_ns(config);

  double latency_ns = 0.0;
  for (const LayerMapping& layer : mapping.layers) {
    latency_ns += static_cast<double>(layer.rounds) * cycle + fill;
  }

  PerformanceReport perf;
  perf.cycle_ns = cycle;
  perf.frame_latency_us = latency_ns * 1e-3;
  perf.fps = 1e9 / latency_ns;
  return perf;
}

}  // namespace xl::core
