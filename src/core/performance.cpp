#include "core/performance.hpp"

#include <algorithm>
#include <stdexcept>

namespace xl::core {

double vdp_cycle_ns(const ArchitectureConfig& config) {
  const auto& d = config.devices;
  // One result sample must cross the ADC per pass: resolution bits at the
  // transceiver line rate.
  const double symbol_ns =
      static_cast<double>(config.resolution_bits) / d.transceiver_max_rate_gbps;
  // The O/E conversion chain bounds the issue interval from below.
  const double oe_ns = d.pd_latency_ns + d.tia_latency_ns;
  return std::max(symbol_ns, oe_ns);
}

double pipeline_fill_ns(const ArchitectureConfig& config) {
  const auto& d = config.devices;
  // Imprint (EO) + partial-sum re-emission (VCSEL) + two detection stages.
  return d.eo_tuning_latency_ns + d.vcsel_latency_ns +
         2.0 * (d.pd_latency_ns + d.tia_latency_ns);
}

PerformanceReport evaluate_performance(const ModelMapping& mapping,
                                       const ArchitectureConfig& config) {
  return evaluate_performance(mapping, config, 1);
}

PerformanceReport evaluate_performance(const ModelMapping& mapping,
                                       const ArchitectureConfig& config,
                                       std::size_t batch) {
  config.validate();
  if (mapping.layers.empty()) {
    throw std::invalid_argument("evaluate_performance: empty mapping");
  }
  if (batch == 0) {
    throw std::invalid_argument("evaluate_performance: batch must be >= 1");
  }
  const double cycle = vdp_cycle_ns(config);
  const double fill = pipeline_fill_ns(config);

  // Per layer: pass rounds scale with the batch, the pipeline fill (weight
  // imprint + optoelectronic chain) is paid once per layer per batch.
  double latency_ns = 0.0;
  for (const LayerMapping& layer : mapping.layers) {
    const std::size_t batched_passes = layer.total_passes * batch;
    const std::size_t rounds =
        layer.unit_pool > 0 ? (batched_passes + layer.unit_pool - 1) / layer.unit_pool
                            : batched_passes;
    latency_ns += static_cast<double>(rounds) * cycle + fill;
  }

  PerformanceReport perf;
  perf.cycle_ns = cycle;
  perf.batch = batch;
  perf.frame_latency_us = latency_ns * 1e-3;
  perf.fps = static_cast<double>(batch) * 1e9 / latency_ns;
  return perf;
}

}  // namespace xl::core
