#include "core/dse_engine.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <exception>
#include <limits>
#include <stdexcept>
#include <type_traits>
#include <utility>

#if defined(XL_USE_OPENMP) && defined(_OPENMP)
#include <omp.h>
#endif

#include "exec/exec.hpp"

namespace xl::core {
namespace {

/// Accumulating FNV-1a hasher for the memo-key digests.
struct Fnv1a {
  std::uint64_t h = 0xcbf29ce484222325ULL;

  void bytes(const void* data, std::size_t size) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      h ^= p[i];
      h *= 0x100000001b3ULL;
    }
  }
  void add(double v) noexcept { bytes(&v, sizeof v); }
  void add(bool v) noexcept { bytes(&v, sizeof v); }
  void add(std::uint64_t v) noexcept { bytes(&v, sizeof v); }
};

/// Digest of every EffectConfig field (switchboard, seed, and all stage
/// parameters, field by field — struct padding never enters the hash), so
/// effect axes that differ anywhere produce distinct memo keys.
std::uint64_t hash_effects(const EffectConfig& fx) noexcept {
  Fnv1a f;
  f.add(fx.thermal);
  f.add(fx.fpv);
  f.add(fx.noise);
  f.add(fx.crosstalk);
  f.add(fx.seed);
  const ThermalEffectConfig& th = fx.thermal_stage;
  f.add(th.pitch_um);
  f.add(th.use_ted);
  f.add(th.ambient_drift_nm);
  f.add(th.ambient_period_us);
  f.add(th.dt_us);
  f.add(th.coupling_from_solver);
  f.add(th.rc.tau_us);
  f.add(th.rc.shift_nm_per_mw);
  f.add(th.coupling.self_phase_rad_per_mw);
  f.add(th.coupling.decay_length_um);
  f.add(th.coupling.contact_ratio);
  const FpvEffectConfig& fp = fx.fpv_stage;
  f.add(static_cast<std::uint64_t>(fp.design));
  f.add(fp.pitch_um);
  f.add(fp.trim_residual_fraction);
  f.add(fp.x0_um);
  f.add(fp.y0_um);
  f.add(fp.model.max_drift_conventional_nm);
  f.add(fp.model.max_drift_optimized_nm);
  f.add(fp.model.correlation_length_um);
  f.add(fp.model.systematic_fraction);
  f.add(fp.model.seed);
  const NoiseEffectConfig& no = fx.noise_stage;
  f.add(no.optical_power_mw);
  f.add(no.receiver.responsivity_a_per_w);
  f.add(no.receiver.temperature_k);
  f.add(no.receiver.load_resistance_ohm);
  f.add(no.receiver.bandwidth_ghz);
  f.add(no.receiver.rin_db_per_hz);
  f.add(no.receiver.dark_current_na);
  return f.h;
}

bool finite_positive(double v) noexcept { return std::isfinite(v) && v > 0.0; }

/// Doubles compared by object representation: bit-for-bit, NaN-safe.
bool bits_equal(double a, double b) noexcept {
  std::uint64_t ia = 0, ib = 0;
  static_assert(sizeof ia == sizeof a);
  std::memcpy(&ia, &a, sizeof ia);
  std::memcpy(&ib, &b, sizeof ib);
  return ia == ib;
}

/// A report is sane when every metric the sweep consumes is finite and
/// positive; anything else marks the candidate degenerate.
bool report_is_sane(const AcceleratorReport& r) noexcept {
  return finite_positive(r.perf.fps) && finite_positive(r.epb_pj()) &&
         finite_positive(r.power.total_w()) && finite_positive(r.area_mm2);
}

bool dominates(const DsePoint& a, const DsePoint& b) noexcept {
  const bool no_worse = a.avg_fps >= b.avg_fps && a.avg_epb_pj <= b.avg_epb_pj &&
                        a.area_mm2 <= b.area_mm2 && a.avg_power_w <= b.avg_power_w;
  const bool better = a.avg_fps > b.avg_fps || a.avg_epb_pj < b.avg_epb_pj ||
                      a.area_mm2 < b.area_mm2 || a.avg_power_w < b.avg_power_w;
  return no_worse && better;
}

}  // namespace

bool reports_bit_identical(const AcceleratorReport& a,
                           const AcceleratorReport& b) noexcept {
  return a.accelerator == b.accelerator && a.model == b.model &&
         bits_equal(a.perf.cycle_ns, b.perf.cycle_ns) &&
         a.perf.batch == b.perf.batch &&
         bits_equal(a.perf.frame_latency_us, b.perf.frame_latency_us) &&
         bits_equal(a.perf.fps, b.perf.fps) &&
         bits_equal(a.power.laser_mw, b.power.laser_mw) &&
         bits_equal(a.power.to_tuning_mw, b.power.to_tuning_mw) &&
         bits_equal(a.power.eo_tuning_mw, b.power.eo_tuning_mw) &&
         bits_equal(a.power.pd_mw, b.power.pd_mw) &&
         bits_equal(a.power.tia_mw, b.power.tia_mw) &&
         bits_equal(a.power.vcsel_mw, b.power.vcsel_mw) &&
         bits_equal(a.power.adc_dac_mw, b.power.adc_dac_mw) &&
         bits_equal(a.power.control_mw, b.power.control_mw) &&
         bits_equal(a.area_mm2, b.area_mm2) &&
         a.resolution_bits == b.resolution_bits &&
         a.macs_per_frame == b.macs_per_frame;
}

void DseMemo::merge(const DseMemo& other) {
  if (other.entries.empty()) return;
  std::unordered_map<std::string, const AcceleratorReport*> index;
  index.reserve(entries.size());
  for (const DseMemoEntry& e : entries) index.emplace(e.key, &e.report);
  for (const DseMemoEntry& e : other.entries) {
    const auto it = index.find(e.key);
    if (it == index.end()) {
      entries.push_back(e);
    } else if (!reports_bit_identical(*it->second, e.report)) {
      throw std::runtime_error(
          "DseMemo::merge: divergent reports for key '" + e.key +
          "' — two caches disagree on a deterministic evaluation");
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const DseMemoEntry& a, const DseMemoEntry& b) { return a.key < b.key; });
}

std::string DseEngine::memo_key(const DseCandidate& c,
                                const xl::dnn::ModelSpec& model) {
  // The DeviceParams digest hashes the object representation: the struct is
  // all 8-byte doubles — no padding — so the bytes identify the value.
  static_assert(std::is_trivially_copyable_v<xl::photonics::DeviceParams>);
  const ArchitectureConfig& cfg = c.config;
  Fnv1a devices;
  devices.bytes(&cfg.devices, sizeof cfg.devices);
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "%zu/%zu/%zu/%zu|v%u|r%d|mb%zu|p%.6g/%.6g|d%llx|fx%llx|",
                cfg.conv_unit_size, cfg.fc_unit_size, cfg.conv_units, cfg.fc_units,
                static_cast<unsigned>(cfg.variant), cfg.resolution_bits,
                cfg.mrs_per_bank, cfg.pitch_ted_um, cfg.pitch_guard_um,
                static_cast<unsigned long long>(devices.h),
                static_cast<unsigned long long>(hash_effects(c.effects)));
  return buf + model.name;
}

const DsePoint& DseResult::best() const {
  if (!points.empty()) return points.front();
  if (!rejected.empty()) {
    throw std::invalid_argument(
        "DseResult::best: every candidate evaluated degenerate (" +
        std::to_string(rejected.size()) + " rejected)");
  }
  throw std::invalid_argument("best_point: empty sweep");
}

std::vector<DsePoint> pareto_front(const std::vector<DsePoint>& points) {
  std::vector<DsePoint> front;
  for (const DsePoint& p : points) {
    const bool dominated = std::any_of(
        points.begin(), points.end(),
        [&p](const DsePoint& q) { return dominates(q, p); });
    if (!dominated) {
      front.push_back(p);
      front.back().on_pareto = true;
    }
  }
  std::sort(front.begin(), front.end(), dse_point_less);
  // Several budget slices can admit the same design with identical metrics
  // (equal points never dominate each other); keep one representative per
  // design so the front is a set of designs, not of budget rows. Duplicates
  // sort adjacent under dse_point_less.
  front.erase(std::unique(front.begin(), front.end(),
                          [](const DsePoint& a, const DsePoint& b) {
                            return a.conv_unit_size == b.conv_unit_size &&
                                   a.fc_unit_size == b.fc_unit_size &&
                                   a.conv_units == b.conv_units &&
                                   a.fc_units == b.fc_units &&
                                   a.variant == b.variant &&
                                   a.resolution_bits == b.resolution_bits &&
                                   a.avg_fps == b.avg_fps &&
                                   a.avg_epb_pj == b.avg_epb_pj &&
                                   a.area_mm2 == b.area_mm2 &&
                                   a.avg_power_w == b.avg_power_w;
                          }),
              front.end());
  return front;
}

std::vector<DseCandidate> DseEngine::expand(const DseSweep& sweep) {
  const std::vector<Variant> variants = sweep.variant_axis();
  const std::vector<int> resolutions = sweep.resolution_axis();
  const std::vector<double> budgets = sweep.budget_axis();
  const std::size_t effect_count = sweep.effects.empty() ? 1 : sweep.effects.size();

  std::vector<DseCandidate> candidates;
  candidates.reserve(sweep.grid_size());
  for (Variant variant : variants) {
    for (int bits : resolutions) {
      for (std::size_t e = 0; e < effect_count; ++e) {
        for (double budget : budgets) {
          for (std::size_t n_size : sweep.conv_unit_sizes) {
            for (std::size_t k_size : sweep.fc_unit_sizes) {
              for (std::size_t n_count : sweep.conv_unit_counts) {
                for (std::size_t m_count : sweep.fc_unit_counts) {
                  DseCandidate c;
                  c.id = candidates.size();
                  c.config = sweep.base;
                  c.config.conv_unit_size = n_size;
                  c.config.fc_unit_size = k_size;
                  c.config.conv_units = n_count;
                  c.config.fc_units = m_count;
                  c.config.variant = variant;
                  c.config.resolution_bits = bits;
                  if (!sweep.effects.empty()) c.effects = sweep.effects[e];
                  c.area_budget_mm2 = budget;
                  candidates.push_back(std::move(c));
                }
              }
            }
          }
        }
      }
    }
  }
  return candidates;
}

std::vector<DseCandidate> DseEngine::admit(const DseSweep& sweep,
                                           std::size_t* area_filtered) {
  sweep.validate();
  std::vector<DseCandidate> candidates = expand(sweep);
  const std::size_t grid = candidates.size();

  // Budget filter: the sweep enumerates CrossLight organizations, so the
  // area verdict comes from the CrossLight area model up front — over-budget
  // candidates never pay a model evaluation.
  std::vector<DseCandidate> admitted;
  admitted.reserve(candidates.size());
  double min_area = std::numeric_limits<double>::infinity();
  for (DseCandidate& c : candidates) {
    const double area = evaluate_area(c.config).total_mm2();
    min_area = std::min(min_area, area);
    if (area <= c.area_budget_mm2) admitted.push_back(std::move(c));
  }
  if (admitted.empty()) {
    const std::vector<double> budgets = sweep.budget_axis();
    const double max_budget = *std::max_element(budgets.begin(), budgets.end());
    char msg[160];
    std::snprintf(msg, sizeof msg,
                  "DseSweep: area budget %.3g mm2 rejects all %zu candidates "
                  "(smallest candidate needs %.3g mm2)",
                  max_budget, grid, min_area);
    throw std::invalid_argument(msg);
  }
  if (area_filtered != nullptr) *area_filtered = grid - admitted.size();
  return admitted;
}

std::vector<DseMemoEntry> DseEngine::evaluate_missing(
    const std::vector<DseCandidate>& candidates,
    const std::vector<xl::dnn::ModelSpec>& models,
    const DseCandidateEvaluator& evaluate,
    const std::unordered_map<std::string, AcceleratorReport>& store,
    DseStats* stats) const {
  // Resolve every (candidate, model) pair against the memo; unseen pairs
  // become jobs, each pair beyond the first with the same key is a hit.
  struct Job {
    std::string key;
    const DseCandidate* candidate;
    const xl::dnn::ModelSpec* model;
  };
  std::vector<Job> jobs;
  {
    std::unordered_map<std::string, std::size_t> pending;
    for (const DseCandidate& c : candidates) {
      for (const auto& model : models) {
        std::string key = memo_key(c, model);
        if (store.count(key) != 0 || pending.count(key) != 0) {
          if (stats != nullptr) ++stats->cache_hits;
          continue;
        }
        pending.emplace(key, jobs.size());
        jobs.push_back(Job{std::move(key), &c, &model});
      }
    }
  }
  if (stats != nullptr) stats->evaluations += jobs.size();

  // Evaluate. Every job writes into its own pre-sized slot, so the result is
  // identical for any thread count, schedule, and completion order.
  std::vector<AcceleratorReport> reports(jobs.size());
  const auto total = jobs.size();
  if (options_.parallel) {
#if defined(XL_USE_OPENMP) && defined(_OPENMP)
    std::size_t done = 0;
    std::exception_ptr failure;
#pragma omp parallel for schedule(dynamic)
    for (long long i = 0; i < static_cast<long long>(jobs.size()); ++i) {
      try {
        reports[i] = evaluate(*jobs[i].candidate, *jobs[i].model);
        if (options_.progress) {
          // Increment and report under one critical section so the observed
          // counts are monotone even when worker threads race to report.
#pragma omp critical(xl_dse_progress)
          options_.progress(++done, total);
        }
      } catch (...) {
#pragma omp critical(xl_dse_failure)
        if (!failure) failure = std::current_exception();
      }
    }
    if (failure) std::rethrow_exception(failure);
#else
    // Executor build: the progress counter and first-failure capture are
    // mutex-free accumulators. fetch_add gives each completion a unique
    // monotone count; the exchange elects the one lane that records the
    // exception, published with release and re-read with acquire below.
    std::atomic<std::size_t> done{0};
    std::atomic<bool> failure_claimed{false};
    std::atomic<bool> failure_published{false};
    std::exception_ptr failure;
    exec::parallel_for(
        0, jobs.size(), 1,
        [&](std::size_t i0, std::size_t i1, std::size_t) {
          for (std::size_t i = i0; i < i1; ++i) {
            try {
              reports[i] = evaluate(*jobs[i].candidate, *jobs[i].model);
              if (options_.progress) {
                options_.progress(
                    done.fetch_add(1, std::memory_order_relaxed) + 1, total);
              }
            } catch (...) {
              if (!failure_claimed.exchange(true, std::memory_order_acq_rel)) {
                failure = std::current_exception();
                failure_published.store(true, std::memory_order_release);
              }
            }
          }
        });
    if (failure_published.load(std::memory_order_acquire)) {
      std::rethrow_exception(failure);
    }
#endif
  } else {
    std::size_t done = 0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      reports[i] = evaluate(*jobs[i].candidate, *jobs[i].model);
      if (options_.progress) options_.progress(++done, total);
    }
  }

  std::vector<DseMemoEntry> fresh;
  fresh.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    fresh.push_back(DseMemoEntry{std::move(jobs[i].key), std::move(reports[i])});
  }
  return fresh;
}

namespace {
/// The built-in evaluator shared by run()/populate() without an explicit one.
AcceleratorReport builtin_evaluate(const DseCandidate& c,
                                   const xl::dnn::ModelSpec& model) {
  return CrossLightAccelerator(c.config).evaluate(model);
}
}  // namespace

DseResult DseEngine::run(const DseSweep& sweep,
                         const std::vector<xl::dnn::ModelSpec>& models) {
  return run(sweep, models, builtin_evaluate);
}

DseMemo DseEngine::populate(const std::vector<DseCandidate>& slice,
                            const std::vector<xl::dnn::ModelSpec>& models) {
  return populate(slice, models, builtin_evaluate);
}

DseMemo DseEngine::populate(const std::vector<DseCandidate>& slice,
                            const std::vector<xl::dnn::ModelSpec>& models,
                            const DseCandidateEvaluator& evaluate) {
  if (models.empty()) throw std::invalid_argument("populate: no models");
  if (!evaluate) throw std::invalid_argument("populate: null evaluator");
  DseMemo delta;
  delta.entries = evaluate_missing(slice, models, evaluate, cache_, nullptr);
  for (const DseMemoEntry& e : delta.entries) cache_.emplace(e.key, e.report);
  std::sort(delta.entries.begin(), delta.entries.end(),
            [](const DseMemoEntry& a, const DseMemoEntry& b) { return a.key < b.key; });
  return delta;
}

DseMemo DseEngine::export_memo() const {
  DseMemo memo;
  memo.entries.reserve(cache_.size());
  for (const auto& [key, report] : cache_) {
    memo.entries.push_back(DseMemoEntry{key, report});
  }
  std::sort(memo.entries.begin(), memo.entries.end(),
            [](const DseMemoEntry& a, const DseMemoEntry& b) { return a.key < b.key; });
  return memo;
}

std::size_t DseEngine::import_memo(const DseMemo& memo) {
  std::size_t inserted = 0;
  for (const DseMemoEntry& e : memo.entries) {
    const auto [it, fresh] = cache_.emplace(e.key, e.report);
    if (fresh) {
      ++inserted;
    } else if (!reports_bit_identical(it->second, e.report)) {
      throw std::runtime_error(
          "DseEngine::import_memo: divergent reports for key '" + e.key +
          "' — imported cache disagrees with the resident one");
    }
  }
  return inserted;
}

DseResult DseEngine::run(const DseSweep& sweep,
                         const std::vector<xl::dnn::ModelSpec>& models,
                         const DseCandidateEvaluator& evaluate) {
  if (models.empty()) throw std::invalid_argument("run_dse: no models");
  if (!evaluate) throw std::invalid_argument("run_dse: null evaluator");

  DseResult result;
  const std::vector<DseCandidate> admitted =
      admit(sweep, &result.stats.area_filtered);
  result.stats.grid_candidates = admitted.size() + result.stats.area_filtered;

  std::unordered_map<std::string, AcceleratorReport> local;  // cache-off store
  auto& store = options_.cache_enabled ? cache_ : local;
  std::vector<DseMemoEntry> fresh =
      evaluate_missing(admitted, models, evaluate, store, &result.stats);

  // Merge serially (deterministic), then assemble candidate points from the
  // store in fixed grid/model order — bit-identical for any thread count.
  for (DseMemoEntry& e : fresh) {
    store.emplace(std::move(e.key), std::move(e.report));
  }
  for (const DseCandidate& c : admitted) {
    DsePoint p;
    p.conv_unit_size = c.config.conv_unit_size;
    p.fc_unit_size = c.config.fc_unit_size;
    p.conv_units = c.config.conv_units;
    p.fc_units = c.config.fc_units;
    p.variant = c.config.variant;
    p.resolution_bits = c.config.resolution_bits;
    p.area_budget_mm2 = c.area_budget_mm2;
    p.candidate_id = c.id;
    bool sane = true;
    for (const auto& model : models) {
      const AcceleratorReport& r = store.at(memo_key(c, model));
      sane = sane && report_is_sane(r);
      p.area_mm2 = r.area_mm2;
      p.avg_fps += r.perf.fps;
      p.avg_epb_pj += r.epb_pj();
      p.avg_power_w += r.power.total_w();
    }
    const auto count = static_cast<double>(models.size());
    p.avg_fps /= count;
    p.avg_epb_pj /= count;
    p.avg_power_w /= count;
    if (sane) {
      result.points.push_back(p);
    } else {
      p.degenerate = true;
      result.rejected.push_back(p);
      ++result.stats.degenerate;
    }
  }

  std::sort(result.points.begin(), result.points.end(), dse_point_less);
  // on_pareto flags every non-dominated point (duplicates across budget
  // slices included); result.pareto holds one representative per design.
  for (DsePoint& p : result.points) {
    p.on_pareto = std::none_of(
        result.points.begin(), result.points.end(),
        [&p](const DsePoint& q) { return dominates(q, p); });
  }
  result.pareto = pareto_front(result.points);
  if (options_.top_k > 0 && result.points.size() > options_.top_k) {
    result.points.resize(options_.top_k);
  }
  return result;
}

}  // namespace xl::core
