#include "core/dse.hpp"

#include <stdexcept>
#include <string>

#include "core/dse_engine.hpp"

namespace xl::core {

bool dse_point_less(const DsePoint& a, const DsePoint& b) noexcept {
  const double fa = a.fps_per_epb();
  const double fb = b.fps_per_epb();
  if (fa != fb) return fa > fb;
  if (a.conv_unit_size != b.conv_unit_size) return a.conv_unit_size < b.conv_unit_size;
  if (a.fc_unit_size != b.fc_unit_size) return a.fc_unit_size < b.fc_unit_size;
  if (a.conv_units != b.conv_units) return a.conv_units < b.conv_units;
  if (a.fc_units != b.fc_units) return a.fc_units < b.fc_units;
  if (a.variant != b.variant) {
    return static_cast<unsigned>(a.variant) < static_cast<unsigned>(b.variant);
  }
  if (a.resolution_bits != b.resolution_bits) return a.resolution_bits < b.resolution_bits;
  if (a.area_budget_mm2 != b.area_budget_mm2) return a.area_budget_mm2 < b.area_budget_mm2;
  return a.candidate_id < b.candidate_id;
}

std::vector<Variant> DseSweep::variant_axis() const {
  return variants.empty() ? std::vector<Variant>{variant} : variants;
}

std::vector<int> DseSweep::resolution_axis() const {
  return resolution_bits.empty() ? std::vector<int>{base.resolution_bits}
                                 : resolution_bits;
}

std::vector<double> DseSweep::budget_axis() const {
  return area_budgets_mm2.empty() ? std::vector<double>{max_area_mm2}
                                  : area_budgets_mm2;
}

std::size_t DseSweep::grid_size() const {
  // One source of truth with expand(): the resolved-axis helpers.
  const std::size_t scenarios = variant_axis().size() * resolution_axis().size() *
                                (effects.empty() ? 1 : effects.size()) *
                                budget_axis().size();
  return scenarios * conv_unit_sizes.size() * fc_unit_sizes.size() *
         conv_unit_counts.size() * fc_unit_counts.size();
}

void DseSweep::validate() const {
  auto fail = [](const std::string& what) { throw std::invalid_argument(what); };
  auto check_axis = [&fail](const std::vector<std::size_t>& axis, const char* name) {
    if (axis.empty()) fail(std::string("DseSweep: axis ") + name + " is empty");
    for (std::size_t v : axis) {
      if (v == 0) fail(std::string("DseSweep: axis ") + name + " has a zero entry");
    }
  };
  check_axis(conv_unit_sizes, "conv_unit_sizes (N)");
  check_axis(fc_unit_sizes, "fc_unit_sizes (K)");
  check_axis(conv_unit_counts, "conv_unit_counts (n)");
  check_axis(fc_unit_counts, "fc_unit_counts (m)");
  if (max_area_mm2 <= 0.0) {
    fail("DseSweep: max_area_mm2 must be > 0 (got " + std::to_string(max_area_mm2) + ")");
  }
  for (double b : area_budgets_mm2) {
    if (b <= 0.0) fail("DseSweep: axis area_budgets_mm2 has a non-positive entry");
  }
  for (int bits : resolution_bits) {
    if (bits < 1 || bits > 16) {
      fail("DseSweep: axis resolution_bits entry " + std::to_string(bits) +
           " outside [1, 16]");
    }
  }
  for (const EffectConfig& fx : effects) fx.validate();
  base.validate();
}

std::vector<DsePoint> run_dse(const DseSweep& sweep,
                              const std::vector<xl::dnn::ModelSpec>& models) {
  // The built-in evaluator is stateless, so the wrapper keeps the engine's
  // parallel default; results are bit-identical to a serial run.
  DseEngine engine;
  return engine.run(sweep, models).points;
}

std::vector<DsePoint> run_dse(const DseSweep& sweep,
                              const std::vector<xl::dnn::ModelSpec>& models,
                              const DseEvaluator& evaluate) {
  if (!evaluate) throw std::invalid_argument("run_dse: null evaluator");
  // Legacy custom evaluators never promised thread safety: run serial.
  DseEngine::Options options;
  options.parallel = false;
  DseEngine engine(options);
  return engine
      .run(sweep, models,
           [&evaluate](const DseCandidate& c, const xl::dnn::ModelSpec& model) {
             return evaluate(c.config, model);
           })
      .points;
}

const DsePoint& best_point(const std::vector<DsePoint>& points) {
  if (points.empty()) throw std::invalid_argument("best_point: empty sweep");
  return points.front();
}

}  // namespace xl::core
