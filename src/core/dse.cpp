#include "core/dse.hpp"

#include <algorithm>
#include <stdexcept>

namespace xl::core {

std::vector<DsePoint> run_dse(const DseSweep& sweep,
                              const std::vector<xl::dnn::ModelSpec>& models) {
  return run_dse(sweep, models,
                 [](const ArchitectureConfig& cfg, const xl::dnn::ModelSpec& model) {
                   return CrossLightAccelerator(cfg).evaluate(model);
                 });
}

std::vector<DsePoint> run_dse(const DseSweep& sweep,
                              const std::vector<xl::dnn::ModelSpec>& models,
                              const DseEvaluator& evaluate) {
  if (models.empty()) throw std::invalid_argument("run_dse: no models");
  if (!evaluate) throw std::invalid_argument("run_dse: null evaluator");
  std::vector<DsePoint> points;
  for (std::size_t n_size : sweep.conv_unit_sizes) {
    for (std::size_t k_size : sweep.fc_unit_sizes) {
      for (std::size_t n_count : sweep.conv_unit_counts) {
        for (std::size_t m_count : sweep.fc_unit_counts) {
          ArchitectureConfig cfg = best_config();
          cfg.conv_unit_size = n_size;
          cfg.fc_unit_size = k_size;
          cfg.conv_units = n_count;
          cfg.fc_units = m_count;
          cfg.variant = sweep.variant;

          // The sweep enumerates CrossLight organizations, so the area
          // budget is decided by the CrossLight area model up front —
          // over-budget candidates never pay a model evaluation.
          if (evaluate_area(cfg).total_mm2() > sweep.max_area_mm2) continue;

          DsePoint p;
          p.conv_unit_size = n_size;
          p.fc_unit_size = k_size;
          p.conv_units = n_count;
          p.fc_units = m_count;
          for (const auto& model : models) {
            const AcceleratorReport r = evaluate(cfg, model);
            p.area_mm2 = r.area_mm2;
            p.avg_fps += r.perf.fps;
            p.avg_epb_pj += r.epb_pj();
            p.avg_power_w += r.power.total_w();
          }
          const auto count = static_cast<double>(models.size());
          p.avg_fps /= count;
          p.avg_epb_pj /= count;
          p.avg_power_w /= count;
          points.push_back(p);
        }
      }
    }
  }
  std::sort(points.begin(), points.end(), [](const DsePoint& a, const DsePoint& b) {
    return a.fps_per_epb() > b.fps_per_epb();
  });
  return points;
}

const DsePoint& best_point(const std::vector<DsePoint>& points) {
  if (points.empty()) throw std::invalid_argument("best_point: empty sweep");
  return points.front();
}

}  // namespace xl::core
