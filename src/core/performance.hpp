// VDP latency / throughput model.
//
// Pipelining assumption (documented in EXPERIMENTS.md): VDP passes issue at
// the transceiver symbol rate — a 16-bit sample through the 56 Gb/s
// ADC/DAC [37] every resolution/rate ns — while the EO tuning latency
// (20 ns) and the optoelectronic chain (VCSEL + PD + TIA) contribute
// pipeline *fill* per layer rather than per pass. Layers execute
// sequentially (data dependencies); passes within a layer spread over the
// unit pool.
#pragma once

#include "core/config.hpp"
#include "core/mapper.hpp"
#include "core/report.hpp"

namespace xl::core {

/// Pipelined pass-issue interval for the given configuration (ns).
[[nodiscard]] double vdp_cycle_ns(const ArchitectureConfig& config);

/// Pipeline fill latency per layer (EO imprint + VCSEL + PD + TIA chain), ns.
[[nodiscard]] double pipeline_fill_ns(const ArchitectureConfig& config);

/// Evaluate frame latency and FPS for a mapped model.
[[nodiscard]] PerformanceReport evaluate_performance(const ModelMapping& mapping,
                                                     const ArchitectureConfig& config);

/// Batched variant: `batch` samples execute back-to-back per layer, so the
/// per-layer pipeline fill (EO imprint + optoelectronic chain) amortizes
/// over the batch while pass rounds scale with it. Mirrors the event
/// scheduler's ScheduleOptions::batch; the two agree within a few percent
/// (asserted in tests/test_scheduler.cpp).
[[nodiscard]] PerformanceReport evaluate_performance(const ModelMapping& mapping,
                                                     const ArchitectureConfig& config,
                                                     std::size_t batch);

}  // namespace xl::core
