#include "core/area.hpp"

#include "core/power.hpp"  // kMrDiameterUm

namespace xl::core {

namespace {
// Footprint constants (um^2 unless noted). Representative silicon-photonic
// device sizes from the survey literature ([6]).
constexpr double kArmStripWidthUm = 25.0;      // Waveguide + heater + routing strip.
constexpr double kPdAreaUm2 = 50.0 * 50.0;     // PD + TIA site.
constexpr double kVcselAreaUm2 = 40.0 * 40.0;  // Hybrid-integrated VCSEL site.
constexpr double kTransceiverAreaMm2 = 0.03;   // Per-unit ADC/DAC array.
constexpr double kLaserAreaPerWavelengthMm2 = 0.02;
constexpr double kControlPerUnitMm2 = 0.01;
}  // namespace

AreaBreakdown evaluate_area(const ArchitectureConfig& config) {
  config.validate();
  AreaBreakdown a;

  const double pitch = config.mr_pitch_um();
  const double arm_length_um =
      static_cast<double>(2 * config.mrs_per_bank) * (kMrDiameterUm + pitch);
  const double arm_area_um2 = arm_length_um * kArmStripWidthUm;
  const auto arms = static_cast<double>(config.total_arms());
  a.mr_arms_mm2 = arms * arm_area_um2 * 1e-6;

  const auto units = static_cast<double>(config.conv_units + config.fc_units);
  const double pds = arms + units;
  a.detectors_mm2 = (pds * kPdAreaUm2 + arms * kVcselAreaUm2) * 1e-6;

  a.transceivers_mm2 = units * kTransceiverAreaMm2;

  // Shared laser bank: one line per unique wavelength comb (reuse makes this
  // bounded by the bank size, not the vector size).
  a.laser_mm2 =
      static_cast<double>(config.mrs_per_bank) * kLaserAreaPerWavelengthMm2;

  a.control_mm2 = units * kControlPerUnitMm2;
  return a;
}

}  // namespace xl::core
