#include "core/config.hpp"

#include <stdexcept>

namespace xl::core {

std::string variant_name(Variant v) {
  switch (v) {
    case Variant::kBase: return "Cross_base";
    case Variant::kBaseTed: return "Cross_base_TED";
    case Variant::kOpt: return "Cross_opt";
    case Variant::kOptTed: return "Cross_opt_TED";
  }
  throw std::invalid_argument("variant_name: unknown variant");
}

bool variant_uses_ted(Variant v) noexcept {
  return v == Variant::kBaseTed || v == Variant::kOptTed;
}

bool variant_uses_optimized_mr(Variant v) noexcept {
  return v == Variant::kOpt || v == Variant::kOptTed;
}

std::size_t ArchitectureConfig::arms_per_unit(std::size_t unit_size) const noexcept {
  if (unit_size == 0 || mrs_per_bank == 0) return 0;
  return (unit_size + mrs_per_bank - 1) / mrs_per_bank;
}

std::size_t ArchitectureConfig::mrs_per_unit(std::size_t unit_size) const noexcept {
  // Each arm hosts two banks (activation + weight) of up to mrs_per_bank MRs;
  // count the actual populated MR positions.
  return 2 * unit_size;
}

std::size_t ArchitectureConfig::total_mrs() const noexcept {
  return conv_units * mrs_per_unit(conv_unit_size) + fc_units * mrs_per_unit(fc_unit_size);
}

std::size_t ArchitectureConfig::total_arms() const noexcept {
  return conv_units * arms_per_unit(conv_unit_size) + fc_units * arms_per_unit(fc_unit_size);
}

void ArchitectureConfig::validate() const {
  auto check = [](bool ok, const char* what) {
    if (!ok) throw std::invalid_argument(what);
  };
  check(conv_unit_size > 0, "ArchitectureConfig: N must be > 0");
  check(fc_unit_size > 0, "ArchitectureConfig: K must be > 0");
  check(conv_units > 0, "ArchitectureConfig: n must be > 0");
  check(fc_units > 0, "ArchitectureConfig: m must be > 0");
  check(mrs_per_bank > 0 && mrs_per_bank <= 15,
        "ArchitectureConfig: MRs per bank in [1, 15] (Section IV-C.2)");
  check(pitch_ted_um > 0.0, "ArchitectureConfig: TED pitch must be > 0");
  check(pitch_guard_um >= pitch_ted_um,
        "ArchitectureConfig: guard pitch must be >= TED pitch");
  check(resolution_bits >= 1 && resolution_bits <= 16,
        "ArchitectureConfig: resolution in [1, 16]");
  devices.validate();
}

ArchitectureConfig best_config() {
  ArchitectureConfig cfg;  // Defaults are the Fig. 6 winner (20, 150, 100, 60).
  cfg.validate();
  return cfg;
}

ArchitectureConfig variant_config(Variant v) {
  ArchitectureConfig cfg = best_config();
  cfg.variant = v;
  return cfg;
}

}  // namespace xl::core
