#include "core/execution_plan.hpp"

#include <cstring>
#include <stdexcept>
#include <utility>

#include "dnn/conv2d.hpp"
#include "dnn/dense.hpp"

namespace xl::core {

using dnn::LayerKind;
using dnn::Shape;

namespace {

std::size_t shape_numel(const Shape& shape) {
  std::size_t n = 1;
  for (const std::size_t d : shape) n *= d;
  return n;
}

std::size_t round64(std::size_t bytes) {
  return (bytes + 63U) & ~static_cast<std::size_t>(63U);
}

}  // namespace

ExecutionPlan::ExecutionPlan(PhotonicInferenceEngine& engine,
                             const Shape& sample_shape, std::size_t max_batch)
    : engine_(engine) {
  if (sample_shape.size() < 2) {
    throw std::invalid_argument("ExecutionPlan: sample shape must have rank >= 2");
  }
  if (max_batch == 0) {
    throw std::invalid_argument("ExecutionPlan: max_batch must be >= 1");
  }
  sample_shape_ = sample_shape;
  sample_shape_[0] = 1;
  sample_numel_ = shape_numel(sample_shape_);
  max_batch_ = max_batch;
  stats_.max_batch = max_batch;
  layer_dt_us_ = engine_.engine().options().effects.thermal_stage.dt_us;

  dnn::Network& net = engine_.network();
  BatchedVdpEngine& vdp = engine_.engine();

  Shape cur = sample_shape_;
  std::size_t max_boundary = sample_numel_;  ///< Largest per-sample boundary.
  std::size_t max_patch_elems = 0;           ///< Largest full-batch patch matrix.
  std::size_t max_y_elems = 0;               ///< Largest full-batch GEMM output.
  std::size_t max_scratch = 0;               ///< Peak matmul arena scratch.
  std::size_t max_k = 0;                     ///< Longest GEMM operand.

  steps_.reserve(net.layer_count());
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    dnn::Layer& layer = net.layer(i);
    Step step;
    step.layer = &layer;
    step.in_shape = cur;
    step.in_numel = shape_numel(cur);
    step.out_shape = layer.output_shape(cur);
    step.out_numel = shape_numel(step.out_shape);

    switch (layer.kind_id()) {
      case LayerKind::kDense: {
        auto& dense = static_cast<dnn::Dense&>(layer);
        step.kind = StepKind::kDenseGemm;
        step.gemm_k = dense.in_features();
        step.gemm_outputs = dense.out_features();
        step.packed =
            vdp.pack_weights(dense.weights().data(), step.gemm_outputs, step.gemm_k);
        max_y_elems = std::max(max_y_elems, max_batch * step.gemm_outputs);
        max_scratch = std::max(
            max_scratch, vdp.matmul_workspace_bytes(max_batch, step.gemm_k));
        max_k = std::max(max_k, step.gemm_k);
        ++stats_.planned_layers;
        break;
      }
      case LayerKind::kConv: {
        auto& conv = static_cast<dnn::Conv2d&>(layer);
        step.kind = StepKind::kConvGemm;
        step.gather = dnn::plan_im2col(cur, conv.config());
        step.gemm_k = step.gather.shape.cols;
        step.gemm_outputs = conv.config().out_channels;
        step.pixels = step.out_shape[2] * step.out_shape[3];
        step.packed =
            vdp.pack_weights(conv.weights().data(), step.gemm_outputs, step.gemm_k);
        const std::size_t gemm_rows = max_batch * step.gather.shape.rows;
        max_patch_elems = std::max(max_patch_elems, gemm_rows * step.gemm_k);
        max_y_elems = std::max(max_y_elems, gemm_rows * step.gemm_outputs);
        max_scratch = std::max(
            max_scratch, vdp.matmul_workspace_bytes(gemm_rows, step.gemm_k));
        max_k = std::max(max_k, step.gemm_k);
        ++stats_.planned_layers;
        break;
      }
      case LayerKind::kPool:
      case LayerKind::kActivation:
      case LayerKind::kOther: {
        if (layer.inference_identity()) {
          step.kind = StepKind::kView;
          ++stats_.planned_layers;
        } else if (layer.supports_eval_into()) {
          step.kind = StepKind::kEval;
          ++stats_.planned_layers;
        } else {
          step.kind = StepKind::kFallback;
          ++stats_.fallback_layers;
        }
        break;
      }
    }

    max_boundary = std::max(max_boundary, step.out_numel);
    cur = step.out_shape;
    steps_.push_back(std::move(step));
  }
  output_sample_shape_ = cur;
  output_numel_ = shape_numel(cur);

  // Every GEMM step keeps its own persistent arm-transmission table cache;
  // the caches coexist for the plan's lifetime, so their arena footprint is
  // the sum over steps (not the max).
  std::size_t table_bytes = 0;
  for (const Step& step : steps_) {
    if (step.kind != StepKind::kDenseGemm && step.kind != StepKind::kConvGemm) {
      continue;
    }
    const std::size_t te = vdp.gemm_table_elems(step.gemm_k);
    table_bytes += round64(te * sizeof(double)) +
                   round64(step.gemm_outputs * te * sizeof(double));
  }

  // One arena holds everything: the two ping-pong activation buffers, the
  // gathered patch matrix, the GEMM output, the per-step table caches, plus
  // headroom for the engine's per-call mark/rewind scratch. Sized so the
  // steady state never regrows.
  const std::size_t act_elems = max_boundary * max_batch;
  const std::size_t capacity = 2 * round64(act_elems * sizeof(float)) +
                               round64(max_patch_elems * sizeof(float)) +
                               round64(max_y_elems * sizeof(double)) +
                               table_bytes + max_scratch + 1024;
  arena_.reserve(capacity);
  act_a_ = arena_.make_span<float>(act_elems);
  act_b_ = arena_.make_span<float>(act_elems);
  if (max_patch_elems > 0) patches_ = arena_.make_span<float>(max_patch_elems);
  if (max_y_elems > 0) y_ = arena_.make_span<double>(max_y_elems);
  for (Step& step : steps_) {
    if (step.kind != StepKind::kDenseGemm && step.kind != StepKind::kConvGemm) {
      continue;
    }
    const std::size_t te = vdp.gemm_table_elems(step.gemm_k);
    step.tables.idle = arena_.make_span<double>(te);
    step.tables.carry = arena_.make_span<double>(step.gemm_outputs * te);
  }

  // Pre-size the engine's per-thread vdp scratch so the first planned matmul
  // is already allocation-free.
  if (max_k > 0) vdp.warm_thread_scratch(max_k);

  shape_tmp_.reserve(8);
}

void ExecutionPlan::run_dense(Step& step, std::size_t rows, const float* in,
                              float* out) {
  engine_.engine().photonic_matmul(in, rows, step.gemm_k, step.packed, y_.data(),
                                   arena_, step.tables);
  auto& dense = static_cast<dnn::Dense&>(*step.layer);
  const std::size_t out_f = step.gemm_outputs;
  for (std::size_t b = 0; b < rows; ++b) {
    for (std::size_t o = 0; o < out_f; ++o) {
      out[b * out_f + o] =
          static_cast<float>(y_[b * out_f + o] + dense.bias()[o]);
    }
  }
  engine_.stats_.photonic_matmuls += 1;
  engine_.stats_.photonic_dot_products += rows * out_f;
  engine_.stats_.photonic_macs += rows * out_f * step.gemm_k;
}

void ExecutionPlan::run_conv(Step& step, std::size_t rows, const float* in,
                             float* out) {
  const dnn::Im2colPlan& g = step.gather;
  const std::size_t rows_per_sample = g.shape.rows;
  const std::size_t cols = g.shape.cols;
  for (std::size_t r = 0; r < rows; ++r) {
    dnn::im2col_gather(g, in + r * step.in_numel,
                       patches_.data() + r * rows_per_sample * cols);
  }
  const std::size_t gemm_rows = rows * rows_per_sample;
  engine_.engine().photonic_matmul(patches_.data(), gemm_rows, cols, step.packed,
                                   y_.data(), arena_, step.tables);

  auto& conv = static_cast<dnn::Conv2d&>(*step.layer);
  const std::size_t out_ch = step.gemm_outputs;
  const std::size_t pixels = step.pixels;
  for (std::size_t gr = 0; gr < gemm_rows; ++gr) {
    const std::size_t n = gr / pixels;
    const std::size_t pixel = gr % pixels;
    for (std::size_t co = 0; co < out_ch; ++co) {
      out[(n * out_ch + co) * pixels + pixel] =
          static_cast<float>(y_[gr * out_ch + co] + conv.bias()[co]);
    }
  }
  engine_.stats_.photonic_matmuls += 1;
  engine_.stats_.photonic_dot_products += gemm_rows * out_ch;
  engine_.stats_.photonic_macs += gemm_rows * out_ch * cols;
}

void ExecutionPlan::run_fallback(const Step& step, std::size_t rows,
                                 const float* in, float* out) {
  shape_tmp_.assign(step.in_shape.begin(), step.in_shape.end());
  shape_tmp_[0] = rows;
  dnn::Tensor x(shape_tmp_);
  std::memcpy(x.data(), in, rows * step.in_numel * sizeof(float));
  const dnn::Tensor o = step.layer->forward(x, false);
  std::memcpy(out, o.data(), rows * step.out_numel * sizeof(float));
}

void ExecutionPlan::execute(std::span<const RowViewIn> inputs,
                            std::span<const RowViewOut> outputs) {
  if (inputs.size() != outputs.size()) {
    throw std::invalid_argument("ExecutionPlan::execute: view count mismatch");
  }
  std::size_t total = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (inputs[i].rows != outputs[i].rows) {
      throw std::invalid_argument("ExecutionPlan::execute: paired view row mismatch");
    }
    total += inputs[i].rows;
  }
  if (total == 0) {
    throw std::invalid_argument("ExecutionPlan::execute: empty micro-batch");
  }
  if (total > max_batch_) {
    throw std::invalid_argument("ExecutionPlan::execute: rows exceed plan max_batch");
  }

  // Gather: requests land back-to-back in the first activation buffer.
  float* cur = act_a_.data();
  float* next = act_b_.data();
  std::size_t off = 0;
  for (const RowViewIn& v : inputs) {
    std::memcpy(cur + off * sample_numel_, v.data,
                v.rows * sample_numel_ * sizeof(float));
    off += v.rows;
  }

  for (Step& step : steps_) {
    switch (step.kind) {
      case StepKind::kDenseGemm:
        run_dense(step, total, cur, next);
        std::swap(cur, next);
        engine_.engine().advance_effects(layer_dt_us_);
        break;
      case StepKind::kConvGemm:
        run_conv(step, total, cur, next);
        std::swap(cur, next);
        engine_.engine().advance_effects(layer_dt_us_);
        break;
      case StepKind::kView:
        // Pure shape change (flatten) or inference identity (dropout):
        // bytes stay where they are.
        break;
      case StepKind::kEval: {
        shape_tmp_.assign(step.in_shape.begin(), step.in_shape.end());
        shape_tmp_[0] = total;
        step.layer->eval_into(shape_tmp_, {cur, total * step.in_numel},
                              {next, total * step.out_numel});
        std::swap(cur, next);
        break;
      }
      case StepKind::kFallback:
        run_fallback(step, total, cur, next);
        std::swap(cur, next);
        break;
    }
  }

  // Scatter: each request's logit rows go straight to its caller-held buffer.
  off = 0;
  for (const RowViewOut& v : outputs) {
    std::memcpy(v.data, cur + off * output_numel_,
                v.rows * output_numel_ * sizeof(float));
    off += v.rows;
  }

  ++stats_.executions;
  engine_.stats_.samples_inferred += total;
  engine_.stats_.batches_inferred += 1;
}

}  // namespace xl::core
