// CrossLight architecture configuration (Section IV-C) and the four
// evaluation variants (Section V-D).
#pragma once

#include <cstdint>
#include <string>

#include "photonics/device_params.hpp"

namespace xl::core {

/// The four architecture variants compared in Figs. 7-8 / Table III.
enum class Variant : std::uint8_t {
  kBase,     ///< Conventional MRs (7.1 nm FPV drift) + naive TO tuning.
  kBaseTed,  ///< Conventional MRs + hybrid TED tuning (5 um pitch).
  kOpt,      ///< Optimized MRs (2.1 nm drift) + naive TO tuning.
  kOptTed,   ///< Optimized MRs + hybrid TED tuning — the flagship.
};

[[nodiscard]] std::string variant_name(Variant v);
[[nodiscard]] bool variant_uses_ted(Variant v) noexcept;
[[nodiscard]] bool variant_uses_optimized_mr(Variant v) noexcept;

/// Architecture-level parameters. The tuple (N, K, n, m) follows the paper's
/// notation: n CONV VDP units of size N, m FC VDP units of size K.
struct ArchitectureConfig {
  std::size_t conv_unit_size = 20;  ///< N: dot-product length per CONV unit pass.
  std::size_t fc_unit_size = 150;   ///< K: dot-product length per FC unit pass.
  std::size_t conv_units = 100;     ///< n.
  std::size_t fc_units = 60;        ///< m.

  /// MRs per bank per arm (paper: max 15, i.e. 30 MRs/arm across the
  /// activation and weight banks).
  std::size_t mrs_per_bank = 15;

  Variant variant = Variant::kOptTed;

  /// Adjacent-MR pitch. TED variants sit at the Fig. 4 optimum (5 um);
  /// non-TED variants need crosstalk guard spacing (Section IV-A: 120 um).
  double pitch_ted_um = 5.0;
  double pitch_guard_um = 120.0;

  /// Weight/activation resolution used by the datapath (Section V-B: 16).
  int resolution_bits = 16;

  xl::photonics::DeviceParams devices;

  [[nodiscard]] double mr_pitch_um() const noexcept {
    return variant_uses_ted(variant) ? pitch_ted_um : pitch_guard_um;
  }
  [[nodiscard]] double fpv_drift_nm() const noexcept {
    return variant_uses_optimized_mr(variant) ? devices.fpv_drift_optimized_nm
                                              : devices.fpv_drift_conventional_nm;
  }

  /// Arms needed by one VDP unit of the given size (ceil(size / bank)).
  [[nodiscard]] std::size_t arms_per_unit(std::size_t unit_size) const noexcept;
  /// MR count of one VDP unit (2 banks per arm: activations + weights).
  [[nodiscard]] std::size_t mrs_per_unit(std::size_t unit_size) const noexcept;
  /// Total MRs across both unit pools.
  [[nodiscard]] std::size_t total_mrs() const noexcept;
  /// Total arms (= partial-sum photodetectors) across both pools.
  [[nodiscard]] std::size_t total_arms() const noexcept;

  /// Throws std::invalid_argument on inconsistent settings.
  void validate() const;
};

/// The best (N, K, n, m) = (20, 150, 100, 60) configuration from the Fig. 6
/// design-space exploration, as Cross_opt_TED.
[[nodiscard]] ArchitectureConfig best_config();

/// Same architecture tuple under a different variant.
[[nodiscard]] ArchitectureConfig variant_config(Variant v);

}  // namespace xl::core
