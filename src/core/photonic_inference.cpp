#include "core/photonic_inference.hpp"

#include <cmath>
#include <stdexcept>

#include "dnn/conv2d.hpp"
#include "dnn/dense.hpp"
#include "dnn/loss.hpp"

namespace xl::core {

using dnn::Conv2d;
using dnn::Dense;
using dnn::Shape;
using dnn::Tensor;

PhotonicInferenceEngine::PhotonicInferenceEngine(dnn::Network& network,
                                                 const VdpSimOptions& options)
    : network_(network), simulator_(options) {}

Tensor PhotonicInferenceEngine::run_dense_photonic(const Tensor& input, Dense& layer) {
  if (input.rank() != 2 || input.dim(0) != 1 || input.dim(1) != layer.in_features()) {
    throw std::invalid_argument("PhotonicInference: dense input shape mismatch");
  }
  std::vector<double> x(layer.in_features());
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = input[i];

  Tensor out({1, layer.out_features()});
  std::vector<double> w(layer.in_features());
  for (std::size_t o = 0; o < layer.out_features(); ++o) {
    for (std::size_t i = 0; i < w.size(); ++i) w[i] = layer.weights().at2(o, i);
    out.at2(0, o) = static_cast<float>(simulator_.dot(x, w) + layer.bias()[o]);
    ++stats_.photonic_dot_products;
    stats_.photonic_macs += w.size();
  }
  return out;
}

Tensor PhotonicInferenceEngine::run_conv_photonic(const Tensor& input, Conv2d& layer) {
  const Shape out_shape = layer.output_shape(input.shape());
  const auto& cfg = layer.config();
  const std::size_t h_in = input.dim(2);
  const std::size_t w_in = input.dim(3);
  const std::size_t patch_len = cfg.in_channels * cfg.kernel * cfg.kernel;
  const auto pad = static_cast<std::ptrdiff_t>(cfg.padding);

  // Pre-extract filter rows once per layer (im2col-style lowering: every
  // output pixel is one VDP dot product, Section IV-C.1).
  std::vector<std::vector<double>> filters(cfg.out_channels,
                                           std::vector<double>(patch_len));
  for (std::size_t co = 0; co < cfg.out_channels; ++co) {
    std::size_t k = 0;
    for (std::size_t ci = 0; ci < cfg.in_channels; ++ci) {
      for (std::size_t ky = 0; ky < cfg.kernel; ++ky) {
        for (std::size_t kx = 0; kx < cfg.kernel; ++kx) {
          filters[co][k++] = layer.weights().at4(co, ci, ky, kx);
        }
      }
    }
  }

  Tensor out(out_shape);
  std::vector<double> patch(patch_len);
  for (std::size_t oy = 0; oy < out_shape[2]; ++oy) {
    for (std::size_t ox = 0; ox < out_shape[3]; ++ox) {
      const std::ptrdiff_t iy0 = static_cast<std::ptrdiff_t>(oy * cfg.stride) - pad;
      const std::ptrdiff_t ix0 = static_cast<std::ptrdiff_t>(ox * cfg.stride) - pad;
      std::size_t k = 0;
      for (std::size_t ci = 0; ci < cfg.in_channels; ++ci) {
        for (std::size_t ky = 0; ky < cfg.kernel; ++ky) {
          for (std::size_t kx = 0; kx < cfg.kernel; ++kx, ++k) {
            const std::ptrdiff_t iy = iy0 + static_cast<std::ptrdiff_t>(ky);
            const std::ptrdiff_t ix = ix0 + static_cast<std::ptrdiff_t>(kx);
            const bool inside = iy >= 0 && iy < static_cast<std::ptrdiff_t>(h_in) &&
                                ix >= 0 && ix < static_cast<std::ptrdiff_t>(w_in);
            patch[k] = inside ? input.at4(0, ci, static_cast<std::size_t>(iy),
                                          static_cast<std::size_t>(ix))
                              : 0.0;
          }
        }
      }
      for (std::size_t co = 0; co < cfg.out_channels; ++co) {
        out.at4(0, co, oy, ox) =
            static_cast<float>(simulator_.dot(patch, filters[co]) + layer.bias()[co]);
        ++stats_.photonic_dot_products;
        stats_.photonic_macs += patch_len;
      }
    }
  }
  return out;
}

Tensor PhotonicInferenceEngine::infer(const Tensor& sample) {
  if (sample.rank() < 2 || sample.dim(0) != 1) {
    throw std::invalid_argument("PhotonicInference: batch dimension must be 1");
  }
  Tensor x = sample;
  for (std::size_t i = 0; i < network_.layer_count(); ++i) {
    dnn::Layer& layer = network_.layer(i);
    if (auto* dense = dynamic_cast<Dense*>(&layer)) {
      const Tensor reference = dense->forward(x, false);
      x = run_dense_photonic(x, *dense);
      for (std::size_t j = 0; j < x.numel(); ++j) {
        stats_.max_abs_layer_error = std::max(
            stats_.max_abs_layer_error, static_cast<double>(std::abs(x[j] - reference[j])));
      }
    } else if (auto* conv = dynamic_cast<Conv2d*>(&layer)) {
      const Tensor reference = conv->forward(x, false);
      x = run_conv_photonic(x, *conv);
      for (std::size_t j = 0; j < x.numel(); ++j) {
        stats_.max_abs_layer_error = std::max(
            stats_.max_abs_layer_error, static_cast<double>(std::abs(x[j] - reference[j])));
      }
    } else {
      // Electronic-domain layer (pooling, activation, flatten, dropout).
      x = layer.forward(x, false);
    }
  }
  return x;
}

double PhotonicInferenceEngine::evaluate_accuracy(const dnn::Dataset& data,
                                                  std::size_t count) {
  if (count == 0 || count > data.size()) {
    throw std::invalid_argument("PhotonicInference: bad sample count");
  }
  std::size_t correct = 0;
  for (std::size_t n = 0; n < count; ++n) {
    const Tensor sample = dnn::batch_images(data, n, 1);
    const Tensor logits = infer(sample);
    std::size_t best = 0;
    for (std::size_t c = 1; c < logits.dim(1); ++c) {
      if (logits.at2(0, c) > logits.at2(0, best)) best = c;
    }
    if (best == data.labels[n]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(count);
}

}  // namespace xl::core
