#include "core/photonic_inference.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/execution_plan.hpp"
#include "dnn/conv2d.hpp"
#include "dnn/dense.hpp"
#include "dnn/im2col.hpp"
#include "numerics/matrix.hpp"

namespace xl::core {

using dnn::Conv2d;
using dnn::Dense;
using dnn::LayerKind;
using dnn::Shape;
using dnn::Tensor;
using numerics::Matrix;

PhotonicInferenceEngine::PhotonicInferenceEngine(dnn::Network& network,
                                                 const VdpSimOptions& options)
    : network_(network), engine_(options) {}

// Out of line: ExecutionPlan is incomplete in the header.
PhotonicInferenceEngine::~PhotonicInferenceEngine() = default;

ExecutionPlan& PhotonicInferenceEngine::prepare_plan(const Shape& sample_shape,
                                                     std::size_t max_batch) {
  plan_ = std::make_unique<ExecutionPlan>(*this, sample_shape, max_batch);
  return *plan_;
}

void PhotonicInferenceEngine::invalidate_plan() noexcept { plan_.reset(); }

void PhotonicInferenceEngine::infer_views(std::span<const RowViewIn> inputs,
                                          std::span<const RowViewOut> outputs) {
  if (plan_ == nullptr) {
    throw std::logic_error("PhotonicInference: infer_views without a compiled plan");
  }
  std::size_t total = 0;
  for (const RowViewIn& v : inputs) total += v.rows;
  if (total > plan_->max_batch()) {
    const Shape shape = plan_->sample_shape();  // Copy: prepare_plan replaces plan_.
    prepare_plan(shape, total);
  }
  plan_->execute(inputs, outputs);
}

void PhotonicInferenceEngine::set_eval_batch_size(std::size_t n) {
  if (n == 0) throw std::invalid_argument("PhotonicInference: zero batch size");
  eval_batch_ = n;
}

void PhotonicInferenceEngine::accumulate_layer_error(const Tensor& photonic,
                                                     const Tensor& reference) {
  for (std::size_t j = 0; j < photonic.numel(); ++j) {
    stats_.max_abs_layer_error =
        std::max(stats_.max_abs_layer_error,
                 static_cast<double>(std::abs(photonic[j] - reference[j])));
  }
}

Tensor PhotonicInferenceEngine::run_dense_photonic(const Tensor& input, Dense& layer) {
  if (input.rank() != 2 || input.dim(1) != layer.in_features()) {
    throw std::invalid_argument("PhotonicInference: dense input shape mismatch");
  }
  const std::size_t batch = input.dim(0);
  const std::size_t in = layer.in_features();
  const std::size_t out_f = layer.out_features();

  Matrix x(batch, in);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t i = 0; i < in; ++i) x(b, i) = input.at2(b, i);
  }
  Matrix w(out_f, in);
  for (std::size_t o = 0; o < out_f; ++o) {
    for (std::size_t i = 0; i < in; ++i) w(o, i) = layer.weights().at2(o, i);
  }

  const Matrix y = engine_.photonic_matmul(x, w);
  Tensor out({batch, out_f});
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t o = 0; o < out_f; ++o) {
      out.at2(b, o) = static_cast<float>(y(b, o) + layer.bias()[o]);
    }
  }
  stats_.photonic_matmuls += 1;
  stats_.photonic_dot_products += batch * out_f;
  stats_.photonic_macs += batch * out_f * in;
  return out;
}

Tensor PhotonicInferenceEngine::run_conv_photonic(const Tensor& input, Conv2d& layer) {
  const Shape out_shape = layer.output_shape(input.shape());
  const auto& cfg = layer.config();

  // Shared im2col lowering: the whole batch becomes one patch-matrix GEMM
  // against the filter rows (Section IV-C.1, batched).
  const Tensor patches = dnn::im2col(input, cfg);
  const std::size_t rows = patches.dim(0);
  const std::size_t patch_len = patches.dim(1);

  Matrix x(rows, patch_len);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* src = patches.data() + r * patch_len;
    for (std::size_t i = 0; i < patch_len; ++i) x(r, i) = src[i];
  }
  Matrix w(cfg.out_channels, patch_len);
  for (std::size_t co = 0; co < cfg.out_channels; ++co) {
    const float* src = layer.weights().data() + co * patch_len;
    for (std::size_t i = 0; i < patch_len; ++i) w(co, i) = src[i];
  }

  const Matrix y = engine_.photonic_matmul(x, w);
  const std::size_t pixels = out_shape[2] * out_shape[3];
  Tensor out(out_shape);
  float* dst = out.data();
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t n = r / pixels;
    const std::size_t pixel = r % pixels;
    for (std::size_t co = 0; co < cfg.out_channels; ++co) {
      dst[(n * cfg.out_channels + co) * pixels + pixel] =
          static_cast<float>(y(r, co) + layer.bias()[co]);
    }
  }
  stats_.photonic_matmuls += 1;
  stats_.photonic_dot_products += rows * cfg.out_channels;
  stats_.photonic_macs += rows * cfg.out_channels * patch_len;
  return out;
}

Tensor PhotonicInferenceEngine::infer_batch(const Tensor& batch) {
  if (plan_enabled_ && !track_layer_error_) {
    if (batch.rank() < 2 || batch.dim(0) == 0) {
      throw std::invalid_argument(
          "PhotonicInference: batch must have rank >= 2 and N >= 1");
    }
    const std::size_t rows = batch.dim(0);
    // Recompile when the sample shape changed or the batch outgrew the plan;
    // steady-state traffic with a stable shape reuses the cached plan.
    const auto sample_matches = [&]() {
      if (plan_ == nullptr) return false;
      const Shape& planned = plan_->sample_shape();
      if (planned.size() != batch.rank()) return false;
      for (std::size_t d = 1; d < planned.size(); ++d) {
        if (planned[d] != batch.dim(d)) return false;
      }
      return true;
    };
    if (!sample_matches()) {
      prepare_plan(batch.shape(), rows);
    } else if (rows > plan_->max_batch()) {
      const Shape shape = plan_->sample_shape();
      prepare_plan(shape, rows);
    }
    Shape out_shape = plan_->output_sample_shape();
    out_shape[0] = rows;
    Tensor out(out_shape);
    const RowViewIn in{batch.data(), rows};
    const RowViewOut ov{out.data(), rows};
    plan_->execute({&in, 1}, {&ov, 1});
    return out;
  }
  return infer_range(batch, 0, network_.layer_count());
}

std::size_t PhotonicInferenceEngine::accelerated_layers_before(
    std::size_t end_layer) const {
  const std::size_t end = std::min(end_layer, network_.layer_count());
  std::size_t count = 0;
  for (std::size_t i = 0; i < end; ++i) {
    const LayerKind kind = network_.layer(i).kind_id();
    if (kind == LayerKind::kDense || kind == LayerKind::kConv) ++count;
  }
  return count;
}

Tensor PhotonicInferenceEngine::infer_range(const Tensor& batch,
                                            std::size_t begin_layer,
                                            std::size_t end_layer) {
  if (batch.rank() < 2 || batch.dim(0) == 0) {
    throw std::invalid_argument("PhotonicInference: batch must have rank >= 2 and N >= 1");
  }
  const std::size_t end = std::min(end_layer, network_.layer_count());
  if (begin_layer > end) {
    throw std::invalid_argument("PhotonicInference: begin_layer past end_layer");
  }
  // Simulated time per accelerated layer: thermal drift evolves across the
  // network's depth (and across batches — the chip does not cool down
  // between them). advance_effects is a no-op without a thermal stage.
  const double layer_dt_us = engine_.options().effects.thermal_stage.dt_us;
  Tensor x = batch;
  for (std::size_t i = begin_layer; i < end; ++i) {
    dnn::Layer& layer = network_.layer(i);
    bool accelerated = false;
    switch (layer.kind_id()) {
      case LayerKind::kDense: {
        auto& dense = static_cast<Dense&>(layer);
        if (track_layer_error_) {
          const Tensor reference = dense.forward(x, false);
          x = run_dense_photonic(x, dense);
          accumulate_layer_error(x, reference);
        } else {
          x = run_dense_photonic(x, dense);
        }
        accelerated = true;
        break;
      }
      case LayerKind::kConv: {
        auto& conv = static_cast<Conv2d&>(layer);
        if (track_layer_error_) {
          const Tensor reference = conv.forward(x, false);
          x = run_conv_photonic(x, conv);
          accumulate_layer_error(x, reference);
        } else {
          x = run_conv_photonic(x, conv);
        }
        accelerated = true;
        break;
      }
      case LayerKind::kPool:
      case LayerKind::kActivation:
      case LayerKind::kOther:
        // Electronic-domain layer (pooling, activation, flatten, dropout).
        x = layer.forward(x, false);
        break;
    }
    if (accelerated) engine_.advance_effects(layer_dt_us);
  }
  if (begin_layer == 0 && end == network_.layer_count()) {
    stats_.samples_inferred += batch.dim(0);
    stats_.batches_inferred += 1;
  }
  return x;
}

double PhotonicInferenceEngine::evaluate_accuracy(const dnn::Dataset& data,
                                                  std::size_t count) {
  if (count == 0 || count > data.size()) {
    throw std::invalid_argument("PhotonicInference: bad sample count");
  }
  std::size_t correct = 0;
  for (std::size_t start = 0; start < count; start += eval_batch_) {
    const std::size_t n = std::min(eval_batch_, count - start);
    const Tensor batch = dnn::batch_images(data, start, n);
    const Tensor logits = infer_batch(batch);
    for (std::size_t b = 0; b < n; ++b) {
      std::size_t best = 0;
      for (std::size_t c = 1; c < logits.dim(1); ++c) {
        if (logits.at2(b, c) > logits.at2(b, best)) best = c;
      }
      if (best == data.labels[start + b]) ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(count);
}

}  // namespace xl::core
