#include "core/power.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "photonics/laser.hpp"
#include "photonics/losses.hpp"
#include "photonics/wdm.hpp"
#include "thermal/crosstalk_matrix.hpp"
#include "thermal/ted.hpp"

namespace xl::core {

namespace {

using xl::photonics::ArmPathSpec;
using xl::photonics::FpvModel;
using xl::photonics::MrDesignKind;

/// Integer ceil(log2(x)) for x >= 1.
std::size_t ceil_log2(std::size_t x) {
  std::size_t bits = 0;
  std::size_t v = 1;
  while (v < x) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

}  // namespace

double unit_laser_power_mw(const ArchitectureConfig& config, std::size_t unit_size) {
  const auto plan = xl::photonics::plan_wavelength_reuse(unit_size, config.mrs_per_bank);

  ArmPathSpec spec;
  spec.mrs_on_waveguide = config.mrs_per_bank;
  spec.banks_per_arm = 2;
  spec.splitter_stages = ceil_log2(std::max<std::size_t>(plan.arms, 1));
  const double pitch = config.mr_pitch_um();
  spec.waveguide_length_cm =
      static_cast<double>(2 * config.mrs_per_bank) * (kMrDiameterUm + pitch) * 1e-4;
  spec.combiner_stages = 1;

  xl::photonics::LossBudget budget = arm_loss_budget(spec, config.devices);
  // Splitting the laser feed across `arms` identical arms divides the optical
  // power per arm: account the 1:arms power division explicitly.
  if (plan.arms > 1) {
    budget.add("arm_power_division",
               10.0 * std::log10(static_cast<double>(plan.arms)));
  }

  const auto req = xl::photonics::required_laser_power(
      budget, plan.unique_wavelengths, config.devices);
  return req.wall_plug_power_mw;
}

double total_to_tuning_power_mw(const ArchitectureConfig& config) {
  config.validate();
  const double pitch = config.mr_pitch_um();
  const MrDesignKind kind = variant_uses_optimized_mr(config.variant)
                                ? MrDesignKind::kOptimized
                                : MrDesignKind::kConventional;

  xl::photonics::FpvModelConfig fpv_cfg;
  fpv_cfg.max_drift_conventional_nm = config.devices.fpv_drift_conventional_nm;
  fpv_cfg.max_drift_optimized_nm = config.devices.fpv_drift_optimized_nm;
  const FpvModel fpv(fpv_cfg);

  const double phase_per_nm = 2.0 * M_PI / config.devices.mr_fsr_nm;
  const double mw_per_rad =
      config.devices.to_tuning_power_mw_per_fsr / (2.0 * M_PI);

  // Representative bank: mrs_per_bank rings at the variant's pitch. All
  // banks are statistically identical, so solve one representative bank per
  // pool position sample and scale by the bank count.
  const std::size_t bank = config.mrs_per_bank;
  xl::thermal::CouplingModelConfig coupling_cfg;
  coupling_cfg.self_phase_rad_per_mw = 1.0 / mw_per_rad;
  const xl::numerics::Matrix coupling =
      xl::thermal::coupling_matrix_exponential(bank, pitch, coupling_cfg);

  const std::size_t total_banks =
      (config.conv_units * config.arms_per_unit(config.conv_unit_size) +
       config.fc_units * config.arms_per_unit(config.fc_unit_size)) *
      2;  // Activation bank + weight bank per arm.

  if (variant_uses_ted(config.variant)) {
    // Hybrid TED variants: the offline test phase measures every ring's
    // actual drift, and the collective eigenmode solve trims all rings of a
    // bank together (Section IV-B). Sample bank sites across the chip and
    // average the solved bank power.
    constexpr int kSites = 8;
    const xl::thermal::TedTuner tuner(coupling);
    double acc_power = 0.0;
    for (int site = 0; site < kSites; ++site) {
      const double y_um = 40.0 * static_cast<double>(site);
      const std::vector<double> drifts =
          fpv.row_drifts_nm(kind, bank, pitch, 13.0 * static_cast<double>(site), y_um);
      xl::numerics::Vector targets(bank);
      for (std::size_t i = 0; i < bank; ++i) {
        targets[i] = std::abs(drifts[i]) * phase_per_nm;
      }
      acc_power += tuner.solve(targets).total_power_mw;
    }
    return acc_power / kSites * static_cast<double>(total_banks);
  }

  // Traditional TO tuning (Cross_base / Cross_opt): without the collective
  // calibration flow, every heater is provisioned for the design corner
  // (max |drift|), and runtime weight imprinting also rides on TO actuation,
  // dissipating a continuous hold power per MR (Section II's criticism of
  // prior accelerators). Guard spacing keeps crosstalk overdrive near 1.
  const double worst_phase = fpv.max_drift_nm(kind) * phase_per_nm;
  const xl::numerics::Vector worst_targets(bank, worst_phase);
  const xl::thermal::NaiveTuningResult naive =
      xl::thermal::naive_tuning_powers(coupling, worst_targets);
  constexpr double kMeanWeightHoldShiftNm = 0.5;
  const double weight_hold_mw_per_ring =
      kMeanWeightHoldShiftNm * config.devices.to_tuning_power_mw_per_nm();
  return naive.total_power_mw * static_cast<double>(total_banks) +
         weight_hold_mw_per_ring * static_cast<double>(config.total_mrs());
}

PowerBreakdown evaluate_power(const ModelMapping& mapping, const ArchitectureConfig& config,
                              const PerformanceReport& perf) {
  config.validate();
  const auto& d = config.devices;
  PowerBreakdown p;

  // --- Laser ---------------------------------------------------------------
  p.laser_mw = static_cast<double>(config.conv_units) *
                   unit_laser_power_mw(config, config.conv_unit_size) +
               static_cast<double>(config.fc_units) *
                   unit_laser_power_mw(config, config.fc_unit_size);

  // --- Static TO trim --------------------------------------------------------
  p.to_tuning_mw = total_to_tuning_power_mw(config);

  // --- Dynamic EO imprint ----------------------------------------------------
  // Each pass re-imprints activation+weight MRs; mean EO excursion is half a
  // linewidth-dominated weight range (~0.5 nm).
  constexpr double kMeanImprintShiftNm = 0.5;
  const double energy_per_pass_pj =
      static_cast<double>(2 * config.mrs_per_bank) * d.eo_tuning_power_uw_per_nm *
      kMeanImprintShiftNm * d.eo_tuning_latency_ns * 1e-3;  // uW*ns = fJ -> pJ
  if (perf.frame_latency_us > 0.0) {
    const double frame_energy_pj =
        energy_per_pass_pj * static_cast<double>(mapping.total_passes);
    // pJ -> J, us -> s, W -> mW.
    p.eo_tuning_mw = frame_energy_pj * 1e-12 / (perf.frame_latency_us * 1e-6) * 1e3;
  }

  // --- Optoelectronic device bias -------------------------------------------
  const std::size_t arms = config.total_arms();
  const std::size_t units = config.conv_units + config.fc_units;
  const std::size_t pds = arms + units;  // Per-arm balanced PD + final accumulator.
  p.pd_mw = static_cast<double>(pds) * d.pd_power_mw;
  p.tia_mw = static_cast<double>(pds) * d.tia_power_mw;
  p.vcsel_mw = static_cast<double>(arms) * d.vcsel_power_mw;

  // --- Transceiver arrays ----------------------------------------------------
  // One ADC/DAC transceiver array per VDP unit, run at the line rate needed
  // by the unit's sample traffic (modelled at the array's rated power scaled
  // by the active-duty fraction of the unit pool for this workload).
  const double conv_share =
      mapping.total_passes == 0
          ? 0.0
          : static_cast<double>(mapping.conv_passes()) /
                static_cast<double>(mapping.total_passes);
  // Result-sample and operand-sample phases interleave on the shared array,
  // so the average line-rate duty sits near one half.
  const double duty = 0.5;
  p.adc_dac_mw = duty * d.transceiver_max_power_mw *
                 (conv_share * static_cast<double>(config.conv_units) +
                  (1.0 - conv_share) * static_cast<double>(config.fc_units));

  // --- Digital control -------------------------------------------------------
  // Buffering, partial-sum bookkeeping and sequencing; modelled as a fixed
  // per-unit controller cost.
  constexpr double kControlPerUnitMw = 5.0;
  p.control_mw = kControlPerUnitMw * static_cast<double>(units);

  return p;
}

}  // namespace xl::core
