// CrossLightAccelerator — the top-level facade tying mapper, performance,
// power, and area models together. This is the main entry point of the
// public API (see examples/quickstart.cpp).
#pragma once

#include <vector>

#include "core/area.hpp"
#include "core/config.hpp"
#include "core/mapper.hpp"
#include "core/performance.hpp"
#include "core/power.hpp"
#include "core/report.hpp"
#include "dnn/layer_spec.hpp"

namespace xl::core {

class CrossLightAccelerator {
 public:
  /// Throws std::invalid_argument on invalid configurations.
  explicit CrossLightAccelerator(ArchitectureConfig config);

  /// Evaluate one DNN model end to end: mapping, latency, power, area, EPB.
  [[nodiscard]] AcceleratorReport evaluate(const xl::dnn::ModelSpec& model) const;

  /// Evaluate a set of models (e.g. the Table I zoo).
  [[nodiscard]] std::vector<AcceleratorReport> evaluate_all(
      const std::vector<xl::dnn::ModelSpec>& models) const;

  /// Work decomposition only (exposed for tests/benches).
  [[nodiscard]] ModelMapping map(const xl::dnn::ModelSpec& model) const;

  [[nodiscard]] const ArchitectureConfig& config() const noexcept { return config_; }
  [[nodiscard]] const AreaBreakdown& area() const noexcept { return area_; }

 private:
  ArchitectureConfig config_;
  AreaBreakdown area_;
};

}  // namespace xl::core
