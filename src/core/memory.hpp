// Electronic memory subsystem model (Fig. 3's control path).
//
// The photonic substrate computes; the electronic side feeds it: a global
// buffer supplies weights/activations to the DAC arrays and absorbs partial
// sums from the ADCs. This module sizes that machinery for a mapped model:
// per-inference traffic, required partial-sum buffer capacity, and whether a
// given memory bandwidth sustains the photonic pools' peak issue rate (a
// roofline check: compute-bound vs memory-bound).
#pragma once

#include "core/config.hpp"
#include "core/mapper.hpp"
#include "core/performance.hpp"

namespace xl::core {

struct MemoryParams {
  double bandwidth_gbps = 1024.0;    ///< Global buffer -> DAC bandwidth (Gb/s).
  double sram_energy_pj_per_bit = 0.05;  ///< Per-bit access energy.
};

struct MemoryReport {
  double traffic_bits_per_frame = 0.0;  ///< Total operand + result traffic.
  double weight_bits = 0.0;
  double activation_bits = 0.0;
  double partial_sum_bits = 0.0;
  /// Peak concurrent partial-sum storage, bits (worst layer).
  double partial_sum_buffer_bits = 0.0;
  /// Bandwidth the photonic pools demand at full issue rate (Gb/s).
  double required_bandwidth_gbps = 0.0;
  /// min(1, provided / required): < 1 means memory-bound operation.
  double sustainable_fraction = 1.0;
  /// SRAM access energy per frame (pJ) and its average power (mW).
  double access_energy_pj = 0.0;
  double access_power_mw = 0.0;

  [[nodiscard]] bool memory_bound() const noexcept { return sustainable_fraction < 1.0; }
};

/// Analyze the memory subsystem for a mapped model at a given performance
/// point. Traffic accounting per pass: unit_size activation samples +
/// unit_size weight samples in, one partial-sum sample out, all at the
/// datapath resolution; per dot product one extra accumulated result write.
[[nodiscard]] MemoryReport evaluate_memory(const ModelMapping& mapping,
                                           const ArchitectureConfig& config,
                                           const PerformanceReport& perf,
                                           const MemoryParams& params = {});

/// Frame latency after the roofline correction: latency / sustainable
/// fraction (memory-bound pools stall the issue rate proportionally).
[[nodiscard]] double memory_corrected_latency_us(const PerformanceReport& perf,
                                                 const MemoryReport& memory);

}  // namespace xl::core
