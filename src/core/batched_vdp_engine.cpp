#include "core/batched_vdp_engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/effect_pipeline.hpp"
#include "numerics/gemm.hpp"
#include "photonics/crosstalk.hpp"

namespace xl::core {

namespace {
/// Output tile edge: 32x32 pairs keep the per-sample activation row and the
/// per-output detuning row hot in cache while giving OpenMP enough tiles.
constexpr std::size_t kTile = 32;
}  // namespace

BatchedVdpEngine::BatchedVdpEngine(const VdpSimOptions& opts)
    : opts_(opts), sim_(opts) {}

const EffectPipeline& BatchedVdpEngine::effects() const noexcept {
  return sim_.effects();
}

void BatchedVdpEngine::advance_effects(double dt_us) { sim_.effects().advance(dt_us); }

void BatchedVdpEngine::reset_effects() { sim_.effects().reset(); }

numerics::Matrix BatchedVdpEngine::exact_matmul(const numerics::Matrix& x,
                                                const numerics::Matrix& w) {
  return numerics::matmul_transposed(x, w);
}

numerics::Matrix BatchedVdpEngine::photonic_matmul(const numerics::Matrix& x,
                                                   const numerics::Matrix& w) {
  if (x.cols() != w.cols()) {
    throw std::invalid_argument("BatchedVdpEngine::photonic_matmul: K mismatch");
  }
  const std::size_t batch = x.rows();
  const std::size_t outputs = w.rows();
  const std::size_t k = x.cols();
  numerics::Matrix y(batch, outputs);
  if (batch == 0 || outputs == 0) return y;

  stats_.matmuls += 1;
  stats_.dot_products += batch * outputs;
  stats_.macs += batch * outputs * k;
  stats_.max_batch_rows = std::max(stats_.max_batch_rows, batch);
  if (k == 0) return y;

  const auto& lut = sim_.lut();
  const auto& quant = lut.quantizer();
  const std::size_t bank = lut.bank_size();
  // The effect pipeline renders thermal/FPV drifts, PD noise, and the
  // crosstalk flag once per matmul; every tile reads the same frozen view.
  const bool crosstalk = sim_.effects().crosstalk();
  const xl::photonics::VdpEffects* fx = sim_.effects().vdp_effects();

  // DAC row normalization, once per row instead of once per output element.
  const numerics::Vector sx = numerics::row_abs_max(x);
  const numerics::Vector sw = numerics::row_abs_max(w);

  // Activation-side tables, once per (sample, element): quantized magnitude
  // and the sign bit that is folded into the weight at pair time.
  std::vector<double> a_mag(batch * k);
  std::vector<unsigned char> x_neg(batch * k);
  for (std::size_t b = 0; b < batch; ++b) {
    if (sx[b] == 0.0) continue;  // Row contributes exact zeros.
    const std::span<const double> row = x.row(b);
    for (std::size_t i = 0; i < k; ++i) {
      a_mag[b * k + i] = lut.quantize_magnitude(std::abs(row[i]) / sx[b]);
      x_neg[b * k + i] = row[i] < 0.0 ? 1 : 0;
    }
  }

  // Weight-side tables, once per (output, element): imprint detuning via the
  // per-code LUT, plus the weight sign for the balanced-PD arm split.
  std::vector<double> w_det(outputs * k);
  std::vector<unsigned char> w_neg(outputs * k);
  std::vector<unsigned char> w_zero(outputs * k);
  for (std::size_t o = 0; o < outputs; ++o) {
    if (sw[o] == 0.0) continue;
    const std::span<const double> row = w.row(o);
    for (std::size_t i = 0; i < k; ++i) {
      const double wv = row[i];
      w_det[o * k + i] =
          lut.detune_for_code(i % bank, quant.encode(std::abs(wv) / sw[o]));
      w_neg[o * k + i] = wv < 0.0 ? 1 : 0;
      w_zero[o * k + i] = wv == 0.0 ? 1 : 0;
    }
  }

  const auto row_tiles = static_cast<std::int64_t>((batch + kTile - 1) / kTile);
  const auto col_tiles = static_cast<std::int64_t>((outputs + kTile - 1) / kTile);

#ifdef _OPENMP
#pragma omp parallel
#endif
  {
    xl::photonics::VdpScratch scratch;
    std::vector<unsigned char> neg(k);
#ifdef _OPENMP
#pragma omp for collapse(2) schedule(static)
#endif
    for (std::int64_t bt = 0; bt < row_tiles; ++bt) {
      for (std::int64_t ot = 0; ot < col_tiles; ++ot) {
        const std::size_t b0 = static_cast<std::size_t>(bt) * kTile;
        const std::size_t b1 = std::min(batch, b0 + kTile);
        const std::size_t o0 = static_cast<std::size_t>(ot) * kTile;
        const std::size_t o1 = std::min(outputs, o0 + kTile);
        for (std::size_t b = b0; b < b1; ++b) {
          if (sx[b] == 0.0) continue;  // y row already zero.
          const double* a_row = a_mag.data() + b * k;
          const unsigned char* xs = x_neg.data() + b * k;
          for (std::size_t o = o0; o < o1; ++o) {
            if (sw[o] == 0.0) continue;
            const double* det_row = w_det.data() + o * k;
            const unsigned char* ws = w_neg.data() + o * k;
            const unsigned char* wz = w_zero.data() + o * k;
            // Fold the activation sign into the weight: the folded weight is
            // negative iff signs differ and the weight is nonzero (a zero
            // weight lands on the positive arm, as in the scalar path).
            for (std::size_t i = 0; i < k; ++i) {
              neg[i] = static_cast<unsigned char>(!wz[i] && (ws[i] != xs[i]));
            }
            y(b, o) = lut.vdp_dot({a_row, k}, {det_row, k}, {neg.data(), k},
                                  crosstalk, scratch, fx) *
                      sx[b] * sw[o];
          }
        }
      }
    }
  }
  return y;
}

int BatchedVdpEngine::achievable_resolution_bits() const {
  xl::photonics::ResolutionOptions ro;
  ro.q_factor = opts_.q_factor;
  ro.center_wavelength_nm = opts_.center_wavelength_nm;
  ro.dac_bit_cap = opts_.resolution_bits;
  const xl::photonics::WavelengthGrid grid(opts_.mrs_per_bank, opts_.fsr_nm,
                                           opts_.center_wavelength_nm);
  return xl::photonics::analyze_crosstalk(grid, ro).resolution_bits;
}

}  // namespace xl::core
