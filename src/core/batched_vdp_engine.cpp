#include "core/batched_vdp_engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#if defined(XL_USE_OPENMP) && defined(_OPENMP)
#include <omp.h>
#endif

#include "core/effect_pipeline.hpp"
#include "exec/exec.hpp"
#include "numerics/gemm.hpp"
#include "photonics/crosstalk.hpp"

namespace xl::core {

namespace {
/// Output tile edge: 32x32 pairs keep the per-sample activation row and the
/// per-output detuning row hot in cache while giving the executor (or the
/// legacy OpenMP schedule) enough tiles to balance.
constexpr std::size_t kTile = 32;

/// Arena span granularity (matches Arena's 64-byte bump alignment).
std::size_t round64(std::size_t bytes) {
  return (bytes + 63U) & ~static_cast<std::size_t>(63U);
}
}  // namespace

BatchedVdpEngine::BatchedVdpEngine(const VdpSimOptions& opts)
    : opts_(opts), sim_(opts) {}

const EffectPipeline& BatchedVdpEngine::effects() const noexcept {
  return sim_.effects();
}

void BatchedVdpEngine::advance_effects(double dt_us) { sim_.effects().advance(dt_us); }

void BatchedVdpEngine::reset_effects() { sim_.effects().reset(); }

numerics::Matrix BatchedVdpEngine::exact_matmul(const numerics::Matrix& x,
                                                const numerics::Matrix& w) {
  return numerics::matmul_transposed(x, w);
}

numerics::Matrix BatchedVdpEngine::photonic_matmul(const numerics::Matrix& x,
                                                   const numerics::Matrix& w) {
  if (x.cols() != w.cols()) {
    throw std::invalid_argument("BatchedVdpEngine::photonic_matmul: K mismatch");
  }
  const std::size_t batch = x.rows();
  const std::size_t outputs = w.rows();
  const std::size_t k = x.cols();
  numerics::Matrix y(batch, outputs);
  if (batch == 0 || outputs == 0) return y;

  stats_.matmuls += 1;
  stats_.dot_products += batch * outputs;
  stats_.macs += batch * outputs * k;
  stats_.max_batch_rows = std::max(stats_.max_batch_rows, batch);
  if (k == 0) return y;

  const auto& lut = sim_.lut();
  const auto& quant = lut.quantizer();
  const std::size_t bank = lut.bank_size();
  // The effect pipeline renders thermal/FPV drifts, PD noise, and the
  // crosstalk flag once per matmul; every tile reads the same frozen view.
  const bool crosstalk = sim_.effects().crosstalk();
  const xl::photonics::VdpEffects* fx = sim_.effects().vdp_effects();

  // DAC row normalization, once per row instead of once per output element.
  const numerics::Vector sx = numerics::row_abs_max(x);
  const numerics::Vector sw = numerics::row_abs_max(w);

  // Activation-side tables, once per (sample, element): quantized magnitude
  // and the sign bit that is folded into the weight at pair time.
  std::vector<double> a_mag(batch * k);
  std::vector<unsigned char> x_neg(batch * k);
  for (std::size_t b = 0; b < batch; ++b) {
    if (sx[b] == 0.0) continue;  // Row contributes exact zeros.
    const std::span<const double> row = x.row(b);
    for (std::size_t i = 0; i < k; ++i) {
      a_mag[b * k + i] = lut.quantize_magnitude(std::abs(row[i]) / sx[b]);
      x_neg[b * k + i] = row[i] < 0.0 ? 1 : 0;
    }
  }

  // Weight-side tables, once per (output, element): imprint detuning via the
  // per-code LUT, plus the weight sign for the balanced-PD arm split.
  std::vector<double> w_det(outputs * k);
  std::vector<unsigned char> w_neg(outputs * k);
  std::vector<unsigned char> w_zero(outputs * k);
  for (std::size_t o = 0; o < outputs; ++o) {
    if (sw[o] == 0.0) continue;
    const std::span<const double> row = w.row(o);
    for (std::size_t i = 0; i < k; ++i) {
      const double wv = row[i];
      w_det[o * k + i] =
          lut.detune_for_code(i % bank, quant.encode(std::abs(wv) / sw[o]));
      w_neg[o * k + i] = wv < 0.0 ? 1 : 0;
      w_zero[o * k + i] = wv == 0.0 ? 1 : 0;
    }
  }

  const std::size_t row_tiles = (batch + kTile - 1) / kTile;
  const std::size_t col_tiles = (outputs + kTile - 1) / kTile;

  // One flattened (batch-tile, output-tile) pair per work item. Tiles write
  // disjoint y blocks and PD noise is operand-keyed, so execution order and
  // placement are bit-free.
  const auto run_pair_tile = [&](std::size_t f,
                                 xl::photonics::VdpScratch& scratch,
                                 unsigned char* neg) {
    const std::size_t b0 = (f / col_tiles) * kTile;
    const std::size_t b1 = std::min(batch, b0 + kTile);
    const std::size_t o0 = (f % col_tiles) * kTile;
    const std::size_t o1 = std::min(outputs, o0 + kTile);
    for (std::size_t b = b0; b < b1; ++b) {
      if (sx[b] == 0.0) continue;  // y row already zero.
      const double* a_row = a_mag.data() + b * k;
      const unsigned char* xs = x_neg.data() + b * k;
      for (std::size_t o = o0; o < o1; ++o) {
        if (sw[o] == 0.0) continue;
        const double* det_row = w_det.data() + o * k;
        const unsigned char* ws = w_neg.data() + o * k;
        const unsigned char* wz = w_zero.data() + o * k;
        // Fold the activation sign into the weight: the folded weight is
        // negative iff signs differ and the weight is nonzero (a zero
        // weight lands on the positive arm, as in the scalar path).
        for (std::size_t i = 0; i < k; ++i) {
          neg[i] = static_cast<unsigned char>(!wz[i] && (ws[i] != xs[i]));
        }
        y(b, o) = lut.vdp_dot({a_row, k}, {det_row, k}, {neg, k}, crosstalk,
                              scratch, fx) *
                  sx[b] * sw[o];
      }
    }
  };

#if defined(XL_USE_OPENMP) && defined(_OPENMP)
#pragma omp parallel
  {
    xl::photonics::VdpScratch scratch;
    std::vector<unsigned char> neg(k);
#pragma omp for collapse(2) schedule(static)
    for (std::int64_t bt = 0; bt < static_cast<std::int64_t>(row_tiles); ++bt) {
      for (std::int64_t ot = 0; ot < static_cast<std::int64_t>(col_tiles); ++ot) {
        run_pair_tile(static_cast<std::size_t>(bt) * col_tiles +
                          static_cast<std::size_t>(ot),
                      scratch, neg.data());
      }
    }
  }
#else
  auto& pool = thread_pool();  // Sized before the region; hot loop never grows it.
  exec::parallel_for(0, row_tiles * col_tiles, 1,
                     [&](std::size_t f0, std::size_t f1, std::size_t lane) {
                       ThreadScratch& ts = *pool[lane];
                       if (ts.neg.size() < k) ts.neg.resize(k);
                       for (std::size_t f = f0; f < f1; ++f) {
                         run_pair_tile(f, ts.scratch, ts.neg.data());
                       }
                     });
#endif
  return y;
}

PackedGemmWeights BatchedVdpEngine::pack_weights(const float* w, std::size_t outputs,
                                                 std::size_t k) const {
  // Round-trip through a double Matrix so the scale pass runs the exact
  // row_abs_max kernel the legacy overload uses (float -> double conversion
  // is exact, so the packed tables carry the same bytes).
  numerics::Matrix w_m(outputs, k);
  for (std::size_t o = 0; o < outputs; ++o) {
    for (std::size_t i = 0; i < k; ++i) {
      w_m(o, i) = static_cast<double>(w[o * k + i]);
    }
  }

  PackedGemmWeights packed;
  packed.outputs = outputs;
  packed.k = k;
  packed.sw = numerics::row_abs_max(w_m);
  packed.det.resize(outputs * k);
  packed.neg.resize(outputs * k);
  packed.zero.resize(outputs * k);

  const auto& lut = sim_.lut();
  const auto& quant = lut.quantizer();
  const std::size_t bank = lut.bank_size();
  for (std::size_t o = 0; o < outputs; ++o) {
    if (packed.sw[o] == 0.0) continue;  // Row contributes exact zeros.
    const std::span<const double> row = w_m.row(o);
    for (std::size_t i = 0; i < k; ++i) {
      const double wv = row[i];
      packed.det[o * k + i] =
          lut.detune_for_code(i % bank, quant.encode(std::abs(wv) / packed.sw[o]));
      packed.neg[o * k + i] = wv < 0.0 ? 1 : 0;
      packed.zero[o * k + i] = wv == 0.0 ? 1 : 0;
    }
  }
  return packed;
}

std::size_t BatchedVdpEngine::matmul_workspace_bytes(std::size_t batch,
                                                     std::size_t k) const {
  return round64(batch * sizeof(double)) +             // sx
         round64(batch * k * sizeof(double)) +         // a_mag
         round64(batch * k * sizeof(unsigned char));   // x_neg
}

std::size_t BatchedVdpEngine::gemm_table_elems(std::size_t k) const {
  return sim_.lut().arm_table_elems(k, sim_.effects().crosstalk());
}

std::vector<std::unique_ptr<BatchedVdpEngine::ThreadScratch>>&
BatchedVdpEngine::thread_pool() {
  // One scratch entry per lane/thread that can execute tiles: the OpenMP
  // build covers omp_get_max_threads(), the executor build covers the
  // current pool's width (lane ids are always < width()).
#if defined(XL_USE_OPENMP) && defined(_OPENMP)
  const auto want = static_cast<std::size_t>(std::max(1, omp_get_max_threads()));
#else
  const std::size_t want = exec::width();
#endif
  while (thread_scratch_.size() < want) {
    thread_scratch_.push_back(std::make_unique<ThreadScratch>());
  }
  return thread_scratch_;
}

void BatchedVdpEngine::warm_thread_scratch(std::size_t max_k) {
  const std::size_t bank = sim_.lut().bank_size();
  const std::size_t chunks = bank == 0 ? 0 : (max_k + bank - 1) / bank;
  for (auto& entry : thread_pool()) {
    if (entry->neg.size() < max_k) entry->neg.resize(max_k);
    auto& s = entry->scratch;
    if (s.detune_pos.size() < bank) {
      s.detune_pos.resize(bank);
      s.detune_neg.resize(bank);
    }
    if (s.partial.size() < chunks) {
      s.partial.resize(chunks);
      s.noise_key.resize(chunks);
      s.noise_draw.resize(chunks);
    }
  }
}

void BatchedVdpEngine::photonic_matmul(const float* x, std::size_t batch,
                                       std::size_t k, const PackedGemmWeights& w,
                                       double* y, numerics::Arena& workspace,
                                       GemmTableCache& tables) {
  if (w.k != k) {
    throw std::invalid_argument("BatchedVdpEngine::photonic_matmul: K mismatch");
  }
  const std::size_t outputs = w.outputs;
  // Mirrors the Matrix overload's zero-initialized result: skipped rows and
  // columns stay exact zeros.
  std::fill(y, y + batch * outputs, 0.0);
  if (batch == 0 || outputs == 0) return;

  stats_.matmuls += 1;
  stats_.dot_products += batch * outputs;
  stats_.macs += batch * outputs * k;
  stats_.max_batch_rows = std::max(stats_.max_batch_rows, batch);
  if (k == 0) return;

  const auto& lut = sim_.lut();
  const bool crosstalk = sim_.effects().crosstalk();
  const xl::photonics::VdpEffects* fx = sim_.effects().vdp_effects();

  // Activation-side tables live in the caller's arena for the duration of
  // this call only; rewinding keeps the arena's steady-state usage flat.
  const numerics::Arena::Marker marker = workspace.mark();
  const std::span<double> sx = workspace.make_span<double>(batch);
  const std::span<double> a_mag = workspace.make_span<double>(batch * k);
  const std::span<unsigned char> x_neg = workspace.make_span<unsigned char>(batch * k);
  for (std::size_t b = 0; b < batch; ++b) {
    const float* row = x + b * k;
    // Scalar max of |double(float)| equals the row_abs_max kernel on the
    // converted row: float -> double is exact and max is order-free.
    double m = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      m = std::max(m, std::abs(static_cast<double>(row[i])));
    }
    sx[b] = m;
    if (m == 0.0) continue;  // Row contributes exact zeros (tables unread).
    for (std::size_t i = 0; i < k; ++i) {
      const double v = static_cast<double>(row[i]);
      a_mag[b * k + i] = lut.quantize_magnitude(std::abs(v) / m);
      x_neg[b * k + i] = v < 0.0 ? 1 : 0;
    }
  }

  // Cached arm-transmission tables: every ring's two achievable operating
  // points under the frozen effect frame (carrying its imprint detuning vs
  // parked idle). They depend on the weight rows and the drift frame only —
  // not on the activations — and a rendered frame is a pure function of the
  // pipeline's simulated time, so the cache revalidates by time stamp:
  // static pipelines stamp 0.0 and hit forever; time-dependent ones rebuild
  // exactly when the frame has actually moved. In serving steady state
  // (reset_effects per micro-batch) every layer re-runs at the time it was
  // first seen at, so the Lorentzian division pass runs once per plan
  // lifetime instead of (outputs + 1) times per GEMM call.
  const std::size_t te = lut.arm_table_elems(k, crosstalk);
  if (tables.idle.size() != te || tables.carry.size() != outputs * te) {
    throw std::invalid_argument(
        "BatchedVdpEngine::photonic_matmul: GemmTableCache sized for a "
        "different GEMM shape (size with gemm_table_elems)");
  }
  const double frame_stamp =
      sim_.effects().time_dependent() ? sim_.effects().time_us() : 0.0;
  const bool rebuild_tables = tables.stamp != frame_stamp;
  const double* idle = tables.idle.data();
  const double* carry = tables.carry.data();
  if (rebuild_tables) {
    lut.build_idle_table(k, crosstalk, fx, tables.idle.data());
  }

  const std::size_t row_tiles = (batch + kTile - 1) / kTile;
  const std::size_t col_tiles = (outputs + kTile - 1) / kTile;

  // The scratch pool is sized serially, before the parallel region, so the
  // hot loop never touches the pool vector itself.
  auto& pool = thread_pool();

  // Carry-table rebuild, one output row per iteration. Rows are disjoint, so
  // any partition is bit-free; the parallel region's barrier publishes the
  // tables to every thread/lane before the pair loop reads any.
  const auto rebuild_carry_row = [&](std::size_t o) {
    if (w.sw[o] == 0.0) return;  // Row skipped by the pair loop too.
    lut.build_carry_table({w.det.data() + o * k, k}, crosstalk, fx,
                          tables.carry.data() + o * te);
  };
  // One flattened (batch-tile, output-tile) pair per work item, output-major
  // within the tile: output o's carry table is read once and stays cache-hot
  // across every batch row (pairs are independent, noise is operand-keyed —
  // iteration order and placement are bit-free).
  const auto run_pair_tile = [&](std::size_t f, ThreadScratch& ts) {
    xl::photonics::VdpScratch& scratch = ts.scratch;
    unsigned char* neg = ts.neg.data();
    const std::size_t b0 = (f / col_tiles) * kTile;
    const std::size_t b1 = std::min(batch, b0 + kTile);
    const std::size_t o0 = (f % col_tiles) * kTile;
    const std::size_t o1 = std::min(outputs, o0 + kTile);
    for (std::size_t o = o0; o < o1; ++o) {
      if (w.sw[o] == 0.0) continue;
      const double* det_row = w.det.data() + o * k;
      const unsigned char* ws = w.neg.data() + o * k;
      const unsigned char* wz = w.zero.data() + o * k;
      const double* carry_o = carry + o * te;
      for (std::size_t b = b0; b < b1; ++b) {
        if (sx[b] == 0.0) continue;  // y row already zero.
        const double* a_row = a_mag.data() + b * k;
        const unsigned char* xs = x_neg.data() + b * k;
        // Fold the activation sign into the weight, exactly as the
        // Matrix overload does.
        for (std::size_t i = 0; i < k; ++i) {
          neg[i] = static_cast<unsigned char>(!wz[i] && (ws[i] != xs[i]));
        }
        y[b * outputs + o] =
            lut.vdp_dot_tbl({a_row, k}, {det_row, k}, {neg, k}, crosstalk,
                            scratch, fx, carry_o, idle) *
            sx[b] * w.sw[o];
      }
    }
  };

#if defined(XL_USE_OPENMP) && defined(_OPENMP)
#pragma omp parallel
  {
    const auto tid = static_cast<std::size_t>(omp_get_thread_num());
    ThreadScratch& ts = *pool[tid];
    if (ts.neg.size() < k) ts.neg.resize(k);  // No-op after warm_thread_scratch.
    // `rebuild_tables` is computed before the parallel region, so every
    // thread takes the same branch around the worksharing construct.
    if (rebuild_tables) {
#pragma omp for schedule(static)
      for (std::int64_t o = 0; o < static_cast<std::int64_t>(outputs); ++o) {
        rebuild_carry_row(static_cast<std::size_t>(o));
      }
    }
#pragma omp for collapse(2) schedule(static)
    for (std::int64_t bt = 0; bt < static_cast<std::int64_t>(row_tiles); ++bt) {
      for (std::int64_t ot = 0; ot < static_cast<std::int64_t>(col_tiles); ++ot) {
        run_pair_tile(static_cast<std::size_t>(bt) * col_tiles +
                          static_cast<std::size_t>(ot),
                      ts);
      }
    }
  }
#else
  if (rebuild_tables) {
    // parallel_for's return is the barrier: every carry row happens-before
    // the pair loop below on every lane.
    exec::parallel_for(0, outputs, 0,
                       [&](std::size_t o0, std::size_t o1, std::size_t) {
                         for (std::size_t o = o0; o < o1; ++o) {
                           rebuild_carry_row(o);
                         }
                       });
  }
  exec::parallel_for(0, row_tiles * col_tiles, 1,
                     [&](std::size_t f0, std::size_t f1, std::size_t lane) {
                       ThreadScratch& ts = *pool[lane];
                       if (ts.neg.size() < k) ts.neg.resize(k);
                       for (std::size_t f = f0; f < f1; ++f) {
                         run_pair_tile(f, ts);
                       }
                     });
#endif
  if (rebuild_tables) tables.stamp = frame_stamp;
  workspace.rewind(marker);
}

int BatchedVdpEngine::achievable_resolution_bits() const {
  xl::photonics::ResolutionOptions ro;
  ro.q_factor = opts_.q_factor;
  ro.center_wavelength_nm = opts_.center_wavelength_nm;
  ro.dac_bit_cap = opts_.resolution_bits;
  const xl::photonics::WavelengthGrid grid(opts_.mrs_per_bank, opts_.fsr_nm,
                                           opts_.center_wavelength_nm);
  return xl::photonics::analyze_crosstalk(grid, ro).resolution_bits;
}

}  // namespace xl::core
