#include "core/report.hpp"

#include <stdexcept>

namespace xl::core {

PowerBreakdown& PowerBreakdown::operator+=(const PowerBreakdown& rhs) noexcept {
  laser_mw += rhs.laser_mw;
  to_tuning_mw += rhs.to_tuning_mw;
  eo_tuning_mw += rhs.eo_tuning_mw;
  pd_mw += rhs.pd_mw;
  tia_mw += rhs.tia_mw;
  vcsel_mw += rhs.vcsel_mw;
  adc_dac_mw += rhs.adc_dac_mw;
  control_mw += rhs.control_mw;
  return *this;
}

double AcceleratorReport::epb_pj() const noexcept {
  const double bits = bits_per_frame();
  if (bits <= 0.0 || perf.fps <= 0.0) return 0.0;
  // Power [mW] * latency [us] = nJ; convert to pJ (x1000), divide by bits.
  const double energy_pj = power.total_mw() * perf.frame_latency_us * 1e3;
  return energy_pj / bits;
}

double AcceleratorReport::kfps_per_watt() const noexcept {
  const double watts = power.total_w();
  if (watts <= 0.0) return 0.0;
  return perf.fps / 1000.0 / watts;
}

AcceleratorSummary summarize(const std::vector<AcceleratorReport>& reports) {
  if (reports.empty()) throw std::invalid_argument("summarize: no reports");
  AcceleratorSummary s;
  s.accelerator = reports.front().accelerator;
  for (const AcceleratorReport& r : reports) {
    s.avg_epb_pj += r.epb_pj();
    s.avg_kfps_per_watt += r.kfps_per_watt();
    s.avg_power_w += r.power.total_w();
    s.area_mm2 = r.area_mm2;  // Area is model-independent.
  }
  const auto n = static_cast<double>(reports.size());
  s.avg_epb_pj /= n;
  s.avg_kfps_per_watt /= n;
  s.avg_power_w /= n;
  return s;
}

}  // namespace xl::core
