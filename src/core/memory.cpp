#include "core/memory.hpp"

#include <algorithm>
#include <stdexcept>

namespace xl::core {

MemoryReport evaluate_memory(const ModelMapping& mapping, const ArchitectureConfig& config,
                             const PerformanceReport& perf, const MemoryParams& params) {
  config.validate();
  if (params.bandwidth_gbps <= 0.0) {
    throw std::invalid_argument("evaluate_memory: bandwidth must be positive");
  }
  if (params.sram_energy_pj_per_bit < 0.0) {
    throw std::invalid_argument("evaluate_memory: negative access energy");
  }

  const auto bits = static_cast<double>(config.resolution_bits);
  MemoryReport report;
  for (const LayerMapping& layer : mapping.layers) {
    const auto passes = static_cast<double>(layer.total_passes);
    const auto unit = static_cast<double>(layer.unit_size);
    // Every pass imprints one activation chunk and one weight chunk.
    report.activation_bits += passes * unit * bits;
    report.weight_bits += passes * unit * bits;
    // Every pass returns one partial sum; every dot product one result.
    const auto partials = passes + static_cast<double>(layer.dot_products);
    report.partial_sum_bits += partials * bits;

    // Peak buffer: partial sums of one layer in flight — one per active dot
    // product per round across the pool.
    const auto pool = static_cast<double>(layer.unit_pool);
    report.partial_sum_buffer_bits =
        std::max(report.partial_sum_buffer_bits, pool * bits);
  }
  report.traffic_bits_per_frame =
      report.activation_bits + report.weight_bits + report.partial_sum_bits;

  if (perf.frame_latency_us > 0.0) {
    // Gb/s = bits / (us * 1e3).
    report.required_bandwidth_gbps =
        report.traffic_bits_per_frame / (perf.frame_latency_us * 1e3);
    report.sustainable_fraction =
        std::min(1.0, params.bandwidth_gbps / report.required_bandwidth_gbps);
    report.access_energy_pj =
        report.traffic_bits_per_frame * params.sram_energy_pj_per_bit;
    // pJ / us = uW; -> mW.
    report.access_power_mw =
        report.access_energy_pj / perf.frame_latency_us * 1e-3;
  }
  return report;
}

double memory_corrected_latency_us(const PerformanceReport& perf,
                                   const MemoryReport& memory) {
  if (memory.sustainable_fraction <= 0.0) {
    throw std::invalid_argument("memory_corrected_latency_us: zero sustainable fraction");
  }
  return perf.frame_latency_us / memory.sustainable_fraction;
}

}  // namespace xl::core
