// Result structures shared by the CrossLight model and the baseline
// accelerator models, plus the derived metrics (EPB, kFPS/W).
//
// Metric definitions (documented in EXPERIMENTS.md):
//   EPB [pJ/bit]  = (total power * frame latency) / bits-per-frame, with
//                   bits-per-frame = 2 * MACs * resolution (two operands per
//                   multiply-accumulate enter the photonic datapath).
//   kFPS/W        = (FPS / 1000) / total power [W].
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace xl::core {

/// Itemized electrical power (mW).
struct PowerBreakdown {
  double laser_mw = 0.0;       ///< Laser wall-plug power (Eq. 7 / efficiency).
  double to_tuning_mw = 0.0;   ///< Static thermo-optic trim (FPV + crosstalk).
  double eo_tuning_mw = 0.0;   ///< Dynamic EO imprint power.
  double pd_mw = 0.0;          ///< Photodetectors.
  double tia_mw = 0.0;         ///< Transimpedance amplifiers.
  double vcsel_mw = 0.0;       ///< Partial-sum re-emission VCSELs.
  double adc_dac_mw = 0.0;     ///< Transceiver arrays.
  double control_mw = 0.0;     ///< Digital control / buffering.

  [[nodiscard]] double total_mw() const noexcept {
    return laser_mw + to_tuning_mw + eo_tuning_mw + pd_mw + tia_mw + vcsel_mw +
           adc_dac_mw + control_mw;
  }
  [[nodiscard]] double total_w() const noexcept { return total_mw() * 1e-3; }

  PowerBreakdown& operator+=(const PowerBreakdown& rhs) noexcept;
};

/// Latency/throughput summary for one model on one accelerator.
struct PerformanceReport {
  double cycle_ns = 0.0;          ///< Pipelined VDP issue interval.
  std::size_t batch = 1;          ///< Samples per scheduled batch.
  double frame_latency_us = 0.0;  ///< End-to-end latency of one batch.
  double fps = 0.0;               ///< Samples per second (batch / latency).
};

/// Full evaluation of one (accelerator, model) pair.
struct AcceleratorReport {
  std::string accelerator;
  std::string model;
  PerformanceReport perf;
  PowerBreakdown power;
  double area_mm2 = 0.0;
  int resolution_bits = 0;
  std::size_t macs_per_frame = 0;

  [[nodiscard]] double bits_per_frame() const noexcept {
    return 2.0 * static_cast<double>(macs_per_frame) * resolution_bits;
  }
  /// Energy per bit, pJ.
  [[nodiscard]] double epb_pj() const noexcept;
  /// Performance per watt, kiloFPS / W.
  [[nodiscard]] double kfps_per_watt() const noexcept;
};

/// Average EPB / kFPS/W over the reports of one accelerator (Table III rows).
struct AcceleratorSummary {
  std::string accelerator;
  double avg_epb_pj = 0.0;
  double avg_kfps_per_watt = 0.0;
  double avg_power_w = 0.0;
  double area_mm2 = 0.0;
};

[[nodiscard]] AcceleratorSummary summarize(const std::vector<AcceleratorReport>& reports);

}  // namespace xl::core
