#include "core/accelerator.hpp"

namespace xl::core {

CrossLightAccelerator::CrossLightAccelerator(ArchitectureConfig config)
    : config_(std::move(config)) {
  config_.validate();
  area_ = evaluate_area(config_);
}

AcceleratorReport CrossLightAccelerator::evaluate(const xl::dnn::ModelSpec& model) const {
  const ModelMapping mapping = map_model(model, config_);
  const PerformanceReport perf = evaluate_performance(mapping, config_);
  const PowerBreakdown power = evaluate_power(mapping, config_, perf);

  AcceleratorReport report;
  report.accelerator = variant_name(config_.variant);
  report.model = model.name;
  report.perf = perf;
  report.power = power;
  report.area_mm2 = area_.total_mm2();
  report.resolution_bits = config_.resolution_bits;
  report.macs_per_frame = mapping.total_macs;
  return report;
}

std::vector<AcceleratorReport> CrossLightAccelerator::evaluate_all(
    const std::vector<xl::dnn::ModelSpec>& models) const {
  std::vector<AcceleratorReport> reports;
  reports.reserve(models.size());
  for (const auto& m : models) reports.push_back(evaluate(m));
  return reports;
}

ModelMapping CrossLightAccelerator::map(const xl::dnn::ModelSpec& model) const {
  return map_model(model, config_);
}

}  // namespace xl::core
