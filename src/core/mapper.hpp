// Mapping DNN layers onto VDP units (Section IV-C.1).
//
// Every CONV/FC layer is a set of dot products; each dot product of length L
// decomposes into ceil(L / unit_size) passes on one VDP unit, whose partial
// sums accumulate through the VCSEL re-emission stage. Passes are then
// scheduled round-robin over the unit pool for the layer's kind.
#pragma once

#include <vector>

#include "core/config.hpp"
#include "dnn/layer_spec.hpp"

namespace xl::core {

/// Work accounting for one accelerated layer.
struct LayerMapping {
  std::string layer_name;
  bool is_conv = false;             ///< CONV pool vs FC pool.
  std::size_t dot_products = 0;     ///< Dot products in the layer.
  std::size_t dot_length = 0;       ///< Elements per dot product.
  std::size_t passes_per_dot = 0;   ///< ceil(dot_length / unit_size).
  std::size_t total_passes = 0;     ///< dot_products * passes_per_dot.
  std::size_t unit_pool = 0;        ///< n or m.
  std::size_t unit_size = 0;        ///< N or K.
  /// Pipelined rounds over the unit pool: ceil(total_passes / pool).
  std::size_t rounds = 0;
  std::size_t macs = 0;             ///< MAC operations in the layer.
};

/// Work accounting for a whole model.
struct ModelMapping {
  std::string model_name;
  std::vector<LayerMapping> layers;
  std::size_t total_macs = 0;
  std::size_t total_passes = 0;
  std::size_t total_rounds = 0;

  [[nodiscard]] std::size_t conv_passes() const noexcept;
  [[nodiscard]] std::size_t fc_passes() const noexcept;
};

/// Map every accelerated layer of `model` onto the configuration's unit
/// pools. Siamese branches are accounted `model.branches` times.
[[nodiscard]] ModelMapping map_model(const xl::dnn::ModelSpec& model,
                                     const ArchitectureConfig& config);

}  // namespace xl::core
