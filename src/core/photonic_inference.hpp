// Whole-model functional photonic inference on the batched execution engine.
//
// Executes a trained dnn::Network with every CONV and FC layer lowered to
// batched photonic GEMMs on BatchedVdpEngine (quantizers, Lorentzian MR
// transmissions, inter-channel crosstalk, balanced photodetection) while
// pooling/activations run electronically — the hardware/software split of
// Fig. 3. CONV layers go through the shared dnn::im2col lowering, so a whole
// batch of images becomes one patch-matrix GEMM; FC layers map directly.
// Layer routing uses the LayerKind taxonomy instead of dynamic_cast chains.
//
// infer_batch() accepts any batch size (the legacy single-sample infer()
// wrapper is gone; pass a batch of one). The exact software reference pass
// per layer (for max_abs_layer_error) is opt-in via set_track_layer_error —
// accuracy sweeps no longer pay the 2x reference compute.
//
// When the engine's effect pipeline has a thermal stage, simulated time
// advances by one thermal dt per accelerated layer, so drift evolves across
// the depth of the network (and across successive batches) exactly as the
// chip would experience it.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/batched_vdp_engine.hpp"
#include "core/vdp_simulator.hpp"
#include "dnn/datasets.hpp"
#include "dnn/network.hpp"

namespace xl::dnn {
class Dense;
class Conv2d;
}  // namespace xl::dnn

namespace xl::core {

class ExecutionPlan;

/// Non-owning view of one caller-held block of input samples (row-major,
/// `rows` consecutive samples). Planned execution gathers a micro-batch
/// straight from these views — no intermediate Tensor per request.
struct RowViewIn {
  const float* data = nullptr;
  std::size_t rows = 0;
};

/// Destination view paired 1:1 with a RowViewIn: the corresponding output
/// rows are scattered straight into the caller's buffer.
struct RowViewOut {
  float* data = nullptr;
  std::size_t rows = 0;
};

struct PhotonicInferenceStats {
  std::size_t photonic_dot_products = 0;
  std::size_t photonic_macs = 0;
  std::size_t photonic_matmuls = 0;    ///< One per accelerated layer per batch.
  std::size_t samples_inferred = 0;
  std::size_t batches_inferred = 0;
  /// vs float reference, pre-activation; only accumulated when
  /// track_layer_error is enabled (opt-in: it costs a full software forward
  /// pass per accelerated layer).
  double max_abs_layer_error = 0.0;

  /// Accumulate another engine's counters into this one (counter sums, max
  /// of the layer errors). The serving runtime merges per-shard stats
  /// through this under its stats lock, so shard engines never share
  /// mutable counters across threads.
  void merge(const PhotonicInferenceStats& other) noexcept {
    photonic_dot_products += other.photonic_dot_products;
    photonic_macs += other.photonic_macs;
    photonic_matmuls += other.photonic_matmuls;
    samples_inferred += other.samples_inferred;
    batches_inferred += other.batches_inferred;
    if (other.max_abs_layer_error > max_abs_layer_error) {
      max_abs_layer_error = other.max_abs_layer_error;
    }
  }
};

/// Runs a network photonically. The network is inspected layer by layer;
/// Conv2d and Dense layers are lowered to batched VDP GEMMs.
class PhotonicInferenceEngine {
 public:
  /// `network` must outlive the engine. Layers outside the accelerated set
  /// (kConv/kDense) run electronically via their own forward().
  PhotonicInferenceEngine(dnn::Network& network, const VdpSimOptions& options = {});
  ~PhotonicInferenceEngine();

  /// Photonic logits for a whole batch (batch dimension N >= 1). Every
  /// accelerated layer issues one photonic GEMM over the batch. When planned
  /// execution is enabled (set_plan_enabled) and no per-layer error tracking
  /// is on, the batch routes through the cached ExecutionPlan — bit-identical
  /// output, zero steady-state heap allocation inside the engine.
  [[nodiscard]] dnn::Tensor infer_batch(const dnn::Tensor& batch);

  /// Enable routing of infer_batch / infer_views through a cached
  /// ExecutionPlan (off by default; serving turns it on per shard engine).
  /// Mutating the network's weights afterwards requires invalidate_plan().
  void set_plan_enabled(bool enabled) noexcept { plan_enabled_ = enabled; }
  [[nodiscard]] bool plan_enabled() const noexcept { return plan_enabled_; }

  /// Compile (or recompile) the plan for (sample_shape, max_batch) and
  /// return it. sample_shape's batch dimension is ignored (treated as 1).
  ExecutionPlan& prepare_plan(const dnn::Shape& sample_shape, std::size_t max_batch);

  /// Drop the cached plan (required after mutating layer weights/topology;
  /// the next planned call recompiles).
  void invalidate_plan() noexcept;

  /// The cached plan, or nullptr when none is compiled.
  [[nodiscard]] const ExecutionPlan* plan() const noexcept { return plan_.get(); }

  /// Planned inference over caller-held row views: inputs are gathered from
  /// `inputs` and logits scattered to the paired `outputs` with no
  /// intermediate tensors. Requires a compiled plan (prepare_plan); the plan
  /// recompiles automatically when the total row count exceeds its max
  /// batch. Effects advance exactly as infer_batch does; bit-identical
  /// logits to the legacy path.
  void infer_views(std::span<const RowViewIn> inputs,
                   std::span<const RowViewOut> outputs);

  /// Run only the layer range [begin, end) of the network on `batch`
  /// (end is clamped to layer_count()). The fleet's model-parallel path
  /// splits one forward pass into trunk / boundary-tile / tail segments:
  /// because every accelerated layer advances simulated time identically
  /// whichever engine executes it, stitching ranges back together is
  /// bit-identical to one infer_batch() call — provided the caller lines
  /// the engines up on the same effect timeline first (reset_effects +
  /// one advance per accelerated layer already executed). Sample/batch
  /// counters accrue only on full passes (begin == 0 && end >= count).
  [[nodiscard]] dnn::Tensor infer_range(const dnn::Tensor& batch,
                                        std::size_t begin_layer,
                                        std::size_t end_layer);

  /// Number of accelerated (kConv/kDense) layers in [0, end_layer) — the
  /// count of thermal dt steps a range execution advances. Used by
  /// model-parallel peers to fast-forward their effect timeline to the
  /// partition boundary.
  [[nodiscard]] std::size_t accelerated_layers_before(std::size_t end_layer) const;

  /// Classification accuracy over a dataset subset [0, count), evaluated in
  /// batches of eval_batch_size().
  [[nodiscard]] double evaluate_accuracy(const dnn::Dataset& data, std::size_t count);

  /// Enable/disable the exact per-layer software reference pass feeding
  /// stats().max_abs_layer_error. Off by default.
  void set_track_layer_error(bool enabled) noexcept { track_layer_error_ = enabled; }
  [[nodiscard]] bool track_layer_error() const noexcept { return track_layer_error_; }

  /// Batch size used by evaluate_accuracy (default 16).
  void set_eval_batch_size(std::size_t n);
  [[nodiscard]] std::size_t eval_batch_size() const noexcept { return eval_batch_; }

  [[nodiscard]] const PhotonicInferenceStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = PhotonicInferenceStats{}; }

  [[nodiscard]] const BatchedVdpEngine& engine() const noexcept { return engine_; }
  /// Mutable engine access (e.g. BatchedVdpEngine::reset_effects between
  /// experiment arms).
  [[nodiscard]] BatchedVdpEngine& engine() noexcept { return engine_; }

  /// The network this engine executes (same reference passed at construction).
  [[nodiscard]] dnn::Network& network() noexcept { return network_; }

 private:
  friend class ExecutionPlan;  ///< Plans accrue the same stats counters.
  [[nodiscard]] dnn::Tensor run_dense_photonic(const dnn::Tensor& input,
                                               dnn::Dense& layer);
  [[nodiscard]] dnn::Tensor run_conv_photonic(const dnn::Tensor& input,
                                              dnn::Conv2d& layer);
  void accumulate_layer_error(const dnn::Tensor& photonic, const dnn::Tensor& reference);

  dnn::Network& network_;
  BatchedVdpEngine engine_;
  PhotonicInferenceStats stats_;
  bool track_layer_error_ = false;
  std::size_t eval_batch_ = 16;
  bool plan_enabled_ = false;
  std::unique_ptr<ExecutionPlan> plan_;  ///< Cached compiled plan (or null).
};

}  // namespace xl::core
