// Whole-model functional photonic inference.
//
// Executes a trained dnn::Network sample-by-sample with every CONV and FC
// dot product routed through the signal-level VdpSimulator (quantizers,
// Lorentzian MR transmissions, inter-channel crosstalk, balanced
// photodetection) while pooling/activations run electronically — exactly
// the hardware/software split of Fig. 3. This is the strongest functional
// fidelity check the repository offers: trained-model accuracy measured on
// the simulated analog datapath.
#pragma once

#include <vector>

#include "core/vdp_simulator.hpp"
#include "dnn/datasets.hpp"
#include "dnn/network.hpp"

namespace xl::dnn {
class Dense;
class Conv2d;
}  // namespace xl::dnn

namespace xl::core {

struct PhotonicInferenceStats {
  std::size_t photonic_dot_products = 0;
  std::size_t photonic_macs = 0;
  double max_abs_layer_error = 0.0;  ///< vs float reference, pre-activation.
};

/// Runs a network photonically. The network is inspected layer by layer;
/// Conv2d and Dense layers are lowered to VDP dot products.
class PhotonicInferenceEngine {
 public:
  /// `network` must outlive the engine. Throws when the network contains a
  /// layer kind the engine cannot map (none in this repository's zoo).
  PhotonicInferenceEngine(dnn::Network& network, const VdpSimOptions& options = {});

  /// Photonic logits for one sample (batch dimension must be 1).
  [[nodiscard]] dnn::Tensor infer(const dnn::Tensor& sample);

  /// Classification accuracy over a dataset subset [0, count).
  [[nodiscard]] double evaluate_accuracy(const dnn::Dataset& data, std::size_t count);

  [[nodiscard]] const PhotonicInferenceStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = PhotonicInferenceStats{}; }

 private:
  [[nodiscard]] dnn::Tensor run_dense_photonic(const dnn::Tensor& input,
                                               dnn::Dense& layer);
  [[nodiscard]] dnn::Tensor run_conv_photonic(const dnn::Tensor& input,
                                              dnn::Conv2d& layer);

  dnn::Network& network_;
  VdpSimulator simulator_;
  PhotonicInferenceStats stats_;
};

}  // namespace xl::core
