// ExecutionPlan — the cached, arena-backed inference program of one engine.
//
// A PhotonicInferenceEngine walks its network generically on every
// infer_batch() call: shape vectors, im2col patch tensors, operand Matrix
// copies and per-layer output Tensors are all rebuilt per request. A compiled
// ExecutionPlan hoists everything that depends only on (network, sample
// shape, max batch) out of the hot path:
//
//   * per accelerated layer, the weight-side GEMM operand is packed once
//     (BatchedVdpEngine::pack_weights) — quantized detunings, sign/zero
//     tables, DAC row scales;
//   * per CONV layer, the im2col tap indices are precomputed into a gather
//     map (dnn::plan_im2col) applied per sample with no index arithmetic
//     rediscovery;
//   * every electronic layer resolves its dispatch at compile time: identity
//     layers (dropout, flatten) vanish, eval_into-capable layers write
//     straight into the ping-pong activation buffers, anything else falls
//     back to Layer::forward (counted in PlanStats::fallback_layers);
//   * all intermediate storage — activations, patches, GEMM outputs, the
//     engine's per-call scratch and each GEMM step's persistent
//     arm-transmission table cache (GemmTableCache, revalidated by effect
//     time stamp) — lives in one bump-pointer numerics::Arena sized at
//     compile time.
//
// execute() gathers rows directly from caller-held RowViewIn views, runs the
// steps, and scatters logits to the paired RowViewOut views: after the first
// (warm-up) execution the steady state performs zero heap allocations.
//
// Bit-identity contract: for identical inputs, effect timeline and weights,
// execute() produces exactly the bytes of the legacy infer_batch() path —
// plans change where bytes live, never what is computed
// (tests/test_hotpath.cpp enforces this across effect sets, batch shapes and
// thread counts).
//
// Thread safety: none. One plan per engine, driven by one worker at a time.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/batched_vdp_engine.hpp"
#include "core/photonic_inference.hpp"
#include "dnn/im2col.hpp"
#include "dnn/tensor.hpp"
#include "numerics/arena.hpp"

namespace xl::core {

/// Compile-time and run-time telemetry of one plan.
struct PlanStats {
  std::size_t executions = 0;       ///< execute() calls served.
  std::size_t planned_layers = 0;   ///< Layers compiled to allocation-free steps.
  std::size_t fallback_layers = 0;  ///< Layers still routed through forward().
  std::size_t max_batch = 0;        ///< Row capacity this plan was compiled for.
};

class ExecutionPlan {
 public:
  /// Compile the plan for `engine`'s network over samples of `sample_shape`
  /// (batch dimension ignored) and micro-batches of up to `max_batch` rows.
  /// Packs weights, precomputes gather maps, and carves all workspaces from
  /// the plan's arena. Throws std::invalid_argument on unusable shapes.
  ExecutionPlan(PhotonicInferenceEngine& engine, const dnn::Shape& sample_shape,
                std::size_t max_batch);

  ExecutionPlan(const ExecutionPlan&) = delete;
  ExecutionPlan& operator=(const ExecutionPlan&) = delete;

  /// Run the compiled program over the concatenation of `inputs` (paired
  /// 1:1 with `outputs`; each pair must agree on rows). Total rows must be
  /// in [1, max_batch()] — the engine's infer_views recompiles on growth
  /// before calling this. Advances the engine's effect timeline exactly as
  /// the legacy path does (one thermal dt per accelerated layer) and accrues
  /// the same engine stats.
  void execute(std::span<const RowViewIn> inputs,
               std::span<const RowViewOut> outputs);

  [[nodiscard]] const dnn::Shape& sample_shape() const noexcept {
    return sample_shape_;
  }
  [[nodiscard]] const dnn::Shape& output_sample_shape() const noexcept {
    return output_sample_shape_;
  }
  /// Floats per input sample / per output sample.
  [[nodiscard]] std::size_t sample_numel() const noexcept { return sample_numel_; }
  [[nodiscard]] std::size_t output_numel() const noexcept { return output_numel_; }
  [[nodiscard]] std::size_t max_batch() const noexcept { return max_batch_; }

  [[nodiscard]] const PlanStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const numerics::ArenaStats& arena_stats() const noexcept {
    return arena_.stats();
  }

 private:
  enum class StepKind : unsigned char {
    kDenseGemm,  ///< Photonic FC GEMM + bias.
    kConvGemm,   ///< Gather -> photonic patch GEMM -> scatter + bias.
    kView,       ///< inference_identity(): shape-only, no byte moves.
    kEval,       ///< supports_eval_into(): in-place-capable electronic layer.
    kFallback,   ///< Generic Layer::forward (allocates; counted).
  };

  struct Step {
    StepKind kind = StepKind::kFallback;
    dnn::Layer* layer = nullptr;
    dnn::Shape in_shape;   ///< Batch-1 basis shape entering the layer.
    dnn::Shape out_shape;  ///< Batch-1 basis shape leaving the layer.
    std::size_t in_numel = 0;   ///< Per-sample floats in.
    std::size_t out_numel = 0;  ///< Per-sample floats out.
    // kDenseGemm / kConvGemm:
    PackedGemmWeights packed;
    GemmTableCache tables;  ///< Arena-carved arm-transmission table cache.
    std::size_t gemm_k = 0;        ///< Operand length (in features / patch len).
    std::size_t gemm_outputs = 0;  ///< Output features / conv out channels.
    // kConvGemm only:
    dnn::Im2colPlan gather;
    std::size_t pixels = 0;  ///< h_out * w_out (patch rows per sample).
  };

  // GEMM steps are non-const: the engine revalidates/restamps the step's
  // table cache in place.
  void run_dense(Step& step, std::size_t rows, const float* in, float* out);
  void run_conv(Step& step, std::size_t rows, const float* in, float* out);
  void run_fallback(const Step& step, std::size_t rows, const float* in, float* out);

  PhotonicInferenceEngine& engine_;
  dnn::Shape sample_shape_;         ///< Batch-1 basis input shape.
  dnn::Shape output_sample_shape_;  ///< Batch-1 basis output shape.
  std::size_t sample_numel_ = 0;
  std::size_t output_numel_ = 0;
  std::size_t max_batch_ = 0;
  double layer_dt_us_ = 0.0;  ///< Thermal dt per accelerated layer.
  std::vector<Step> steps_;
  PlanStats stats_;

  numerics::Arena arena_;
  // Arena-carved persistent workspaces (spans into arena_; never freed).
  std::span<float> act_a_;
  std::span<float> act_b_;
  std::span<float> patches_;  ///< Gathered im2col rows (conv steps only).
  std::span<double> y_;       ///< GEMM output (largest step).

  dnn::Shape shape_tmp_;  ///< Pre-reserved scratch for eval_into shapes.
};

}  // namespace xl::core
