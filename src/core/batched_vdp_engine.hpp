// Batched photonic execution engine: whole GEMMs on the simulated VDP
// datapath.
//
// Where VdpSimulator answers "what does one analog dot product compute",
// this engine answers the same question for an entire matrix product
// Y = X * W^T (a batch of activations against a layer's weight rows, or an
// im2col patch matrix against conv filters). Per-call work that the scalar
// path repeats for every output element is hoisted to once per operand:
//   * DAC row normalization (per-row max magnitudes via numerics kernels),
//   * activation quantization, once per (sample, element),
//   * weight quantization and the weight->detuning imprint inversion, once
//     per (output, element) via the photonics::MrBankTransferLut code LUT.
// The inner chunked kernel is *shared* with VdpSimulator, so every output
// element is bit-identical to the scalar sim.dot(X.row(b), W.row(o)) —
// verified by tests/test_batched_vdp_engine.cpp.
//
// Output tiles are processed in parallel on the xl::exec work-stealing pool
// (or OpenMP under -DXL_USE_OPENMP=ON); each element is owned by exactly one
// tile, so results are deterministic for any thread count and steal order.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/vdp_simulator.hpp"
#include "numerics/aligned.hpp"
#include "numerics/arena.hpp"
#include "numerics/matrix.hpp"
#include "photonics/bank_lut.hpp"

namespace xl::core {

/// Work counters for one engine (accumulated across photonic_matmul calls).
struct BatchedVdpStats {
  std::size_t matmuls = 0;        ///< photonic_matmul invocations.
  std::size_t dot_products = 0;   ///< Output elements simulated.
  std::size_t macs = 0;           ///< Multiply-accumulates simulated.
  std::size_t max_batch_rows = 0; ///< Largest activation batch seen.
};

/// Weight-side operand of a planned GEMM, packed once at plan-compile time:
/// per-output DAC scales, quantized imprint detunings, and the sign/zero
/// tables the hot loop folds activation signs against. Packing hoists the
/// entire weight-quantization pass out of the per-request path.
struct PackedGemmWeights {
  std::size_t outputs = 0;
  std::size_t k = 0;
  numerics::Vector sw;             ///< Per-output row scale (row_abs_max).
  numerics::AlignedVector det;     ///< outputs * k imprint detunings.
  std::vector<unsigned char> neg;  ///< Weight sign bits.
  std::vector<unsigned char> zero; ///< Exact-zero weight flags.
};

/// Caller-owned cache of the arm transmission tables one planned GEMM
/// consumes (photonics::MrBankTransferLut::build_carry_table/
/// build_idle_table). The tables depend only on the packed weights and the
/// rendered effect frame — never on activations — and a frame is a pure
/// function of the pipeline's simulated time, so the engine revalidates by
/// time stamp: under the serving contract (one reset_effects per
/// micro-batch) every layer executes at the same simulated time on every
/// batch and the Lorentzian division pass runs once, not once per call.
/// Spans are carved from the plan arena: carry holds outputs *
/// gemm_table_elems(k) doubles, idle gemm_table_elems(k).
struct GemmTableCache {
  std::span<double> carry;
  std::span<double> idle;
  double stamp = -1.0;  ///< Pipeline time of the cached frame; < 0 = empty.
};

class BatchedVdpEngine {
 public:
  /// Validates `opts` (VdpSimOptions::validate) and builds the shared LUT
  /// plus the non-ideality pipeline selected by opts.effects.
  explicit BatchedVdpEngine(const VdpSimOptions& opts = {});

  /// Photonic Y = X * W^T: X is (batch x K) activations, W is (outputs x K)
  /// weight rows, Y is (batch x outputs). Rows are normalized independently
  /// (per-sample sx, per-output sw), matching the scalar simulator's
  /// per-dot DAC scaling. Throws std::invalid_argument on shape mismatch.
  [[nodiscard]] numerics::Matrix photonic_matmul(const numerics::Matrix& x,
                                                 const numerics::Matrix& w);

  /// Exact electronic reference for the same GEMM shape (tiled kernel).
  [[nodiscard]] static numerics::Matrix exact_matmul(const numerics::Matrix& x,
                                                     const numerics::Matrix& w);

  /// Quantize a float row-major (outputs x k) weight matrix into the packed
  /// form consumed by the caller-provided-output photonic_matmul overload.
  /// The pack reproduces the Matrix overload's weight pass exactly (same
  /// row_abs_max kernel, same detune/sign/zero tables), so planned GEMMs are
  /// bit-identical to the legacy path.
  [[nodiscard]] PackedGemmWeights pack_weights(const float* w, std::size_t outputs,
                                               std::size_t k) const;

  /// Planned photonic Y = X * W^T with a caller-provided output buffer.
  ///
  /// Contract (the zero-allocation hot path):
  ///   * `x` is row-major (batch x k) float activations; `y` must hold
  ///     batch * outputs doubles and is fully overwritten.
  ///   * Transient activation tables (sx, a_mag, x_neg) come from `workspace`
  ///     via a mark/rewind pair — the arena's steady-state usage is flat and
  ///     no heap allocation occurs once thread scratch is warm (see
  ///     warm_thread_scratch); size the arena with matmul_workspace_bytes.
  ///   * `tables` holds this GEMM's arm-transmission tables (idle sized
  ///     gemm_table_elems(k), carry sized outputs * gemm_table_elems(k)).
  ///     The engine revalidates the cache against the current effect frame's
  ///     time stamp and rebuilds only on mismatch — under the serving
  ///     contract (reset_effects per micro-batch) the Lorentzian division
  ///     pass runs once per plan lifetime, not once per call.
  ///   * `y`, `workspace`, and `tables` must not alias `x`; calls on the
  ///     same engine must not overlap (the per-thread scratch pool is
  ///     engine-owned).
  ///   * Bit-identity: for identical operand values this computes exactly
  ///     the bytes of the Matrix overload — plans change where bytes live
  ///     and when tables are built, never what is computed.
  void photonic_matmul(const float* x, std::size_t batch, std::size_t k,
                       const PackedGemmWeights& w, double* y,
                       numerics::Arena& workspace, GemmTableCache& tables);

  /// Upper bound of the arena bytes one planned photonic_matmul call bumps
  /// transiently: the activation tables (sx, a_mag, x_neg). ExecutionPlan
  /// reserves this per GEMM step so the steady state never regrows the
  /// arena. Table storage is separate and persistent — see gemm_table_elems.
  [[nodiscard]] std::size_t matmul_workspace_bytes(std::size_t batch,
                                                   std::size_t k) const;

  /// Elements of one arm-transmission table for a k-element operand under
  /// this engine's crosstalk configuration. A GemmTableCache for a
  /// (k, outputs) GEMM needs gemm_table_elems(k) idle doubles plus
  /// outputs * gemm_table_elems(k) carry doubles.
  [[nodiscard]] std::size_t gemm_table_elems(std::size_t k) const;

  /// Pre-size the per-thread vdp_dot scratch (and sign-fold rows) for
  /// operand length `max_k`, so the first planned matmul after plan compile
  /// is already allocation-free. Serial; call outside the hot path.
  void warm_thread_scratch(std::size_t max_k);

  [[nodiscard]] const VdpSimOptions& options() const noexcept { return opts_; }
  /// Precomputed transfer tables (shared kernel with VdpSimulator).
  [[nodiscard]] const xl::photonics::MrBankTransferLut& lut() const noexcept {
    return sim_.lut();
  }
  /// Scalar reference simulator over the same bank (for parity checks).
  [[nodiscard]] const VdpSimulator& scalar_simulator() const noexcept { return sim_; }

  /// The non-ideality pipeline driving this engine's operating points
  /// (shared with the scalar simulator, so parity holds under any effects).
  [[nodiscard]] const EffectPipeline& effects() const noexcept;

  /// Advance the pipeline's simulated time (thermal evolution); called once
  /// per accelerated layer by PhotonicInferenceEngine.
  void advance_effects(double dt_us);
  /// Return the pipeline to its boot (t = 0) state.
  void reset_effects();

  /// Eq. 8-10 achievable resolution of this engine's WDM comb, from the
  /// precomputed crosstalk row sums (Section V-B).
  [[nodiscard]] int achievable_resolution_bits() const;

  [[nodiscard]] const BatchedVdpStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = BatchedVdpStats{}; }

 private:
  /// Per-lane (executor) / per-thread (OpenMP) reusable buffers for the
  /// planned GEMM path. Heap
  /// pointers (not values) so entries never move when the pool grows and
  /// false sharing between threads is avoided.
  struct ThreadScratch {
    xl::photonics::VdpScratch scratch;
    std::vector<unsigned char> neg;  ///< Folded-sign row (>= k entries).
  };

  /// Grow the pool to the current lane/thread budget (exec::width(), or
  /// omp_get_max_threads() under XL_USE_OPENMP); returns it.
  std::vector<std::unique_ptr<ThreadScratch>>& thread_pool();

  VdpSimOptions opts_;
  VdpSimulator sim_;  ///< Owns the grid + LUT; also the scalar fallback.
  BatchedVdpStats stats_;
  std::vector<std::unique_ptr<ThreadScratch>> thread_scratch_;
};

}  // namespace xl::core
