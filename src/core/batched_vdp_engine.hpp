// Batched photonic execution engine: whole GEMMs on the simulated VDP
// datapath.
//
// Where VdpSimulator answers "what does one analog dot product compute",
// this engine answers the same question for an entire matrix product
// Y = X * W^T (a batch of activations against a layer's weight rows, or an
// im2col patch matrix against conv filters). Per-call work that the scalar
// path repeats for every output element is hoisted to once per operand:
//   * DAC row normalization (per-row max magnitudes via numerics kernels),
//   * activation quantization, once per (sample, element),
//   * weight quantization and the weight->detuning imprint inversion, once
//     per (output, element) via the photonics::MrBankTransferLut code LUT.
// The inner chunked kernel is *shared* with VdpSimulator, so every output
// element is bit-identical to the scalar sim.dot(X.row(b), W.row(o)) —
// verified by tests/test_batched_vdp_engine.cpp.
//
// Output tiles are processed in parallel with OpenMP; each element is owned
// by exactly one iteration, so results are deterministic for any thread
// count.
#pragma once

#include <cstddef>

#include "core/vdp_simulator.hpp"
#include "numerics/matrix.hpp"
#include "photonics/bank_lut.hpp"

namespace xl::core {

/// Work counters for one engine (accumulated across photonic_matmul calls).
struct BatchedVdpStats {
  std::size_t matmuls = 0;        ///< photonic_matmul invocations.
  std::size_t dot_products = 0;   ///< Output elements simulated.
  std::size_t macs = 0;           ///< Multiply-accumulates simulated.
  std::size_t max_batch_rows = 0; ///< Largest activation batch seen.
};

class BatchedVdpEngine {
 public:
  /// Validates `opts` (VdpSimOptions::validate) and builds the shared LUT
  /// plus the non-ideality pipeline selected by opts.effects.
  explicit BatchedVdpEngine(const VdpSimOptions& opts = {});

  /// Photonic Y = X * W^T: X is (batch x K) activations, W is (outputs x K)
  /// weight rows, Y is (batch x outputs). Rows are normalized independently
  /// (per-sample sx, per-output sw), matching the scalar simulator's
  /// per-dot DAC scaling. Throws std::invalid_argument on shape mismatch.
  [[nodiscard]] numerics::Matrix photonic_matmul(const numerics::Matrix& x,
                                                 const numerics::Matrix& w);

  /// Exact electronic reference for the same GEMM shape (tiled kernel).
  [[nodiscard]] static numerics::Matrix exact_matmul(const numerics::Matrix& x,
                                                     const numerics::Matrix& w);

  [[nodiscard]] const VdpSimOptions& options() const noexcept { return opts_; }
  /// Precomputed transfer tables (shared kernel with VdpSimulator).
  [[nodiscard]] const xl::photonics::MrBankTransferLut& lut() const noexcept {
    return sim_.lut();
  }
  /// Scalar reference simulator over the same bank (for parity checks).
  [[nodiscard]] const VdpSimulator& scalar_simulator() const noexcept { return sim_; }

  /// The non-ideality pipeline driving this engine's operating points
  /// (shared with the scalar simulator, so parity holds under any effects).
  [[nodiscard]] const EffectPipeline& effects() const noexcept;

  /// Advance the pipeline's simulated time (thermal evolution); called once
  /// per accelerated layer by PhotonicInferenceEngine.
  void advance_effects(double dt_us);
  /// Return the pipeline to its boot (t = 0) state.
  void reset_effects();

  /// Eq. 8-10 achievable resolution of this engine's WDM comb, from the
  /// precomputed crosstalk row sums (Section V-B).
  [[nodiscard]] int achievable_resolution_bits() const;

  [[nodiscard]] const BatchedVdpStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = BatchedVdpStats{}; }

 private:
  VdpSimOptions opts_;
  VdpSimulator sim_;  ///< Owns the grid + LUT; also the scalar fallback.
  BatchedVdpStats stats_;
};

}  // namespace xl::core
