#include "core/mapper.hpp"

#include <stdexcept>

namespace xl::core {

using xl::dnn::LayerKind;
using xl::dnn::LayerSpec;
using xl::dnn::ModelSpec;

std::size_t ModelMapping::conv_passes() const noexcept {
  std::size_t acc = 0;
  for (const LayerMapping& l : layers) {
    if (l.is_conv) acc += l.total_passes;
  }
  return acc;
}

std::size_t ModelMapping::fc_passes() const noexcept {
  std::size_t acc = 0;
  for (const LayerMapping& l : layers) {
    if (!l.is_conv) acc += l.total_passes;
  }
  return acc;
}

ModelMapping map_model(const ModelSpec& model, const ArchitectureConfig& config) {
  config.validate();
  ModelMapping mapping;
  mapping.model_name = model.name;
  for (const LayerSpec& layer : model.layers) {
    if (!layer.is_accelerated()) continue;
    LayerMapping lm;
    lm.layer_name = layer.name;
    lm.is_conv = layer.kind == LayerKind::kConv;
    lm.dot_products = layer.dot_product_count() * model.branches;
    lm.dot_length = layer.dot_product_length();
    lm.unit_size = lm.is_conv ? config.conv_unit_size : config.fc_unit_size;
    lm.unit_pool = lm.is_conv ? config.conv_units : config.fc_units;
    lm.passes_per_dot = (lm.dot_length + lm.unit_size - 1) / lm.unit_size;
    lm.total_passes = lm.dot_products * lm.passes_per_dot;
    lm.rounds = (lm.total_passes + lm.unit_pool - 1) / lm.unit_pool;
    lm.macs = layer.mac_count() * model.branches;
    if (lm.dot_products == 0 || lm.dot_length == 0) {
      throw std::invalid_argument("map_model: degenerate layer '" + layer.name + "'");
    }
    mapping.layers.push_back(lm);
    mapping.total_macs += lm.macs;
    mapping.total_passes += lm.total_passes;
    mapping.total_rounds += lm.rounds;
  }
  if (mapping.layers.empty()) {
    throw std::invalid_argument("map_model: model has no accelerated layers");
  }
  return mapping;
}

}  // namespace xl::core
