// DseEngine — the parallel, memoizing design-space exploration subsystem.
//
// The sweep grid (tuple axes x scenario axes) is flattened into a dense
// candidate queue; candidates are evaluated OpenMP-parallel with results
// written into a pre-sized vector indexed by job id, so the outcome is
// bit-identical to the serial path for any thread count and schedule. A
// per-(configuration, model) memo cache persists across run() calls on the
// same engine: overlapping axes (e.g. several area budgets over the same
// tuples) and repeated sweeps never pay a second evaluation.
//
// Degenerate evaluations (non-finite or non-positive FPS/EPB/power/area) are
// never ranked: they are flagged and surfaced in DseResult::rejected.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/dse.hpp"

namespace xl::core {

/// One entry of the flattened candidate grid. `config` carries the tuple,
/// variant, and resolution; `effects` the scenario non-ideality stage set.
struct DseCandidate {
  std::size_t id = 0;
  ArchitectureConfig config;
  EffectConfig effects;
  double area_budget_mm2 = 0.0;
};

/// Candidate-level evaluator. MUST be thread-safe when the engine runs in
/// parallel mode: it is invoked concurrently from OpenMP worker threads.
using DseCandidateEvaluator =
    std::function<AcceleratorReport(const DseCandidate&, const xl::dnn::ModelSpec&)>;

/// Progress observer, called after every completed evaluator job with
/// (jobs done, jobs total). Invoked under a critical section in parallel
/// runs; completion order is nondeterministic, the counts are monotone.
using DseProgress = std::function<void(std::size_t done, std::size_t total)>;

struct DseStats {
  std::size_t grid_candidates = 0;  ///< Fully expanded grid size.
  std::size_t area_filtered = 0;    ///< Rejected by their budget, never evaluated.
  std::size_t evaluations = 0;      ///< Evaluator calls paid this run.
  std::size_t cache_hits = 0;       ///< (config, model) pairs served from the memo.
  std::size_t degenerate = 0;       ///< Candidates rejected for broken reports.

  [[nodiscard]] double cache_hit_rate() const noexcept {
    const double total = static_cast<double>(evaluations + cache_hits);
    return total > 0.0 ? static_cast<double>(cache_hits) / total : 0.0;
  }
};

/// One memoized evaluation: the engine's memo key and its report.
struct DseMemoEntry {
  std::string key;
  AcceleratorReport report;
};

/// Bitwise equality of two reports: every double compared by object
/// representation (not operator==, so a NaN can never mask divergence),
/// strings and integers exactly. This is the agreement predicate of the
/// mergeable fleet memo — two nodes evaluating the same deterministic
/// candidate must produce the same bits.
[[nodiscard]] bool reports_bit_identical(const AcceleratorReport& a,
                                         const AcceleratorReport& b) noexcept;

/// Portable snapshot of a DseEngine memo cache: entries sorted by key,
/// unique. The fleet layer ships these between nodes as compact DSE
/// reports and merges them into the union cache that makes warm
/// distributed re-runs evaluator-free.
struct DseMemo {
  std::vector<DseMemoEntry> entries;  ///< Sorted ascending by key, unique.

  /// Union-merge `other` into this memo. Disjoint keys accumulate;
  /// overlapping keys must carry bit-identical reports or the merge throws
  /// std::runtime_error naming the offending key — divergent reports for
  /// one key mean two nodes disagreed on a deterministic evaluation, which
  /// is always a bug and must fail loudly, never silently pick a side.
  void merge(const DseMemo& other);

  [[nodiscard]] std::size_t size() const noexcept { return entries.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries.empty(); }
};

struct DseResult {
  /// Valid points ranked by dse_point_less (truncated to Options::top_k).
  std::vector<DsePoint> points;
  /// Non-dominated subset over (max fps, min epb, min area, min power),
  /// ranked by dse_point_less; never truncated. One representative per
  /// design: when several budget slices admit the same design, only the
  /// first (lowest-budget) row appears here, while every duplicate in
  /// `points` still carries on_pareto = true.
  std::vector<DsePoint> pareto;
  /// Degenerate candidates, flagged (degenerate = true), unranked.
  std::vector<DsePoint> rejected;
  DseStats stats;

  /// Highest-ranked valid point; throws std::invalid_argument when the run
  /// produced none (e.g. every candidate evaluated degenerate).
  [[nodiscard]] const DsePoint& best() const;
};

/// Non-dominated subset of `points` over (max avg_fps, min avg_epb_pj,
/// min area_mm2, min avg_power_w), ranked by dse_point_less, deduplicated
/// to one representative per (design, metrics).
[[nodiscard]] std::vector<DsePoint> pareto_front(const std::vector<DsePoint>& points);

class DseEngine {
 public:
  struct Options {
    bool parallel = true;      ///< Parallel candidate evaluation (xl::exec
                               ///< pool, or OpenMP under XL_USE_OPENMP).
    bool cache_enabled = true; ///< Memoize reports across run() calls.
    std::size_t top_k = 0;     ///< Keep only the k best points (0 = all).
    /// Optional progress callback. Counts are unique and each call observes
    /// done <= total, but under parallel evaluation calls may arrive from
    /// concurrent lanes (and slightly out of count order) — the callback
    /// must be thread-safe.
    DseProgress progress;
  };

  DseEngine() = default;
  explicit DseEngine(Options options) : options_(std::move(options)) {}

  /// Run the sweep with the built-in CrossLightAccelerator evaluator.
  [[nodiscard]] DseResult run(const DseSweep& sweep,
                              const std::vector<xl::dnn::ModelSpec>& models);

  /// Run the sweep with a custom (thread-safe, deterministic) evaluator.
  /// Throws std::invalid_argument on invalid sweeps, an empty model list, or
  /// a budget that rejects every candidate (the error names the budget).
  [[nodiscard]] DseResult run(const DseSweep& sweep,
                              const std::vector<xl::dnn::ModelSpec>& models,
                              const DseCandidateEvaluator& evaluate);

  /// Flatten the sweep into its dense candidate grid (deterministic order:
  /// variant, resolution, effects, budget, N, K, n, m; id = flat index).
  [[nodiscard]] static std::vector<DseCandidate> expand(const DseSweep& sweep);

  /// Expand + area-filter: exactly the admission run() applies, exposed so
  /// a coordinator can stripe the admitted list across fleet nodes and
  /// every node agrees on candidate identity. Deterministic order (the
  /// expand() order, filtered). Throws std::invalid_argument on invalid
  /// sweeps or when the budget rejects every candidate (naming the budget).
  /// When non-null, `area_filtered` receives the rejected count.
  [[nodiscard]] static std::vector<DseCandidate> admit(
      const DseSweep& sweep, std::size_t* area_filtered = nullptr);

  /// Memo key of one (candidate, model) evaluation — the identity the
  /// cache, export/import, and the fleet's mergeable memo all agree on.
  [[nodiscard]] static std::string memo_key(const DseCandidate& candidate,
                                            const xl::dnn::ModelSpec& model);

  /// Evaluate every (candidate, model) pair of `slice` missing from the
  /// memo, insert the fresh reports, and return just those fresh entries
  /// (sorted by key) — the compact delta a fleet node ships back to its
  /// coordinator. Evaluator calls paid == returned entry count; a warm
  /// slice returns an empty memo. Always uses the persistent memo,
  /// regardless of Options::cache_enabled (the memo *is* the product here).
  [[nodiscard]] DseMemo populate(const std::vector<DseCandidate>& slice,
                                 const std::vector<xl::dnn::ModelSpec>& models);
  [[nodiscard]] DseMemo populate(const std::vector<DseCandidate>& slice,
                                 const std::vector<xl::dnn::ModelSpec>& models,
                                 const DseCandidateEvaluator& evaluate);

  /// Snapshot the memo cache, sorted by key.
  [[nodiscard]] DseMemo export_memo() const;

  /// Insert `memo`'s entries into the cache. Keys already present must
  /// agree bit-exactly with the incoming report (reports_bit_identical) or
  /// this throws std::runtime_error naming the key. Returns the number of
  /// newly inserted entries.
  std::size_t import_memo(const DseMemo& memo);

  /// True when the memo already holds `key` (see memo_key). The fleet
  /// coordinator uses this to skip striping candidates its union cache
  /// fully covers — a warm distributed re-run assigns no work at all.
  [[nodiscard]] bool memo_contains(const std::string& key) const {
    return cache_.count(key) != 0;
  }

  [[nodiscard]] const Options& options() const noexcept { return options_; }
  /// Replace the run options; the memo cache is kept.
  void set_options(Options options) { options_ = std::move(options); }
  [[nodiscard]] std::size_t cache_size() const noexcept { return cache_.size(); }
  void clear_cache() { cache_.clear(); }

 private:
  /// Evaluate every (candidate, model) pair missing from `store` (parallel
  /// per options_, pre-sized slots), returning the fresh (key, report)
  /// pairs in deterministic job order. `stats`, when non-null, accrues
  /// evaluations/cache_hits. Entries are NOT inserted into `store` here —
  /// the caller merges serially so completion order never matters.
  [[nodiscard]] std::vector<DseMemoEntry> evaluate_missing(
      const std::vector<DseCandidate>& candidates,
      const std::vector<xl::dnn::ModelSpec>& models,
      const DseCandidateEvaluator& evaluate,
      const std::unordered_map<std::string, AcceleratorReport>& store,
      DseStats* stats) const;

  Options options_;
  /// Memo of evaluator reports. Keyed on the candidate's architecture tuple,
  /// variant, resolution, shared knobs (mrs_per_bank, pitches, a DeviceParams
  /// digest), the effect-stage identity, and the model name (models are
  /// identified by name; area budgets are excluded on purpose — a candidate's
  /// report does not depend on the admitting budget).
  std::unordered_map<std::string, AcceleratorReport> cache_;
};

}  // namespace xl::core
