#include "core/effect_pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "numerics/rng.hpp"
#include "photonics/fpv.hpp"
#include "photonics/noise.hpp"
#include "thermal/crosstalk_matrix.hpp"
#include "thermal/heat_solver.hpp"
#include "thermal/ted.hpp"
#include "thermal/transient.hpp"

namespace xl::core {

namespace {

constexpr double kTau = 6.283185307179586476925286766559;

// Stage-distinct seed tags so one root seed never correlates two stages.
constexpr std::uint64_t kThermalSeedTag = 0x7E4D;
constexpr std::uint64_t kFpvSeedTag = 0xF9B0;
constexpr std::uint64_t kNoiseSeedTag = 0x4E01;

/// Thermal detuning: the boot TO trim (TED or naive) leaves a per-ring phase
/// residual; the residual warms in with the heater RC constant and a slow
/// ambient excursion wanders the whole bank on top.
class ThermalEffectStage final : public EffectStage {
 public:
  ThermalEffectStage(const ThermalEffectConfig& cfg, std::size_t bank,
                     double fsr_nm, std::uint64_t seed)
      : cfg_(cfg), rc_(cfg.rc) {
    const double phase_per_nm = kTau / fsr_nm;

    const numerics::Matrix coupling =
        cfg.coupling_from_solver
            ? thermal::coupling_matrix_from_solver(
                  thermal::HeatSolver(solver_grid()), bank, cfg.pitch_um,
                  cfg.coupling)
            : thermal::coupling_matrix_exponential(bank, cfg.pitch_um,
                                                   cfg.coupling);

    // The heater load the boot calibration must realize: trim out the
    // wafer-map FPV drift of this bank (optimized design, Section IV-B).
    photonics::FpvModelConfig fpv_cfg;
    fpv_cfg.seed = numerics::hash_combine(seed, kThermalSeedTag);
    const photonics::FpvModel fpv(fpv_cfg);
    const auto drifts = fpv.row_drifts_nm(photonics::MrDesignKind::kOptimized,
                                          bank, cfg.pitch_um);
    numerics::Vector targets(bank);
    for (std::size_t i = 0; i < bank; ++i) {
      targets[i] = std::abs(drifts[i]) * phase_per_nm;
    }

    const thermal::TedTuner tuner(coupling);
    const thermal::TedSolution ted = tuner.solve(targets);
    const thermal::NaiveTuningResult naive =
        thermal::naive_tuning_powers(coupling, targets);

    telemetry_.ted_mean_power_mw = ted.mean_power_mw;
    telemetry_.naive_mean_power_mw = naive.mean_power_mw;
    telemetry_.naive_feasible = naive.feasible;
    telemetry_.condition_number = tuner.condition_number();

    // Residual per ring: achieved phase minus target under each drive mode
    // (TED measures against target + common-mode bias, which the laser comb
    // absorbs). Positive residual = over-heated = red shift. Both modes are
    // reported; the selected one becomes the stage's drift.
    const auto residuals_nm = [&](const numerics::Vector& powers, double offset,
                                  std::vector<double>& out) {
      const numerics::Vector achieved = coupling.matvec(powers);
      out.resize(bank);
      double sq = 0.0;
      for (std::size_t i = 0; i < bank; ++i) {
        out[i] = (achieved[i] - (targets[i] + offset)) / phase_per_nm;
        sq += out[i] * out[i];
      }
      return std::sqrt(sq / static_cast<double>(bank));
    };
    std::vector<double> other_nm;
    if (cfg.use_ted) {
      telemetry_.ted_residual_rms_nm =
          residuals_nm(ted.heater_powers_mw, ted.common_mode_bias_rad, residual_nm_);
      telemetry_.naive_residual_rms_nm =
          residuals_nm(naive.heater_powers_mw, 0.0, other_nm);
      telemetry_.residual_rms_nm = telemetry_.ted_residual_rms_nm;
    } else {
      telemetry_.ted_residual_rms_nm =
          residuals_nm(ted.heater_powers_mw, ted.common_mode_bias_rad, other_nm);
      telemetry_.naive_residual_rms_nm =
          residuals_nm(naive.heater_powers_mw, 0.0, residual_nm_);
      telemetry_.residual_rms_nm = telemetry_.naive_residual_rms_nm;
    }
  }

  [[nodiscard]] const char* name() const noexcept override { return "thermal"; }

  void apply(EffectFrame& frame) const override {
    // Heater warm-up: the trim residual only exists once the heaters are
    // driven; it settles in with the first-order RC response.
    const double warm = 1.0 - std::exp(-time_us_ / cfg_.rc.tau_us);
    const double ambient =
        cfg_.ambient_drift_nm * std::sin(kTau * time_us_ / cfg_.ambient_period_us);
    for (std::size_t i = 0; i < frame.ring_drift_nm.size(); ++i) {
      frame.ring_drift_nm[i] += residual_nm_[i] * warm + ambient;
    }
  }

  bool advance(double dt_us) override {
    time_us_ += dt_us;
    telemetry_.time_us = time_us_;
    telemetry_.ambient_nm =
        cfg_.ambient_drift_nm * std::sin(kTau * time_us_ / cfg_.ambient_period_us);
    return true;
  }

  void reset() override {
    time_us_ = 0.0;
    telemetry_.time_us = 0.0;
    telemetry_.ambient_nm = 0.0;
  }

  [[nodiscard]] const ThermalTelemetry& telemetry() const noexcept {
    return telemetry_;
  }

 private:
  [[nodiscard]] static thermal::HeatGridConfig solver_grid() {
    // Modest grid: the coupling probe runs one SOR solve per ring.
    thermal::HeatGridConfig grid;
    grid.nx = 128;
    grid.ny = 48;
    return grid;
  }

  ThermalEffectConfig cfg_;
  thermal::ThermalRcModel rc_;
  std::vector<double> residual_nm_;
  ThermalTelemetry telemetry_;
  double time_us_ = 0.0;
};

/// FPV residual: the wafer-map resonance offsets surviving boot calibration.
class FpvEffectStage final : public EffectStage {
 public:
  FpvEffectStage(const FpvEffectConfig& cfg, std::size_t bank, std::uint64_t seed) {
    photonics::FpvModelConfig model = cfg.model;
    model.seed = numerics::hash_combine(seed, kFpvSeedTag);
    const photonics::FpvModel fpv(model);
    residual_nm_ = fpv.row_drifts_nm(cfg.design, bank, cfg.pitch_um, cfg.x0_um,
                                     cfg.y0_um);
    for (double& d : residual_nm_) d *= cfg.trim_residual_fraction;
  }

  [[nodiscard]] const char* name() const noexcept override { return "fpv"; }

  void apply(EffectFrame& frame) const override {
    for (std::size_t i = 0; i < frame.ring_drift_nm.size(); ++i) {
      frame.ring_drift_nm[i] += residual_nm_[i];
    }
  }

 private:
  std::vector<double> residual_nm_;
};

/// Receiver noise: relative per-channel PD noise at the configured power.
class NoiseEffectStage final : public EffectStage {
 public:
  explicit NoiseEffectStage(const NoiseEffectConfig& cfg) {
    const double snr =
        photonics::receiver_snr(cfg.optical_power_mw, cfg.receiver);
    noise_std_ = snr > 0.0 ? 1.0 / std::sqrt(snr) : 0.0;
  }

  [[nodiscard]] const char* name() const noexcept override { return "noise"; }

  void apply(EffectFrame& frame) const override { frame.noise_std = noise_std_; }

 private:
  double noise_std_ = 0.0;
};

}  // namespace

EffectPipeline::EffectPipeline(const VdpSimOptions& opts)
    : config_(opts.effects) {
  config_.validate();
  if (opts.mrs_per_bank == 0) {
    throw std::invalid_argument("EffectPipeline: empty bank");
  }
  frame_.ring_drift_nm.resize(opts.mrs_per_bank, 0.0);
  crosstalk_base_ = opts.model_crosstalk && config_.crosstalk;

  if (config_.thermal) {
    auto stage = std::make_unique<ThermalEffectStage>(
        config_.thermal_stage, opts.mrs_per_bank, opts.fsr_nm, config_.seed);
    thermal_ = stage.get();
    stages_.push_back(std::move(stage));
    time_dependent_ = true;
  }
  if (config_.fpv) {
    stages_.push_back(std::make_unique<FpvEffectStage>(
        config_.fpv_stage, opts.mrs_per_bank, config_.seed));
  }
  if (config_.noise) {
    stages_.push_back(std::make_unique<NoiseEffectStage>(config_.noise_stage));
  }
  view_.noise_seed = numerics::hash_combine(config_.seed, kNoiseSeedTag);

  stage_frames_.resize(stages_.size());
  for (EffectFrame& sf : stage_frames_) {
    sf.ring_drift_nm.resize(opts.mrs_per_bank, 0.0);
  }
  stage_dirty_since_reset_.assign(stages_.size(), 0);
  rebuild();
}

EffectPipeline::~EffectPipeline() = default;
EffectPipeline::EffectPipeline(EffectPipeline&&) noexcept = default;
EffectPipeline& EffectPipeline::operator=(EffectPipeline&&) noexcept = default;

void EffectPipeline::rebuild() {
  for (std::size_t i = 0; i < stages_.size(); ++i) render_stage(i);
  combine();
}

void EffectPipeline::render_stage(std::size_t idx) {
  EffectFrame& sf = stage_frames_[idx];
  std::fill(sf.ring_drift_nm.begin(), sf.ring_drift_nm.end(), 0.0);
  sf.noise_std = 0.0;
  stages_[idx]->apply(sf);
}

void EffectPipeline::combine() {
  std::fill(frame_.ring_drift_nm.begin(), frame_.ring_drift_nm.end(), 0.0);
  frame_.noise_std = 0.0;
  frame_.crosstalk = crosstalk_base_;
  for (const EffectFrame& sf : stage_frames_) {
    for (std::size_t i = 0; i < frame_.ring_drift_nm.size(); ++i) {
      frame_.ring_drift_nm[i] += sf.ring_drift_nm[i];
    }
    frame_.noise_std += sf.noise_std;
  }

  const bool drift = config_.thermal || config_.fpv;
  view_.ring_drift_nm =
      drift ? std::span<const double>(frame_.ring_drift_nm) : std::span<const double>{};
  view_.noise_std = frame_.noise_std;
}

void EffectPipeline::advance(double dt_us) {
  if (!time_dependent_) return;
  if (dt_us <= 0.0) {
    throw std::invalid_argument("EffectPipeline::advance: dt_us must be > 0");
  }
  advanced_since_reset_ = true;
  bool dirty = false;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    if (stages_[i]->advance(dt_us)) {
      stage_dirty_since_reset_[i] = 1;
      render_stage(i);
      dirty = true;
    }
  }
  time_us_ += dt_us;
  if (dirty) combine();
}

void EffectPipeline::reset() {
  // Serving resets the pipeline before every micro-batch; when no advance()
  // landed since the last reset the frame already holds the t = 0 render and
  // the whole call is a branch.
  if (!advanced_since_reset_) return;
  for (const auto& stage : stages_) stage->reset();
  time_us_ = 0.0;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    if (stage_dirty_since_reset_[i] != 0) {
      render_stage(i);
      stage_dirty_since_reset_[i] = 0;
    }
  }
  combine();
  advanced_since_reset_ = false;
}

std::vector<std::string> EffectPipeline::stage_names() const {
  std::vector<std::string> names;
  names.reserve(stages_.size() + 1);
  for (const auto& stage : stages_) names.emplace_back(stage->name());
  if (frame_.crosstalk) names.emplace_back("crosstalk");
  return names;
}

const ThermalTelemetry* EffectPipeline::thermal_telemetry() const noexcept {
  return thermal_ != nullptr
             ? &static_cast<const ThermalEffectStage*>(thermal_)->telemetry()
             : nullptr;
}

}  // namespace xl::core
