// Discrete-event scheduler for VDP passes.
//
// The analytic performance model (core/performance.hpp) assumes perfect
// round-robin filling of the unit pools. This module actually *simulates*
// the schedule: every pass is an event dispatched to the earliest-free unit
// of the right pool, with per-layer barriers (a layer's passes cannot start
// before the previous layer's results are buffered). It validates the
// analytic model (tests assert agreement within a few percent) and exposes
// utilization statistics the analytic model cannot provide.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/config.hpp"
#include "core/mapper.hpp"

namespace xl::core {

struct ScheduleOptions {
  /// Issue interval of one unit; nullopt = the analytic cycle.
  std::optional<double> cycle_ns;
  /// Per-layer pipeline fill; nullopt = the analytic fill.
  std::optional<double> fill_ns;
  /// When true, a layer may start as soon as the previous layer finishes
  /// (sequential dependency); when false, layers overlap freely (an
  /// optimistic bound used for ablation).
  bool layer_barriers = true;
  /// Samples executed back-to-back per schedule. Weights are imprinted once
  /// per layer per batch, so the per-layer pipeline fill amortizes over the
  /// batch while pass counts scale with it — the same amortization the
  /// batched functional engine models. Must be >= 1.
  std::size_t batch = 1;
};

struct UnitStats {
  std::size_t passes = 0;
  double busy_ns = 0.0;
};

struct ScheduleResult {
  double makespan_ns = 0.0;            ///< Total simulated batch latency.
  double conv_pool_utilization = 0.0;  ///< busy time / (units * makespan).
  double fc_pool_utilization = 0.0;
  std::vector<UnitStats> conv_units;
  std::vector<UnitStats> fc_units;
  std::size_t total_passes = 0;
  std::size_t batch = 1;               ///< Samples covered by the makespan.

  [[nodiscard]] double makespan_us() const noexcept { return makespan_ns * 1e-3; }
  /// Throughput in samples per second (frames/s for batch == 1).
  [[nodiscard]] double fps() const noexcept {
    return makespan_ns > 0.0 ? static_cast<double>(batch) * 1e9 / makespan_ns : 0.0;
  }
};

/// Event-driven simulation of one inference's pass schedule.
class EventScheduler {
 public:
  EventScheduler(const ArchitectureConfig& config, const ScheduleOptions& options = {});

  /// Simulate the mapped model; deterministic.
  [[nodiscard]] ScheduleResult run(const ModelMapping& mapping) const;

 private:
  ArchitectureConfig config_;
  bool layer_barriers_;
  double cycle_ns_;
  double fill_ns_;
  std::size_t batch_;
};

}  // namespace xl::core
