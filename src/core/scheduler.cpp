#include "core/scheduler.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "core/performance.hpp"

namespace xl::core {

EventScheduler::EventScheduler(const ArchitectureConfig& config,
                               const ScheduleOptions& options)
    : config_(config),
      layer_barriers_(options.layer_barriers),
      cycle_ns_(options.cycle_ns.value_or(0.0)),
      fill_ns_(options.fill_ns.value_or(0.0)),
      batch_(options.batch) {
  config_.validate();
  if (!options.cycle_ns) cycle_ns_ = vdp_cycle_ns(config_);
  if (!options.fill_ns) fill_ns_ = pipeline_fill_ns(config_);
  if (cycle_ns_ <= 0.0 || fill_ns_ < 0.0) {
    throw std::invalid_argument("EventScheduler: non-positive cycle or negative fill");
  }
  if (batch_ == 0) {
    throw std::invalid_argument("EventScheduler: batch must be >= 1");
  }
}

ScheduleResult EventScheduler::run(const ModelMapping& mapping) const {
  ScheduleResult result;
  result.conv_units.assign(config_.conv_units, UnitStats{});
  result.fc_units.assign(config_.fc_units, UnitStats{});

  // Min-heap of (free_time, unit_index) per pool.
  using Slot = std::pair<double, std::size_t>;
  auto make_pool = [](std::size_t n) {
    std::priority_queue<Slot, std::vector<Slot>, std::greater<>> pool;
    for (std::size_t i = 0; i < n; ++i) pool.emplace(0.0, i);
    return pool;
  };
  auto conv_pool = make_pool(config_.conv_units);
  auto fc_pool = make_pool(config_.fc_units);

  result.batch = batch_;
  double layer_ready_ns = 0.0;  // When the current layer may start.
  double makespan = 0.0;
  for (const LayerMapping& layer : mapping.layers) {
    auto& pool = layer.is_conv ? conv_pool : fc_pool;
    auto& stats = layer.is_conv ? result.conv_units : result.fc_units;
    const double start_floor = layer_barriers_ ? layer_ready_ns : 0.0;

    // Weights are imprinted once per layer per batch: pass counts scale with
    // the batch, the per-layer fill below does not.
    const std::size_t layer_passes = layer.total_passes * batch_;
    double layer_finish = start_floor;
    for (std::size_t pass = 0; pass < layer_passes; ++pass) {
      auto [free_at, unit] = pool.top();
      pool.pop();
      const double start = std::max(free_at, start_floor);
      const double end = start + cycle_ns_;
      stats[unit].passes += 1;
      stats[unit].busy_ns += cycle_ns_;
      layer_finish = std::max(layer_finish, end);
      pool.emplace(end, unit);
    }
    // Results drain through the optoelectronic chain once per layer.
    layer_finish += fill_ns_;
    layer_ready_ns = layer_finish;
    makespan = std::max(makespan, layer_finish);
    result.total_passes += layer_passes;
  }
  result.makespan_ns = makespan;

  auto utilization = [&](const std::vector<UnitStats>& stats) {
    if (stats.empty() || makespan <= 0.0) return 0.0;
    double busy = 0.0;
    for (const UnitStats& s : stats) busy += s.busy_ns;
    return busy / (static_cast<double>(stats.size()) * makespan);
  };
  result.conv_pool_utilization = utilization(result.conv_units);
  result.fc_pool_utilization = utilization(result.fc_units);
  return result;
}

}  // namespace xl::core
