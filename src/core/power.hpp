// Power model: laser (Eq. 7), TO/EO tuning (Section IV-B), optoelectronic
// devices and transceivers (Table II).
//
// Static components (laser, TO trim, PD/TIA/VCSEL bias, transceiver arrays)
// depend only on the architecture configuration; dynamic EO imprint power
// additionally depends on the mapped workload's pass rate.
#pragma once

#include "core/config.hpp"
#include "core/mapper.hpp"
#include "core/report.hpp"
#include "photonics/fpv.hpp"

namespace xl::core {

/// Ring diameter used for waveguide-length and area accounting, um.
inline constexpr double kMrDiameterUm = 20.0;

/// Laser wall-plug power for one VDP unit of the given size (mW).
[[nodiscard]] double unit_laser_power_mw(const ArchitectureConfig& config,
                                         std::size_t unit_size);

/// Static TO trim power for the whole accelerator (mW): per-bank FPV
/// compensation solved collectively (TED variants) or independently with
/// crosstalk overdrive (non-TED variants). Uses the FPV wafer model to draw
/// per-ring drift targets deterministically.
[[nodiscard]] double total_to_tuning_power_mw(const ArchitectureConfig& config);

/// Full power breakdown for a mapped model at a given frame latency.
[[nodiscard]] PowerBreakdown evaluate_power(const ModelMapping& mapping,
                                            const ArchitectureConfig& config,
                                            const PerformanceReport& perf);

}  // namespace xl::core
