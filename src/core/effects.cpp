#include "core/effects.hpp"

#include <cctype>
#include <stdexcept>

namespace xl::core {

std::string EffectConfig::summary() const {
  std::string out;
  const auto add = [&out](const char* name) {
    if (!out.empty()) out += ',';
    out += name;
  };
  if (thermal) add("thermal");
  if (fpv) add("fpv");
  if (noise) add("noise");
  if (crosstalk) add("crosstalk");
  return out.empty() ? "none" : out;
}

EffectConfig EffectConfig::parse(std::string_view csv) {
  EffectConfig cfg;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = std::min(csv.find(',', pos), csv.size());
    std::string_view token = csv.substr(pos, comma - pos);
    pos = comma + 1;
    // Trim ASCII whitespace so "thermal, fpv" parses; unknown tokens are
    // still rejected by name below (never silently ignored).
    while (!token.empty() && std::isspace(static_cast<unsigned char>(token.front()))) {
      token.remove_prefix(1);
    }
    while (!token.empty() && std::isspace(static_cast<unsigned char>(token.back()))) {
      token.remove_suffix(1);
    }
    if (token.empty()) continue;
    if (token == "thermal") {
      cfg.thermal = true;
    } else if (token == "fpv") {
      cfg.fpv = true;
    } else if (token == "noise") {
      cfg.noise = true;
    } else if (token == "crosstalk") {
      cfg.crosstalk = true;
    } else if (token == "nocrosstalk") {
      cfg.crosstalk = false;
    } else if (token == "all") {
      cfg.thermal = cfg.fpv = cfg.noise = cfg.crosstalk = true;
    } else if (token == "none") {
      cfg.thermal = cfg.fpv = cfg.noise = false;
      cfg.crosstalk = true;  // The legacy ideal datapath keeps Eq. 8 on.
    } else if (token == "ideal") {
      cfg.thermal = cfg.fpv = cfg.noise = cfg.crosstalk = false;
    } else {
      throw std::invalid_argument("EffectConfig: unknown effect token '" +
                                  std::string(token) + "'");
    }
  }
  return cfg;
}

void EffectConfig::validate() const {
  auto check = [](bool ok, const char* what) {
    if (!ok) throw std::invalid_argument(what);
  };
  check(thermal_stage.pitch_um > 0.0, "EffectConfig: thermal pitch_um must be > 0");
  check(thermal_stage.dt_us > 0.0, "EffectConfig: thermal dt_us must be > 0");
  check(thermal_stage.ambient_drift_nm >= 0.0,
        "EffectConfig: thermal ambient_drift_nm must be >= 0");
  check(thermal_stage.ambient_period_us > 0.0,
        "EffectConfig: thermal ambient_period_us must be > 0");
  check(thermal_stage.rc.tau_us > 0.0, "EffectConfig: thermal rc.tau_us must be > 0");
  check(fpv_stage.pitch_um > 0.0, "EffectConfig: fpv pitch_um must be > 0");
  check(fpv_stage.trim_residual_fraction >= 0.0 &&
            fpv_stage.trim_residual_fraction <= 1.0,
        "EffectConfig: fpv trim_residual_fraction in [0, 1]");
  check(noise_stage.optical_power_mw > 0.0,
        "EffectConfig: noise optical_power_mw must be > 0");
}

}  // namespace xl::core
