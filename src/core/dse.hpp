// Design-space exploration over (N, K, n, m) — Fig. 6.
//
// For every candidate configuration the four Table I models are evaluated;
// the selected design maximizes FPS/EPB (the paper's criterion), which for
// the paper lands on (20, 150, 100, 60). The sweep is parameterized over an
// evaluator callback so higher layers (api::Session) can route every
// candidate through a registry backend instead of a hand-wired accelerator.
#pragma once

#include <functional>
#include <vector>

#include "core/accelerator.hpp"
#include "core/config.hpp"
#include "dnn/layer_spec.hpp"

namespace xl::core {

struct DsePoint {
  std::size_t conv_unit_size = 0;  ///< N
  std::size_t fc_unit_size = 0;    ///< K
  std::size_t conv_units = 0;      ///< n
  std::size_t fc_units = 0;        ///< m
  double avg_fps = 0.0;
  double avg_epb_pj = 0.0;
  double area_mm2 = 0.0;
  double avg_power_w = 0.0;

  /// The paper's selection criterion.
  [[nodiscard]] double fps_per_epb() const noexcept {
    return avg_epb_pj > 0.0 ? avg_fps / avg_epb_pj : 0.0;
  }
};

struct DseSweep {
  std::vector<std::size_t> conv_unit_sizes = {10, 15, 20, 25, 30};
  std::vector<std::size_t> fc_unit_sizes = {50, 100, 150, 200};
  std::vector<std::size_t> conv_unit_counts = {50, 100, 150};
  std::vector<std::size_t> fc_unit_counts = {30, 60, 90};
  Variant variant = Variant::kOptTed;
  /// Skip configurations whose area exceeds this budget (paper: ~25 mm^2
  /// comparisons; DSE itself explores a wider envelope).
  double max_area_mm2 = 60.0;
};

/// Produces the report of one (configuration, model) evaluation. The sweep
/// only reads perf.fps, epb_pj(), power, and area_mm2 from it.
using DseEvaluator =
    std::function<AcceleratorReport(const ArchitectureConfig&, const xl::dnn::ModelSpec&)>;

/// Run the sweep over the given model zoo; results sorted by descending
/// FPS/EPB. Evaluates with CrossLightAccelerator directly.
[[nodiscard]] std::vector<DsePoint> run_dse(const DseSweep& sweep,
                                            const std::vector<xl::dnn::ModelSpec>& models);

/// Same sweep with a custom evaluator (e.g. an api registry backend).
[[nodiscard]] std::vector<DsePoint> run_dse(const DseSweep& sweep,
                                            const std::vector<xl::dnn::ModelSpec>& models,
                                            const DseEvaluator& evaluate);

/// Highest-FPS/EPB point (throws on empty results).
[[nodiscard]] const DsePoint& best_point(const std::vector<DsePoint>& points);

}  // namespace xl::core
