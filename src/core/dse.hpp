// Design-space exploration over (N, K, n, m) — Fig. 6.
//
// For every candidate configuration the four Table I models are evaluated;
// the selected design maximizes FPS/EPB (the paper's criterion), which for
// the paper lands on (20, 150, 100, 60). The sweep is parameterized over an
// evaluator callback so higher layers (api::Session) can route every
// candidate through a registry backend instead of a hand-wired accelerator.
//
// Beyond the paper's fixed grid, DseSweep carries scenario-diversity axes
// (architecture variants, datapath resolutions, area budgets, non-ideality
// configurations); the parallel engine that walks the expanded grid lives in
// core/dse_engine.hpp. The run_dse entry points below remain as thin,
// backward-compatible wrappers over that engine.
#pragma once

#include <functional>
#include <vector>

#include "core/accelerator.hpp"
#include "core/config.hpp"
#include "core/effects.hpp"
#include "dnn/layer_spec.hpp"

namespace xl::core {

struct DsePoint {
  std::size_t conv_unit_size = 0;  ///< N
  std::size_t fc_unit_size = 0;    ///< K
  std::size_t conv_units = 0;      ///< n
  std::size_t fc_units = 0;        ///< m
  Variant variant = Variant::kOptTed;
  int resolution_bits = 16;
  double area_budget_mm2 = 0.0;  ///< Budget slice the candidate was admitted under.
  std::size_t candidate_id = 0;  ///< Dense index into the expanded grid.

  double avg_fps = 0.0;
  double avg_epb_pj = 0.0;
  double area_mm2 = 0.0;
  double avg_power_w = 0.0;

  bool on_pareto = false;   ///< Non-dominated over (fps, epb, area, power).
  bool degenerate = false;  ///< Evaluation produced non-finite/non-positive metrics.

  /// The paper's selection criterion.
  [[nodiscard]] double fps_per_epb() const noexcept {
    return avg_epb_pj > 0.0 ? avg_fps / avg_epb_pj : 0.0;
  }
};

/// Strict total order used to rank sweep results: FPS/EPB descending, ties
/// broken by ascending (N, K, n, m), then (variant, resolution, budget,
/// candidate id). Total by construction — candidate ids are unique — so the
/// ranking (and best_point) is identical across stdlib std::sort
/// implementations and thread counts.
[[nodiscard]] bool dse_point_less(const DsePoint& a, const DsePoint& b) noexcept;

struct DseSweep {
  std::vector<std::size_t> conv_unit_sizes = {10, 15, 20, 25, 30};
  std::vector<std::size_t> fc_unit_sizes = {50, 100, 150, 200};
  std::vector<std::size_t> conv_unit_counts = {50, 100, 150};
  std::vector<std::size_t> fc_unit_counts = {30, 60, 90};
  Variant variant = Variant::kOptTed;
  /// Skip configurations whose area exceeds this budget (paper: ~25 mm^2
  /// comparisons; DSE itself explores a wider envelope).
  double max_area_mm2 = 60.0;

  // Scenario-diversity axes. Every non-empty axis multiplies the candidate
  // grid; an empty axis falls back to the single legacy value (variant /
  // max_area_mm2 / base.resolution_bits / the ideal datapath).
  std::vector<Variant> variants;         ///< Architecture variants to compare.
  std::vector<int> resolution_bits;      ///< Datapath resolutions, each in [1, 16].
  std::vector<double> area_budgets_mm2;  ///< Envelope slices (each <= max fits).
  /// Per-candidate non-ideality configs, for effects-sensitive evaluators
  /// driven through core::DseEngine (the analytical registry path of
  /// api::Session::run_dse is effects-insensitive and rejects multi-entry
  /// axes).
  std::vector<EffectConfig> effects;

  /// Non-swept knobs every candidate inherits (mrs_per_bank, pitches,
  /// devices). Defaults to the paper's flagship configuration.
  ArchitectureConfig base{};

  // Resolved axes (legacy fallbacks applied).
  [[nodiscard]] std::vector<Variant> variant_axis() const;
  [[nodiscard]] std::vector<int> resolution_axis() const;
  [[nodiscard]] std::vector<double> budget_axis() const;
  /// Candidates in the fully expanded grid (before area filtering).
  [[nodiscard]] std::size_t grid_size() const;

  /// Throws std::invalid_argument naming the offending axis: any empty
  /// (N, K, n, m) axis, non-positive entries, resolutions outside [1, 16],
  /// non-positive area budgets, or invalid effect/base configurations.
  void validate() const;
};

/// Produces the report of one (configuration, model) evaluation. The sweep
/// only reads perf.fps, epb_pj(), power, and area_mm2 from it.
using DseEvaluator =
    std::function<AcceleratorReport(const ArchitectureConfig&, const xl::dnn::ModelSpec&)>;

/// Run the sweep over the given model zoo; results ranked by dse_point_less.
/// Evaluates with CrossLightAccelerator (OpenMP-parallel; bit-identical to
/// the serial path). Degenerate evaluations are dropped from the ranking —
/// retrieve them via DseEngine::run if needed. Throws std::invalid_argument
/// on invalid sweeps, including a budget that rejects every candidate.
[[nodiscard]] std::vector<DsePoint> run_dse(const DseSweep& sweep,
                                            const std::vector<xl::dnn::ModelSpec>& models);

/// Same sweep with a custom evaluator (e.g. an api registry backend). The
/// evaluator is not assumed thread-safe, so candidates run serially; use
/// DseEngine directly for parallel sweeps over thread-safe evaluators.
[[nodiscard]] std::vector<DsePoint> run_dse(const DseSweep& sweep,
                                            const std::vector<xl::dnn::ModelSpec>& models,
                                            const DseEvaluator& evaluate);

/// Highest-ranked point under dse_point_less (throws on empty results).
[[nodiscard]] const DsePoint& best_point(const std::vector<DsePoint>& points);

}  // namespace xl::core
