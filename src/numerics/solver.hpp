// Direct linear solvers for small dense systems.
//
// The tuning controller solves SPD systems (thermal coupling matrices) to map
// a desired per-ring phase correction to heater power settings, and the FPV
// calibration fits least-squares models. Cholesky + LU cover both needs.
#pragma once

#include "numerics/matrix.hpp"

namespace xl::numerics {

/// Cholesky factor L (lower triangular, A = L L^T) of an SPD matrix.
/// Throws std::invalid_argument if `a` is not square, std::runtime_error if
/// a non-positive pivot is met (matrix not positive definite).
[[nodiscard]] Matrix cholesky(const Matrix& a);

/// Solve A x = b for SPD A via Cholesky.
[[nodiscard]] Vector solve_spd(const Matrix& a, const Vector& b);

/// Solve A x = b for general square A via partially pivoted LU.
/// Throws std::runtime_error if the matrix is (numerically) singular.
[[nodiscard]] Vector solve_lu(const Matrix& a, const Vector& b);

/// Ordinary least squares: minimize ||A x - b||_2 via normal equations.
/// Suitable for the small, well-conditioned fits used in device calibration.
[[nodiscard]] Vector least_squares(const Matrix& a, const Vector& b);

/// Inverse of a general square matrix via LU (column-by-column solve).
[[nodiscard]] Matrix inverse(const Matrix& a);

}  // namespace xl::numerics
