// Descriptive statistics helpers used by experiment harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace xl::numerics {

[[nodiscard]] double mean(std::span<const double> xs);
/// Unbiased (n-1) sample variance; returns 0 for n < 2.
[[nodiscard]] double variance(std::span<const double> xs);
[[nodiscard]] double stddev(std::span<const double> xs);
/// Linear-interpolated percentile, p in [0, 100]. Throws on empty input.
[[nodiscard]] double percentile(std::span<const double> xs, double p);
/// Geometric mean; all inputs must be > 0.
[[nodiscard]] double geomean(std::span<const double> xs);

/// Incremental mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;  ///< Unbiased; 0 for n < 2.
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace xl::numerics
