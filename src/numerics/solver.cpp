#include "numerics/solver.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace xl::numerics {

Matrix cholesky(const Matrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("cholesky: matrix must be square");
  }
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 0.0) {
          throw std::runtime_error("cholesky: matrix is not positive definite");
        }
        l(i, j) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  return l;
}

Vector solve_spd(const Matrix& a, const Vector& b) {
  if (a.rows() != b.size()) {
    throw std::invalid_argument("solve_spd: dimension mismatch");
  }
  const Matrix l = cholesky(a);
  const std::size_t n = b.size();
  // Forward substitution L y = b.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l(i, k) * y[k];
    y[i] = sum / l(i, i);
  }
  // Back substitution L^T x = y.
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= l(k, ii) * x[k];
    x[ii] = sum / l(ii, ii);
  }
  return x;
}

namespace {

struct LuFactors {
  Matrix lu;                     // combined L (unit diag) and U
  std::vector<std::size_t> piv;  // row permutation
};

LuFactors lu_factor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("solve_lu: matrix must be square");
  }
  const std::size_t n = a.rows();
  LuFactors f{a, std::vector<std::size_t>(n)};
  for (std::size_t i = 0; i < n; ++i) f.piv[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::abs(f.lu(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(f.lu(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-300) throw std::runtime_error("solve_lu: singular matrix");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(f.lu(col, c), f.lu(pivot, c));
      std::swap(f.piv[col], f.piv[pivot]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double m = f.lu(r, col) / f.lu(col, col);
      f.lu(r, col) = m;
      for (std::size_t c = col + 1; c < n; ++c) f.lu(r, c) -= m * f.lu(col, c);
    }
  }
  return f;
}

Vector lu_solve(const LuFactors& f, const Vector& b) {
  const std::size_t n = b.size();
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[f.piv[i]];
    for (std::size_t k = 0; k < i; ++k) sum -= f.lu(i, k) * y[k];
    y[i] = sum;
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= f.lu(ii, k) * x[k];
    x[ii] = sum / f.lu(ii, ii);
  }
  return x;
}

}  // namespace

Vector solve_lu(const Matrix& a, const Vector& b) {
  if (a.rows() != b.size()) {
    throw std::invalid_argument("solve_lu: dimension mismatch");
  }
  return lu_solve(lu_factor(a), b);
}

Vector least_squares(const Matrix& a, const Vector& b) {
  if (a.rows() != b.size()) {
    throw std::invalid_argument("least_squares: dimension mismatch");
  }
  const Matrix at = a.transposed();
  const Matrix ata = at.matmul(a);
  const Vector atb = at.matvec(b);
  // Normal equations are SPD for full-column-rank A; add a light Tikhonov
  // floor for numerical safety on nearly rank-deficient fits.
  Matrix reg = ata;
  const double eps = 1e-12 * (1.0 + ata.norm_frobenius());
  for (std::size_t i = 0; i < reg.rows(); ++i) reg(i, i) += eps;
  return solve_spd(reg, atb);
}

Matrix inverse(const Matrix& a) {
  const std::size_t n = a.rows();
  const LuFactors f = lu_factor(a);
  Matrix inv(n, n);
  Vector e(n);
  for (std::size_t c = 0; c < n; ++c) {
    for (std::size_t i = 0; i < n; ++i) e[i] = (i == c) ? 1.0 : 0.0;
    const Vector col = lu_solve(f, e);
    for (std::size_t r = 0; r < n; ++r) inv(r, c) = col[r];
  }
  return inv;
}

}  // namespace xl::numerics
