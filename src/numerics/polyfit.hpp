// Small curve-fitting utilities for calibrating analytical device models
// against measured/simulated samples (e.g. fitting the exponential
// phase-crosstalk decay of Fig. 4 to heat-solver output).
#pragma once

#include <span>
#include <vector>

namespace xl::numerics {

/// Least-squares polynomial fit; returns coefficients c0..c_degree such that
/// y ~= sum_i c_i x^i. Throws when fewer samples than coefficients.
[[nodiscard]] std::vector<double> polyfit(std::span<const double> xs,
                                          std::span<const double> ys, int degree);

/// Evaluate a polynomial (coefficients in ascending power order).
[[nodiscard]] double polyval(std::span<const double> coeffs, double x);

/// Fit y = a * exp(b * x) with all y > 0 via log-linear least squares.
struct ExponentialFit {
  double a = 0.0;
  double b = 0.0;
  [[nodiscard]] double operator()(double x) const;
};
[[nodiscard]] ExponentialFit fit_exponential(std::span<const double> xs,
                                             std::span<const double> ys);

/// Coefficient of determination R^2 of a model's predictions.
[[nodiscard]] double r_squared(std::span<const double> y_true,
                               std::span<const double> y_pred);

}  // namespace xl::numerics
