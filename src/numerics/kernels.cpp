// Scalar reference kernels + runtime ISA dispatch.
//
// The scalar implementations below are the oracle the AVX2 table is tested
// against (0 ulp, tests/test_kernels.cpp). Keep them boring: straight loops,
// no manual unrolling, no reassociation — their rounding order *defines* the
// contract.
#include "numerics/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "numerics/rng.hpp"

namespace xl::numerics::kernels {

#if defined(XL_KERNELS_AVX2)
namespace detail {
// Defined in kernels_avx2.cpp (the only TU compiled with -mavx2 -mfma).
const KernelTable& avx2_table() noexcept;
}  // namespace detail
#endif

namespace {

void gemm_row_panels_scalar(const double* a, const double* pack, std::size_t k,
                            std::size_t n_panels, double* out) {
  for (std::size_t p = 0; p < n_panels; ++p) {
    const double* panel = pack + p * 4 * k;
    double acc0 = 0.0;
    double acc1 = 0.0;
    double acc2 = 0.0;
    double acc3 = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      const double ai = a[i];
      acc0 += ai * panel[i * 4 + 0];
      acc1 += ai * panel[i * 4 + 1];
      acc2 += ai * panel[i * 4 + 2];
      acc3 += ai * panel[i * 4 + 3];
    }
    out[p * 4 + 0] = acc0;
    out[p * 4 + 1] = acc1;
    out[p * 4 + 2] = acc2;
    out[p * 4 + 3] = acc3;
  }
}

double abs_max_scalar(const double* v, std::size_t n) {
  double best = 0.0;
  for (std::size_t i = 0; i < n; ++i) best = std::max(best, std::abs(v[i]));
  return best;
}

double arm_sum_diag_scalar(const double* a, const double* detune,
                           const double* delta_sq, double full,
                           std::size_t len) {
  double sum = 0.0;
  for (std::size_t i = 0; i < len; ++i) {
    const double d = detune[i];
    sum += a[i] * (1.0 - full * delta_sq[i] / (d * d + delta_sq[i]));
  }
  return sum;
}

double arm_sum_xtalk_scalar(const double* a, const double* detune,
                            const double* sep, std::size_t sep_stride,
                            const double* delta_sq, double full,
                            std::size_t len) {
  double sum = 0.0;
  for (std::size_t i = 0; i < len; ++i) {
    double power = a[i];
    if (power == 0.0) continue;  // 0 * T == 0 for every finite T.
    const double* sep_row = sep + i * sep_stride;
    for (std::size_t j = 0; j < len; ++j) {
      const double d = sep_row[j] + detune[j];  // lambda_i - (lambda_j - detune_j)
      power *= 1.0 - full * delta_sq[j] / (d * d + delta_sq[j]);
    }
    sum += power;
  }
  return sum;
}

double arm_pair_diag_tbl_scalar(const double* a, const unsigned char* sel,
                                const double* carry, const double* idle,
                                std::size_t len) {
  double pos = 0.0;
  double neg = 0.0;
  for (std::size_t i = 0; i < len; ++i) {
    const double tp = sel[i] ? idle[i] : carry[i];
    const double tn = sel[i] ? carry[i] : idle[i];
    pos += a[i] * tp;
    neg += a[i] * tn;
  }
  return pos - neg;
}

double arm_pair_xtalk_tbl_scalar(const double* a, const unsigned char* sel,
                                 const double* carry, const double* idle,
                                 std::size_t len) {
  double pos = 0.0;
  double neg = 0.0;
  for (std::size_t i = 0; i < len; ++i) {
    double pp = a[i];
    if (pp == 0.0) continue;  // 0 * T == 0 for every finite T.
    double pn = pp;
    for (std::size_t j = 0; j < len; ++j) {
      const double c = carry[j * len + i];
      const double d = idle[j * len + i];
      pp *= sel[j] ? d : c;
      pn *= sel[j] ? c : d;
    }
    pos += pp;
    neg += pn;
  }
  return pos - neg;
}

void hash_gaussian_keys_scalar(const std::uint64_t* keys, std::size_t n,
                               double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = hash_gaussian(keys[i]);
}

void hash_gaussian_n_scalar(std::uint64_t key, std::uint64_t base_counter,
                            std::size_t n, double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = hash_gaussian(
        hash_combine(key, base_counter + static_cast<std::uint64_t>(i)));
  }
}

constexpr KernelTable kScalarTable = {
    gemm_row_panels_scalar,   abs_max_scalar,
    arm_sum_diag_scalar,      arm_sum_xtalk_scalar,
    arm_pair_diag_tbl_scalar, arm_pair_xtalk_tbl_scalar,
    hash_gaussian_keys_scalar, hash_gaussian_n_scalar,
    "scalar",
};

// [[maybe_unused]]: only referenced when the AVX2 TU is compiled in.
[[maybe_unused]] bool simd_disabled_by_env() noexcept {
  const char* v = std::getenv("XL_DISABLE_SIMD");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

const KernelTable& resolve() noexcept {
#if defined(XL_KERNELS_AVX2)
  // The probe runs here, in a baseline-ISA TU, so no AVX2 instruction is
  // ever executed before the CPU has confirmed support.
  if (!simd_disabled_by_env() && __builtin_cpu_supports("avx2") &&
      __builtin_cpu_supports("fma")) {
    return detail::avx2_table();
  }
#endif
  return kScalarTable;
}

}  // namespace

const KernelTable& scalar_table() noexcept { return kScalarTable; }

const KernelTable& active_table() noexcept {
  static const KernelTable& table = resolve();
  return table;
}

Isa active_isa() noexcept {
  return &active_table() == &kScalarTable ? Isa::kScalar : Isa::kAvx2;
}

const char* active_isa_name() noexcept { return active_table().name; }

bool simd_compiled() noexcept {
#if defined(XL_KERNELS_AVX2)
  return true;
#else
  return false;
#endif
}

}  // namespace xl::numerics::kernels
