// AVX2+FMA kernel table.
//
// This is the only translation unit compiled with -mavx2 -mfma (and
// -ffp-contract=off, see below); nothing here runs unless kernels.cpp's
// resolve() has confirmed CPU support at runtime, so the rest of the binary
// stays baseline-ISA clean.
//
// Bit-identity with the scalar table is preserved by construction:
//   * lanes map to independent outputs (GEMM columns, VDP channels, RNG
//     samples) — no reduction is ever split across lanes;
//   * every lane executes the same mul/add/div/sub sequence as the scalar
//     reference. -ffp-contract=off is load-bearing: without it GCC fuses
//     _mm256_mul_pd + _mm256_add_pd into one-rounding FMA, which would break
//     the two-rounding scalar contract;
//   * cross-lane sums are extracted and accumulated in scalar index order;
//   * vsqrtpd and the u64->double conversion are exact; log/cos route
//     through the scalar libm calls, one lane at a time.
#include "numerics/kernels.hpp"

#if defined(XL_KERNELS_AVX2)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "numerics/rng.hpp"  // scalar hash_gaussian/hash_combine for tails

namespace xl::numerics::kernels {
namespace {

// --- GEMM ------------------------------------------------------------------

/// One 4-column packed panel: lane j accumulates column 4p+j sequentially
/// over i (add chain per lane, two roundings per element).
inline __m256d panel_accumulate(const double* a, const double* panel,
                                std::size_t k) {
  __m256d acc = _mm256_setzero_pd();
  for (std::size_t i = 0; i < k; ++i) {
    const __m256d ai = _mm256_broadcast_sd(a + i);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(ai, _mm256_loadu_pd(panel + i * 4)));
  }
  return acc;
}

void gemm_row_panels_avx2(const double* a, const double* pack, std::size_t k,
                          std::size_t n_panels, double* out) {
  // Four panels (16 output columns) per pass: four independent add chains
  // hide the vaddpd latency; each chain is still strictly sequential over i.
  std::size_t p = 0;
  for (; p + 4 <= n_panels; p += 4) {
    const double* p0 = pack + (p + 0) * 4 * k;
    const double* p1 = pack + (p + 1) * 4 * k;
    const double* p2 = pack + (p + 2) * 4 * k;
    const double* p3 = pack + (p + 3) * 4 * k;
    __m256d a0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd();
    __m256d a2 = _mm256_setzero_pd();
    __m256d a3 = _mm256_setzero_pd();
    for (std::size_t i = 0; i < k; ++i) {
      const __m256d ai = _mm256_broadcast_sd(a + i);
      a0 = _mm256_add_pd(a0, _mm256_mul_pd(ai, _mm256_loadu_pd(p0 + i * 4)));
      a1 = _mm256_add_pd(a1, _mm256_mul_pd(ai, _mm256_loadu_pd(p1 + i * 4)));
      a2 = _mm256_add_pd(a2, _mm256_mul_pd(ai, _mm256_loadu_pd(p2 + i * 4)));
      a3 = _mm256_add_pd(a3, _mm256_mul_pd(ai, _mm256_loadu_pd(p3 + i * 4)));
    }
    _mm256_storeu_pd(out + (p + 0) * 4, a0);
    _mm256_storeu_pd(out + (p + 1) * 4, a1);
    _mm256_storeu_pd(out + (p + 2) * 4, a2);
    _mm256_storeu_pd(out + (p + 3) * 4, a3);
  }
  for (; p < n_panels; ++p) {
    _mm256_storeu_pd(out + p * 4, panel_accumulate(a, pack + p * 4 * k, k));
  }
}

// --- row |.| max -----------------------------------------------------------

double abs_max_avx2(const double* v, std::size_t n) {
  // |.| and max are exact operations, so lane order is free (non-NaN input
  // per the header contract).
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  __m256d m0 = _mm256_setzero_pd();
  __m256d m1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    m0 = _mm256_max_pd(m0, _mm256_andnot_pd(sign_mask, _mm256_loadu_pd(v + i)));
    m1 = _mm256_max_pd(m1,
                       _mm256_andnot_pd(sign_mask, _mm256_loadu_pd(v + i + 4)));
  }
  if (i + 4 <= n) {
    m0 = _mm256_max_pd(m0, _mm256_andnot_pd(sign_mask, _mm256_loadu_pd(v + i)));
    i += 4;
  }
  const __m256d m = _mm256_max_pd(m0, m1);
  const __m128d hi = _mm256_extractf128_pd(m, 1);
  __m128d best2 = _mm_max_pd(_mm256_castpd256_pd128(m), hi);
  best2 = _mm_max_sd(best2, _mm_unpackhi_pd(best2, best2));
  double best = _mm_cvtsd_f64(best2);
  for (; i < n; ++i) best = std::max(best, std::abs(v[i]));
  return best;
}

// --- Lorentzian arm sums ---------------------------------------------------

void store4(double* buf, __m256d v) { _mm256_storeu_pd(buf, v); }

double arm_sum_diag_avx2(const double* a, const double* detune,
                         const double* delta_sq, double full,
                         std::size_t len) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d fullv = _mm256_set1_pd(full);
  double sum = 0.0;
  double buf[4];
  std::size_t i = 0;
  for (; i + 4 <= len; i += 4) {
    const __m256d d = _mm256_loadu_pd(detune + i);
    const __m256d dsq = _mm256_loadu_pd(delta_sq + i);
    // Lane i: a[i] * (1 - full*dsq[i] / (d*d + dsq[i])) — the exact scalar
    // expression tree, one lane per channel.
    const __m256d den = _mm256_add_pd(_mm256_mul_pd(d, d), dsq);
    const __m256d q = _mm256_div_pd(_mm256_mul_pd(fullv, dsq), den);
    const __m256d pr = _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_sub_pd(one, q));
    store4(buf, pr);
    sum += buf[0];
    sum += buf[1];
    sum += buf[2];
    sum += buf[3];
  }
  for (; i < len; ++i) {
    const double d = detune[i];
    sum += a[i] * (1.0 - full * delta_sq[i] / (d * d + delta_sq[i]));
  }
  return sum;
}

double arm_sum_xtalk_avx2(const double* a, const double* detune,
                          const double* sep, std::size_t sep_stride,
                          const double* delta_sq, double full,
                          std::size_t len) {
  const __m256d one = _mm256_set1_pd(1.0);
  double sum = 0.0;
  double buf[4];
  std::size_t i0 = 0;
  for (; i0 + 4 <= len; i0 += 4) {
    // Lanes = 4 channels; each lane's per-ring transmission product runs
    // sequentially over j, exactly as the scalar channel loop.
    __m256d power = _mm256_loadu_pd(a + i0);
    const double* r0 = sep + (i0 + 0) * sep_stride;
    const double* r1 = sep + (i0 + 1) * sep_stride;
    const double* r2 = sep + (i0 + 2) * sep_stride;
    const double* r3 = sep + (i0 + 3) * sep_stride;
    for (std::size_t j = 0; j < len; ++j) {
      const __m256d sepv = _mm256_set_pd(r3[j], r2[j], r1[j], r0[j]);
      const __m256d d = _mm256_add_pd(sepv, _mm256_broadcast_sd(detune + j));
      // full * delta_sq[j] is lane-uniform: one scalar mul, same rounding as
      // every scalar (i, j) evaluation of the same subexpression.
      const __m256d num = _mm256_set1_pd(full * delta_sq[j]);
      const __m256d den =
          _mm256_add_pd(_mm256_mul_pd(d, d), _mm256_broadcast_sd(delta_sq + j));
      power = _mm256_mul_pd(power,
                            _mm256_sub_pd(one, _mm256_div_pd(num, den)));
    }
    store4(buf, power);
    // Scalar index order, honoring the a[i] == 0 skip (the lane computed a
    // harmless all-zero product; transmissions are finite so 0 * T == 0).
    for (std::size_t lane = 0; lane < 4; ++lane) {
      if (a[i0 + lane] != 0.0) sum += buf[lane];
    }
  }
  for (; i0 < len; ++i0) {
    double power = a[i0];
    if (power == 0.0) continue;
    const double* sep_row = sep + i0 * sep_stride;
    for (std::size_t j = 0; j < len; ++j) {
      const double d = sep_row[j] + detune[j];
      power *= 1.0 - full * delta_sq[j] / (d * d + delta_sq[j]);
    }
    sum += power;
  }
  return sum;
}

double arm_pair_diag_tbl_avx2(const double* a, const unsigned char* sel,
                              const double* carry, const double* idle,
                              std::size_t len) {
  double pos = 0.0;
  double neg = 0.0;
  double bufp[4];
  double bufn[4];
  std::size_t i = 0;
  for (; i + 4 <= len; i += 4) {
    // Selects are resolved in scalar code; the lane arithmetic is the single
    // mul the scalar loop performs on the identical table values.
    const __m256d tp = _mm256_set_pd(sel[i + 3] ? idle[i + 3] : carry[i + 3],
                                     sel[i + 2] ? idle[i + 2] : carry[i + 2],
                                     sel[i + 1] ? idle[i + 1] : carry[i + 1],
                                     sel[i + 0] ? idle[i + 0] : carry[i + 0]);
    const __m256d tn = _mm256_set_pd(sel[i + 3] ? carry[i + 3] : idle[i + 3],
                                     sel[i + 2] ? carry[i + 2] : idle[i + 2],
                                     sel[i + 1] ? carry[i + 1] : idle[i + 1],
                                     sel[i + 0] ? carry[i + 0] : idle[i + 0]);
    const __m256d av = _mm256_loadu_pd(a + i);
    store4(bufp, _mm256_mul_pd(av, tp));
    store4(bufn, _mm256_mul_pd(av, tn));
    pos += bufp[0];
    pos += bufp[1];
    pos += bufp[2];
    pos += bufp[3];
    neg += bufn[0];
    neg += bufn[1];
    neg += bufn[2];
    neg += bufn[3];
  }
  for (; i < len; ++i) {
    pos += a[i] * (sel[i] ? idle[i] : carry[i]);
    neg += a[i] * (sel[i] ? carry[i] : idle[i]);
  }
  return pos - neg;
}

double arm_pair_xtalk_tbl_avx2(const double* a, const unsigned char* sel,
                               const double* carry, const double* idle,
                               std::size_t len) {
  double pos = 0.0;
  double neg = 0.0;
  double bufp[4];
  double bufn[4];
  std::size_t i0 = 0;
  for (; i0 + 4 <= len; i0 += 4) {
    // Lanes = 4 channels; ring j's column-major table slice t[j*len + i0..]
    // is a contiguous 4-lane load, sel[j] is lane-uniform, and both arm
    // products share the loads.
    __m256d pp = _mm256_loadu_pd(a + i0);
    __m256d pn = pp;
    for (std::size_t j = 0; j < len; ++j) {
      const __m256d c = _mm256_loadu_pd(carry + j * len + i0);
      const __m256d d = _mm256_loadu_pd(idle + j * len + i0);
      if (sel[j]) {
        pp = _mm256_mul_pd(pp, d);
        pn = _mm256_mul_pd(pn, c);
      } else {
        pp = _mm256_mul_pd(pp, c);
        pn = _mm256_mul_pd(pn, d);
      }
    }
    store4(bufp, pp);
    store4(bufn, pn);
    // Scalar index order, honoring the a[i] == 0 skip (the lane computed a
    // harmless all-zero product; transmissions are finite so 0 * T == 0).
    for (std::size_t lane = 0; lane < 4; ++lane) {
      if (a[i0 + lane] != 0.0) {
        pos += bufp[lane];
        neg += bufn[lane];
      }
    }
  }
  for (; i0 < len; ++i0) {
    double pp = a[i0];
    if (pp == 0.0) continue;
    double pn = pp;
    for (std::size_t j = 0; j < len; ++j) {
      const double c = carry[j * len + i0];
      const double d = idle[j * len + i0];
      pp *= sel[j] ? d : c;
      pn *= sel[j] ? c : d;
    }
    pos += pp;
    neg += pn;
  }
  return pos - neg;
}

// --- counter-keyed gaussian sampler ----------------------------------------

// 64-bit lane arithmetic AVX2 lacks natively: a*b mod 2^64 from 32x32->64
// partial products.
inline __m256i mullo64(__m256i x, __m256i y) {
  const __m256i x_hi = _mm256_srli_epi64(x, 32);
  const __m256i y_hi = _mm256_srli_epi64(y, 32);
  const __m256i lo = _mm256_mul_epu32(x, y);            // x_lo * y_lo (full 64)
  const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(x_hi, y),
                                         _mm256_mul_epu32(x, y_hi));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

inline __m256i splitmix64_v(__m256i x) {
  x = _mm256_add_epi64(x, _mm256_set1_epi64x(0x9E3779B97F4A7C15ULL));
  x = mullo64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 30)),
              _mm256_set1_epi64x(0xBF58476D1CE4E5B9ULL));
  x = mullo64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 27)),
              _mm256_set1_epi64x(0x94D049BB133111EBULL));
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
}

inline __m256i hash_combine_v(__m256i h, __m256i v) {
  __m256i t = _mm256_add_epi64(v, _mm256_set1_epi64x(0x9E3779B97F4A7C15ULL));
  t = _mm256_add_epi64(t, _mm256_slli_epi64(h, 6));
  t = _mm256_add_epi64(t, _mm256_srli_epi64(h, 2));
  return splitmix64_v(_mm256_xor_si256(h, t));
}

/// Exact u64 -> double for values < 2^53 (the >> 11 mantissae): split into
/// 32-bit halves, convert each exactly via the 2^52 bias trick, recombine —
/// every step is exact, so the result equals the scalar static_cast.
inline __m256d u64_small_to_pd(__m256i v) {
  const __m256d two52 = _mm256_set1_pd(0x1.0p52);
  const __m256i lo = _mm256_and_si256(v, _mm256_set1_epi64x(0xFFFFFFFFLL));
  const __m256i hi = _mm256_srli_epi64(v, 32);
  const __m256d dlo = _mm256_sub_pd(
      _mm256_castsi256_pd(_mm256_or_si256(lo, _mm256_castpd_si256(two52))), two52);
  const __m256d dhi = _mm256_sub_pd(
      _mm256_castsi256_pd(_mm256_or_si256(hi, _mm256_castpd_si256(two52))), two52);
  return _mm256_add_pd(_mm256_mul_pd(dhi, _mm256_set1_pd(0x1.0p32)), dlo);
}

/// hash_unit over 4 lanes: top-53-bit mantissa scaled by 2^-53 (exact).
inline __m256d hash_unit_v(__m256i key) {
  const __m256i mant = _mm256_srli_epi64(splitmix64_v(key), 11);
  return _mm256_mul_pd(u64_small_to_pd(mant), _mm256_set1_pd(0x1.0p-53));
}

/// Box-Muller over 4 keyed lanes; must match numerics::hash_gaussian bit for
/// bit (kTau literal identical to rng.cpp's).
inline void gaussian4(__m256i keys, double* out) {
  constexpr double kTau = 6.283185307179586476925286766559;
  const __m256d u1 = hash_unit_v(hash_combine_v(keys, _mm256_set1_epi64x(1)));
  const __m256d u2 = hash_unit_v(hash_combine_v(keys, _mm256_set1_epi64x(2)));
  double lbuf[4];
  store4(lbuf, _mm256_sub_pd(_mm256_set1_pd(1.0), u1));
  for (double& l : lbuf) l = std::log(l);  // scalar libm, one lane at a time
  const __m256d r = _mm256_sqrt_pd(
      _mm256_mul_pd(_mm256_set1_pd(-2.0), _mm256_loadu_pd(lbuf)));
  double cbuf[4];
  store4(cbuf, _mm256_mul_pd(_mm256_set1_pd(kTau), u2));
  for (double& c : cbuf) c = std::cos(c);
  _mm256_storeu_pd(out, _mm256_mul_pd(r, _mm256_loadu_pd(cbuf)));
}

void hash_gaussian_keys_avx2(const std::uint64_t* keys, std::size_t n,
                             double* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    gaussian4(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i)),
              out + i);
  }
  for (; i < n; ++i) out[i] = hash_gaussian(keys[i]);
}

void hash_gaussian_n_avx2(std::uint64_t key, std::uint64_t base_counter,
                          std::size_t n, double* out) {
  const __m256i keyv = _mm256_set1_epi64x(static_cast<long long>(key));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const std::uint64_t c = base_counter + i;  // wraps mod 2^64, as scalar
    const __m256i ctr = _mm256_add_epi64(
        _mm256_set1_epi64x(static_cast<long long>(c)),
        _mm256_set_epi64x(3, 2, 1, 0));
    gaussian4(hash_combine_v(keyv, ctr), out + i);
  }
  for (; i < n; ++i) {
    out[i] = hash_gaussian(
        hash_combine(key, base_counter + static_cast<std::uint64_t>(i)));
  }
}

constexpr KernelTable kAvx2Table = {
    gemm_row_panels_avx2,   abs_max_avx2,
    arm_sum_diag_avx2,      arm_sum_xtalk_avx2,
    arm_pair_diag_tbl_avx2, arm_pair_xtalk_tbl_avx2,
    hash_gaussian_keys_avx2, hash_gaussian_n_avx2,
    "avx2",
};

}  // namespace

namespace detail {
const KernelTable& avx2_table() noexcept { return kAvx2Table; }
}  // namespace detail

}  // namespace xl::numerics::kernels

#endif  // XL_KERNELS_AVX2
