#include "numerics/polyfit.hpp"

#include <cmath>
#include <stdexcept>

#include "numerics/matrix.hpp"
#include "numerics/solver.hpp"
#include "numerics/stats.hpp"

namespace xl::numerics {

std::vector<double> polyfit(std::span<const double> xs, std::span<const double> ys,
                            int degree) {
  if (degree < 0) throw std::invalid_argument("polyfit: negative degree");
  if (xs.size() != ys.size()) throw std::invalid_argument("polyfit: size mismatch");
  const std::size_t n_coeff = static_cast<std::size_t>(degree) + 1;
  if (xs.size() < n_coeff) throw std::invalid_argument("polyfit: underdetermined");

  Matrix vander(xs.size(), n_coeff);
  for (std::size_t r = 0; r < xs.size(); ++r) {
    double p = 1.0;
    for (std::size_t c = 0; c < n_coeff; ++c) {
      vander(r, c) = p;
      p *= xs[r];
    }
  }
  const Vector sol = least_squares(vander, Vector(std::vector<double>(ys.begin(), ys.end())));
  return {sol.begin(), sol.end()};
}

double polyval(std::span<const double> coeffs, double x) {
  double acc = 0.0;
  for (std::size_t i = coeffs.size(); i-- > 0;) acc = acc * x + coeffs[i];
  return acc;
}

double ExponentialFit::operator()(double x) const { return a * std::exp(b * x); }

ExponentialFit fit_exponential(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("fit_exponential: need >= 2 matched samples");
  }
  std::vector<double> log_y(ys.size());
  for (std::size_t i = 0; i < ys.size(); ++i) {
    if (ys[i] <= 0.0) throw std::invalid_argument("fit_exponential: y must be positive");
    log_y[i] = std::log(ys[i]);
  }
  const std::vector<double> coeffs = polyfit(xs, log_y, 1);
  return ExponentialFit{std::exp(coeffs[0]), coeffs[1]};
}

double r_squared(std::span<const double> y_true, std::span<const double> y_pred) {
  if (y_true.size() != y_pred.size() || y_true.empty()) {
    throw std::invalid_argument("r_squared: size mismatch or empty");
  }
  const double m = mean(y_true);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    ss_res += (y_true[i] - y_pred[i]) * (y_true[i] - y_pred[i]);
    ss_tot += (y_true[i] - m) * (y_true[i] - m);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace xl::numerics
