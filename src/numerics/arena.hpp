// Bump-pointer arena workspace for the zero-allocation inference hot path.
//
// An Arena owns one or more 64-byte-aligned memory blocks and hands out
// monotonically bumped sub-allocations. The intended discipline (see
// core/execution_plan.hpp) is: a compiled ExecutionPlan carves its fixed
// activation/workspace buffers once at compile time, then per-request scratch
// (activation tables, GEMM outputs) is marked/rewound around each engine
// call — so the steady state performs zero heap allocations.
//
// Exhaustion is handled by *regrowing*: when an allocation does not fit, the
// arena appends an overflow block (counted in ArenaStats::regrows) instead of
// failing, so a mis-sized plan stays correct and merely loses the zero-alloc
// property until the next reset() coalesces all blocks into one. Outstanding
// pointers stay valid across a regrow — old blocks are never freed until
// reset().
//
// Thread safety: none. One arena per shard/engine, driven by one worker
// thread at a time (the serving runtime's shard ownership model).
#pragma once

#include <cstddef>
#include <span>
#include <type_traits>
#include <vector>

namespace xl::numerics {

/// Telemetry of one arena (exposed by benches/tests via the plan).
struct ArenaStats {
  std::size_t capacity_bytes = 0;    ///< Summed block capacity.
  std::size_t used_bytes = 0;        ///< Currently bumped bytes.
  std::size_t high_water_bytes = 0;  ///< Max used_bytes ever observed.
  std::size_t allocations = 0;       ///< allocate() calls served.
  std::size_t resets = 0;            ///< reset() calls.
  std::size_t regrows = 0;           ///< Overflow blocks appended.
};

class Arena {
 public:
  Arena() = default;
  /// Arena with an initial block of `capacity_bytes` (rounded up to 64).
  explicit Arena(std::size_t capacity_bytes);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Grow the primary block to at least `bytes`. Only legal while the arena
  /// is empty (used_bytes == 0): existing sub-allocations would dangle.
  /// Throws std::logic_error otherwise.
  void reserve(std::size_t bytes);

  /// Bump-allocate `bytes` aligned to `align` (a power of two <= 64; every
  /// block is 64-byte aligned, so larger alignments are not supported —
  /// throws std::invalid_argument). Never returns nullptr: on exhaustion an
  /// overflow block is appended (ArenaStats::regrows). The memory is
  /// uninitialized.
  void* allocate(std::size_t bytes, std::size_t align = 64);

  /// Typed convenience: `count` default-uninitialized elements of a
  /// trivially-destructible T.
  template <typename T>
  [[nodiscard]] std::span<T> make_span(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    return {static_cast<T*>(allocate(count * sizeof(T), alignof(T))), count};
  }

  /// LIFO rewind point (see mark()/rewind()).
  struct Marker {
    std::size_t block = 0;
    std::size_t used = 0;
  };

  /// Snapshot the bump position; rewind(m) frees (logically) everything
  /// allocated after mark(). Overflow blocks appended in between are kept
  /// empty for reuse, so rewinding never touches the heap.
  [[nodiscard]] Marker mark() const noexcept;
  void rewind(const Marker& m);

  /// Rewind everything and coalesce: if overflow blocks exist, all blocks
  /// are replaced by one block of the summed capacity, so the next epoch of
  /// identical allocations fits without regrowing.
  void reset();

  [[nodiscard]] const ArenaStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return stats_.capacity_bytes;
  }

 private:
  struct Block {
    void* data = nullptr;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  static void* block_alloc(std::size_t bytes);
  static void block_free(void* p) noexcept;
  void append_block(std::size_t min_bytes);
  void refresh_used() noexcept;

  std::vector<Block> blocks_;
  std::size_t cur_ = 0;  ///< Block currently being bumped.
  ArenaStats stats_;
};

}  // namespace xl::numerics
