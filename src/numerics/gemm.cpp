#include "numerics/gemm.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace xl::numerics {

Vector row_abs_max(const Matrix& m) {
  Vector out(m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double best = 0.0;
    for (const double v : m.row(r)) best = std::max(best, std::abs(v));
    out[r] = best;
  }
  return out;
}

Matrix matmul_transposed(const Matrix& a, const Matrix& b, std::size_t tile) {
  if (a.cols() != b.cols()) {
    throw std::invalid_argument("matmul_transposed: inner dimension mismatch");
  }
  if (tile == 0) tile = 64;
  const std::size_t m = a.rows();
  const std::size_t n = b.rows();
  const std::size_t k = a.cols();
  Matrix c(m, n);

  const auto row_tiles = static_cast<std::int64_t>((m + tile - 1) / tile);
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::int64_t rt = 0; rt < row_tiles; ++rt) {
    const std::size_t r0 = static_cast<std::size_t>(rt) * tile;
    const std::size_t r1 = std::min(m, r0 + tile);
    for (std::size_t c0 = 0; c0 < n; c0 += tile) {
      const std::size_t c1 = std::min(n, c0 + tile);
      for (std::size_t r = r0; r < r1; ++r) {
        const std::span<const double> arow = a.row(r);
        for (std::size_t col = c0; col < c1; ++col) {
          const std::span<const double> brow = b.row(col);
          double acc = 0.0;
          for (std::size_t i = 0; i < k; ++i) acc += arow[i] * brow[i];
          c(r, col) = acc;
        }
      }
    }
  }
  return c;
}

}  // namespace xl::numerics
