#include "numerics/gemm.hpp"

#include <algorithm>
#include <cstdint>
#include <span>
#include <stdexcept>

#include "exec/exec.hpp"
#include "numerics/aligned.hpp"
#include "numerics/kernels.hpp"

namespace xl::numerics {

Vector row_abs_max(const Matrix& m) {
  const kernels::KernelTable& kt = kernels::active_table();
  Vector out(m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const std::span<const double> row = m.row(r);
    out[r] = kt.abs_max(row.data(), row.size());
  }
  return out;
}

Matrix matmul_transposed(const Matrix& a, const Matrix& b, std::size_t tile) {
  if (a.cols() != b.cols()) {
    throw std::invalid_argument("matmul_transposed: inner dimension mismatch");
  }
  // Default tile = 64 rows of A per work item: wide enough that the packed-B
  // streaming below is amortized across many dot products per OpenMP task,
  // narrow enough to load-balance small batches across threads. (Column
  // blocking of the pre-kernel implementation is superseded by panel
  // packing: B is read once into a cache-friendly interleaved layout.)
  if (tile == 0) tile = 64;
  const std::size_t m = a.rows();
  const std::size_t n = b.rows();
  const std::size_t k = a.cols();
  Matrix c(m, n);
  if (m == 0 || n == 0) return c;

  const kernels::KernelTable& kt = kernels::active_table();

  // Pack B's rows (the output columns) into 4-column interleaved panels,
  // once per GEMM, shared read-only by every thread. Each output element
  // still accumulates strictly sequentially over k, so results are
  // bit-identical to the unpacked scalar loop.
  const std::size_t n_panels = n / 4;
  AlignedVector pack(n_panels * 4 * k);
  for (std::size_t p = 0; p < n_panels; ++p) {
    double* panel = pack.data() + p * 4 * k;
    for (std::size_t j = 0; j < 4; ++j) {
      const std::span<const double> brow = b.row(p * 4 + j);
      for (std::size_t i = 0; i < k; ++i) panel[i * 4 + j] = brow[i];
    }
  }

  const std::size_t row_tiles = (m + tile - 1) / tile;
  // Each work item is one `tile`-row panel of C; rows never overlap, so the
  // tiles write disjoint output and results are bit-identical under any
  // threading (the per-element k accumulation is strictly sequential).
  const auto run_row_tile = [&](std::size_t rt) {
    const std::size_t r0 = rt * tile;
    const std::size_t r1 = std::min(m, r0 + tile);
    for (std::size_t r = r0; r < r1; ++r) {
      const std::span<const double> arow = a.row(r);
      if (n_panels > 0) {
        kt.gemm_row_panels(arow.data(), pack.data(), k, n_panels, &c(r, 0));
      }
    }
    // Tail columns (n % 4): scalar dot per column, with the b-row span
    // hoisted out of the row loop instead of re-materialized per element.
    for (std::size_t col = n_panels * 4; col < n; ++col) {
      const std::span<const double> brow = b.row(col);
      for (std::size_t r = r0; r < r1; ++r) {
        const std::span<const double> arow = a.row(r);
        double acc = 0.0;
        for (std::size_t i = 0; i < k; ++i) acc += arow[i] * brow[i];
        c(r, col) = acc;
      }
    }
  };
#if defined(XL_USE_OPENMP) && defined(_OPENMP)
#pragma omp parallel for schedule(static)
  for (std::int64_t rt = 0; rt < static_cast<std::int64_t>(row_tiles); ++rt) {
    run_row_tile(static_cast<std::size_t>(rt));
  }
#else
  exec::parallel_for(0, row_tiles, 1,
                     [&](std::size_t t0, std::size_t t1, std::size_t) {
                       for (std::size_t rt = t0; rt < t1; ++rt) run_row_tile(rt);
                     });
#endif
  return c;
}

}  // namespace xl::numerics
