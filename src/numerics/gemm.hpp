// Tiled dense matrix kernels backing the batched photonic execution engine.
//
// The engine's GEMM shape is Y = X * W^T with X = (batch x K) activations and
// W = (outputs x K) weight rows, both row-major — so the transposed-B product
// walks contiguous memory on every operand. A cache-blocked exact kernel is
// provided for the electronic reference path, plus the per-row max-magnitude
// reduction the DAC normalization stage needs.
//
// Both entry points route through the runtime-dispatched ISA kernel layer
// (numerics/kernels.hpp): an AVX2+FMA microkernel over packed 4-column
// B panels when the CPU supports it, the scalar reference otherwise.
// Results are bit-identical across ISAs (and to the historical unpacked
// scalar loop): every output element accumulates strictly sequentially
// over K in its own SIMD lane.
#pragma once

#include <cstddef>

#include "numerics/matrix.hpp"

namespace xl::numerics {

/// Per-row max |.| of a row-major matrix (the DAC row-normalization kernel).
/// Returns a vector of m.rows() entries; zero rows yield 0.
[[nodiscard]] Vector row_abs_max(const Matrix& m);

/// C = A * B^T: A is (m x k), B is (n x k), C is (m x n). Throws
/// std::invalid_argument on inner-dimension mismatch. Parallelized over row
/// tiles (`tile` rows of A per OpenMP work item; 0 selects the default of
/// 64, documented in the implementation) — results are deterministic and
/// tile-independent (each output element is owned by exactly one iteration
/// and accumulates in a fixed order).
[[nodiscard]] Matrix matmul_transposed(const Matrix& a, const Matrix& b,
                                       std::size_t tile = 64);

}  // namespace xl::numerics
