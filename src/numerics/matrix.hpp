// Dense row-major matrix and vector types used throughout CrossLight.
//
// The accelerator model needs only small/medium dense linear algebra
// (thermal coupling matrices over MR banks, TED eigen-decompositions,
// DNN weight tensors are handled separately in xl_dnn). We therefore
// provide a compact, well-tested double-precision implementation rather
// than pulling in an external BLAS.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "numerics/aligned.hpp"

namespace xl::numerics {

/// Dense column vector of doubles.
class Vector {
 public:
  Vector() = default;
  /// Zero-initialized vector of dimension n.
  explicit Vector(std::size_t n) : data_(n, 0.0) {}
  Vector(std::size_t n, double fill) : data_(n, fill) {}
  Vector(std::initializer_list<double> init) : data_(init) {}
  explicit Vector(std::vector<double> values) : data_(std::move(values)) {}

  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  double& operator[](std::size_t i) { return data_[i]; }
  double operator[](std::size_t i) const { return data_[i]; }

  /// Bounds-checked access; throws std::out_of_range.
  double& at(std::size_t i) { return data_.at(i); }
  [[nodiscard]] double at(std::size_t i) const { return data_.at(i); }

  [[nodiscard]] std::span<const double> span() const noexcept { return data_; }
  [[nodiscard]] std::span<double> span() noexcept { return data_; }
  [[nodiscard]] const std::vector<double>& data() const noexcept { return data_; }

  Vector& operator+=(const Vector& rhs);
  Vector& operator-=(const Vector& rhs);
  Vector& operator*=(double s) noexcept;

  [[nodiscard]] double dot(const Vector& rhs) const;
  [[nodiscard]] double norm2() const noexcept;       ///< Euclidean norm.
  [[nodiscard]] double norm_inf() const noexcept;    ///< max |x_i|.
  [[nodiscard]] double sum() const noexcept;
  [[nodiscard]] double max() const;                  ///< throws if empty.
  [[nodiscard]] double min() const;                  ///< throws if empty.

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  [[nodiscard]] auto begin() const { return data_.begin(); }
  [[nodiscard]] auto end() const { return data_.end(); }

 private:
  std::vector<double> data_;
};

[[nodiscard]] Vector operator+(Vector lhs, const Vector& rhs);
[[nodiscard]] Vector operator-(Vector lhs, const Vector& rhs);
[[nodiscard]] Vector operator*(Vector lhs, double s);
[[nodiscard]] Vector operator*(double s, Vector rhs);

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  /// Zero-initialized rows x cols matrix.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}
  Matrix(std::size_t rows, std::size_t cols, double fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  /// Construct from nested initializer list; all rows must be equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  [[nodiscard]] static Matrix identity(std::size_t n);
  /// Diagonal matrix from a vector.
  [[nodiscard]] static Matrix diag(const Vector& d);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Bounds-checked access; throws std::out_of_range.
  double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  [[nodiscard]] std::span<const double> row(std::size_t r) const;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s) noexcept;

  [[nodiscard]] Matrix transposed() const;
  [[nodiscard]] Vector matvec(const Vector& x) const;     ///< A * x
  [[nodiscard]] Matrix matmul(const Matrix& rhs) const;   ///< A * B

  /// Frobenius norm.
  [[nodiscard]] double norm_frobenius() const noexcept;
  /// Maximum absolute off-diagonal element (square matrices only).
  [[nodiscard]] double max_offdiag_abs() const;
  /// true when |A(i,j) - A(j,i)| <= tol for all pairs.
  [[nodiscard]] bool is_symmetric(double tol = 1e-12) const;

  /// Human-readable dump, mostly for test diagnostics.
  [[nodiscard]] std::string to_string(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  // 64-byte aligned so the SIMD GEMM/reduction kernels never split a cache
  // line on the first lane (loads stay unaligned-safe either way).
  AlignedVector data_;
};

[[nodiscard]] Matrix operator+(Matrix lhs, const Matrix& rhs);
[[nodiscard]] Matrix operator-(Matrix lhs, const Matrix& rhs);
[[nodiscard]] Matrix operator*(Matrix lhs, double s);
[[nodiscard]] Matrix operator*(double s, Matrix rhs);
[[nodiscard]] Matrix operator*(const Matrix& lhs, const Matrix& rhs);
[[nodiscard]] Vector operator*(const Matrix& lhs, const Vector& rhs);

}  // namespace xl::numerics
