#include "numerics/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace xl::numerics {

EigenDecomposition eigen_symmetric(const Matrix& a, const JacobiOptions& opts) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("eigen_symmetric: matrix must be square");
  }
  if (!a.is_symmetric(1e-9 * (1.0 + a.norm_frobenius()))) {
    throw std::invalid_argument("eigen_symmetric: matrix must be symmetric");
  }
  const std::size_t n = a.rows();
  Matrix d = a;
  Matrix v = Matrix::identity(n);

  if (n <= 1) {
    EigenDecomposition out;
    out.eigenvalues = Vector(n);
    if (n == 1) out.eigenvalues[0] = d(0, 0);
    out.eigenvectors = v;
    return out;
  }

  bool converged = false;
  for (int sweep = 0; sweep < opts.max_sweeps && !converged; ++sweep) {
    if (d.max_offdiag_abs() <= opts.tolerance) {
      converged = true;
      break;
    }
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = d(p, q);
        if (std::abs(apq) <= opts.tolerance) continue;
        const double app = d(p, p);
        const double aqq = d(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        // Stable computation of tan(rotation angle).
        const double t = (theta >= 0.0)
                             ? 1.0 / (theta + std::sqrt(1.0 + theta * theta))
                             : 1.0 / (theta - std::sqrt(1.0 + theta * theta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double dkp = d(k, p);
          const double dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double dpk = d(p, k);
          const double dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  if (!converged && d.max_offdiag_abs() > opts.tolerance) {
    throw std::runtime_error("eigen_symmetric: Jacobi failed to converge");
  }

  // Sort eigenpairs ascending by eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return d(i, i) < d(j, j); });

  EigenDecomposition out;
  out.eigenvalues = Vector(n);
  out.eigenvectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.eigenvalues[j] = d(order[j], order[j]);
    for (std::size_t i = 0; i < n; ++i) out.eigenvectors(i, j) = v(i, order[j]);
  }
  return out;
}

double spectral_condition_number(const Matrix& a) {
  const EigenDecomposition ed = eigen_symmetric(a);
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  for (double w : ed.eigenvalues) {
    lo = std::min(lo, std::abs(w));
    hi = std::max(hi, std::abs(w));
  }
  if (lo == 0.0) return std::numeric_limits<double>::infinity();
  return hi / lo;
}

}  // namespace xl::numerics
