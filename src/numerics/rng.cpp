#include "numerics/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "numerics/kernels.hpp"

namespace xl::numerics {

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

double Rng::truncated_gaussian(double mean, double stddev, double lo, double hi,
                               int max_attempts) {
  if (lo > hi) throw std::invalid_argument("truncated_gaussian: lo > hi");
  if (stddev < 0.0) throw std::invalid_argument("truncated_gaussian: stddev < 0");
  if (max_attempts < 1) {
    throw std::invalid_argument("truncated_gaussian: max_attempts < 1");
  }
  // Point mass: rejection could never succeed, so don't burn the attempt
  // budget — the clamp is the distribution's actual support projection.
  if (stddev == 0.0) return std::clamp(mean, lo, hi);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    const double v = gaussian(mean, stddev);
    if (v >= lo && v <= hi) return v;
  }
  // Genuine exhaustion (stddev > 0, all draws rejected): fall back to the
  // nearest in-range value rather than looping unboundedly.
  return std::clamp(mean, lo, hi);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

bool Rng::bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

std::vector<double> Rng::gaussian_vector(std::size_t n, double mean, double stddev) {
  std::vector<double> out(n);
  for (double& v : out) v = gaussian(mean, stddev);
  return out;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::shuffle(idx.begin(), idx.end(), engine_);
  return idx;
}

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) noexcept {
  return splitmix64(h ^ (v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2)));
}

double hash_unit(std::uint64_t key) noexcept {
  // Top 53 bits -> [0, 1) with full double-precision granularity.
  return static_cast<double>(splitmix64(key) >> 11) * 0x1.0p-53;
}

void hash_gaussian_n(std::uint64_t key, std::uint64_t base_counter,
                     std::size_t n, double* out) noexcept {
  kernels::active_table().hash_gaussian_n(key, base_counter, n, out);
}

double hash_gaussian(std::uint64_t key) noexcept {
  // Two decorrelated uniforms from disjoint counter offsets; u1 is kept away
  // from zero so log() stays finite.
  const double u1 = hash_unit(hash_combine(key, 1));
  const double u2 = hash_unit(hash_combine(key, 2));
  constexpr double kTau = 6.283185307179586476925286766559;
  const double r = std::sqrt(-2.0 * std::log(1.0 - u1));
  return r * std::cos(kTau * u2);
}

}  // namespace xl::numerics
