#include "numerics/rng.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace xl::numerics {

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

double Rng::truncated_gaussian(double mean, double stddev, double lo, double hi) {
  if (lo > hi) throw std::invalid_argument("truncated_gaussian: lo > hi");
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double v = gaussian(mean, stddev);
    if (v >= lo && v <= hi) return v;
  }
  return std::clamp(mean, lo, hi);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

bool Rng::bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

std::vector<double> Rng::gaussian_vector(std::size_t n, double mean, double stddev) {
  std::vector<double> out(n);
  for (double& v : out) v = gaussian(mean, stddev);
  return out;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::shuffle(idx.begin(), idx.end(), engine_);
  return idx;
}

}  // namespace xl::numerics
