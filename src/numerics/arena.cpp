#include "numerics/arena.hpp"

#include <algorithm>
#include <new>
#include <stdexcept>

namespace xl::numerics {

namespace {
constexpr std::size_t kBlockAlign = 64;

std::size_t round_up(std::size_t bytes, std::size_t align) {
  return (bytes + align - 1) & ~(align - 1);
}
}  // namespace

void* Arena::block_alloc(std::size_t bytes) {
  return ::operator new(bytes, std::align_val_t{kBlockAlign});
}

void Arena::block_free(void* p) noexcept {
  ::operator delete(p, std::align_val_t{kBlockAlign});
}

Arena::Arena(std::size_t capacity_bytes) {
  if (capacity_bytes > 0) {
    append_block(capacity_bytes);
    stats_.regrows = 0;  // The initial block is not a regrow.
  }
}

Arena::~Arena() {
  for (Block& b : blocks_) {
    block_free(b.data);
  }
}

void Arena::reserve(std::size_t bytes) {
  if (stats_.used_bytes != 0) {
    throw std::logic_error("Arena::reserve: arena is not empty");
  }
  if (bytes <= stats_.capacity_bytes && blocks_.size() <= 1) {
    return;
  }
  for (Block& b : blocks_) {
    block_free(b.data);
  }
  blocks_.clear();
  cur_ = 0;
  stats_.capacity_bytes = 0;
  append_block(std::max(bytes, stats_.high_water_bytes));
  stats_.regrows = 0;
}

void Arena::append_block(std::size_t min_bytes) {
  const std::size_t prev = blocks_.empty() ? 0 : blocks_.front().size;
  const std::size_t size = round_up(std::max(min_bytes, prev), kBlockAlign);
  Block b;
  b.data = block_alloc(size);
  b.size = size;
  b.used = 0;
  blocks_.push_back(b);
  cur_ = blocks_.size() - 1;
  stats_.capacity_bytes += size;
  ++stats_.regrows;
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  if (align == 0 || (align & (align - 1)) != 0 || align > kBlockAlign) {
    throw std::invalid_argument("Arena::allocate: bad alignment");
  }
  if (bytes == 0) {
    bytes = 1;  // Keep returned pointers distinct.
  }
  while (true) {
    if (cur_ < blocks_.size()) {
      Block& b = blocks_[cur_];
      const std::size_t offset = round_up(b.used, align);
      if (offset + bytes <= b.size) {
        b.used = offset + bytes;
        ++stats_.allocations;
        refresh_used();
        return static_cast<unsigned char*>(b.data) + offset;
      }
      // Try the next block (an empty overflow block kept from a previous
      // epoch), resetting its bump position.
      if (cur_ + 1 < blocks_.size()) {
        ++cur_;
        blocks_[cur_].used = 0;
        continue;
      }
    }
    append_block(bytes);
  }
}

Arena::Marker Arena::mark() const noexcept {
  if (blocks_.empty()) {
    return {};
  }
  return {cur_, blocks_[cur_].used};
}

void Arena::rewind(const Marker& m) {
  if (blocks_.empty()) {
    return;
  }
  const std::size_t block = std::min(m.block, blocks_.size() - 1);
  for (std::size_t i = block + 1; i < blocks_.size(); ++i) {
    blocks_[i].used = 0;
  }
  blocks_[block].used = std::min(m.used, blocks_[block].size);
  cur_ = block;
  refresh_used();
}

void Arena::reset() {
  ++stats_.resets;
  if (blocks_.size() > 1) {
    // Coalesce so the next epoch of identical allocations fits in one block.
    const std::size_t total = stats_.capacity_bytes;
    for (Block& b : blocks_) {
      block_free(b.data);
    }
    blocks_.clear();
    stats_.capacity_bytes = 0;
    append_block(total);
    stats_.regrows = 0;
  }
  for (Block& b : blocks_) {
    b.used = 0;
  }
  cur_ = 0;
  stats_.used_bytes = 0;
}

void Arena::refresh_used() noexcept {
  std::size_t used = 0;
  for (const Block& b : blocks_) {
    used += b.used;
  }
  stats_.used_bytes = used;
  stats_.high_water_bytes = std::max(stats_.high_water_bytes, used);
}

}  // namespace xl::numerics
