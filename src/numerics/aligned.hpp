// Over-aligned storage for SIMD-friendly buffers.
//
// The AVX2 kernel layer (numerics/kernels.hpp) loads operands with unaligned
// instructions, so alignment is a throughput optimization rather than a
// correctness requirement — but 64-byte (cache-line) alignment keeps panel
// loads from splitting lines and leaves headroom for 512-bit ISAs. Matrix
// storage and the GEMM pack buffers allocate through this allocator.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace xl::numerics {

/// Minimal C++17 aligned allocator; propagates through std::vector so aligned
/// buffers keep value semantics (copy/move/swap) for free.
template <typename T, std::size_t Alignment = 64>
struct AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0, "alignment must be a power of two");
  static_assert(Alignment >= alignof(T), "alignment below the type's natural alignment");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    // operator new rounds the size itself; no manual padding needed.
    void* p = ::operator new(n * sizeof(T), std::align_val_t{Alignment});
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) noexcept {
    return false;
  }
};

/// Cache-line-aligned double buffer: the storage type of Matrix and of the
/// GEMM panel pack scratch.
using AlignedVector = std::vector<double, AlignedAllocator<double, 64>>;

}  // namespace xl::numerics
