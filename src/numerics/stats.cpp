#include "numerics/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace xl::numerics {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p out of range");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) {
    if (x <= 0.0) throw std::invalid_argument("geomean: inputs must be positive");
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace xl::numerics
