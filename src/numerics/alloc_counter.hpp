// Heap-allocation counting harness for the zero-allocation contract.
//
// Referencing any function in xl::numerics::allocs pulls in the translation
// unit (alloc_counter.cpp) that REPLACES the global operator new/delete
// family with counting versions. Static-library link semantics make this
// opt-in per binary: test_hotpath and bench_hotpath reference the API and get
// the interposer; every other binary links the stock allocator. The
// replacements forward to std::malloc / std::aligned_alloc / std::free, so
// they compose with ASan's malloc interception.
//
// Usage:
//   allocs::reset();
//   allocs::set_counting(true);
//   ... hot path ...
//   allocs::set_counting(false);
//   assert(allocs::total() == 0);
//
// Counting is process-global and uses relaxed atomics — cheap enough to
// leave enabled across a timed region, precise enough for an exact-zero
// assertion on a single-threaded steady state.
#pragma once

#include <cstdint>

namespace xl::numerics::allocs {

/// Enable/disable counting of operator-new calls (deletes are never counted).
void set_counting(bool enabled) noexcept;
[[nodiscard]] bool counting() noexcept;

/// Zero the counter.
void reset() noexcept;

/// Number of operator-new calls observed while counting was enabled.
[[nodiscard]] std::uint64_t total() noexcept;

}  // namespace xl::numerics::allocs
