// Symmetric eigensolver (cyclic Jacobi) used by the TED tuning circuit.
//
// Thermal Eigenmode Decomposition (Milanizadeh et al., JLT 2019, adapted in
// CrossLight Sec. IV-B) diagonalizes the symmetric thermal coupling matrix of
// an MR bank; tuning is then applied in the decoupled eigenbasis. Banks hold
// at most a few tens of rings, so the O(n^3) Jacobi iteration is ideal: it is
// simple, numerically robust, and produces orthonormal eigenvectors.
#pragma once

#include "numerics/matrix.hpp"

namespace xl::numerics {

/// Result of a symmetric eigendecomposition A = V * diag(w) * V^T.
struct EigenDecomposition {
  Vector eigenvalues;   ///< Ascending order.
  Matrix eigenvectors;  ///< Column i corresponds to eigenvalues[i]; orthonormal.
};

struct JacobiOptions {
  double tolerance = 1e-12;  ///< Convergence on max |off-diagonal|.
  int max_sweeps = 100;      ///< Hard cap on full Jacobi sweeps.
};

/// Compute all eigenpairs of a symmetric matrix via cyclic Jacobi rotations.
/// Throws std::invalid_argument when `a` is not square/symmetric and
/// std::runtime_error when the sweep cap is exceeded before convergence.
[[nodiscard]] EigenDecomposition eigen_symmetric(const Matrix& a,
                                                 const JacobiOptions& opts = {});

/// Largest |eigenvalue| / smallest |eigenvalue| of a symmetric matrix.
/// Used to quantify how ill-conditioned a thermal coupling matrix is.
[[nodiscard]] double spectral_condition_number(const Matrix& a);

}  // namespace xl::numerics
