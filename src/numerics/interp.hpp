// 1-D interpolation over tabulated device/measurement curves.
#pragma once

#include <vector>

namespace xl::numerics {

/// Piecewise-linear interpolant over strictly increasing abscissae.
/// Queries outside the table are clamped to the end values (device curves
/// saturate rather than extrapolate).
class LinearInterpolator {
 public:
  /// Throws std::invalid_argument unless xs is strictly increasing and
  /// xs/ys have equal, nonzero size.
  LinearInterpolator(std::vector<double> xs, std::vector<double> ys);

  [[nodiscard]] double operator()(double x) const;
  [[nodiscard]] std::size_t size() const noexcept { return xs_.size(); }
  [[nodiscard]] double x_min() const noexcept { return xs_.front(); }
  [[nodiscard]] double x_max() const noexcept { return xs_.back(); }

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

}  // namespace xl::numerics
