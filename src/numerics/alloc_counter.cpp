// Counting replacements for the global allocation functions. See the header
// for the opt-in linking model. All variants bottom out in std::malloc /
// std::aligned_alloc and std::free, so plain and sized deletes are
// interchangeable and ASan still sees a consistent malloc/free pairing.
#include "numerics/alloc_counter.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace xl::numerics::allocs {

namespace {
std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_total{0};

void* counted_alloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_total.fetch_add(1, std::memory_order_relaxed);
  }
  if (size == 0) {
    size = 1;
  }
  return std::malloc(size);
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_total.fetch_add(1, std::memory_order_relaxed);
  }
  if (size == 0) {
    size = align;
  }
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, rounded);
}
}  // namespace

void set_counting(bool enabled) noexcept {
  g_counting.store(enabled, std::memory_order_relaxed);
}

bool counting() noexcept { return g_counting.load(std::memory_order_relaxed); }

void reset() noexcept { g_total.store(0, std::memory_order_relaxed); }

std::uint64_t total() noexcept {
  return g_total.load(std::memory_order_relaxed);
}

}  // namespace xl::numerics::allocs

namespace {
void* throw_if_null(void* p) {
  if (p == nullptr) {
    throw std::bad_alloc{};
  }
  return p;
}
}  // namespace

void* operator new(std::size_t size) {
  return throw_if_null(xl::numerics::allocs::counted_alloc(size));
}

void* operator new[](std::size_t size) {
  return throw_if_null(xl::numerics::allocs::counted_alloc(size));
}

void* operator new(std::size_t size, std::align_val_t align) {
  return throw_if_null(xl::numerics::allocs::counted_alloc_aligned(
      size, static_cast<std::size_t>(align)));
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return throw_if_null(xl::numerics::allocs::counted_alloc_aligned(
      size, static_cast<std::size_t>(align)));
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return xl::numerics::allocs::counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return xl::numerics::allocs::counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return xl::numerics::allocs::counted_alloc_aligned(
      size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return xl::numerics::allocs::counted_alloc_aligned(
      size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
