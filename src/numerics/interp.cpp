#include "numerics/interp.hpp"

#include <algorithm>
#include <stdexcept>

namespace xl::numerics {

LinearInterpolator::LinearInterpolator(std::vector<double> xs, std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  if (xs_.empty() || xs_.size() != ys_.size()) {
    throw std::invalid_argument("LinearInterpolator: xs/ys must be nonempty and equal size");
  }
  for (std::size_t i = 1; i < xs_.size(); ++i) {
    if (xs_[i] <= xs_[i - 1]) {
      throw std::invalid_argument("LinearInterpolator: xs must be strictly increasing");
    }
  }
}

double LinearInterpolator::operator()(double x) const {
  if (x <= xs_.front()) return ys_.front();
  if (x >= xs_.back()) return ys_.back();
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - xs_.begin());
  const std::size_t lo = hi - 1;
  const double t = (x - xs_[lo]) / (xs_[hi] - xs_[lo]);
  return ys_[lo] * (1.0 - t) + ys_[hi] * t;
}

}  // namespace xl::numerics
