#include "numerics/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace xl::numerics {

namespace {
void require(bool cond, const char* what) {
  if (!cond) throw std::invalid_argument(what);
}
}  // namespace

Vector& Vector::operator+=(const Vector& rhs) {
  require(size() == rhs.size(), "Vector::operator+= dimension mismatch");
  for (std::size_t i = 0; i < size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& rhs) {
  require(size() == rhs.size(), "Vector::operator-= dimension mismatch");
  for (std::size_t i = 0; i < size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Vector& Vector::operator*=(double s) noexcept {
  for (double& v : data_) v *= s;
  return *this;
}

double Vector::dot(const Vector& rhs) const {
  require(size() == rhs.size(), "Vector::dot dimension mismatch");
  return std::inner_product(data_.begin(), data_.end(), rhs.data_.begin(), 0.0);
}

double Vector::norm2() const noexcept {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Vector::norm_inf() const noexcept {
  double acc = 0.0;
  for (double v : data_) acc = std::max(acc, std::abs(v));
  return acc;
}

double Vector::sum() const noexcept {
  return std::accumulate(data_.begin(), data_.end(), 0.0);
}

double Vector::max() const {
  require(!empty(), "Vector::max on empty vector");
  return *std::max_element(data_.begin(), data_.end());
}

double Vector::min() const {
  require(!empty(), "Vector::min on empty vector");
  return *std::min_element(data_.begin(), data_.end());
}

Vector operator+(Vector lhs, const Vector& rhs) { return lhs += rhs; }
Vector operator-(Vector lhs, const Vector& rhs) { return lhs -= rhs; }
Vector operator*(Vector lhs, double s) { return lhs *= s; }
Vector operator*(double s, Vector rhs) { return rhs *= s; }

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    require(row.size() == cols_, "Matrix initializer rows must be equal length");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diag(const Vector& d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return data_[r * cols_ + c];
}

std::span<const double> Matrix::row(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("Matrix::row");
  return {data_.data() + r * cols_, cols_};
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  require(rows_ == rhs.rows_ && cols_ == rhs.cols_, "Matrix::operator+= shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  require(rows_ == rhs.rows_ && cols_ == rhs.cols_, "Matrix::operator-= shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) noexcept {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Vector Matrix::matvec(const Vector& x) const {
  require(cols_ == x.size(), "Matrix::matvec dimension mismatch");
  Vector y(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row_ptr = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) acc += row_ptr[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Matrix Matrix::matmul(const Matrix& rhs) const {
  require(cols_ == rhs.rows_, "Matrix::matmul dimension mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) out(r, c) += a * rhs(k, c);
    }
  }
  return out;
}

double Matrix::norm_frobenius() const noexcept {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Matrix::max_offdiag_abs() const {
  require(rows_ == cols_, "Matrix::max_offdiag_abs requires square matrix");
  double acc = 0.0;
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c)
      if (r != c) acc = std::max(acc, std::abs((*this)(r, c)));
  return acc;
}

bool Matrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = r + 1; c < cols_; ++c)
      if (std::abs((*this)(r, c) - (*this)(c, r)) > tol) return false;
  return true;
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  for (std::size_t r = 0; r < rows_; ++r) {
    os << "[ ";
    for (std::size_t c = 0; c < cols_; ++c) os << (*this)(r, c) << ' ';
    os << "]\n";
  }
  return os.str();
}

Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
Matrix operator*(Matrix lhs, double s) { return lhs *= s; }
Matrix operator*(double s, Matrix rhs) { return rhs *= s; }
Matrix operator*(const Matrix& lhs, const Matrix& rhs) { return lhs.matmul(rhs); }
Vector operator*(const Matrix& lhs, const Vector& rhs) { return lhs.matvec(rhs); }

}  // namespace xl::numerics
