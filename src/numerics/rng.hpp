// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in the repository (FPV wafer maps, synthetic
// datasets, weight initialization, Monte-Carlo sweeps) draws from an Rng
// seeded explicitly, so each bench/test run is bit-reproducible.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace xl::numerics {

/// Thin deterministic wrapper over std::mt19937_64 with the distribution
/// helpers this project needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0xC705511D47ULL) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo = 0.0, double hi = 1.0);
  /// Gaussian with given mean and standard deviation.
  [[nodiscard]] double gaussian(double mean = 0.0, double stddev = 1.0);
  /// Gaussian truncated to [lo, hi] by resampling (max 64 attempts, then clamp).
  [[nodiscard]] double truncated_gaussian(double mean, double stddev, double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Bernoulli trial.
  [[nodiscard]] bool bernoulli(double p);

  /// n i.i.d. gaussian samples.
  [[nodiscard]] std::vector<double> gaussian_vector(std::size_t n, double mean, double stddev);

  /// Fisher-Yates shuffle of an index range [0, n).
  [[nodiscard]] std::vector<std::size_t> permutation(std::size_t n);

  /// Access the raw engine (for std::shuffle etc.).
  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace xl::numerics
