// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in the repository (FPV wafer maps, synthetic
// datasets, weight initialization, Monte-Carlo sweeps) draws from an Rng
// seeded explicitly, so each bench/test run is bit-reproducible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <random>
#include <vector>

namespace xl::numerics {

/// Thin deterministic wrapper over std::mt19937_64 with the distribution
/// helpers this project needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0xC705511D47ULL) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo = 0.0, double hi = 1.0);
  /// Gaussian with given mean and standard deviation.
  [[nodiscard]] double gaussian(double mean = 0.0, double stddev = 1.0);
  /// Gaussian truncated to [lo, hi] by rejection sampling. `max_attempts`
  /// bounds the resampling budget; only when a genuine (stddev > 0)
  /// rejection loop exhausts it does the draw fall back to clamp(mean).
  /// A degenerate stddev == 0 returns clamp(mean) immediately (the
  /// distribution is a point mass; resampling could never succeed).
  /// Throws std::invalid_argument on lo > hi, stddev < 0, or
  /// max_attempts < 1.
  [[nodiscard]] double truncated_gaussian(double mean, double stddev, double lo,
                                          double hi, int max_attempts = 64);
  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Bernoulli trial.
  [[nodiscard]] bool bernoulli(double p);

  /// n i.i.d. gaussian samples.
  [[nodiscard]] std::vector<double> gaussian_vector(std::size_t n, double mean, double stddev);

  /// Fisher-Yates shuffle of an index range [0, n).
  [[nodiscard]] std::vector<std::size_t> permutation(std::size_t n);

  /// Access the raw engine (for std::shuffle etc.).
  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

// --- Stateless counter-based hashing -----------------------------------------
// Where a stateful Rng would make results depend on draw *order* (and hence on
// thread count or tiling), these pure functions derive a draw from a key
// alone. The effect pipeline keys photodetector noise on the dot product's
// operands, so scalar, batched, and any-thread-count execution sample the
// same value.

/// SplitMix64 finalizer: a high-quality 64-bit bijective mixer.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x) noexcept;

/// Fold `v` into key `h` (order-sensitive, deterministic).
[[nodiscard]] std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) noexcept;

/// Uniform double in [0, 1) derived from `key` alone.
[[nodiscard]] double hash_unit(std::uint64_t key) noexcept;

/// Standard normal draw derived from `key` alone (Box-Muller over two
/// decorrelated hash_unit streams).
[[nodiscard]] double hash_gaussian(std::uint64_t key) noexcept;

/// Counter-splittable bulk sampler:
///   out[i] == hash_gaussian(hash_combine(key, base_counter + i))
/// bit for bit, for i in [0, n) (counter addition wraps mod 2^64). A pure
/// function of (key, counter): any slicing of the counter range across
/// calls or threads yields identical samples, so bulk draws are
/// index-addressable like Qlattice's per-site split RNG. Dispatches to the
/// AVX2 kernel (vectorized splitmix64 mixing + Box-Muller) when available;
/// SIMD and scalar paths agree exactly.
void hash_gaussian_n(std::uint64_t key, std::uint64_t base_counter,
                     std::size_t n, double* out) noexcept;

}  // namespace xl::numerics
