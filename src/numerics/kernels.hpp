// Runtime-dispatched SIMD kernels for the three hot loops of every
// functional evaluation: the tiled GEMM dot kernel, the Lorentzian VDP
// transfer product, and the counter-keyed gaussian noise sampler.
//
// Dispatch model
// --------------
// Two kernel tables implement identical contracts:
//   * scalar_table() — the portable reference, always available. This IS the
//     bit-exact oracle: every SIMD kernel must reproduce it exactly.
//   * active_table() — resolved once per process: the AVX2+FMA table when the
//     binary carries the AVX2 translation unit, the CPU reports avx2+fma, and
//     XL_DISABLE_SIMD is not set in the environment; the scalar table
//     otherwise. (Build-time override: -DXL_DISABLE_SIMD=ON compiles the AVX2
//     TU out entirely.)
//
// Bit-identity contract
// ---------------------
// SIMD lanes are mapped to *independent* outputs (GEMM output columns, VDP
// channels, RNG samples), never across one output's reduction chain, so FP
// associativity is preserved by construction:
//   * GEMM: each output element accumulates sequentially over k in lane j,
//     with separate mul + add roundings (the AVX2 TU is compiled with
//     -ffp-contract=off so mul/add never fuse into one-rounding FMA).
//   * Lorentzian arm sums: lane = channel; the per-ring transmission product
//     runs sequentially within the lane, and cross-lane sums into the
//     accumulator happen in scalar index order after extraction.
//   * hash_gaussian_n: integer mixing, the uint64->double conversion, and all
//     elementwise arithmetic vectorize exactly (conversion and sqrt are
//     correctly-rounded by IEEE); log/cos go through the scalar libm calls so
//     every sample matches hash_gaussian() bit for bit.
// Consequently a 0-ulp parity tolerance is enforced by the tests
// (tests/test_kernels.cpp) rather than merely approximated.
//
// abs_max assumes non-NaN input (|.| and max are exact, order-free
// operations on finite doubles); all other kernels are order-exact for any
// input.
#pragma once

#include <cstddef>
#include <cstdint>

namespace xl::numerics::kernels {

enum class Isa { kScalar, kAvx2 };

/// One ISA's implementation of the hot-loop kernels. All pointers non-null.
struct KernelTable {
  /// GEMM microkernel: out[c] = sum_i a[i] * col_c[i] for n_panels * 4
  /// packed output columns. `pack` holds 4-column panels: panel p covers
  /// columns [4p, 4p+4) at pack + p*4*k, interleaved element-major
  /// (pack[p*4*k + i*4 + j] = column (4p+j) element i). Each column's
  /// accumulation is strictly sequential over i with mul+add rounding.
  void (*gemm_row_panels)(const double* a, const double* pack, std::size_t k,
                          std::size_t n_panels, double* out);

  /// max_i |v[i]| (0 for n == 0). Exact for non-NaN input in any lane order.
  double (*abs_max)(const double* v, std::size_t n);

  /// Lorentzian arm sum, on-channel ring only (no parasitic crosstalk):
  ///   sum_i a[i] * (1 - full * delta_sq[i] / (detune[i]^2 + delta_sq[i]))
  /// accumulated in index order.
  double (*arm_sum_diag)(const double* a, const double* detune,
                         const double* delta_sq, double full, std::size_t len);

  /// Lorentzian arm sum with crosstalk: every ring j attenuates channel i,
  ///   power_i = a[i] * prod_j (1 - (full*delta_sq[j]) / (d_ij^2 + delta_sq[j]))
  /// with d_ij = sep[i*sep_stride + j] + detune[j]; channels with a[i] == 0
  /// are skipped (0 * T == 0), and the per-ring product runs sequentially
  /// over j within channel i's lane. Summed over i in index order.
  double (*arm_sum_xtalk)(const double* a, const double* detune,
                          const double* sep, std::size_t sep_stride,
                          const double* delta_sq, double full, std::size_t len);

  /// Fused balanced-PD arm sums over precomputed ring transmissions, no
  /// crosstalk. `carry[i]`/`idle[i]` hold ring i's transmission when it
  /// carries the weight vs sits idle, each computed with arm_sum_diag's
  /// exact expression; sel[i] says the weight went to the negative arm.
  /// Returns pos - neg for
  ///   pos = sum_i a[i] * (sel[i] ? idle[i] : carry[i])
  ///   neg = sum_i a[i] * (sel[i] ? carry[i] : idle[i])
  /// with both sums accumulated in index order — bit-identical to two
  /// arm_sum_diag calls on the corresponding detune vectors, in one pass.
  double (*arm_pair_diag_tbl)(const double* a, const unsigned char* sel,
                              const double* carry, const double* idle,
                              std::size_t len);

  /// Fused arm sums with crosstalk. Tables are column-major per ring:
  /// t[j*len + i] is ring j's transmission at channel i, sel[j] picks the
  /// arm assignment for ring j (lane-uniform across channels):
  ///   pos_i = a[i] * prod_j (sel[j] ? idle : carry)[j*len + i]
  ///   neg_i = a[i] * prod_j (sel[j] ? carry : idle)[j*len + i]
  /// Returns sum_i pos_i - sum_i neg_i with the same a[i] == 0 skip,
  /// sequential per-channel j-products, and index-order sums as two
  /// arm_sum_xtalk calls — one table pass instead of two.
  double (*arm_pair_xtalk_tbl)(const double* a, const unsigned char* sel,
                               const double* carry, const double* idle,
                               std::size_t len);

  /// Bulk standard-normal draws from explicit keys:
  ///   out[i] == hash_gaussian(keys[i]) bit for bit.
  void (*hash_gaussian_keys)(const std::uint64_t* keys, std::size_t n,
                             double* out);

  /// Counter-splittable bulk sampler:
  ///   out[i] == hash_gaussian(hash_combine(key, base_counter + i))
  /// bit for bit (counter addition wraps mod 2^64). A pure function of
  /// (key, counter): any slicing of [base, base+n) over any number of calls
  /// or threads yields the same samples.
  void (*hash_gaussian_n)(std::uint64_t key, std::uint64_t base_counter,
                          std::size_t n, double* out);

  const char* name;  ///< "scalar" or "avx2".
};

/// The portable reference table (always available, never dispatched away).
[[nodiscard]] const KernelTable& scalar_table() noexcept;

/// The table selected for this process (CPUID probe + XL_DISABLE_SIMD env
/// override, resolved once on first use, thread-safe).
[[nodiscard]] const KernelTable& active_table() noexcept;

[[nodiscard]] Isa active_isa() noexcept;
[[nodiscard]] const char* active_isa_name() noexcept;

/// true when the AVX2 translation unit was compiled into this binary
/// (regardless of the runtime CPU probe or env override).
[[nodiscard]] bool simd_compiled() noexcept;

}  // namespace xl::numerics::kernels
