#include "thermal/tuning.hpp"

#include <cmath>
#include <stdexcept>

namespace xl::thermal {

using xl::numerics::Vector;

HybridTuningController::HybridTuningController(const TuningBankConfig& config,
                                               const xl::photonics::DeviceParams& params)
    : config_(config), params_(params) {
  if (config.rings == 0) {
    throw std::invalid_argument("HybridTuningController: empty bank");
  }
  if (config.pitch_um <= 0.0) {
    throw std::invalid_argument("HybridTuningController: pitch must be positive");
  }
  if (config.eo_max_shift_nm < 0.0) {
    throw std::invalid_argument("HybridTuningController: EO range must be >= 0");
  }
  coupling_ = coupling_matrix_exponential(config.rings, config.pitch_um, config.coupling);
}

double HybridTuningController::phase_per_nm() const noexcept {
  return 2.0 * M_PI / params_.mr_fsr_nm;
}

bool HybridTuningController::eo_covers(double shift_nm) const noexcept {
  return std::abs(shift_nm) <= config_.eo_max_shift_nm;
}

TuningReport HybridTuningController::plan(const std::vector<double>& fpv_drifts_nm,
                                          double mean_imprint_shift_nm) const {
  if (fpv_drifts_nm.size() != config_.rings) {
    throw std::invalid_argument("HybridTuningController::plan: drift count mismatch");
  }
  if (mean_imprint_shift_nm < 0.0) {
    throw std::invalid_argument("HybridTuningController::plan: negative imprint shift");
  }

  // Boot-time TO targets: cancel each ring's FPV drift. Heaters red-shift
  // only, so a drift of either sign is corrected by shifting the resonance
  // the remaining distance to the *next* grid point — magnitude <= one
  // channel spacing; we conservatively use |drift| as the required shift.
  Vector phase_targets(config_.rings);
  for (std::size_t i = 0; i < config_.rings; ++i) {
    phase_targets[i] = std::abs(fpv_drifts_nm[i]) * phase_per_nm();
  }

  TuningReport report;
  switch (config_.mode) {
    case TuningMode::kHybridTed: {
      const TedTuner tuner(coupling_);
      const TedSolution sol = tuner.solve(phase_targets);
      report.static_to_power_mw = sol.total_power_mw;
      report.feasible = true;
      // Runtime imprints ride on fast EO tuning.
      report.eo_energy_per_imprint_pj =
          params_.eo_tuning_power_uw_per_nm * mean_imprint_shift_nm *
          params_.eo_tuning_latency_ns * 1e-3;  // uW * ns = fJ ; /1e3 -> pJ
      report.imprint_latency_ns = params_.eo_tuning_latency_ns;
      break;
    }
    case TuningMode::kThermalOnly: {
      const NaiveTuningResult naive = naive_tuning_powers(coupling_, phase_targets);
      report.static_to_power_mw = naive.total_power_mw;
      report.feasible = naive.feasible;
      // Without the hybrid circuit, runtime imprints also use TO actuation:
      // microsecond latency and mW-scale drive (Section II criticism).
      const double imprint_power_mw =
          params_.to_tuning_power_mw_per_nm() * mean_imprint_shift_nm;
      // mW * us = 1e-3 W * 1e-6 s = 1 nJ; multiply by 1e3 for pJ.
      report.eo_energy_per_imprint_pj =
          imprint_power_mw * params_.to_tuning_latency_us * 1e3;
      report.imprint_latency_ns = params_.to_tuning_latency_us * 1e3;
      break;
    }
  }
  report.boot_calibration_us = params_.to_tuning_latency_us;
  return report;
}

}  // namespace xl::thermal
