// 2-D steady-state heat-diffusion solver.
//
// Substitution note (DESIGN.md): the paper uses Lumerical HEAT, a commercial
// 3-D thermal EDA tool, to characterize thermal crosstalk between micro-
// heaters (Fig. 4). We replace it with a finite-difference solve of the
// steady-state heat equation on a 2-D chip cross-section:
//
//     k * laplacian(T) + q = 0,  Dirichlet T = T_ambient on the boundary
//
// which captures the property Fig. 4 relies on — the temperature (and hence
// phase) crosstalk between an MR pair decays monotonically, approximately
// exponentially, with their separation. The solver is linear in the heat
// sources, so per-heater influence columns superpose exactly; the coupling
// matrix builder exploits this.
#pragma once

#include <cstddef>
#include <vector>

namespace xl::thermal {

struct HeatGridConfig {
  std::size_t nx = 256;        ///< Grid cells along the MR bank (x).
  std::size_t ny = 96;         ///< Grid cells into the substrate (y).
  double cell_um = 1.0;        ///< Cell edge length.
  double conductivity_w_per_mk = 1.4;  ///< SiO2 cladding thermal conductivity.
  double ambient_k = 300.0;    ///< Heat-sink boundary temperature.
  /// Gauss-Seidel/SOR iteration controls.
  double sor_omega = 1.8;
  double tolerance_k = 1e-7;
  std::size_t max_iterations = 200000;
};

/// Steady-state temperature field for a set of point heaters on a 2-D slab.
class HeatSolver {
 public:
  explicit HeatSolver(const HeatGridConfig& config = {});

  struct Heater {
    double x_um = 0.0;
    double y_um = 0.0;
    double power_mw = 0.0;
  };

  /// Solve for the temperature field given heaters; returns the field as a
  /// row-major ny x nx vector (Kelvin). Throws std::runtime_error when SOR
  /// fails to converge within the iteration budget.
  [[nodiscard]] std::vector<double> solve(const std::vector<Heater>& heaters) const;

  /// Temperature rise above ambient at probe (x, y) for the given heaters.
  [[nodiscard]] double temperature_rise_at(const std::vector<Heater>& heaters,
                                           double x_um, double y_um) const;

  /// Normalized thermal influence: temperature rise at distance `d_um` from a
  /// 1 mW heater, divided by the rise at the heater itself. This is the
  /// kernel that becomes Fig. 4's phase-crosstalk-ratio curve.
  [[nodiscard]] double influence_ratio(double d_um) const;

  [[nodiscard]] const HeatGridConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] std::size_t index(std::size_t ix, std::size_t iy) const noexcept {
    return iy * config_.nx + ix;
  }

  HeatGridConfig config_;
};

}  // namespace xl::thermal
