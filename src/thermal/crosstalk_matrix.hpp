// Thermal/phase crosstalk coupling matrix of an MR bank.
//
// Entry K(i,j) is the phase shift induced on ring i per unit heater power on
// ring j. The diagonal is the direct actuation efficiency; off-diagonals are
// the parasitic crosstalk that Fig. 4 plots against ring pitch. Two builders
// are provided:
//   * from_heat_solver  — samples the FD solver's influence kernel (the
//                         faithful "Lumerical HEAT substitute" path), and
//   * exponential       — the analytic exp(-d/d0) kernel observed in
//                         De et al., IEEE Access 2020 (paper ref [24]),
//                         calibrated against the solver (fast path for DSE).
#pragma once

#include <vector>

#include "numerics/matrix.hpp"
#include "thermal/heat_solver.hpp"

namespace xl::thermal {

struct CouplingModelConfig {
  /// Phase shift per mW of heater power applied directly to a ring.
  /// 27.5 mW moves the resonance one FSR = 2*pi of round-trip phase, so the
  /// self-coupling efficiency is 2*pi / 27.5 rad/mW (Table II, [17]).
  double self_phase_rad_per_mw = 2.0 * 3.14159265358979323846 / 27.5;
  /// Decay length of the exponential crosstalk kernel, um. Calibrated so the
  /// Fig. 4 TED tuning-power minimum for a 10-MR bank lands at the paper's
  /// 5 um optimum (see bench_fig4_thermal_crosstalk).
  double decay_length_um = 2.4;
  /// Crosstalk ratio extrapolated at zero separation (< 1: heaters never
  /// couple perfectly into a neighbouring ring).
  double contact_ratio = 0.85;
};

/// Phase-crosstalk ratio between rings separated by `d_um` under the
/// analytic exponential kernel.
[[nodiscard]] double exponential_crosstalk_ratio(double d_um,
                                                 const CouplingModelConfig& cfg = {});

/// Build the symmetric coupling matrix for `count` rings at uniform
/// `pitch_um` using the analytic kernel.
[[nodiscard]] xl::numerics::Matrix coupling_matrix_exponential(
    std::size_t count, double pitch_um, const CouplingModelConfig& cfg = {});

/// Build the coupling matrix by probing the FD heat solver: ring j gets a
/// unit heater; the induced temperature (hence phase) at every ring i fills
/// column j. Exact superposition holds because the PDE is linear.
[[nodiscard]] xl::numerics::Matrix coupling_matrix_from_solver(
    const HeatSolver& solver, std::size_t count, double pitch_um,
    const CouplingModelConfig& cfg = {});

/// Calibrate the analytic kernel's decay length against the FD solver by a
/// log-linear fit of influence ratios over [2, 20] um. Returns the fitted
/// config (self efficiency and contact ratio are preserved).
[[nodiscard]] CouplingModelConfig calibrate_kernel(const HeatSolver& solver,
                                                   CouplingModelConfig base = {});

}  // namespace xl::thermal
