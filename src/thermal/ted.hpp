// Thermal Eigenmode Decomposition (TED) collective tuning
// (Milanizadeh et al., JLT 2019 — paper ref [23]; CrossLight Section IV-B).
//
// Problem: heaters on an MR bank couple through the substrate, so per-ring
// phase targets cannot be met by driving each heater independently. TED
// diagonalizes the symmetric coupling matrix K (phase shift on ring i per mW
// on heater j) and solves the *collective* drive problem
//
//     K p = dphi + b * 1,   p >= 0,  b >= 0 minimal,
//
// in the thermal eigenbasis. The uniform bias b keeps heater powers
// physical (heaters cannot cool); a common-mode resonance offset is absorbed
// by shifting the laser comb with the bank (documented simplification).
//
// The no-TED reference implements what prior accelerators do: drive each
// heater for its own target and overdrive to dominate uncompensated
// neighbour crosstalk, which diverges as rings move closer — this is the
// "notably higher" dotted curve of Fig. 4.
#pragma once

#include "numerics/eigen.hpp"
#include "numerics/matrix.hpp"

namespace xl::thermal {

/// Result of one collective tuning solve.
struct TedSolution {
  xl::numerics::Vector heater_powers_mw;  ///< Per-heater drive, all >= 0.
  double common_mode_bias_rad = 0.0;      ///< Uniform extra phase b.
  double total_power_mw = 0.0;
  double mean_power_mw = 0.0;
  double max_power_mw = 0.0;
  /// Residual ||K p - (dphi + b 1)||_inf; ~0 unless the matrix was singular.
  double residual_rad = 0.0;
};

/// Collective tuner for one MR bank.
class TedTuner {
 public:
  /// `coupling` is the symmetric phase/power matrix (rad/mW). Throws
  /// std::invalid_argument when not square/symmetric or not positive
  /// definite (eigenvalues <= 0 indicate an unphysical kernel).
  explicit TedTuner(xl::numerics::Matrix coupling);

  /// Solve for heater powers realizing `phase_targets_rad` (>= 0 per ring up
  /// to the common-mode bias). Throws on dimension mismatch.
  [[nodiscard]] TedSolution solve(const xl::numerics::Vector& phase_targets_rad) const;

  /// Condition number of the coupling matrix; grows as rings get closer.
  [[nodiscard]] double condition_number() const noexcept { return condition_; }

  [[nodiscard]] const xl::numerics::Matrix& coupling() const noexcept { return coupling_; }
  [[nodiscard]] std::size_t bank_size() const noexcept { return coupling_.rows(); }

 private:
  xl::numerics::Matrix coupling_;
  xl::numerics::EigenDecomposition eigen_;
  double condition_ = 1.0;
};

/// No-TED reference: independent per-heater drive with crosstalk overdrive.
/// Each heater must realize its own target and additionally fight the
/// worst-case neighbour disturbance; the standard first-order model is a
/// 1 / (1 - rho_i) overdrive where rho_i = sum_{j != i} K(i,j) / K(i,i).
/// Banks with rho >= rho_max are infeasible without TED; their power is
/// reported at the clamped maximum (practically: designers must instead
/// space rings 120-200 um apart, Section IV-A).
struct NaiveTuningResult {
  xl::numerics::Vector heater_powers_mw;
  double total_power_mw = 0.0;
  double mean_power_mw = 0.0;
  bool feasible = true;  ///< false when overdrive clamped at rho_max.
};
[[nodiscard]] NaiveTuningResult naive_tuning_powers(
    const xl::numerics::Matrix& coupling, const xl::numerics::Vector& phase_targets_rad,
    double rho_max = 0.95);

}  // namespace xl::thermal
