// Hybrid TO + EO tuning controller (Section IV-B workflow).
//
// Runtime policy implemented here, exactly as the paper describes:
//   1. At boot, a one-time TO calibration compensates design-time FPV drifts
//      (collectively via TED, or per-heater without it).
//   2. Crosstalk cancellation phases are computed "offline" (here: from the
//      coupling matrix) and folded into the same TO solve.
//   3. At runtime, fast EO tuning (20 ns, 4 uW/nm) imprints vector elements.
//   4. Rarely, a large ambient-temperature excursion triggers a TO re-trim.
#pragma once

#include <cstddef>
#include <vector>

#include "photonics/device_params.hpp"
#include "thermal/crosstalk_matrix.hpp"
#include "thermal/ted.hpp"

namespace xl::thermal {

enum class TuningMode : std::uint8_t {
  kThermalOnly,  ///< Conventional TO tuning (prior accelerators).
  kHybridTed,    ///< CrossLight: TED-based TO trim + EO runtime imprint.
};

struct TuningBankConfig {
  std::size_t rings = 15;       ///< MRs in the bank.
  double pitch_um = 5.0;        ///< Adjacent-ring spacing.
  TuningMode mode = TuningMode::kHybridTed;
  /// Max resonance shift the EO tuner can realize (hybrid BaTiO3 platform).
  double eo_max_shift_nm = 1.5;
  CouplingModelConfig coupling;
};

/// Static/dynamic power and latency report for one MR bank.
struct TuningReport {
  double static_to_power_mw = 0.0;  ///< Continuous heater power (FPV trim).
  double eo_energy_per_imprint_pj = 0.0;  ///< Energy per runtime weight imprint.
  double imprint_latency_ns = 0.0;  ///< Runtime per-vector tuning latency.
  double boot_calibration_us = 0.0; ///< One-time TO settle at boot.
  bool feasible = true;             ///< False when no-TED crosstalk diverges.
};

/// Controller owning the tuning plan for one bank of MRs.
class HybridTuningController {
 public:
  /// Throws std::invalid_argument for empty banks / non-positive pitch.
  HybridTuningController(const TuningBankConfig& config,
                         const xl::photonics::DeviceParams& params);

  /// Compute the boot-time TO solve for the given per-ring FPV drifts (nm)
  /// and produce the bank's power/latency report. `mean_imprint_shift_nm` is
  /// the average EO excursion a runtime weight imprint needs.
  [[nodiscard]] TuningReport plan(const std::vector<double>& fpv_drifts_nm,
                                  double mean_imprint_shift_nm = 0.5) const;

  /// Phase shift (rad) equivalent to a resonance shift in nm: one FSR of
  /// wavelength shift corresponds to 2*pi of round-trip phase.
  [[nodiscard]] double phase_per_nm() const noexcept;

  /// True when `shift_nm` fits in the EO tuner's range; larger shifts fall
  /// back to TO actuation.
  [[nodiscard]] bool eo_covers(double shift_nm) const noexcept;

  [[nodiscard]] const TuningBankConfig& config() const noexcept { return config_; }

 private:
  TuningBankConfig config_;
  xl::photonics::DeviceParams params_;
  xl::numerics::Matrix coupling_;
};

}  // namespace xl::thermal
