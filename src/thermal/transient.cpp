#include "thermal/transient.hpp"

#include <cmath>
#include <stdexcept>

namespace xl::thermal {

ThermalRcModel::ThermalRcModel(const ThermalRcParams& params) : params_(params) {
  if (params.tau_us <= 0.0) {
    throw std::invalid_argument("ThermalRcModel: tau must be positive");
  }
  if (params.shift_nm_per_mw <= 0.0) {
    throw std::invalid_argument("ThermalRcModel: gain must be positive");
  }
}

double ThermalRcModel::step_response_nm(double power_mw, double t_us) const {
  if (t_us < 0.0) throw std::invalid_argument("step_response_nm: negative time");
  const double steady = params_.shift_nm_per_mw * power_mw;
  return steady * (1.0 - std::exp(-t_us / params_.tau_us));
}

double ThermalRcModel::settling_time_us(double tolerance) const {
  if (tolerance <= 0.0 || tolerance >= 1.0) {
    throw std::invalid_argument("settling_time_us: tolerance in (0, 1)");
  }
  return -params_.tau_us * std::log(tolerance);
}

std::vector<double> ThermalRcModel::simulate_nm(const std::vector<double>& power_mw,
                                                double dt_us,
                                                double initial_shift_nm) const {
  if (dt_us <= 0.0) throw std::invalid_argument("simulate_nm: dt must be positive");
  if (dt_us >= params_.tau_us) {
    throw std::invalid_argument("simulate_nm: dt must be << tau for stability");
  }
  std::vector<double> shift(power_mw.size());
  double s = initial_shift_nm;
  for (std::size_t i = 0; i < power_mw.size(); ++i) {
    const double target = params_.shift_nm_per_mw * power_mw[i];
    s += dt_us / params_.tau_us * (target - s);
    shift[i] = s;
  }
  return shift;
}

RecalibrationEvent plan_recalibration(double ambient_shift_nm, std::size_t rings,
                                      const ThermalRcParams& params) {
  if (rings == 0) throw std::invalid_argument("plan_recalibration: empty bank");
  const ThermalRcModel model(params);
  RecalibrationEvent event;
  event.ambient_shift_nm = ambient_shift_nm;
  event.downtime_us = model.settling_time_us();
  // Heaters only red-shift: a red ambient shift is compensated by *reducing*
  // existing bias power where available; budget the magnitude per ring.
  event.extra_power_mw =
      std::abs(ambient_shift_nm) / params.shift_nm_per_mw * static_cast<double>(rings);
  return event;
}

double throughput_retention(double downtime_us, double interval_ms) {
  if (interval_ms <= 0.0) {
    throw std::invalid_argument("throughput_retention: interval must be positive");
  }
  if (downtime_us < 0.0) {
    throw std::invalid_argument("throughput_retention: negative downtime");
  }
  const double interval_us = interval_ms * 1e3;
  if (downtime_us >= interval_us) return 0.0;
  return 1.0 - downtime_us / interval_us;
}

}  // namespace xl::thermal
