#include "thermal/heat_solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace xl::thermal {

HeatSolver::HeatSolver(const HeatGridConfig& config) : config_(config) {
  if (config.nx < 8 || config.ny < 8) {
    throw std::invalid_argument("HeatSolver: grid too small (need >= 8x8)");
  }
  if (config.cell_um <= 0.0) {
    throw std::invalid_argument("HeatSolver: cell size must be positive");
  }
  if (config.conductivity_w_per_mk <= 0.0) {
    throw std::invalid_argument("HeatSolver: conductivity must be positive");
  }
  if (config.sor_omega <= 0.0 || config.sor_omega >= 2.0) {
    throw std::invalid_argument("HeatSolver: SOR omega must be in (0, 2)");
  }
}

std::vector<double> HeatSolver::solve(const std::vector<Heater>& heaters) const {
  const std::size_t nx = config_.nx;
  const std::size_t ny = config_.ny;
  std::vector<double> t(nx * ny, config_.ambient_k);
  std::vector<double> q(nx * ny, 0.0);

  // Deposit each heater's power into its containing cell. Source term for
  // the 5-point stencil: T_ij = (sum neighbours + q*h^2/k) / 4.
  const double h_m = config_.cell_um * 1e-6;
  for (const Heater& heater : heaters) {
    const auto ix = static_cast<std::size_t>(
        std::clamp(std::llround(heater.x_um / config_.cell_um), 1LL,
                   static_cast<long long>(nx) - 2));
    const auto iy = static_cast<std::size_t>(
        std::clamp(std::llround(heater.y_um / config_.cell_um), 1LL,
                   static_cast<long long>(ny) - 2));
    // Convert mW point source into a volumetric term over one cell of unit
    // depth: q_cell [W/m^3] = P / h^3; stencil uses q*h^2/k.
    q[index(ix, iy)] +=
        (heater.power_mw * 1e-3) / (h_m * config_.conductivity_w_per_mk);
  }

  double max_delta = 0.0;
  for (std::size_t iter = 0; iter < config_.max_iterations; ++iter) {
    max_delta = 0.0;
    for (std::size_t iy = 1; iy + 1 < ny; ++iy) {
      for (std::size_t ix = 1; ix + 1 < nx; ++ix) {
        const std::size_t id = index(ix, iy);
        const double updated = 0.25 * (t[id - 1] + t[id + 1] + t[id - nx] +
                                       t[id + nx] + q[id]);
        const double relaxed = t[id] + config_.sor_omega * (updated - t[id]);
        max_delta = std::max(max_delta, std::abs(relaxed - t[id]));
        t[id] = relaxed;
      }
    }
    if (max_delta < config_.tolerance_k) return t;
  }
  throw std::runtime_error("HeatSolver: SOR did not converge");
}

double HeatSolver::temperature_rise_at(const std::vector<Heater>& heaters, double x_um,
                                       double y_um) const {
  const std::vector<double> field = solve(heaters);
  const auto ix = static_cast<std::size_t>(
      std::clamp(std::llround(x_um / config_.cell_um), 0LL,
                 static_cast<long long>(config_.nx) - 1));
  const auto iy = static_cast<std::size_t>(
      std::clamp(std::llround(y_um / config_.cell_um), 0LL,
                 static_cast<long long>(config_.ny) - 1));
  return field[index(ix, iy)] - config_.ambient_k;
}

double HeatSolver::influence_ratio(double d_um) const {
  if (d_um < 0.0) throw std::invalid_argument("influence_ratio: distance must be >= 0");
  // One 1 mW heater mid-grid; probe at the same depth, d_um away.
  const double x0 = static_cast<double>(config_.nx) * config_.cell_um * 0.5;
  const double y0 = static_cast<double>(config_.ny) * config_.cell_um * 0.5;
  const std::vector<Heater> heaters{{x0, y0, 1.0}};
  const std::vector<double> field = solve(heaters);

  auto probe = [&](double x) {
    const auto ix = static_cast<std::size_t>(
        std::clamp(std::llround(x / config_.cell_um), 0LL,
                   static_cast<long long>(config_.nx) - 1));
    const auto iy = static_cast<std::size_t>(std::llround(y0 / config_.cell_um));
    return field[index(ix, iy)] - config_.ambient_k;
  };

  const double self = probe(x0);
  if (self <= 0.0) return 0.0;
  return std::clamp(probe(x0 + d_um) / self, 0.0, 1.0);
}

}  // namespace xl::thermal
