#include "thermal/crosstalk_matrix.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "numerics/polyfit.hpp"

namespace xl::thermal {

using xl::numerics::Matrix;

double exponential_crosstalk_ratio(double d_um, const CouplingModelConfig& cfg) {
  if (d_um < 0.0) {
    throw std::invalid_argument("exponential_crosstalk_ratio: negative distance");
  }
  if (d_um == 0.0) return 1.0;
  return cfg.contact_ratio * std::exp(-d_um / cfg.decay_length_um);
}

Matrix coupling_matrix_exponential(std::size_t count, double pitch_um,
                                   const CouplingModelConfig& cfg) {
  if (count == 0) throw std::invalid_argument("coupling_matrix: empty bank");
  if (pitch_um <= 0.0) throw std::invalid_argument("coupling_matrix: pitch must be > 0");
  Matrix k(count, count);
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t j = 0; j < count; ++j) {
      const double d = std::abs(static_cast<double>(i) - static_cast<double>(j)) * pitch_um;
      k(i, j) = cfg.self_phase_rad_per_mw * exponential_crosstalk_ratio(d, cfg);
    }
  }
  return k;
}

Matrix coupling_matrix_from_solver(const HeatSolver& solver, std::size_t count,
                                   double pitch_um, const CouplingModelConfig& cfg) {
  if (count == 0) throw std::invalid_argument("coupling_matrix: empty bank");
  if (pitch_um <= 0.0) throw std::invalid_argument("coupling_matrix: pitch must be > 0");
  // influence_ratio(d) is normalized to 1 at d = 0, so scaling by the self
  // actuation efficiency yields phase-per-mW entries directly. Distances are
  // |i - j| * pitch; only `count` distinct values need solver probes.
  std::vector<double> ratio(count);
  for (std::size_t sep = 0; sep < count; ++sep) {
    ratio[sep] = solver.influence_ratio(static_cast<double>(sep) * pitch_um);
  }
  Matrix k(count, count);
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t j = 0; j < count; ++j) {
      const std::size_t sep = i > j ? i - j : j - i;
      k(i, j) = cfg.self_phase_rad_per_mw * ratio[sep];
    }
  }
  return k;
}

CouplingModelConfig calibrate_kernel(const HeatSolver& solver, CouplingModelConfig base) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (double d = 2.0; d <= 20.0; d += 2.0) {
    const double r = solver.influence_ratio(d);
    if (r > 1e-9) {
      xs.push_back(d);
      ys.push_back(r);
    }
  }
  if (xs.size() < 3) {
    throw std::runtime_error("calibrate_kernel: solver kernel decayed too fast to fit");
  }
  const xl::numerics::ExponentialFit fit = xl::numerics::fit_exponential(xs, ys);
  base.decay_length_um = -1.0 / fit.b;
  base.contact_ratio = std::min(1.0, fit.a);
  return base;
}

}  // namespace xl::thermal
