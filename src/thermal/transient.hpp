// Transient (time-domain) thermal response of a TO-tuned microring.
//
// Table II lists 4 us for the TO tuning latency [17]; this module models
// where that number comes from: the heater/ring stack is a first-order
// thermal RC system, and tuning "latency" is the time to settle within a
// tolerance band of the target resonance shift. The model also supports the
// runtime recalibration events of Section IV-B (rare large ambient shifts
// that trigger a one-time TO re-trim while inference pauses).
#pragma once

#include <cstddef>
#include <vector>

namespace xl::thermal {

struct ThermalRcParams {
  /// Thermal time constant of the heater/ring stack. 4 us settling to 2%
  /// corresponds to tau ~ 1 us (settle ~ 4 tau).
  double tau_us = 1.0;
  /// Steady-state resonance shift per mW of heater power (nm/mW); the
  /// reciprocal of Table II's 27.5 mW per 18 nm FSR.
  double shift_nm_per_mw = 18.0 / 27.5;
};

/// First-order thermal plant: d(shift)/dt = (gain * power - shift) / tau.
class ThermalRcModel {
 public:
  explicit ThermalRcModel(const ThermalRcParams& params = {});

  /// Closed-form step response at time t for a power step to `power_mw`.
  [[nodiscard]] double step_response_nm(double power_mw, double t_us) const;

  /// Time to settle within `tolerance` (relative) of the steady-state shift
  /// after a power step; independent of the step size for a linear plant.
  [[nodiscard]] double settling_time_us(double tolerance = 0.02) const;

  /// Simulate an arbitrary power trajectory sampled at `dt_us`; returns the
  /// shift trajectory (explicit Euler, stable for dt << tau).
  [[nodiscard]] std::vector<double> simulate_nm(const std::vector<double>& power_mw,
                                                double dt_us,
                                                double initial_shift_nm = 0.0) const;

  [[nodiscard]] const ThermalRcParams& params() const noexcept { return params_; }

 private:
  ThermalRcParams params_;
};

/// One Section IV-B runtime recalibration event: ambient temperature moved
/// the bank by `ambient_shift_nm`; the TO trim re-centres it.
struct RecalibrationEvent {
  double ambient_shift_nm = 0.0;
  double downtime_us = 0.0;      ///< Inference pause (settling time).
  double extra_power_mw = 0.0;   ///< Steady-state heater power delta.
};

/// Plan a recalibration for a bank of `rings` rings and a given ambient
/// drift (all rings shift together for a uniform ambient change).
[[nodiscard]] RecalibrationEvent plan_recalibration(double ambient_shift_nm,
                                                    std::size_t rings,
                                                    const ThermalRcParams& params = {});

/// Throughput retained when recalibrating every `interval_ms` with the
/// given per-event downtime (Section IV-B: "required rarely").
[[nodiscard]] double throughput_retention(double downtime_us, double interval_ms);

}  // namespace xl::thermal
