#include "thermal/ted.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numerics/solver.hpp"

namespace xl::thermal {

using xl::numerics::Matrix;
using xl::numerics::Vector;

TedTuner::TedTuner(Matrix coupling) : coupling_(std::move(coupling)) {
  if (coupling_.rows() != coupling_.cols() || coupling_.rows() == 0) {
    throw std::invalid_argument("TedTuner: coupling matrix must be square and nonempty");
  }
  if (!coupling_.is_symmetric(1e-9 * (1.0 + coupling_.norm_frobenius()))) {
    throw std::invalid_argument("TedTuner: coupling matrix must be symmetric");
  }
  eigen_ = xl::numerics::eigen_symmetric(coupling_);
  const double lambda_min = eigen_.eigenvalues[0];
  const double lambda_max = eigen_.eigenvalues[eigen_.eigenvalues.size() - 1];
  if (lambda_min <= 0.0) {
    throw std::invalid_argument("TedTuner: coupling matrix must be positive definite");
  }
  condition_ = lambda_max / lambda_min;
}

TedSolution TedTuner::solve(const Vector& phase_targets_rad) const {
  const std::size_t n = bank_size();
  if (phase_targets_rad.size() != n) {
    throw std::invalid_argument("TedTuner::solve: target dimension mismatch");
  }

  // Apply K^-1 in the eigenbasis: p = V diag(1/w) V^T x.
  auto apply_inverse = [&](const Vector& x) {
    Vector coeff(n);
    for (std::size_t k = 0; k < n; ++k) {
      double acc = 0.0;
      for (std::size_t i = 0; i < n; ++i) acc += eigen_.eigenvectors(i, k) * x[i];
      coeff[k] = acc / eigen_.eigenvalues[k];
    }
    Vector p(n);
    for (std::size_t i = 0; i < n; ++i) {
      double acc = 0.0;
      for (std::size_t k = 0; k < n; ++k) acc += eigen_.eigenvectors(i, k) * coeff[k];
      p[i] = acc;
    }
    return p;
  };

  const Vector p0 = apply_inverse(phase_targets_rad);
  const Vector ones(n, 1.0);
  const Vector s = apply_inverse(ones);

  // Choose the minimal common-mode bias b >= 0 with p0 + b*s >= 0.
  // s = K^-1 1 is strictly positive for physical (diagonally dominant,
  // positive) thermal kernels; guard anyway.
  double bias = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (p0[i] < 0.0) {
      if (s[i] <= 0.0) {
        throw std::runtime_error("TedTuner::solve: bias direction not positive");
      }
      bias = std::max(bias, -p0[i] / s[i]);
    }
  }

  TedSolution sol;
  sol.heater_powers_mw = p0 + bias * s;
  for (std::size_t i = 0; i < n; ++i) {
    // Clip tiny negative round-off.
    sol.heater_powers_mw[i] = std::max(0.0, sol.heater_powers_mw[i]);
  }
  sol.common_mode_bias_rad = bias;
  sol.total_power_mw = sol.heater_powers_mw.sum();
  sol.mean_power_mw = sol.total_power_mw / static_cast<double>(n);
  sol.max_power_mw = sol.heater_powers_mw.max();

  const Vector achieved = coupling_.matvec(sol.heater_powers_mw);
  double residual = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    residual = std::max(residual, std::abs(achieved[i] - (phase_targets_rad[i] + bias)));
  }
  sol.residual_rad = residual;
  return sol;
}

NaiveTuningResult naive_tuning_powers(const Matrix& coupling, const Vector& phase_targets_rad,
                                      double rho_max) {
  const std::size_t n = coupling.rows();
  if (coupling.rows() != coupling.cols() || n == 0) {
    throw std::invalid_argument("naive_tuning_powers: coupling must be square, nonempty");
  }
  if (phase_targets_rad.size() != n) {
    throw std::invalid_argument("naive_tuning_powers: target dimension mismatch");
  }
  if (rho_max <= 0.0 || rho_max >= 1.0) {
    throw std::invalid_argument("naive_tuning_powers: rho_max must be in (0, 1)");
  }

  NaiveTuningResult res;
  res.heater_powers_mw = Vector(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double self = coupling(i, i);
    if (self <= 0.0) {
      throw std::invalid_argument("naive_tuning_powers: non-positive self coupling");
    }
    double rho = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) rho += coupling(i, j) / self;
    }
    if (rho >= rho_max) {
      rho = rho_max;
      res.feasible = false;
    }
    const double base_power = std::abs(phase_targets_rad[i]) / self;
    res.heater_powers_mw[i] = base_power / (1.0 - rho);
  }
  res.total_power_mw = res.heater_powers_mw.sum();
  res.mean_power_mw = res.total_power_mw / static_cast<double>(n);
  return res;
}

}  // namespace xl::thermal
