#include "scenario/expression.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace xl::scenario {
namespace {

// Recursive-descent parser over the classic three-level grammar:
//   expr   := term (('+' | '-') term)*
//   term   := factor (('*' | '/' | '%') factor)*
//   factor := number | '(' expr ')' | ('+' | '-') factor
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  double parse() {
    const double value = expr();
    skip_ws();
    if (pos_ != text_.size()) fail("unexpected trailing characters");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("expression '" + std::string(text_) + "': " +
                                what + " at position " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  double expr() {
    double value = term();
    for (;;) {
      if (eat('+')) {
        value += term();
      } else if (eat('-')) {
        value -= term();
      } else {
        return value;
      }
    }
  }

  double term() {
    double value = factor();
    for (;;) {
      if (eat('*')) {
        value *= factor();
      } else if (eat('/')) {
        const double rhs = factor();
        if (rhs == 0.0) fail("division by zero");
        value /= rhs;
      } else if (eat('%')) {
        const double rhs = factor();
        if (rhs == 0.0) fail("modulo by zero");
        value = std::fmod(value, rhs);
      } else {
        return value;
      }
    }
  }

  double factor() {
    skip_ws();
    if (eat('(')) {
      const double value = expr();
      if (!eat(')')) fail("missing ')'");
      return value;
    }
    if (eat('-')) return -factor();
    if (eat('+')) return factor();
    return number();
  }

  double number() {
    skip_ws();
    if (pos_ >= text_.size()) fail("expected a number");
    const std::string rest(text_.substr(pos_));
    char* end = nullptr;
    double value = 0.0;
    if (rest.size() > 2 && rest[0] == '0' && (rest[1] == 'x' || rest[1] == 'X')) {
      // Hex literals (scenario seeds) go through strtoull so 64-bit seeds
      // round-trip; the double conversion is exact up to 2^53, far beyond
      // any knob that is not a seed (seeds are re-read as integers by the
      // document layer).
      value = static_cast<double>(std::strtoull(rest.c_str(), &end, 16));
    } else {
      value = std::strtod(rest.c_str(), &end);
    }
    if (end == rest.c_str()) fail("expected a number");
    pos_ += static_cast<std::size_t>(end - rest.c_str());
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

double eval_expression(std::string_view text) { return Parser(text).parse(); }

bool looks_numeric(std::string_view text) {
  // A numeric term starts with a digit, a sign, a dot, or '('; everything
  // else is a bare string (backend names, model names, csv words).
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '+' || c == '-' ||
        c == '.' || c == '(') {
      try {
        (void)eval_expression(text);
        return true;
      } catch (const std::invalid_argument&) {
        return false;
      }
    }
    return false;
  }
  return false;
}

}  // namespace xl::scenario
