#include "scenario/ini.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "scenario/expression.hpp"

namespace xl::scenario {

namespace {

std::string dirname_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash + 1);
}

/// Strip a trailing comment. `#` and `;` start a comment only when they are
/// the first character or preceded by whitespace, so values like
/// "model#4" or a quoted "#" survive.
std::string strip_comment(const std::string& line) {
  for (std::size_t i = 0; i < line.size(); ++i) {
    if ((line[i] == '#' || line[i] == ';') &&
        (i == 0 || std::isspace(static_cast<unsigned char>(line[i - 1])))) {
      return line.substr(0, i);
    }
  }
  return line;
}

[[noreturn]] void syntax_error(const std::string& file, int line,
                               const std::string& what) {
  throw std::invalid_argument("scenario: " + file + ":" + std::to_string(line) +
                              ": " + what);
}

}  // namespace

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return std::string(text.substr(begin, end - begin));
}

std::vector<std::string> split_csv(std::string_view text) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = std::min(text.find(',', pos), text.size());
    std::string token = trim(text.substr(pos, comma - pos));
    if (!token.empty()) out.push_back(std::move(token));
    pos = comma + 1;
  }
  return out;
}

ScenarioDocument ScenarioDocument::parse_file(const std::string& path) {
  ScenarioDocument doc;
  doc.path_ = path;
  std::vector<std::string> include_stack;
  std::ifstream in(path);
  if (!in) throw std::runtime_error("scenario: cannot read '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  include_stack.push_back(path);
  doc.parse_into(text.str(), path, include_stack);
  return doc;
}

ScenarioDocument ScenarioDocument::parse_text(std::string_view text,
                                              const std::string& virtual_path) {
  ScenarioDocument doc;
  doc.path_ = virtual_path;
  std::vector<std::string> include_stack{virtual_path};
  doc.parse_into(text, virtual_path, include_stack);
  return doc;
}

void ScenarioDocument::parse_into(std::string_view text, const std::string& path,
                                  std::vector<std::string>& include_stack) {
  IniSection* current = nullptr;
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    std::string line = trim(strip_comment(std::string(text.substr(pos, eol - pos))));
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') syntax_error(path, line_no, "unterminated section header");
      const std::string name = trim(std::string_view(line).substr(1, line.size() - 2));
      if (name.empty()) syntax_error(path, line_no, "empty section name");
      current = nullptr;
      for (IniSection& s : sections_) {
        if (s.name == name) current = &s;  // Re-opened: merge (include overlay).
      }
      if (current == nullptr) {
        sections_.push_back(IniSection{name, {}, {}});
        current = &sections_.back();
      }
      continue;
    }

    if (line.rfind("include", 0) == 0 &&
        (line.size() == 7 || std::isspace(static_cast<unsigned char>(line[7])))) {
      std::string target = trim(std::string_view(line).substr(7));
      if (target.empty()) syntax_error(path, line_no, "include without a path");
      if (target.front() != '/') target = dirname_of(path) + target;
      for (const std::string& open : include_stack) {
        if (open == target) {
          std::string chain;
          for (const std::string& p : include_stack) chain += p + " -> ";
          throw std::runtime_error("scenario: cyclic include: " + chain + target);
        }
      }
      std::ifstream in(target);
      if (!in) {
        throw std::runtime_error("scenario: " + path + ":" + std::to_string(line_no) +
                                 ": cannot read include '" + target + "'");
      }
      std::ostringstream included;
      included << in.rdbuf();
      include_stack.push_back(target);
      parse_into(included.str(), target, include_stack);
      include_stack.pop_back();
      current = nullptr;  // Keys after an include need their own [section].
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      syntax_error(path, line_no, "expected 'key = value', got '" + line + "'");
    }
    if (current == nullptr) {
      syntax_error(path, line_no, "'" + line + "' appears before any [section]");
    }
    const std::string key = trim(std::string_view(line).substr(0, eq));
    if (key.empty()) syntax_error(path, line_no, "empty key");
    const std::string value = trim(std::string_view(line).substr(eq + 1));
    if (current->values.count(key) == 0) current->order.push_back(key);
    current->values[key] = IniValue{value, path, line_no};
  }
}

const IniSection* ScenarioDocument::find(const std::string& name) const {
  for (const IniSection& s : sections_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<std::string> ScenarioDocument::section_names() const {
  std::vector<std::string> out;
  out.reserve(sections_.size());
  for (const IniSection& s : sections_) out.push_back(s.name);
  return out;
}

std::string ScenarioDocument::substitute(const std::string& raw,
                                         const std::string& context) const {
  // Iterative re-scan with a depth cap: a var may expand to text containing
  // further ${...} references (vars-of-vars); 16 rounds is far beyond any
  // sane nesting and turns a cycle into a named error instead of a hang.
  std::string text = raw;
  for (int depth = 0; depth < 16; ++depth) {
    const std::size_t open = text.find("${");
    if (open == std::string::npos) return text;
    const std::size_t close = text.find('}', open + 2);
    if (close == std::string::npos) {
      throw std::invalid_argument("scenario: " + context +
                                  ": unterminated ${...} in '" + raw + "'");
    }
    const std::string name = trim(std::string_view(text).substr(open + 2, close - open - 2));
    const IniSection* vars = find("vars");
    const auto it = vars != nullptr ? vars->values.find(name)
                                    : std::map<std::string, IniValue>::const_iterator{};
    if (vars == nullptr || it == vars->values.end()) {
      throw std::invalid_argument("scenario: " + context + ": undefined variable '${" +
                                  name + "}' in '" + raw + "'");
    }
    text = text.substr(0, open) + it->second.raw + text.substr(close + 1);
  }
  throw std::invalid_argument("scenario: " + context +
                              ": ${...} substitution cycle in '" + raw + "'");
}

SectionReader::SectionReader(const ScenarioDocument& doc, std::string section)
    : doc_(doc), section_(std::move(section)), section_ptr_(doc.find(section_)) {}

bool SectionReader::has(const std::string& key) const {
  return section_ptr_ != nullptr && section_ptr_->has(key);
}

std::string SectionReader::where(const std::string& key) const {
  return "[" + section_ + "]." + key;
}

void SectionReader::fail(const std::string& key, const std::string& what) const {
  std::string at;
  if (section_ptr_ != nullptr) {
    const auto it = section_ptr_->values.find(key);
    if (it != section_ptr_->values.end()) {
      at = " (" + it->second.file + ":" + std::to_string(it->second.line) + ")";
    }
  }
  throw std::invalid_argument("scenario: " + where(key) + ": " + what + at);
}

std::string SectionReader::resolved(const std::string& key, bool& found) {
  consumed_.insert(key);
  if (!has(key)) {
    found = false;
    return {};
  }
  found = true;
  return doc_.substitute(section_ptr_->values.at(key).raw, where(key));
}

std::string SectionReader::get_string(const std::string& key,
                                      const std::string& fallback) {
  bool found = false;
  std::string value = resolved(key, found);
  return found ? value : fallback;
}

std::string SectionReader::require_string(const std::string& key) {
  bool found = false;
  std::string value = resolved(key, found);
  if (!found) fail(key, "required key is missing");
  return value;
}

double SectionReader::get_double(const std::string& key, double fallback) {
  bool found = false;
  const std::string value = resolved(key, found);
  if (!found) return fallback;
  try {
    return eval_expression(value);
  } catch (const std::invalid_argument& e) {
    fail(key, std::string("expected a number: ") + e.what());
  }
}

std::size_t SectionReader::get_size(const std::string& key, std::size_t fallback) {
  bool found = false;
  const std::string value = resolved(key, found);
  if (!found) return fallback;
  double parsed = 0.0;
  try {
    parsed = eval_expression(value);
  } catch (const std::invalid_argument& e) {
    fail(key, std::string("expected a non-negative integer: ") + e.what());
  }
  if (!(parsed >= 0.0) || parsed != std::floor(parsed)) {
    fail(key, "expected a non-negative integer, got '" + value + "'");
  }
  return static_cast<std::size_t>(parsed);
}

int SectionReader::get_int(const std::string& key, int fallback) {
  bool found = false;
  const std::string value = resolved(key, found);
  if (!found) return fallback;
  double parsed = 0.0;
  try {
    parsed = eval_expression(value);
  } catch (const std::invalid_argument& e) {
    fail(key, std::string("expected an integer: ") + e.what());
  }
  if (parsed != std::floor(parsed)) {
    fail(key, "expected an integer, got '" + value + "'");
  }
  return static_cast<int>(parsed);
}

bool SectionReader::get_bool(const std::string& key, bool fallback) {
  bool found = false;
  const std::string value = resolved(key, found);
  if (!found) return fallback;
  if (value == "true" || value == "on" || value == "yes" || value == "1") return true;
  if (value == "false" || value == "off" || value == "no" || value == "0") return false;
  fail(key, "expected a boolean (true/false/on/off/yes/no/1/0), got '" + value + "'");
}

std::uint64_t SectionReader::get_uint64(const std::string& key,
                                        std::uint64_t fallback) {
  bool found = false;
  const std::string value = resolved(key, found);
  if (!found) return fallback;
  char* end = nullptr;
  const int base = value.rfind("0x", 0) == 0 || value.rfind("0X", 0) == 0 ? 16 : 10;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, base);
  if (end == value.c_str() || *end != '\0') {
    fail(key, "expected a 64-bit integer (decimal or 0x hex), got '" + value + "'");
  }
  return static_cast<std::uint64_t>(parsed);
}

std::vector<std::string> SectionReader::get_string_list(
    const std::string& key, const std::vector<std::string>& fallback) {
  bool found = false;
  const std::string value = resolved(key, found);
  return found ? split_csv(value) : fallback;
}

std::vector<double> SectionReader::get_double_list(
    const std::string& key, const std::vector<double>& fallback) {
  bool found = false;
  const std::string value = resolved(key, found);
  if (!found) return fallback;
  std::vector<double> out;
  for (const std::string& token : split_csv(value)) {
    try {
      out.push_back(eval_expression(token));
    } catch (const std::invalid_argument& e) {
      fail(key, std::string("expected a list of numbers: ") + e.what());
    }
  }
  return out;
}

std::vector<std::size_t> SectionReader::get_size_list(
    const std::string& key, const std::vector<std::size_t>& fallback) {
  bool found = false;
  const std::string value = resolved(key, found);
  if (!found) return fallback;
  std::vector<std::size_t> out;
  for (const std::string& token : split_csv(value)) {
    double parsed = 0.0;
    try {
      parsed = eval_expression(token);
    } catch (const std::invalid_argument& e) {
      fail(key, std::string("expected a list of non-negative integers: ") + e.what());
    }
    if (!(parsed >= 0.0) || parsed != std::floor(parsed)) {
      fail(key, "expected a list of non-negative integers, got '" + token + "'");
    }
    out.push_back(static_cast<std::size_t>(parsed));
  }
  return out;
}

std::vector<int> SectionReader::get_int_list(const std::string& key,
                                             const std::vector<int>& fallback) {
  bool found = false;
  const std::string value = resolved(key, found);
  if (!found) return fallback;
  std::vector<int> out;
  for (const std::string& token : split_csv(value)) {
    double parsed = 0.0;
    try {
      parsed = eval_expression(token);
    } catch (const std::invalid_argument& e) {
      fail(key, std::string("expected a list of integers: ") + e.what());
    }
    if (parsed != std::floor(parsed)) {
      fail(key, "expected a list of integers, got '" + token + "'");
    }
    out.push_back(static_cast<int>(parsed));
  }
  return out;
}

void SectionReader::finish() const {
  if (section_ptr_ == nullptr) return;
  for (const std::string& key : section_ptr_->order) {
    if (consumed_.count(key) != 0) continue;
    const IniValue& value = section_ptr_->values.at(key);
    throw std::invalid_argument("scenario: unknown key " + where(key) + " (" +
                                value.file + ":" + std::to_string(value.line) + ")");
  }
}

}  // namespace xl::scenario
