#include "scenario/spec.hpp"

#include <cstdio>
#include <cstdlib>
#include <set>
#include <stdexcept>

#include "dnn/models.hpp"
#include "fleet/fleet_types.hpp"

namespace xl::scenario {

namespace {

std::string fmt(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::string fmt(std::size_t value) { return std::to_string(value); }
std::string fmt(int value) { return std::to_string(value); }
std::string fmt(bool value) { return value ? "true" : "false"; }

template <typename T>
std::string join(const std::vector<T>& values) {
  std::string out;
  for (const T& v : values) {
    if (!out.empty()) out += ", ";
    if constexpr (std::is_same_v<T, std::string>) {
      out += v;
    } else {
      out += fmt(v);
    }
  }
  return out;
}

core::Variant variant_from_token(const std::string& token, const std::string& where) {
  if (token == "base") return core::Variant::kBase;
  if (token == "base_ted") return core::Variant::kBaseTed;
  if (token == "opt") return core::Variant::kOpt;
  if (token == "opt_ted") return core::Variant::kOptTed;
  throw std::invalid_argument("scenario: " + where + ": unknown variant '" + token +
                              "' (expected base|base_ted|opt|opt_ted)");
}

/// Canonical stage-token encoding whose EffectConfig::parse round-trip is
/// the identity (summary() alone is not: its "none" means all-off, while
/// parse("none") keeps the legacy crosstalk-on datapath).
std::string effect_stage_tokens(const core::EffectConfig& effects) {
  std::string out;
  const auto add = [&out](const char* token) {
    if (!out.empty()) out += ',';
    out += token;
  };
  if (effects.thermal) add("thermal");
  if (effects.fpv) add("fpv");
  if (effects.noise) add("noise");
  if (!effects.crosstalk) add("nocrosstalk");
  return out.empty() ? "none" : out;
}

}  // namespace

std::string variant_token(core::Variant v) {
  switch (v) {
    case core::Variant::kBase: return "base";
    case core::Variant::kBaseTed: return "base_ted";
    case core::Variant::kOpt: return "opt";
    case core::Variant::kOptTed: return "opt_ted";
  }
  throw std::invalid_argument("scenario: unknown variant enum value");
}

core::Variant variant_from_name(const std::string& token) {
  return variant_from_token(token, "variant");
}

std::string mode_name(Mode mode) {
  switch (mode) {
    case Mode::kEvaluate: return "evaluate";
    case Mode::kFunctional: return "functional";
    case Mode::kDse: return "dse";
    case Mode::kServe: return "serve";
    case Mode::kFleet: return "fleet";
  }
  throw std::invalid_argument("scenario: unknown mode enum value");
}

Mode mode_from_name(const std::string& name) {
  if (name == "evaluate") return Mode::kEvaluate;
  if (name == "functional") return Mode::kFunctional;
  if (name == "dse") return Mode::kDse;
  if (name == "serve") return Mode::kServe;
  if (name == "fleet") return Mode::kFleet;
  throw std::invalid_argument(
      "scenario: [scenario].mode: unknown mode '" + name +
      "' (expected evaluate|functional|dse|serve|fleet)");
}

const char* ArrivalSpec::process_name(Process p) {
  switch (p) {
    case Process::kBurst: return "burst";
    case Process::kPoisson: return "poisson";
    case Process::kTrace: return "trace";
  }
  throw std::invalid_argument("scenario: unknown arrival process enum value");
}

ArrivalSpec::Process ArrivalSpec::process_from_name(const std::string& name) {
  if (name == "burst") return Process::kBurst;
  if (name == "poisson") return Process::kPoisson;
  if (name == "trace") return Process::kTrace;
  throw std::invalid_argument("scenario: [arrivals].process: unknown process '" +
                              name + "' (expected burst|poisson|trace)");
}

std::vector<std::size_t> ArrivalSpec::request_rows(std::size_t max_rows) const {
  std::vector<std::size_t> rows;
  if (process == Process::kTrace) {
    rows.reserve(trace.size());
    for (const std::size_t r : trace) rows.push_back(std::min(r, max_rows));
  } else {
    // The canonical mixed-size cycle of serve::make_mixed_size_trace, so
    // burst and Poisson scenarios replay the exact workload every serving
    // determinism claim in the repo is pinned to.
    rows.reserve(requests);
    for (std::size_t i = 0; i < requests; ++i) {
      rows.push_back(std::min<std::size_t>(1 + i % 4, max_rows));
    }
  }
  return rows;
}

ScenarioSpec ScenarioSpec::parse(const ScenarioDocument& doc,
                                 const std::vector<std::string>& extra_sections) {
  ScenarioSpec spec;

  // Reject unknown sections by name before touching any key: a misspelled
  // section would otherwise be ignored wholesale.
  const std::set<std::string> known = {"scenario", "vars",     "architecture",
                                       "datapath", "effects",  "models",
                                       "eval",     "arrivals", "serving",
                                       "fleet",    "dse"};
  for (const std::string& name : doc.section_names()) {
    if (known.count(name) != 0) continue;
    // "x-" prefixed sections are private extension payloads (e.g. [x-fig4]
    // carrying a bench's sweep axes) — always admitted, consumed by their
    // owner via SectionReader, never by the spec.
    if (name.rfind("x-", 0) == 0) continue;
    bool allowed = false;
    for (const std::string& extra : extra_sections) allowed |= extra == name;
    if (!allowed) {
      throw std::invalid_argument("scenario: unknown section [" + name + "] in " +
                                  doc.path());
    }
  }

  {
    SectionReader s(doc, "scenario");
    spec.name = s.get_string("name", spec.name);
    spec.description = s.get_string("description", spec.description);
    spec.mode = mode_from_name(s.get_string("mode", mode_name(spec.mode)));
    s.finish();
  }

  {
    SectionReader s(doc, "architecture");
    core::ArchitectureConfig& a = spec.config.architecture;
    a.conv_unit_size = s.get_size("N", a.conv_unit_size);
    a.fc_unit_size = s.get_size("K", a.fc_unit_size);
    a.conv_units = s.get_size("n", a.conv_units);
    a.fc_units = s.get_size("m", a.fc_units);
    a.mrs_per_bank = s.get_size("mrs_per_bank", a.mrs_per_bank);
    a.resolution_bits = s.get_int("resolution_bits", a.resolution_bits);
    a.variant = variant_from_token(s.get_string("variant", variant_token(a.variant)),
                                   s.where("variant"));
    a.pitch_ted_um = s.get_double("pitch_ted_um", a.pitch_ted_um);
    a.pitch_guard_um = s.get_double("pitch_guard_um", a.pitch_guard_um);
    s.finish();
    // The datapath view mirrors the architecture resolution unless the
    // [datapath] section overrides it (the CLI's --resolution contract).
    spec.config.vdp.resolution_bits = a.resolution_bits;
  }

  {
    SectionReader s(doc, "datapath");
    core::VdpSimOptions& v = spec.config.vdp;
    v.mrs_per_bank = s.get_size("mrs_per_bank", v.mrs_per_bank);
    v.resolution_bits = s.get_int("resolution_bits", v.resolution_bits);
    v.q_factor = s.get_double("q_factor", v.q_factor);
    v.fsr_nm = s.get_double("fsr_nm", v.fsr_nm);
    v.center_wavelength_nm = s.get_double("center_wavelength_nm", v.center_wavelength_nm);
    v.model_crosstalk = s.get_bool("crosstalk", v.model_crosstalk);
    s.finish();
  }

  {
    SectionReader s(doc, "effects");
    core::EffectConfig& e = spec.config.vdp.effects;
    const std::string stages = s.get_string("stages", effect_stage_tokens(e));
    try {
      e = core::EffectConfig::parse(stages);
    } catch (const std::invalid_argument& err) {
      throw std::invalid_argument("scenario: " + s.where("stages") + ": " +
                                  err.what());
    }
    e.seed = s.get_uint64("seed", e.seed);
    e.thermal_stage.pitch_um = s.get_double("thermal.pitch_um", e.thermal_stage.pitch_um);
    e.thermal_stage.use_ted = s.get_bool("thermal.use_ted", e.thermal_stage.use_ted);
    e.thermal_stage.ambient_drift_nm =
        s.get_double("thermal.ambient_drift_nm", e.thermal_stage.ambient_drift_nm);
    e.thermal_stage.ambient_period_us =
        s.get_double("thermal.ambient_period_us", e.thermal_stage.ambient_period_us);
    e.thermal_stage.dt_us = s.get_double("thermal.dt_us", e.thermal_stage.dt_us);
    const std::string design = s.get_string(
        "fpv.design", e.fpv_stage.design == photonics::MrDesignKind::kOptimized
                          ? "optimized"
                          : "conventional");
    if (design == "optimized") {
      e.fpv_stage.design = photonics::MrDesignKind::kOptimized;
    } else if (design == "conventional") {
      e.fpv_stage.design = photonics::MrDesignKind::kConventional;
    } else {
      throw std::invalid_argument("scenario: " + s.where("fpv.design") +
                                  ": expected optimized|conventional, got '" +
                                  design + "'");
    }
    e.fpv_stage.pitch_um = s.get_double("fpv.pitch_um", e.fpv_stage.pitch_um);
    e.fpv_stage.trim_residual_fraction = s.get_double(
        "fpv.trim_residual_fraction", e.fpv_stage.trim_residual_fraction);
    e.noise_stage.optical_power_mw =
        s.get_double("noise.optical_power_mw", e.noise_stage.optical_power_mw);
    s.finish();
  }

  {
    SectionReader s(doc, "models");
    spec.models = s.get_string_list("models", spec.models);
    spec.backends = s.get_string_list("backends", spec.backends);
    if (spec.models.empty()) {
      throw std::invalid_argument("scenario: " + s.where("models") +
                                  ": at least one model is required");
    }
    if (spec.backends.empty()) {
      throw std::invalid_argument("scenario: " + s.where("backends") +
                                  ": at least one backend is required");
    }
    s.finish();
  }

  {
    SectionReader s(doc, "eval");
    spec.config.functional_samples =
        s.get_size("samples", spec.config.functional_samples);
    spec.config.eval_batch_size = s.get_size("batch_size", spec.config.eval_batch_size);
    spec.train_epochs = s.get_size("train_epochs", spec.train_epochs);
    spec.config.track_layer_error =
        s.get_bool("track_layer_error", spec.config.track_layer_error);
    s.finish();
  }

  {
    SectionReader s(doc, "arrivals");
    ArrivalSpec& a = spec.arrivals;
    a.process = ArrivalSpec::process_from_name(
        s.get_string("process", ArrivalSpec::process_name(a.process)));
    a.requests = s.get_size("requests", a.requests);
    a.rate_per_s = s.get_double("rate_per_s", a.rate_per_s);
    a.seed = s.get_uint64("seed", a.seed);
    a.trace = s.get_size_list("trace", a.trace);
    if (a.process == ArrivalSpec::Process::kTrace && a.trace.empty()) {
      throw std::invalid_argument("scenario: " + s.where("trace") +
                                  ": process = trace requires a non-empty trace");
    }
    for (const std::size_t rows : a.trace) {
      if (rows == 0) {
        throw std::invalid_argument("scenario: " + s.where("trace") +
                                    ": trace rows must be positive");
      }
    }
    if (a.process != ArrivalSpec::Process::kTrace && a.requests == 0) {
      throw std::invalid_argument("scenario: " + s.where("requests") +
                                  ": at least one request is required");
    }
    if (a.rate_per_s <= 0.0) {
      throw std::invalid_argument("scenario: " + s.where("rate_per_s") +
                                  ": arrival rate must be positive");
    }
    s.finish();
  }

  {
    SectionReader s(doc, "serving");
    serve::ServingOptions& o = spec.serving;
    o.workers = s.get_size("workers", o.workers);
    o.max_batch = s.get_size("max_batch", o.max_batch);
    o.deadline_us = s.get_double("deadline_us", o.deadline_us);
    o.queue_capacity = s.get_size("queue_capacity", o.queue_capacity);
    o.pace_hardware_time = s.get_bool("pace_hardware_time", o.pace_hardware_time);
    o.pace_scale = s.get_double("pace_scale", o.pace_scale);
    o.use_execution_plan = s.get_bool("use_execution_plan", o.use_execution_plan);
    spec.tenants = s.get_size("tenants", spec.tenants);
    if (spec.tenants == 0) {
      throw std::invalid_argument("scenario: " + s.where("tenants") +
                                  ": at least one tenant is required");
    }
    s.finish();
  }

  {
    SectionReader s(doc, "fleet");
    spec.fleet_nodes = s.get_size("nodes", spec.fleet_nodes);
    spec.fleet_partition = s.get_string("partition", spec.fleet_partition);
    spec.fleet_model_parallel =
        s.get_bool("model_parallel", spec.fleet_model_parallel);
    try {
      (void)fleet::FleetPartition::parse(spec.fleet_partition);
    } catch (const std::invalid_argument& err) {
      throw std::invalid_argument("scenario: " + s.where("partition") + ": " +
                                  err.what());
    }
    s.finish();
  }

  {
    SectionReader s(doc, "dse");
    core::DseSweep& d = spec.config.dse;
    d.conv_unit_sizes = s.get_size_list("N", d.conv_unit_sizes);
    d.fc_unit_sizes = s.get_size_list("K", d.fc_unit_sizes);
    d.conv_unit_counts = s.get_size_list("n", d.conv_unit_counts);
    d.fc_unit_counts = s.get_size_list("m", d.fc_unit_counts);
    d.max_area_mm2 = s.get_double("max_area_mm2", d.max_area_mm2);
    d.area_budgets_mm2 = s.get_double_list("budgets_mm2", d.area_budgets_mm2);
    d.resolution_bits = s.get_int_list("resolutions", d.resolution_bits);
    std::vector<std::string> variant_tokens;
    for (const core::Variant v : d.variants) variant_tokens.push_back(variant_token(v));
    variant_tokens = s.get_string_list("variants", variant_tokens);
    d.variants.clear();
    for (const std::string& token : variant_tokens) {
      d.variants.push_back(variant_from_token(token, s.where("variants")));
    }
    spec.dse_top_k = s.get_size("top_k", spec.dse_top_k);
    spec.dse_serial = s.get_bool("serial", spec.dse_serial);
    s.finish();
    // The sweep inherits the scenario architecture as its non-swept base
    // and explores the scenario variant unless a variants axis is given.
    d.variant = spec.config.architecture.variant;
    d.base = spec.config.architecture;
  }

  spec.validate();
  return spec;
}

ScenarioSpec ScenarioSpec::load(const std::string& path,
                                const std::vector<std::string>& extra_sections) {
  return parse(ScenarioDocument::parse_file(path), extra_sections);
}

void ScenarioSpec::validate() const {
  (void)model_zoo();  // Rejects unknown model tokens by name.
  try {
    config.validate();
    serving.validate();
  } catch (const std::invalid_argument& err) {
    throw std::invalid_argument("scenario '" + name + "': " + err.what());
  }
  if (mode == Mode::kFleet && fleet_nodes == 0) {
    throw std::invalid_argument(
        "scenario '" + name + "': [fleet].nodes: mode = fleet requires nodes >= 1");
  }
  if (tenants > 1 && mode == Mode::kFleet) {
    throw std::invalid_argument(
        "scenario '" + name +
        "': [serving].tenants: multi-tenant registration is a serve-mode "
        "feature (the fleet registers the dp/mp pair instead)");
  }
}

std::vector<dnn::ModelSpec> ScenarioSpec::model_zoo() const {
  const std::vector<dnn::ModelSpec> zoo = dnn::table1_models();
  std::vector<bool> selected(zoo.size(), false);
  for (const std::string& token : models) {
    if (token == "table1" || token == "all") {
      selected.assign(zoo.size(), true);
    } else if (token == "lenet5") {
      selected[0] = true;
    } else if (token == "cnn_cifar10") {
      selected[1] = true;
    } else if (token == "cnn_stl10") {
      selected[2] = true;
    } else if (token == "siamese") {
      selected[3] = true;
    } else {
      throw std::invalid_argument(
          "scenario: [models].models: unknown model '" + token +
          "' (expected table1|lenet5|cnn_cifar10|cnn_stl10|siamese)");
    }
  }
  std::vector<dnn::ModelSpec> out;
  for (std::size_t i = 0; i < zoo.size(); ++i) {
    if (selected[i]) out.push_back(zoo[i]);
  }
  return out;
}

std::string ScenarioSpec::serialize() const {
  std::string out;
  const auto kv = [&out](const std::string& key, const std::string& value) {
    out += key + " = " + value + "\n";
  };

  out += "[scenario]\n";
  kv("name", name);
  kv("description", description);
  kv("mode", mode_name(mode));

  const core::ArchitectureConfig& a = config.architecture;
  out += "\n[architecture]\n";
  kv("N", fmt(a.conv_unit_size));
  kv("K", fmt(a.fc_unit_size));
  kv("n", fmt(a.conv_units));
  kv("m", fmt(a.fc_units));
  kv("mrs_per_bank", fmt(a.mrs_per_bank));
  kv("resolution_bits", fmt(a.resolution_bits));
  kv("variant", variant_token(a.variant));
  kv("pitch_ted_um", fmt(a.pitch_ted_um));
  kv("pitch_guard_um", fmt(a.pitch_guard_um));

  const core::VdpSimOptions& v = config.vdp;
  out += "\n[datapath]\n";
  kv("mrs_per_bank", fmt(v.mrs_per_bank));
  kv("resolution_bits", fmt(v.resolution_bits));
  kv("q_factor", fmt(v.q_factor));
  kv("fsr_nm", fmt(v.fsr_nm));
  kv("center_wavelength_nm", fmt(v.center_wavelength_nm));
  kv("crosstalk", fmt(v.model_crosstalk));

  const core::EffectConfig& e = v.effects;
  out += "\n[effects]\n";
  kv("stages", effect_stage_tokens(e));
  {
    char seed[32];
    std::snprintf(seed, sizeof seed, "0x%llX",
                  static_cast<unsigned long long>(e.seed));
    kv("seed", seed);
  }
  kv("thermal.pitch_um", fmt(e.thermal_stage.pitch_um));
  kv("thermal.use_ted", fmt(e.thermal_stage.use_ted));
  kv("thermal.ambient_drift_nm", fmt(e.thermal_stage.ambient_drift_nm));
  kv("thermal.ambient_period_us", fmt(e.thermal_stage.ambient_period_us));
  kv("thermal.dt_us", fmt(e.thermal_stage.dt_us));
  kv("fpv.design", e.fpv_stage.design == photonics::MrDesignKind::kOptimized
                       ? "optimized"
                       : "conventional");
  kv("fpv.pitch_um", fmt(e.fpv_stage.pitch_um));
  kv("fpv.trim_residual_fraction", fmt(e.fpv_stage.trim_residual_fraction));
  kv("noise.optical_power_mw", fmt(e.noise_stage.optical_power_mw));

  out += "\n[models]\n";
  kv("models", join(models));
  kv("backends", join(backends));

  out += "\n[eval]\n";
  kv("samples", fmt(config.functional_samples));
  kv("batch_size", fmt(config.eval_batch_size));
  kv("train_epochs", fmt(train_epochs));
  kv("track_layer_error", fmt(config.track_layer_error));

  out += "\n[arrivals]\n";
  kv("process", ArrivalSpec::process_name(arrivals.process));
  kv("requests", fmt(arrivals.requests));
  kv("rate_per_s", fmt(arrivals.rate_per_s));
  kv("seed", fmt(static_cast<std::size_t>(arrivals.seed)));
  if (!arrivals.trace.empty()) kv("trace", join(arrivals.trace));

  out += "\n[serving]\n";
  kv("workers", fmt(serving.workers));
  kv("max_batch", fmt(serving.max_batch));
  kv("deadline_us", fmt(serving.deadline_us));
  kv("queue_capacity", fmt(serving.queue_capacity));
  kv("tenants", fmt(tenants));
  kv("pace_hardware_time", fmt(serving.pace_hardware_time));
  kv("pace_scale", fmt(serving.pace_scale));
  kv("use_execution_plan", fmt(serving.use_execution_plan));

  out += "\n[fleet]\n";
  kv("nodes", fmt(fleet_nodes));
  kv("partition", fleet_partition);
  kv("model_parallel", fmt(fleet_model_parallel));

  const core::DseSweep& d = config.dse;
  out += "\n[dse]\n";
  kv("N", join(d.conv_unit_sizes));
  kv("K", join(d.fc_unit_sizes));
  kv("n", join(d.conv_unit_counts));
  kv("m", join(d.fc_unit_counts));
  if (!d.variants.empty()) {
    std::vector<std::string> tokens;
    for (const core::Variant variant : d.variants) {
      tokens.push_back(variant_token(variant));
    }
    kv("variants", join(tokens));
  }
  if (!d.resolution_bits.empty()) kv("resolutions", join(d.resolution_bits));
  if (!d.area_budgets_mm2.empty()) kv("budgets_mm2", join(d.area_budgets_mm2));
  kv("max_area_mm2", fmt(d.max_area_mm2));
  kv("top_k", fmt(dse_top_k));
  kv("serial", fmt(dse_serial));

  return out;
}

std::string default_scenario_dir() {
  if (const char* env = std::getenv("XL_SCENARIO_DIR"); env != nullptr && *env != '\0') {
    return env;
  }
#ifdef XL_SCENARIO_DIR
  return XL_SCENARIO_DIR;
#else
  return "scenarios";
#endif
}

std::string scenario_path(const std::string& name) {
  if (name.find('/') != std::string::npos ||
      (name.size() > 4 && name.compare(name.size() - 4, 4, ".ini") == 0)) {
    return name;
  }
  return default_scenario_dir() + "/" + name + ".ini";
}

}  // namespace xl::scenario
