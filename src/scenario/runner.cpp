#include "scenario/runner.hpp"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <random>
#include <thread>
#include <utility>

#include "api/json_writer.hpp"
#include "api/session.hpp"
#include "dnn/datasets.hpp"
#include "dnn/loss.hpp"
#include "dnn/models.hpp"
#include "fleet/coordinator.hpp"
#include "serve/model_repository.hpp"
#include "serve/serving_runtime.hpp"

namespace xl::scenario {

namespace {

/// Build the request tensors of an arrival spec: each request slices
/// `rows[i]` consecutive samples from the dataset, cursor wrapping to 0
/// when a slice would run past the end (the make_mixed_size_trace
/// convention, generalized to arbitrary row lists for trace replay).
std::vector<dnn::Tensor> build_trace(
    const dnn::Dataset& data, const std::vector<std::size_t>& rows,
    std::vector<std::pair<std::size_t, std::size_t>>& slices) {
  std::vector<dnn::Tensor> trace;
  trace.reserve(rows.size());
  slices.clear();
  slices.reserve(rows.size());
  std::size_t cursor = 0;
  for (const std::size_t r : rows) {
    if (r > data.size()) {
      throw std::invalid_argument("scenario: trace slice larger than the dataset");
    }
    if (cursor + r > data.size()) cursor = 0;
    trace.push_back(dnn::batch_images(data, cursor, r));
    slices.emplace_back(cursor, r);
    cursor += r;
  }
  return trace;
}

/// Open-loop pacing gaps in microseconds, one per request. Burst and trace
/// replay submit back to back (all zero); Poisson draws exponential
/// inter-arrival gaps at rate_per_s. Gaps shape queueing dynamics only —
/// never the logits — so they live outside the determinism contract.
std::vector<double> arrival_gaps_us(const ArrivalSpec& arrivals,
                                    std::size_t requests) {
  std::vector<double> gaps(requests, 0.0);
  if (arrivals.process == ArrivalSpec::Process::kPoisson) {
    std::mt19937_64 rng(arrivals.seed);
    std::exponential_distribution<double> gap(arrivals.rate_per_s / 1e6);
    for (double& g : gaps) g = gap(rng);
  }
  return gaps;
}

void write_config_echo(api::JsonWriter& writer, const ScenarioSpec& spec) {
  const core::ArchitectureConfig& a = spec.config.architecture;
  writer.begin_object("config");
  writer.field("N", a.conv_unit_size);
  writer.field("K", a.fc_unit_size);
  writer.field("n", a.conv_units);
  writer.field("m", a.fc_units);
  writer.field("mrs_per_bank", a.mrs_per_bank);
  writer.field("resolution_bits", a.resolution_bits);
  writer.field("variant", core::variant_name(a.variant));
  writer.end_object();
}

std::string hex64(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

ScenarioOutcome run_evaluate(const ScenarioSpec& spec, api::Session& session,
                             api::JsonWriter& writer) {
  ScenarioOutcome outcome;
  const std::vector<dnn::ModelSpec> zoo = spec.model_zoo();
  writer.begin_array("results");
  for (const std::string& backend : spec.backends) {
    if (session.backend(backend).capabilities().needs_network) {
      throw std::invalid_argument(
          "scenario '" + spec.name + "': backend '" + backend +
          "' executes real tensors — use mode = functional for it");
    }
    for (const dnn::ModelSpec& model : zoo) {
      api::EvalResult result = session.evaluate(backend, model);
      writer.begin_object();
      writer.field("backend", backend);
      writer.field("model", model.name);
      if (result.has_report) {
        writer.field("fps", result.report.perf.fps);
        writer.field("frame_latency_us", result.report.perf.frame_latency_us);
        writer.field("power_w", result.report.power.total_w());
        writer.field("area_mm2", result.report.area_mm2);
      } else {
        writer.field("platform", result.summary.accelerator);
      }
      writer.field("epb_pj_per_bit", result.epb_pj());
      writer.field("kfps_per_watt", result.kfps_per_watt());
      writer.end_object();
      outcome.evals.push_back({backend, model.name, std::move(result)});
    }
  }
  writer.end_array();
  writer.begin_object("timing");
  writer.end_object();
  return outcome;
}

ScenarioOutcome run_functional(const ScenarioSpec& spec, api::Session& session,
                               api::JsonWriter& writer) {
  ScenarioOutcome outcome;
  dnn::Table1ProxyMlp proxy = dnn::train_table1_proxy_mlp(spec.train_epochs);
  outcome.float_accuracy = proxy.float_accuracy;
  const std::vector<dnn::ModelSpec> zoo = spec.model_zoo();
  const dnn::ModelSpec& reference = zoo.front();

  writer.field("functional_model", "table1-proxy-mlp");
  writer.field("float_test_accuracy", proxy.float_accuracy);
  writer.begin_array("functional");
  for (const std::string& backend : spec.backends) {
    api::EvalResult result =
        session.evaluate_functional(backend, reference, proxy.net, proxy.test);
    const api::FunctionalMetrics& fn = result.functional;
    writer.begin_object();
    writer.field("backend", backend);
    writer.field("accuracy", fn.accuracy);
    writer.field("samples", fn.samples);
    writer.field("photonic_matmuls", fn.stats.photonic_matmuls);
    writer.field("photonic_dot_products", fn.stats.photonic_dot_products);
    writer.field("photonic_macs", fn.stats.photonic_macs);
    if (result.has_report) {
      writer.field("analytical_model", reference.name);
      writer.field("fps", result.report.perf.fps);
      writer.field("power_w", result.report.power.total_w());
      writer.field("epb_pj_per_bit", result.epb_pj());
    }
    writer.end_object();
    outcome.functional.push_back({backend, reference.name, std::move(result)});
  }
  writer.end_array();
  writer.begin_object("timing");
  writer.end_object();
  return outcome;
}

ScenarioOutcome run_dse(const ScenarioSpec& spec, api::Session& session,
                        api::JsonWriter& writer) {
  ScenarioOutcome outcome;
  core::DseEngine::Options options;
  options.parallel = !spec.dse_serial;
  const core::DseSweep& sweep = spec.config.dse;
  outcome.dse = session.run_dse(sweep, spec.model_zoo(), options);
  const core::DseResult& result = outcome.dse;
  const core::DsePoint& best = result.best();

  writer.begin_object("sweep");
  writer.field("variant", core::variant_name(sweep.variant_axis().front()));
  writer.field("max_area_mm2", sweep.max_area_mm2);
  writer.field("grid_candidates", result.stats.grid_candidates);
  writer.end_object();
  api::write_dse_stats(writer, result.stats);
  writer.begin_object("best");
  writer.field("N", best.conv_unit_size);
  writer.field("K", best.fc_unit_size);
  writer.field("n", best.conv_units);
  writer.field("m", best.fc_units);
  writer.field("fps_per_epb", best.fps_per_epb());
  writer.field("area_mm2", best.area_mm2);
  writer.end_object();
  const std::size_t shown =
      (spec.dse_top_k > 0 && spec.dse_top_k < result.points.size())
          ? spec.dse_top_k
          : result.points.size();
  api::write_dse_points(
      writer, "points",
      std::vector<core::DsePoint>(result.points.begin(),
                                  result.points.begin() +
                                      static_cast<long>(shown)));
  api::write_pareto_front(writer, result);
  if (!result.rejected.empty()) {
    api::write_dse_points(writer, "rejected", result.rejected);
  }
  writer.begin_object("timing");
  writer.end_object();
  return outcome;
}

/// The shared serve/fleet replay loop: submit the trace (paced by the
/// arrival gaps), score served accuracy against the dataset labels, and
/// fingerprint the logits in request order.
struct ReplayScore {
  double accuracy = 0.0;
  std::size_t samples = 0;
  std::uint64_t checksum = 0;
  double wall_us = 0.0;
};

template <typename SubmitFn>
ReplayScore replay(const dnn::Dataset& data,
                   const std::vector<dnn::Tensor>& trace,
                   const std::vector<std::pair<std::size_t, std::size_t>>& slices,
                   const std::vector<double>& gaps_us, SubmitFn&& submit) {
  const auto t0 = serve::Clock::now();
  std::vector<std::future<serve::InferResult>> futures;
  futures.reserve(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (gaps_us[i] > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::micro>(gaps_us[i]));
    }
    futures.push_back(submit(i, trace[i]));
  }

  ReplayScore score;
  double correct = 0.0;
  std::vector<dnn::Tensor> logits;
  logits.reserve(futures.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    serve::InferResult result = futures[i].get();
    const auto [start, rows] = slices[i];
    correct += static_cast<double>(rows) *
               dnn::accuracy(result.logits, dnn::batch_labels(data, start, rows));
    score.samples += rows;
    logits.push_back(std::move(result.logits));
  }
  score.wall_us =
      std::chrono::duration<double, std::micro>(serve::Clock::now() - t0).count();
  score.accuracy = correct / static_cast<double>(score.samples);
  score.checksum = fnv1a_logits(logits);
  return score;
}

ScenarioOutcome run_serve(const ScenarioSpec& spec, api::Session& session,
                          api::JsonWriter& writer) {
  ScenarioOutcome outcome;
  dnn::Table1ProxyMlp proxy = dnn::train_table1_proxy_mlp(spec.train_epochs);
  outcome.float_accuracy = proxy.float_accuracy;

  auto runtime = session.serve(spec.serving);
  // Tenant 0 keeps the canonical name (single-tenant scenarios match the
  // legacy CLI output); further tenants get -t<k> suffixed registrations of
  // the same prototype, so served accuracy is scored identically.
  std::vector<std::string> tenant_names;
  for (std::size_t t = 0; t < spec.tenants; ++t) {
    serve::ServedModel model = serve::table1_proxy_served_model(proxy.net);
    if (t > 0) model.name += "-t" + std::to_string(t);
    tenant_names.push_back(model.name);
    runtime->register_model(std::move(model));
  }
  runtime->start();

  std::vector<std::pair<std::size_t, std::size_t>> slices;
  const std::vector<std::size_t> rows =
      spec.arrivals.request_rows(spec.serving.max_batch);
  const std::vector<dnn::Tensor> trace = build_trace(proxy.test, rows, slices);
  const std::vector<double> gaps = arrival_gaps_us(spec.arrivals, trace.size());

  const ReplayScore score =
      replay(proxy.test, trace, slices, gaps, [&](std::size_t i, const dnn::Tensor& in) {
        return runtime->submit(tenant_names[i % tenant_names.size()], in);
      });
  runtime->stop();
  outcome.serving_stats = runtime->stats();
  outcome.served_accuracy = score.accuracy;
  outcome.served_samples = score.samples;
  outcome.logits_checksum = score.checksum;
  outcome.wall_us = score.wall_us;
  outcome.achieved_fps = score.wall_us > 0.0
                             ? static_cast<double>(score.samples) * 1e6 / score.wall_us
                             : 0.0;

  writer.begin_object("serving");
  writer.field("model", "table1-proxy-mlp");
  writer.field("workers", spec.serving.workers);
  writer.field("max_batch", spec.serving.max_batch);
  writer.field("deadline_us", spec.serving.deadline_us);
  writer.field("tenants", spec.tenants);
  writer.field("arrival_process", ArrivalSpec::process_name(spec.arrivals.process));
  writer.field("requests", outcome.serving_stats.requests);
  writer.field("samples", outcome.serving_stats.samples);
  writer.field("float_test_accuracy", proxy.float_accuracy);
  writer.field("served_accuracy", score.accuracy);
  writer.field("logits_fnv1a", hex64(score.checksum));
  writer.end_object();

  writer.begin_object("timing");
  writer.field("wall_us", score.wall_us);
  writer.field("achieved_fps", outcome.achieved_fps);
  const auto [p50, p99] = serve::latency_p50_p99_us(outcome.serving_stats.latency_us);
  writer.field("latency_p50_us", p50);
  writer.field("latency_p99_us", p99);
  api::write_serving_stats(writer, "serving", outcome.serving_stats);
  writer.end_object();
  return outcome;
}

ScenarioOutcome run_fleet(const ScenarioSpec& spec, api::Session& session,
                          api::JsonWriter& writer) {
  ScenarioOutcome outcome;
  dnn::Table1ProxyMlp proxy = dnn::train_table1_proxy_mlp(spec.train_epochs);
  outcome.float_accuracy = proxy.float_accuracy;

  fleet::FleetOptions options;
  options.nodes = spec.fleet_nodes;
  options.partition = fleet::FleetPartition::parse(spec.fleet_partition);
  options.serving = spec.serving;
  auto coordinator = session.fleet(options);

  serve::ServedModel dp = serve::table1_proxy_served_model(proxy.net);
  coordinator->register_model({dp, /*model_parallel=*/false});
  if (spec.fleet_model_parallel) {
    serve::ServedModel mp = serve::table1_proxy_served_model(proxy.net);
    mp.name += "-mp";
    coordinator->register_model({std::move(mp), /*model_parallel=*/true});
  }
  coordinator->start();

  std::vector<std::pair<std::size_t, std::size_t>> slices;
  const std::vector<std::size_t> rows =
      spec.arrivals.request_rows(spec.serving.max_batch);
  const std::vector<dnn::Tensor> trace = build_trace(proxy.test, rows, slices);
  const std::vector<double> gaps = arrival_gaps_us(spec.arrivals, trace.size());

  const ReplayScore score =
      replay(proxy.test, trace, slices, gaps, [&](std::size_t i, const dnn::Tensor& in) {
        const bool mp = spec.fleet_model_parallel && i % 2 == 1;
        return coordinator->submit(mp ? "table1-proxy-mlp-mp" : "table1-proxy-mlp",
                                   in);
      });
  coordinator->stop();
  outcome.fleet_stats = coordinator->stats();
  outcome.served_accuracy = score.accuracy;
  outcome.served_samples = score.samples;
  outcome.logits_checksum = score.checksum;
  outcome.wall_us = score.wall_us;
  outcome.achieved_fps = score.wall_us > 0.0
                             ? static_cast<double>(score.samples) * 1e6 / score.wall_us
                             : 0.0;

  writer.begin_object("fleet");
  writer.field("nodes", spec.fleet_nodes);
  writer.field("partition", coordinator->options().partition.summary());
  writer.field("model_parallel", spec.fleet_model_parallel);
  writer.field("workers_per_node", spec.serving.workers);
  writer.field("max_batch", spec.serving.max_batch);
  writer.field("arrival_process", ArrivalSpec::process_name(spec.arrivals.process));
  writer.field("requests", outcome.fleet_stats.requests);
  writer.field("samples", score.samples);
  writer.field("float_test_accuracy", proxy.float_accuracy);
  writer.field("served_accuracy", score.accuracy);
  writer.field("logits_fnv1a", hex64(score.checksum));
  writer.end_object();

  writer.begin_object("timing");
  writer.field("wall_us", score.wall_us);
  writer.field("achieved_fps", outcome.achieved_fps);
  api::write_fleet_stats(writer, "fleet", outcome.fleet_stats);
  writer.end_object();
  return outcome;
}

}  // namespace

std::uint64_t fnv1a_logits(const std::vector<dnn::Tensor>& logits_per_request) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  const auto fold = [&hash](std::uint64_t word, int bytes) {
    for (int b = 0; b < bytes; ++b) {
      hash ^= (word >> (8 * b)) & 0xFFU;
      hash *= 0x100000001b3ULL;
    }
  };
  for (const dnn::Tensor& logits : logits_per_request) {
    fold(logits.numel(), 8);
    for (const float value : logits.span()) {
      std::uint32_t bits = 0;
      static_assert(sizeof bits == sizeof value);
      std::memcpy(&bits, &value, sizeof bits);
      fold(bits, 4);
    }
  }
  return hash;
}

ScenarioRunner::ScenarioRunner(ScenarioSpec spec) : spec_(std::move(spec)) {
  spec_.validate();
}

ScenarioOutcome ScenarioRunner::run() {
  api::Session session(spec_.config);
  api::JsonWriter writer;
  writer.field("scenario", spec_.name);
  if (!spec_.description.empty()) writer.field("description", spec_.description);
  writer.field("mode", mode_name(spec_.mode));
  write_config_echo(writer, spec_);
  api::write_effect_config(writer, spec_.config.vdp.effective_effects());

  ScenarioOutcome outcome;
  switch (spec_.mode) {
    case Mode::kEvaluate:
      outcome = run_evaluate(spec_, session, writer);
      break;
    case Mode::kFunctional:
      outcome = run_functional(spec_, session, writer);
      break;
    case Mode::kDse:
      outcome = run_dse(spec_, session, writer);
      break;
    case Mode::kServe:
      outcome = run_serve(spec_, session, writer);
      break;
    case Mode::kFleet:
      outcome = run_fleet(spec_, session, writer);
      break;
  }
  outcome.mode = spec_.mode;
  outcome.json = writer.finish();
  return outcome;
}

}  // namespace xl::scenario
