// Umbrella header of xl::scenario — the declarative workload DSL.
//
// Layering: scenario sits between api and the executables. A scenario file
// (INI dialect with expressions, ${var} substitution, and include
// composition — scenario/ini.hpp) parses into a validated ScenarioSpec
// (scenario/spec.hpp) that lowers onto the existing api::SimConfig /
// DseSweep / ServingOptions / FleetOptions types; ScenarioRunner
// (scenario/runner.hpp) executes a spec end to end and emits one
// normalized JSON report. The corpus lives in scenarios/*.ini with golden
// reports under scenarios/golden/.
#pragma once

#include "scenario/expression.hpp"
#include "scenario/ini.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
