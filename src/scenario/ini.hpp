// INI-style scenario documents: the untyped layer of the workload DSL.
//
// A scenario file is a sequence of `[section]` headers and `key = value`
// lines, with `#`/`;` comments, `include <path>` composition (paths are
// resolved relative to the including file; cycles are an error naming the
// chain), and `${var}` substitution from the `[vars]` section. Values are
// raw text here; SectionReader resolves substitutions and types them on
// access (strings, numbers through the expression grammar, booleans,
// comma-separated lists), and `finish()` rejects unknown keys by name —
// the same fail-loudly contract as crosslight_cli's unknown-flag handling,
// so a typo in a scenario file can never be silently ignored.
//
// Typical use:
//   ScenarioDocument doc = ScenarioDocument::parse_file("flash-crowd.ini");
//   SectionReader serving(doc, "serving");
//   std::size_t workers = serving.get_size("workers", 2);
//   serving.finish();   // throws on unconsumed (unknown) keys
//
// The typed ScenarioSpec built on top of this lives in scenario/spec.hpp.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace xl::scenario {

/// One `key = value` entry with its source position (for error messages).
struct IniValue {
  std::string raw;   ///< Right-hand side, comments stripped, trimmed.
  std::string file;  ///< Source file the line came from (includes resolved).
  int line = 0;
};

/// One `[section]`, keys in first-seen order. Re-opening a section (e.g. an
/// include overlaying a base file) merges: later keys override earlier ones
/// without disturbing the order of the survivors.
struct IniSection {
  std::string name;
  std::vector<std::string> order;            ///< Keys, first-seen order.
  std::map<std::string, IniValue> values;    ///< key -> value.

  [[nodiscard]] bool has(const std::string& key) const {
    return values.count(key) != 0;
  }
};

/// A parsed scenario document: ordered sections plus the merged `[vars]`
/// table every `${var}` reference resolves against.
class ScenarioDocument {
 public:
  /// Parse a file from disk, following `include` directives. Throws
  /// std::invalid_argument on syntax errors (naming file:line) and
  /// std::runtime_error on unreadable files or cyclic includes (naming the
  /// include chain).
  [[nodiscard]] static ScenarioDocument parse_file(const std::string& path);

  /// Parse from a string. `virtual_path` names the text in errors and
  /// anchors relative `include` paths (its directory part is used).
  [[nodiscard]] static ScenarioDocument parse_text(std::string_view text,
                                                   const std::string& virtual_path);

  [[nodiscard]] const IniSection* find(const std::string& name) const;
  [[nodiscard]] bool has_section(const std::string& name) const {
    return find(name) != nullptr;
  }
  /// Section names in first-seen order.
  [[nodiscard]] std::vector<std::string> section_names() const;

  /// Resolve every `${var}` reference in `raw` against [vars] (recursively,
  /// depth-capped). Throws std::invalid_argument naming an undefined
  /// variable or a substitution cycle; `context` (e.g. "serving.workers")
  /// prefixes the message.
  [[nodiscard]] std::string substitute(const std::string& raw,
                                       const std::string& context) const;

  /// Path the document was parsed from (diagnostics only).
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  void parse_into(std::string_view text, const std::string& path,
                  std::vector<std::string>& include_stack);

  std::string path_;
  std::vector<IniSection> sections_;  ///< First-seen order, names unique.
};

/// Typed, consumption-tracked view of one section. Every getter records the
/// key it touched; `finish()` then throws std::invalid_argument naming any
/// key that exists in the file but was never consumed ("unknown key
/// section.key in file:line") so scenario typos fail loudly. A missing
/// section behaves as empty — all defaults apply, finish() passes.
class SectionReader {
 public:
  SectionReader(const ScenarioDocument& doc, std::string section);

  [[nodiscard]] bool present() const noexcept { return section_ptr_ != nullptr; }
  [[nodiscard]] bool has(const std::string& key) const;

  // Each getter comes in a defaulted and a required flavor; the required
  // flavor throws std::invalid_argument naming section.key when absent.
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback);
  [[nodiscard]] std::string require_string(const std::string& key);
  [[nodiscard]] double get_double(const std::string& key, double fallback);
  [[nodiscard]] std::size_t get_size(const std::string& key, std::size_t fallback);
  [[nodiscard]] int get_int(const std::string& key, int fallback);
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback);
  /// 64-bit integers (seeds) parse directly — never through the double
  /// expression path, which would round above 2^53. Decimal or 0x hex.
  [[nodiscard]] std::uint64_t get_uint64(const std::string& key,
                                         std::uint64_t fallback);

  // Comma-separated lists; empty value -> empty list.
  [[nodiscard]] std::vector<std::string> get_string_list(
      const std::string& key, const std::vector<std::string>& fallback);
  [[nodiscard]] std::vector<double> get_double_list(
      const std::string& key, const std::vector<double>& fallback);
  [[nodiscard]] std::vector<std::size_t> get_size_list(
      const std::string& key, const std::vector<std::size_t>& fallback);
  [[nodiscard]] std::vector<int> get_int_list(const std::string& key,
                                              const std::vector<int>& fallback);

  /// Throw std::invalid_argument naming every present-but-unconsumed key
  /// ("scenario: unknown key [section].key (file:line)").
  void finish() const;

  /// The error-message prefix "[section].key".
  [[nodiscard]] std::string where(const std::string& key) const;

 private:
  /// Substituted raw text of a key; nullopt-style via `found`.
  [[nodiscard]] std::string resolved(const std::string& key, bool& found);
  [[noreturn]] void fail(const std::string& key, const std::string& what) const;

  const ScenarioDocument& doc_;
  std::string section_;
  const IniSection* section_ptr_;
  std::set<std::string> consumed_;
};

/// Trim ASCII whitespace from both ends.
[[nodiscard]] std::string trim(std::string_view text);

/// Split on top-level commas and trim each element; empty elements are
/// dropped (so trailing commas are harmless, mirroring EffectConfig::parse).
[[nodiscard]] std::vector<std::string> split_csv(std::string_view text);

}  // namespace xl::scenario
