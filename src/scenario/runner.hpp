// ScenarioRunner — execute one ScenarioSpec end to end.
//
// The runner is the single execution engine behind `crosslight_cli
// --scenario`, the scenario-corpus CI step, and the migrated examples: it
// builds an api::Session from the spec's lowered SimConfig, dispatches on
// the scenario mode (evaluate / functional / dse / serve / fleet), and
// emits ONE normalized JSON report via api::JsonWriter.
//
// Report normalization contract (tools/check_scenario_golden.py): every
// value outside the top-level "timing" object is deterministic — identical
// bits on every run, for any worker count, batch grouping, or partition map
// (the serve/fleet determinism contracts make served accuracy and the
// logits checksum deterministic fields). Everything wall-clock-dependent
// (latency, throughput, micro-batch counts, per-shard distribution) is
// collected under "timing", which the golden differ masks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/eval_types.hpp"
#include "core/dse_engine.hpp"
#include "fleet/fleet_types.hpp"
#include "scenario/spec.hpp"
#include "serve/serve_types.hpp"

namespace xl::scenario {

/// Everything a run produced: the normalized JSON report plus the
/// structured results, so text-mode consumers (the CLI's human-readable
/// output) never re-run or re-parse.
struct ScenarioOutcome {
  Mode mode = Mode::kEvaluate;
  std::string json;  ///< The normalized report (see header comment).

  /// evaluate mode: one row per (backend, model) pair, zoo-major order.
  struct EvalRow {
    std::string backend;
    std::string model;
    api::EvalResult result;
  };
  std::vector<EvalRow> evals;

  /// functional mode: one row per backend (EvalResult::functional filled).
  std::vector<EvalRow> functional;
  double float_accuracy = 0.0;  ///< Proxy MLP float test accuracy.

  /// dse mode.
  core::DseResult dse;

  /// serve / fleet modes.
  serve::ServingStats serving_stats;
  fleet::FleetStats fleet_stats;
  double served_accuracy = 0.0;
  std::uint64_t logits_checksum = 0;  ///< FNV-1a over logits, request order.
  std::size_t served_samples = 0;
  double wall_us = 0.0;
  double achieved_fps = 0.0;
};

class ScenarioRunner {
 public:
  /// Validates the spec (throws std::invalid_argument naming the scenario).
  explicit ScenarioRunner(ScenarioSpec spec);

  [[nodiscard]] const ScenarioSpec& spec() const noexcept { return spec_; }

  /// Execute the scenario. Exceptions from the underlying layers propagate
  /// with their original messages (the spec was already validated, so a
  /// throw here is an execution failure, not a configuration typo).
  [[nodiscard]] ScenarioOutcome run();

 private:
  ScenarioSpec spec_;
};

/// FNV-1a 64-bit over the bit patterns of `logits` tensors in request
/// order (rows and float payloads both folded in) — the serve/fleet
/// determinism fingerprint reported in scenario goldens.
[[nodiscard]] std::uint64_t fnv1a_logits(
    const std::vector<dnn::Tensor>& logits_per_request);

}  // namespace xl::scenario
