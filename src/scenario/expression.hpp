// Numeric expression grammar of the scenario DSL.
//
// A deliberately small evaluator in the spirit of OMNeT++'s NED expression
// language (expression.y), covering what declarative workload files need:
// decimal and hex literals, the four arithmetic operators plus modulo,
// unary sign, and parentheses. Variables are not resolved here — the
// document layer substitutes ${var} references textually before the value
// reaches this evaluator, so every input is a closed arithmetic term.
//
//   eval_expression("2 * (5 + 1)")   == 12.0
//   eval_expression("0xC0FFEE")      == 12648430.0
//   eval_expression("3 % 2 - 0.5")   == 0.5
//
// Errors (stray characters, unbalanced parentheses, division by zero)
// throw std::invalid_argument quoting the offending expression.
#pragma once

#include <string_view>

namespace xl::scenario {

/// Evaluate one arithmetic expression. Throws std::invalid_argument on any
/// syntax error, naming the expression text and the position.
[[nodiscard]] double eval_expression(std::string_view text);

/// True when `text` lexes as a plain number or arithmetic term (the
/// document layer uses this to decide whether a value is numeric or a
/// bare string, without throwing on ordinary words).
[[nodiscard]] bool looks_numeric(std::string_view text);

}  // namespace xl::scenario
