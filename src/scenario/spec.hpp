// ScenarioSpec — the typed, validated scenario document.
//
// One scenario file declares a complete workload: the model zoo and backend
// set, the architecture and signal-level datapath, the non-ideality effect
// stack, an arrival process (burst / open-loop Poisson / trace replay), the
// DSE axes, the serving policy, and the fleet topology. parse() consumes a
// ScenarioDocument section by section with unknown sections and keys
// rejected by name, lowers the values onto the existing api::SimConfig /
// core::DseSweep / serve::ServingOptions / fleet-shaped types, and
// validates the result — every error names [section].key and the source
// file:line. serialize() emits the canonical normal form (every knob
// explicit), and parse(serialize(spec)) is the identity: the round-trip
// contract pinned by tests/test_scenario.cpp.
//
// Section / key map (all optional; defaults mirror crosslight_cli's flags):
//   [scenario]     name, description, mode (evaluate|functional|dse|serve|fleet)
//   [vars]         free variables for ${var} substitution
//   [architecture] N, K, n, m, mrs_per_bank, resolution_bits, variant,
//                  pitch_ted_um, pitch_guard_um
//   [datapath]     mrs_per_bank, resolution_bits, q_factor, fsr_nm,
//                  center_wavelength_nm, crosstalk
//   [effects]      stages (EffectConfig::parse csv), seed, thermal.pitch_um,
//                  thermal.use_ted, thermal.ambient_drift_nm,
//                  thermal.ambient_period_us, thermal.dt_us, fpv.design,
//                  fpv.pitch_um, fpv.trim_residual_fraction,
//                  noise.optical_power_mw
//   [models]       models (lenet5|cnn_cifar10|cnn_stl10|siamese|table1),
//                  backends (registry names, or "all")
//   [eval]         samples, batch_size, train_epochs, track_layer_error
//   [arrivals]     process (burst|poisson|trace), requests, rate_per_s,
//                  seed, trace (rows per request)
//   [serving]      workers, max_batch, deadline_us, queue_capacity, tenants,
//                  pace_hardware_time, pace_scale, use_execution_plan
//   [fleet]        nodes, partition, model_parallel
//   [dse]          N, K, n, m, variants, resolutions, budgets_mm2,
//                  max_area_mm2, top_k, serial
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/eval_types.hpp"
#include "scenario/ini.hpp"
#include "serve/serve_types.hpp"

namespace xl::scenario {

enum class Mode : std::uint8_t { kEvaluate, kFunctional, kDse, kServe, kFleet };

[[nodiscard]] std::string mode_name(Mode mode);
[[nodiscard]] Mode mode_from_name(const std::string& name);

/// Scenario/CLI variant tokens: base | base_ted | opt | opt_ted (the
/// registry suffixes of the crosslight:* backends, distinct from the
/// paper-facing core::variant_name "Cross_opt_TED" spellings).
[[nodiscard]] std::string variant_token(core::Variant v);
[[nodiscard]] core::Variant variant_from_name(const std::string& token);

/// The request arrival process of serve/fleet scenarios. All three produce
/// the same per-request row sizes for the same settings, so the served
/// logits (and accuracy) are identical across processes — arrivals only
/// shape the queueing/batching dynamics, never the numerics.
struct ArrivalSpec {
  enum class Process : std::uint8_t {
    kBurst,    ///< Submit every request back to back (closed burst).
    kPoisson,  ///< Open loop: exponential inter-arrival gaps at rate_per_s.
    kTrace,    ///< Replay explicit per-request row counts from `trace`.
  };

  Process process = Process::kBurst;
  std::size_t requests = 64;      ///< Ignored by kTrace (trace length rules).
  double rate_per_s = 2000.0;     ///< Poisson arrival rate.
  std::uint64_t seed = 42;        ///< Poisson inter-arrival draws.
  std::vector<std::size_t> trace; ///< kTrace: rows per request, in order.

  [[nodiscard]] static const char* process_name(Process p);
  [[nodiscard]] static Process process_from_name(const std::string& name);

  /// Rows of each request this process emits (burst/poisson use the
  /// canonical 1..4 mixed-size cycle capped at max_rows; trace replays its
  /// explicit list, also capped). Never empty for valid specs.
  [[nodiscard]] std::vector<std::size_t> request_rows(std::size_t max_rows) const;
};

struct ScenarioSpec {
  std::string name = "unnamed";
  std::string description;
  Mode mode = Mode::kEvaluate;

  /// Lowered configuration consumed by api::Session (architecture, vdp
  /// datapath + effects, DSE sweep, functional eval knobs).
  api::SimConfig config;

  std::vector<std::string> models = {"table1"};  ///< Zoo selection tokens.
  std::vector<std::string> backends = {"crosslight:opt_ted"};

  std::size_t train_epochs = 20;  ///< Proxy-MLP recipe (functional/serve/fleet).

  ArrivalSpec arrivals;
  serve::ServingOptions serving{.workers = 2};  ///< CLI default worker count.
  std::size_t tenants = 1;        ///< Serve mode: proxy registrations.

  std::size_t fleet_nodes = 0;            ///< 0 = no fleet (serve runs locally).
  std::string fleet_partition = "round_robin";
  bool fleet_model_parallel = true;       ///< Register the -mp twin.

  std::size_t dse_top_k = 0;  ///< 0 = full ranking.
  bool dse_serial = false;

  /// Parse and validate a document. Sections prefixed "x-" (private
  /// extension payloads, e.g. [x-fig4] carrying a bench's sweep axes) are
  /// always admitted and left for the caller to consume via SectionReader;
  /// `extra_sections` names further caller-owned sections; any other
  /// unknown section is rejected by name. Throws std::invalid_argument /
  /// std::runtime_error with messages naming [section].key and file:line.
  [[nodiscard]] static ScenarioSpec parse(
      const ScenarioDocument& doc,
      const std::vector<std::string>& extra_sections = {});

  /// parse_file + parse in one step.
  [[nodiscard]] static ScenarioSpec load(
      const std::string& path, const std::vector<std::string>& extra_sections = {});

  /// Canonical normal form: every knob explicit, sections in the order of
  /// the map above. parse(serialize()) reproduces this spec exactly (the
  /// round-trip contract).
  [[nodiscard]] std::string serialize() const;

  /// Cross-field validation (the per-key checks run during parse). Throws
  /// std::invalid_argument naming the offending [section].key.
  void validate() const;

  /// The Table I models selected by `models` ("table1" expands to the full
  /// zoo; tokens are lenet5 / cnn_cifar10 / cnn_stl10 / siamese). Order
  /// follows the zoo, duplicates collapse.
  [[nodiscard]] std::vector<dnn::ModelSpec> model_zoo() const;
};

/// Directory scenario files are resolved from: $XL_SCENARIO_DIR when set,
/// else the compiled-in source-tree scenarios/ path, else "scenarios".
[[nodiscard]] std::string default_scenario_dir();

/// "<default_scenario_dir()>/<name>.ini" (a name already ending in .ini or
/// containing a '/' is returned as-is).
[[nodiscard]] std::string scenario_path(const std::string& name);

}  // namespace xl::scenario
