// Memory subsystem model tests.
#include <gtest/gtest.h>

#include "core/accelerator.hpp"
#include "core/memory.hpp"
#include "dnn/models.hpp"

namespace xl::core {
namespace {

struct Fixture {
  ArchitectureConfig cfg = best_config();
  ModelMapping mapping;
  PerformanceReport perf;

  explicit Fixture(const xl::dnn::ModelSpec& model) {
    mapping = map_model(model, cfg);
    perf = evaluate_performance(mapping, cfg);
  }
};

TEST(Memory, Validation) {
  const Fixture s(xl::dnn::lenet5_spec());
  MemoryParams bad;
  bad.bandwidth_gbps = 0.0;
  EXPECT_THROW((void)evaluate_memory(s.mapping, s.cfg, s.perf, bad), std::invalid_argument);
  bad = MemoryParams{};
  bad.sram_energy_pj_per_bit = -1.0;
  EXPECT_THROW((void)evaluate_memory(s.mapping, s.cfg, s.perf, bad), std::invalid_argument);
}

TEST(Memory, TrafficComponentsSum) {
  const Fixture s(xl::dnn::cnn_cifar10_spec());
  const MemoryReport m = evaluate_memory(s.mapping, s.cfg, s.perf);
  EXPECT_NEAR(m.traffic_bits_per_frame,
              m.weight_bits + m.activation_bits + m.partial_sum_bits, 1.0);
  EXPECT_GT(m.weight_bits, 0.0);
  EXPECT_GT(m.activation_bits, 0.0);
  EXPECT_GT(m.partial_sum_bits, 0.0);
}

TEST(Memory, HandTrafficOnTinyLayer) {
  // One dense layer 10 -> 10 on K = 150 units: 10 passes of chunk 150 each
  // (padded accounting uses unit_size), 10 partial sums + 10 results.
  ArchitectureConfig cfg = best_config();
  xl::dnn::ModelSpec tiny;
  tiny.name = "tiny";
  tiny.layers = {xl::dnn::dense_spec("fc", 10, 10)};
  const ModelMapping mapping = map_model(tiny, cfg);
  const PerformanceReport perf = evaluate_performance(mapping, cfg);
  const MemoryReport m = evaluate_memory(mapping, cfg, perf);
  const double bits = 16.0;
  EXPECT_NEAR(m.activation_bits, 10.0 * 150.0 * bits, 1e-9);
  EXPECT_NEAR(m.weight_bits, 10.0 * 150.0 * bits, 1e-9);
  EXPECT_NEAR(m.partial_sum_bits, (10.0 + 10.0) * bits, 1e-9);
}

TEST(Memory, MoreWorkMoreTraffic) {
  const Fixture small_model(xl::dnn::lenet5_spec());
  const Fixture big_model(xl::dnn::cnn_stl10_spec());
  const MemoryReport ms = evaluate_memory(small_model.mapping, small_model.cfg,
                                          small_model.perf);
  const MemoryReport mb =
      evaluate_memory(big_model.mapping, big_model.cfg, big_model.perf);
  EXPECT_GT(mb.traffic_bits_per_frame, ms.traffic_bits_per_frame);
}

TEST(Memory, RooflineDetectsStarvedPools) {
  const Fixture s(xl::dnn::cnn_cifar10_spec());
  MemoryParams huge;
  huge.bandwidth_gbps = 1e9;
  const MemoryReport fed = evaluate_memory(s.mapping, s.cfg, s.perf, huge);
  EXPECT_FALSE(fed.memory_bound());
  EXPECT_DOUBLE_EQ(fed.sustainable_fraction, 1.0);

  MemoryParams tiny;
  tiny.bandwidth_gbps = 1.0;
  const MemoryReport starved = evaluate_memory(s.mapping, s.cfg, s.perf, tiny);
  EXPECT_TRUE(starved.memory_bound());
  EXPECT_LT(starved.sustainable_fraction, 1.0);
  // Corrected latency stretches by exactly the starvation factor.
  EXPECT_NEAR(memory_corrected_latency_us(s.perf, starved),
              s.perf.frame_latency_us / starved.sustainable_fraction, 1e-9);
}

TEST(Memory, AccessPowerScalesWithEnergyPerBit) {
  const Fixture s(xl::dnn::lenet5_spec());
  MemoryParams cheap;
  cheap.sram_energy_pj_per_bit = 0.01;
  MemoryParams costly;
  costly.sram_energy_pj_per_bit = 0.10;
  const MemoryReport a = evaluate_memory(s.mapping, s.cfg, s.perf, cheap);
  const MemoryReport b = evaluate_memory(s.mapping, s.cfg, s.perf, costly);
  EXPECT_NEAR(b.access_power_mw, 10.0 * a.access_power_mw, 1e-6);
}

TEST(Memory, BufferSizedByWidestPool) {
  const Fixture s(xl::dnn::cnn_cifar10_spec());
  const MemoryReport m = evaluate_memory(s.mapping, s.cfg, s.perf);
  // Widest pool is conv (n = 100): 100 in-flight partials at 16 bits.
  EXPECT_NEAR(m.partial_sum_buffer_bits, 100.0 * 16.0, 1e-9);
}

TEST(Memory, DefaultBandwidthSustainsFlagship) {
  // The default 1 Tb/s global buffer must keep the paper configuration
  // compute-bound on conv-heavy work... or report honestly that it cannot.
  const Fixture s(xl::dnn::cnn_stl10_spec());
  const MemoryReport m = evaluate_memory(s.mapping, s.cfg, s.perf);
  EXPECT_GT(m.required_bandwidth_gbps, 0.0);
  EXPECT_GT(m.sustainable_fraction, 0.0);
}

}  // namespace
}  // namespace xl::core
